(** Arrival-time and slew propagation (the STA core).

    Classical table-driven STA: topological walk over the netlist,
    NLDM delay/slew lookup per gate, Elmore wire delay with PERI-style
    slew degradation per net. The noise-aware extension accepts
    recorded noisy waveforms at selected receiver pins (typically from
    a coupled-interconnect analysis) and reduces each to an equivalent
    ramp with a pluggable technique — exactly the integration path the
    paper claims for SGDP: nothing downstream changes, only the
    (arrival, slew) pair entering the tables. *)

type stimulus = {
  arrival : float;                   (** 0.5 Vdd crossing at the input *)
  slew : float;                      (** 10-90 transition time *)
  dir : Waveform.Wave.direction;
}

type timing = {
  at : float;                        (** arrival, 0.5 Vdd crossing *)
  slew : float;
  dir : Waveform.Wave.direction;
  from_noisy : bool;                 (** reduced from a noisy waveform *)
  mapping : Runtime.Failure.t option;
      (** degradation record for noisy pins: [None] when the preferred
          technique (ladder rung 0) produced the ramp,
          [Some (Mapping_degraded _)] when a fallback rung did, and
          [Some (Mapping_exhausted _)] when the last-resort
          nominal-slew anchor was used. Always [None] on clean pins. *)
}

type config = {
  library : Liberty.Nldm.cell_timing list;
  th : Waveform.Thresholds.t;
  technique : Eqwave.Technique.t;    (** preferred reduction (rung 0) *)
  ladder : Eqwave.Ladder.t;          (** fallback ladder for noisy pins *)
  samples : int;                     (** P for the technique *)
  proc : Device.Process.t;           (** process used by the delay
                                         calculator at noisy pins *)
}

val config :
  ?technique:Eqwave.Technique.t -> ?ladder:Eqwave.Ladder.t ->
  ?samples:int ->
  ?proc:Device.Process.t -> ?th:Waveform.Thresholds.t ->
  Liberty.Nldm.cell_timing list -> config
(** Defaults: SGDP, P = 35, the c13 corner and its thresholds. The
    default [ladder] is [technique] prepended to
    {!Eqwave.Ladder.default}, so the preferred technique is rung 0 and
    the stock fallbacks follow. *)

val net_load : config -> Netlist.t -> string -> float
(** Total capacitive load a driver of the net sees: receiver pin caps
    plus declared lumped/line capacitance. *)

val wire_delay : Netlist.t -> string -> float * float
(** [(delay, slew_degradation)] of the net's interconnect: Elmore delay
    and the PERI ln(9)*Elmore slew addend (0 for plain nets). *)

type result = {
  timings : (string * timing) list;          (** per net, topo order *)
  worst_output : (string * timing) option;   (** latest primary output *)
}

val run :
  ?noisy_pins:(string * Waveform.Wave.t) list ->
  config -> Netlist.t -> stimuli:(string * stimulus) list -> result
(** Propagate. Every primary input must appear in [stimuli] (checked).
    [noisy_pins] maps net names to recorded noisy waveforms at the
    receiver end of that net; the configured technique reduces each
    before its receiving gate is timed. Raises [Failure] on missing
    stimuli or library cells. *)

val critical_path : Netlist.t -> result -> string list
(** Nets on the path to the worst output, source first. *)

val pp_result : Format.formatter -> result -> unit
