type stimulus = {
  arrival : float;
  slew : float;
  dir : Waveform.Wave.direction;
}

type timing = {
  at : float;
  slew : float;
  dir : Waveform.Wave.direction;
  from_noisy : bool;
  mapping : Runtime.Failure.t option;
}

type config = {
  library : Liberty.Nldm.cell_timing list;
  th : Waveform.Thresholds.t;
  technique : Eqwave.Technique.t;
  ladder : Eqwave.Ladder.t;
  samples : int;
  proc : Device.Process.t;
}

let config ?(technique = Eqwave.Sgdp.sgdp) ?ladder ?(samples = 35)
    ?(proc = Device.Process.c13) ?th library =
  let th =
    match th with Some t -> t | None -> Device.Process.thresholds proc
  in
  let ladder =
    match ladder with
    | Some l -> l
    | None -> Eqwave.Ladder.prepend technique Eqwave.Ladder.default
  in
  { library; th; technique; ladder; samples; proc }

(* Map library cell names back to transistor-level cells so the
   noiseless gate response at a noisy pin can be produced by the delay
   calculator (one small transient simulation) instead of a crude
   NLDM-ramp approximation. Only the INVx<k> family exists here. *)
let device_cell_of_name name =
  let try_family prefix make =
    let np = String.length prefix in
    if String.length name > np && String.sub name 0 np = prefix then
      match
        int_of_string_opt (String.sub name np (String.length name - np))
      with
      | Some d when d >= 1 -> Some (make ~drive:d)
      | _ -> None
    else None
  in
  let proc = Device.Process.c13 in
  match try_family "INVx" (Device.Cell.inv proc) with
  | Some _ as r -> r
  | None -> (
      match try_family "BUFx" (Device.Cell.buf proc) with
      | Some _ as r -> r
      | None -> (
          match try_family "NAND2x" (Device.Cell.nand2 proc) with
          | Some _ as r -> r
          | None -> try_family "NOR2x" (Device.Cell.nor2 proc)))

let find_cell cfg name =
  match Liberty.Libfile.find cfg.library name with
  | c -> c
  | exception Not_found ->
      Runtime.Failure.fail (Missing_cell { cell = name })

let net_load cfg netlist net =
  let pins =
    Netlist.receivers_of netlist net
    |> List.fold_left
         (fun acc (inst : Netlist.instance) ->
           acc +. (find_cell cfg inst.Netlist.cell).Liberty.Nldm.input_cap)
         0.0
  in
  let extra =
    match Netlist.load_of netlist net with
    | None -> 0.0
    | Some (Netlist.Lumped c) -> c
    | Some (Netlist.Line spec) -> spec.Interconnect.Rcline.ctotal
  in
  pins +. extra

(* PERI-style slew degradation: the far-end transition of an RC stage
   driven by a finite ramp satisfies slew_out^2 ~ slew_in^2 + slew_wire^2
   with slew_wire = ln(9) * Elmore for the 10-90 thresholds. We return
   the wire addend; the caller combines. *)
let ln9 = log 9.0

let wire_delay netlist net =
  match Netlist.load_of netlist net with
  | Some (Netlist.Line spec) ->
      let d = Interconnect.Rcline.elmore_discrete spec in
      (d, ln9 *. d)
  | Some (Netlist.Lumped _) | None -> (0.0, 0.0)

(* Build the technique context for a noisy pin from the *nominal*
   propagated timing: the noiseless input is the ramp STA would have
   used, and the noiseless output comes from the delay calculator (a
   small transistor-level run of the receiver cell), falling back to
   the NLDM output ramp for cells outside the built-in families. No
   extra *library* characterization is needed, as the paper requires. *)
let reduce_noisy cfg netlist net (nominal : timing) wave =
  let open Waveform in
  let noiseless_in =
    Ramp.of_arrival_slew ~arrival:nominal.at ~slew:nominal.slew
      ~dir:nominal.dir cfg.th
  in
  let receiver =
    match Netlist.receivers_of netlist net with
    | r :: _ -> r
    | [] -> failwith ("Sta: noisy pin with no receiver: " ^ net)
  in
  let ct = find_cell cfg receiver.Netlist.cell in
  let load = net_load cfg netlist receiver.Netlist.output in
  let delay, out_slew =
    Liberty.Nldm.gate_delay ct ~input_dir:nominal.dir ~slew:nominal.slew ~load
  in
  let pad = 4.0 *. nominal.slew in
  let span_lo = Float.min (Wave.t_start wave) (nominal.at -. pad) in
  let span_hi =
    Float.max (Wave.t_end wave) (nominal.at +. delay +. (8.0 *. out_slew))
  in
  let sample r = Wave.of_fun ~t0:span_lo ~t1:span_hi ~n:512 (Ramp.value_at r) in
  (* The noiseless gate response: simulated through the transistor-level
     delay calculator when the cell is known, otherwise approximated by
     the NLDM output ramp. *)
  let noiseless_out =
    match device_cell_of_name receiver.Netlist.cell with
    | Some cell -> (
        match
          Liberty.Characterize.measure_gate cfg.proc cell ~extra_load:load
            ~input:(Spice.Source.of_ramp noiseless_in) ~tstop:span_hi
        with
        | _, wy -> Wave.resample wy (Wave.times (sample noiseless_in))
        | exception _ ->
            sample
              (Ramp.of_arrival_slew ~arrival:(nominal.at +. delay)
                 ~slew:out_slew
                 ~dir:(Liberty.Nldm.output_dir ct nominal.dir)
                 cfg.th))
    | None ->
        sample
          (Ramp.of_arrival_slew ~arrival:(nominal.at +. delay) ~slew:out_slew
             ~dir:(Liberty.Nldm.output_dir ct nominal.dir)
             cfg.th)
  in
  let ctx =
    Eqwave.Technique.make_ctx ~samples:cfg.samples ~th:cfg.th ~noisy_in:wave
      ~noiseless_in:(sample noiseless_in) ~noiseless_out ()
  in
  (* The configured ladder degrades gracefully: the preferred technique
     first, fallbacks in order, and — when every rung is inapplicable —
     a last-resort nominal-slew ramp anchored at the latest noisy mid
     crossing. Each outcome is recorded in [mapping] so a tool flow can
     flag degraded pins instead of silently trusting them. *)
  match Eqwave.Ladder.run cfg.ladder ctx with
  | Ok o ->
      let ramp = o.Eqwave.Ladder.ramp in
      {
        at = Ramp.arrival ramp cfg.th;
        slew = Ramp.slew ramp cfg.th;
        dir = Ramp.direction ramp;
        from_noisy = true;
        mapping =
          (if o.Eqwave.Ladder.rung = 0 then None
           else
             Some
               (Runtime.Failure.Mapping_degraded
                  {
                    technique = o.Eqwave.Ladder.technique;
                    rung = o.Eqwave.Ladder.rung;
                    score_v = o.Eqwave.Ladder.score_v;
                  }));
      }
  | Error skipped ->
      let last =
        match List.rev skipped with
        | s :: _ -> s.Eqwave.Ladder.reason
        | [] -> "empty ladder"
      in
      let failure =
        Runtime.Failure.Mapping_exhausted
          { tried = List.length skipped; last }
      in
      (match Eqwave.Technique.latest_mid_crossing_opt ctx with
      | Some arrival ->
          let ramp =
            Ramp.of_arrival_slew ~arrival ~slew:nominal.slew
              ~dir:nominal.dir cfg.th
          in
          {
            at = Ramp.arrival ramp cfg.th;
            slew = Ramp.slew ramp cfg.th;
            dir = Ramp.direction ramp;
            from_noisy = true;
            mapping = Some failure;
          }
      | None ->
          (* Not even a mid crossing to anchor on: keep the nominal
             timing but mark the pin, so downstream sees the most
             conservative defensible numbers, typed. *)
          { nominal with from_noisy = true; mapping = Some failure })

type result = {
  timings : (string * timing) list;
  worst_output : (string * timing) option;
}

let run ?(noisy_pins = []) cfg netlist ~stimuli =
  let order = Netlist.topological_nets netlist in
  let table : (string, timing) Hashtbl.t = Hashtbl.create 32 in
  let time_net net =
    match Netlist.driver_of netlist net with
    | `Input ->
        let s =
          match List.assoc_opt net stimuli with
          | Some s -> s
          | None -> failwith ("Sta: missing stimulus for input " ^ net)
        in
        { at = s.arrival; slew = s.slew; dir = s.dir; from_noisy = false;
          mapping = None }
    | `Gate inst ->
        let din = Hashtbl.find table inst.Netlist.input in
        let ct = find_cell cfg inst.Netlist.cell in
        let load = net_load cfg netlist net in
        let delay, out_slew =
          Liberty.Nldm.gate_delay ct ~input_dir:din.dir ~slew:din.slew ~load
        in
        let wdelay, wslew = wire_delay netlist net in
        {
          at = din.at +. delay +. wdelay;
          slew = sqrt ((out_slew *. out_slew) +. (wslew *. wslew));
          dir = Liberty.Nldm.output_dir ct din.dir;
          from_noisy = false;
          mapping = None;
        }
    | exception Not_found -> failwith ("Sta: undriven net " ^ net)
  in
  List.iter
    (fun net ->
      let nominal = time_net net in
      let final =
        match List.assoc_opt net noisy_pins with
        | Some wave -> reduce_noisy cfg netlist net nominal wave
        | None -> nominal
      in
      Hashtbl.replace table net final)
    order;
  let timings = List.map (fun n -> (n, Hashtbl.find table n)) order in
  let worst_output =
    Netlist.outputs netlist
    |> List.filter_map (fun n ->
           Option.map (fun t -> (n, t)) (Hashtbl.find_opt table n))
    |> List.fold_left
         (fun acc (n, t) ->
           match acc with
           | Some (_, best) when best.at >= t.at -> acc
           | _ -> Some (n, t))
         None
  in
  { timings; worst_output }

let critical_path netlist result =
  match result.worst_output with
  | None -> []
  | Some (net, _) ->
      let rec walk acc net =
        match Netlist.driver_of netlist net with
        | `Input -> net :: acc
        | `Gate inst -> walk (net :: acc) inst.Netlist.input
        | exception Not_found -> net :: acc
      in
      walk [] net

let pp_result ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (net, t) ->
      let tag =
        match (t.from_noisy, t.mapping) with
        | false, _ -> ""
        | true, None -> "  [noisy->ramp]"
        | true, Some (Runtime.Failure.Mapping_degraded d) ->
            Printf.sprintf "  [noisy->%s@rung%d]" d.technique d.rung
        | true, Some f ->
            Printf.sprintf "  [noisy!%s]" (Runtime.Failure.code f)
      in
      Format.fprintf ppf "%-14s at=%8.1f ps slew=%7.1f ps %a%s@,"
        net (t.at *. 1e12) (t.slew *. 1e12) Waveform.Wave.pp_direction t.dir
        tag)
    r.timings;
  (match r.worst_output with
  | Some (n, t) ->
      Format.fprintf ppf "worst output %s at %.1f ps@," n (t.at *. 1e12)
  | None -> Format.fprintf ppf "no primary outputs timed@,");
  Format.fprintf ppf "@]"
