type 'a t = {
  bound : int;
  q : 'a Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable closed : bool;
}

let create ~depth =
  if depth < 1 then invalid_arg "Workqueue.create: depth must be >= 1";
  {
    bound = depth;
    q = Queue.create ();
    m = Mutex.create ();
    cv = Condition.create ();
    closed = false;
  }

let depth t = t.bound

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let length t = locked t (fun () -> Queue.length t.q)

let try_push t x =
  locked t (fun () ->
      if t.closed then Error `Closed
      else if Queue.length t.q >= t.bound then Error `Overloaded
      else begin
        Queue.add x t.q;
        Condition.signal t.cv;
        Ok ()
      end)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.cv t.m
      done;
      Queue.take_opt t.q)

let try_pop t = locked t (fun () -> Queue.take_opt t.q)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cv)

let is_closed t = locked t (fun () -> t.closed)
