type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)

let num_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && abs_float v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    (* Shortest fixed precision that round-trips: nearly every value
       the protocol carries fits %.12g; fall back to the exact %.17g. *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (num_to_string v)
    | Str s -> escape buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Bad of int * string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let error msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub text !pos m = word then begin
      pos := !pos + m;
      value
    end
    else error ("expected " ^ word)
  in
  let utf8_of_code buf code =
    (* Encode one scalar value; protocol strings are UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub text !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> error "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              let hi = hex4 () in
              let code =
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* Surrogate pair. *)
                  if
                    !pos + 2 <= n
                    && text.[!pos] = '\\'
                    && text.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      error "bad low surrogate"
                    else
                      0x10000 + (((hi - 0xD800) lsl 10) lor (lo - 0xDC00))
                  end
                  else error "lone high surrogate"
                end
                else hi
              in
              utf8_of_code buf code;
              go ()
          | _ -> error "bad escape character")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar text.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some v -> Num v
    | None -> error "bad number"
  in
  let rec parse_value depth =
    if depth > 100 then error "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "%s at offset %d" msg at)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v
    when Float.is_integer v
         && v >= Float.of_int min_int
         && v <= Float.of_int max_int ->
      Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None

let str_list v =
  match v with
  | Arr xs ->
      List.fold_left
        (fun acc x ->
          match (acc, x) with
          | Some l, Str s -> Some (s :: l)
          | _ -> None)
        (Some []) xs
      |> Option.map List.rev
  | _ -> None
