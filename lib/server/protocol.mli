(** Wire protocol of the STA daemon.

    Frames are length-prefixed JSON: a 4-byte big-endian payload length
    followed by one JSON document. Requests carry a client-chosen [id]
    (echoed back verbatim), an [op], op-specific parameters, and an
    optional per-request [deadline_ms]; responses are either
    [{"id":..,"ok":<body>}] or [{"id":..,"error":{"code","message",
    "recoverable"}}] where [code] is {!Runtime.Failure.code} for typed
    failures, or ["bad_request"]/["internal"] for protocol-level ones.

    Ops:
    - [ping] — liveness; answered inline, never queued.
    - [stats] — server counter snapshot; answered inline.
    - [delay] — one noise-injection case ([config], [tau_ps],
      [technique]): reference gate delay plus the technique's
      Gamma_eff delay estimate (a Table-1 cell).
    - [gamma] — the Gamma_eff mapping alone ([config], [tau_ps],
      optional [ladder] name list): accepted rung, ramp arrival/slew,
      deviation score.
    - [table1] — a full Table-1 sweep ([config], [cases], optional
      [techniques], [samples], optional [prune_tol_ps]).
    - [montecarlo] — a Monte-Carlo shard ([config], [samples], [seed],
      optional [prune_tol_ps]).

    A positive [prune_tol_ps] (added in 1.2) turns on the
    branch-and-bound alignment pruning: the [table1] response then
    carries a ["prune"] object ([total]/[solved]/[pruned]/[rounds])
    and the [montecarlo] response counts [pruned] draws. Absent or 0
    keeps the exhaustive sweep, so 1.1 clients see unchanged
    responses.

    {!execute} is the single evaluation path: the daemon's batcher runs
    it on queued requests, and the bench runs it directly to assert
    that socket responses are byte-identical to in-process calls. *)

type query =
  | Ping
  | Stats
  | Delay of { config : string; tau : float; technique : string }
  | Gamma of { config : string; tau : float; ladder : string list option }
  | Table1 of {
      config : string;
      cases : int;
      techniques : string list option;
      samples : int option;
      prune_tol_ps : float;
          (** 0 = exhaustive sweep (the pre-1.2 behavior) *)
    }
  | Montecarlo of {
      config : string;
      samples : int;
      seed : int;
      prune_tol_ps : float;
    }

type request = { id : int; query : query; deadline_ms : float option }

val version : string
(** Protocol/daemon version reported by [ping], [--version], and the
    [version] field of every request and response envelope. *)

val major_of : string -> int option
(** Major component of a ["major.minor.patch"] version string, [None]
    when the leading component is not an integer. *)

val scenario_of_name : string -> (Noise.Scenario.t, string) result
(** "i"/"1", "ii"/"2", "i_buffer"/"buffer" (case-insensitive). *)

(** {1 Request parsing} *)

type parse_error =
  | Bad_request of string
      (** malformed payload; the string is a human-readable reason *)
  | Version_mismatch of { id : int; got : string }
      (** the request carried a [version] whose major component differs
          from (or cannot be compared with) this server's {!version};
          its parameters were not interpreted *)

val parse_request : string -> (request, parse_error) result
(** Parse and validate one request payload. A [version] field, when
    present, is checked first: same-major versions are accepted,
    anything else is rejected as {!Version_mismatch} before any other
    field is read. Requests without a [version] are accepted (pre-1.1
    clients never sent one). *)

val parse_error_response : parse_error -> Json.t
(** The response frame for a rejected payload: code ["bad_request"]
    (id 0 when the payload was too broken to extract one) or
    ["version_mismatch"] (echoing the request id). *)

val request_to_json : request -> Json.t
(** Client-side rendering of a request (inverse of {!parse_request});
    stamps this library's {!version} into the envelope. *)

(** {1 Batching} *)

type klass =
  | Inline  (** ping/stats: answered on the connection thread *)
  | Single of string
      (** one-case solves, keyed by scenario name: compatible requests
          are batched into a single pool submission *)
  | Sweep  (** table1/montecarlo: run alone, parallel internally *)

val klass : query -> klass

(** {1 Execution} *)

val execute :
  engine:Runtime.Engine.t ->
  ?metrics:Runtime.Metrics.t ->
  query ->
  (Json.t, Runtime.Failure.t) result
(** Evaluate one query on [engine]. Deterministic for deterministic
    engines: the response body contains no timestamps or host state,
    so a warm server cache and a cold in-process run yield identical
    bytes. Solve failures escaping the engine's resilience ladder are
    classified into typed failures; unknown technique/scenario names
    surface as [Unsupported]. [metrics] backs the [stats] op. *)

val response : id:int -> (Json.t, Runtime.Failure.t) result -> Json.t
val error_response : id:int -> code:string -> string -> Json.t

(** {1 Framing} *)

val max_frame : int
(** Refuse payloads above this size (16 MiB) — a corrupt length prefix
    must not allocate unboundedly. *)

val read_frame :
  Unix.file_descr ->
  ( string,
    [ `Eof | `Timeout of [ `Idle | `Mid_frame ] | `Err of string ] )
  result
(** Read one length-prefixed frame, blocking. [`Eof] on clean
    connection close at a frame boundary. On a socket armed with
    [SO_RCVTIMEO], an expired deadline surfaces as [`Timeout `Idle]
    (no byte of the next frame had arrived — a quiet connection) or
    [`Timeout `Mid_frame] (the peer started a frame and stalled — the
    slowloris signature). All fd ops go through {!Netfault}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame; raises [Unix.Unix_error] on a dead peer (or
    [EAGAIN] past an armed [SO_SNDTIMEO] write deadline). All fd ops
    go through {!Netfault}. *)
