(* Seeded byte-stream fuzzing of the request path: Frame -> Json ->
   Protocol.parse. The contract under test is total: EVERY input —
   random bytes, mutated valid requests, structural JSON nasties,
   schema violations, version junk — must come back as a parsed
   request or a typed Bad_request/Version_mismatch, never an escaped
   exception. The generator is [Random.State] seeded from the run
   seed, so a failing input is reproducible from (seed, index) alone
   and can be promoted into the committed regression corpus. *)

type outcome = Parsed | Bad_request | Version_mismatch

type stats = {
  inputs : int;
  parsed : int;
  bad_requests : int;
  version_mismatches : int;
  frame_trips : int;
  escaped : (int * string * string) list;
      (* (input index, truncated input, exception) — non-empty means
         the contract is broken *)
}

(* One input through the parser, exercising the full error path: a
   typed parse error must also render to a response frame without
   raising. Returns an [Error] only for an escaped exception. *)
let run_one text =
  match Protocol.parse_request text with
  | Ok req ->
      (* A parsed request must also survive re-rendering. *)
      let (_ : string) = Json.to_string (Protocol.request_to_json req) in
      let (_ : Protocol.klass) = Protocol.klass req.Protocol.query in
      Ok Parsed
  | Error (Protocol.Bad_request _ as e) ->
      let (_ : string) = Json.to_string (Protocol.parse_error_response e) in
      Ok Bad_request
  | Error (Protocol.Version_mismatch _ as e) ->
      let (_ : string) = Json.to_string (Protocol.parse_error_response e) in
      Ok Version_mismatch
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Input generators                                                    *)

let valid_templates =
  [
    {|{"id":1,"op":"ping"}|};
    {|{"id":2,"op":"stats"}|};
    {|{"id":3,"op":"delay","config":"i","tau_ps":40,"technique":"SGDP"}|};
    {|{"id":4,"op":"gamma","config":"ii","tau_ps":25.5,"ladder":["SGDP","P1"]}|};
    {|{"id":5,"op":"table1","config":"i","cases":10,"samples":3}|};
    {|{"id":6,"op":"montecarlo","config":"buffer","samples":8,"seed":7}|};
    {|{"id":7,"version":"1.1.0","op":"delay","config":"1","tau_ps":10,"deadline_ms":50}|};
  ]

let json_fragments =
  [
    "{"; "}"; "["; "]"; ":"; ","; "\""; "\\"; "\\u"; "\\u00"; "null";
    "true"; "false"; "1e308"; "-1e-308"; "1e999"; "NaN"; "Infinity";
    "-Infinity"; "0.0.0"; "1.7976931348623157e309"; "9007199254740993";
    "\"op\""; "\"id\""; "\"version\""; "\"tau_ps\""; "\"config\"";
    "\"ping\""; "\"delay\""; "\xff\xfe"; "\x00"; "\xc3\x28"; "\"\\ud800\"";
  ]

let random_bytes st len = String.init len (fun _ -> Char.chr (Random.State.int st 256))

let mutate st s =
  let b = Bytes.of_string s in
  let flips = 1 + Random.State.int st 4 in
  for _ = 1 to flips do
    if Bytes.length b > 0 then begin
      let i = Random.State.int st (Bytes.length b) in
      Bytes.set b i (Char.chr (Random.State.int st 256))
    end
  done;
  Bytes.unsafe_to_string b

let nest st =
  (* Deep structural nesting probes the parser's depth limit. *)
  let depth = 1 + Random.State.int st 300 in
  let opener = if Random.State.bool st then '[' else '{' in
  let closer = if opener = '[' then ']' else '}' in
  let closed = Random.State.bool st in
  String.make depth opener
  ^ (if closed then String.make depth closer else "")

let fragment_soup st =
  let n = 1 + Random.State.int st 20 in
  String.concat ""
    (List.init n (fun _ ->
         List.nth json_fragments
           (Random.State.int st (List.length json_fragments))))

let schema_violation st =
  (* Valid JSON, wrong shapes: wrong field types, out-of-range values,
     unknown ops — must all die in validation, not in evaluation. *)
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let id = pick [ "1"; "\"one\""; "null"; "-9"; "1.5"; "[]" ] in
  let op =
    pick
      [
        "\"ping\""; "\"delay\""; "\"table1\""; "\"montecarlo\"";
        "\"gamma\""; "\"DELAY\""; "\"nope\""; "42"; "null"; "[\"delay\"]";
      ]
  in
  let tau = pick [ "40"; "-40"; "0"; "\"40\""; "null"; "1e999"; "{}" ] in
  let config = pick [ "\"i\""; "\"ii\""; "\"iii\""; "17"; "null"; "\"\"" ] in
  let cases = pick [ "10"; "0"; "-3"; "100000000"; "2.5"; "\"many\"" ] in
  Printf.sprintf
    {|{"id":%s,"op":%s,"tau_ps":%s,"config":%s,"cases":%s,"samples":%s}|}
    id op tau config cases cases

let version_junk st =
  let pick l = List.nth l (Random.State.int st (List.length l)) in
  let v =
    pick
      [
        "\"1.1.0\""; "\"1.0.0\""; "\"2.0.0\""; "\"0.9\""; "\"1\"";
        "\"x.y.z\""; "\"\""; "\"999999999999999999999.0\""; "17"; "null";
        "[1,1,0]"; "\"1.1.0-rc1\"";
      ]
  in
  Printf.sprintf {|{"id":8,"version":%s,"op":"ping"}|} v

let gen_input st k =
  match k mod 6 with
  | 0 -> random_bytes st (Random.State.int st 129)
  | 1 ->
      mutate st
        (List.nth valid_templates
           (Random.State.int st (List.length valid_templates)))
  | 2 -> nest st
  | 3 -> fragment_soup st
  | 4 -> schema_violation st
  | _ -> version_junk st

(* ------------------------------------------------------------------ *)
(* Frame-layer trip: the input rides a real socketpair through
   [Protocol.write_frame]/[read_frame] (and so through [Netfault] when
   armed) before parsing, with an occasional deliberately corrupted
   length prefix. The writer half-closes after writing, so a lying
   prefix surfaces as a truncated-frame error instead of a blocked
   read. *)

let frame_trip st input =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let len = String.length input in
      let corrupt_prefix = Random.State.int st 4 = 0 in
      let claimed =
        if corrupt_prefix then Random.State.full_int st 0x7fffffff else len
      in
      let buf = Bytes.create (4 + len) in
      Bytes.set_int32_be buf 0 (Int32.of_int claimed);
      Bytes.blit_string input 0 buf 4 len;
      let rec send ofs =
        if ofs < 4 + len then
          match Unix.write a buf ofs (4 + len - ofs) with
          | n -> send (ofs + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> send ofs
      in
      send 0;
      (try Unix.shutdown a Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      match Protocol.read_frame b with
      | Ok payload -> run_one payload
      | Error (`Eof | `Err _ | `Timeout _) ->
          (* A refused frame is a typed outcome too. *)
          Ok Bad_request)

(* ------------------------------------------------------------------ *)

let run ?(seed = 0) ?(count = 10_000) ?(frame_every = 64) () =
  let st = Random.State.make [| seed; 0x57a |] in
  let stats =
    ref
      {
        inputs = 0;
        parsed = 0;
        bad_requests = 0;
        version_mismatches = 0;
        frame_trips = 0;
        escaped = [];
      }
  in
  for k = 0 to count - 1 do
    let input = gen_input st k in
    let via_frame = frame_every > 0 && k mod frame_every = 0 in
    let result =
      if via_frame then frame_trip st input else run_one input
    in
    let s = !stats in
    let s =
      { s with inputs = s.inputs + 1;
        frame_trips = (s.frame_trips + if via_frame then 1 else 0) }
    in
    stats :=
      (match result with
      | Ok Parsed -> { s with parsed = s.parsed + 1 }
      | Ok Bad_request -> { s with bad_requests = s.bad_requests + 1 }
      | Ok Version_mismatch ->
          { s with version_mismatches = s.version_mismatches + 1 }
      | Error exn_s ->
          let shown =
            if String.length input <= 80 then input
            else String.sub input 0 80 ^ "..."
          in
          { s with escaped = (k, String.escaped shown, exn_s) :: s.escaped })
  done;
  { !stats with escaped = List.rev !stats.escaped }
