let version = "1.2.0"

(* Compatibility is decided on the major component alone: a client may
   be older or newer within a major series (fields it doesn't know are
   ignored; fields it omits have defaults), but across majors the
   framing or field semantics may have changed, so the request is
   rejected before any parameter is interpreted. *)
let major_of v =
  match String.index_opt v '.' with
  | Some i -> int_of_string_opt (String.sub v 0 i)
  | None -> int_of_string_opt v

type parse_error =
  | Bad_request of string
  | Version_mismatch of { id : int; got : string }

type query =
  | Ping
  | Stats
  | Delay of { config : string; tau : float; technique : string }
  | Gamma of { config : string; tau : float; ladder : string list option }
  | Table1 of {
      config : string;
      cases : int;
      techniques : string list option;
      samples : int option;
      prune_tol_ps : float;
    }
  | Montecarlo of {
      config : string;
      samples : int;
      seed : int;
      prune_tol_ps : float;
    }

type request = { id : int; query : query; deadline_ms : float option }

let scenario_of_name s =
  match String.lowercase_ascii s with
  | "1" | "i" -> Ok Noise.Scenario.config_i
  | "2" | "ii" -> Ok Noise.Scenario.config_ii
  | "i_buffer" | "buffer" -> Ok Noise.Scenario.config_i_buffer
  | other -> Error (Printf.sprintf "unknown configuration %S" other)

(* Keep server-side sweep requests bounded: a single client must not be
   able to ask for hours of compute in one frame. *)
let max_cases = 500
let max_samples = 1000

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let field name v = Json.member name v

let str_field ?default name v =
  match field name v with
  | Some j -> (
      match Json.to_str j with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S must be a string" name))
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

let float_field name v =
  match field name v with
  | Some j -> (
      match Json.to_float j with
      | Some x when Float.is_finite x -> Ok x
      | _ -> Error (Printf.sprintf "field %S must be a finite number" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let pos_float_field name v =
  match float_field name v with
  | Ok x when x > 0.0 -> Ok x
  | Ok _ -> Error (Printf.sprintf "field %S must be positive" name)
  | Error _ as e -> e

let int_field ?default ~lo ~hi name v =
  match field name v with
  | Some j -> (
      match Json.to_int j with
      | Some n when n >= lo && n <= hi -> Ok n
      | Some n ->
          Error
            (Printf.sprintf "field %S = %d outside [%d, %d]" name n lo hi)
      | None -> Error (Printf.sprintf "field %S must be an integer" name))
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

(* Optional branch-and-bound slack; absent (or 0) keeps the exhaustive
   sweep, so pre-1.2 clients see unchanged behavior. *)
let prune_field v =
  match field "prune_tol_ps" v with
  | None -> Ok 0.0
  | Some j -> (
      match Json.to_float j with
      | Some x when Float.is_finite x && x >= 0.0 -> Ok x
      | _ -> Error "field \"prune_tol_ps\" must be a non-negative number")

let names_field name v =
  match field name v with
  | None -> Ok None
  | Some j -> (
      match Json.str_list j with
      | Some l when l <> [] -> Ok (Some l)
      | _ ->
          Error
            (Printf.sprintf "field %S must be a non-empty string array" name))

let ( let* ) = Result.bind

let check_config config =
  let* (_ : Noise.Scenario.t) = scenario_of_name config in
  Ok ()

let parse_query op v =
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "delay" ->
      let* config = str_field "config" v in
      let* () = check_config config in
      let* tau_ps = pos_float_field "tau_ps" v in
      let* technique = str_field ~default:"SGDP" "technique" v in
      Ok (Delay { config; tau = tau_ps *. 1e-12; technique })
  | "gamma" ->
      let* config = str_field "config" v in
      let* () = check_config config in
      let* tau_ps = pos_float_field "tau_ps" v in
      let* ladder = names_field "ladder" v in
      Ok (Gamma { config; tau = tau_ps *. 1e-12; ladder })
  | "table1" ->
      let* config = str_field "config" v in
      let* () = check_config config in
      let* cases = int_field ~lo:1 ~hi:max_cases "cases" v in
      let* techniques = names_field "techniques" v in
      let* samples =
        match field "samples" v with
        | None -> Ok None
        | Some _ ->
            let* p = int_field ~lo:1 ~hi:max_samples "samples" v in
            Ok (Some p)
      in
      let* prune_tol_ps = prune_field v in
      Ok (Table1 { config; cases; techniques; samples; prune_tol_ps })
  | "montecarlo" ->
      let* config = str_field "config" v in
      let* () = check_config config in
      let* samples = int_field ~lo:1 ~hi:max_samples "samples" v in
      let* seed = int_field ~default:42 ~lo:0 ~hi:max_int "seed" v in
      let* prune_tol_ps = prune_field v in
      Ok (Montecarlo { config; samples; seed; prune_tol_ps })
  | other -> Error (Printf.sprintf "unknown op %S" other)

let parse_request text =
  match Json.parse text with
  | Error e -> Error (Bad_request ("invalid JSON: " ^ e))
  | Ok v -> (
      let id =
        Option.value ~default:0 (Option.bind (field "id" v) Json.to_int)
      in
      let tag r =
        (* Attach the id we did manage to extract so the error response
           still correlates with the request. *)
        Result.map_error
          (fun e -> Bad_request (Printf.sprintf "[id %d] %s" id e))
          r
      in
      let body () =
        tag
          (let* op = str_field "op" v in
           let* query = parse_query op v in
           let* deadline_ms =
             match field "deadline_ms" v with
             | None -> Ok None
             | Some j -> (
                 match Json.to_float j with
                 | Some ms when Float.is_finite ms && ms > 0.0 ->
                     Ok (Some ms)
                 | _ -> Error "field \"deadline_ms\" must be positive")
           in
           Ok { id; query; deadline_ms })
      in
      (* Version gate first: an incompatible client's parameters must
         not be interpreted at all. Requests without a version are
         accepted (pre-1.1 clients never sent one). *)
      match field "version" v with
      | None -> body ()
      | Some (Json.Str got)
        when major_of got <> None && major_of got = major_of version ->
          body ()
      | Some j ->
          let got =
            match Json.to_str j with Some s -> s | None -> Json.to_string j
          in
          Error (Version_mismatch { id; got }))

let request_to_json { id; query; deadline_ms } =
  let base =
    match query with
    | Ping -> [ ("op", Json.Str "ping") ]
    | Stats -> [ ("op", Json.Str "stats") ]
    | Delay { config; tau; technique } ->
        [
          ("op", Json.Str "delay");
          ("config", Json.Str config);
          ("tau_ps", Json.Num (tau *. 1e12));
          ("technique", Json.Str technique);
        ]
    | Gamma { config; tau; ladder } ->
        [
          ("op", Json.Str "gamma");
          ("config", Json.Str config);
          ("tau_ps", Json.Num (tau *. 1e12));
        ]
        @ (match ladder with
          | Some names ->
              [ ("ladder", Json.Arr (List.map (fun s -> Json.Str s) names)) ]
          | None -> [])
    | Table1 { config; cases; techniques; samples; prune_tol_ps } ->
        [
          ("op", Json.Str "table1");
          ("config", Json.Str config);
          ("cases", Json.Num (float_of_int cases));
        ]
        @ (match techniques with
          | Some names ->
              [
                ( "techniques",
                  Json.Arr (List.map (fun s -> Json.Str s) names) );
              ]
          | None -> [])
        @ (match samples with
          | Some p -> [ ("samples", Json.Num (float_of_int p)) ]
          | None -> [])
        @
        if prune_tol_ps > 0.0 then
          [ ("prune_tol_ps", Json.Num prune_tol_ps) ]
        else []
    | Montecarlo { config; samples; seed; prune_tol_ps } ->
        [
          ("op", Json.Str "montecarlo");
          ("config", Json.Str config);
          ("samples", Json.Num (float_of_int samples));
          ("seed", Json.Num (float_of_int seed));
        ]
        @
        if prune_tol_ps > 0.0 then
          [ ("prune_tol_ps", Json.Num prune_tol_ps) ]
        else []
  in
  let tail =
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Num ms) ]
    | None -> []
  in
  Json.Obj
    ((("id", Json.Num (float_of_int id))
      :: ("version", Json.Str version) :: base)
    @ tail)

(* ------------------------------------------------------------------ *)
(* Batching class                                                      *)

type klass = Inline | Single of string | Sweep

let klass = function
  | Ping | Stats -> Inline
  | Delay { config; _ } | Gamma { config; _ } -> (
      match scenario_of_name config with
      | Ok scen -> Single scen.Noise.Scenario.name
      | Error _ -> Single config)
  | Table1 _ | Montecarlo _ -> Sweep

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let ps s = Json.Num (s *. 1e12)
let num v = Json.Num v
let opt f = function Some v -> f v | None -> Json.Null

let failure_json f =
  Json.Obj
    [
      ("code", Json.Str (Runtime.Failure.code f));
      ("message", Json.Str (Runtime.Failure.to_string f));
      ("recoverable", Json.Bool (Runtime.Failure.is_recoverable f));
    ]

let find_technique name =
  match Eqwave.Registry.find name with
  | t -> Ok t
  | exception Not_found ->
      Error
        (Runtime.Failure.Unsupported
           {
             what =
               Printf.sprintf "unknown technique %s (have: %s)" name
                 (String.concat ", " Eqwave.Registry.names);
           })

let find_scenario config =
  match scenario_of_name config with
  | Ok scen -> Ok scen
  | Error msg -> Error (Runtime.Failure.Unsupported { what = msg })

let find_ladder = function
  | None -> Ok Eqwave.Ladder.default
  | Some names -> (
      match Eqwave.Ladder.of_names names with
      | l -> Ok l
      | exception Invalid_argument msg ->
          Error (Runtime.Failure.Unsupported { what = msg }))

let mapping_json (m : (Noise.Eval.degradation, Runtime.Failure.t) result) =
  match m with
  | Ok d ->
      Json.Obj
        [
          ("technique", Json.Str d.Noise.Eval.technique);
          ("rung", num (float_of_int d.Noise.Eval.rung));
          ("score_v", num d.Noise.Eval.score_v);
        ]
  | Error f -> failure_json f

let delay_body scen ~tau ~technique (case : Noise.Eval.case_eval) =
  let m =
    match case.Noise.Eval.metrics with
    | m :: _ -> m
    | [] -> assert false (* evaluate_case returns one entry per technique *)
  in
  Json.Obj
    [
      ("config", Json.Str scen.Noise.Scenario.name);
      ("tau_ps", ps tau);
      ("technique", Json.Str technique);
      ("delay_ref_ps", ps case.Noise.Eval.delay_ref);
      ("delay_est_ps", opt ps m.Noise.Eval.delay_est);
      ("delay_err_ps", opt ps m.Noise.Eval.delay_err);
      ("out_arrival_err_ps", opt ps m.Noise.Eval.out_arrival_err);
      ("out_slew_err_ps", opt ps m.Noise.Eval.out_slew_err);
      ("failure", opt failure_json m.Noise.Eval.failure);
      ("mapping", mapping_json case.Noise.Eval.mapping);
    ]

let gamma_body scen ~tau ladder (o : Eqwave.Ladder.outcome) =
  let th = Device.Process.thresholds scen.Noise.Scenario.proc in
  Json.Obj
    [
      ("config", Json.Str scen.Noise.Scenario.name);
      ("tau_ps", ps tau);
      ("ladder", Json.Arr (List.map (fun s -> Json.Str s) (Eqwave.Ladder.names ladder)));
      ("technique", Json.Str o.Eqwave.Ladder.technique);
      ("rung", num (float_of_int o.Eqwave.Ladder.rung));
      ("score_v", num o.Eqwave.Ladder.score_v);
      ("arrival_ps", ps (Waveform.Ramp.arrival o.Eqwave.Ladder.ramp th));
      ("slew_ps", ps (Waveform.Ramp.slew o.Eqwave.Ladder.ramp th));
      ( "direction",
        Json.Str
          (match Waveform.Ramp.direction o.Eqwave.Ladder.ramp with
          | Waveform.Wave.Rising -> "rising"
          | Waveform.Wave.Falling -> "falling") );
      ( "skipped",
        Json.Arr
          (List.map
             (fun (s : Eqwave.Ladder.skip) ->
               Json.Obj
                 [
                   ("technique", Json.Str s.Eqwave.Ladder.technique);
                   ("reason", Json.Str s.Eqwave.Ladder.reason);
                 ])
             o.Eqwave.Ladder.skipped) );
    ]

let row_json (r : Noise.Eval.row) =
  Json.Obj
    [
      ("name", Json.Str r.Noise.Eval.name);
      ("max_abs_ps", num r.Noise.Eval.max_abs_ps);
      ("avg_abs_ps", num r.Noise.Eval.avg_abs_ps);
      ("n_cases", num (float_of_int r.Noise.Eval.n_cases));
      ("n_failed", num (float_of_int r.Noise.Eval.n_failed));
    ]

let degradation_json (d : Noise.Eval.degradation_summary) =
  Json.Obj
    [
      ("ladder", Json.Arr (List.map (fun s -> Json.Str s) d.Noise.Eval.ladder));
      ( "rung_counts",
        Json.Arr
          (Array.to_list
             (Array.map (fun n -> num (float_of_int n)) d.Noise.Eval.rung_counts))
      );
      ("n_exhausted", num (float_of_int d.Noise.Eval.n_exhausted));
      ("n_unmapped", num (float_of_int d.Noise.Eval.n_unmapped));
      ("avg_score_v", num d.Noise.Eval.avg_score_v);
    ]

let prune_json (s : Noise.Alignment.stats) =
  Json.Obj
    [
      ("total", num (float_of_int s.Noise.Alignment.total));
      ("solved", num (float_of_int s.Noise.Alignment.solved));
      ("pruned", num (float_of_int s.Noise.Alignment.pruned));
      ("rounds", num (float_of_int s.Noise.Alignment.rounds));
    ]

let table1_body scen ~cases (table : Noise.Eval.table) =
  Json.Obj
    ([
       ("scenario", Json.Str scen.Noise.Scenario.name);
       ("cases", num (float_of_int cases));
       ("rows", Json.Arr (List.map row_json table.Noise.Eval.rows));
       ("degradation", degradation_json table.Noise.Eval.degradation);
     ]
    @
    match table.Noise.Eval.prune with
    | Some s -> [ ("prune", prune_json s) ]
    | None -> [])

let montecarlo_body scen ~samples ~seed ~pruned
    (summaries : Noise.Montecarlo.summary list) =
  Json.Obj
    [
      ("scenario", Json.Str scen.Noise.Scenario.name);
      ("samples", num (float_of_int samples));
      ("seed", num (float_of_int seed));
      ("pruned", num (float_of_int pruned));
      ( "summaries",
        Json.Arr
          (List.map
             (fun (s : Noise.Montecarlo.summary) ->
               Json.Obj
                 [
                   ("technique", Json.Str s.Noise.Montecarlo.technique);
                   ("p50_ps", num s.Noise.Montecarlo.p50_ps);
                   ("p95_ps", num s.Noise.Montecarlo.p95_ps);
                   ("max_ps", num s.Noise.Montecarlo.max_ps);
                   ("n", num (float_of_int s.Noise.Montecarlo.n));
                   ("failed", num (float_of_int s.Noise.Montecarlo.failed));
                 ])
             summaries) );
    ]

let execute ~engine ?metrics query =
  (* [f] returns a result; solve exceptions escaping it are classified
     into typed failures (a genuine bug still propagates). *)
  let guarded f =
    try f () with
    | e -> (
        match Noise.Eval.failure_of_exn e with
        | Some f -> Error f
        | None -> raise e)
  in
  match query with
  | Ping ->
      Ok
        (Json.Obj
           [
             ("pong", Json.Bool true);
             ("version", Json.Str version);
             ("engine", Json.Str (Runtime.Engine.name engine));
           ])
  | Stats ->
      let counters =
        match metrics with
        | Some m ->
            (* Fold the cache's own counters in so clients can compute
               hit rates from one snapshot. *)
            (match Runtime.Engine.cache engine with
            | Some c -> Runtime.Metrics.capture_cache m c
            | None -> ());
            List.map
              (fun (k, v) -> (k, num (float_of_int v)))
              (Runtime.Metrics.counters m)
        | None -> []
      in
      Ok (Json.Obj [ ("counters", Json.Obj counters) ])
  | Delay { config; tau; technique } ->
      let* scen = find_scenario config in
      let* tech = find_technique technique in
      guarded (fun () ->
          let noiseless = Noise.Injection.noiseless ~engine scen in
          let case =
            Noise.Eval.evaluate_case ~techniques:[ tech ] ~engine scen
              ~noiseless ~tau
          in
          Ok (delay_body scen ~tau ~technique:tech.Eqwave.Technique.name case))
  | Gamma { config; tau; ladder } ->
      let* scen = find_scenario config in
      let* ladder = find_ladder ladder in
      guarded (fun () ->
          let noiseless = Noise.Injection.noiseless ~engine scen in
          let noisy = Noise.Injection.noisy ~engine scen ~tau in
          let ctx = Noise.Injection.ctx_of_runs scen ~noiseless ~noisy in
          match Eqwave.Ladder.run ladder ctx with
          | Ok outcome -> Ok (gamma_body scen ~tau ladder outcome)
          | Error skips ->
              Error
                (Runtime.Failure.Mapping_exhausted
                   {
                     tried = List.length skips;
                     last =
                       (match List.rev skips with
                       | s :: _ -> s.Eqwave.Ladder.reason
                       | [] -> "empty ladder");
                   }))
  | Table1 { config; cases; techniques; samples; prune_tol_ps } ->
      let* scen = find_scenario config in
      let* techniques =
        match techniques with
        | None -> Ok None
        | Some names ->
            let* ts =
              List.fold_left
                (fun acc name ->
                  let* acc = acc in
                  let* t = find_technique name in
                  Ok (t :: acc))
                (Ok []) names
            in
            Ok (Some (List.rev ts))
      in
      guarded (fun () ->
          let scen = Noise.Scenario.with_cases scen cases in
          let table =
            Noise.Eval.run_table ?techniques ?samples ~engine ~prune_tol_ps
              scen
          in
          Ok (table1_body scen ~cases table))
  | Montecarlo { config; samples; seed; prune_tol_ps } ->
      let* scen = find_scenario config in
      guarded (fun () ->
          let draws, summaries =
            Noise.Montecarlo.run ~seed ~samples ~engine ~prune_tol_ps scen
          in
          let pruned =
            List.length
              (List.filter (fun s -> s.Noise.Montecarlo.pruned) draws)
          in
          Ok (montecarlo_body scen ~samples ~seed ~pruned summaries))

let response ~id result =
  let envelope body =
    Json.Obj
      [ ("id", num (float_of_int id)); ("version", Json.Str version); body ]
  in
  match result with
  | Ok body -> envelope ("ok", body)
  | Error f -> envelope ("error", failure_json f)

let error_response ~id ~code message =
  Json.Obj
    [
      ("id", num (float_of_int id));
      ("version", Json.Str version);
      ( "error",
        Json.Obj
          [
            ("code", Json.Str code);
            ("message", Json.Str message);
            ("recoverable", Json.Bool false);
          ] );
    ]

let parse_error_response = function
  | Bad_request msg -> error_response ~id:0 ~code:"bad_request" msg
  | Version_mismatch { id; got } ->
      error_response ~id ~code:"version_mismatch"
        (Printf.sprintf
           "client speaks protocol %s, this server speaks %s (major \
            versions must match)"
           got version)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let max_frame = 16 * 1024 * 1024

(* Fd ops go through [Netfault] (a pass-through to [Unix.read]/
   [Unix.write] unless a chaos plan is armed). A socket armed with
   SO_RCVTIMEO surfaces an expired deadline as EAGAIN/EWOULDBLOCK;
   [~any] distinguishes an idle timeout (no byte of the next frame
   yet — the caller may treat it as a quiet connection) from a
   mid-frame one (the slowloris signature: a peer that started a frame
   and stopped feeding it). *)
let rec really_read fd buf ofs len ~any =
  if len = 0 then Ok ()
  else
    match Netfault.read fd buf ofs len with
    | 0 -> if any then Error (`Err "truncated frame") else Error `Eof
    | n -> really_read fd buf (ofs + n) (len - n) ~any:true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        really_read fd buf ofs len ~any
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error (`Timeout (if any then `Mid_frame else `Idle))
    | exception Unix.Unix_error (e, _, _) ->
        Error (`Err (Unix.error_message e))

let read_frame fd =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 0 4 ~any:false with
  | Error _ as e -> e
  | Ok () -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        Error (`Err (Printf.sprintf "bad frame length %d" len))
      else
        let payload = Bytes.create len in
        match really_read fd payload 0 len ~any:true with
        | Error _ as e -> e
        | Ok () -> Ok (Bytes.unsafe_to_string payload))

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  let rec go ofs remaining =
    if remaining > 0 then
      match Netfault.write fd buf ofs remaining with
      | n -> go (ofs + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs remaining
  in
  go 0 (4 + len)
