(** Request batching over the shared {!Runtime.Pool}.

    Connection threads turn admitted requests into {!Job.t}s and block
    on {!Job.await}; a single batcher thread runs {!serve}: it pops a
    job, greedily drains consecutive compatible jobs (single-case
    solves, {!Protocol.klass} [Single]) up to [max_batch], and submits
    the whole batch as one [Runtime.Pool.map] — one pool submission for
    many clients, which is what makes the daemon a server rather than a
    per-request process launch. Sweep jobs ([table1]/[montecarlo]) run
    alone; their internal sweep already fans out on the same pool.

    Having exactly one batcher thread serializes pool submissions by
    construction, so the deterministic [Pool.map] contract holds and
    two sweeps never interleave their chunk queues. *)

module Job : sig
  type t

  val make : Protocol.request -> t
  (** Stamps the admission time used for queue-wait accounting. *)

  val request : t -> Protocol.request

  val await : t -> Json.t
  (** Block until the batcher fills the response document. *)

  val fill : t -> Json.t -> unit
  (** Idempotent; the first fill wins. *)
end

val serve :
  queue:Job.t Workqueue.t ->
  engine:Runtime.Engine.t ->
  metrics:Runtime.Metrics.t ->
  ?max_batch:int ->
  ?queue_timeout_ms:float ->
  ?default_deadline_ms:float ->
  ?progress:int Atomic.t ->
  unit ->
  unit
(** Run the batcher loop until [queue] is closed and drained; every
    popped job is always filled, so graceful drain completes queued
    work. A job that waited longer than [queue_timeout_ms] is answered
    with a typed [Queue_timeout] failure without executing. Each job
    executes under its request's [deadline_ms] (or
    [default_deadline_ms]) installed via [Runtime.Engine.with_deadline].
    [max_batch] defaults to 16. [progress] is incremented once per
    answered job (executed or shed) — the daemon's heartbeat watchdog
    watches it to tell a slow batcher from a wedged one. Counters:
    [server.batches], [server.batched_requests], [server.executed],
    [server.exec_errors], [server.internal_errors],
    [server.queue_timeouts], and the [server.in_flight] gauge. *)
