(** Socket accept loops and the minimal HTTP observability endpoint.

    {!accept_loop} is a select-with-timeout accept loop that polls a
    stop flag between waits, so shutting the daemon down never hangs
    on a blocked [accept]. The callback runs on the accept thread —
    callers that want per-connection threads spawn them inside it.

    The HTTP side serves exactly two read-only paths over HTTP/1.0
    close-per-request:
    - [GET /metrics] — {!Runtime.Metrics.to_prometheus} exposition of
      the shared metrics registry (runtime counters plus the server's
      accepted/shed/in-flight/latency-histogram series);
    - [GET /health] — the [health] callback's body (["ok\n"] while
      serving, ["draining\n"] during shutdown) with status 200.

    Anything else is a 404. A header block over the request cap is a
    413, an expired socket read deadline a 408; both — plus any
    I/O error mid-exchange — count under [server.http_errors] so a
    flapping scrape target is visible to operators. There is
    deliberately no request body handling, keep-alive, or TLS — this
    is an operability port, not a web server. *)

val accept_loop :
  stop:bool Atomic.t ->
  Unix.file_descr ->
  (Unix.file_descr -> Unix.sockaddr -> unit) ->
  unit
(** Accept connections on a listening socket until [stop] is set;
    returns without closing the listening descriptor. Transient accept
    errors ([EINTR], [ECONNABORTED]) are retried. *)

val handle_http :
  metrics:Runtime.Metrics.t ->
  health:(unit -> string) ->
  Unix.file_descr ->
  unit
(** Serve one HTTP request on [fd] and close it (also on error).
    Honours an armed [SO_RCVTIMEO]/[SO_SNDTIMEO] on [fd]. *)
