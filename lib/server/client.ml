type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type t = { fd : Unix.file_descr; mutable open_ : bool }

let resolve host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith ("cannot resolve host " ^ host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> failwith ("cannot resolve host " ^ host))

let sockaddr = function
  | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve host, port))

let connect ?(retries = 100) addr =
  let domain, sa = sockaddr addr in
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> { fd; open_ = true }
    | exception
        Unix.Unix_error ((ECONNREFUSED | ENOENT | EAGAIN | EINTR), _, _)
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Thread.delay 0.05;
        go (attempt + 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go 0

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let call_raw t request =
  if not t.open_ then Error "client closed"
  else
    match
      Protocol.write_frame t.fd (Json.to_string (Protocol.request_to_json request))
    with
    | () -> (
        match Protocol.read_frame t.fd with
        | Ok payload -> Ok payload
        | Error `Eof -> Error "connection closed by server"
        | Error (`Err msg) -> Error msg)
    | exception Unix.Unix_error (e, _, _) ->
        Error ("send failed: " ^ Unix.error_message e)

let call t request =
  match call_raw t request with
  | Error _ as e -> e
  | Ok payload -> (
      match Json.parse payload with
      | Ok doc -> Ok doc
      | Error msg -> Error ("malformed response: " ^ msg))

let ping t =
  call t { Protocol.id = 0; query = Protocol.Ping; deadline_ms = None }
