type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type t = { fd : Unix.file_descr; mutable open_ : bool }

let resolve host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith ("cannot resolve host " ^ host)
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> failwith ("cannot resolve host " ^ host))

let sockaddr = function
  | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve host, port))

let connect ?(retries = 100) ?read_timeout_s ?write_timeout_s addr =
  let domain, sa = sockaddr addr in
  let arm fd =
    let set opt v =
      match v with
      | None -> ()
      | Some s -> (
          try Unix.setsockopt_float fd opt s with Unix.Unix_error _ -> ())
    in
    set Unix.SO_RCVTIMEO read_timeout_s;
    set Unix.SO_SNDTIMEO write_timeout_s
  in
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () ->
        arm fd;
        { fd; open_ = true }
    | exception
        Unix.Unix_error ((ECONNREFUSED | ENOENT | EAGAIN | EINTR), _, _)
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Thread.delay 0.05;
        go (attempt + 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go 0

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Requests are rendered to bytes exactly once per logical call (see
   the retry loop): [Protocol.request_to_json] is deterministic, so
   every retry of the same logical request puts byte-identical payload
   on the wire — the digest the server's journal dedups on. *)
let render request = Json.to_string (Protocol.request_to_json request)

let request_digest request = Journal.digest (render request)

let call_payload t payload =
  if not t.open_ then Error "client closed"
  else
    match Protocol.write_frame t.fd payload with
    | () -> (
        match Protocol.read_frame t.fd with
        | Ok payload -> Ok payload
        | Error `Eof -> Error "connection closed by server"
        | Error (`Timeout _) -> Error "timed out waiting for response"
        | Error (`Err msg) -> Error msg)
    | exception Unix.Unix_error (e, _, _) ->
        Error ("send failed: " ^ Unix.error_message e)

let call_raw t request = call_payload t (render request)

let call t request =
  match call_raw t request with
  | Error _ as e -> e
  | Ok payload -> (
      match Json.parse payload with
      | Ok doc -> Ok doc
      | Error msg -> Error ("malformed response: " ^ msg))

let ping t =
  call t { Protocol.id = 0; query = Protocol.Ping; deadline_ms = None }

(* ------------------------------------------------------------------ *)
(* Retrying call: fresh connection per attempt, capped exponential
   backoff with deterministic (digest-seeded) jitter so concurrent
   clients desynchronise without a global RNG, and a hard attempt
   budget so callers always get a typed error rather than an unbounded
   loop. *)

type retry_policy = {
  attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  seed : int;
}

let default_retry_policy =
  { attempts = 5; base_delay_s = 0.02; max_delay_s = 0.5; seed = 0 }

type retry_error = { attempts : int; last : string }

let retry_error_to_string { attempts; last } =
  Printf.sprintf "retry budget exhausted after %d attempts (last: %s)"
    attempts last

let jitter_roll seed k =
  let d = Digest.string (Printf.sprintf "client.retry:%d:%d" seed k) in
  let x = ref 0 in
  for i = 0 to 5 do
    x := (!x lsl 8) lor Char.code d.[i]
  done;
  float_of_int !x /. float_of_int (1 lsl 48)

let backoff_delay policy attempt =
  let expo = policy.base_delay_s *. (2.0 ** float_of_int (attempt - 1)) in
  let capped = Float.min policy.max_delay_s expo in
  (* Jitter in [0.5, 1.0] of the capped delay. *)
  capped *. (0.5 +. (0.5 *. jitter_roll policy.seed attempt))

(* Does this (well-formed) response carry a recoverable typed error —
   an admission shed ([overloaded], [too_many_connections], ...) worth
   retrying on a fresh connection? *)
let recoverable_error doc =
  match Json.member "error" doc with
  | None -> None
  | Some err -> (
      match Json.member "recoverable" err with
      | Some (Json.Bool true) ->
          Some
            (match Option.bind (Json.member "code" err) Json.to_str with
            | Some code -> code
            | None -> "unknown")
      | _ -> None)

(* Shared retry core over an already-rendered payload: fresh
   connection per attempt, same bytes every attempt. [classify] turns
   a delivered response into the caller's result or another attempt. *)
let retry ~(policy : retry_policy) ~what ?read_timeout_s ?write_timeout_s
    addr ~payload ~classify =
  if policy.attempts < 1 then invalid_arg ("Client." ^ what ^ ": attempts < 1");
  let rec attempt i last =
    if i >= policy.attempts then Error { attempts = i; last }
    else begin
      if i > 0 then Thread.delay (backoff_delay policy i);
      match connect ~retries:0 ?read_timeout_s ?write_timeout_s addr with
      | exception Unix.Unix_error (e, _, _) ->
          attempt (i + 1) ("connect failed: " ^ Unix.error_message e)
      | exception Stdlib.Failure msg -> attempt (i + 1) msg
      | c -> (
          let result = call_payload c payload in
          close c;
          match result with
          | Ok bytes -> (
              match classify bytes with
              | `Done v -> Ok v
              | `Retry msg -> attempt (i + 1) msg)
          | Error msg -> attempt (i + 1) msg)
    end
  in
  attempt 0 "no attempt made"

let call_raw_with_retry ?(policy = default_retry_policy)
    ?(retry_recoverable = false) ?read_timeout_s ?write_timeout_s addr
    request =
  retry ~policy ~what:"call_raw_with_retry" ?read_timeout_s ?write_timeout_s
    addr ~payload:(render request) ~classify:(fun bytes ->
      if not retry_recoverable then `Done bytes
      else
        match Json.parse bytes with
        | Error _ -> `Done bytes
        | Ok doc -> (
            match recoverable_error doc with
            | Some code -> `Retry ("recoverable server error: " ^ code)
            | None -> `Done bytes))

let call_with_retry ?(policy = default_retry_policy)
    ?(retry_recoverable = false) ?read_timeout_s ?write_timeout_s addr
    request =
  retry ~policy ~what:"call_with_retry" ?read_timeout_s ?write_timeout_s addr
    ~payload:(render request) ~classify:(fun bytes ->
      match Json.parse bytes with
      | Error msg -> `Retry ("malformed response: " ^ msg)
      | Ok doc -> (
          match if retry_recoverable then recoverable_error doc else None with
          | Some code -> `Retry ("recoverable server error: " ^ code)
          | None -> `Done doc))
