(** Crash-only process supervision for [sta_serve supervise].

    {!run} forks the serving child and waits. The state machine:

    - child exits 0 (graceful drain) → [Clean], no respawn;
    - child dies abnormally (non-zero exit, signal, watchdog
      self-restart) → respawn after a capped exponential backoff
      ([base_backoff_s] doubling up to [max_backoff_s]);
    - a child that survived at least [healthy_after_s] resets the
      consecutive-crash counter, so rare crashes restart forever while
      a crash loop trips the budget;
    - more than [crash_budget] consecutive fast crashes → [Gave_up],
      because a child that can never come up (bad flags, unbindable
      address) must become an operator page, not a restart storm.

    SIGTERM/SIGINT to the supervisor are forwarded to the child; when
    the child then exits the supervisor returns [Clean] without
    respawning, whatever the exit status — shutdown is not a crash.

    The supervisor stays single-threaded and holds no daemon state, so
    the fork is safe and each child rebuilds everything (engine,
    sockets, journal replay, cache scrub) from scratch — the
    crash-only path and the cold-start path are the same path.

    [pid_file], when set, receives the current child pid at every
    spawn — crash drills and init systems read it to SIGKILL or
    observe the serving process. [on_spawn] is the in-process hook
    with the same information. *)

type config = {
  base_backoff_s : float;  (** first-restart delay (default 0.2 s) *)
  max_backoff_s : float;  (** backoff cap (default 10 s) *)
  healthy_after_s : float;
      (** uptime that resets the crash counter (default 30 s) *)
  crash_budget : int;
      (** max consecutive fast crashes before giving up (default 5) *)
  pid_file : string option;  (** child pid written here at each spawn *)
  on_spawn : (pid:int -> restarts:int -> unit) option;
}

val default_config : config

type outcome =
  | Clean of { restarts : int }  (** graceful exit; [restarts] respawns *)
  | Gave_up of { restarts : int; consecutive : int }
      (** crash-loop budget exhausted *)

val outcome_to_string : outcome -> string

val run : ?config:config -> (restarts:int -> unit) -> outcome
(** [run child] forks and supervises [child ~restarts] (the serving
    loop; [restarts] says how many respawns preceded this incarnation,
    surfaced as the [server.restarts] metric). Must be called from a
    single-threaded process — it forks without exec. Blocks until
    clean shutdown or give-up. *)
