(** Deterministic network fault injection for chaos testing.

    The I/O twin of [Spice.Transient.Fault]: a process-global armed
    plan, a global fd-op counter, and a seeded digest roll per op, so
    a given (plan, op sequence) always faults the same ops. {!read}
    and {!write} are drop-in replacements for [Unix.read]/[Unix.write]
    with a one-atomic-load fast path when disarmed; [Protocol]'s
    framing routes every fd op through them, so arming a plan subjects
    both the daemon and any in-process clients to the same chaos.

    Fault kinds:
    - [Torn] — the op is truncated to one byte, exercising the
      callers' partial-I/O loops.
    - [Stall] — the op sleeps first, tripping the peer's read/write
      deadline.
    - [Drop] — the socket is shut down and the op raises
      [ECONNRESET]: a mid-frame disconnect.
    - [Corrupt] — one byte is flipped (in a copy on the write side;
      the caller's buffer is never mutated), producing garbage frame
      lengths and malformed JSON downstream. *)

type kind = Torn | Stall | Drop | Corrupt

val kind_to_string : kind -> string

type sel = Nth of { n : int } | Fraction of { rate : float; seed : int }

type plan = { kind : kind option; sel : sel }
(** [kind = None] rotates through all four kinds by op index, so a
    single flag exercises every failure mode. *)

val of_string : string -> (plan, string) result
(** Spec grammar: [[KIND:]("nth:"N | RATE["@"SEED])] with [KIND] one
    of [torn|stall|drop|corrupt] — e.g. ["0.05@7"], ["drop:nth:3"],
    ["stall:0.1"]. *)

val arm : ?stall_s:float -> plan -> unit
(** Arm [plan] process-globally and reset the op/injection counters.
    [stall_s] (default 0.2) is the [Stall] sleep. *)

val disarm : unit -> unit
val is_armed : unit -> bool

val injected : unit -> int
(** Fd ops faulted since the last {!arm}. *)

val read : Unix.file_descr -> Bytes.t -> int -> int -> int
(** [Unix.read] through the fault plan. *)

val write : Unix.file_descr -> Bytes.t -> int -> int -> int
(** [Unix.write] through the fault plan. *)
