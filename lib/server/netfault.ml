(* Deterministic network fault injection. The same idiom as
   [Spice.Transient.Fault] and [Runtime.Cache.Disk_fault]: a
   process-global armed plan, a global op counter, and a seeded digest
   roll per op, so a given (plan, op sequence) always faults the same
   ops. [read]/[write] are drop-in replacements for [Unix.read]/
   [Unix.write] with a one-atomic-load fast path when disarmed; the
   framing layer ([Protocol]) routes every fd op through them. *)

type kind = Torn | Stall | Drop | Corrupt

let kind_to_string = function
  | Torn -> "torn"
  | Stall -> "stall"
  | Drop -> "drop"
  | Corrupt -> "corrupt"

type sel = Nth of { n : int } | Fraction of { rate : float; seed : int }

(* [kind = None] rotates through all four kinds by op index, so one
   flag exercises every failure mode. *)
type plan = { kind : kind option; sel : sel }

type armed_state = { plan : plan; stall_s : float }

let armed : armed_state option Atomic.t = Atomic.make None
let op_index = Atomic.make 0
let injected_ops = Atomic.make 0

let arm ?(stall_s = 0.2) plan =
  Atomic.set op_index 0;
  Atomic.set injected_ops 0;
  Atomic.set armed (Some { plan; stall_s })

let disarm () = Atomic.set armed None
let is_armed () = Option.is_some (Atomic.get armed)
let injected () = Atomic.get injected_ops

let roll_float seed k =
  let d = Digest.string (Printf.sprintf "net.fault:%d:%d" seed k) in
  let x = ref 0 in
  for i = 0 to 5 do
    x := (!x lsl 8) lor Char.code d.[i]
  done;
  float_of_int !x /. float_of_int (1 lsl 48)

(* Which fault (if any) hits this op? Returns the kind to apply plus
   the stall duration, resolving [kind = None] by rotating on the op
   index. *)
let roll () =
  match Atomic.get armed with
  | None -> None
  | Some { plan; stall_s } ->
      let k = Atomic.fetch_and_add op_index 1 in
      let hit =
        match plan.sel with
        | Nth { n } -> k = n
        | Fraction { rate; seed } -> roll_float seed k < rate
      in
      if not hit then None
      else begin
        Atomic.incr injected_ops;
        let kind =
          match plan.kind with
          | Some kind -> kind
          | None -> (
              match k mod 4 with
              | 0 -> Torn
              | 1 -> Stall
              | 2 -> Corrupt
              | _ -> Drop)
        in
        Some (kind, stall_s)
      end

(* Spec grammar mirrors Transient.Fault:
   [KIND:]("nth:"N | RATE["@"SEED]) with KIND one of
   torn|stall|drop|corrupt; no KIND rotates through all four. *)
let of_string s =
  let kind, rest =
    let split prefix kind =
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        Some (kind, String.sub s pl (String.length s - pl))
      else None
    in
    match
      List.find_map
        (fun (p, k) -> split p k)
        [
          ("torn:", Torn);
          ("stall:", Stall);
          ("drop:", Drop);
          ("corrupt:", Corrupt);
        ]
    with
    | Some (k, rest) -> (Some k, rest)
    | None -> (None, s)
  in
  let nth_prefix = "nth:" in
  let has_nth =
    String.length rest > String.length nth_prefix
    && String.sub rest 0 (String.length nth_prefix) = nth_prefix
  in
  if has_nth then
    let num =
      String.sub rest (String.length nth_prefix)
        (String.length rest - String.length nth_prefix)
    in
    match int_of_string_opt num with
    | Some n when n >= 0 -> Ok { kind; sel = Nth { n } }
    | _ -> Error (Printf.sprintf "bad net fault spec %S: nth:N needs N >= 0" s)
  else
    let rate_s, seed =
      match String.index_opt rest '@' with
      | Some i ->
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) )
      | None -> (rest, "0")
    in
    match (float_of_string_opt rate_s, int_of_string_opt seed) with
    | Some rate, Some seed when rate >= 0.0 && rate <= 1.0 ->
        Ok { kind; sel = Fraction { rate; seed } }
    | _ ->
        Error
          (Printf.sprintf
             "bad net fault spec %S: want [torn:|stall:|drop:|corrupt:] then \
              nth:N or RATE[@SEED] with RATE in [0,1]"
             s)

(* ------------------------------------------------------------------ *)
(* Faulted fd ops. Torn truncates the op to one byte (exercising the
   callers' partial-I/O loops), Stall sleeps before the op (tripping
   the peer's deadline), Drop shuts the socket down and raises
   ECONNRESET (mid-frame disconnect), Corrupt flips one byte — in a
   copy on the write side so the caller's buffer is never mutated. *)

let drop fd op =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error (_, _, _) -> ());
  raise (Unix.Unix_error (Unix.ECONNRESET, op, "injected net fault"))

let corrupt_byte buf ofs len =
  if len > 0 then
    Bytes.set buf ofs (Char.chr (Char.code (Bytes.get buf ofs) lxor 0x20))

let read fd buf ofs len =
  match roll () with
  | None -> Unix.read fd buf ofs len
  | Some (Torn, _) -> Unix.read fd buf ofs (Int.min 1 len)
  | Some (Stall, stall_s) ->
      Thread.delay stall_s;
      Unix.read fd buf ofs len
  | Some (Drop, _) -> drop fd "read"
  | Some (Corrupt, _) ->
      let n = Unix.read fd buf ofs len in
      corrupt_byte buf ofs n;
      n

let write fd buf ofs len =
  match roll () with
  | None -> Unix.write fd buf ofs len
  | Some (Torn, _) -> Unix.write fd buf ofs (Int.min 1 len)
  | Some (Stall, stall_s) ->
      Thread.delay stall_s;
      Unix.write fd buf ofs len
  | Some (Drop, _) -> drop fd "write"
  | Some (Corrupt, _) ->
      let copy = Bytes.sub buf ofs len in
      corrupt_byte copy 0 len;
      Unix.write fd copy 0 len
