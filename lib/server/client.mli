(** Blocking client for the sta_serve wire protocol.

    One {!t} wraps one connected socket; calls are synchronous
    request/response pairs over {!Protocol.read_frame}/[write_frame].
    A client is not thread-safe — concurrent load generators open one
    client per thread, which is also how real callers behave.

    {!call_raw} exposes the response payload bytes untouched, which is
    what the bench's byte-identity check compares against a direct
    {!Protocol.execute} rendering. *)

type addr = Unix_path of string | Tcp of string * int

val addr_to_string : addr -> string

type t

val connect : ?retries:int -> addr -> t
(** Connect, retrying [retries] times (default 100, 50 ms apart) while
    the target refuses or does not exist yet — absorbs the daemon
    startup race in tests and CI. Raises [Unix.Unix_error] once the
    retries are exhausted. *)

val close : t -> unit

val call_raw : t -> Protocol.request -> (string, string) result
(** Send one request, return the raw response payload. [Error] means a
    transport-level problem (closed connection, truncated frame) — a
    typed failure from the server still arrives as [Ok] bytes carrying
    an [error] document. *)

val call : t -> Protocol.request -> (Json.t, string) result
(** {!call_raw} plus JSON parsing. *)

val ping : t -> (Json.t, string) result
(** [{"op":"ping"}] round-trip; the [ok] body reports the daemon's
    protocol version and engine name. *)
