(** Blocking client for the sta_serve wire protocol.

    One {!t} wraps one connected socket; calls are synchronous
    request/response pairs over {!Protocol.read_frame}/[write_frame].
    A client is not thread-safe — concurrent load generators open one
    client per thread, which is also how real callers behave.

    {!call_raw} exposes the response payload bytes untouched, which is
    what the bench's byte-identity check compares against a direct
    {!Protocol.execute} rendering. *)

type addr = Unix_path of string | Tcp of string * int

val addr_to_string : addr -> string

type t

val connect :
  ?retries:int -> ?read_timeout_s:float -> ?write_timeout_s:float -> addr -> t
(** Connect, retrying [retries] times (default 100, 50 ms apart) while
    the target refuses or does not exist yet — absorbs the daemon
    startup race in tests and CI. Raises [Unix.Unix_error] once the
    retries are exhausted. [read_timeout_s]/[write_timeout_s] arm
    socket deadlines ([SO_RCVTIMEO]/[SO_SNDTIMEO]) so a stalled or
    dead server surfaces as a transport error instead of hanging the
    caller. *)

val close : t -> unit

val call_raw : t -> Protocol.request -> (string, string) result
(** Send one request, return the raw response payload. [Error] means a
    transport-level problem (closed connection, truncated frame) — a
    typed failure from the server still arrives as [Ok] bytes carrying
    an [error] document. *)

val call : t -> Protocol.request -> (Json.t, string) result
(** {!call_raw} plus JSON parsing. *)

val request_digest : Protocol.request -> string
(** The journal digest ({!Journal.digest}) of [request]'s rendered
    payload — what the server dedups on. A request is rendered to
    bytes exactly once per logical call and the rendering is
    deterministic, so every retry carries this same digest; crash
    harnesses use it to match acknowledged responses against the
    server's replayed-response table. *)

val ping : t -> (Json.t, string) result
(** [{"op":"ping"}] round-trip; the [ok] body reports the daemon's
    protocol version and engine name. *)

(** {1 Retrying calls}

    Transport failures against a chaotic server (refused, reset,
    torn frame, timeout) are usually transient; {!call_with_retry}
    absorbs them with a fresh connection per attempt and capped
    exponential backoff, under a hard attempt budget so callers always
    end with a typed {!retry_error} rather than an unbounded loop. *)

type retry_policy = {
  attempts : int;  (** total attempts including the first (>= 1) *)
  base_delay_s : float;  (** backoff before attempt 2 *)
  max_delay_s : float;  (** backoff cap *)
  seed : int;
      (** jitter seed — deterministic digest-based jitter in
          [0.5, 1.0] of the capped delay desynchronises concurrent
          clients without a global RNG *)
}

val default_retry_policy : retry_policy
(** 5 attempts, 20 ms base, 500 ms cap, seed 0. *)

type retry_error = { attempts : int; last : string }
(** The budget was exhausted; [last] is the final attempt's failure. *)

val retry_error_to_string : retry_error -> string

val call_raw_with_retry :
  ?policy:retry_policy ->
  ?retry_recoverable:bool ->
  ?read_timeout_s:float ->
  ?write_timeout_s:float ->
  addr ->
  Protocol.request ->
  (string, retry_error) result
(** {!call_with_retry} on the raw payload bytes — for byte-identity
    harnesses. An unparseable payload is returned as [Ok] untouched
    (only transport errors and, with [retry_recoverable], well-formed
    recoverable errors consume the budget); the caller decides whether
    garbage bytes warrant another logical attempt. *)

val call_with_retry :
  ?policy:retry_policy ->
  ?retry_recoverable:bool ->
  ?read_timeout_s:float ->
  ?write_timeout_s:float ->
  addr ->
  Protocol.request ->
  (Json.t, retry_error) result
(** One logical request with retries: each attempt opens a fresh
    connection (no [connect]-level retries — refusals feed the backoff
    loop), sends the request's payload — rendered once, so every
    attempt is byte-identical and lands on the same journal digest
    (a server that already answered a previous attempt replies from
    its replayed-response table instead of re-executing) — and reads
    one response. [retry_recoverable] additionally retries well-formed
    responses whose [error] document is marked recoverable (admission
    sheds: [overloaded], [too_many_connections], [queue_timeout]) —
    off by default since re-running a solve costs server work. *)
