(** Write-ahead log of admitted requests — the daemon's crash-safety
    backbone.

    The retire protocol: an {!admit} record is written (and flushed)
    {e before} the request enters the workqueue; the matching
    {!retire} is written only {e after} the response frame has been
    flushed to the client socket. {!open_} therefore recovers exactly
    the requests that were admitted but whose answer is not known to
    have reached a client — the set the daemon must replay.

    On-disk format: numbered segment files ([wal-NNNNNN.seg]), each a
    versioned magic line followed by length-prefixed CRC-32-stamped
    records ([u32_be len | body | u32_be crc]; body is a one-byte
    kind, a 32-char hex digest, and — for admits — the raw request
    payload). Decoding tolerates hostility: a CRC-corrupt record is
    skipped (the length prefix still locates the next boundary), a
    truncated tail ends the segment, a duplicate retire is a no-op,
    and a segment with the wrong magic is ignored whole. {!open_}
    always compacts the surviving pending set into one fresh segment
    via tmp+rename (the [Runtime.Checkpoint] idiom) and unlinks the
    old files, so the journal never appends after a torn tail and
    replay is idempotent: open → kill → open twice recovers the same
    set as once.

    Durability is process-crash durability: records are flushed to the
    kernel on every write but not fsynced, so a SIGKILL/OOM-kill loses
    nothing while an OS-level power cut may lose the last instants.
    Disk-write failures degrade (counted in [write_errors]) rather
    than stop the service.

    All operations are thread-safe. *)

type t

type entry = { digest : string; payload : string }
(** One admitted-but-unretired request: the 32-char hex request digest
    and the raw request payload bytes as received. *)

type stats = {
  appended : int;  (** admit records written by this process *)
  retired : int;  (** retire records written by this process *)
  pending : int;  (** admitted and not yet retired, replay included *)
  rotations : int;  (** compactions after open *)
  replayed : int;  (** pending entries recovered by {!open_} *)
  torn_tails : int;  (** truncated segment tails dropped at decode *)
  crc_skipped : int;  (** CRC-mismatched or unknown-kind records skipped *)
  bad_segments : int;  (** unreadable or wrong-magic segments ignored *)
  write_errors : int;  (** failed journal writes (service kept going) *)
}

val open_ : ?max_segment_bytes:int -> string -> t
(** Open (creating the directory if needed), decode every segment,
    compact the pending set into a fresh segment and unlink the old
    ones. Recovered entries are available via {!pending}; recovery
    counters via {!stats}. [max_segment_bytes] (default 4 MiB) bounds
    the live segment before rotation drops retired records from
    disk. *)

val digest : string -> string
(** Request digest: 32-char hex MD5 of the raw payload bytes. A
    client that re-sends byte-identical payload bytes (deterministic
    request rendering) lands on the same digest, which is what lets
    the daemon dedup a retried request against a replayed response. *)

val admit : t -> digest:string -> payload:string -> unit
(** Journal an admitted request. Idempotent per digest: a payload
    already pending is not re-written (a reconnecting client racing
    replay). Must happen-before the request enters the workqueue. *)

val retire : t -> string -> unit
(** Journal the retirement of [digest]. Idempotent; a digest that is
    not pending is a no-op. Must happen-after the response frame was
    flushed to the client. *)

val pending : t -> entry list
(** Admitted-but-unretired entries, in admit order. *)

val is_pending : t -> string -> bool

val stats : t -> stats
val close : t -> unit

(** {1 Format internals}

    Exposed so torture tests and the fuzz corpus generator can craft
    hostile segments byte-exactly. *)

val magic : string
(** Segment header line. *)

val encode_admit : digest:string -> payload:string -> string
(** One framed admit record (length prefix + body + CRC). Raises
    [Invalid_argument] unless [digest] is 32 chars. *)

val encode_retire : string -> string
(** One framed retire record. *)
