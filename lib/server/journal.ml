(* Write-ahead log of admitted requests.

   One journal directory holds numbered segment files
   (wal-NNNNNN.seg). A segment is the versioned magic line followed by
   length-prefixed, CRC-stamped records:

     u32_be body_len | body | u32_be crc32(body)
     body := kind(1) ^ digest(32 hex) ^ payload    kind 'A' (admit)
     body := kind(1) ^ digest(32 hex)              kind 'R' (retire)

   An admit is written before the request enters the workqueue; the
   matching retire is written only after the response frame has been
   flushed to the client. Replay at open therefore recovers exactly
   the requests that were admitted but whose answer is not known to
   have reached a client.

   Open always compacts: every existing segment is decoded (tolerating
   a torn tail and CRC-corrupt records), the surviving pending set is
   rewritten as one fresh segment via tmp+rename (the
   Runtime.Checkpoint idiom — readers only ever see complete files),
   and the old segments are unlinked. Appending after a torn tail is
   thus impossible by construction. The same compaction runs as
   rotation when the live segment outgrows its budget, dropping
   retired records from disk.

   Disk trouble degrades rather than kills: a failed journal write is
   counted in [write_errors] and the daemon keeps serving — the
   durability guarantee narrows, the service does not stop. *)

let magic = "noisy_sta.wal.1\n"
let digest_len = 32

(* Record bodies are a fixed 33-byte header plus at most one protocol
   frame (16 MiB); anything larger decodes as a torn tail. *)
let max_body = (16 * 1024 * 1024) + 64

type entry = { digest : string; payload : string }

type stats = {
  appended : int;
  retired : int;
  pending : int;
  rotations : int;
  replayed : int;
  torn_tails : int;
  crc_skipped : int;
  bad_segments : int;
  write_errors : int;
}

type t = {
  dir : string;
  max_segment_bytes : int;
  m : Mutex.t;
  mutable oc : out_channel;
  mutable seg_index : int;
  mutable seg_bytes : int;
  mutable compact_bytes : int;  (* live segment size right after compaction *)
  tbl : (string, int * string) Hashtbl.t;  (* digest -> admit seq, payload *)
  mutable seq : int;
  mutable appended : int;
  mutable retired : int;
  mutable rotations : int;
  mutable replayed : int;
  mutable torn_tails : int;
  mutable crc_skipped : int;
  mutable bad_segments : int;
  mutable write_errors : int;
  mutable closed : bool;
}

let digest payload = Digest.to_hex (Digest.string payload)

(* ------------------------------------------------------------------ *)
(* Record codec *)

let u32_be n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let frame body =
  u32_be (String.length body)
  ^ body
  ^ (let b = Bytes.create 4 in
     Bytes.set_int32_be b 0 (Runtime.Crc32.string body);
     Bytes.to_string b)

let check_digest d =
  if String.length d <> digest_len then
    invalid_arg "Journal: digest must be 32 hex chars"

let encode_admit ~digest ~payload =
  check_digest digest;
  frame ("A" ^ digest ^ payload)

let encode_retire digest =
  check_digest digest;
  frame ("R" ^ digest)

(* Decode one segment's raw bytes into [tbl], returning recovery
   counters. A record whose CRC fails is skipped (the length prefix
   still locates the next record boundary); a record that does not fit
   in the remaining bytes, or whose length is implausible, is a torn
   tail and ends the segment. *)
let decode_segment t raw =
  let n = String.length raw in
  let mlen = String.length magic in
  if n < mlen || not (String.equal (String.sub raw 0 mlen) magic) then
    t.bad_segments <- t.bad_segments + 1
  else begin
    let pos = ref mlen in
    let stop = ref false in
    while not !stop do
      if !pos = n then stop := true
      else if !pos + 4 > n then begin
        t.torn_tails <- t.torn_tails + 1;
        stop := true
      end
      else
        let body_len = Int32.to_int (String.get_int32_be raw !pos) in
        if body_len < 1 + digest_len || body_len > max_body
           || !pos + 4 + body_len + 4 > n
        then begin
          t.torn_tails <- t.torn_tails + 1;
          stop := true
        end
        else begin
          let body_pos = !pos + 4 in
          let stored = String.get_int32_be raw (body_pos + body_len) in
          (if Runtime.Crc32.update 0l raw body_pos body_len <> stored then
             t.crc_skipped <- t.crc_skipped + 1
           else
             let kind = raw.[body_pos] in
             let d = String.sub raw (body_pos + 1) digest_len in
             match kind with
             | 'A' ->
                 if not (Hashtbl.mem t.tbl d) then begin
                   let payload =
                     String.sub raw
                       (body_pos + 1 + digest_len)
                       (body_len - 1 - digest_len)
                   in
                   Hashtbl.replace t.tbl d (t.seq, payload);
                   t.seq <- t.seq + 1
                 end
             | 'R' -> Hashtbl.remove t.tbl d
             | _ ->
                 (* Valid CRC, unknown kind: a future format speaking
                    through an old reader. Skip the record. *)
                 t.crc_skipped <- t.crc_skipped + 1);
          pos := !pos + 4 + body_len + 4
        end
    done
  end

(* ------------------------------------------------------------------ *)
(* Segment files *)

let seg_name i = Printf.sprintf "wal-%06d.seg" i

let seg_index_of name =
  if
    String.length name = String.length (seg_name 0)
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name 4 6)
  else None

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Pending entries in admit order. *)
let pending_entries tbl =
  Hashtbl.fold (fun d (seq, payload) acc -> (seq, d, payload) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare (a : int) b)
  |> List.map (fun (_, d, payload) -> { digest = d; payload })

(* Write segment [index] containing exactly the pending set, via
   tmp+rename, and unlink every older segment. Called with the lock
   held (or before [t] escapes open_). *)
let write_compacted dir index entries old_indices =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  List.iter
    (fun { digest = d; payload } ->
      Buffer.add_string buf (encode_admit ~digest:d ~payload))
    entries;
  let path = Filename.concat dir (seg_name index) in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      ((Domain.self () :> int))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Sys.rename tmp path;
  List.iter
    (fun i ->
      if i <> index then
        try Sys.remove (Filename.concat dir (seg_name i))
        with Sys_error _ -> ())
    old_indices;
  (path, Buffer.length buf)

let open_append path =
  open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path

(* ------------------------------------------------------------------ *)

let open_ ?(max_segment_bytes = 4 * 1024 * 1024) dir =
  ensure_dir dir;
  let indices =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map seg_index_of
    |> List.sort compare
  in
  let t =
    {
      dir;
      max_segment_bytes;
      m = Mutex.create ();
      oc = stdout (* replaced below *);
      seg_index = 0;
      seg_bytes = 0;
      compact_bytes = 0;
      tbl = Hashtbl.create 64;
      seq = 0;
      appended = 0;
      retired = 0;
      rotations = 0;
      replayed = 0;
      torn_tails = 0;
      crc_skipped = 0;
      bad_segments = 0;
      write_errors = 0;
      closed = false;
    }
  in
  List.iter
    (fun i ->
      match read_file (Filename.concat dir (seg_name i)) with
      | raw -> decode_segment t raw
      | exception Sys_error _ -> t.bad_segments <- t.bad_segments + 1)
    indices;
  t.replayed <- Hashtbl.length t.tbl;
  let next = match List.rev indices with [] -> 0 | i :: _ -> i + 1 in
  let path, bytes =
    write_compacted dir next (pending_entries t.tbl) indices
  in
  t.seg_index <- next;
  t.seg_bytes <- bytes;
  t.compact_bytes <- bytes;
  t.oc <- open_append path;
  t

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Rotation drops retired records from disk. Only worthwhile when the
   live segment has actually accumulated garbage beyond its last
   compacted size — without the 2x guard a pending set near the budget
   would recompact on every append. *)
let maybe_rotate t =
  if
    t.seg_bytes > t.max_segment_bytes
    && t.seg_bytes > 2 * Int.max 1 t.compact_bytes
  then begin
    close_out_noerr t.oc;
    let path, bytes =
      write_compacted t.dir (t.seg_index + 1) (pending_entries t.tbl)
        [ t.seg_index ]
    in
    t.seg_index <- t.seg_index + 1;
    t.seg_bytes <- bytes;
    t.compact_bytes <- bytes;
    t.oc <- open_append path;
    t.rotations <- t.rotations + 1
  end

let write_record t record =
  match
    output_string t.oc record;
    flush t.oc
  with
  | () ->
      t.seg_bytes <- t.seg_bytes + String.length record;
      true
  | exception Sys_error _ ->
      t.write_errors <- t.write_errors + 1;
      false

let admit t ~digest:d ~payload =
  check_digest d;
  locked t (fun () ->
      if (not t.closed) && not (Hashtbl.mem t.tbl d) then begin
        Hashtbl.replace t.tbl d (t.seq, payload);
        t.seq <- t.seq + 1;
        if write_record t (encode_admit ~digest:d ~payload) then
          t.appended <- t.appended + 1;
        maybe_rotate t
      end)

let retire t d =
  check_digest d;
  locked t (fun () ->
      if (not t.closed) && Hashtbl.mem t.tbl d then begin
        Hashtbl.remove t.tbl d;
        if write_record t (encode_retire d) then
          t.retired <- t.retired + 1;
        maybe_rotate t
      end)

let pending t = locked t (fun () -> pending_entries t.tbl)
let is_pending t d = locked t (fun () -> Hashtbl.mem t.tbl d)

let stats t =
  locked t (fun () ->
      {
        appended = t.appended;
        retired = t.retired;
        pending = Hashtbl.length t.tbl;
        rotations = t.rotations;
        replayed = t.replayed;
        torn_tails = t.torn_tails;
        crc_skipped = t.crc_skipped;
        bad_segments = t.bad_segments;
        write_errors = t.write_errors;
      })

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        close_out_noerr t.oc
      end)
