module Job = struct
  type t = {
    request : Protocol.request;
    enqueued_at : float;
    m : Mutex.t;
    cv : Condition.t;
    mutable response : Json.t option;
  }

  let make request =
    {
      request;
      enqueued_at = Unix.gettimeofday ();
      m = Mutex.create ();
      cv = Condition.create ();
      response = None;
    }

  let request t = t.request

  let fill t resp =
    Mutex.lock t.m;
    if t.response = None then begin
      t.response <- Some resp;
      Condition.broadcast t.cv
    end;
    Mutex.unlock t.m

  let await t =
    Mutex.lock t.m;
    while t.response = None do
      Condition.wait t.cv t.m
    done;
    let v = match t.response with Some v -> v | None -> assert false in
    Mutex.unlock t.m;
    v
end

(* One request's effective engine: the shared engine plus its own
   wall-clock budget. [Engine.with_deadline] is the per-solve budget the
   harness entry points install around every solve attempt, so a
   deadlined sweep sheds exactly its slow cases as typed failures. *)
let effective_engine ~engine ~default_deadline_ms (req : Protocol.request) =
  match (req.Protocol.deadline_ms, default_deadline_ms) with
  | Some ms, _ | None, Some ms -> Runtime.Engine.with_deadline engine ms
  | None, None -> engine

let run_job ~engine ~metrics ~default_deadline_ms (job : Job.t) =
  let req = Job.request job in
  let response =
    match
      Protocol.execute
        ~engine:(effective_engine ~engine ~default_deadline_ms req)
        ~metrics req.Protocol.query
    with
    | result ->
        (match result with
        | Ok _ -> Runtime.Metrics.incr metrics "server.executed"
        | Error _ -> Runtime.Metrics.incr metrics "server.exec_errors");
        Protocol.response ~id:req.Protocol.id result
    | exception e ->
        (* A bug in a technique or the server itself: answer the client
           and keep serving — one poisoned request must not take the
           daemon down. *)
        Runtime.Metrics.incr metrics "server.internal_errors";
        Protocol.error_response ~id:req.Protocol.id ~code:"internal"
          (Printexc.to_string e)
  in
  Job.fill job response

(* Queue-wait admission recheck at pop time: an answer the client
   stopped waiting for is pure wasted compute. *)
let timed_out ~queue_timeout_ms (job : Job.t) =
  match queue_timeout_ms with
  | None -> None
  | Some budget_ms ->
      let waited_ms = (Unix.gettimeofday () -. job.Job.enqueued_at) *. 1e3 in
      if waited_ms > budget_ms then Some (waited_ms, budget_ms) else None

let shed_timeout ~metrics (job : Job.t) (waited_ms, budget_ms) =
  Runtime.Metrics.incr metrics "server.queue_timeouts";
  let req = Job.request job in
  Job.fill job
    (Protocol.response ~id:req.Protocol.id
       (Error (Runtime.Failure.Queue_timeout { waited_ms; budget_ms })))

let serve ~queue ~engine ~metrics ?(max_batch = 16) ?queue_timeout_ms
    ?default_deadline_ms ?progress () =
  (* Every answered job ticks the progress counter; the daemon's
     heartbeat watchdog distinguishes "slow but advancing" from
     "wedged with queued work" by watching it. *)
  let tick () = Option.iter Atomic.incr progress in
  let run_one job =
    run_job ~engine ~metrics ~default_deadline_ms job;
    tick ()
  in
  (* Jobs are batched only while consecutive and single-case; the first
     incompatible pop is carried into the next round so nothing is
     reordered across a sweep boundary. *)
  let carry = ref None in
  let next () =
    match !carry with
    | Some j ->
        carry := None;
        Some j
    | None -> Workqueue.pop queue
  in
  let rec gather acc n =
    if n >= max_batch then List.rev acc
    else
      match Workqueue.try_pop queue with
      | None -> List.rev acc
      | Some j -> (
          match timed_out ~queue_timeout_ms j with
          | Some t ->
              shed_timeout ~metrics j t;
              tick ();
              gather acc n
          | None -> (
              match Protocol.klass (Job.request j).Protocol.query with
              | Protocol.Single _ -> gather (j :: acc) (n + 1)
              | _ ->
                  carry := Some j;
                  List.rev acc))
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some head -> (
        match timed_out ~queue_timeout_ms head with
        | Some t ->
            shed_timeout ~metrics head t;
            tick ();
            loop ()
        | None ->
            let batch =
              match Protocol.klass (Job.request head).Protocol.query with
              | Protocol.Single _ -> head :: gather [] 1
              | _ -> [ head ]
            in
            let n = List.length batch in
            Runtime.Metrics.incr metrics "server.batches";
            if n > 1 then
              Runtime.Metrics.incr ~n metrics "server.batched_requests";
            Runtime.Metrics.set metrics "server.in_flight" n;
            (match batch with
            | [ job ] -> run_one job
            | jobs ->
                let jobs = Array.of_list jobs in
                (* One engine submission for the whole batch; [chunk:1]
                   so each domain claims one request at a time. *)
                ignore
                  (Runtime.Engine.submit_batch ~chunk:1 engine
                     (Array.length jobs)
                     (fun i -> run_one jobs.(i))));
            Runtime.Metrics.set metrics "server.in_flight" 0;
            loop ())
  in
  loop ()
