type config = {
  addr : Client.addr;
  http_port : int option;
  engine : Runtime.Engine.t;
  queue_depth : int;
  max_batch : int;
  queue_timeout_ms : float option;
  default_deadline_ms : float option;
  max_conns : int;
  read_timeout_s : float option;
  write_timeout_s : float option;
  max_frames_per_conn : int option;
  journal_dir : string option;
  scrub_budget_s : float option;
  watchdog_s : float option;
  restarts : int;
  on_wedged : (unit -> unit) option;
}

let default_config =
  {
    addr = Client.Unix_path "/tmp/sta_serve.sock";
    http_port = None;
    engine = Runtime.Engine.fast;
    queue_depth = 64;
    max_batch = 16;
    queue_timeout_ms = None;
    default_deadline_ms = None;
    max_conns = 256;
    read_timeout_s = None;
    write_timeout_s = None;
    max_frames_per_conn = None;
    journal_dir = None;
    scrub_budget_s = None;
    watchdog_s = None;
    restarts = 0;
    on_wedged = None;
  }

let wedged_exit_code = 70

(* ------------------------------------------------------------------ *)
(* Replayed-response table: digest -> rendered response bytes, FIFO
   bounded by entry count and total bytes. A reconnecting client whose
   previous attempt died between "response computed" and "response
   received" re-sends byte-identical payload bytes, lands on the same
   digest, and is answered from here without re-executing — that is
   the journal's dedup guarantee. Only success documents are recorded:
   caching a shed or a deadline trip would freeze a transient
   condition into a permanent answer. *)

module Dedup = struct
  type t = {
    m : Mutex.t;
    tbl : (string, string) Hashtbl.t;
    order : string Queue.t;
    max_entries : int;
    max_bytes : int;
    mutable bytes : int;
  }

  let create ?(max_entries = 1024) ?(max_bytes = 64 * 1024 * 1024) () =
    {
      m = Mutex.create ();
      tbl = Hashtbl.create 256;
      order = Queue.create ();
      max_entries;
      max_bytes;
      bytes = 0;
    }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let find t digest = locked t (fun () -> Hashtbl.find_opt t.tbl digest)

  let add t digest response =
    locked t (fun () ->
        if not (Hashtbl.mem t.tbl digest) then begin
          Hashtbl.replace t.tbl digest response;
          Queue.push digest t.order;
          t.bytes <- t.bytes + String.length response;
          while
            (not (Queue.is_empty t.order))
            && (Hashtbl.length t.tbl > t.max_entries || t.bytes > t.max_bytes)
          do
            let old = Queue.pop t.order in
            (match Hashtbl.find_opt t.tbl old with
            | Some r -> t.bytes <- t.bytes - String.length r
            | None -> ());
            Hashtbl.remove t.tbl old
          done
        end)
end

type t = {
  config : config;
  metrics : Runtime.Metrics.t;
  engine : Runtime.Engine.t;
  queue : Batcher.Job.t Workqueue.t;
  stop_flag : bool Atomic.t;
  draining : bool Atomic.t;
  replaying : bool Atomic.t;
  progress : int Atomic.t;
  journal : Journal.t option;
  dedup : Dedup.t;
  listen_fd : Unix.file_descr;
  http_fd : Unix.file_descr option;
  batcher : Thread.t;
  watchdog : Thread.t option;
  acceptors : Thread.t list;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_m : Mutex.t;
  threads : Thread.t list ref;
  threads_m : Mutex.t;
  stopped : bool Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Latency histogram: cumulative Prometheus-convention buckets kept in
   the plain counter registry via label-suffixed names. *)

let latency_buckets = [ 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000. ]

let bucket_counter le =
  Printf.sprintf "server.latency_ms_bucket{le=\"%s\"}" le

let observe_latency metrics ms =
  List.iter
    (fun le ->
      if ms <= le then
        Runtime.Metrics.incr metrics (bucket_counter (Printf.sprintf "%g" le)))
    latency_buckets;
  Runtime.Metrics.incr metrics (bucket_counter "+Inf");
  Runtime.Metrics.incr metrics "server.latency_ms_count";
  Runtime.Metrics.incr
    ~n:(max 0 (int_of_float (Float.round ms)))
    metrics "server.latency_ms_sum"

(* ------------------------------------------------------------------ *)
(* Sockets *)

let bind_listen addr =
  let domain, sa = Client.(
    match addr with
    | Unix_path p ->
        (try Unix.unlink p with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    | Tcp (host, port) ->
        let resolved =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception Failure _ -> Unix.inet_addr_loopback
        in
        (Unix.PF_INET, Unix.ADDR_INET (resolved, port)))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match sa with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX _ -> ());
  (try Unix.bind fd sa
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 128;
  fd

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-connection protocol loop *)

let write_response fd doc = Protocol.write_frame fd (Json.to_string doc)

let publish_journal t =
  match t.journal with
  | None -> ()
  | Some j ->
      let s = Journal.stats j in
      let set k v = Runtime.Metrics.set t.metrics k v in
      set "server.journal_pending" s.Journal.pending;
      set "server.journal_appended" s.Journal.appended;
      set "server.journal_retired" s.Journal.retired;
      set "server.journal_rotations" s.Journal.rotations;
      set "server.journal_replayed" s.Journal.replayed;
      set "server.journal_torn_tails" s.Journal.torn_tails;
      set "server.journal_crc_skipped" s.Journal.crc_skipped;
      set "server.journal_write_errors" s.Journal.write_errors

let handle_request t fd payload =
  let started = Unix.gettimeofday () in
  (match Protocol.parse_request payload with
  | Error err ->
      Runtime.Metrics.incr t.metrics
        (match err with
        | Protocol.Bad_request _ -> "server.bad_requests"
        | Protocol.Version_mismatch _ -> "server.version_mismatches");
      write_response fd (Protocol.parse_error_response err)
  | Ok req -> (
      let id = req.Protocol.id in
      match Protocol.klass req.Protocol.query with
      | Protocol.Inline ->
          (* ping/stats never solve: safe on the connection thread and
             never queued, so liveness survives overload. They are also
             never journaled — stats is time-varying and ping is free. *)
          Runtime.Metrics.incr t.metrics "server.accepted";
          let result =
            Protocol.execute ~engine:t.engine ~metrics:t.metrics
              req.Protocol.query
          in
          write_response fd (Protocol.response ~id result)
      | Protocol.Single _ | Protocol.Sweep -> (
          let dg = Journal.digest payload in
          let retire () =
            Option.iter (fun j -> Journal.retire j dg) t.journal;
            publish_journal t
          in
          match Dedup.find t.dedup dg with
          | Some cached ->
              (* A retried request the journal already answered
                 (replay, or a peer that died mid-response): return the
                 original bytes without executing. Retire after the
                 flush — the original attempt's entry may still be
                 pending if its write never completed. *)
              Runtime.Metrics.incr t.metrics "server.journal_deduped";
              Protocol.write_frame fd cached;
              retire ()
          | None -> (
              (* Journal before the workqueue: once admitted, the
                 request survives a crash of this process. *)
              Option.iter
                (fun j -> Journal.admit j ~digest:dg ~payload)
                t.journal;
              let job = Batcher.Job.make req in
              match Workqueue.try_push t.queue job with
              | Ok () ->
                  Runtime.Metrics.incr t.metrics "server.accepted";
                  Runtime.Metrics.set t.metrics "server.queue_depth"
                    (Workqueue.length t.queue);
                  let doc = Batcher.Job.await job in
                  let rendered = Json.to_string doc in
                  (* Record before the flush so a peer that dies
                     mid-write still finds its answer on retry; only
                     success documents — caching a shed or deadline
                     trip would freeze a transient condition. *)
                  if Json.member "error" doc = None then
                    Dedup.add t.dedup dg rendered;
                  (* Retire strictly after the response frame is
                     flushed: a crash in between replays the request,
                     a crash after does not — acknowledged work is
                     never lost and never re-acknowledged differently.
                     A failed write leaves the entry pending on
                     purpose. *)
                  Protocol.write_frame fd rendered;
                  retire ()
              | Error `Overloaded ->
                  Runtime.Metrics.incr t.metrics "server.shed";
                  (* A shed is not an acknowledgement; retire whatever
                     happens to the farewell frame. *)
                  Fun.protect ~finally:retire (fun () ->
                      write_response fd
                        (Protocol.response ~id
                           (Error
                              (Runtime.Failure.Overloaded
                                 { queue_depth = Workqueue.depth t.queue }))))
              | Error `Closed ->
                  Fun.protect ~finally:retire (fun () ->
                      write_response fd
                        (Protocol.error_response ~id ~code:"shutting_down"
                           "server is draining"))))));
  observe_latency t.metrics ((Unix.gettimeofday () -. started) *. 1e3)

(* Best-effort: the peer may already be gone, and on a write-deadline
   socket the farewell frame itself may time out. *)
let try_respond fd doc =
  try write_response fd doc with Unix.Unix_error _ -> ()

let conn_active t =
  Mutex.lock t.conns_m;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_m;
  n

let conn_loop t key fd =
  let finish () =
    Mutex.lock t.conns_m;
    Hashtbl.remove t.conns key;
    let active = Hashtbl.length t.conns in
    Mutex.unlock t.conns_m;
    close_quietly fd;
    Runtime.Metrics.incr t.metrics "server.conn_closed";
    Runtime.Metrics.set t.metrics "server.conn_active" active
  in
  Fun.protect ~finally:finish (fun () ->
      let rec go frames =
        let over_budget =
          match t.config.max_frames_per_conn with
          | Some limit -> frames >= limit
          | None -> false
        in
        if over_budget then begin
          (* The connection did nothing wrong; it just exhausted its
             frame budget. Tell it to reconnect rather than vanishing. *)
          Runtime.Metrics.incr t.metrics "server.conn_frame_limit";
          try_respond fd
            (Protocol.error_response ~id:0 ~code:"frame_limit"
               (Printf.sprintf
                  "per-connection frame budget of %d exhausted, reconnect"
                  frames))
        end
        else
          match Protocol.read_frame fd with
          | Error `Eof -> ()
          | Error (`Timeout `Idle) ->
              (* Quiet connection past the read deadline: reclaim it. *)
              Runtime.Metrics.incr t.metrics "server.conn_idle_timeouts"
          | Error (`Timeout `Mid_frame) ->
              (* The slowloris signature: a frame was started and never
                 finished. Answer and drop. *)
              Runtime.Metrics.incr t.metrics "server.conn_read_timeouts";
              try_respond fd
                (Protocol.error_response ~id:0 ~code:"timeout"
                   "read timed out mid-frame, connection dropped")
          | Error (`Err msg) ->
              (* Framing is broken; we cannot resync, so answer and drop
                 the connection. *)
              Runtime.Metrics.incr t.metrics "server.conn_errors";
              try_respond fd
                (Protocol.error_response ~id:0 ~code:"bad_request" msg)
          | Ok payload -> (
              match handle_request t fd payload with
              | () -> go (frames + 1)
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                ->
                  (* The peer stopped draining its socket past the write
                     deadline. *)
                  Runtime.Metrics.incr t.metrics "server.conn_write_timeouts"
              | exception Unix.Unix_error _ -> ())
      in
      go 0)

let spawn t f =
  let th = Thread.create f () in
  Mutex.lock t.threads_m;
  t.threads := th :: !(t.threads);
  Mutex.unlock t.threads_m

(* Per-connection deadlines via socket timeouts: a blocked read/write
   past the budget surfaces as EAGAIN, which the framing layer maps to
   [`Timeout] — the slowloris defense needs no extra watcher thread. *)
let arm_deadlines config fd =
  let set opt v =
    match v with
    | None -> ()
    | Some s -> (
        try Unix.setsockopt_float fd opt s with Unix.Unix_error _ -> ())
  in
  set Unix.SO_RCVTIMEO config.read_timeout_s;
  set Unix.SO_SNDTIMEO config.write_timeout_s

(* ------------------------------------------------------------------ *)
(* Crash recovery: replay, watchdog, health *)

(* Replay every unretired journal entry through the same
   [Protocol.execute] path a live request takes, so the recovered
   response is byte-identical to what the crashed process would have
   sent. Runs at the head of the batcher thread — before the first
   [Batcher.serve] pop — which preserves the single-solve-thread
   invariant (per-request deadline state is domain-local). Replay
   deliberately ignores request deadlines: the work was already
   admitted once, and a deadline trip here would turn a recovered
   answer into a spurious failure. *)
let replay t =
  (match t.journal with
  | None -> ()
  | Some j ->
      List.iter
        (fun (e : Journal.entry) ->
          (match Protocol.parse_request e.Journal.payload with
          | Error _ ->
              (* Journaled garbage (should be impossible — we admit
                 after parse) — drop it. *)
              ()
          | Ok req -> (
              match Protocol.klass req.Protocol.query with
              | Protocol.Inline -> ()
              | Protocol.Single _ | Protocol.Sweep ->
                  if Dedup.find t.dedup e.Journal.digest = None then begin
                    let doc =
                      try
                        Protocol.response ~id:req.Protocol.id
                          (Protocol.execute ~engine:t.engine
                             ~metrics:t.metrics req.Protocol.query)
                      with exn ->
                        Protocol.error_response ~id:req.Protocol.id
                          ~code:"internal" (Printexc.to_string exn)
                    in
                    if Json.member "error" doc = None then
                      Dedup.add t.dedup e.Journal.digest
                        (Json.to_string doc);
                    Runtime.Metrics.incr t.metrics "server.replayed"
                  end));
          Journal.retire j e.Journal.digest;
          (* Each replayed entry is progress: a long replay must not
             trip the wedged-batcher watchdog. *)
          Atomic.incr t.progress)
        (Journal.pending j));
  Atomic.set t.replaying false;
  publish_journal t

(* Heartbeat watchdog: queued work plus a progress counter that has
   not moved for [budget_s] means the batcher is wedged (deadlocked
   pool, stuck solve that ignores its deadline). Restarting is the
   only safe recovery — the journal makes it cheap. [on_wedged] is the
   test seam; production exits [wedged_exit_code] so the supervisor
   respawns. *)
let watchdog_loop t budget_s =
  let tick = Float.min 0.2 (Float.max 0.01 (budget_s /. 4.0)) in
  let last_progress = ref (Atomic.get t.progress) in
  let last_change = ref (Unix.gettimeofday ()) in
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      Thread.delay tick;
      let p = Atomic.get t.progress in
      let now = Unix.gettimeofday () in
      if p <> !last_progress then begin
        last_progress := p;
        last_change := now
      end
      else if
        Workqueue.length t.queue > 0 && now -. !last_change >= budget_s
      then begin
        Runtime.Metrics.incr t.metrics "server.watchdog_trips";
        match t.config.on_wedged with
        | Some f ->
            f ();
            last_change := now
        | None ->
            Printf.eprintf
              "sta_serve: batcher made no progress for %gs with queued \
               work; self-restarting\n\
               %!"
              budget_s;
            Stdlib.exit wedged_exit_code
      end;
      loop ()
    end
  in
  loop ()

let health_doc t =
  let status, reasons =
    if Atomic.get t.draining then ("draining", [ "draining" ])
    else
      let reasons = ref [] in
      let add r = reasons := r :: !reasons in
      (match Runtime.Engine.cache t.engine with
      | None -> ()
      | Some c -> (
          match Runtime.Cache.breaker_state c with
          | None | Some Runtime.Cache.Breaker.Closed -> ()
          | Some (Runtime.Cache.Breaker.Open | Runtime.Cache.Breaker.Half_open)
            ->
              add "breaker_open"));
      if Atomic.get t.replaying then add "replay_in_progress";
      if Workqueue.length t.queue >= Workqueue.depth t.queue then
        add "queue_saturated";
      let reasons = List.rev !reasons in
      ((if reasons = [] then "ok" else "degraded"), reasons)
  in
  Json.Obj
    [
      ("status", Json.Str status);
      ("reasons", Json.Arr (List.map (fun r -> Json.Str r) reasons));
    ]

let health = health_doc

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let conn_counter = Atomic.make 0

let start (config : config) =
  (* A client vanishing mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let metrics =
    match Runtime.Engine.metrics config.engine with
    | Some m -> m
    | None -> Runtime.Metrics.create ()
  in
  let engine = Runtime.Engine.with_metrics config.engine metrics in
  Runtime.Metrics.set metrics "server.restarts" config.restarts;
  (* Bounded-time startup scrub: after a crash the disk cache may hold
     torn or corrupt entries; validate the newest ones while the
     budget lasts and unlink anything that fails its CRC, so warm
     starts never serve garbage. *)
  (match (config.scrub_budget_s, Runtime.Engine.cache engine) with
  | Some budget_s, Some cache ->
      let r = Runtime.Cache.scrub ~budget_s cache in
      Runtime.Metrics.set metrics "cache.scrubbed" r.Runtime.Cache.scanned;
      Runtime.Metrics.set metrics "cache.scrub_corrupt" r.Runtime.Cache.corrupt;
      Runtime.Metrics.set metrics "cache.scrub_tmp_reaped"
        r.Runtime.Cache.tmp_reaped;
      Runtime.Metrics.set metrics "cache.scrub_complete"
        (if r.Runtime.Cache.complete then 1 else 0)
  | _ -> ());
  let journal =
    Option.map (fun dir -> Journal.open_ dir) config.journal_dir
  in
  let queue = Workqueue.create ~depth:config.queue_depth in
  let stop_flag = Atomic.make false in
  let draining = Atomic.make false in
  let replaying =
    Atomic.make
      (match journal with Some j -> Journal.pending j <> [] | None -> false)
  in
  let progress = Atomic.make 0 in
  let listen_fd = bind_listen config.addr in
  let http_fd =
    Option.map
      (fun port -> bind_listen (Client.Tcp ("127.0.0.1", port)))
      config.http_port
  in
  let t =
    {
      config;
      metrics;
      engine;
      queue;
      stop_flag;
      draining;
      replaying;
      progress;
      journal;
      dedup = Dedup.create ();
      listen_fd;
      http_fd;
      (* Placeholder; the shared mutable state above is what the
         serving threads close over, so the functional update below is
         safe. *)
      batcher = Thread.self ();
      watchdog = None;
      acceptors = [];
      conns = Hashtbl.create 64;
      conns_m = Mutex.create ();
      threads = ref [];
      threads_m = Mutex.create ();
      stopped = Atomic.make false;
    }
  in
  publish_journal t;
  (* Replay runs at the head of the batcher thread: the single thread
     that ever executes solves, before the first queue pop. Requests
     arriving during replay queue up behind it (or dedup-hit). *)
  let batcher =
    Thread.create
      (fun () ->
        replay t;
        Batcher.serve ~queue ~engine ~metrics ~max_batch:config.max_batch
          ?queue_timeout_ms:config.queue_timeout_ms
          ?default_deadline_ms:config.default_deadline_ms ~progress ())
      ()
  in
  let watchdog =
    Option.map
      (fun budget_s -> Thread.create (fun () -> watchdog_loop t budget_s) ())
      config.watchdog_s
  in
  let proto_acceptor =
    Thread.create
      (fun () ->
        Listener.accept_loop ~stop:stop_flag listen_fd (fun fd _peer ->
            let active = conn_active t in
            if active >= config.max_conns then begin
              (* Budget exhausted: shed with a typed failure so the
                 client can tell "back off and reconnect" from a crash,
                 then close — never hold an fd for a connection we will
                 not serve. *)
              Runtime.Metrics.incr metrics "server.conn_shed";
              arm_deadlines config fd;
              try_respond fd
                (Protocol.response ~id:0
                   (Error
                      (Runtime.Failure.Too_many_connections
                         { active; limit = config.max_conns })));
              close_quietly fd
            end
            else begin
              Runtime.Metrics.incr metrics "server.connections";
              Runtime.Metrics.incr metrics "server.conn_opened";
              arm_deadlines config fd;
              let key = Atomic.fetch_and_add conn_counter 1 in
              Mutex.lock t.conns_m;
              Hashtbl.replace t.conns key fd;
              let now_active = Hashtbl.length t.conns in
              Mutex.unlock t.conns_m;
              Runtime.Metrics.set metrics "server.conn_active" now_active;
              spawn t (fun () -> conn_loop t key fd)
            end))
      ()
  in
  let http_acceptor =
    Option.map
      (fun fd ->
        let health () = Json.to_string (health_doc t) ^ "\n" in
        Thread.create
          (fun () ->
            Listener.accept_loop ~stop:stop_flag fd (fun cfd _peer ->
                arm_deadlines config cfd;
                spawn t (fun () ->
                    Listener.handle_http ~metrics ~health cfd)))
          ())
      http_fd
  in
  {
    t with
    batcher;
    watchdog;
    acceptors = proto_acceptor :: Option.to_list http_acceptor;
  }

let addr t = t.config.addr
let metrics t = t.metrics

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.draining true;
    (* 1. Stop accepting. *)
    Atomic.set t.stop_flag true;
    List.iter Thread.join t.acceptors;
    close_quietly t.listen_fd;
    Option.iter close_quietly t.http_fd;
    (match t.config.addr with
    | Client.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Client.Tcp _ -> ());
    (* 2. Refuse new work, then let the batcher answer everything
       already queued. *)
    Workqueue.close t.queue;
    Thread.join t.batcher;
    (* 3. Unblock idle readers: half-close the receive side so blocked
       [read_frame]s see EOF while responses still flush out. *)
    Mutex.lock t.conns_m;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
    Mutex.unlock t.conns_m;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      fds;
    (* 4. Join every connection/http thread. *)
    let threads =
      Mutex.lock t.threads_m;
      let ts = !(t.threads) in
      Mutex.unlock t.threads_m;
      ts
    in
    List.iter Thread.join threads;
    (* 5. Only now close the journal: retires are written on
       connection threads strictly after each response frame is
       flushed, so closing earlier would drop the retire of an
       already-acknowledged response and replay it (differently
       observable to the client) at the next start. The watchdog
       exits on the stop flag. *)
    Option.iter Thread.join t.watchdog;
    Option.iter Journal.close t.journal
  end

let run config =
  let wants_stop = Atomic.make false in
  let request_stop _ = Atomic.set wants_stop true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let t = start config in
  Fun.protect
    ~finally:(fun () ->
      stop t;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigterm old_term)
    (fun () ->
      while not (Atomic.get wants_stop) do
        Thread.delay 0.1
      done)
