let accept_loop ~stop lfd handler =
  while not (Atomic.get stop) do
    match Unix.select [ lfd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true lfd with
        | fd, peer -> handler fd peer
        | exception Unix.Unix_error ((EINTR | ECONNABORTED | EAGAIN), _, _)
          ->
            ()
        | exception Unix.Unix_error (EBADF, _, _) ->
            (* Listening socket closed under us during shutdown. *)
            Atomic.set stop true)
    | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> ()
  done

(* ------------------------------------------------------------------ *)
(* HTTP *)

let max_http_request = 8 * 1024

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Read until the blank line ending the header block; we ignore the
   headers themselves, so the request line is all we need to route.
   The cap is a hard limit on the buffered total — a header block that
   would exceed it is rejected as [`Too_large] (answered 413), never
   silently truncated — and a read deadline expiring on the socket
   (SO_RCVTIMEO → EAGAIN) surfaces as [`Timeout] (answered 408). *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let header_done () =
    let s = Buffer.contents buf in
    contains_substring s "\r\n\r\n" || contains_substring s "\n\n"
  in
  let rec go () =
    if header_done () then Ok (Buffer.contents buf)
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Ok (Buffer.contents buf)
      | n ->
          if Buffer.length buf + n > max_http_request then Error `Too_large
          else begin
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          end
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          Error `Timeout
  in
  go ()

let respond fd ~status ~body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\n\
       Content-Type: text/plain; charset=utf-8\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let len = Bytes.length payload in
  let rec go ofs =
    if ofs < len then
      match Unix.write fd payload ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go ofs
  in
  go 0

let route ~metrics ~health line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "GET"; "/metrics"; _ ] | [ "GET"; "/metrics" ] ->
      ("200 OK", Runtime.Metrics.to_prometheus metrics)
  | [ "GET"; ("/health" | "/healthz"); _ ]
  | [ "GET"; ("/health" | "/healthz") ] ->
      ("200 OK", health ())
  | "GET" :: _ -> ("404 Not Found", "not found\n")
  | _ -> ("405 Method Not Allowed", "method not allowed\n")

let handle_http ~metrics ~health fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        match read_request fd with
        | Error `Too_large ->
            Runtime.Metrics.incr metrics "server.http_errors";
            respond fd ~status:"413 Content Too Large"
              ~body:"request header block too large\n"
        | Error `Timeout ->
            Runtime.Metrics.incr metrics "server.http_errors";
            respond fd ~status:"408 Request Timeout"
              ~body:"request header read timed out\n"
        | Ok request ->
            let line =
              match String.index_opt request '\n' with
              | Some i -> String.sub request 0 i
              | None -> request
            in
            if line <> "" then
              let status, body = route ~metrics ~health line in
              respond fd ~status ~body
      with Unix.Unix_error _ ->
        (* The peer vanished mid-exchange. Count it — a flapping scrape
           target should be visible to operators, not swallowed. *)
        Runtime.Metrics.incr metrics "server.http_errors")
