(** The sta_serve daemon: lifecycle, admission control, drain.

    Thread layout (everything on domain 0; compute fans out through
    the engine's domain {!Runtime.Pool}):
    - one accept thread per listening socket (protocol + optional
      HTTP), polling a stop flag;
    - one thread per protocol connection, reading frames, answering
      [ping]/[stats] inline and enqueueing everything else onto a
      bounded {!Workqueue};
    - exactly one {!Batcher} thread popping that queue — the only
      thread that runs solves, so per-request deadlines installed via
      domain-local storage never leak between requests.

    Admission control: when the queue is full, the connection thread
    sheds the request immediately with a typed
    {!Runtime.Failure.Overloaded} response — the daemon never blocks
    accepts or grows memory under overload.

    Connection lifecycle: at most [max_conns] concurrent protocol
    connections — past the budget the acceptor answers one typed
    {!Runtime.Failure.Too_many_connections} frame and closes.
    Optional per-connection read/write deadlines (socket timeouts)
    defend both the framed socket and the HTTP endpoints against
    slowloris peers: an idle timeout silently reclaims the
    connection, a mid-frame timeout answers [timeout] and drops, a
    write timeout drops a peer that stopped draining its socket. An
    optional per-connection frame budget bounds how long one
    connection can monopolise its handler thread. Everything is
    counted under [server.conn_*] metrics ([conn_opened],
    [conn_closed], [conn_active], [conn_shed], [conn_idle_timeouts],
    [conn_read_timeouts], [conn_write_timeouts], [conn_frame_limit],
    [conn_errors]).

    Shutdown sequence ({!stop}, also run on SIGINT/SIGTERM by {!run}):
    stop accepting → close the queue (new requests answered
    [shutting_down]) → batcher drains and answers every queued job →
    half-close connection reads to unblock idle readers → join
    connection threads → unlink the Unix socket. In-flight requests
    always get their response; results cached to disk are already
    persistent (the cache writes through on insert). *)

type config = {
  addr : Client.addr;  (** protocol listener: Unix socket or TCP *)
  http_port : int option;
      (** optional loopback HTTP listener for /metrics and /health *)
  engine : Runtime.Engine.t;
      (** shared evaluation engine; its metrics slot is populated by
          {!start} when empty so server counters and runtime counters
          land in one registry *)
  queue_depth : int;  (** admission queue bound (requests) *)
  max_batch : int;  (** max single-case solves per pool submission *)
  queue_timeout_ms : float option;
      (** shed queued requests older than this with [Queue_timeout] *)
  default_deadline_ms : float option;
      (** per-request solve budget when the request carries none *)
  max_conns : int;
      (** concurrent protocol-connection budget; excess connections
          are shed with [Too_many_connections] *)
  read_timeout_s : float option;
      (** per-connection read deadline (SO_RCVTIMEO), protocol and
          HTTP both *)
  write_timeout_s : float option;
      (** per-connection write deadline (SO_SNDTIMEO) *)
  max_frames_per_conn : int option;
      (** frame budget per connection; answered [frame_limit] when
          exhausted *)
  journal_dir : string option;
      (** write-ahead request journal directory; [None] disables
          crash-safe admission. Solve requests are journaled before
          they enter the workqueue and retired strictly after their
          response frame is flushed; on the next {!start} the
          unretired set is replayed through the same
          [Protocol.execute] path, and a reconnecting client that
          resends the byte-identical payload is answered from the
          replayed-response table without re-executing
          ([server.journal_deduped]). *)
  scrub_budget_s : float option;
      (** bounded-time startup scrub of the engine's disk cache
          ({!Runtime.Cache.scrub}): CRC-validate newest-first, unlink
          corrupt entries and tmp leftovers. [None] skips the scrub. *)
  watchdog_s : float option;
      (** heartbeat watchdog budget: when the queue is non-empty and
          the batcher's progress counter has not moved for this long,
          the daemon declares itself wedged and exits
          {!wedged_exit_code} so the supervisor respawns it ([None]
          disables; [on_wedged] overrides the exit for tests). *)
  restarts : int;
      (** how many supervisor respawns preceded this incarnation;
          surfaced as the [server.restarts] gauge *)
  on_wedged : (unit -> unit) option;
      (** test seam: called instead of [exit] on a watchdog trip *)
}

val default_config : config
(** Unix socket ["/tmp/sta_serve.sock"], no HTTP listener, the [fast]
    engine preset, queue depth 64, max batch 16, no queue timeout, no
    default deadline, 256 max connections, no read/write deadlines, no
    frame budget, no journal, no scrub, no watchdog. *)

val wedged_exit_code : int
(** Exit status (70) of a watchdog self-restart; the supervisor treats
    it like any abnormal exit and respawns. *)

type t

val start : config -> t
(** Bind, listen, and spawn the serving threads; returns immediately.
    Raises [Unix.Unix_error] when the address cannot be bound. *)

val addr : t -> Client.addr
val metrics : t -> Runtime.Metrics.t

val conn_active : t -> int
(** Number of live protocol connections right now. Drains to zero
    after {!stop}; chaos harnesses poll it to prove no connection (and
    so no fd) leaked. *)

val health : t -> Json.t
(** The health document served on [GET /health]:
    [{"status":s,"reasons":[...]}] where [s] is ["draining"] during
    shutdown, ["degraded"] with reasons drawn from [breaker_open]
    (disk-cache circuit breaker open or half-open),
    [replay_in_progress] (journal replay still running), and
    [queue_saturated] (admission queue at capacity), or ["ok"]. *)

val stop : t -> unit
(** Graceful drain as described above; blocks until every thread has
    exited. Idempotent. *)

val run : config -> unit
(** {!start}, then block until SIGINT or SIGTERM, then {!stop}. *)
