(** Seeded fuzzing of the request path: Frame → Json → Protocol.parse.

    The contract under test is totality: every byte string — random
    bytes, mutated valid requests, structural JSON nasties (deep
    nesting, huge numbers, broken escapes), schema violations, version
    junk — must yield a parsed request or a typed
    [Bad_request]/[Version_mismatch] whose response frame renders,
    never an escaped exception. A fraction of inputs additionally ride
    a real socketpair through [write_frame]/[read_frame] (and so
    through {!Netfault} when armed), some with deliberately corrupted
    length prefixes.

    Inputs are generated from [Random.State] seeded by the run seed,
    so a failure is reproducible from (seed, index) alone; crashers
    get promoted into the committed corpus under [test/fuzz_corpus/]
    and replayed forever by [test_fuzz]. *)

type outcome = Parsed | Bad_request | Version_mismatch

type stats = {
  inputs : int;
  parsed : int;
  bad_requests : int;
  version_mismatches : int;
  frame_trips : int;  (** inputs that rode the socketpair framing *)
  escaped : (int * string * string) list;
      (** (input index, truncated escaped input, exception) — any
          entry means the totality contract is broken *)
}

val run_one : string -> (outcome, string) result
(** One input through parse + error rendering; [Error] carries an
    escaped exception's description. *)

val run : ?seed:int -> ?count:int -> ?frame_every:int -> unit -> stats
(** Fuzz [count] inputs (default 10k) from [seed] (default 0), every
    [frame_every]-th (default 64; 0 disables) through the socketpair
    framing layer. *)
