(** Minimal JSON values for the wire protocol.

    The daemon speaks length-prefixed JSON without any external JSON
    dependency, so this module carries its own recursive-descent parser
    and a deterministic printer: object fields keep their insertion
    order, floats render via the shortest ["%.12g"]/["%.17g"]
    representation that round-trips, and integral values within the
    exact-double range print without a fractional part. Determinism
    matters — the bench asserts that a response served over the socket
    is byte-identical to the same query executed in-process. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error. The
    error string carries a character offset. *)

val to_string : t -> string
(** Compact (no whitespace), deterministic rendering. *)

val num_to_string : float -> string
(** The float rendering [to_string] uses, exposed so other printers in
    the repo can match it. Non-finite floats render as [null] tokens
    ("nan" is not valid JSON). *)

(** Accessors: total functions returning [option], so protocol parsing
    can fold missing and mis-typed fields into one error path. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_float : t -> float option
val to_int : t -> int option
(** [to_int] accepts only integral [Num] values in the exact range. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val str_list : t -> string list option
(** An [Arr] of [Str] values. *)
