(** Bounded FIFO work queue — the daemon's admission-control point.

    Connection threads [try_push] parsed requests; the batcher thread
    [pop]s them. The queue never blocks a producer: when the bound is
    reached the push is refused immediately and the caller sheds the
    request with a typed {!Runtime.Failure.Overloaded} error — load
    shedding at the front door, so a traffic spike costs cheap error
    responses instead of unbounded memory and latency. *)

type 'a t

val create : depth:int -> 'a t
(** Raises [Invalid_argument] when [depth < 1]. *)

val depth : 'a t -> int
(** The configured bound. *)

val length : 'a t -> int
(** Items currently queued. *)

val try_push : 'a t -> 'a -> (unit, [ `Overloaded | `Closed ]) result
(** Non-blocking admission: [Error `Overloaded] when the queue is at
    its bound, [Error `Closed] once {!close} has been called. *)

val pop : 'a t -> 'a option
(** Block until an item is available; [None] once the queue is closed
    and drained, which is the consumer's signal to exit. *)

val try_pop : 'a t -> 'a option
(** Non-blocking pop, for draining compatible batch members after
    {!pop} returned the batch head. *)

val close : 'a t -> unit
(** Refuse further pushes and wake blocked consumers. Items already
    queued are still delivered — graceful drain executes them. *)

val is_closed : 'a t -> bool
