(* Crash-only process supervision: fork the serving child, wait,
   restart on abnormal exit. The parent stays single-threaded (no
   daemon state, no sockets), so the fork is safe and the supervisor
   itself has essentially nothing in it that can crash.

   Restart policy: capped exponential backoff over consecutive
   short-lived children, a crash-loop budget so a child that can never
   come up (bad flags, port taken by someone else) turns into a clean
   give-up instead of an infinite restart storm, and a healthy-uptime
   threshold past which the crash counter resets — one crash a day
   restarts forever, ten crashes a minute stops.

   SIGTERM/SIGINT to the supervisor forwards to the child, which
   drains gracefully and exits 0; the supervisor then exits cleanly
   without restarting. *)

type config = {
  base_backoff_s : float;
  max_backoff_s : float;
  healthy_after_s : float;
  crash_budget : int;
  pid_file : string option;
  on_spawn : (pid:int -> restarts:int -> unit) option;
}

let default_config =
  {
    base_backoff_s = 0.2;
    max_backoff_s = 10.0;
    healthy_after_s = 30.0;
    crash_budget = 5;
    pid_file = None;
    on_spawn = None;
  }

type outcome =
  | Clean of { restarts : int }
  | Gave_up of { restarts : int; consecutive : int }

let outcome_to_string = function
  | Clean { restarts } ->
      Printf.sprintf "clean exit after %d restart(s)" restarts
  | Gave_up { restarts; consecutive } ->
      Printf.sprintf
        "crash-loop budget exhausted: %d consecutive fast crashes (%d \
         restart(s) total)"
        consecutive restarts

let write_pid_file path pid =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Printf.fprintf oc "%d\n" pid)
  with Sys_error _ -> ()

let remove_pid_file = function
  | None -> ()
  | Some path -> ( try Sys.remove path with Sys_error _ -> ())

let rec wait_child pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_child pid

(* Sleep in small slices so a forwarded SIGTERM cuts the backoff short
   instead of delaying shutdown by up to max_backoff_s. *)
let backoff_sleep terminating delay =
  let deadline = Unix.gettimeofday () +. delay in
  while (not (Atomic.get terminating)) && Unix.gettimeofday () < deadline do
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run ?(config = default_config) child =
  let terminating = Atomic.make false in
  let child_pid = Atomic.make 0 in
  let forward signo =
    Atomic.set terminating true;
    let pid = Atomic.get child_pid in
    if pid > 0 then try Unix.kill pid signo with Unix.Unix_error _ -> ()
  in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle forward) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle forward) in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    remove_pid_file config.pid_file
  in
  let rec loop restarts consecutive =
    if Atomic.get terminating then Clean { restarts }
    else
      match Unix.fork () with
      | 0 -> (
          (* Serving child: inherit nothing from the supervisor but the
             fds of the calling process. The child installs its own
             signal handling (Daemon.run). *)
          Sys.set_signal Sys.sigterm old_term;
          Sys.set_signal Sys.sigint old_int;
          try
            child ~restarts;
            Stdlib.exit 0
          with e ->
            Printf.eprintf "sta_serve child: %s\n%!" (Printexc.to_string e);
            Stdlib.exit 1)
      | pid -> (
          Atomic.set child_pid pid;
          Option.iter (fun p -> write_pid_file p pid) config.pid_file;
          (match config.on_spawn with
          | Some f -> f ~pid ~restarts
          | None -> ());
          let started = Unix.gettimeofday () in
          let status = wait_child pid in
          Atomic.set child_pid 0;
          let uptime = Unix.gettimeofday () -. started in
          match status with
          | Unix.WEXITED 0 -> Clean { restarts }
          | _ when Atomic.get terminating ->
              (* We asked it to stop; however it died, do not respawn. *)
              Clean { restarts }
          | _ ->
              let consecutive =
                if uptime >= config.healthy_after_s then 1 else consecutive + 1
              in
              if consecutive > config.crash_budget then
                Gave_up { restarts; consecutive }
              else begin
                let delay =
                  Float.min config.max_backoff_s
                    (config.base_backoff_s
                    *. (2.0 ** float_of_int (consecutive - 1)))
                in
                backoff_sleep terminating delay;
                loop (restarts + 1) consecutive
              end)
  in
  Fun.protect ~finally:restore (fun () -> loop 0 0)
