(** Dense real matrices and linear solvers.

    Matrices are stored row-major in a flat [float array]. Sizes are small
    (tens to low hundreds of unknowns, as produced by circuit MNA
    stamping), so a dense LU with partial pivoting is both simple and
    fast enough. *)

type t
(** A mutable [rows] x [cols] dense matrix of floats. *)

val create : int -> int -> t
(** [create rows cols] is a zero-filled matrix. Raises
    [Invalid_argument] if a dimension is not positive. *)

val identity : int -> t
(** [identity n] is the n x n identity matrix. *)

val of_arrays : float array array -> t
(** [of_arrays a] copies a rectangular array-of-rows into a matrix.
    Raises [Invalid_argument] on ragged input or empty input. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] adds [x] to element (i, j); the basic stamping
    operation used by MNA assembly. *)

val slot : t -> int -> int -> float array * int
(** Backing array and flat offset of element (i, j). Lets callers with
    a static sparsity pattern compile their stamp positions once and
    apply them with plain array writes in hot loops; writing through
    the pair is equivalent to [set]/[add_to] at that position. *)

val copy : t -> t
val fill : t -> float -> unit

val mul_vec : t -> float array -> float array
(** [mul_vec m v] is the matrix-vector product [m * v]. *)

val transpose : t -> t

val mul : t -> t -> t
(** Matrix-matrix product. *)

type lu
(** An LU factorization with partial pivoting (PA = LU). *)

exception Singular of int
(** Raised (with the offending pivot column) when factorization meets a
    pivot smaller than the singularity threshold. *)

val lu_factor : t -> lu
(** Factor a square matrix. The input is not modified. *)

val lu_solve : lu -> float array -> float array
(** [lu_solve lu b] solves [A x = b] for the factored [A]. *)

val solve : t -> float array -> float array
(** One-shot [solve a b]: factor and solve. *)

val blit : t -> t -> unit
(** [blit src dst] copies [src]'s contents into [dst]. Raises
    [Invalid_argument] on shape mismatch. The baseline-restore
    operation of the solver hot path: restamping only the nonlinear
    devices on top of a pre-stamped linear part. *)

type fact
(** A preallocated, reusable LU workspace. Unlike {!lu}, factoring
    into it allocates nothing and solving overwrites the right-hand
    side in place — the allocation-free inner loop of
    [Spice.Transient]. *)

val fact_create : int -> fact
(** [fact_create n] allocates a workspace for n x n systems. Raises
    [Invalid_argument] when [n] is not positive. *)

val factor_into : t -> fact -> unit
(** [factor_into a f] factors the square matrix [a] into [f],
    overwriting any previous factorization. [a] is not modified.
    Raises {!Singular} on a vanishing pivot and [Invalid_argument] on
    size mismatch. Allocation-free. *)

val solve_into : fact -> float array -> unit
(** [solve_into f b] solves [A x = b] for the factored [A],
    overwriting [b] with [x]. Allocation-free. *)

val residual_norm : t -> float array -> float array -> float
(** [residual_norm a x b] is the max-norm of [a*x - b]; used by tests. *)

val pp : Format.formatter -> t -> unit
