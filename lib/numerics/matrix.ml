type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Matrix.create: dimensions must be positive";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let add_to m i j x = m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. x

(* Resolve an entry to its backing array and flat offset, so static
   stamp patterns can be compiled once and applied with plain array
   writes in hot loops. *)
let slot m i j =
  if i < 0 || j < 0 || i >= m.rows || j >= m.cols then
    invalid_arg "Matrix.slot: out of range";
  (m.data, (i * m.cols) + j)

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let of_arrays a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Matrix.of_arrays: empty";
  let c = Array.length a.(0) in
  if c = 0 then invalid_arg "Matrix.of_arrays: empty row";
  let m = create r c in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Matrix.of_arrays: ragged";
      Array.iteri (fun j x -> set m i j x) row)
    a;
  m

let copy m = { m with data = Array.copy m.data }
let fill m x = Array.fill m.data 0 (Array.length m.data) x

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec: size mismatch";
  Array.init m.rows (fun i ->
      let s = ref 0.0 in
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        s := !s +. (m.data.(base + j) *. v.(j))
      done;
      !s)

let transpose m =
  let t = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set t j i (get m i j)
    done
  done;
  t

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: size mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          add_to c i j (aik *. get b k j)
        done
    done
  done;
  c

type lu = { n : int; lu_data : float array; perm : int array }

exception Singular of int

let pivot_eps = 1e-300

(* Doolittle LU with partial pivoting, operating in place on a copy.
   Row swaps are recorded in [perm]. *)
let lu_factor m =
  if m.rows <> m.cols then invalid_arg "Matrix.lu_factor: not square";
  let n = m.rows in
  let a = Array.copy m.data in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* Find pivot row. *)
    let pmax = ref (abs_float a.((k * n) + k)) in
    let prow = ref k in
    for i = k + 1 to n - 1 do
      let v = abs_float a.((i * n) + k) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax < pivot_eps then raise (Singular k);
    if !prow <> k then begin
      let p = !prow in
      for j = 0 to n - 1 do
        let tmp = a.((k * n) + j) in
        a.((k * n) + j) <- a.((p * n) + j);
        a.((p * n) + j) <- tmp
      done;
      let tp = perm.(k) in
      perm.(k) <- perm.(p);
      perm.(p) <- tp
    end;
    let akk = a.((k * n) + k) in
    for i = k + 1 to n - 1 do
      let f = a.((i * n) + k) /. akk in
      a.((i * n) + k) <- f;
      if f <> 0.0 then
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <- a.((i * n) + j) -. (f *. a.((k * n) + j))
        done
    done
  done;
  { n; lu_data = a; perm }

let lu_solve { n; lu_data = a; perm } b =
  if Array.length b <> n then invalid_arg "Matrix.lu_solve: size mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (a.((i * n) + j) *. x.(j))
    done;
    x.(i) <- !s /. a.((i * n) + i)
  done;
  x

let solve a b = lu_solve (lu_factor a) b

let blit src dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then
    invalid_arg "Matrix.blit: shape mismatch";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

(* Preallocated, reusable factorization workspace. Unlike [lu], row
   exchanges are recorded as successive swaps (LAPACK ipiv style) so the
   permutation can be applied to a right-hand side in place. *)
type fact = { fn : int; fdata : float array; fipiv : int array }

let fact_create n =
  if n <= 0 then invalid_arg "Matrix.fact_create: size must be positive";
  { fn = n; fdata = Array.make (n * n) 0.0; fipiv = Array.make n 0 }

let factor_into m f =
  if m.rows <> m.cols then invalid_arg "Matrix.factor_into: not square";
  if m.rows <> f.fn then invalid_arg "Matrix.factor_into: size mismatch";
  let n = f.fn in
  let a = f.fdata in
  Array.blit m.data 0 a 0 (n * n);
  for k = 0 to n - 1 do
    let pmax = ref (abs_float a.((k * n) + k)) in
    let prow = ref k in
    for i = k + 1 to n - 1 do
      let v = abs_float a.((i * n) + k) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax < pivot_eps then raise (Singular k);
    f.fipiv.(k) <- !prow;
    if !prow <> k then begin
      let p = !prow in
      for j = 0 to n - 1 do
        let tmp = a.((k * n) + j) in
        a.((k * n) + j) <- a.((p * n) + j);
        a.((p * n) + j) <- tmp
      done
    end;
    let akk = a.((k * n) + k) in
    (* Unsafe accesses in the O(n^3) update: rows and columns stay in
       [0, n) by construction. *)
    for i = k + 1 to n - 1 do
      let ib = i * n and kb = k * n in
      let fmul = Array.unsafe_get a (ib + k) /. akk in
      Array.unsafe_set a (ib + k) fmul;
      if fmul <> 0.0 then
        for j = k + 1 to n - 1 do
          Array.unsafe_set a (ib + j)
            (Array.unsafe_get a (ib + j)
            -. (fmul *. Array.unsafe_get a (kb + j)))
        done
    done
  done

let solve_into f b =
  let n = f.fn in
  if Array.length b <> n then invalid_arg "Matrix.solve_into: size mismatch";
  let a = f.fdata in
  for k = 0 to n - 1 do
    let p = f.fipiv.(k) in
    if p <> k then begin
      let tmp = b.(k) in
      b.(k) <- b.(p);
      b.(p) <- tmp
    end
  done;
  (* Unsafe accesses: [b] length was checked against [n] above. *)
  for i = 1 to n - 1 do
    let ib = i * n in
    let s = ref (Array.unsafe_get b i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get a (ib + j) *. Array.unsafe_get b j)
    done;
    Array.unsafe_set b i !s
  done;
  for i = n - 1 downto 0 do
    let ib = i * n in
    let s = ref (Array.unsafe_get b i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get a (ib + j) *. Array.unsafe_get b j)
    done;
    Array.unsafe_set b i (!s /. Array.unsafe_get a (ib + i))
  done

let residual_norm a x b =
  let ax = mul_vec a x in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let r = abs_float (v -. b.(i)) in
      if r > !worst then worst := r)
    ax;
  !worst

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get m i j)
    done;
    Format.fprintf ppf "]@\n"
  done
