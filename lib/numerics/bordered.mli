(** Bordered-banded ("arrowhead") linear systems.

    An MNA matrix whose graph is narrow-banded {e except} for a few
    hub rows (the shared supply node and its source branch) is
    partitioned as

    {v
      [ B  F ] [x1]   [r1]
      [ G  D ] [x2] = [r2]
    v}

    with a banded core [B] and a dense border of [b] rows/columns.
    Factoring runs one banded LU on [B], solves the [b] columns of
    [Z = B^-1 F], and densely factors the Schur complement
    [S = D - G Z]; a solve is then two banded substitutions plus a
    [b x b] dense solve — O(n) per solve for fixed bandwidths instead
    of O(n^2). A border of 0 degenerates to a plain banded solver.

    Row/column indices are the {e permuted} positions produced by
    {!Ordering.plan}: core rows first, border rows last. *)

type t
(** A mutable bordered-banded matrix. *)

val create : nb:int -> kl:int -> ku:int -> border:int -> t
(** [create ~nb ~kl ~ku ~border]: [nb x nb] banded core with the given
    bandwidths plus [border] dense rows/columns. Raises
    [Invalid_argument] on a non-positive core size or negative
    border. *)

val dim : t -> int
(** Total system size, core + border. *)

val core_size : t -> int
val border_size : t -> int

val add_to : t -> int -> int -> float -> unit
(** Stamp into the partition the (permuted) position falls in. Core
    positions outside the band raise [Invalid_argument] — the planner
    guarantees stamps stay inside. *)

val get : t -> int -> int -> float

val slot : t -> int -> int -> float array * int
(** Backing array and flat offset of an entry in whichever quadrant it
    lives (core entries must be in band); see [Matrix.slot]. *)

val fill : t -> float -> unit
val blit : t -> t -> unit
val to_dense : t -> Matrix.t

type fact
(** Preallocated factorization workspace: band LU of the core, the
    [Z = B^-1 F] block, a snapshot of [G], and the dense-factored
    Schur complement. Reusable across refactors without allocation. *)

val fact_create : t -> fact

val factor_into : t -> fact -> unit
(** Factor [t] into the workspace; [t] is untouched and may be
    restamped afterwards without invalidating the factorization's
    solves. Raises {!Matrix.Singular} (from the core or the Schur
    complement) on numerical deficiency. Allocation-free. *)

val solve_into : fact -> float array -> unit
(** Overwrite the length-[dim] right-hand side with the solution.
    Allocation-free. *)
