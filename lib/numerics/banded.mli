(** Banded real matrices with in-place pivoted LU.

    Storage is LAPACK general-band layout: an [n x n] matrix with [kl]
    subdiagonals and [ku] superdiagonals keeps each column contiguous
    with [kl] extra fill rows, so partial pivoting during
    factorization stays inside the allocation. Factor cost is
    O(n * kl * (kl + ku)) and solve cost O(n * (kl + ku)) — for the
    narrow-banded MNA systems produced by RC-tree + gate circuits this
    replaces the dense O(n^3)/O(n^2) kernel.

    Out-of-band elements read as zero; writing one raises. *)

type t
(** A mutable banded matrix. *)

val create : n:int -> kl:int -> ku:int -> t
(** Zero matrix with the given size and bandwidths (clamped to
    [n - 1]). Raises [Invalid_argument] on a non-positive size or a
    negative bandwidth. *)

val n : t -> int
val kl : t -> int
val ku : t -> int

val in_band : t -> int -> int -> bool
(** Whether position (i, j) lies inside the stored band. *)

val get : t -> int -> int -> float
(** Zero outside the band; raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
(** Raise [Invalid_argument] outside the band. *)

val slot : t -> int -> int -> float array * int
(** Backing array and flat offset of an in-band entry (raises
    [Invalid_argument] otherwise); see [Matrix.slot]. *)

val fill : t -> float -> unit
val blit : t -> t -> unit
(** [blit src dst]; raises [Invalid_argument] on shape mismatch. *)

val to_dense : t -> Matrix.t
val mul_vec : t -> float array -> float array

type fact
(** A preallocated band-LU workspace (factored data + pivot
    exchanges). Create once, refactor and solve in place forever. *)

val fact_create : t -> fact
(** Workspace shaped for [t] (and any matrix with equal n/kl/ku). *)

val factor_into : t -> fact -> unit
(** Factor [t] into the workspace; [t] is untouched. Allocation-free.
    Raises {!Matrix.Singular} on a vanishing pivot (the band-confined
    pivot search can also report structurally fine but numerically
    deficient systems) and [Invalid_argument] on shape mismatch. *)

val solve_into : fact -> ?pos:int -> float array -> unit
(** [solve_into f b] overwrites [b] (the [n] cells starting at [pos],
    default 0) with the solution of [A x = b]. Allocation-free; the
    [pos] offset solves one column of a multi-RHS block in place. *)

val solve : t -> float array -> float array
(** One-shot convenience: factor and solve, leaving inputs intact. *)
