(* Band storage follows LAPACK's general-band convention: column j is
   contiguous, entry (i, j) lives at row offset [kl + ku + i - j], and
   the top [kl] rows of each column are fill space for the extra
   superdiagonals that partial pivoting can create during
   factorization. Keeping the fill rows in the unfactored matrix too
   costs a little memory but lets [factor_into] start from a single
   [Array.blit]. *)

type t = { n : int; kl : int; ku : int; ldab : int; data : float array }

let pivot_eps = 1e-300

let create ~n ~kl ~ku =
  if n <= 0 then invalid_arg "Banded.create: size must be positive";
  if kl < 0 || ku < 0 then invalid_arg "Banded.create: negative bandwidth";
  let kl = min kl (n - 1) and ku = min ku (n - 1) in
  let ldab = (2 * kl) + ku + 1 in
  { n; kl; ku; ldab; data = Array.make (n * ldab) 0.0 }

let n t = t.n
let kl t = t.kl
let ku t = t.ku
let in_band t i j = j - i <= t.ku && i - j <= t.kl
let index t i j = (j * t.ldab) + t.kl + t.ku + i - j

let check_pos t i j name =
  if i < 0 || j < 0 || i >= t.n || j >= t.n then invalid_arg name

let get t i j =
  check_pos t i j "Banded.get: out of range";
  if in_band t i j then t.data.(index t i j) else 0.0

let set t i j x =
  check_pos t i j "Banded.set: out of range";
  if not (in_band t i j) then invalid_arg "Banded.set: outside band";
  t.data.(index t i j) <- x

let add_to t i j x =
  check_pos t i j "Banded.add_to: out of range";
  if not (in_band t i j) then invalid_arg "Banded.add_to: outside band";
  let k = index t i j in
  t.data.(k) <- t.data.(k) +. x

(* Backing array + flat offset of an in-band entry, for compiling
   static stamp patterns (see [Matrix.slot]). *)
let slot t i j =
  check_pos t i j "Banded.slot: out of range";
  if not (in_band t i j) then invalid_arg "Banded.slot: outside band";
  (t.data, index t i j)

let fill t x = Array.fill t.data 0 (Array.length t.data) x

let blit src dst =
  if src.n <> dst.n || src.kl <> dst.kl || src.ku <> dst.ku then
    invalid_arg "Banded.blit: shape mismatch";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let to_dense t =
  let m = Matrix.create t.n t.n in
  for j = 0 to t.n - 1 do
    for i = max 0 (j - t.ku) to min (t.n - 1) (j + t.kl) do
      Matrix.set m i j t.data.(index t i j)
    done
  done;
  m

let mul_vec t v =
  if Array.length v <> t.n then invalid_arg "Banded.mul_vec: size mismatch";
  let y = Array.make t.n 0.0 in
  for j = 0 to t.n - 1 do
    let vj = v.(j) in
    if vj <> 0.0 then
      for i = max 0 (j - t.ku) to min (t.n - 1) (j + t.kl) do
        y.(i) <- y.(i) +. (t.data.(index t i j) *. vj)
      done
  done;
  y

type fact = {
  fn : int;
  fkl : int;
  fku : int;
  fldab : int;
  fdata : float array;
  ipiv : int array;
}

let fact_create t =
  {
    fn = t.n;
    fkl = t.kl;
    fku = t.ku;
    fldab = t.ldab;
    fdata = Array.make (Array.length t.data) 0.0;
    ipiv = Array.make t.n 0;
  }

(* Gaussian elimination with partial pivoting confined to the band
   (LAPACK dgbtf2): the pivot search only looks at the [kl] rows below
   the diagonal, and row exchanges widen U's bandwidth to at most
   [kl + ku]. *)
let factor_into t f =
  if f.fn <> t.n || f.fkl <> t.kl || f.fku <> t.ku then
    invalid_arg "Banded.factor_into: shape mismatch";
  Array.blit t.data 0 f.fdata 0 (Array.length t.data);
  let n = t.n and kl = t.kl and ldab = t.ldab in
  let kv = kl + t.ku in
  let a = f.fdata in
  (* Inner loops use unsafe accesses: every offset is inside the
     [n * ldab] allocation by the band invariants checked above. *)
  for j = 0 to n - 1 do
    let jmax = min (n - 1) (j + kl) in
    let base = (j * ldab) + kv in
    let pmax = ref (abs_float (Array.unsafe_get a base)) in
    let prow = ref j in
    for i = j + 1 to jmax do
      let v = abs_float (Array.unsafe_get a (base + i - j)) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax < pivot_eps then raise (Matrix.Singular j);
    f.ipiv.(j) <- !prow;
    let cmax = min (n - 1) (j + kv) in
    let p = !prow in
    if p <> j then
      for c = j to cmax do
        let cb = (c * ldab) + kv - c in
        let tmp = Array.unsafe_get a (cb + j) in
        Array.unsafe_set a (cb + j) (Array.unsafe_get a (cb + p));
        Array.unsafe_set a (cb + p) tmp
      done;
    let piv = Array.unsafe_get a base in
    for i = j + 1 to jmax do
      Array.unsafe_set a (base + i - j)
        (Array.unsafe_get a (base + i - j) /. piv)
    done;
    (* Right-looking update, column-outer so each column's base offset
       is computed once and the inner loop walks contiguous memory. *)
    for c = j + 1 to cmax do
      let cb = (c * ldab) + kv - c in
      let ajc = Array.unsafe_get a (cb + j) in
      if ajc <> 0.0 then
        for i = j + 1 to jmax do
          Array.unsafe_set a (cb + i)
            (Array.unsafe_get a (cb + i)
            -. (Array.unsafe_get a (base + i - j) *. ajc))
        done
    done
  done

let solve_into f ?(pos = 0) b =
  let n = f.fn and kl = f.fkl and ldab = f.fldab in
  let kv = kl + f.fku in
  if pos < 0 || pos + n > Array.length b then
    invalid_arg "Banded.solve_into: size mismatch";
  let a = f.fdata in
  (* Unsafe accesses: [pos .. pos + n - 1] was range-checked above and
     matrix offsets are in-band by construction. *)
  (* Forward: replay the row exchanges, then unit-lower substitution. *)
  for j = 0 to n - 1 do
    let p = f.ipiv.(j) in
    if p <> j then begin
      let tmp = Array.unsafe_get b (pos + j) in
      Array.unsafe_set b (pos + j) (Array.unsafe_get b (pos + p));
      Array.unsafe_set b (pos + p) tmp
    end;
    let bj = Array.unsafe_get b (pos + j) in
    if bj <> 0.0 then begin
      let base = (j * ldab) + kv - j in
      for i = j + 1 to min (n - 1) (j + kl) do
        Array.unsafe_set b (pos + i)
          (Array.unsafe_get b (pos + i)
          -. (Array.unsafe_get a (base + i) *. bj))
      done
    end
  done;
  (* Back substitution; U's bandwidth is kl + ku after pivoting. *)
  for j = n - 1 downto 0 do
    let base = (j * ldab) + kv - j in
    let xj = Array.unsafe_get b (pos + j) /. Array.unsafe_get a (base + j) in
    Array.unsafe_set b (pos + j) xj;
    if xj <> 0.0 then
      for i = max 0 (j - kv) to j - 1 do
        Array.unsafe_set b (pos + i)
          (Array.unsafe_get b (pos + i)
          -. (Array.unsafe_get a (base + i) *. xj))
      done
  done

let solve t b =
  if Array.length b <> t.n then invalid_arg "Banded.solve: size mismatch";
  let f = fact_create t in
  factor_into t f;
  let x = Array.copy b in
  solve_into f x;
  x
