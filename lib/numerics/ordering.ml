type graph = { gn : int; adj : int array array }

let build ~n edges =
  if n < 0 then invalid_arg "Ordering.build: negative size";
  let tbl = Array.make (max n 1) [] in
  List.iter
    (fun (a, b) ->
      if a >= 0 && b >= 0 && a < n && b < n && a <> b then begin
        tbl.(a) <- b :: tbl.(a);
        tbl.(b) <- a :: tbl.(b)
      end)
    edges;
  let adj =
    Array.init n (fun v -> Array.of_list (List.sort_uniq compare tbl.(v)))
  in
  { gn = n; adj }

let size g = g.gn
let degree g v = Array.length g.adj.(v)
let neighbors g v = g.adj.(v)

(* Degree counting only masked neighbours of a masked vertex. *)
let masked_degree g mask v =
  let d = ref 0 in
  Array.iter (fun w -> if mask.(w) then incr d) g.adj.(v);
  !d

(* BFS from [start] over the masked subgraph; returns the vertices of
   the last (deepest) level. Used to find a pseudo-peripheral starting
   vertex: starting RCM from a vertex of near-maximal eccentricity is
   what keeps level sets (and hence the bandwidth) narrow. *)
let bfs_last_level g mask start =
  let seen = Array.make g.gn false in
  seen.(start) <- true;
  let level = ref [ start ] in
  let last = ref [ start ] in
  while !level <> [] do
    last := !level;
    let next = ref [] in
    List.iter
      (fun v ->
        Array.iter
          (fun w ->
            if mask.(w) && not seen.(w) then begin
              seen.(w) <- true;
              next := w :: !next
            end)
          g.adj.(v))
      !level;
    level := !next
  done;
  !last

let min_degree_of g mask vs =
  List.fold_left
    (fun best v ->
      match best with
      | None -> Some v
      | Some b ->
          let dv = masked_degree g mask v and db = masked_degree g mask b in
          if dv < db || (dv = db && v < b) then Some v else Some b)
    None vs
  |> Option.get

(* Reverse Cuthill-McKee over the masked subgraph. Returns the masked
   vertices in elimination order. Each connected component starts from
   a pseudo-peripheral vertex (min-degree seed, one BFS refinement). *)
let rcm_masked g mask =
  let n = g.gn in
  let visited = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  let scratch = Array.make n 0 in
  for seed = 0 to n - 1 do
    if mask.(seed) && not visited.(seed) then begin
      (* Pseudo-peripheral start: hop to the far end of the BFS tree
         rooted at the seed and take its min-degree vertex. *)
      let far = bfs_last_level g mask seed in
      let start = min_degree_of g mask far in
      (* Cuthill-McKee BFS, neighbours visited in increasing masked
         degree. *)
      let q = Queue.create () in
      visited.(start) <- true;
      Queue.add start q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        order := v :: !order;
        incr count;
        let k = ref 0 in
        Array.iter
          (fun w ->
            if mask.(w) && not visited.(w) then begin
              visited.(w) <- true;
              scratch.(!k) <- w;
              incr k
            end)
          g.adj.(v);
        let nb = Array.sub scratch 0 !k in
        Array.sort
          (fun a b ->
            let c = compare (masked_degree g mask a) (masked_degree g mask b) in
            if c <> 0 then c else compare a b)
          nb;
        Array.iter (fun w -> Queue.add w q) nb
      done
    end
  done;
  (* [order] was accumulated in reverse already — exactly the R of
     RCM. *)
  Array.of_list !order

let rcm g =
  let mask = Array.make g.gn true in
  rcm_masked g mask

let bandwidth g pos =
  let bw = ref 0 in
  for v = 0 to g.gn - 1 do
    if pos.(v) >= 0 then
      Array.iter
        (fun w ->
          if pos.(w) >= 0 then begin
            let d = abs (pos.(v) - pos.(w)) in
            if d > !bw then bw := d
          end)
        g.adj.(v)
  done;
  !bw

type plan = { order : int array; core : int; bandwidth : int }

let plan ~n ~edges ?(coupled = []) ~max_bandwidth ~max_border () =
  if n <= 0 then None
  else begin
    let g = build ~n edges in
    (* Vertices that must enter the border together (a voltage-source
       branch row is meaningless without its node: leaving one behind
       would give the banded core a structurally singular row). The
       closure is transitive. *)
    let partners = Array.make n [] in
    List.iter
      (fun (a, b) ->
        if a >= 0 && b >= 0 && a < n && b < n && a <> b then begin
          partners.(a) <- b :: partners.(a);
          partners.(b) <- a :: partners.(b)
        end)
      coupled;
    let in_core = Array.make n true in
    let border_count = ref 0 in
    let demote v0 =
      let stack = ref [ v0 ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            if in_core.(v) then begin
              in_core.(v) <- false;
              incr border_count;
              List.iter (fun w -> stack := w :: !stack) partners.(v)
            end
      done
    in
    let rec attempt () =
      let seq = rcm_masked g in_core in
      if Array.length seq = 0 then None
      else begin
        let pos = Array.make n (-1) in
        Array.iteri (fun k v -> pos.(v) <- k) seq;
        let bw = bandwidth g pos in
        if bw <= max_bandwidth then Some (seq, bw)
        else begin
          (* Demote the core vertex of maximal core degree — the hub
             (e.g. a shared supply node) that no reordering can fix. *)
          let best = ref (-1) in
          let bestd = ref (-1) in
          for v = 0 to n - 1 do
            if in_core.(v) then begin
              let d = masked_degree g in_core v in
              if d > !bestd then begin
                bestd := d;
                best := v
              end
            end
          done;
          if !best < 0 then None
          else begin
            demote !best;
            if !border_count > max_border then None else attempt ()
          end
        end
      end
    in
    match attempt () with
    | None -> None
    | Some (seq, bw) ->
        let order = Array.make n (-1) in
        Array.iteri (fun k v -> order.(v) <- k) seq;
        let core = Array.length seq in
        let next = ref core in
        for v = 0 to n - 1 do
          if order.(v) < 0 then begin
            order.(v) <- !next;
            incr next
          end
        done;
        Some { order; core; bandwidth = bw }
  end
