(** Symmetric sparsity analysis: reverse Cuthill-McKee reordering and
    bordered-band planning.

    Circuit MNA matrices have a fixed, structurally symmetric sparsity
    pattern. RCM permutes the unknowns so that pattern hugs the
    diagonal — except for hub vertices (a shared supply rail touches
    every gate) which no permutation can narrow. {!plan} handles those
    by demoting the worst hubs to a dense {e border}, leaving a narrow
    banded core: the arrowhead form factored by {!Bordered}. *)

type graph

val build : n:int -> (int * int) list -> graph
(** Undirected graph on vertices [0 .. n-1]. Self-loops, duplicates
    and out-of-range endpoints are ignored. *)

val size : graph -> int
val degree : graph -> int -> int
val neighbors : graph -> int -> int array

val rcm : graph -> int array
(** Vertices in reverse Cuthill-McKee order (pseudo-peripheral start
    per connected component, neighbours by increasing degree). *)

val bandwidth : graph -> int array -> int
(** [bandwidth g pos] is the half-bandwidth max |pos(i) - pos(j)| over
    edges whose endpoints both have [pos >= 0]; vertices with a
    negative position are excluded. *)

type plan = {
  order : int array;
      (** vertex -> matrix row: core rows [0 .. core-1] in RCM order,
          border rows after them (by increasing vertex id) *)
  core : int;  (** number of core (banded) rows *)
  bandwidth : int;  (** half-bandwidth of the reordered core *)
}

val plan :
  n:int ->
  edges:(int * int) list ->
  ?coupled:(int * int) list ->
  max_bandwidth:int ->
  max_border:int ->
  unit ->
  plan option
(** Find an ordering whose core bandwidth is at most [max_bandwidth]
    by iteratively demoting the highest-degree core vertex (plus its
    transitive [coupled] partners — e.g. a voltage-source branch row
    must follow its node, or the core is left structurally singular)
    to the border. [None] when more than [max_border] demotions would
    be needed, or nothing remains in the core — callers then fall back
    to the dense solver. *)
