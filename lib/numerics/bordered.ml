(* Arrowhead system

       [ B  F ] [x1]   [r1]
       [ G  D ] [x2] = [r2]

   with a banded core B (nb x nb) and a small dense border (b rows).
   Factoring computes Z = B^-1 F column by column and the dense Schur
   complement S = D - G Z; solving is two banded substitutions plus a
   b x b dense solve. F is stored column-major so each Z column is a
   contiguous in-place [Banded.solve_into]. *)

type t = {
  nb : int;
  b : int;
  core : Banded.t;
  f : float array; (* nb x b, column-major *)
  g : float array; (* b x nb, row-major *)
  d : float array; (* b x b, row-major *)
}

type fact = {
  fnb : int;
  fb : int;
  core_fact : Banded.fact;
  z : float array; (* B^-1 F, nb x b column-major *)
  gs : float array; (* snapshot of G at factor time *)
  s : Matrix.t option; (* Schur complement, when b > 0 *)
  sf : Matrix.fact option;
  r2 : float array; (* border scratch, length b *)
}

let create ~nb ~kl ~ku ~border =
  if nb <= 0 then invalid_arg "Bordered.create: core size must be positive";
  if border < 0 then invalid_arg "Bordered.create: negative border";
  {
    nb;
    b = border;
    core = Banded.create ~n:nb ~kl ~ku;
    f = Array.make (nb * border) 0.0;
    g = Array.make (border * nb) 0.0;
    d = Array.make (border * border) 0.0;
  }

let dim t = t.nb + t.b
let core_size t = t.nb
let border_size t = t.b

let check_pos t i j name =
  let n = t.nb + t.b in
  if i < 0 || j < 0 || i >= n || j >= n then invalid_arg name

let add_to t i j x =
  check_pos t i j "Bordered.add_to: out of range";
  if i < t.nb && j < t.nb then Banded.add_to t.core i j x
  else if i < t.nb then begin
    let k = ((j - t.nb) * t.nb) + i in
    t.f.(k) <- t.f.(k) +. x
  end
  else if j < t.nb then begin
    let k = ((i - t.nb) * t.nb) + j in
    t.g.(k) <- t.g.(k) +. x
  end
  else begin
    let k = ((i - t.nb) * t.b) + (j - t.nb) in
    t.d.(k) <- t.d.(k) +. x
  end

(* Backing array + flat offset of an entry in whichever quadrant it
   lives, for compiling static stamp patterns (see [Matrix.slot]).
   Raises for core entries outside the band. *)
let slot t i j =
  check_pos t i j "Bordered.slot: out of range";
  if i < t.nb && j < t.nb then Banded.slot t.core i j
  else if i < t.nb then (t.f, ((j - t.nb) * t.nb) + i)
  else if j < t.nb then (t.g, ((i - t.nb) * t.nb) + j)
  else (t.d, ((i - t.nb) * t.b) + (j - t.nb))

let get t i j =
  check_pos t i j "Bordered.get: out of range";
  if i < t.nb && j < t.nb then Banded.get t.core i j
  else if i < t.nb then t.f.(((j - t.nb) * t.nb) + i)
  else if j < t.nb then t.g.(((i - t.nb) * t.nb) + j)
  else t.d.(((i - t.nb) * t.b) + (j - t.nb))

let fill t x =
  Banded.fill t.core x;
  Array.fill t.f 0 (Array.length t.f) x;
  Array.fill t.g 0 (Array.length t.g) x;
  Array.fill t.d 0 (Array.length t.d) x

let blit src dst =
  if src.nb <> dst.nb || src.b <> dst.b then
    invalid_arg "Bordered.blit: shape mismatch";
  Banded.blit src.core dst.core;
  Array.blit src.f 0 dst.f 0 (Array.length src.f);
  Array.blit src.g 0 dst.g 0 (Array.length src.g);
  Array.blit src.d 0 dst.d 0 (Array.length src.d)

let to_dense t =
  let n = dim t in
  let m = Matrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Matrix.set m i j (get t i j)
    done
  done;
  m

let fact_create t =
  {
    fnb = t.nb;
    fb = t.b;
    core_fact = Banded.fact_create t.core;
    z = Array.make (t.nb * t.b) 0.0;
    gs = Array.make (t.b * t.nb) 0.0;
    s = (if t.b > 0 then Some (Matrix.create t.b t.b) else None);
    sf = (if t.b > 0 then Some (Matrix.fact_create t.b) else None);
    r2 = Array.make t.b 0.0;
  }

let factor_into t f =
  if f.fnb <> t.nb || f.fb <> t.b then
    invalid_arg "Bordered.factor_into: shape mismatch";
  Banded.factor_into t.core f.core_fact;
  if t.b > 0 then begin
    let nb = t.nb and b = t.b in
    Array.blit t.f 0 f.z 0 (nb * b);
    for c = 0 to b - 1 do
      Banded.solve_into f.core_fact ~pos:(c * nb) f.z
    done;
    (* G must be snapshot: a reused factorization outlives restamps of
       [t]. *)
    Array.blit t.g 0 f.gs 0 (b * nb);
    let s = Option.get f.s in
    let g = t.g and z = f.z in
    for r = 0 to b - 1 do
      let gbase = r * nb in
      for c = 0 to b - 1 do
        let zbase = c * nb in
        let acc = ref t.d.((r * b) + c) in
        for j = 0 to nb - 1 do
          acc :=
            !acc
            -. (Array.unsafe_get g (gbase + j)
               *. Array.unsafe_get z (zbase + j))
        done;
        Matrix.set s r c !acc
      done
    done;
    Matrix.factor_into s (Option.get f.sf)
  end

let solve_into f x =
  let nb = f.fnb and b = f.fb in
  if Array.length x <> nb + b then
    invalid_arg "Bordered.solve_into: size mismatch";
  (* y1 = B^-1 r1 in place. *)
  Banded.solve_into f.core_fact ~pos:0 x;
  if b > 0 then begin
    (* Unsafe accesses: [x] length was checked against [nb + b] and the
       gs/z blocks are sized nb x b at creation. *)
    (* x2 = S^-1 (r2 - G y1). *)
    let gs = f.gs and z = f.z in
    for r = 0 to b - 1 do
      let gbase = r * nb in
      let acc = ref x.(nb + r) in
      for j = 0 to nb - 1 do
        acc :=
          !acc
          -. (Array.unsafe_get gs (gbase + j) *. Array.unsafe_get x j)
      done;
      f.r2.(r) <- !acc
    done;
    Matrix.solve_into (Option.get f.sf) f.r2;
    for r = 0 to b - 1 do
      x.(nb + r) <- f.r2.(r)
    done;
    (* x1 = y1 - Z x2. *)
    for c = 0 to b - 1 do
      let xc = f.r2.(c) in
      if xc <> 0.0 then begin
        let zbase = c * nb in
        for i = 0 to nb - 1 do
          Array.unsafe_set x i
            (Array.unsafe_get x i -. (Array.unsafe_get z (zbase + i) *. xc))
        done
      end
    done
  end
