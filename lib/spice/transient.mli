(** Nonlinear transient analysis.

    Modified nodal analysis with ideal-voltage-source branch currents,
    companion models for capacitors (trapezoidal by default, backward
    Euler available), and damped Newton-Raphson at every time point.

    Two step-control modes:
    - {b Fixed} (default): a uniform grid at [dt] with source
      breakpoints inserted; a step whose Newton fails is bisected
      recursively. Grid-compatible with the historical engine (same
      time points, answers equal within the Newton tolerances); use it
      for regression references.
    - {b Adaptive}: local-truncation-error-controlled variable steps.
      Every step is solved with both companion models; their
      discrepancy estimates the LTE, which the controller keeps under
      [lte_tol] by growing the step on quiescent spans (up to
      [dt_max]) and shrinking it through transitions (down to
      [dt_min]). Source breakpoints are landed on exactly; steps that
      carry any node voltage across one of [crossing_levels] are
      refined to [crossing_dt] so threshold-crossing searches keep
      their fixed-grid accuracy. Probed waveforms then live on a
      non-uniform grid — all [Waveform.Wave] consumers interpolate, so
      this is transparent downstream. *)

type integration = Trapezoidal | Backward_euler

type adaptive = {
  lte_tol : float;       (** target local truncation error per step, V *)
  dt_min : float;        (** smallest allowed step, s *)
  dt_max : float;        (** largest allowed step, s *)
  grow_limit : float;    (** max step growth factor per accepted step *)
  safety : float;        (** controller safety factor in (0, 1] *)
  crossing_levels : float list;
      (** absolute voltages; a step crossing one is refined *)
  crossing_dt : float;   (** step cap while crossing; 0 = use [dt] *)
}

type step_control = Fixed | Adaptive of adaptive

type solver_kind =
  | Dense  (** always the dense LU kernel *)
  | Banded  (** force the reordered banded/bordered kernel *)
  | Auto
      (** analyse the MNA sparsity per solve: RCM-reorder, demote hub
          unknowns (shared supply rail + its source branch) to a small
          dense border, and use the bordered-banded kernel when the
          remaining core bandwidth is decisively narrow; dense
          otherwise *)

val solver_kind_to_string : solver_kind -> string

val solver_kind_of_string : string -> (solver_kind, string) result
(** Parses ["dense" | "banded" | "auto"] (the [--solver] CLI values). *)

type config = {
  dt : float;            (** nominal step, seconds *)
  tstop : float;
  tstart : float;
  integration : integration;
  newton_tol_v : float;  (** voltage update convergence bound *)
  newton_tol_i : float;  (** KCL residual convergence bound *)
  max_newton : int;
  vstep_limit : float;   (** per-iteration voltage update clamp *)
  gmin : float;          (** conductance to ground on every node *)
  max_bisection : int;   (** step-halving depth on Newton failure *)
  step_control : step_control;
  max_steps : int;
      (** accepted-integration-step budget per [run]; 0 = unlimited.
          Exceeding it raises {!Step_budget_exhausted} — the safety net
          against floor-dt grinds under adaptive stepping. *)
  solver : solver_kind;  (** linear-kernel selection; see {!solver_kind} *)
  jac_reuse : bool;
      (** modified Newton: keep the last LU factorization across
          iterations and accepted steps while the update keeps
          contracting; refactor on stalls, step-size changes, or
          failures. The residual stays exact, so only iteration counts
          change, never converged answers beyond the Newton
          tolerances. A solve that fails under reuse is retried as
          pure Newton before being reported non-convergent. *)
}

val default_config : config
(** dt = 1 ps, tstop = 4 ns, tstart = 0, trapezoidal, tolerances
    1e-7 V / 1e-9 A, 60 Newton iterations, 0.6 V update clamp,
    gmin = 1e-12 S, 10 bisections, fixed grid, unlimited steps,
    [Auto] solver with Jacobian reuse on. *)

val default_adaptive : adaptive
(** lte_tol = 0.5 mV, dt_min = 10 fs, dt_max = 100 ps, grow 2x,
    safety 0.9, no crossing levels, crossing_dt = [dt]. *)

(** Functional setters, for building configs fluently (notably from
    [Runtime.Engine] presets). *)

val with_dt : config -> float -> config
val with_max_steps : config -> int -> config
val with_tstop : config -> float -> config
val with_tstart : config -> float -> config
val with_integration : config -> integration -> config
val with_step_control : config -> step_control -> config
val with_solver_kind : config -> solver_kind -> config
val with_jac_reuse : config -> bool -> config

val with_adaptive :
  ?lte_tol:float ->
  ?dt_min:float ->
  ?dt_max:float ->
  ?grow_limit:float ->
  ?safety:float ->
  ?crossing_levels:float list ->
  ?crossing_dt:float ->
  config ->
  config
(** Switch to adaptive stepping, overriding selected fields of the
    current adaptive settings (or {!default_adaptive} when coming from
    [Fixed]). *)

val is_adaptive : config -> bool

val with_crossing_levels_if_empty : config -> float list -> config
(** Fill in refinement levels (typically 0.1/0.5/0.9 x Vdd from the
    process thresholds) unless the caller already configured some.
    No-op on fixed-grid configs. *)

val config_fingerprint : config -> string
(** Lossless, exhaustive rendering of every solver field — the basis of
    [Runtime.Cache] keys. Two configs with equal fingerprints produce
    bit-identical simulations. *)

exception No_convergence of float
(** Carries the simulation time at which Newton failed beyond the
    bisection budget (fixed grid) or below [dt_min] (adaptive). *)

exception Step_budget_exhausted of { at : float; budget : int }
(** Raised when a [run] accepts more than [config.max_steps] steps —
    the simulation time reached and the configured budget. *)

exception Deadline_exceeded of { at : float; budget_ms : float }
(** Raised by a [run] whose caller-installed wall-clock budget (see
    {!Deadline}) expired — the simulation time reached and the budget
    that was in force. *)

(** Process-global solver effort counters, maintained with atomics so
    concurrent simulations on separate domains account correctly.
    These are the raw feed for [Runtime.Metrics]. *)
module Stats : sig
  type snapshot = {
    sims : int;          (** [run] invocations *)
    steps : int;         (** accepted integration steps *)
    newton_iters : int;  (** Newton iterations across all solves *)
    bisections : int;    (** step halvings after Newton failure *)
    gmin_retries : int;  (** DC solves that needed gmin stepping *)
    rejected_steps : int;
        (** adaptive steps retried (LTE, crossing, or Newton failure) *)
    lte_rejections : int;
        (** rejected steps whose LTE estimate exceeded the tolerance *)
    injected_faults : int;
        (** faults injected by an armed {!Fault} plan *)
    deadline_hits : int;
        (** solves cancelled by an expired {!Deadline} budget *)
    factorizations : int;
        (** LU factorizations (dense or banded) actually performed *)
    jac_reuses : int;
        (** Newton iterations served by a kept factorization — the
            modified-Newton win; [newton_iters] =
            [factorizations + jac_reuses] when no solve fails *)
    banded_solves : int;
        (** [run]s (and DC solves) that selected the bordered-banded
            kernel rather than dense *)
    batched_solves : int;
        (** cases that went through the lockstep batch kernel of
            {!run_batch} (conforming lanes, whether or not they
            completed) *)
    peeled_solves : int;
        (** {!run_batch} cases peeled to the scalar path: structure
            mismatch with the batch reference, or an adaptive-stepping
            config *)
  }

  val snapshot : unit -> snapshot
  val diff : snapshot -> snapshot -> snapshot
  (** [diff now before] — per-stage deltas. *)

  val reset : unit -> unit
  val pp : Format.formatter -> snapshot -> unit
end

(** Cooperative per-solve wall-clock deadlines. [with_budget] installs
    a budget in domain-local storage for the duration of [f]; every
    {!run} on that domain then checks the clock at each accepted step
    boundary (and once before stepping) and raises {!Deadline_exceeded}
    when the budget has expired. Cancellation is cooperative: a solve
    stops at the next step boundary, never mid-factorisation, so solver
    state and stats stay consistent. Nested budgets restore the outer
    one on exit; with no budget installed the per-step check is a
    domain-local load and costs nothing measurable. *)
module Deadline : sig
  val with_budget : ms:float -> (unit -> 'a) -> 'a
  (** Raises [Invalid_argument] when [ms] is not positive and finite. *)

  val active : unit -> bool
  (** Whether the calling domain currently has a budget installed. *)
end

(** Deterministic, seeded fault injection for exercising recovery
    paths. Arm a plan and every subsequent {!run} (process-wide, all
    domains) rolls against it: [Diverge] raises {!No_convergence}
    before solving; [Corrupt] completes the solve but poisons one
    mid-trace sample with NaN, which post-solve validation must catch.
    Decisions depend only on the solve index since {!arm} (plus the
    seed), so a fixed plan over a fixed workload reproduces exactly. *)
module Fault : sig
  type kind =
    | Diverge  (** raise [No_convergence] at [tstart] *)
    | Corrupt  (** return a waveform with a NaN sample *)
    | Slow
        (** stall at every accepted step boundary — the solve still
            completes (slowly) unless a {!Deadline} budget cancels it *)

  type plan =
    | Nth of { n : int; kind : kind }
        (** fail solve number [n] (0-based, counted from {!arm}) *)
    | Fraction of { rate : float; seed : int; kind : kind }
        (** fail a seeded pseudo-random fraction of solves *)

  val arm : plan -> unit
  (** Install the plan and reset the solve index. *)

  val disarm : unit -> unit

  val is_armed : unit -> bool
  (** Whether a plan is currently armed. Harnesses use this to skip
      optimizations (e.g. batch cache warm-up) that would reorder the
      solve-index sequence a deterministic plan assigns faults by. *)

  val injected : unit -> int
  (** Total faults injected — alias for [Stats.injected_faults]. *)

  val of_string : string -> (plan, string) result
  (** Parse a CLI spec: [["nan:"|"slow:"]("nth:"N | RATE["@"SEED])] —
      e.g. ["0.1"], ["0.1@7"], ["nth:3"], ["nan:0.05@2"],
      ["slow:nth:1"]. *)
end

type result

val run : ?config:config -> ?ic:(string * float) list -> Circuit.t -> result
(** Simulate. The initial state is the DC operating point at [tstart]
    (with sources evaluated there); [ic] entries override individual
    node voltages as Newton starting guesses for the DC solve, which is
    how logic-level hints are passed in. *)

val run_batch :
  ?config:config ->
  ?ics:(string * float) list array ->
  Circuit.t array ->
  result array
(** Batch-first solve: simulate every circuit under one shared
    [config], producing exactly the results a sequential {!run} loop
    would — byte-identical traces, same fault-plan assignment, same
    per-case deadline semantics — but through a lockstep multi-case
    kernel.

    Cases that are structurally identical to the batch's first case
    (same node/branch counts, same resistor/capacitor element values,
    same source and MOSFET topology; source values and device
    parameters free to differ — the alignment-sweep / process-corner
    shape) share one ordering plan and advance in lockstep, one
    fixed-grid interval per round, with committed state parked in
    structure-of-arrays [Bigarray] slabs between rounds. Finished or
    failed cases drop out of the round mask without stalling the rest.
    Non-conforming cases — and every case under adaptive stepping,
    whose step sequence is inherently per-case — are peeled to the
    scalar path, preserving its behaviour exactly.

    [ics] optionally gives per-case initial-condition hints (same
    meaning as {!run}'s [ic]); its length must equal the batch's.

    On a per-case failure the lowest-index failure is raised, as the
    sequential loop would raise it — though unlike the loop, later
    cases have already been attempted (their stats are counted). Use
    {!run_batch_outcomes} to observe every case's outcome. A
    caller-installed {!Deadline} budget is sliced per case: each case
    may consume the full remaining budget on its own compute, so one
    slow case is cancelled alone and its siblings complete. *)

val run_batch_outcomes :
  ?config:config ->
  ?ics:(string * float) list array ->
  Circuit.t array ->
  (result, exn) Stdlib.result array
(** Like {!run_batch} but per-case failures (non-convergence, deadline
    cancellation, step-budget exhaustion, compile rejection) are
    returned in place rather than raised, so callers with per-case
    retry ladders ([Runtime.Resilience]) can recover individually. *)

val times : result -> float array

val probe : result -> string -> Waveform.Wave.t
(** Waveform at the named node. Raises [Not_found] for unknown names.
    Under adaptive stepping the sample grid is non-uniform. *)

val final_voltage : result -> string -> float

val source_current : result -> string -> Waveform.Wave.t
(** Current delivered into the circuit by the voltage source on the
    named node, over time. Raises [Not_found] if the node has no
    source. *)

val delivered_charge : result -> string -> float
(** Time integral of {!source_current}: net charge the source pushed
    into the circuit over the simulation, coulombs. *)

val delivered_energy : result -> string -> float
(** Integral of v*i for the named source: the energy it delivered —
    the supply ("vdd") source's value is the switching + short-circuit
    energy of the run, joules. *)

val dc_operating_point :
  ?config:config -> ?guess:(string * float) list -> at:float -> Circuit.t ->
  (string * float) list
(** Standalone DC solve (capacitors open). Uses gmin stepping when the
    flat start fails to converge. *)
