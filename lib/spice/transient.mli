(** Nonlinear transient analysis.

    Modified nodal analysis with ideal-voltage-source branch currents,
    companion models for capacitors (trapezoidal by default, backward
    Euler available), and damped Newton-Raphson at every time point.
    The step grid is uniform with source breakpoints inserted; a step
    whose Newton fails is bisected recursively. *)

type integration = Trapezoidal | Backward_euler

type config = {
  dt : float;            (** nominal step, seconds *)
  tstop : float;
  tstart : float;
  integration : integration;
  newton_tol_v : float;  (** voltage update convergence bound *)
  newton_tol_i : float;  (** KCL residual convergence bound *)
  max_newton : int;
  vstep_limit : float;   (** per-iteration voltage update clamp *)
  gmin : float;          (** conductance to ground on every node *)
  max_bisection : int;   (** step-halving depth on Newton failure *)
}

val default_config : config
(** dt = 1 ps, tstop = 4 ns, tstart = 0, trapezoidal, tolerances
    1e-7 V / 1e-9 A, 60 Newton iterations, 0.6 V update clamp,
    gmin = 1e-12 S, 10 bisections. *)

exception No_convergence of float
(** Carries the simulation time at which Newton failed beyond the
    bisection budget. *)

(** Process-global solver effort counters, maintained with atomics so
    concurrent simulations on separate domains account correctly.
    These are the raw feed for [Runtime.Metrics]. *)
module Stats : sig
  type snapshot = {
    sims : int;          (** [run] invocations *)
    steps : int;         (** accepted integration steps *)
    newton_iters : int;  (** Newton iterations across all solves *)
    bisections : int;    (** step halvings after Newton failure *)
    gmin_retries : int;  (** DC solves that needed gmin stepping *)
  }

  val snapshot : unit -> snapshot
  val diff : snapshot -> snapshot -> snapshot
  (** [diff now before] — per-stage deltas. *)

  val reset : unit -> unit
  val pp : Format.formatter -> snapshot -> unit
end

type result

val run : ?config:config -> ?ic:(string * float) list -> Circuit.t -> result
(** Simulate. The initial state is the DC operating point at [tstart]
    (with sources evaluated there); [ic] entries override individual
    node voltages as Newton starting guesses for the DC solve, which is
    how logic-level hints are passed in. *)

val times : result -> float array

val probe : result -> string -> Waveform.Wave.t
(** Waveform at the named node. Raises [Not_found] for unknown names. *)

val final_voltage : result -> string -> float

val source_current : result -> string -> Waveform.Wave.t
(** Current delivered into the circuit by the voltage source on the
    named node, over time. Raises [Not_found] if the node has no
    source. *)

val delivered_charge : result -> string -> float
(** Time integral of {!source_current}: net charge the source pushed
    into the circuit over the simulation, coulombs. *)

val delivered_energy : result -> string -> float
(** Integral of v*i for the named source: the energy it delivered —
    the supply ("vdd") source's value is the switching + short-circuit
    energy of the run, joules. *)

val dc_operating_point :
  ?config:config -> ?guess:(string * float) list -> at:float -> Circuit.t ->
  (string * float) list
(** Standalone DC solve (capacitors open). Uses gmin stepping when the
    flat start fails to converge. *)
