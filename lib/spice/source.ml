type t =
  | Dc of float
  | Pwl of (float * float) array
  | Wave of Waveform.Wave.t
  | Ramp of Waveform.Ramp.t
  | Fn of (float -> float)

let dc v = Dc v

let pwl pts =
  let a = Array.of_list pts in
  if Array.length a < 2 then invalid_arg "Source.pwl: need 2 points";
  for i = 0 to Array.length a - 2 do
    if fst a.(i + 1) <= fst a.(i) then
      invalid_arg "Source.pwl: times must be strictly increasing"
  done;
  Pwl a

let ramp ~t0 ~v0 ~v1 ~trans =
  if trans <= 0.0 then invalid_arg "Source.ramp: trans must be positive";
  pwl [ (t0, v0); (t0 +. trans, v1) ]

let of_wave w = Wave w
let of_ramp r = Ramp r
let fn f = Fn f

let value src t =
  match src with
  | Dc v -> v
  | Fn f -> f t
  | Wave w -> Waveform.Wave.value_at w t
  | Ramp r -> Waveform.Ramp.value_at r t
  | Pwl a ->
      let n = Array.length a in
      if t <= fst a.(0) then snd a.(0)
      else if t >= fst a.(n - 1) then snd a.(n - 1)
      else begin
        let rec find i = if fst a.(i + 1) >= t then i else find (i + 1) in
        let i = find 0 in
        let t0, v0 = a.(i) and t1, v1 = a.(i + 1) in
        v0 +. ((t -. t0) /. (t1 -. t0) *. (v1 -. v0))
      end

let fingerprint = function
  | Dc v -> Some (Printf.sprintf "dc:%h" v)
  | Pwl a ->
      Some
        ("pwl:"
        ^ Digest.to_hex (Digest.string (Marshal.to_string a [])))
  | Wave w ->
      Some
        ("wave:"
        ^ Digest.to_hex
            (Digest.string
               (Marshal.to_string
                  (Waveform.Wave.times w, Waveform.Wave.values w)
                  [])))
  | Ramp r ->
      (* Begin/settle times plus their values pin down a saturated
         ramp completely. *)
      let t0 = Waveform.Ramp.t_begin r and t1 = Waveform.Ramp.t_settle r in
      Some
        (Printf.sprintf "ramp:%h:%h:%h:%h" t0 t1
           (Waveform.Ramp.value_at r t0)
           (Waveform.Ramp.value_at r t1))
  | Fn _ -> None

let breakpoints = function
  | Dc _ | Fn _ | Wave _ -> []
  | Pwl a -> Array.to_list (Array.map fst a)
  | Ramp r -> [ Waveform.Ramp.t_begin r; Waveform.Ramp.t_settle r ]
