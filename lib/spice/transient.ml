type integration = Trapezoidal | Backward_euler

type adaptive = {
  lte_tol : float;
  dt_min : float;
  dt_max : float;
  grow_limit : float;
  safety : float;
  crossing_levels : float list;
  crossing_dt : float;
}

type step_control = Fixed | Adaptive of adaptive
type solver_kind = Dense | Banded | Auto

let solver_kind_to_string = function
  | Dense -> "dense"
  | Banded -> "banded"
  | Auto -> "auto"

let solver_kind_of_string = function
  | "dense" -> Ok Dense
  | "banded" -> Ok Banded
  | "auto" -> Ok Auto
  | s -> Error (Printf.sprintf "bad solver %S: want dense|banded|auto" s)

type config = {
  dt : float;
  tstop : float;
  tstart : float;
  integration : integration;
  newton_tol_v : float;
  newton_tol_i : float;
  max_newton : int;
  vstep_limit : float;
  gmin : float;
  max_bisection : int;
  step_control : step_control;
  max_steps : int;
  solver : solver_kind;
  jac_reuse : bool;
}

let default_adaptive =
  {
    lte_tol = 5e-4;
    dt_min = 10e-15;
    dt_max = 100e-12;
    grow_limit = 2.0;
    safety = 0.9;
    crossing_levels = [];
    crossing_dt = 0.0;
  }

let default_config =
  {
    dt = 1e-12;
    tstop = 4e-9;
    tstart = 0.0;
    integration = Trapezoidal;
    newton_tol_v = 1e-7;
    newton_tol_i = 1e-9;
    max_newton = 60;
    vstep_limit = 0.6;
    gmin = 1e-12;
    max_bisection = 10;
    step_control = Fixed;
    max_steps = 0;
    solver = Auto;
    jac_reuse = true;
  }

let with_dt cfg dt = { cfg with dt }
let with_max_steps cfg max_steps = { cfg with max_steps }
let with_tstop cfg tstop = { cfg with tstop }
let with_tstart cfg tstart = { cfg with tstart }
let with_integration cfg integration = { cfg with integration }
let with_step_control cfg step_control = { cfg with step_control }
let with_solver_kind cfg solver = { cfg with solver }
let with_jac_reuse cfg jac_reuse = { cfg with jac_reuse }

let with_adaptive ?lte_tol ?dt_min ?dt_max ?grow_limit ?safety
    ?crossing_levels ?crossing_dt cfg =
  let base =
    match cfg.step_control with
    | Adaptive a -> a
    | Fixed -> default_adaptive
  in
  let v o d = Option.value o ~default:d in
  {
    cfg with
    step_control =
      Adaptive
        {
          lte_tol = v lte_tol base.lte_tol;
          dt_min = v dt_min base.dt_min;
          dt_max = v dt_max base.dt_max;
          grow_limit = v grow_limit base.grow_limit;
          safety = v safety base.safety;
          crossing_levels = v crossing_levels base.crossing_levels;
          crossing_dt = v crossing_dt base.crossing_dt;
        };
  }

let is_adaptive cfg =
  match cfg.step_control with Adaptive _ -> true | Fixed -> false

let with_crossing_levels_if_empty cfg levels =
  match cfg.step_control with
  | Fixed -> cfg
  | Adaptive a when a.crossing_levels = [] ->
      { cfg with step_control = Adaptive { a with crossing_levels = levels } }
  | Adaptive _ -> cfg

(* Exhaustive, lossless rendering of a config. Every field that can
   change a simulated waveform MUST appear here: [Runtime.Cache] keys
   are derived from this string, so a missed field would let a config
   change hit a stale cache entry. The full record destructure makes
   adding a field without updating this function a compile error. *)
let config_fingerprint cfg =
  let {
    dt;
    tstop;
    tstart;
    integration;
    newton_tol_v;
    newton_tol_i;
    max_newton;
    vstep_limit;
    gmin;
    max_bisection;
    step_control;
    max_steps;
    solver;
    jac_reuse;
  } =
    cfg
  in
  let f = Printf.sprintf "%h" in
  let sc =
    match step_control with
    | Fixed -> "fixed"
    | Adaptive
        {
          lte_tol;
          dt_min;
          dt_max;
          grow_limit;
          safety;
          crossing_levels;
          crossing_dt;
        } ->
        String.concat ","
          ([
             "adaptive";
             f lte_tol;
             f dt_min;
             f dt_max;
             f grow_limit;
             f safety;
             f crossing_dt;
           ]
          @ List.map f crossing_levels)
  in
  String.concat "|"
    [
      "tran.config";
      f dt;
      f tstop;
      f tstart;
      (match integration with Trapezoidal -> "trap" | Backward_euler -> "be");
      f newton_tol_v;
      f newton_tol_i;
      string_of_int max_newton;
      f vstep_limit;
      f gmin;
      string_of_int max_bisection;
      string_of_int max_steps;
      solver_kind_to_string solver;
      (if jac_reuse then "reuse" else "noreuse");
      sc;
    ]

exception No_convergence of float
exception Step_budget_exhausted of { at : float; budget : int }
exception Deadline_exceeded of { at : float; budget_ms : float }

module Stats = struct
  type snapshot = {
    sims : int;
    steps : int;
    newton_iters : int;
    bisections : int;
    gmin_retries : int;
    rejected_steps : int;
    lte_rejections : int;
    injected_faults : int;
    deadline_hits : int;
    factorizations : int;
    jac_reuses : int;
    banded_solves : int;
    batched_solves : int;
    peeled_solves : int;
  }

  (* Process-global, updated with atomics so pool domains running
     concurrent simulations account correctly. *)
  let sims = Atomic.make 0
  let steps = Atomic.make 0
  let newton_iters = Atomic.make 0
  let bisections = Atomic.make 0
  let gmin_retries = Atomic.make 0
  let rejected_steps = Atomic.make 0
  let lte_rejections = Atomic.make 0
  let injected_faults = Atomic.make 0
  let deadline_hits = Atomic.make 0
  let factorizations = Atomic.make 0
  let jac_reuses = Atomic.make 0
  let banded_solves = Atomic.make 0
  let batched_solves = Atomic.make 0
  let peeled_solves = Atomic.make 0

  let snapshot () =
    {
      sims = Atomic.get sims;
      steps = Atomic.get steps;
      newton_iters = Atomic.get newton_iters;
      bisections = Atomic.get bisections;
      gmin_retries = Atomic.get gmin_retries;
      rejected_steps = Atomic.get rejected_steps;
      lte_rejections = Atomic.get lte_rejections;
      injected_faults = Atomic.get injected_faults;
      deadline_hits = Atomic.get deadline_hits;
      factorizations = Atomic.get factorizations;
      jac_reuses = Atomic.get jac_reuses;
      banded_solves = Atomic.get banded_solves;
      batched_solves = Atomic.get batched_solves;
      peeled_solves = Atomic.get peeled_solves;
    }

  let diff a b =
    {
      sims = a.sims - b.sims;
      steps = a.steps - b.steps;
      newton_iters = a.newton_iters - b.newton_iters;
      bisections = a.bisections - b.bisections;
      gmin_retries = a.gmin_retries - b.gmin_retries;
      rejected_steps = a.rejected_steps - b.rejected_steps;
      lte_rejections = a.lte_rejections - b.lte_rejections;
      injected_faults = a.injected_faults - b.injected_faults;
      deadline_hits = a.deadline_hits - b.deadline_hits;
      factorizations = a.factorizations - b.factorizations;
      jac_reuses = a.jac_reuses - b.jac_reuses;
      banded_solves = a.banded_solves - b.banded_solves;
      batched_solves = a.batched_solves - b.batched_solves;
      peeled_solves = a.peeled_solves - b.peeled_solves;
    }

  let reset () =
    Atomic.set sims 0;
    Atomic.set steps 0;
    Atomic.set newton_iters 0;
    Atomic.set bisections 0;
    Atomic.set gmin_retries 0;
    Atomic.set rejected_steps 0;
    Atomic.set lte_rejections 0;
    Atomic.set injected_faults 0;
    Atomic.set deadline_hits 0;
    Atomic.set factorizations 0;
    Atomic.set jac_reuses 0;
    Atomic.set banded_solves 0;
    Atomic.set batched_solves 0;
    Atomic.set peeled_solves 0

  let pp ppf s =
    Format.fprintf ppf
      "%d sims (%d banded, %d batched, %d peeled), %d steps (%d rejected, %d \
       by LTE), %d newton iters, %d factorizations (%d reused), %d \
       bisections, %d gmin retries, %d injected faults, %d deadline hits"
      s.sims s.banded_solves s.batched_solves s.peeled_solves s.steps
      s.rejected_steps s.lte_rejections s.newton_iters s.factorizations
      s.jac_reuses s.bisections s.gmin_retries s.injected_faults
      s.deadline_hits
end

(* Cooperative per-solve deadlines. A caller installs a wall-clock
   budget with [with_budget]; [run] then checks it at every accepted
   step boundary (and once up front) and raises [Deadline_exceeded]
   when it has expired. The token lives in domain-local storage, so a
   pool worker's budget never leaks into sibling domains, and checking
   is free when no budget is installed. *)
module Deadline = struct
  let key : (float * float) option Domain.DLS.key =
    (* (absolute expiry, epoch seconds; original budget, ms) *)
    Domain.DLS.new_key (fun () -> None)

  let with_budget ~ms f =
    if not (Float.is_finite ms) || ms <= 0.0 then
      invalid_arg "Transient.Deadline.with_budget: budget must be positive";
    let prev = Domain.DLS.get key in
    Domain.DLS.set key (Some (Unix.gettimeofday () +. (ms /. 1000.0), ms));
    Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

  let active () = Domain.DLS.get key <> None

  let check ~at =
    match Domain.DLS.get key with
    | None -> ()
    | Some (expiry, budget_ms) ->
        if Unix.gettimeofday () > expiry then begin
          Atomic.incr Stats.deadline_hits;
          raise (Deadline_exceeded { at; budget_ms })
        end
end

(* Deterministic fault injection: tests, bench, and CI arm a plan and
   every subsequent [run] rolls against it. Decisions depend only on
   the process-global solve index (and a seed), never on wall-clock or
   scheduling, so a given (plan, workload) pair injects the same faults
   on every run — including across a checkpoint resume. *)
module Fault = struct
  type kind = Diverge | Corrupt | Slow

  (* Stall injected per accepted step by [Slow] — long enough that any
     realistic deadline trips after a handful of steps, short enough
     that an unbounded faulted solve still finishes. *)
  let slow_step_s = 2e-4

  type plan =
    | Nth of { n : int; kind : kind }
    | Fraction of { rate : float; seed : int; kind : kind }

  let armed : plan option Atomic.t = Atomic.make None
  let solve_index = Atomic.make 0

  let arm plan =
    Atomic.set solve_index 0;
    Atomic.set armed (Some plan)

  let disarm () = Atomic.set armed None
  let is_armed () = Option.is_some (Atomic.get armed)
  let injected () = Atomic.get Stats.injected_faults

  (* Hash the (seed, index) pair to a uniform float in [0, 1). MD5 is
     plenty fast next to a transient solve and identical everywhere. *)
  let roll_float seed k =
    let d = Digest.string (Printf.sprintf "tran.fault:%d:%d" seed k) in
    let x = ref 0 in
    for i = 0 to 5 do
      x := (!x lsl 8) lor Char.code d.[i]
    done;
    float_of_int !x /. float_of_int (1 lsl 48)

  let roll () =
    match Atomic.get armed with
    | None -> None
    | Some plan ->
        let k = Atomic.fetch_and_add solve_index 1 in
        let hit, kind =
          match plan with
          | Nth { n; kind } -> (k = n, kind)
          | Fraction { rate; seed; kind } -> (roll_float seed k < rate, kind)
        in
        if hit then begin
          Atomic.incr Stats.injected_faults;
          Some kind
        end
        else None

  (* Spec grammar: ["nan:"|"slow:"]("nth:"N | RATE["@"SEED]). Examples:
     "0.1" (10% of solves diverge, seed 0), "0.1@7", "nth:3",
     "nan:0.05@2" (5% of solves return a NaN-corrupted waveform),
     "slow:nth:1" (solve #1 stalls at every step boundary). *)
  let of_string s =
    let kind, rest =
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "nan" ->
          (Corrupt, String.sub s (i + 1) (String.length s - i - 1))
      | Some i when String.sub s 0 i = "slow" ->
          (Slow, String.sub s (i + 1) (String.length s - i - 1))
      | _ -> (Diverge, s)
    in
    let nth_prefix = "nth:" in
    let has_nth =
      String.length rest > String.length nth_prefix
      && String.sub rest 0 (String.length nth_prefix) = nth_prefix
    in
    if has_nth then
      let num =
        String.sub rest (String.length nth_prefix)
          (String.length rest - String.length nth_prefix)
      in
      match int_of_string_opt num with
      | Some n when n >= 0 -> Ok (Nth { n; kind })
      | _ -> Error (Printf.sprintf "bad fault spec %S: nth:N needs N >= 0" s)
    else
      let rate_s, seed =
        match String.index_opt rest '@' with
        | Some i -> (
            ( String.sub rest 0 i,
              String.sub rest (i + 1) (String.length rest - i - 1) ))
            |> fun (r, sd) -> (r, int_of_string_opt sd)
        | None -> (rest, Some 0)
      in
      match (float_of_string_opt rate_s, seed) with
      | Some rate, Some seed when rate >= 0.0 && rate <= 1.0 ->
          Ok (Fraction { rate; seed; kind })
      | _ ->
          Error
            (Printf.sprintf
               "bad fault spec %S: want [nan:|slow:](nth:N | RATE[@SEED])" s)
end

(* Compiled, array-based view of the circuit for fast stamping. *)
type compiled = {
  n : int;                                  (* node unknowns *)
  m : int;                                  (* vsource branch unknowns *)
  res : (int * int * float) array;          (* a, b, conductance *)
  caps : (int * int * float) array;
  vsrc : (int * Source.t) array;
  isrc : (int * int * Source.t) array;
  fets : (int * int * int * Circuit.mosfet_eval) array;
  name_index : (string, int) Hashtbl.t;
}

let compile ckt =
  let n = Circuit.num_nodes ckt in
  let res =
    Circuit.resistors ckt
    |> List.map (fun ((a : Circuit.node), (b : Circuit.node), r) ->
           ((a :> int), (b :> int), 1.0 /. r))
    |> Array.of_list
  in
  let caps =
    Circuit.capacitors ckt
    |> List.map (fun ((a : Circuit.node), (b : Circuit.node), c) ->
           ((a :> int), (b :> int), c))
    |> Array.of_list
  in
  let vsrc =
    Circuit.vsources ckt
    |> List.map (fun ((nd : Circuit.node), s) -> ((nd :> int), s))
    |> Array.of_list
  in
  (* Reject two sources on the same node: the MNA system would be
     singular and the netlist is certainly wrong. *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (nd, _) ->
      if Hashtbl.mem seen nd then
        invalid_arg "Transient: two voltage sources on one node";
      Hashtbl.add seen nd ())
    vsrc;
  let isrc =
    Circuit.isources ckt
    |> List.map (fun ((a : Circuit.node), (b : Circuit.node), s) ->
           ((a :> int), (b :> int), s))
    |> Array.of_list
  in
  let fets =
    Circuit.mosfets ckt
    |> List.map (fun (_, (g : Circuit.node), (d : Circuit.node), (s : Circuit.node), eval) ->
           ((g :> int), (d :> int), (s :> int), eval))
    |> Array.of_list
  in
  let name_index = Hashtbl.create 64 in
  List.iteri (fun i nm -> Hashtbl.add name_index nm i) (Circuit.node_names ckt);
  { n; m = Array.length vsrc; res; caps; vsrc; isrc; fets; name_index }

let is_gnd i = i < 0
let getv x i = if is_gnd i then 0.0 else x.(i)

(* ------------------------------------------------------------------ *)
(* Solver hot path.

   The Newton/transient kernel is built around a per-solve workspace
   created once in [run] and reused across every step and iteration:

   - The system matrix is either dense or bordered-banded. The MNA
     sparsity pattern is fixed at compile time, so [Auto] runs
     [Numerics.Ordering.plan] over it: RCM narrows the band and hub
     unknowns that no ordering can narrow (the shared supply node and
     its source branch row) are demoted to a small dense border,
     giving the arrowhead form [Numerics.Bordered] factors in O(n)
     per solve. When no narrow plan exists (or the system is tiny)
     the dense [Numerics.Matrix] path is used.
   - The matrix is split into a constant linear part — gmin loads,
     resistors, voltage-source rows, plus the dt-dependent capacitor
     companion conductances — stamped only when its (gmin, h,
     integration) key changes, and the MOSFET stamps, re-applied per
     Newton iteration on top of a baseline copy.
   - The factorization is kept across iterations and accepted steps
     (modified Newton) while the iteration keeps contracting; it is
     refactored when progress stalls, the linear key changes, or a
     solve fails. The residual is always exact, so reuse changes the
     iteration count, never the converged answer beyond the Newton
     tolerances.
   - All vectors ([f], [rhs], trial states, capacitor snapshots) are
     preallocated; the inner loop negates the residual into the rhs
     buffer and the solvers overwrite it in place, so a Newton
     iteration allocates nothing beyond the device-eval results. *)

type sysmat =
  | MDense of {
      m : Numerics.Matrix.t;
      lin : Numerics.Matrix.t;
      fact : Numerics.Matrix.fact;
    }
  | MBord of {
      m : Numerics.Bordered.t;
      lin : Numerics.Bordered.t;
      fact : Numerics.Bordered.fact;
    }

type ws = {
  nu : int;
  order : int array; (* unknown -> matrix position (identity for dense) *)
  mat : sysmat;
  banded : bool;
  f : float array; (* residual, unknown order *)
  rhs : float array; (* negated residual / solution, matrix order *)
  x0 : float array; (* newton entry state, for the pure-Newton restart *)
  vvals : float array; (* per-vsource value at the current solve time *)
  ivals : float array; (* per-isource value at the current solve time *)
  fet_vals : float array; (* per-fet (ids, dg, dd, ds) from the residual *)
  cap_geq : float array; (* per-cap companion conductance for this call *)
  cap_ieq : float array; (* per-cap companion current for this call *)
  (* Compiled MOSFET stamp pattern: the sparsity is static, so every
     Jacobian entry a fet touches is resolved once to its backing
     array and flat offset; [restamp] is then a single tight loop. *)
  stamp_arr : float array array; (* target array per stamp entry *)
  stamp_idx : int array; (* flat offset into [stamp_arr.(e)] *)
  stamp_src : int array; (* index into [fet_vals] *)
  stamp_sign : float array;
  (* Device topology unpacked structure-of-arrays: the residual loop
     runs every Newton iteration, and reading parallel int/float
     arrays beats chasing the compiled tuples' boxed float fields. *)
  res_a : int array;
  res_b : int array;
  res_g : float array;
  isrc_a : int array;
  isrc_b : int array;
  cap_a : int array;
  cap_b : int array;
  cap_c : float array;
  fet_g : int array;
  fet_d : int array;
  fet_s : int array;
  fet_eval : Circuit.mosfet_eval array;
  vsrc_nd : int array;
  mutable lin_valid : bool;
  mutable lin_gmin : float;
  mutable lin_h : float; (* 0 = DC: no capacitor companions *)
  mutable lin_integ : integration;
  mutable fact_valid : bool;
  mutable fact_stale : int; (* iterations solved since last factor *)
  (* step-level scratch owned by [run] *)
  vcap0 : float array;
  icap0 : float array;
  xtrial : float array;
  xcomp : float array;
  (* Predictor state: the last accepted solution and its step size,
     for the linear-extrapolation initial guess on the next step. *)
  xprev : float array;
  mutable hprev : float;
  mutable have_prev : bool;
  nscr : float array;
      (* Newton loop float state (max dv / max f / previous dv): a
         float array instead of refs so stores stay unboxed. *)
  (* Newton loop int/bool state as mutable fields rather than local
     refs, so a solve allocates nothing: immediate values need neither
     a ref cell nor a write barrier. *)
  mutable nw_iter : int;
  mutable nw_stale : int;
  mutable nw_conv : bool;
  mutable nw_total : int;
  mutable nw_reused : bool;
}

(* Banded pays off once the reordered band is decisively narrower than
   the full system; tiny systems stay dense (the constant factors win). *)
let auto_min_unknowns = 10

let plan_for cp cfg =
  let nu = cp.n + cp.m in
  let want_banded =
    match cfg.solver with
    | Dense -> false
    | Banded -> nu >= 2
    | Auto -> nu >= auto_min_unknowns
  in
  if not want_banded then None
  else begin
    let edges = ref [] in
    let add a b = if a >= 0 && b >= 0 then edges := (a, b) :: !edges in
    Array.iter (fun (a, b, _) -> add a b) cp.res;
    Array.iter (fun (a, b, _) -> add a b) cp.caps;
    Array.iter
      (fun (g, d, s, _) ->
        add d g;
        add d s;
        add s g)
      cp.fets;
    let coupled = ref [] in
    Array.iteri
      (fun j (nd, _) ->
        let row = cp.n + j in
        add nd row;
        coupled := (nd, row) :: !coupled)
      cp.vsrc;
    let max_bandwidth, max_border =
      match cfg.solver with
      | Banded -> (Int.max 2 (nu / 2), Int.max 2 (nu / 4))
      | _ -> (Int.max 2 (nu / 4), Int.max 2 (nu / 8))
    in
    Numerics.Ordering.plan ~n:nu ~edges:!edges ~coupled:!coupled
      ~max_bandwidth ~max_border ()
  end

(* Build a workspace from a precomputed ordering plan. The plan (RCM
   reordering + border selection) depends only on the sparsity pattern,
   so a batch of structurally identical cases computes it once and
   instantiates one workspace per lane from it. *)
let make_ws_planned plan cp =
  let nu = cp.n + cp.m in
  let order, mat =
    match plan with
    | Some p when p.Numerics.Ordering.core > 0 ->
        let nb = p.Numerics.Ordering.core in
        let bw = Int.max 1 p.Numerics.Ordering.bandwidth in
        let border = nu - nb in
        let make () =
          Numerics.Bordered.create ~nb ~kl:bw ~ku:bw ~border
        in
        let m = make () in
        ( p.Numerics.Ordering.order,
          MBord { m; lin = make (); fact = Numerics.Bordered.fact_create m } )
    | _ ->
        let m = Numerics.Matrix.create nu nu in
        ( Array.init nu (fun i -> i),
          MDense
            {
              m;
              lin = Numerics.Matrix.create nu nu;
              fact = Numerics.Matrix.fact_create nu;
            } )
  in
  let banded = match mat with MBord _ -> true | MDense _ -> false in
  if banded then Atomic.incr Stats.banded_solves;
  let ncap = Array.length cp.caps in
  let stamps =
    let slot_of i j =
      match mat with
      | MDense d -> Numerics.Matrix.slot d.m order.(i) order.(j)
      | MBord b -> Numerics.Bordered.slot b.m order.(i) order.(j)
    in
    let acc = ref [] in
    Array.iteri
      (fun k (g, d, s, _) ->
        let base = 4 * k in
        let entry i j src sign =
          if (not (is_gnd i)) && not (is_gnd j) then begin
            let arr, idx = slot_of i j in
            acc := (arr, idx, src, sign) :: !acc
          end
        in
        entry d g (base + 1) 1.0;
        entry d d (base + 2) 1.0;
        entry d s (base + 3) 1.0;
        entry s g (base + 1) (-1.0);
        entry s d (base + 2) (-1.0);
        entry s s (base + 3) (-1.0))
      cp.fets;
    Array.of_list (List.rev !acc)
  in
  {
    nu;
    order;
    mat;
    banded;
    f = Array.make nu 0.0;
    rhs = Array.make nu 0.0;
    x0 = Array.make nu 0.0;
    vvals = Array.make (Array.length cp.vsrc) 0.0;
    ivals = Array.make (Array.length cp.isrc) 0.0;
    fet_vals = Array.make (4 * Array.length cp.fets) 0.0;
    cap_geq = Array.make ncap 0.0;
    cap_ieq = Array.make ncap 0.0;
    stamp_arr = Array.map (fun (a, _, _, _) -> a) stamps;
    stamp_idx = Array.map (fun (_, i, _, _) -> i) stamps;
    stamp_src = Array.map (fun (_, _, s, _) -> s) stamps;
    stamp_sign = Array.map (fun (_, _, _, sg) -> sg) stamps;
    res_a = Array.map (fun (a, _, _) -> a) cp.res;
    res_b = Array.map (fun (_, b, _) -> b) cp.res;
    res_g = Array.map (fun (_, _, g) -> g) cp.res;
    isrc_a = Array.map (fun (a, _, _) -> a) cp.isrc;
    isrc_b = Array.map (fun (_, b, _) -> b) cp.isrc;
    cap_a = Array.map (fun (a, _, _) -> a) cp.caps;
    cap_b = Array.map (fun (_, b, _) -> b) cp.caps;
    cap_c = Array.map (fun (_, _, c) -> c) cp.caps;
    fet_g = Array.map (fun (g, _, _, _) -> g) cp.fets;
    fet_d = Array.map (fun (_, d, _, _) -> d) cp.fets;
    fet_s = Array.map (fun (_, _, s, _) -> s) cp.fets;
    fet_eval = Array.map (fun (_, _, _, e) -> e) cp.fets;
    vsrc_nd = Array.map (fun (nd, _) -> nd) cp.vsrc;
    lin_valid = false;
    lin_gmin = 0.0;
    lin_h = 0.0;
    lin_integ = Trapezoidal;
    fact_valid = false;
    fact_stale = 0;
    vcap0 = Array.make ncap 0.0;
    icap0 = Array.make ncap 0.0;
    xtrial = Array.make nu 0.0;
    xcomp = Array.make nu 0.0;
    xprev = Array.make nu 0.0;
    hprev = 0.0;
    have_prev = false;
    nscr = Array.make 3 0.0;
    nw_iter = 0;
    nw_stale = 0;
    nw_conv = false;
    nw_total = 0;
    nw_reused = false;
  }

let make_ws cp cfg = make_ws_planned (plan_for cp cfg) cp

let geq_of ~integ ~h c =
  match integ with
  | Backward_euler -> c /. h
  | Trapezoidal -> 2.0 *. c /. h

(* Restamp the linear baseline — gmin loads, resistors, capacitor
   companion conductances for the current step size, voltage-source
   rows — when its key changes. On a fixed grid this happens once per
   solve; adaptive stepping restamps when h or the companion model
   changes. Any change invalidates the kept factorization. *)
let ensure_lin ws cp ~gmin ~h ~integ =
  (* Grid arithmetic jitters [h] by a few ulps between nominally equal
     fixed-grid steps; stamping the companion conductances at a step
     size within 1e-9 relative of the last one leaves the Jacobian
     stale by the same negligible factor (the residual always uses the
     exact [h]), so treat such steps as equal rather than restamping
     and refactoring every step. *)
  let same_h =
    h = ws.lin_h || abs_float (h -. ws.lin_h) <= 1e-9 *. abs_float h
  in
  if
    (not ws.lin_valid)
    || ws.lin_gmin <> gmin
    || (not same_h)
    || (h > 0.0 && ws.lin_integ <> integ && Array.length cp.caps > 0)
  then begin
    let order = ws.order in
    let add =
      match ws.mat with
      | MDense d ->
          fun i j v -> Numerics.Matrix.add_to d.lin order.(i) order.(j) v
      | MBord b ->
          fun i j v -> Numerics.Bordered.add_to b.lin order.(i) order.(j) v
    in
    (match ws.mat with
    | MDense d -> Numerics.Matrix.fill d.lin 0.0
    | MBord b -> Numerics.Bordered.fill b.lin 0.0);
    for i = 0 to cp.n - 1 do
      add i i gmin
    done;
    for k = 0 to Array.length cp.res - 1 do
      let a, b, g = cp.res.(k) in
      if not (is_gnd a) then begin
        add a a g;
        if not (is_gnd b) then add a b (-.g)
      end;
      if not (is_gnd b) then begin
        add b b g;
        if not (is_gnd a) then add b a (-.g)
      end
    done;
    if h > 0.0 then
      for k = 0 to Array.length cp.caps - 1 do
        let a, b, c = cp.caps.(k) in
        let geq = geq_of ~integ ~h c in
        if not (is_gnd a) then begin
          add a a geq;
          if not (is_gnd b) then add a b (-.geq)
        end;
        if not (is_gnd b) then begin
          add b b geq;
          if not (is_gnd a) then add b a (-.geq)
        end
      done;
    for j = 0 to Array.length cp.vsrc - 1 do
      let nd, _ = cp.vsrc.(j) in
      let row = cp.n + j in
      add nd row 1.0;
      add row nd 1.0
    done;
    ws.lin_valid <- true;
    ws.lin_gmin <- gmin;
    ws.lin_h <- h;
    ws.lin_integ <- integ;
    ws.fact_valid <- false
  end

(* Exact KCL residual at [x], into [ws.f]. Device evaluations are also
   what the Jacobian restamp needs, so the per-fet derivatives are
   parked in [ws.fet_vals] — one [eval] per fet per iteration. *)
(* Node indices in the unpacked topology arrays were validated at
   compile time (gnd encoded negative, others < n <= nu), so the
   device loops below use unsafe accesses on the nu-sized vectors. *)
let ugetv x i = if is_gnd i then 0.0 else Array.unsafe_get x i

let uacc f i v = Array.unsafe_set f i (Array.unsafe_get f i +. v)

let residual ws cp ~gmin ~h x =
  let f = ws.f in
  Array.fill f 0 ws.nu 0.0;
  for i = 0 to cp.n - 1 do
    Array.unsafe_set f i (gmin *. Array.unsafe_get x i)
  done;
  let ra = ws.res_a and rb = ws.res_b and rg = ws.res_g in
  for k = 0 to Array.length ra - 1 do
    let a = Array.unsafe_get ra k and b = Array.unsafe_get rb k in
    let i = Array.unsafe_get rg k *. (ugetv x a -. ugetv x b) in
    if not (is_gnd a) then uacc f a i;
    if not (is_gnd b) then uacc f b (-.i)
  done;
  let ia = ws.isrc_a and ib = ws.isrc_b in
  for k = 0 to Array.length ia - 1 do
    let a = Array.unsafe_get ia k and b = Array.unsafe_get ib k in
    let i = ws.ivals.(k) in
    if not (is_gnd a) then uacc f a i;
    if not (is_gnd b) then uacc f b (-.i)
  done;
  if h > 0.0 then begin
    (* Companion values precomputed once per Newton call ([newton]
       fills [cap_geq]/[cap_ieq]); the capacitor state is fixed for
       the whole call. *)
    let ca = ws.cap_a and cb = ws.cap_b in
    let geq = ws.cap_geq and ieq = ws.cap_ieq in
    for k = 0 to Array.length ca - 1 do
      let a = Array.unsafe_get ca k and b = Array.unsafe_get cb k in
      let i =
        (Array.unsafe_get geq k *. (ugetv x a -. ugetv x b))
        +. Array.unsafe_get ieq k
      in
      if not (is_gnd a) then uacc f a i;
      if not (is_gnd b) then uacc f b (-.i)
    done
  end;
  let fg = ws.fet_g and fd = ws.fet_d and fs = ws.fet_s in
  let fe = ws.fet_eval and fv = ws.fet_vals in
  for k = 0 to Array.length fe - 1 do
    let d = fd.(k) and s = fs.(k) in
    let ids, dg, dd, ds =
      fe.(k) ~vg:(ugetv x fg.(k)) ~vd:(ugetv x d) ~vs:(ugetv x s)
    in
    let base = 4 * k in
    Array.unsafe_set fv base ids;
    Array.unsafe_set fv (base + 1) dg;
    Array.unsafe_set fv (base + 2) dd;
    Array.unsafe_set fv (base + 3) ds;
    if not (is_gnd d) then uacc f d ids;
    if not (is_gnd s) then uacc f s (-.ids)
  done;
  let vn = ws.vsrc_nd in
  for j = 0 to Array.length vn - 1 do
    let nd = vn.(j) in
    let row = cp.n + j in
    f.(nd) <- f.(nd) +. x.(row);
    f.(row) <- x.(nd) -. ws.vvals.(j)
  done

(* Full Jacobian = linear baseline copy + MOSFET stamps at the
   derivatives the residual pass just evaluated. *)
let restamp ws =
  (match ws.mat with
  | MDense d -> Numerics.Matrix.blit d.lin d.m
  | MBord b -> Numerics.Bordered.blit b.lin b.m);
  let fv = ws.fet_vals in
  let idx = ws.stamp_idx and src = ws.stamp_src and sg = ws.stamp_sign in
  for e = 0 to Array.length idx - 1 do
    let arr = ws.stamp_arr.(e) in
    let i = idx.(e) in
    arr.(i) <- arr.(i) +. (sg.(e) *. fv.(src.(e)))
  done

let factorize ws =
  ws.fact_valid <- false;
  (match ws.mat with
  | MDense d -> Numerics.Matrix.factor_into d.m d.fact
  | MBord b -> Numerics.Bordered.factor_into b.m b.fact);
  ws.fact_valid <- true;
  ws.fact_stale <- 0;
  Atomic.incr Stats.factorizations

let solve_rhs ws =
  match ws.mat with
  | MDense d -> Numerics.Matrix.solve_into d.fact ws.rhs
  | MBord b -> Numerics.Bordered.solve_into b.fact ws.rhs

(* A reused Jacobian must keep the error contracting; once the update
   stops shrinking by at least this factor per iteration, refactor. *)
let reuse_contraction = 0.5

(* A single Newton call may spend at most this many iterations on a
   stale factorization before refactoring: steps that converge
   immediately (the quiescent bulk of a transient) pay nothing, while
   transition steps get a fresh Jacobian after two cut-rate iterations
   instead of grinding linearly toward the tolerance. *)
let max_stale_iters = 2

(* One Newton phase: iterate to convergence, optionally reusing a stale
   Jacobian factorization. Lifted to the top level (rather than a
   closure inside [newton]) and with loop state in [ws] scratch fields
   so a converging phase allocates nothing. Returns true on
   convergence. *)
let solve_phase ws cp cfg ~gmin ~h ~reuse x =
  let nu = ws.nu in
  let order = ws.order in
  ws.nw_conv <- false;
  ws.nw_iter <- 0;
  ws.nw_stale <- 0;
  (* Float loop state lives in the [nscr] scratch array: a bare
     [ref 0.0] would box a fresh float on every store (no flambda),
     wrecking the allocation-free inner loop. Slot 0 is max |dv|,
     slot 1 max |f|, slot 2 the previous iteration's max |dv|. *)
  let sc = ws.nscr in
  sc.(2) <- infinity;
  (try
     while not ws.nw_conv do
       if ws.nw_iter >= cfg.max_newton then raise Exit;
       ws.nw_iter <- ws.nw_iter + 1;
       residual ws cp ~gmin ~h x;
       if (not reuse) || not ws.fact_valid then begin
         restamp ws;
         factorize ws
       end
       else begin
         ws.fact_stale <- ws.fact_stale + 1;
         ws.nw_stale <- ws.nw_stale + 1;
         ws.nw_reused <- true;
         Atomic.incr Stats.jac_reuses
       end;
       for i = 0 to nu - 1 do
         ws.rhs.(order.(i)) <- -.ws.f.(i)
       done;
       solve_rhs ws;
       (* Clamp voltage updates for robustness; branch currents
          free. *)
       sc.(0) <- 0.0;
       for i = 0 to cp.n - 1 do
         let d = ws.rhs.(order.(i)) in
         let d =
           if d > cfg.vstep_limit then cfg.vstep_limit
           else if d < -.cfg.vstep_limit then -.cfg.vstep_limit
           else d
         in
         x.(i) <- x.(i) +. d;
         if abs_float d > sc.(0) then sc.(0) <- abs_float d
       done;
       for i = cp.n to nu - 1 do
         x.(i) <- x.(i) +. ws.rhs.(order.(i))
       done;
       sc.(1) <- 0.0;
       for i = 0 to cp.n - 1 do
         if abs_float ws.f.(i) > sc.(1) then sc.(1) <- abs_float ws.f.(i)
       done;
       if sc.(0) < cfg.newton_tol_v && sc.(1) < cfg.newton_tol_i then
         ws.nw_conv <- true
       else if
           reuse && ws.fact_stale > 0
           && (ws.nw_stale >= max_stale_iters
              || sc.(0) >= reuse_contraction *. sc.(2))
       then
         (* Stalled — or burning too many cut-rate iterations — under
            a stale Jacobian: refactor at the new iterate next time
            round. Quiescent steps converge on their first (reused)
            iteration and never get here. *)
         ws.fact_valid <- false;
       sc.(2) <- sc.(0)
     done
   with
  | Exit -> ()
  | Numerics.Matrix.Singular _ -> ());
  ws.nw_total <- ws.nw_total + ws.nw_iter;
  ws.nw_conv

(* Newton solve of f(x) = 0 at time [t], mutating [x] in place.
   [h] = 0 means DC (capacitors open); otherwise the companion model
   for step size [h] with state in [ws.vcap0]/[ws.icap0]. Returns true
   on convergence. *)
let newton ws cp cfg ~gmin ~t ~h ~integ x =
  let nu = ws.nu in
  ensure_lin ws cp ~gmin ~h ~integ;
  for j = 0 to Array.length cp.vsrc - 1 do
    let _, src = cp.vsrc.(j) in
    ws.vvals.(j) <- Source.value src t
  done;
  for k = 0 to Array.length cp.isrc - 1 do
    let _, _, src = cp.isrc.(k) in
    ws.ivals.(k) <- Source.value src t
  done;
  (if h > 0.0 then
     (* The capacitor companion is constant for the whole call: [h],
        the model, and the cap state are all fixed until the caller
        commits the step. The integrator match is hoisted so the loop
        body is straight-line unboxed float stores. *)
     let cc = ws.cap_c and geq = ws.cap_geq and ieq = ws.cap_ieq in
     let v0 = ws.vcap0 and i0 = ws.icap0 in
     match integ with
     | Backward_euler ->
         for k = 0 to Array.length cc - 1 do
           let g = cc.(k) /. h in
           geq.(k) <- g;
           ieq.(k) <- -.(g *. v0.(k))
         done
     | Trapezoidal ->
         for k = 0 to Array.length cc - 1 do
           let g = 2.0 *. cc.(k) /. h in
           geq.(k) <- g;
           ieq.(k) <- -.((g *. v0.(k)) +. i0.(k))
         done);
  Array.blit x 0 ws.x0 0 nu;
  ws.nw_total <- 0;
  ws.nw_reused <- false;
  let ok = solve_phase ws cp cfg ~gmin ~h ~reuse:cfg.jac_reuse x in
  let ok =
    if ok || not ws.nw_reused then ok
    else begin
      (* Jacobian reuse must never fail a solve full Newton would have
         converged: restart from the entry state without reuse. *)
      Array.blit ws.x0 0 x 0 nu;
      ws.fact_valid <- false;
      solve_phase ws cp cfg ~gmin ~h ~reuse:false x
    end
  in
  ignore (Atomic.fetch_and_add Stats.newton_iters ws.nw_total);
  if not ok then ws.fact_valid <- false;
  ok

let dc_solve ws cp cfg ~at x =
  let solve g = newton ws cp cfg ~gmin:g ~t:at ~h:0.0 ~integ:cfg.integration x in
  if solve cfg.gmin then true
  else begin
    (* gmin stepping: load the circuit heavily, then relax. *)
    Atomic.incr Stats.gmin_retries;
    let steps = [ 1e-3; 1e-5; 1e-7; 1e-9; cfg.gmin ] in
    List.for_all solve steps
  end

type result = {
  grid : float array;
  data : float array array;
  (* data.(k).(i): node voltages for i < n, then vsource branch
     currents (current leaving the node into the source). *)
  n : int;
  index : (string, int) Hashtbl.t;
  branch_index : (string, int) Hashtbl.t; (* source node name -> column *)
}

let times r = Array.copy r.grid

let probe r name =
  match Hashtbl.find_opt r.index name with
  | None -> raise Not_found
  | Some i ->
      Waveform.Wave.create r.grid (Array.map (fun row -> row.(i)) r.data)

(* Current *delivered by* the source into the circuit (the negative of
   the MNA branch unknown, which counts current leaving the node into
   the source). *)
let source_current r name =
  match Hashtbl.find_opt r.branch_index name with
  | None -> raise Not_found
  | Some i ->
      Waveform.Wave.create r.grid (Array.map (fun row -> -.row.(i)) r.data)

let delivered_charge r name =
  let w = source_current r name in
  Numerics.Integrate.trapz (Waveform.Wave.times w) (Waveform.Wave.values w)

let delivered_energy r name =
  let iw = source_current r name in
  let vw = probe r name in
  let ts = Waveform.Wave.times iw in
  let p =
    Array.map
      (fun t -> Waveform.Wave.value_at iw t *. Waveform.Wave.value_at vw t)
      ts
  in
  Numerics.Integrate.trapz ts p

let final_voltage r name =
  match Hashtbl.find_opt r.index name with
  | None -> raise Not_found
  | Some i -> r.data.(Array.length r.data - 1).(i)

let build_grid cp cfg =
  let span = cfg.tstop -. cfg.tstart in
  if span <= 0.0 then invalid_arg "Transient.run: tstop <= tstart";
  if cfg.dt <= 0.0 then invalid_arg "Transient.run: dt must be positive";
  let nsteps = int_of_float (ceil (span /. cfg.dt)) in
  let breaks =
    Array.to_list cp.vsrc
    |> List.concat_map (fun (_, s) -> Source.breakpoints s)
    |> List.filter (fun t -> t > cfg.tstart && t < cfg.tstop)
    |> List.sort_uniq compare |> Array.of_list
  in
  (* Merge the uniform grid with the (few, sorted) source breakpoints
     into a preallocated array. Building the grid through intermediate
     lists costs tens of words per point — comparable to the entire
     step loop — so the merge works directly on the output array.
     Points closer than dt/100 to their predecessor are dropped,
     keeping the grid strictly increasing with sane step sizes. *)
  let eps = cfg.dt /. 100.0 in
  let out = Array.make (nsteps + 1 + Array.length breaks) 0.0 in
  let m = ref 0 in
  let push t =
    if !m = 0 || t -. out.(!m - 1) >= eps then begin
      out.(!m) <- t;
      incr m
    end
  in
  let bi = ref 0 in
  let nbreaks = Array.length breaks in
  for i = 0 to nsteps do
    let t = Float.min cfg.tstop (cfg.tstart +. (cfg.dt *. float_of_int i)) in
    while !bi < nbreaks && breaks.(!bi) < t do
      push breaks.(!bi);
      incr bi
    done;
    push t
  done;
  while !bi < nbreaks do
    push breaks.(!bi);
    incr bi
  done;
  Array.sub out 0 !m

let validate_adaptive a =
  if a.lte_tol <= 0.0 then
    invalid_arg "Transient.run: lte_tol must be positive";
  if a.dt_min <= 0.0 then
    invalid_arg "Transient.run: dt_min must be positive";
  if a.dt_max < a.dt_min then invalid_arg "Transient.run: dt_max < dt_min";
  if a.grow_limit < 1.0 then
    invalid_arg "Transient.run: grow_limit must be >= 1";
  if a.safety <= 0.0 || a.safety > 1.0 then
    invalid_arg "Transient.run: safety must be in (0, 1]"

(* ------------------------------------------------------------------ *)
(* Per-case solve state.

   Everything one transient case needs between accepted steps lives in
   this record: the compiled circuit, its workspace, the committed
   solution [c_x], the capacitor state, the accepted-step budget, and
   (on a fixed grid) the output grid/data plus a cursor. Both the
   scalar [run] path and the lockstep batch driver advance cases
   exclusively through [fixed_step] below, so a batched case executes
   the *same float operations in the same order* as a scalar one —
   byte-identical results by construction, not by tolerance. *)
type case_state = {
  c_cp : compiled;
  c_ws : ws;
  c_cfg : config;
  c_fault : Fault.kind option; (* pre-rolled; [Diverge] handled upstream *)
  c_x : float array; (* committed solution (shared scratch in a batch) *)
  c_vcap : float array;
  c_icap : float array;
  mutable c_steps : int; (* accepted steps; 0 = nothing charged yet *)
  mutable c_grid : float array; (* fixed grid only; [||] until started *)
  mutable c_data : float array array;
  mutable c_k : int; (* next grid index to fill *)
}

let case_load_caps st =
  let ncap = Array.length st.c_vcap in
  Array.blit st.c_vcap 0 st.c_ws.vcap0 0 ncap;
  Array.blit st.c_icap 0 st.c_ws.icap0 0 ncap

(* Accepted-step bookkeeping: budget, deadline, and the [Slow] fault
   stall — a deadline trips mid-solve at a step boundary, the
   cancellation point the deadline machinery promises. *)
let case_charge_step st ~at =
  st.c_steps <- st.c_steps + 1;
  Deadline.check ~at;
  (match st.c_fault with
  | Some Fault.Slow -> Unix.sleepf Fault.slow_step_s
  | _ -> ());
  if st.c_cfg.max_steps > 0 && st.c_steps > st.c_cfg.max_steps then
    raise (Step_budget_exhausted { at; budget = st.c_cfg.max_steps })

(* The integrator match is hoisted out of the loop (like the companion
   fill in [newton]) so each arm is straight-line unboxed float
   arithmetic — keeping [v] live across a branch join boxes it on
   every iteration. *)
let case_commit st ~integ ~h xnew =
  let ws = st.c_ws in
  let ca = ws.cap_a and cb = ws.cap_b and cc = ws.cap_c in
  let v0 = ws.vcap0 and i0 = ws.icap0 in
  let vcap = st.c_vcap and icap = st.c_icap in
  let ncap = Array.length vcap in
  match integ with
  | Backward_euler ->
      for k = 0 to ncap - 1 do
        let v = ugetv xnew ca.(k) -. ugetv xnew cb.(k) in
        icap.(k) <- cc.(k) /. h *. (v -. v0.(k));
        vcap.(k) <- v
      done
  | Trapezoidal ->
      for k = 0 to ncap - 1 do
        let v = ugetv xnew ca.(k) -. ugetv xnew cb.(k) in
        icap.(k) <- ((2.0 *. cc.(k) /. h) *. (v -. v0.(k))) -. i0.(k);
        vcap.(k) <- v
      done

(* One integration step of size h ending at time t, with the given
   companion model and capacitor state in [ws.vcap0]/[ws.icap0].
   Returns false if Newton diverged. On success, cap state is NOT yet
   committed; the caller commits via [case_commit]. *)
let case_attempt st ~integ ~t ~h xtrial =
  newton st.c_ws st.c_cp st.c_cfg ~gmin:st.c_cfg.gmin ~t ~h ~integ xtrial

(* Advance from t0 to t1, bisecting on failure. The ws scratch buffers
   are safe across the recursion: a failed attempt's parent state is
   dead by the time a child reloads them. *)
let rec fixed_advance st depth t0 t1 =
  let ws = st.c_ws and cfg = st.c_cfg and x = st.c_x in
  let nu = ws.nu in
  let h = t1 -. t0 in
  case_load_caps st;
  let xtrial = ws.xtrial in
  (* Linear-extrapolation predictor: seed Newton with the solution
     continued along the last accepted step's slope. Near-free on
     quiescent spans and typically saves an iteration through
     transitions; a failed predicted solve retries once from the
     flat (previous-solution) guess before bisecting. *)
  let predicted = ws.have_prev && ws.hprev > 0.0 in
  if predicted then begin
    let r = h /. ws.hprev in
    let xp = ws.xprev in
    for i = 0 to nu - 1 do
      xtrial.(i) <- x.(i) +. ((x.(i) -. xp.(i)) *. r)
    done
  end
  else Array.blit x 0 xtrial 0 nu;
  let ok =
    case_attempt st ~integ:cfg.integration ~t:t1 ~h xtrial
    ||
    (predicted
    &&
    (case_load_caps st;
     Array.blit x 0 xtrial 0 nu;
     case_attempt st ~integ:cfg.integration ~t:t1 ~h xtrial))
  in
  if ok then begin
    Atomic.incr Stats.steps;
    case_charge_step st ~at:t1;
    case_commit st ~integ:cfg.integration ~h xtrial;
    Array.blit x 0 ws.xprev 0 nu;
    ws.hprev <- h;
    ws.have_prev <- true;
    Array.blit xtrial 0 x 0 nu
  end
  else if depth >= cfg.max_bisection then raise (No_convergence t1)
  else begin
    Atomic.incr Stats.bisections;
    let tm = 0.5 *. (t0 +. t1) in
    fixed_advance st (depth + 1) t0 tm;
    fixed_advance st (depth + 1) tm t1
  end

(* Advance one fixed-grid interval and record the sample; returns
   whether more intervals remain. This is the lockstep quantum: the
   batch driver round-robins it across cases, the scalar path just
   loops it to exhaustion. *)
let fixed_step st =
  let k = st.c_k in
  fixed_advance st 0 st.c_grid.(k - 1) st.c_grid.(k);
  st.c_data.(k) <- Array.copy st.c_x;
  st.c_k <- k + 1;
  st.c_k < Array.length st.c_grid

(* DC-solve the case at [tstart] and initialise the capacitor state
   (voltage across and, for trapezoidal, current). Raises
   [No_convergence] when no operating point is found. The solution /
   cap-state arrays are supplied by the caller: the scalar path owns
   fresh ones, the batch driver passes its shared scratch. *)
let case_start cp ws cfg fault ic ~x ~vcap ~icap =
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt cp.name_index name with
      | Some i -> x.(i) <- v
      | None -> invalid_arg ("Transient.run: unknown ic node " ^ name))
    ic;
  if not (dc_solve ws cp cfg ~at:cfg.tstart x) then
    raise (No_convergence cfg.tstart);
  Array.iteri (fun k (a, b, _) -> vcap.(k) <- getv x a -. getv x b) cp.caps;
  {
    c_cp = cp;
    c_ws = ws;
    c_cfg = cfg;
    c_fault = fault;
    c_x = x;
    c_vcap = vcap;
    c_icap = icap;
    c_steps = 0;
    c_grid = [||];
    c_data = [||];
    c_k = 1;
  }

let fixed_start st =
  let grid = build_grid st.c_cp st.c_cfg in
  st.c_grid <- grid;
  st.c_data <- Array.make (Array.length grid) [||];
  st.c_data.(0) <- Array.copy st.c_x;
  st.c_k <- 1

(* -------------- adaptive local-truncation-error grid ------------- *)
(* Each step is solved twice, with the configured companion and with
   the other one (trapezoidal vs backward Euler). Their discrepancy is
   an O(h^2) estimate of the local truncation error; the controller
   holds it below [lte_tol], growing the step on quiescent spans and
   shrinking it through transitions. Source breakpoints are always
   landed on exactly, and steps that carry any node across a
   configured threshold level are refined to [crossing_dt] so
   downstream crossing searches keep fixed-grid accuracy. *)
let run_adaptive st a =
  let cp = st.c_cp and cfg = st.c_cfg and ws = st.c_ws and x = st.c_x in
  let nu = ws.nu in
  let dt_min = a.dt_min in
  let dt_max = a.dt_max in
  let crossing_dt =
    let d = if a.crossing_dt > 0.0 then a.crossing_dt else cfg.dt in
    Float.max dt_min (Float.min d dt_max)
  in
  let levels = Array.of_list a.crossing_levels in
  let crosses x0 x1 =
    let hit = ref false in
    for i = 0 to cp.n - 1 do
      if not !hit then
        for l = 0 to Array.length levels - 1 do
          let lv = levels.(l) in
          if (x0.(i) -. lv) *. (x1.(i) -. lv) < 0.0 then hit := true
        done
    done;
    !hit
  in
  let other =
    match cfg.integration with
    | Trapezoidal -> Backward_euler
    | Backward_euler -> Trapezoidal
  in
  let breaks =
    ref
      (Array.to_list cp.vsrc
      |> List.concat_map (fun (_, s) -> Source.breakpoints s)
      |> List.filter (fun t -> t > cfg.tstart && t < cfg.tstop)
      |> fun l -> List.sort_uniq compare (cfg.tstop :: l))
  in
  let ts_rev = ref [ cfg.tstart ] in
  let xs_rev = ref [ Array.copy x ] in
  let t = ref cfg.tstart in
  let dt = ref (Float.min dt_max (Float.max dt_min cfg.dt)) in
  while !t < cfg.tstop do
    (match !breaks with
    | b :: rest when b <= !t -> breaks := rest
    | _ -> ());
    let next_bp = match !breaks with b :: _ -> b | [] -> cfg.tstop in
    let remaining = next_bp -. !t in
    (* Land exactly on the breakpoint rather than leaving a sliver. *)
    let landing = remaining <= !dt +. dt_min in
    let h = if landing then remaining else !dt in
    let t1 = if landing then next_bp else !t +. h in
    (* A landing step is pinned to [remaining], so once the controller
       dt is at the floor a rejection cannot shrink it further — treat
       it as a floor step or the reject/retry loop never advances. *)
    let floor_dt = dt_min *. (1.0 +. 1e-9) in
    let at_floor = h <= floor_dt || (landing && !dt <= floor_dt) in
    case_load_caps st;
    let xtrial = ws.xtrial in
    Array.blit x 0 xtrial 0 nu;
    if not (case_attempt st ~integ:cfg.integration ~t:t1 ~h xtrial) then begin
      if at_floor then raise (No_convergence t1);
      Atomic.incr Stats.bisections;
      Atomic.incr Stats.rejected_steps;
      dt := Float.max dt_min (0.5 *. h)
    end
    else begin
      let xcomp = ws.xcomp in
      Array.blit x 0 xcomp 0 nu;
      let err =
        if case_attempt st ~integ:other ~t:t1 ~h xcomp then begin
          let e = ref 0.0 in
          for i = 0 to cp.n - 1 do
            let d = abs_float (xtrial.(i) -. xcomp.(i)) in
            if d > !e then e := d
          done;
          !e
        end
        else infinity
      in
      let lte_ok = err <= a.lte_tol in
      let crossing_viol =
        Array.length levels > 0
        && h > crossing_dt *. (1.0 +. 1e-9)
        && crosses x xtrial
      in
      if (lte_ok && not crossing_viol) || at_floor then begin
        Atomic.incr Stats.steps;
        case_charge_step st ~at:t1;
        case_commit st ~integ:cfg.integration ~h xtrial;
        Array.blit xtrial 0 x 0 nu;
        t := t1;
        ts_rev := t1 :: !ts_rev;
        xs_rev := Array.copy x :: !xs_rev;
        let factor =
          if err <= 0.0 then a.grow_limit
          else
            Float.max 0.2
              (Float.min a.grow_limit (a.safety *. sqrt (a.lte_tol /. err)))
        in
        dt := Float.max dt_min (Float.min dt_max (h *. factor))
      end
      else begin
        Atomic.incr Stats.rejected_steps;
        if not lte_ok then Atomic.incr Stats.lte_rejections;
        let shrunk =
          if lte_ok then crossing_dt
          else if Float.is_finite err then
            Float.min (0.9 *. h)
              (h *. Float.max 0.1 (a.safety *. sqrt (a.lte_tol /. err)))
          else 0.25 *. h
        in
        (* A rejected landing step recomputes [shrunk] from the same
           pinned h = remaining every retry; halve it so dt strictly
           decreases until landing disengages or the floor forces
           acceptance. *)
        let shrunk = if landing then Float.min shrunk (0.5 *. h) else shrunk in
        dt := Float.max dt_min (Float.min shrunk dt_max)
      end
    end
  done;
  let grid = Array.of_list (List.rev !ts_rev) in
  let data = Array.of_list (List.rev !xs_rev) in
  (grid, data)

(* Finalise a trace into a [result]: apply a pending [Corrupt] fault
   and build the branch index. Shared by the scalar and batch paths. *)
let assemble (cp : compiled) fault grid data =
  (* A Corrupt fault poisons every node voltage of one mid-trace
     sample, modelling a solver that "succeeded" with garbage —
     downstream validation must catch it whichever node it probes.
     Rows are fresh copies, so mutation is safe. *)
  (match fault with
  | Some Fault.Corrupt when Array.length data > 1 && cp.n > 0 ->
      Array.fill data.(Array.length data / 2) 0 cp.n Float.nan
  | _ -> ());
  let branch_index = Hashtbl.create 8 in
  Array.iteri
    (fun j (nd, _) ->
      let name =
        Hashtbl.fold
          (fun name i acc -> if i = nd then Some name else acc)
          cp.name_index None
      in
      match name with
      | Some name -> Hashtbl.replace branch_index name (cp.n + j)
      | None -> ())
    cp.vsrc;
  { grid; data; n = cp.n; index = cp.name_index; branch_index }

let validate_config cfg =
  if cfg.tstop -. cfg.tstart <= 0.0 then
    invalid_arg "Transient.run: tstop <= tstart";
  if cfg.dt <= 0.0 then invalid_arg "Transient.run: dt must be positive";
  match cfg.step_control with
  | Fixed -> ()
  | Adaptive a -> validate_adaptive a

(* The solve body shared by [run] and the batch driver's peeled path:
   everything except the sims counter and the fault roll, which the
   caller has already done (the batch driver rolls all its cases up
   front, in index order, so fault plans assign identically to a
   sequential loop). *)
let run_internal ~fault ~config:cfg ~ic ckt =
  (match fault with
  | Some Fault.Diverge -> raise (No_convergence cfg.tstart)
  | _ -> ());
  (* Fail fast when the caller's budget is already spent — after the
     fault roll so solve-index accounting matches an undeadlined run. *)
  Deadline.check ~at:cfg.tstart;
  validate_config cfg;
  let cp = compile ckt in
  let ws = make_ws cp cfg in
  let nu = ws.nu in
  let ncap = Array.length cp.caps in
  let x = Array.make nu 0.0 in
  let vcap = Array.make ncap 0.0 and icap = Array.make ncap 0.0 in
  let st = case_start cp ws cfg fault ic ~x ~vcap ~icap in
  let grid, data =
    match cfg.step_control with
    | Fixed ->
        fixed_start st;
        while fixed_step st do () done;
        (st.c_grid, st.c_data)
    | Adaptive a -> run_adaptive st a
  in
  assemble cp fault grid data

let run ?(config = default_config) ?(ic = []) ckt =
  Atomic.incr Stats.sims;
  let fault = Fault.roll () in
  run_internal ~fault ~config ~ic ckt

(* ------------------------------------------------------------------ *)
(* Batch-first entry point: lockstep multi-case transient kernel.

   A batch of structurally identical cases (same topology; source
   values and device parameters free to differ) shares one ordering
   plan and advances in lockstep: per round, every live case takes one
   fixed-grid interval through the same [fixed_step] the scalar path
   uses. Committed per-case state is parked in structure-of-arrays
   Bigarray slabs — one row per unknown, contiguous across the case
   dimension — and swapped through a single shared scratch vector, so
   the working set stays one case's Newton state plus three slab rows
   regardless of batch width.

   Per-case masks let finished or failed cases drop out without
   stalling the rest; cases that don't conform to the batch's
   reference structure (or an adaptive-stepping config, whose step
   sequence is inherently per-case) are peeled to the scalar path.
   Determinism: lanes never mix numerically — each case runs its own
   Newton loop on its own workspace — so every case's trace is
   byte-identical to what a sequential [run] loop would produce. *)

(* Structural conformance for lockstep batching. Linear element values
   (resistors, capacitors) must match exactly — they feed the shared
   linear pre-stamp reasoning and the grid epsilon — while source
   values and MOSFET evaluations may differ per case (each lane
   evaluates its own devices), which is exactly the alignment-sweep /
   process-corner shape: same netlist, different stimuli. *)
let conforms (a : compiled) (b : compiled) =
  a.n = b.n && a.m = b.m && a.res = b.res && a.caps = b.caps
  && Array.length a.isrc = Array.length b.isrc
  && Array.for_all2
       (fun (ia, ib, _) (ja, jb, _) -> ia = ja && ib = jb)
       a.isrc b.isrc
  && Array.length a.vsrc = Array.length b.vsrc
  && Array.for_all2 (fun (i, _) (j, _) -> i = j) a.vsrc b.vsrc
  && Array.length a.fets = Array.length b.fets
  && Array.for_all2
       (fun (g, d, s, _) (g', d', s', _) -> g = g' && d = d' && s = s')
       a.fets b.fets

let run_batch_outcomes ?(config = default_config) ?ics ckts =
  let cfg = config in
  let ncase = Array.length ckts in
  validate_config cfg;
  let ics =
    match ics with
    | None -> Array.make ncase []
    | Some a ->
        if Array.length a <> ncase then
          invalid_arg "Transient.run_batch: ics length mismatch";
        a
  in
  (* Roll every case's fault up front, in index order, so an armed
     fault plan assigns the same faults a sequential [run] loop
     would. *)
  let faults = Array.make ncase None in
  for c = 0 to ncase - 1 do
    Atomic.incr Stats.sims;
    faults.(c) <- Fault.roll ()
  done;
  (* Per-case deadline slices. A caller-installed budget is reinstalled
     around each case's compute so that each case gets the budget that
     a scalar [Deadline.with_budget] around its own [run] would give
     it: one slow case cancels alone, the rest of the batch completes.
     [remaining] is decremented by the case's own elapsed time, so a
     case's slice behaves like a contiguous scalar run even though its
     rounds interleave with other lanes. *)
  let ambient = Domain.DLS.get Deadline.key in
  let remaining =
    match ambient with
    | None -> [||]
    | Some (expiry, _) ->
        Array.make ncase (expiry -. Unix.gettimeofday ())
  in
  let with_case c f =
    match ambient with
    | None -> f ()
    | Some (_, ms) ->
        let start = Unix.gettimeofday () in
        Domain.DLS.set Deadline.key (Some (start +. remaining.(c), ms));
        Fun.protect
          ~finally:(fun () ->
            remaining.(c) <- remaining.(c) -. (Unix.gettimeofday () -. start);
            Domain.DLS.set Deadline.key ambient)
          f
  in
  let out : (result, exn) Stdlib.result array = Array.make ncase (Error Exit) in
  let cps = Array.make ncase None in
  Array.iteri
    (fun c ckt ->
      match faults.(c) with
      | Some Fault.Diverge -> out.(c) <- Error (No_convergence cfg.tstart)
      | _ -> (
          match compile ckt with
          | cp -> cps.(c) <- Some cp
          | exception e -> out.(c) <- Error e))
    ckts;
  (* Partition: the first compilable case fixes the batch's reference
     structure; conforming fixed-grid cases form the lockstep lanes,
     everything else peels to the scalar path. *)
  let fixed_grid = match cfg.step_control with Fixed -> true | _ -> false in
  let lanes = ref [] and peeled = ref [] in
  let ref_cp = ref None in
  Array.iteri
    (fun c cpo ->
      match cpo with
      | None -> ()
      | Some cp ->
          if Option.is_none !ref_cp then ref_cp := Some cp;
          let lockstep =
            fixed_grid
            && match !ref_cp with Some r -> conforms r cp | None -> false
          in
          if lockstep then lanes := c :: !lanes else peeled := c :: !peeled)
    cps;
  let lanes = Array.of_list (List.rev !lanes) in
  let peeled = Array.of_list (List.rev !peeled) in
  let nl = Array.length lanes in
  if nl > 0 then begin
    let cp0 = Option.get cps.(lanes.(0)) in
    (* One ordering plan for the whole batch: the RCM reorder / border
       selection depends only on the (shared) sparsity pattern. *)
    let plan = plan_for cp0 cfg in
    let nu = cp0.n + cp0.m in
    let ncap = Array.length cp0.caps in
    (* SoA state slabs: row i holds unknown i (resp. capacitor i)
       across all lanes, contiguous in memory, so the per-round
       load/store sweeps touch each cache line once per unknown. *)
    let open Bigarray in
    let sx = Array2.create float64 c_layout (Int.max nu 1) nl in
    let svcap = Array2.create float64 c_layout (Int.max ncap 1) nl in
    let sicap = Array2.create float64 c_layout (Int.max ncap 1) nl in
    (* Shared scratch: every lane's Newton state flows through the same
       vectors; committed state parks in the slabs between rounds. *)
    let x = Array.make nu 0.0 in
    let vcap = Array.make ncap 0.0 and icap = Array.make ncap 0.0 in
    let store l =
      for i = 0 to nu - 1 do
        Array2.unsafe_set sx i l (Array.unsafe_get x i)
      done;
      for k = 0 to ncap - 1 do
        Array2.unsafe_set svcap k l (Array.unsafe_get vcap k);
        Array2.unsafe_set sicap k l (Array.unsafe_get icap k)
      done
    in
    let load l =
      for i = 0 to nu - 1 do
        Array.unsafe_set x i (Array2.unsafe_get sx i l)
      done;
      for k = 0 to ncap - 1 do
        Array.unsafe_set vcap k (Array2.unsafe_get svcap k l);
        Array.unsafe_set icap k (Array2.unsafe_get sicap k l)
      done
    in
    let sts = Array.make nl None in
    let active = Array.make nl false in
    let nactive = ref 0 in
    Array.iteri
      (fun l c ->
        Atomic.incr Stats.batched_solves;
        let cpc = Option.get cps.(c) in
        match
          with_case c (fun () ->
              Deadline.check ~at:cfg.tstart;
              let ws = make_ws_planned plan cpc in
              Array.fill x 0 nu 0.0;
              Array.fill vcap 0 ncap 0.0;
              Array.fill icap 0 ncap 0.0;
              let st =
                case_start cpc ws cfg faults.(c) ics.(c) ~x ~vcap ~icap
              in
              fixed_start st;
              st)
        with
        | st ->
            sts.(l) <- Some st;
            active.(l) <- true;
            incr nactive;
            store l
        | exception e -> out.(c) <- Error e)
      lanes;
    (* Lockstep rounds: every live lane advances one grid interval per
       round. The mask drops finished or failed lanes so a diverging
       or deadline-cancelled case never stalls its siblings. *)
    while !nactive > 0 do
      for l = 0 to nl - 1 do
        if active.(l) then begin
          let c = lanes.(l) in
          let st = Option.get sts.(l) in
          load l;
          match with_case c (fun () -> fixed_step st) with
          | true -> store l
          | false ->
              store l;
              active.(l) <- false;
              decr nactive;
              out.(c) <- Ok (assemble st.c_cp faults.(c) st.c_grid st.c_data)
          | exception e ->
              active.(l) <- false;
              decr nactive;
              out.(c) <- Error e
        end
      done
    done
  end;
  (* Peeled cases run the unmodified scalar path, in index order, with
     their pre-rolled faults and their own deadline slices — retry
     ladders and deadline semantics unchanged. *)
  Array.iter
    (fun c ->
      Atomic.incr Stats.peeled_solves;
      match
        with_case c (fun () ->
            run_internal ~fault:faults.(c) ~config:cfg ~ic:ics.(c) ckts.(c))
      with
      | r -> out.(c) <- Ok r
      | exception e -> out.(c) <- Error e)
    peeled;
  out

let run_batch ?config ?ics ckts =
  let out = run_batch_outcomes ?config ?ics ckts in
  (* Surface the lowest-index failure, like the sequential loop the
     batch replaces (later cases have still been attempted). *)
  Array.iter (function Error e -> raise e | Ok _ -> ()) out;
  Array.map (function Ok r -> r | Error e -> raise e) out

let dc_operating_point ?(config = default_config) ?(guess = []) ~at ckt =
  let cp = compile ckt in
  let ws = make_ws cp config in
  let x = Array.make (cp.n + cp.m) 0.0 in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt cp.name_index name with
      | Some i -> x.(i) <- v
      | None -> invalid_arg ("Transient.dc_operating_point: unknown node " ^ name))
    guess;
  if not (dc_solve ws cp config ~at x) then raise (No_convergence at);
  List.map
    (fun name -> (name, x.(Hashtbl.find cp.name_index name)))
    (Circuit.node_names ckt)
