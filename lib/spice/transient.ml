type integration = Trapezoidal | Backward_euler

type adaptive = {
  lte_tol : float;
  dt_min : float;
  dt_max : float;
  grow_limit : float;
  safety : float;
  crossing_levels : float list;
  crossing_dt : float;
}

type step_control = Fixed | Adaptive of adaptive

type config = {
  dt : float;
  tstop : float;
  tstart : float;
  integration : integration;
  newton_tol_v : float;
  newton_tol_i : float;
  max_newton : int;
  vstep_limit : float;
  gmin : float;
  max_bisection : int;
  step_control : step_control;
  max_steps : int;
}

let default_adaptive =
  {
    lte_tol = 5e-4;
    dt_min = 10e-15;
    dt_max = 100e-12;
    grow_limit = 2.0;
    safety = 0.9;
    crossing_levels = [];
    crossing_dt = 0.0;
  }

let default_config =
  {
    dt = 1e-12;
    tstop = 4e-9;
    tstart = 0.0;
    integration = Trapezoidal;
    newton_tol_v = 1e-7;
    newton_tol_i = 1e-9;
    max_newton = 60;
    vstep_limit = 0.6;
    gmin = 1e-12;
    max_bisection = 10;
    step_control = Fixed;
    max_steps = 0;
  }

let with_dt cfg dt = { cfg with dt }
let with_max_steps cfg max_steps = { cfg with max_steps }
let with_tstop cfg tstop = { cfg with tstop }
let with_tstart cfg tstart = { cfg with tstart }
let with_integration cfg integration = { cfg with integration }
let with_step_control cfg step_control = { cfg with step_control }

let with_adaptive ?lte_tol ?dt_min ?dt_max ?grow_limit ?safety
    ?crossing_levels ?crossing_dt cfg =
  let base =
    match cfg.step_control with
    | Adaptive a -> a
    | Fixed -> default_adaptive
  in
  let v o d = Option.value o ~default:d in
  {
    cfg with
    step_control =
      Adaptive
        {
          lte_tol = v lte_tol base.lte_tol;
          dt_min = v dt_min base.dt_min;
          dt_max = v dt_max base.dt_max;
          grow_limit = v grow_limit base.grow_limit;
          safety = v safety base.safety;
          crossing_levels = v crossing_levels base.crossing_levels;
          crossing_dt = v crossing_dt base.crossing_dt;
        };
  }

let is_adaptive cfg =
  match cfg.step_control with Adaptive _ -> true | Fixed -> false

let with_crossing_levels_if_empty cfg levels =
  match cfg.step_control with
  | Fixed -> cfg
  | Adaptive a when a.crossing_levels = [] ->
      { cfg with step_control = Adaptive { a with crossing_levels = levels } }
  | Adaptive _ -> cfg

(* Exhaustive, lossless rendering of a config. Every field that can
   change a simulated waveform MUST appear here: [Runtime.Cache] keys
   are derived from this string, so a missed field would let a config
   change hit a stale cache entry. The full record destructure makes
   adding a field without updating this function a compile error. *)
let config_fingerprint cfg =
  let {
    dt;
    tstop;
    tstart;
    integration;
    newton_tol_v;
    newton_tol_i;
    max_newton;
    vstep_limit;
    gmin;
    max_bisection;
    step_control;
    max_steps;
  } =
    cfg
  in
  let f = Printf.sprintf "%h" in
  let sc =
    match step_control with
    | Fixed -> "fixed"
    | Adaptive
        {
          lte_tol;
          dt_min;
          dt_max;
          grow_limit;
          safety;
          crossing_levels;
          crossing_dt;
        } ->
        String.concat ","
          ([
             "adaptive";
             f lte_tol;
             f dt_min;
             f dt_max;
             f grow_limit;
             f safety;
             f crossing_dt;
           ]
          @ List.map f crossing_levels)
  in
  String.concat "|"
    [
      "tran.config";
      f dt;
      f tstop;
      f tstart;
      (match integration with Trapezoidal -> "trap" | Backward_euler -> "be");
      f newton_tol_v;
      f newton_tol_i;
      string_of_int max_newton;
      f vstep_limit;
      f gmin;
      string_of_int max_bisection;
      string_of_int max_steps;
      sc;
    ]

exception No_convergence of float
exception Step_budget_exhausted of { at : float; budget : int }
exception Deadline_exceeded of { at : float; budget_ms : float }

module Stats = struct
  type snapshot = {
    sims : int;
    steps : int;
    newton_iters : int;
    bisections : int;
    gmin_retries : int;
    rejected_steps : int;
    lte_rejections : int;
    injected_faults : int;
    deadline_hits : int;
  }

  (* Process-global, updated with atomics so pool domains running
     concurrent simulations account correctly. *)
  let sims = Atomic.make 0
  let steps = Atomic.make 0
  let newton_iters = Atomic.make 0
  let bisections = Atomic.make 0
  let gmin_retries = Atomic.make 0
  let rejected_steps = Atomic.make 0
  let lte_rejections = Atomic.make 0
  let injected_faults = Atomic.make 0
  let deadline_hits = Atomic.make 0

  let snapshot () =
    {
      sims = Atomic.get sims;
      steps = Atomic.get steps;
      newton_iters = Atomic.get newton_iters;
      bisections = Atomic.get bisections;
      gmin_retries = Atomic.get gmin_retries;
      rejected_steps = Atomic.get rejected_steps;
      lte_rejections = Atomic.get lte_rejections;
      injected_faults = Atomic.get injected_faults;
      deadline_hits = Atomic.get deadline_hits;
    }

  let diff a b =
    {
      sims = a.sims - b.sims;
      steps = a.steps - b.steps;
      newton_iters = a.newton_iters - b.newton_iters;
      bisections = a.bisections - b.bisections;
      gmin_retries = a.gmin_retries - b.gmin_retries;
      rejected_steps = a.rejected_steps - b.rejected_steps;
      lte_rejections = a.lte_rejections - b.lte_rejections;
      injected_faults = a.injected_faults - b.injected_faults;
      deadline_hits = a.deadline_hits - b.deadline_hits;
    }

  let reset () =
    Atomic.set sims 0;
    Atomic.set steps 0;
    Atomic.set newton_iters 0;
    Atomic.set bisections 0;
    Atomic.set gmin_retries 0;
    Atomic.set rejected_steps 0;
    Atomic.set lte_rejections 0;
    Atomic.set injected_faults 0;
    Atomic.set deadline_hits 0

  let pp ppf s =
    Format.fprintf ppf
      "%d sims, %d steps (%d rejected, %d by LTE), %d newton iters, %d \
       bisections, %d gmin retries, %d injected faults, %d deadline hits"
      s.sims s.steps s.rejected_steps s.lte_rejections s.newton_iters
      s.bisections s.gmin_retries s.injected_faults s.deadline_hits
end

(* Cooperative per-solve deadlines. A caller installs a wall-clock
   budget with [with_budget]; [run] then checks it at every accepted
   step boundary (and once up front) and raises [Deadline_exceeded]
   when it has expired. The token lives in domain-local storage, so a
   pool worker's budget never leaks into sibling domains, and checking
   is free when no budget is installed. *)
module Deadline = struct
  let key : (float * float) option Domain.DLS.key =
    (* (absolute expiry, epoch seconds; original budget, ms) *)
    Domain.DLS.new_key (fun () -> None)

  let with_budget ~ms f =
    if not (Float.is_finite ms) || ms <= 0.0 then
      invalid_arg "Transient.Deadline.with_budget: budget must be positive";
    let prev = Domain.DLS.get key in
    Domain.DLS.set key (Some (Unix.gettimeofday () +. (ms /. 1000.0), ms));
    Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

  let active () = Domain.DLS.get key <> None

  let check ~at =
    match Domain.DLS.get key with
    | None -> ()
    | Some (expiry, budget_ms) ->
        if Unix.gettimeofday () > expiry then begin
          Atomic.incr Stats.deadline_hits;
          raise (Deadline_exceeded { at; budget_ms })
        end
end

(* Deterministic fault injection: tests, bench, and CI arm a plan and
   every subsequent [run] rolls against it. Decisions depend only on
   the process-global solve index (and a seed), never on wall-clock or
   scheduling, so a given (plan, workload) pair injects the same faults
   on every run — including across a checkpoint resume. *)
module Fault = struct
  type kind = Diverge | Corrupt | Slow

  (* Stall injected per accepted step by [Slow] — long enough that any
     realistic deadline trips after a handful of steps, short enough
     that an unbounded faulted solve still finishes. *)
  let slow_step_s = 2e-4

  type plan =
    | Nth of { n : int; kind : kind }
    | Fraction of { rate : float; seed : int; kind : kind }

  let armed : plan option Atomic.t = Atomic.make None
  let solve_index = Atomic.make 0

  let arm plan =
    Atomic.set solve_index 0;
    Atomic.set armed (Some plan)

  let disarm () = Atomic.set armed None
  let injected () = Atomic.get Stats.injected_faults

  (* Hash the (seed, index) pair to a uniform float in [0, 1). MD5 is
     plenty fast next to a transient solve and identical everywhere. *)
  let roll_float seed k =
    let d = Digest.string (Printf.sprintf "tran.fault:%d:%d" seed k) in
    let x = ref 0 in
    for i = 0 to 5 do
      x := (!x lsl 8) lor Char.code d.[i]
    done;
    float_of_int !x /. float_of_int (1 lsl 48)

  let roll () =
    match Atomic.get armed with
    | None -> None
    | Some plan ->
        let k = Atomic.fetch_and_add solve_index 1 in
        let hit, kind =
          match plan with
          | Nth { n; kind } -> (k = n, kind)
          | Fraction { rate; seed; kind } -> (roll_float seed k < rate, kind)
        in
        if hit then begin
          Atomic.incr Stats.injected_faults;
          Some kind
        end
        else None

  (* Spec grammar: ["nan:"|"slow:"]("nth:"N | RATE["@"SEED]). Examples:
     "0.1" (10% of solves diverge, seed 0), "0.1@7", "nth:3",
     "nan:0.05@2" (5% of solves return a NaN-corrupted waveform),
     "slow:nth:1" (solve #1 stalls at every step boundary). *)
  let of_string s =
    let kind, rest =
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "nan" ->
          (Corrupt, String.sub s (i + 1) (String.length s - i - 1))
      | Some i when String.sub s 0 i = "slow" ->
          (Slow, String.sub s (i + 1) (String.length s - i - 1))
      | _ -> (Diverge, s)
    in
    let nth_prefix = "nth:" in
    let has_nth =
      String.length rest > String.length nth_prefix
      && String.sub rest 0 (String.length nth_prefix) = nth_prefix
    in
    if has_nth then
      let num =
        String.sub rest (String.length nth_prefix)
          (String.length rest - String.length nth_prefix)
      in
      match int_of_string_opt num with
      | Some n when n >= 0 -> Ok (Nth { n; kind })
      | _ -> Error (Printf.sprintf "bad fault spec %S: nth:N needs N >= 0" s)
    else
      let rate_s, seed =
        match String.index_opt rest '@' with
        | Some i -> (
            ( String.sub rest 0 i,
              String.sub rest (i + 1) (String.length rest - i - 1) ))
            |> fun (r, sd) -> (r, int_of_string_opt sd)
        | None -> (rest, Some 0)
      in
      match (float_of_string_opt rate_s, seed) with
      | Some rate, Some seed when rate >= 0.0 && rate <= 1.0 ->
          Ok (Fraction { rate; seed; kind })
      | _ ->
          Error
            (Printf.sprintf
               "bad fault spec %S: want [nan:|slow:](nth:N | RATE[@SEED])" s)
end

(* Compiled, array-based view of the circuit for fast stamping. *)
type compiled = {
  n : int;                                  (* node unknowns *)
  m : int;                                  (* vsource branch unknowns *)
  res : (int * int * float) array;          (* a, b, conductance *)
  caps : (int * int * float) array;
  vsrc : (int * Source.t) array;
  isrc : (int * int * Source.t) array;
  fets : (int * int * int * Circuit.mosfet_eval) array;
  name_index : (string, int) Hashtbl.t;
}

let compile ckt =
  let n = Circuit.num_nodes ckt in
  let res =
    Circuit.resistors ckt
    |> List.map (fun ((a : Circuit.node), (b : Circuit.node), r) ->
           ((a :> int), (b :> int), 1.0 /. r))
    |> Array.of_list
  in
  let caps =
    Circuit.capacitors ckt
    |> List.map (fun ((a : Circuit.node), (b : Circuit.node), c) ->
           ((a :> int), (b :> int), c))
    |> Array.of_list
  in
  let vsrc =
    Circuit.vsources ckt
    |> List.map (fun ((nd : Circuit.node), s) -> ((nd :> int), s))
    |> Array.of_list
  in
  (* Reject two sources on the same node: the MNA system would be
     singular and the netlist is certainly wrong. *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (nd, _) ->
      if Hashtbl.mem seen nd then
        invalid_arg "Transient: two voltage sources on one node";
      Hashtbl.add seen nd ())
    vsrc;
  let isrc =
    Circuit.isources ckt
    |> List.map (fun ((a : Circuit.node), (b : Circuit.node), s) ->
           ((a :> int), (b :> int), s))
    |> Array.of_list
  in
  let fets =
    Circuit.mosfets ckt
    |> List.map (fun (_, (g : Circuit.node), (d : Circuit.node), (s : Circuit.node), eval) ->
           ((g :> int), (d :> int), (s :> int), eval))
    |> Array.of_list
  in
  let name_index = Hashtbl.create 64 in
  List.iteri (fun i nm -> Hashtbl.add name_index nm i) (Circuit.node_names ckt);
  { n; m = Array.length vsrc; res; caps; vsrc; isrc; fets; name_index }

let is_gnd i = i < 0
let getv x i = if is_gnd i then 0.0 else x.(i)

(* Newton solve of f(x) = 0 at time [t].

   [stamp_caps] adds the capacitor companion contributions (absent for
   DC). [gmin] loads every node to ground. Returns true on
   convergence, mutating [x] in place. *)
let newton cp cfg ~gmin ~t ~stamp_caps x =
  let nu = cp.n + cp.m in
  let jac = Numerics.Matrix.create nu nu in
  let f = Array.make nu 0.0 in
  let converged = ref false in
  let iter = ref 0 in
  let stamp_conductance a b g =
    (* current a->b = g (va - vb) *)
    if not (is_gnd a) then begin
      f.(a) <- f.(a) +. (g *. (getv x a -. getv x b));
      Numerics.Matrix.add_to jac a a g;
      if not (is_gnd b) then Numerics.Matrix.add_to jac a b (-.g)
    end;
    if not (is_gnd b) then begin
      f.(b) <- f.(b) -. (g *. (getv x a -. getv x b));
      Numerics.Matrix.add_to jac b b g;
      if not (is_gnd a) then Numerics.Matrix.add_to jac b a (-.g)
    end
  in
  let stamp_current a b i =
    if not (is_gnd a) then f.(a) <- f.(a) +. i;
    if not (is_gnd b) then f.(b) <- f.(b) -. i
  in
  (try
     while not !converged do
       if !iter >= cfg.max_newton then raise Exit;
       incr iter;
       Numerics.Matrix.fill jac 0.0;
       Array.fill f 0 nu 0.0;
       (* gmin to ground on every node *)
       for i = 0 to cp.n - 1 do
         f.(i) <- f.(i) +. (gmin *. x.(i));
         Numerics.Matrix.add_to jac i i gmin
       done;
       Array.iter (fun (a, b, g) -> stamp_conductance a b g) cp.res;
       Array.iter
         (fun (a, b, src) -> stamp_current a b (Source.value src t))
         cp.isrc;
       stamp_caps ~stamp_conductance ~stamp_current;
       Array.iter
         (fun (g, d, s, eval) ->
           let ids, dg, dd, ds =
             eval ~vg:(getv x g) ~vd:(getv x d) ~vs:(getv x s)
           in
           if not (is_gnd d) then begin
             f.(d) <- f.(d) +. ids;
             if not (is_gnd g) then Numerics.Matrix.add_to jac d g dg;
             Numerics.Matrix.add_to jac d d dd;
             if not (is_gnd s) then Numerics.Matrix.add_to jac d s ds
           end;
           if not (is_gnd s) then begin
             f.(s) <- f.(s) -. ids;
             if not (is_gnd g) then
               Numerics.Matrix.add_to jac s g (-.dg);
             if not (is_gnd d) then
               Numerics.Matrix.add_to jac s d (-.dd);
             Numerics.Matrix.add_to jac s s (-.ds)
           end)
         cp.fets;
       Array.iteri
         (fun j (nd, src) ->
           let row = cp.n + j in
           (* branch current leaves the node into the source *)
           f.(nd) <- f.(nd) +. x.(row);
           Numerics.Matrix.add_to jac nd row 1.0;
           f.(row) <- x.(nd) -. Source.value src t;
           Numerics.Matrix.add_to jac row nd 1.0)
         cp.vsrc;
       let rhs = Array.map (fun v -> -.v) f in
       let dx =
         try Numerics.Matrix.lu_solve (Numerics.Matrix.lu_factor jac) rhs
         with Numerics.Matrix.Singular _ -> raise Exit
       in
       (* Clamp voltage updates for robustness; branch currents free. *)
       let max_dv = ref 0.0 in
       for i = 0 to cp.n - 1 do
         let d = dx.(i) in
         let d =
           if d > cfg.vstep_limit then cfg.vstep_limit
           else if d < -.cfg.vstep_limit then -.cfg.vstep_limit
           else d
         in
         x.(i) <- x.(i) +. d;
         if abs_float d > !max_dv then max_dv := abs_float d
       done;
       for i = cp.n to nu - 1 do
         x.(i) <- x.(i) +. dx.(i)
       done;
       let max_f = ref 0.0 in
       for i = 0 to cp.n - 1 do
         if abs_float f.(i) > !max_f then max_f := abs_float f.(i)
       done;
       if !max_dv < cfg.newton_tol_v && !max_f < cfg.newton_tol_i then
         converged := true
     done
   with Exit -> ());
  ignore (Atomic.fetch_and_add Stats.newton_iters !iter);
  !converged

let no_caps ~stamp_conductance:_ ~stamp_current:_ = ()

let dc_solve cp cfg ~at x =
  if newton cp cfg ~gmin:cfg.gmin ~t:at ~stamp_caps:no_caps x then true
  else begin
    (* gmin stepping: load the circuit heavily, then relax. *)
    Atomic.incr Stats.gmin_retries;
    let steps = [ 1e-3; 1e-5; 1e-7; 1e-9; cfg.gmin ] in
    List.for_all
      (fun g -> newton cp cfg ~gmin:g ~t:at ~stamp_caps:no_caps x)
      steps
  end

type result = {
  grid : float array;
  data : float array array;
  (* data.(k).(i): node voltages for i < n, then vsource branch
     currents (current leaving the node into the source). *)
  n : int;
  index : (string, int) Hashtbl.t;
  branch_index : (string, int) Hashtbl.t; (* source node name -> column *)
}

let times r = Array.copy r.grid

let probe r name =
  match Hashtbl.find_opt r.index name with
  | None -> raise Not_found
  | Some i ->
      Waveform.Wave.create r.grid (Array.map (fun row -> row.(i)) r.data)

(* Current *delivered by* the source into the circuit (the negative of
   the MNA branch unknown, which counts current leaving the node into
   the source). *)
let source_current r name =
  match Hashtbl.find_opt r.branch_index name with
  | None -> raise Not_found
  | Some i ->
      Waveform.Wave.create r.grid (Array.map (fun row -> -.row.(i)) r.data)

let delivered_charge r name =
  let w = source_current r name in
  Numerics.Integrate.trapz (Waveform.Wave.times w) (Waveform.Wave.values w)

let delivered_energy r name =
  let iw = source_current r name in
  let vw = probe r name in
  let ts = Waveform.Wave.times iw in
  let p =
    Array.map
      (fun t -> Waveform.Wave.value_at iw t *. Waveform.Wave.value_at vw t)
      ts
  in
  Numerics.Integrate.trapz ts p

let final_voltage r name =
  match Hashtbl.find_opt r.index name with
  | None -> raise Not_found
  | Some i -> r.data.(Array.length r.data - 1).(i)

let build_grid cp cfg =
  let span = cfg.tstop -. cfg.tstart in
  if span <= 0.0 then invalid_arg "Transient.run: tstop <= tstart";
  if cfg.dt <= 0.0 then invalid_arg "Transient.run: dt must be positive";
  let nsteps = int_of_float (ceil (span /. cfg.dt)) in
  let base =
    List.init (nsteps + 1) (fun i ->
        Float.min cfg.tstop (cfg.tstart +. (cfg.dt *. float_of_int i)))
  in
  let breaks =
    Array.to_list cp.vsrc
    |> List.concat_map (fun (_, s) -> Source.breakpoints s)
    |> List.filter (fun t -> t > cfg.tstart && t < cfg.tstop)
  in
  let all = List.sort_uniq compare (base @ breaks) in
  (* Drop points closer than dt/100 to their predecessor to keep the
     grid strictly increasing with sane step sizes. *)
  let eps = cfg.dt /. 100.0 in
  let rec dedup = function
    | a :: b :: rest when b -. a < eps -> dedup (a :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  Array.of_list (dedup all)

let validate_adaptive a =
  if a.lte_tol <= 0.0 then
    invalid_arg "Transient.run: lte_tol must be positive";
  if a.dt_min <= 0.0 then
    invalid_arg "Transient.run: dt_min must be positive";
  if a.dt_max < a.dt_min then invalid_arg "Transient.run: dt_max < dt_min";
  if a.grow_limit < 1.0 then
    invalid_arg "Transient.run: grow_limit must be >= 1";
  if a.safety <= 0.0 || a.safety > 1.0 then
    invalid_arg "Transient.run: safety must be in (0, 1]"

let run ?(config = default_config) ?(ic = []) ckt =
  Atomic.incr Stats.sims;
  let cfg = config in
  let fault = Fault.roll () in
  (match fault with
  | Some Fault.Diverge -> raise (No_convergence cfg.tstart)
  | _ -> ());
  (* Fail fast when the caller's budget is already spent — after the
     fault roll so solve-index accounting matches an undeadlined run. *)
  Deadline.check ~at:cfg.tstart;
  if cfg.tstop -. cfg.tstart <= 0.0 then
    invalid_arg "Transient.run: tstop <= tstart";
  if cfg.dt <= 0.0 then invalid_arg "Transient.run: dt must be positive";
  (match cfg.step_control with
  | Fixed -> ()
  | Adaptive a -> validate_adaptive a);
  let cp = compile ckt in
  let nu = cp.n + cp.m in
  let x = Array.make nu 0.0 in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt cp.name_index name with
      | Some i -> x.(i) <- v
      | None -> invalid_arg ("Transient.run: unknown ic node " ^ name))
    ic;
  if not (dc_solve cp cfg ~at:cfg.tstart x) then
    raise (No_convergence cfg.tstart);
  (* Capacitor state: voltage across and (trapezoidal) current. *)
  let ncap = Array.length cp.caps in
  let vcap = Array.make ncap 0.0 and icap = Array.make ncap 0.0 in
  Array.iteri
    (fun k (a, b, _) -> vcap.(k) <- getv x a -. getv x b)
    cp.caps;
  (* One integration step of size h ending at time t, with the given
     companion model. Returns false if Newton diverged. On success, cap
     state is NOT yet committed; the caller commits via [commit]. *)
  let attempt ~integ ~t ~h ~vcap0 ~icap0 xtrial =
    let stamp_caps ~stamp_conductance ~stamp_current =
      Array.iteri
        (fun k (a, b, c) ->
          match integ with
          | Backward_euler ->
              let geq = c /. h in
              stamp_conductance a b geq;
              stamp_current a b (-.geq *. vcap0.(k))
          | Trapezoidal ->
              let geq = 2.0 *. c /. h in
              stamp_conductance a b geq;
              stamp_current a b (-.((geq *. vcap0.(k)) +. icap0.(k))))
        cp.caps
    in
    newton cp cfg ~gmin:cfg.gmin ~t ~stamp_caps xtrial
  in
  (* Accepted-step budget shared by both grid modes; 0 = unlimited. *)
  let steps_taken = ref 0 in
  let charge_step ~at =
    incr steps_taken;
    Deadline.check ~at;
    (* A [Slow] fault stalls each accepted step so a deadline trips
       mid-solve, at a step boundary — the cancellation point the
       deadline machinery promises. *)
    (match fault with
    | Some Fault.Slow -> Unix.sleepf Fault.slow_step_s
    | _ -> ());
    if cfg.max_steps > 0 && !steps_taken > cfg.max_steps then
      raise (Step_budget_exhausted { at; budget = cfg.max_steps })
  in
  let commit ~integ ~h ~vcap0 ~icap0 xnew =
    Array.iteri
      (fun k (a, b, c) ->
        let v = getv xnew a -. getv xnew b in
        (match integ with
        | Backward_euler -> icap.(k) <- c /. h *. (v -. vcap0.(k))
        | Trapezoidal ->
            icap.(k) <- ((2.0 *. c /. h) *. (v -. vcap0.(k))) -. icap0.(k));
        vcap.(k) <- v)
      cp.caps
  in
  (* ---------------- fixed grid (legacy, bit-exact) ---------------- *)
  let run_fixed () =
    let grid = build_grid cp cfg in
    let npts = Array.length grid in
    let data = Array.make npts [||] in
    data.(0) <- Array.copy x;
    (* Advance from t0 to t1, bisecting on failure. *)
    let rec advance depth t0 t1 =
      let h = t1 -. t0 in
      let vcap0 = Array.copy vcap and icap0 = Array.copy icap in
      let xtrial = Array.copy x in
      if attempt ~integ:cfg.integration ~t:t1 ~h ~vcap0 ~icap0 xtrial then begin
        Atomic.incr Stats.steps;
        charge_step ~at:t1;
        commit ~integ:cfg.integration ~h ~vcap0 ~icap0 xtrial;
        Array.blit xtrial 0 x 0 nu
      end
      else if depth >= cfg.max_bisection then raise (No_convergence t1)
      else begin
        Atomic.incr Stats.bisections;
        let tm = 0.5 *. (t0 +. t1) in
        advance (depth + 1) t0 tm;
        advance (depth + 1) tm t1
      end
    in
    for k = 1 to npts - 1 do
      advance 0 grid.(k - 1) grid.(k);
      data.(k) <- Array.copy x
    done;
    (grid, data)
  in
  (* -------------- adaptive local-truncation-error grid ------------- *)
  (* Each step is solved twice, with the configured companion and with
     the other one (trapezoidal vs backward Euler). Their discrepancy is
     an O(h^2) estimate of the local truncation error; the controller
     holds it below [lte_tol], growing the step on quiescent spans and
     shrinking it through transitions. Source breakpoints are always
     landed on exactly, and steps that carry any node across a
     configured threshold level are refined to [crossing_dt] so
     downstream crossing searches keep fixed-grid accuracy. *)
  let run_adaptive a =
    let dt_min = a.dt_min in
    let dt_max = a.dt_max in
    let crossing_dt =
      let d = if a.crossing_dt > 0.0 then a.crossing_dt else cfg.dt in
      Float.max dt_min (Float.min d dt_max)
    in
    let levels = Array.of_list a.crossing_levels in
    let crosses x0 x1 =
      let hit = ref false in
      for i = 0 to cp.n - 1 do
        if not !hit then
          for l = 0 to Array.length levels - 1 do
            let lv = levels.(l) in
            if (x0.(i) -. lv) *. (x1.(i) -. lv) < 0.0 then hit := true
          done
      done;
      !hit
    in
    let other =
      match cfg.integration with
      | Trapezoidal -> Backward_euler
      | Backward_euler -> Trapezoidal
    in
    let breaks =
      ref
        (Array.to_list cp.vsrc
        |> List.concat_map (fun (_, s) -> Source.breakpoints s)
        |> List.filter (fun t -> t > cfg.tstart && t < cfg.tstop)
        |> fun l -> List.sort_uniq compare (cfg.tstop :: l))
    in
    let ts_rev = ref [ cfg.tstart ] in
    let xs_rev = ref [ Array.copy x ] in
    let t = ref cfg.tstart in
    let dt = ref (Float.min dt_max (Float.max dt_min cfg.dt)) in
    while !t < cfg.tstop do
      (match !breaks with
      | b :: rest when b <= !t -> breaks := rest
      | _ -> ());
      let next_bp = match !breaks with b :: _ -> b | [] -> cfg.tstop in
      let remaining = next_bp -. !t in
      (* Land exactly on the breakpoint rather than leaving a sliver. *)
      let landing = remaining <= !dt +. dt_min in
      let h = if landing then remaining else !dt in
      let t1 = if landing then next_bp else !t +. h in
      (* A landing step is pinned to [remaining], so once the controller
         dt is at the floor a rejection cannot shrink it further — treat
         it as a floor step or the reject/retry loop never advances. *)
      let floor_dt = dt_min *. (1.0 +. 1e-9) in
      let at_floor = h <= floor_dt || (landing && !dt <= floor_dt) in
      let vcap0 = Array.copy vcap and icap0 = Array.copy icap in
      let xtrial = Array.copy x in
      if not (attempt ~integ:cfg.integration ~t:t1 ~h ~vcap0 ~icap0 xtrial)
      then begin
        if at_floor then raise (No_convergence t1);
        Atomic.incr Stats.bisections;
        Atomic.incr Stats.rejected_steps;
        dt := Float.max dt_min (0.5 *. h)
      end
      else begin
        let xcomp = Array.copy x in
        let err =
          if attempt ~integ:other ~t:t1 ~h ~vcap0 ~icap0 xcomp then begin
            let e = ref 0.0 in
            for i = 0 to cp.n - 1 do
              let d = abs_float (xtrial.(i) -. xcomp.(i)) in
              if d > !e then e := d
            done;
            !e
          end
          else infinity
        in
        let lte_ok = err <= a.lte_tol in
        let crossing_viol =
          Array.length levels > 0
          && h > crossing_dt *. (1.0 +. 1e-9)
          && crosses x xtrial
        in
        if (lte_ok && not crossing_viol) || at_floor then begin
          Atomic.incr Stats.steps;
          charge_step ~at:t1;
          commit ~integ:cfg.integration ~h ~vcap0 ~icap0 xtrial;
          Array.blit xtrial 0 x 0 nu;
          t := t1;
          ts_rev := t1 :: !ts_rev;
          xs_rev := Array.copy x :: !xs_rev;
          let factor =
            if err <= 0.0 then a.grow_limit
            else
              Float.max 0.2
                (Float.min a.grow_limit (a.safety *. sqrt (a.lte_tol /. err)))
          in
          dt := Float.max dt_min (Float.min dt_max (h *. factor))
        end
        else begin
          Atomic.incr Stats.rejected_steps;
          if not lte_ok then Atomic.incr Stats.lte_rejections;
          let shrunk =
            if lte_ok then crossing_dt
            else if Float.is_finite err then
              Float.min (0.9 *. h)
                (h *. Float.max 0.1 (a.safety *. sqrt (a.lte_tol /. err)))
            else 0.25 *. h
          in
          (* A rejected landing step recomputes [shrunk] from the same
             pinned h = remaining every retry; halve it so dt strictly
             decreases until landing disengages or the floor forces
             acceptance. *)
          let shrunk = if landing then Float.min shrunk (0.5 *. h) else shrunk in
          dt := Float.max dt_min (Float.min shrunk dt_max)
        end
      end
    done;
    let grid = Array.of_list (List.rev !ts_rev) in
    let data = Array.of_list (List.rev !xs_rev) in
    (grid, data)
  in
  let grid, data =
    match cfg.step_control with
    | Fixed -> run_fixed ()
    | Adaptive a -> run_adaptive a
  in
  (* A Corrupt fault poisons every node voltage of one mid-trace
     sample, modelling a solver that "succeeded" with garbage —
     downstream validation must catch it whichever node it probes.
     Rows are fresh copies, so mutation is safe. *)
  (match fault with
  | Some Fault.Corrupt when Array.length data > 1 && cp.n > 0 ->
      Array.fill data.(Array.length data / 2) 0 cp.n Float.nan
  | _ -> ());
  let branch_index = Hashtbl.create 8 in
  Array.iteri
    (fun j (nd, _) ->
      let name =
        Hashtbl.fold
          (fun name i acc -> if i = nd then Some name else acc)
          cp.name_index None
      in
      match name with
      | Some name -> Hashtbl.replace branch_index name (cp.n + j)
      | None -> ())
    cp.vsrc;
  { grid; data; n = cp.n; index = cp.name_index; branch_index }

let dc_operating_point ?(config = default_config) ?(guess = []) ~at ckt =
  let cp = compile ckt in
  let x = Array.make (cp.n + cp.m) 0.0 in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt cp.name_index name with
      | Some i -> x.(i) <- v
      | None -> invalid_arg ("Transient.dc_operating_point: unknown node " ^ name))
    guess;
  if not (dc_solve cp config ~at x) then raise (No_convergence at);
  List.map
    (fun name -> (name, x.(Hashtbl.find cp.name_index name)))
    (Circuit.node_names ckt)
