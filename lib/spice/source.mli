(** Independent source stimuli. *)

type t

val dc : float -> t

val pwl : (float * float) list -> t
(** Piecewise-linear (time, value) points; must be sorted by strictly
    increasing time (checked). Held constant outside the span. *)

val ramp : t0:float -> v0:float -> v1:float -> trans:float -> t
(** Linear transition from [v0] to [v1] starting at [t0], lasting
    [trans] (> 0). The usual STA stimulus. *)

val of_wave : Waveform.Wave.t -> t
(** Drive with a recorded waveform (e.g. a noisy waveform re-applied to
    a receiver, or a technique's Gamma_eff). *)

val of_ramp : Waveform.Ramp.t -> t
(** Drive with a saturated ramp, evaluated analytically. *)

val fn : (float -> float) -> t

val value : t -> float -> float
(** Evaluate at a time. *)

val fingerprint : t -> string option
(** Content digest for simulation caching: two sources with equal
    fingerprints produce bit-identical stimuli. [None] for opaque
    function sources, which cannot be content-addressed. *)

val breakpoints : t -> float list
(** Times at which the source has slope discontinuities; the transient
    engine aligns steps to these for accuracy. *)
