type grid = { slews : float array; loads : float array }

let default_grid proc cell =
  let cin = Device.Cell.input_cap proc cell in
  {
    slews = [| 20e-12; 50e-12; 90e-12; 150e-12; 220e-12; 300e-12; 400e-12 |];
    loads = Array.map (fun k -> k *. cin) [| 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 24.0 |];
  }

(* Engine solver config with the characterization grid layered on top;
   under adaptive stepping the process 10/50/90 thresholds become
   crossing-refinement levels so delay/slew measurement keeps its
   resolution (unless the engine brought its own levels). *)
let solver_config engine proc ~dt ~tstop =
  let th = Device.Process.thresholds proc in
  let open Spice.Transient in
  let c = Runtime.Engine.solver engine in
  let c = with_dt c dt in
  let c = with_tstop c tstop in
  with_crossing_levels_if_empty c
    Waveform.Thresholds.[ v_low th; v_mid th; v_high th ]

let measure_gate ?(dt = 0.5e-12) ?(extra_load = 0.0) ?engine proc cell
    ~input ~tstop =
  let open Spice in
  let engine = Runtime.Engine.resolve engine in
  let base_config = solver_config engine proc ~dt ~tstop in
  let compute config () =
    let ckt = Circuit.create () in
    let vdd = Device.Cell.attach_supply proc ckt in
    let a = Circuit.node ckt "a" and y = Circuit.node ckt "y" in
    Device.Cell.instantiate proc cell ~ckt ~input:a ~output:y ~vdd_node:vdd
      ~name:"dut";
    if extra_load > 0.0 then
      Circuit.capacitor ckt y (Circuit.gnd ckt) extra_load;
    Circuit.vsource ckt a input;
    let res = Transient.run ~config ckt in
    [ Transient.probe res "a"; Transient.probe res "y" ]
  in
  (* Opaque function stimuli cannot be content-addressed. *)
  let cache =
    match Source.fingerprint input with
    | None -> None
    | Some _ -> Runtime.Engine.cache engine
  in
  let key_of config =
    Runtime.Cache.Key.(
      make "characterize.measure_gate"
        [
          str proc.Device.Process.name;
          str cell.Device.Cell.name;
          str (Transient.config_fingerprint config);
          float extra_load;
          str (Option.get (Source.fingerprint input));
        ])
  in
  let attempt config =
    match cache with
    | None -> compute config ()
    | Some c -> Runtime.Cache.memo c (key_of config) (compute config)
  in
  let policy = Runtime.Engine.resilience engine in
  let validate waves =
    let labeled =
      match waves with
      | [ a; y ] -> [ ("input pin", a); ("output pin", y) ]
      | _ -> assert false
    in
    Runtime.Resilience.validate_waves policy
      ~rails:(0.0, proc.Device.Process.vdd)
      labeled
  in
  let on_reject config =
    match cache with
    | Some c -> Runtime.Cache.remove c (key_of config)
    | None -> ()
  in
  match
    Runtime.Resilience.run ~validate ~on_reject policy ~config:base_config
      ~attempt
  with
  | Ok [ a; y ] -> (a, y)
  | Ok _ -> assert false
  | Error f -> Runtime.Failure.fail f

(* The input ramp starts after a settling pad so the DC point is clean;
   tstop leaves room for slow outputs (heavy loads on weak cells). *)
let measure_point ?dt ?engine proc cell ~slew ~load ~input_rising =
  let th = Device.Process.thresholds proc in
  let vdd = proc.Device.Process.vdd in
  let t0 = 100e-12 in
  (* A 10-90 slew corresponds to a full-swing ramp 1/0.8 longer. *)
  let trans = slew /. (th.Waveform.Thresholds.high_frac -. th.Waveform.Thresholds.low_frac) in
  let v0, v1 = if input_rising then (0.0, vdd) else (vdd, 0.0) in
  let input = Spice.Source.ramp ~t0 ~v0 ~v1 ~trans in
  let tstop = t0 +. trans +. 3e-9 in
  let wa, wy =
    measure_gate ?dt ?engine proc cell ~extra_load:load ~input ~tstop
  in
  let arr_in = Waveform.Wave.arrival wa th in
  let arr_out = Waveform.Wave.arrival wy th in
  let out_slew = Waveform.Wave.slew wy th in
  match (arr_in, arr_out, out_slew) with
  | Some ti, Some ty, Some s -> (ty -. ti, s)
  | _ ->
      Runtime.Failure.fail
        (Missing_crossing
           {
             what =
               Printf.sprintf "%s transition (slew=%.3gps load=%.3gfF)"
                 cell.Device.Cell.name (slew *. 1e12) (load *. 1e15);
             level = Waveform.Thresholds.v_mid th;
           })

let run ?grid ?(dt = 0.5e-12) ?engine proc cell =
  let engine = Runtime.Engine.resolve engine in
  let grid =
    match grid with Some g -> g | None -> default_grid proc cell
  in
  let n = Array.length grid.slews and m = Array.length grid.loads in
  (* Both polarities' grid points are independent simulations: flatten
     them into one job list so a pool stays busy across the whole
     characterization, then scatter the results back into tables. *)
  let points =
    Runtime.Engine.submit_batch engine (2 * n * m) (fun k ->
        let input_rising = k < n * m in
        let r = k mod (n * m) in
        let i = r / m and j = r mod m in
        measure_point ~dt ~engine proc cell ~slew:grid.slews.(i)
          ~load:grid.loads.(j) ~input_rising)
  in
  let sweep_of ~input_rising =
    let base = if input_rising then 0 else n * m in
    let delay = Array.make_matrix n m 0.0 in
    let trans = Array.make_matrix n m 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        let d, s = points.(base + (i * m) + j) in
        delay.(i).(j) <- d;
        trans.(i).(j) <- s
      done
    done;
    {
      Nldm.delay = Nldm.table ~slews:grid.slews ~loads:grid.loads ~values:delay;
      trans = Nldm.table ~slews:grid.slews ~loads:grid.loads ~values:trans;
    }
  in
  let inverting = Device.Cell.inverting cell in
  {
    Nldm.cell = cell.Device.Cell.name;
    input_cap = Device.Cell.input_cap proc cell;
    inverting;
    (* Output rises when the input falls on inverting cells, and when
       it rises on buffers. *)
    out_rise = sweep_of ~input_rising:(not inverting);
    out_fall = sweep_of ~input_rising:inverting;
  }
