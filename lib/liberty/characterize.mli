(** Simulation-driven cell characterization.

    Sweeps a (input slew x output load) grid, simulating the cell with
    the transistor-level engine and measuring mid-to-mid delay and
    10-90 output transition — exactly how an ASIC library vendor fills
    NLDM tables, with our [spice] engine standing in for HSPICE. *)

type grid = {
  slews : float array; (** 10-90 input transition times to sweep *)
  loads : float array; (** output load capacitances to sweep *)
}

val default_grid : Device.Process.t -> Device.Cell.t -> grid
(** Seven slews 20 ps .. 400 ps; seven loads from 0.5x to 24x the
    cell's own input capacitance. *)

val run :
  ?grid:grid -> ?dt:float ->
  ?engine:Runtime.Engine.t ->
  Device.Process.t -> Device.Cell.t -> Nldm.cell_timing
(** Characterize one cell. [dt] defaults to 0.5 ps. Both polarities'
    grid points fan out over the engine's pool as one job list via
    {!Runtime.Engine.submit_batch} (the tables are identical to the
    sequential sweep); the engine's cache memoizes each measurement
    simulation by content — scenario plus full solver-config
    fingerprint — so re-characterizing an unchanged cell is free.
    Raises [Runtime.Failure.Error] with
    [Missing_crossing] when a measurement point produces no output
    transition (which indicates a broken cell or an absurd grid). *)

val measure_gate :
  ?dt:float -> ?extra_load:float ->
  ?engine:Runtime.Engine.t ->
  Device.Process.t -> Device.Cell.t ->
  input:Spice.Source.t -> tstop:float -> Waveform.Wave.t * Waveform.Wave.t
(** [measure_gate proc cell ~input ~tstop] simulates the cell alone
    driven by [input] with [extra_load] farads at the output (default
    0) and returns (input waveform, output waveform) at the pins. The
    shared primitive behind characterization and behind the
    equivalent-waveform evaluation harness. Runs under the engine's
    {!Runtime.Resilience} policy: failed or invalid solves walk the
    fallback ladder; an exhausted ladder raises
    [Runtime.Failure.Error]. *)
