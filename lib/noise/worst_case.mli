(** Worst-case aggressor alignment search.

    Noise-aware STA needs the alignment that maximizes the victim's
    delay, not an average over alignments. A coarse scan over the
    window brackets the worst case, then golden-section refinement
    polishes it — each probe is one full-chain transient simulation,
    so the budget matters. *)

type result = {
  tau : float;          (** worst aggressor start time found *)
  delay : float;        (** reference gate delay at [tau] *)
  nominal_delay : float;(** noiseless gate delay, for the push-out *)
  probes : int;         (** simulations spent *)
  pruned : int;         (** coarse-grid points bounded away unsolved *)
  gamma : (Eqwave.Ladder.outcome, Runtime.Failure.t) Stdlib.result;
      (** equivalent-ramp mapping of the worst-case waveform through
          the degradation ladder — the Gamma_eff a downstream STA
          would propagate, with its rung and deviation score *)
}

val delay_at :
  ?engine:Runtime.Engine.t ->
  Scenario.t -> noiseless:Injection.run -> tau:float -> float
(** Reference gate delay (latest 0.5 Vdd crossings, input to output) of
    one injection case. Raises [Failure] when a crossing is missing. *)

val search :
  ?coarse:int -> ?refine:int -> ?prune_tol_ps:float ->
  ?samples:int -> ?ladder:Eqwave.Ladder.t ->
  ?engine:Runtime.Engine.t ->
  Scenario.t -> result
(** [search scenario] scans [coarse] (default 24) alignments across the
    scenario window through {!Alignment.search} — with [prune_tol_ps]
    (default 0, exhaustive) positive, provably non-critical brackets
    of the coarse grid are bounded away unsolved — then runs [refine]
    (default 12) golden-section steps around the best bracket. The
    coarse scan is first warmed through the lockstep batch kernel
    ({!Injection.prewarm_noisy}) when the engine carries a cache, then
    fans out over the engine's pool ({!Runtime.Engine.submit_batch});
    the refinement is sequential. The result is independent of the
    pool and of the warm-up. The worst-case waveform is finally mapped
    to [gamma] through [ladder] (default {!Eqwave.Ladder.default})
    with [samples] sampling points — the noisy run at the winning
    alignment is served from cache, so this adds only the fits. *)

val pp : Format.formatter -> result -> unit
