(** Worst-case aggressor alignment search.

    Noise-aware STA needs the alignment that maximizes the victim's
    delay, not an average over alignments. A coarse scan over the
    window brackets the worst case, then golden-section refinement
    polishes it — each probe is one full-chain transient simulation,
    so the budget matters. *)

type result = {
  tau : float;          (** worst aggressor start time found *)
  delay : float;        (** reference gate delay at [tau] *)
  nominal_delay : float;(** noiseless gate delay, for the push-out *)
  probes : int;         (** simulations spent *)
}

val delay_at :
  ?cache:Runtime.Cache.t -> ?engine:Runtime.Engine.t ->
  Scenario.t -> noiseless:Injection.run -> tau:float -> float
(** Reference gate delay (latest 0.5 Vdd crossings, input to output) of
    one injection case. Raises [Failure] when a crossing is missing. *)

val search :
  ?coarse:int -> ?refine:int ->
  ?pool:Runtime.Pool.t -> ?cache:Runtime.Cache.t ->
  ?engine:Runtime.Engine.t ->
  Scenario.t -> result
(** [search scenario] scans [coarse] (default 24) alignments across the
    scenario window, then runs [refine] (default 12) golden-section
    steps around the best bracket. The coarse scan fans out over the
    engine's pool; the refinement is sequential. The result is
    independent of the pool. [pool]/[cache] are the deprecated aliases
    for the engine slots. *)

val pp : Format.formatter -> result -> unit
