type sample = {
  tau : float;
  aggressor_rising : bool;
  pruned : bool;
  case : Eval.case_eval;
}

type summary = {
  technique : string;
  p50_ps : float;
  p95_ps : float;
  max_ps : float;
  n : int;
  failed : int;
}

let run ?(seed = 42) ?(samples = 50) ?techniques ?ladder ?checkpoint_dir
    ?engine ?(prune_tol_ps = 0.0) scenario =
  if samples < 1 then invalid_arg "Montecarlo.run: samples < 1";
  let engine = Runtime.Engine.resolve engine in
  let techs =
    match techniques with Some t -> t | None -> Eqwave.Registry.all
  in
  let rng = Random.State.make [| seed |] in
  let window = scenario.Scenario.window in
  let lo =
    scenario.Scenario.victim_t0 +. scenario.Scenario.window_offset
    -. (window /. 2.0)
  in
  (* Draw everything up front so the stream (and thus the result) does
     not depend on evaluation order under a pool. *)
  let draws =
    Array.init samples (fun _ ->
        let tau = lo +. (Random.State.float rng window) in
        let rising = Random.State.bool rng in
        (tau, rising))
  in
  let pruning =
    prune_tol_ps > 0.0 && not (Spice.Transient.Fault.is_armed ())
  in
  let checkpoint =
    match checkpoint_dir with
    | None -> None
    | Some dir ->
        Some
          (Runtime.Checkpoint.open_ ~dir
             ~name:("montecarlo-" ^ scenario.Scenario.name)
             ~fingerprint:
               (Eval.sweep_fingerprint ~tag:"montecarlo.run"
                  ~schema:"sample/3" ?ladder ~techs ~engine scenario
                  ([ string_of_int seed; string_of_int samples ]
                  @
                  if pruning then
                    [ Printf.sprintf "prune:%h" prune_tol_ps ]
                  else [])))
  in
  (* The noiseless (victim-only) run depends on the aggressors' quiet
     rail, which depends on their polarity: precompute each polarity
     that was drawn, before fanning out. A noiseless run that fails
     beyond the fallback ladder turns all samples of that polarity
     into typed failed cases rather than aborting the experiment. *)
  let noiseless = Hashtbl.create 2 in
  Array.iter
    (fun (_, rising) ->
      if not (Hashtbl.mem noiseless rising) then
        Hashtbl.add noiseless rising
          (match
             Injection.noiseless ~engine
               { scenario with Scenario.aggressor_rising = rising }
           with
          | r -> Ok r
          | exception Runtime.Failure.Error f -> Error f
          | exception Spice.Transient.No_convergence at ->
              Error (Runtime.Failure.Non_convergence { at })))
    draws;
  (* Per-polarity overlap interval: a draw whose alignment provably
     cannot inject noise during the victim's critical window gets the
     noiseless run substituted for its noisy one — the receiver replay
     of that wave is shared across all such draws (content-cached), so
     the transient solve is skipped entirely. *)
  let overlap = Hashtbl.create 2 in
  if pruning then
    Hashtbl.iter
      (fun rising nl ->
        match nl with
        | Error _ -> ()
        | Ok nl ->
            let scen = { scenario with Scenario.aggressor_rising = rising } in
            Hashtbl.add overlap rising
              (Alignment.overlap_interval
                 ~config:
                   { Alignment.default with Alignment.prune_tol_ps }
                 scen ~noiseless:nl))
      noiseless;
  let eval_draw (tau, rising) =
    let scen = { scenario with Scenario.aggressor_rising = rising } in
    let pruned =
      match Hashtbl.find_opt overlap rising with
      | Some (lo, hi) -> tau < lo || tau > hi
      | None -> false
    in
    let case =
      match Hashtbl.find noiseless rising with
      | Error f -> Eval.failed_case techs ~tau f
      | Ok nl -> (
          match
            Eval.evaluate_case ~techniques:techs ?ladder ~engine
              ?noisy:(if pruned then Some nl else None)
              scen ~noiseless:nl ~tau
          with
          | c -> c
          | exception e -> (
              match Eval.failure_of_exn e with
              | Some f -> Eval.failed_case techs ~tau f
              | None -> raise e))
    in
    { tau; aggressor_rising = rising; pruned; case }
  in
  let eval i =
    match checkpoint with
    | None -> eval_draw draws.(i)
    | Some cp -> (
        match Runtime.Checkpoint.find cp i with
        | Some (s : sample) -> s
        | None ->
            let s = eval_draw draws.(i) in
            Runtime.Checkpoint.record cp i s;
            s)
  in
  let cases =
    Array.to_list (Runtime.Engine.submit_batch engine samples eval)
  in
  (match Runtime.Engine.metrics engine with
  | Some m when pruning ->
      let np = List.length (List.filter (fun s -> s.pruned) cases) in
      Runtime.Metrics.incr ~n:(samples - np) m "noise.alignments_solved";
      Runtime.Metrics.incr ~n:np m "noise.alignments_pruned"
  | _ -> ());
  let summaries =
    List.map
      (fun (tech : Eqwave.Technique.t) ->
        let name = tech.Eqwave.Technique.name in
        let errs =
          List.filter_map
            (fun s ->
              List.find_opt
                (fun (m : Eval.case_metrics) -> m.Eval.technique = name)
                s.case.Eval.metrics
              |> Option.map (fun (m : Eval.case_metrics) -> m.Eval.delay_err)
              |> Option.join)
            cases
          |> List.map (fun e -> abs_float e *. 1e12)
          |> Array.of_list
        in
        let failed = samples - Array.length errs in
        if Array.length errs = 0 then
          (* All samples failed: honest zero counts, not nan sentinels
             that poison downstream arithmetic — same convention as
             [Eval.summarize_rows]. *)
          { technique = name; p50_ps = 0.0; p95_ps = 0.0; max_ps = 0.0;
            n = 0; failed }
        else
          {
            technique = name;
            p50_ps = Numerics.Stats.percentile errs 50.0;
            p95_ps = Numerics.Stats.percentile errs 95.0;
            max_ps = Numerics.Stats.max_abs errs;
            n = Array.length errs;
            failed;
          })
      techs
  in
  (cases, summaries)

let pp_summary ppf summaries =
  Format.fprintf ppf "@[<v>%-8s %8s %8s %8s %6s %7s@," "Method" "p50(ps)"
    "p95(ps)" "max(ps)" "n" "failed";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-8s %8.1f %8.1f %8.1f %6d %7d@," s.technique
        s.p50_ps s.p95_ps s.max_ps s.n s.failed)
    summaries;
  Format.fprintf ppf "@]"
