(** Monte-Carlo noise-injection experiments.

    The paper sweeps aggressor alignment deterministically; real
    integration flows also randomize alignment and aggressor polarity.
    This driver samples both and reports per-technique error
    percentiles, which is how a tool team would qualify a reduction
    technique before adoption. Deterministic under a fixed seed. *)

type sample = {
  tau : float;
  aggressor_rising : bool;
  case : Eval.case_eval;
}

type summary = {
  technique : string;
  p50_ps : float;
      (** median |delay error|; 0 (with [n = 0]) when every sample
          failed *)
  p95_ps : float;
  max_ps : float;
  n : int;
  failed : int;
}

val run :
  ?seed:int -> ?samples:int -> ?techniques:Eqwave.Technique.t list ->
  ?ladder:Eqwave.Ladder.t ->
  ?checkpoint_dir:string ->
  ?engine:Runtime.Engine.t ->
  Scenario.t -> sample list * summary list
(** [run scenario] draws [samples] (default 50) cases with uniformly
    random alignment over the scenario window and random aggressor
    polarity. [seed] defaults to 42. All draws happen before any
    evaluation, so the result is deterministic for a given seed even
    when the cases are swept on the engine's pool
    ({!Runtime.Engine.submit_batch}); the engine's cache
    memoizes the underlying simulations. Cases whose simulation fails beyond the
    engine's {!Runtime.Resilience} ladder are counted in each
    summary's [failed] (typed, via [Eval.failed_case]) instead of
    aborting the run. [ladder] (default {!Eqwave.Ladder.default})
    produces each sample's [case.mapping] degradation record.

    With [checkpoint_dir], completed samples are journaled under a
    fingerprint covering the scenario, solver config, policy, seed and
    sample count; an interrupted run resumed with the same arguments
    replays the journal and produces byte-identical results. *)

val pp_summary : Format.formatter -> summary list -> unit
