(** Monte-Carlo noise-injection experiments.

    The paper sweeps aggressor alignment deterministically; real
    integration flows also randomize alignment and aggressor polarity.
    This driver samples both and reports per-technique error
    percentiles, which is how a tool team would qualify a reduction
    technique before adoption. Deterministic under a fixed seed. *)

type sample = {
  tau : float;
  aggressor_rising : bool;
  pruned : bool;
      (** the draw's alignment provably could not overlap the victim's
          critical window, so the noiseless run stood in for the noisy
          simulation (only under a positive [prune_tol_ps]) *)
  case : Eval.case_eval;
}

type summary = {
  technique : string;
  p50_ps : float;
      (** median |delay error|; 0 (with [n = 0]) when every sample
          failed *)
  p95_ps : float;
  max_ps : float;
  n : int;
  failed : int;
}

val run :
  ?seed:int -> ?samples:int -> ?techniques:Eqwave.Technique.t list ->
  ?ladder:Eqwave.Ladder.t ->
  ?checkpoint_dir:string ->
  ?engine:Runtime.Engine.t ->
  ?prune_tol_ps:float ->
  Scenario.t -> sample list * summary list
(** [run scenario] draws [samples] (default 50) cases with uniformly
    random alignment over the scenario window and random aggressor
    polarity. [seed] defaults to 42. With [prune_tol_ps] positive,
    draws outside {!Alignment.overlap_interval} skip their transient
    solve — the noiseless run stands in, marked [pruned] — while the
    rest are unaffected; 0 (the default) disables the classification.
    Ignored under an armed fault plan. All draws happen before any
    evaluation, so the result is deterministic for a given seed even
    when the cases are swept on the engine's pool
    ({!Runtime.Engine.submit_batch}); the engine's cache
    memoizes the underlying simulations. Cases whose simulation fails beyond the
    engine's {!Runtime.Resilience} ladder are counted in each
    summary's [failed] (typed, via [Eval.failed_case]) instead of
    aborting the run. [ladder] (default {!Eqwave.Ladder.default})
    produces each sample's [case.mapping] degradation record.

    With [checkpoint_dir], completed samples are journaled under a
    fingerprint covering the scenario, solver config, policy, seed and
    sample count; an interrupted run resumed with the same arguments
    replays the journal and produces byte-identical results. *)

val pp_summary : Format.formatter -> summary list -> unit
