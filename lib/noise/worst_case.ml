type result = {
  tau : float;
  delay : float;
  nominal_delay : float;
  probes : int;
  gamma : (Eqwave.Ladder.outcome, Runtime.Failure.t) Stdlib.result;
}

let mid_delay scenario run =
  let th = Device.Process.thresholds scenario.Scenario.proc in
  let vm = Waveform.Thresholds.v_mid th in
  match
    ( Waveform.Wave.last_crossing run.Injection.far vm,
      Waveform.Wave.last_crossing run.Injection.rcv vm )
  with
  | Some ti, Some ty -> ty -. ti
  | _ ->
      Runtime.Failure.fail
        (Missing_crossing { what = "worst-case probe"; level = vm })

let delay_at ?engine scenario ~noiseless:_ ~tau =
  mid_delay scenario (Injection.noisy ?engine scenario ~tau)

let golden = (sqrt 5.0 -. 1.0) /. 2.0

let search ?(coarse = 24) ?(refine = 12) ?samples
    ?(ladder = Eqwave.Ladder.default) ?engine scenario =
  if coarse < 3 then invalid_arg "Worst_case.search: coarse < 3";
  let engine = Runtime.Engine.resolve engine in
  let noiseless = Injection.noiseless ~engine scenario in
  let nominal_delay = mid_delay scenario noiseless in
  let probes = ref 0 in
  let eval tau =
    incr probes;
    delay_at ~engine scenario ~noiseless ~tau
  in
  let scan = Scenario.taus (Scenario.with_cases scenario coarse) in
  (* The coarse scan is the parallel part; its probes are independent.
     Folding the delays in input order keeps the argmax (first maximum
     wins) identical to the sequential scan. The golden-section probes
     below are inherently sequential. *)
  (* Warm the coarse scan through the lockstep batch kernel (cache
     hits for the per-probe calls below), then fan the probes out. *)
  ignore (Injection.prewarm_noisy ~engine scenario scan);
  let coarse_delays =
    Runtime.Engine.submit_batch engine coarse (fun i ->
        delay_at ~engine scenario ~noiseless ~tau:scan.(i))
  in
  probes := !probes + coarse;
  let best = ref (scan.(0), coarse_delays.(0)) in
  Array.iteri
    (fun i d ->
      if i > 0 && d > snd !best then best := (scan.(i), d))
    coarse_delays;
  (* Golden-section maximization on the bracket around the best coarse
     probe. The landscape is piecewise smooth; the bracket spans one
     coarse step on each side. *)
  let step = scan.(1) -. scan.(0) in
  let lo = ref (fst !best -. step) and hi = ref (fst !best +. step) in
  let x1 = ref (!hi -. (golden *. (!hi -. !lo))) in
  let x2 = ref (!lo +. (golden *. (!hi -. !lo))) in
  let f1 = ref (eval !x1) and f2 = ref (eval !x2) in
  for _ = 1 to refine do
    if !f1 > !f2 then begin
      hi := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !hi -. (golden *. (!hi -. !lo));
      f1 := eval !x1
    end
    else begin
      lo := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !lo +. (golden *. (!hi -. !lo));
      f2 := eval !x2
    end;
    let x, d = if !f1 > !f2 then (!x1, !f1) else (!x2, !f2) in
    if d > snd !best then best := (x, d)
  done;
  (* Map the worst-case waveform to its equivalent ramp through the
     degradation ladder — the noisy run at the winning tau is already
     cached, so this costs only the fits. A mapping or solve failure
     here degrades the gamma report, never the search result. *)
  let gamma =
    match
      let noisy = Injection.noisy ~engine scenario ~tau:(fst !best) in
      let ctx = Injection.ctx_of_runs ?samples scenario ~noiseless ~noisy in
      Eqwave.Ladder.run ladder ctx
    with
    | Ok o -> Ok o
    | Error skips ->
        let last =
          match List.rev skips with
          | s :: _ -> s.Eqwave.Ladder.reason
          | [] -> "empty ladder"
        in
        Error
          (Runtime.Failure.Mapping_exhausted
             { tried = List.length skips; last })
    | exception Runtime.Failure.Error f -> Error f
    | exception Spice.Transient.No_convergence at ->
        Error (Runtime.Failure.Non_convergence { at })
  in
  {
    tau = fst !best;
    delay = snd !best;
    nominal_delay;
    probes = !probes;
    gamma;
  }

let pp ppf r =
  Format.fprintf ppf
    "worst alignment tau = %.1f ps: delay %.1f ps (nominal %.1f ps, push-out %+.1f ps, %d simulations)"
    (r.tau *. 1e12) (r.delay *. 1e12) (r.nominal_delay *. 1e12)
    ((r.delay -. r.nominal_delay) *. 1e12)
    r.probes;
  match r.gamma with
  | Ok o ->
      Format.fprintf ppf "; gamma via %s@@rung %d (deviation %.3g V)"
        o.Eqwave.Ladder.technique o.Eqwave.Ladder.rung o.Eqwave.Ladder.score_v
  | Error f -> Format.fprintf ppf "; gamma unmapped: %a" Runtime.Failure.pp f
