type result = {
  tau : float;
  delay : float;
  nominal_delay : float;
  probes : int;
  pruned : int;
  gamma : (Eqwave.Ladder.outcome, Runtime.Failure.t) Stdlib.result;
}

let mid_delay = Alignment.mid_delay
let delay_at = Alignment.delay_at
let golden = (sqrt 5.0 -. 1.0) /. 2.0

let search ?(coarse = 24) ?(refine = 12) ?(prune_tol_ps = 0.0) ?samples
    ?(ladder = Eqwave.Ladder.default) ?engine scenario =
  if coarse < 3 then invalid_arg "Worst_case.search: coarse < 3";
  let engine = Runtime.Engine.resolve engine in
  let noiseless = Injection.noiseless ~engine scenario in
  let nominal_delay = mid_delay scenario noiseless in
  let probes = ref 0 in
  let eval tau =
    incr probes;
    delay_at ~engine scenario ~noiseless ~tau
  in
  (* The coarse scan is the branch-and-bound part: with a zero
     tolerance it is the plain grid sweep (batched, first maximum
     wins); with a positive tolerance provably non-critical brackets
     are bounded away. The golden-section polish below is inherently
     sequential and unchanged either way. *)
  let coarse_grid = Scenario.with_cases scenario coarse in
  let align =
    Alignment.search
      ~config:{ Alignment.default with prune_tol_ps }
      ~engine coarse_grid ~noiseless
  in
  probes := !probes + align.Alignment.stats.Alignment.solved;
  let best = ref (align.Alignment.best_tau, align.Alignment.best_delay) in
  let scan = Scenario.taus coarse_grid in
  (* Golden-section maximization on the bracket around the best coarse
     probe. The landscape is piecewise smooth; the bracket spans one
     coarse step on each side. *)
  let step = scan.(1) -. scan.(0) in
  let lo = ref (fst !best -. step) and hi = ref (fst !best +. step) in
  let x1 = ref (!hi -. (golden *. (!hi -. !lo))) in
  let x2 = ref (!lo +. (golden *. (!hi -. !lo))) in
  let f1 = ref (eval !x1) and f2 = ref (eval !x2) in
  for _ = 1 to refine do
    if !f1 > !f2 then begin
      hi := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !hi -. (golden *. (!hi -. !lo));
      f1 := eval !x1
    end
    else begin
      lo := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !lo +. (golden *. (!hi -. !lo));
      f2 := eval !x2
    end;
    let x, d = if !f1 > !f2 then (!x1, !f1) else (!x2, !f2) in
    if d > snd !best then best := (x, d)
  done;
  (* Map the worst-case waveform to its equivalent ramp through the
     degradation ladder — the noisy run at the winning tau is already
     cached, so this costs only the fits. A mapping or solve failure
     here degrades the gamma report, never the search result. *)
  let gamma =
    match
      let noisy = Injection.noisy ~engine scenario ~tau:(fst !best) in
      let ctx = Injection.ctx_of_runs ?samples scenario ~noiseless ~noisy in
      Eqwave.Ladder.run ladder ctx
    with
    | Ok o -> Ok o
    | Error skips ->
        let last =
          match List.rev skips with
          | s :: _ -> s.Eqwave.Ladder.reason
          | [] -> "empty ladder"
        in
        Error
          (Runtime.Failure.Mapping_exhausted
             { tried = List.length skips; last })
    | exception Runtime.Failure.Error f -> Error f
    | exception Spice.Transient.No_convergence at ->
        Error (Runtime.Failure.Non_convergence { at })
  in
  {
    tau = fst !best;
    delay = snd !best;
    nominal_delay;
    probes = !probes;
    pruned = align.Alignment.stats.Alignment.pruned;
    gamma;
  }

let pp ppf r =
  Format.fprintf ppf
    "worst alignment tau = %.1f ps: delay %.1f ps (nominal %.1f ps, push-out %+.1f ps, %d simulations%s)"
    (r.tau *. 1e12) (r.delay *. 1e12) (r.nominal_delay *. 1e12)
    ((r.delay -. r.nominal_delay) *. 1e12)
    r.probes
    (if r.pruned > 0 then Printf.sprintf ", %d pruned" r.pruned else "");
  match r.gamma with
  | Ok o ->
      Format.fprintf ppf "; gamma via %s@@rung %d (deviation %.3g V)"
        o.Eqwave.Ladder.technique o.Eqwave.Ladder.rung o.Eqwave.Ladder.score_v
  | Error f -> Format.fprintf ppf "; gamma unmapped: %a" Runtime.Failure.pp f
