(** The paper's experimental configurations (Section 4.1, Figure 1).

    Each signal path is an inverter chain INVx1 -> INVx4 driving a
    distributed RC line whose far end feeds INVx16 loaded by INVx64.
    Aggressor lines run parallel to the victim and couple through
    distributed Cm. Config I: one aggressor, 1000 um lines, 100 fF
    total coupling. Config II: two aggressors flanking the victim,
    500 um lines, 100 fF coupling per pair. Inputs get 150 ps slews;
    200 aggressor-alignment cases span a 1 ns window. *)

type t = {
  name : string;
  proc : Device.Process.t;
  n_aggressors : int;       (** 1 or 2 *)
  line : Interconnect.Rcline.spec;
  cm_total : float;         (** coupling per adjacent line pair *)
  input_slew : float;       (** 10-90 input transition time *)
  victim_rising : bool;
  aggressor_rising : bool;  (** opposite-phase coupling by default *)
  victim_t0 : float;        (** victim input ramp start *)
  window : float;           (** aggressor alignment range (1 ns) *)
  window_offset : float;    (** window-center shift relative to
                                [victim_t0]; negative means the noise
                                mostly arrives before/during the victim
                                transition, which is the regime the
                                paper's timing cases sweep *)
  cases : int;              (** alignment cases (200) *)
  dt : float;               (** full-chain simulation step *)
  tstop : float;
  receiver : Device.Cell.t; (** the gate under analysis (INVx16) *)
  load : Device.Cell.t;     (** its fanout load (INVx64) *)
}

val config_i : t
val config_ii : t

val config_i_buffer : t
(** Configuration I with a two-stage BUFx16 receiver: its intrinsic
    delay separates the input and output transitions, exercising the
    paper's non-overlapping case (WLS5 breaks; SGDP pre-shifts). *)

val with_cases : t -> int -> t
(** Same scenario with a different case count (tests use small ones). *)

val fingerprint : t -> string
(** Content key for simulation caching: covers every field that shapes
    a single (scenario, tau) simulation — process corner, line and
    coupling values, slews, polarities, cells, solver step and span —
    but not the sweep bookkeeping ([cases], [window], [window_offset]),
    so cached cases survive sweep-shape changes. *)

val taus : t -> float array
(** The aggressor input start times: [cases] values uniformly covering
    [victim_t0 - window/2, victim_t0 + window/2]. *)

val victim_line_index : t -> int
(** Index of the victim in the coupled-bus line ordering (the victim
    sits between the aggressors in Config II). *)

val line_order : t -> [ `Victim | `Aggressor of int ] list

(** Node names of interest in the built circuit. *)

val victim_far_node : t -> string
(** in_u: receiver input. *)

val victim_rcv_node : t -> string
(** out_u: receiver (x16) output. *)

val build :
  t -> aggressor_active:bool -> tau:float -> Spice.Circuit.t * (string * float) list
(** Construct the full circuit for one case. When [aggressor_active] is
    false the aggressor inputs are held at their initial rail (the
    noiseless victim-only run; [tau] is then ignored). Also returns DC
    initial-guess hints (node, voltage) derived from the logic levels. *)

val chain_cells : t -> Device.Cell.t * Device.Cell.t * Device.Cell.t * Device.Cell.t
(** (x1, x4, receiver, load) — the chain's cells in driving order. *)
