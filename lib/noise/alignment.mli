(** Branch-and-bound search over the aggressor alignment window.

    The exhaustive alignment sweep solves one transient per grid
    point. Most alignments are not worth solving: [search] solves a
    coarse sub-grid (batched through the lockstep kernel),
    upper-bounds every unexplored bracket — from a superposition
    estimate on the linear coupled interconnect
    ({!Interconnect.Noise_bound}) capping the total delay push-out,
    and from a Piyavskii-style Lipschitz rate estimated out of the
    secant slopes between solved neighbors — and bisects only
    brackets whose bound still exceeds the incumbent by more than the
    coverage slack [prune_tol_ps]. The returned worst case is within
    [prune_tol_ps] of the exhaustive sweep's whenever the rate
    estimate holds (enforced empirically by the bench gate and the
    property tests), and every alignment actually solved is
    byte-identical to the exhaustive solve there. With
    [prune_tol_ps = 0] the search degenerates to the exhaustive
    sweep, byte-for-byte. *)

(** Global lifetime counters, mirroring {!Spice.Transient.Stats}. *)
module Stats : sig
  type snapshot = { solved : int; pruned : int; searches : int }

  val snapshot : unit -> snapshot
  val since : snapshot -> snapshot
  val record : solved:int -> pruned:int -> unit
  val reset : unit -> unit
end

type config = {
  prune_tol_ps : float;
      (** coverage slack in ps: a bracket is pruned once its upper
          bound exceeds the incumbent by no more than this, so the
          found worst case trails the true one by at most this much.
          0 disables pruning entirely (exhaustive sweep). *)
  coarse : int;  (** coarse-phase sub-grid size (endpoints included) *)
  safety : float;
      (** multiplier on every estimated rate (aggressor slew rate,
          push cap, observed secant slopes, activity window) *)
}

val default : config
(** [{ prune_tol_ps = 0.0; coarse = 9; safety = 1.5 }] — exhaustive
    unless a tolerance is asked for. *)

type stats = { total : int; solved : int; pruned : int; rounds : int }

type result = {
  best_index : int;  (** grid index of the worst-case alignment *)
  best_tau : float;
  best_delay : float;
  delays : float option array;
      (** per-grid-point mid-threshold delay; [None] = pruned *)
  stats : stats;
}

val mid_delay : Scenario.t -> Injection.run -> float
(** Receiver-output minus receiver-input last mid-threshold crossing.
    Raises {!Runtime.Failure.Error} [Missing_crossing] if either probe
    never crosses. *)

val delay_at :
  ?engine:Runtime.Engine.t -> Scenario.t -> noiseless:Injection.run ->
  tau:float -> float
(** Solve (or replay from cache) the noisy case at [tau] and measure
    {!mid_delay}. *)

(** The bound model, derived once from the noiseless run. Exposed for
    tests and for Monte-Carlo's overlap classification. *)
type model = {
  nominal : float;
  n_peak : float;
  s_min : float;
  push_cap : float;
  lambda : float;
  ov_lo : float;
  ov_hi : float;
}

val model : ?config:config -> Scenario.t -> noiseless:Injection.run -> model
(** Estimate the bound model. Degenerate noiseless runs (missing
    crossings, flat threshold band) yield a disabled model whose
    bounds are infinite — the search then prunes nothing. *)

val overlap_interval :
  ?config:config -> Scenario.t -> noiseless:Injection.run -> float * float
(** [(lo, hi)]: aggressor alignments outside this interval cannot
    inject noise during the victim's critical window, so their delay
    is the nominal one. *)

val bracket_bound :
  model ->
  lambda_obs:float ->
  d_lo:float -> d_hi:float -> tau_lo:float -> tau_hi:float -> float
(** Upper bound on the delay attainable strictly inside the bracket
    ([tau_lo], [tau_hi]) whose endpoints measured [d_lo] and [d_hi].
    [lambda_obs] is the caller's local Lipschitz-rate estimate
    (dimensionless, safety factor already applied); the tighter of it
    and the model's own rate is used. *)

val search :
  ?config:config -> ?engine:Runtime.Engine.t -> Scenario.t ->
  noiseless:Injection.run -> result
(** Run the search over [Scenario.taus scenario]. Solved rounds are
    warmed through {!Injection.prewarm_noisy} and fanned out with
    {!Runtime.Engine.submit_batch}; ties break toward the lowest grid
    index (first maximum wins), matching the exhaustive sweep. Updates
    {!Stats} and, when the engine carries a metrics registry, the
    [noise.alignments_solved] / [noise.alignments_pruned] counters. *)

val pp_stats : Format.formatter -> stats -> unit
