type t = {
  name : string;
  proc : Device.Process.t;
  n_aggressors : int;
  line : Interconnect.Rcline.spec;
  cm_total : float;
  input_slew : float;
  victim_rising : bool;
  aggressor_rising : bool;
  victim_t0 : float;
  window : float;
  window_offset : float;
  cases : int;
  dt : float;
  tstop : float;
  receiver : Device.Cell.t;
  load : Device.Cell.t;
}

(* Figure 1 values: R = 8.5 ohm and C = 4.8 fF per drawn section, three
   sections per 1000 um wire. We discretize with 6 sections while
   conserving the total R and C. *)
let line_1000um =
  Interconnect.Rcline.
    { rtotal = 3.0 *. 8.5; ctotal = 3.0 *. 4.8e-15; nsegs = 6 }

let line_500um =
  Interconnect.Rcline.
    { rtotal = 1.5 *. 8.5; ctotal = 1.5 *. 4.8e-15; nsegs = 6 }

let config_i =
  {
    name = "Configuration I";
    proc = Device.Process.c13;
    n_aggressors = 1;
    line = line_1000um;
    cm_total = 100e-15;
    input_slew = 150e-12;
    victim_rising = true;
    aggressor_rising = false;
    victim_t0 = 1.2e-9;
    window = 1.0e-9;
    window_offset = -0.28e-9;
    cases = 200;
    dt = 2e-12;
    tstop = 3.6e-9;
    receiver = Device.Cell.inv_x16;
    load = Device.Cell.inv_x64;
  }

let config_ii =
  {
    config_i with
    name = "Configuration II";
    n_aggressors = 2;
    line = line_500um;
  }

(* The non-overlapping-transition extension: a two-stage buffer receiver
   whose intrinsic delay separates the input and output transitions --
   the case the paper says WLS5 cannot handle and SGDP's pre-shift
   fixes. *)
let config_i_buffer =
  {
    config_i with
    name = "Configuration I (BUFx16 receiver)";
    receiver = Device.Cell.buf_x16;
  }

let with_cases t cases = { t with cases }

(* Everything that shapes a simulation of this scenario, in lossless
   hex floats. [window]/[window_offset]/[cases] are deliberately
   excluded: they choose *which* taus get simulated, not what any
   single (scenario, tau) simulation computes, so cached cases stay
   valid when only the sweep changes. *)
let fingerprint t =
  String.concat "|"
    [
      "scenario";
      t.proc.Device.Process.name;
      string_of_int t.n_aggressors;
      Printf.sprintf "%h" t.line.Interconnect.Rcline.rtotal;
      Printf.sprintf "%h" t.line.Interconnect.Rcline.ctotal;
      string_of_int t.line.Interconnect.Rcline.nsegs;
      Printf.sprintf "%h" t.cm_total;
      Printf.sprintf "%h" t.input_slew;
      string_of_bool t.victim_rising;
      string_of_bool t.aggressor_rising;
      Printf.sprintf "%h" t.victim_t0;
      Printf.sprintf "%h" t.dt;
      Printf.sprintf "%h" t.tstop;
      t.receiver.Device.Cell.name;
      t.load.Device.Cell.name;
    ]

let taus t =
  if t.cases < 1 then invalid_arg "Scenario.taus: no cases";
  let lo = t.victim_t0 +. t.window_offset -. (t.window /. 2.0) in
  if t.cases = 1 then [| t.victim_t0 +. t.window_offset |]
  else
    Array.init t.cases (fun i ->
        lo +. (t.window *. float_of_int i /. float_of_int (t.cases - 1)))

(* The victim sits between the aggressors when there are two of them
   (Config II's x1 / y / x2 arrangement); with one aggressor the order
   is victim first. *)
let line_order t =
  match t.n_aggressors with
  | 1 -> [ `Victim; `Aggressor 0 ]
  | 2 -> [ `Aggressor 0; `Victim; `Aggressor 1 ]
  | n ->
      List.init (n + 1) (fun i -> if i = 0 then `Victim else `Aggressor (i - 1))

let victim_line_index t =
  let rec find i = function
    | `Victim :: _ -> i
    | `Aggressor _ :: rest -> find (i + 1) rest
    | [] -> invalid_arg "Scenario.victim_line_index"
  in
  find 0 (line_order t)

let chain_prefix t k =
  if k = victim_line_index t then "vic" else Printf.sprintf "agg%d" k

let victim_far_node t =
  Printf.sprintf "bus%d.%d" (victim_line_index t) t.line.Interconnect.Rcline.nsegs

let victim_rcv_node t = chain_prefix t (victim_line_index t) ^ ".rcv"

let chain_cells t = Device.Cell.(inv_x1, inv_x4, t.receiver, t.load)

(* One signal path: source -> INVx1 -> INVx4 -> (near end of its line);
   the far ends are wired to receiver -> load below. *)
let build t ~aggressor_active ~tau =
  let open Spice in
  let x1, x4, rcv_cell, load_cell = chain_cells t in
  let proc = t.proc in
  let vdd_v = proc.Device.Process.vdd in
  let ckt = Circuit.create () in
  let vdd = Device.Cell.attach_supply proc ckt in
  let hints = ref [ ("vdd", vdd_v) ] in
  let hint name v = hints := (name, v) :: !hints in
  let order = line_order t in
  (* Full-swing ramp duration for the requested 10-90 slew. *)
  let th = Device.Process.thresholds proc in
  let frac =
    th.Waveform.Thresholds.high_frac -. th.Waveform.Thresholds.low_frac
  in
  let trans = t.input_slew /. frac in
  let front_end k role =
    let p = chain_prefix t k in
    let input = Circuit.node ckt (p ^ ".in") in
    let d1 = Circuit.node ckt (p ^ ".d1") in
    let near = Circuit.node ckt (p ^ ".near") in
    let rising, active, t0 =
      match role with
      | `Victim -> (t.victim_rising, true, t.victim_t0)
      | `Aggressor _ -> (t.aggressor_rising, aggressor_active, tau)
    in
    let v0, v1 = if rising then (0.0, vdd_v) else (vdd_v, 0.0) in
    let src =
      if active then Source.ramp ~t0 ~v0 ~v1 ~trans else Source.dc v0
    in
    Circuit.vsource ckt input src;
    Device.Cell.instantiate proc x1 ~ckt ~input ~output:d1 ~vdd_node:vdd
      ~name:(p ^ ".u1");
    Device.Cell.instantiate proc x4 ~ckt ~input:d1 ~output:near ~vdd_node:vdd
      ~name:(p ^ ".u4");
    (* Logic levels before the transition, for the DC solve. *)
    hint (p ^ ".in") v0;
    hint (p ^ ".d1") (vdd_v -. v0);
    hint (p ^ ".near") v0;
    (near, v0)
  in
  let fronts = List.mapi (fun k role -> front_end k role) order in
  let nears = List.map fst fronts in
  let spec =
    Interconnect.Coupled.make ~line:t.line
      ~nlines:(List.length order)
      ~cm_total:t.cm_total
  in
  let fars = Interconnect.Coupled.build ckt ~prefix:"bus" ~nears spec in
  List.iteri
    (fun k far ->
      let p = chain_prefix t k in
      let v0 = snd (List.nth fronts k) in
      let rcv = Circuit.node ckt (p ^ ".rcv") in
      let buf = Circuit.node ckt (p ^ ".buf") in
      Device.Cell.instantiate proc rcv_cell ~ckt ~input:far ~output:rcv
        ~vdd_node:vdd ~name:(p ^ ".u16");
      Device.Cell.instantiate proc load_cell ~ckt ~input:rcv ~output:buf
        ~vdd_node:vdd ~name:(p ^ ".u64");
      (* Line boundaries idle at the near-end driver level. *)
      for i = 1 to t.line.Interconnect.Rcline.nsegs do
        hint (Printf.sprintf "bus%d.%d" k i) v0
      done;
      let rcv_v =
        if Device.Cell.inverting rcv_cell then vdd_v -. v0 else v0
      in
      hint (p ^ ".rcv") rcv_v;
      let buf_v =
        if Device.Cell.inverting load_cell then vdd_v -. rcv_v else rcv_v
      in
      hint (p ^ ".buf") buf_v)
    fars;
  (ckt, !hints)
