(* Branch-and-bound search over the aggressor alignment window.

   The exhaustive sweep solves one transient per grid point; most of
   those solves are provably non-critical. Two bound sources cap what
   any unexplored bracket between solved alignments can reach:

   - a physical model from the linear coupled interconnect: a cheap
     superposition estimate (Devgan's bound, [Interconnect.Noise_bound])
     of the worst noise any alignment can inject caps the total delay
     push-out ([nominal + push_cap]: the noise moves the measured
     crossing by at most its own amplitude along the victim's slowest
     in-band slope) and pins brackets whose aggressor activity window
     cannot overlap the victim's critical (threshold-band) window to
     the nominal delay;
   - a Piyavskii-style estimated Lipschitz rate: delay-vs-tau is an
     RC-smoothed landscape, so the secant slopes between already
     solved neighbors of a bracket, scaled by [safety], estimate how
     fast the delay can move inside it. A bracket is then bounded by
     max(d_lo, d_hi) + rate * w/2 with w the bracket width.

   Each refinement round bisects only the brackets whose bound still
   exceeds the incumbent by more than the coverage slack
   [prune_tol_ps] — the returned worst-case delay is therefore within
   [prune_tol_ps] of the exhaustive sweep's whenever the rate estimate
   holds, and every alignment the search did solve is byte-identical
   to the exhaustive solve at that grid point. Pruned brackets are
   discarded for good (the incumbent only grows, so the decision is
   final); each round's midpoints are batch-solved through the
   lockstep kernel.

   The model terms are conservative estimates and the observed-slope
   rate is an estimate outright (both carry the [safety] factor); the
   bench sweep gate and the property tests enforce the agreement
   empirically. [prune_tol_ps = 0] bypasses the bounds entirely and
   reproduces the exhaustive sweep byte-for-byte. *)

module Stats = struct
  let solved = Atomic.make 0
  let pruned = Atomic.make 0
  let searches = Atomic.make 0

  type snapshot = { solved : int; pruned : int; searches : int }

  let snapshot () =
    {
      solved = Atomic.get solved;
      pruned = Atomic.get pruned;
      searches = Atomic.get searches;
    }

  let since (s : snapshot) =
    {
      solved = Atomic.get solved - s.solved;
      pruned = Atomic.get pruned - s.pruned;
      searches = Atomic.get searches - s.searches;
    }

  let record ~solved:ns ~pruned:np =
    ignore (Atomic.fetch_and_add solved ns);
    ignore (Atomic.fetch_and_add pruned np);
    ignore (Atomic.fetch_and_add searches 1)

  let reset () =
    Atomic.set solved 0;
    Atomic.set pruned 0;
    Atomic.set searches 0
end

type config = { prune_tol_ps : float; coarse : int; safety : float }

let default = { prune_tol_ps = 0.0; coarse = 9; safety = 1.5 }

type stats = { total : int; solved : int; pruned : int; rounds : int }

type result = {
  best_index : int;
  best_tau : float;
  best_delay : float;
  delays : float option array;
  stats : stats;
}

let mid_delay scenario run =
  let th = Device.Process.thresholds scenario.Scenario.proc in
  let vm = Waveform.Thresholds.v_mid th in
  match
    ( Waveform.Wave.last_crossing run.Injection.far vm,
      Waveform.Wave.last_crossing run.Injection.rcv vm )
  with
  | Some ti, Some ty -> ty -. ti
  | _ ->
      Runtime.Failure.fail
        (Missing_crossing { what = "alignment probe"; level = vm })

let delay_at ?engine scenario ~noiseless:_ ~tau =
  mid_delay scenario (Injection.noisy ?engine scenario ~tau)

(* ------------------------------------------------------------------ *)
(* Bound model                                                         *)

type model = {
  nominal : float;   (* noiseless mid-threshold delay, seconds *)
  n_peak : float;    (* Devgan peak-noise bound at the far end, volts *)
  s_min : float;     (* slowest |dV/dt| of the noiseless far wave
                        inside the threshold band, V/s *)
  push_cap : float;  (* max delay push-out any alignment can cause, s *)
  lambda : float;    (* max |d(delay)/d(tau)|, dimensionless *)
  ov_lo : float;     (* tau range whose aggressor activity can overlap *)
  ov_hi : float;     (* the victim's critical window at all *)
}

(* A model with every term disabled: bounds are infinite, the overlap
   interval covers every tau — branch-and-bound degenerates to the
   exhaustive sweep. Used when the noiseless run is too degenerate to
   estimate from (missing crossings, flat band). *)
let unbounded nominal =
  {
    nominal;
    n_peak = infinity;
    s_min = 0.0;
    push_cap = infinity;
    lambda = infinity;
    ov_lo = neg_infinity;
    ov_hi = infinity;
  }

let model ?(config = default) scenario ~noiseless =
  let nominal = mid_delay scenario noiseless in
  let th = Device.Process.thresholds scenario.Scenario.proc in
  let vl = Waveform.Thresholds.v_low th
  and vh = Waveform.Thresholds.v_high th in
  let far = noiseless.Injection.far and rcv = noiseless.Injection.rcv in
  let line = scenario.Scenario.line in
  match Waveform.Wave.slew far th with
  | None -> unbounded nominal
  | Some slew_far when slew_far <= 0.0 -> unbounded nominal
  | Some slew_far -> (
      (* Slowest in-band slope of the victim's own transition: the
         noise-to-delay conversion gain is 1/s at the crossing, and
         s_min is the worst case over the band. *)
      let ts = Waveform.Wave.times far
      and vs = Waveform.Wave.values far
      and dv = Waveform.Wave.values (Waveform.Wave.derivative far) in
      let s_min = ref infinity in
      Array.iteri
        (fun i v ->
          if v >= vl && v <= vh then begin
            let s = Float.abs dv.(i) in
            if s < !s_min then s_min := s
          end)
        vs;
      ignore ts;
      let s_min = !s_min in
      if not (Float.is_finite s_min) || s_min <= 0.0 then unbounded nominal
      else
        (* Aggressor far-end slew rate: the aggressor chain is the
           victim chain, so its measured far-end slew is the estimate;
           nearer coupling sections slew faster, hence the safety
           factor on the rate. *)
        let mu = config.safety *. (vh -. vl) /. slew_far in
        (* Effective holding resistance of the victim driver, backed
           out of the measured far-end slew against the line load. *)
        let r_drv =
          Float.max 1.0
            ((slew_far /. (2.2 *. line.Interconnect.Rcline.ctotal))
            -. (line.Interconnect.Rcline.rtotal /. 2.0))
        in
        let n_peak =
          float_of_int scenario.Scenario.n_aggressors
          *. Interconnect.Noise_bound.line_bound ~driver_resistance:r_drv
               ~line ~cm_total:scenario.Scenario.cm_total
               ~aggressor_slew_rate:mu
        in
        let push_cap = config.safety *. 2.0 *. n_peak /. s_min in
        (* Noise-induced slope perturbation scale: the injected bump
           rises and falls within one aggressor transition, so its
           slope is at most ~2 N_peak / slew. *)
        let d_slope = 2.0 *. n_peak /. slew_far in
        let lambda =
          config.safety *. d_slope /. Float.max (s_min -. d_slope) (s_min /. 2.0)
        in
        (* Critical window: while either probe is inside the threshold
           band, noise can move a measured crossing. Outside it — with
           margin for the push itself and the line's settling time —
           the waves sit at their rails and the measurement is
           insensitive. *)
        let rc =
          (r_drv +. line.Interconnect.Rcline.rtotal)
          *. (line.Interconnect.Rcline.ctotal
             +. (scenario.Scenario.cm_total
                *. float_of_int scenario.Scenario.n_aggressors))
        in
        let crossings w =
          List.filter_map Fun.id
            [
              Waveform.Wave.first_crossing w vl;
              Waveform.Wave.first_crossing w vh;
              Waveform.Wave.last_crossing w vl;
              Waveform.Wave.last_crossing w vh;
            ]
        in
        match (crossings far, crossings rcv) with
        | [], _ | _, [] -> unbounded nominal
        | cf, cr ->
            let all = cf @ cr in
            let t_enter = List.fold_left Float.min infinity all in
            let t_exit = List.fold_left Float.max neg_infinity all in
            let margin = push_cap +. (3.0 *. rc) in
            let crit_lo = t_enter -. margin and crit_hi = t_exit +. margin in
            (* Aggressor activity after its input starts at tau: the
               chain latency mirrors the victim's own (identical
               stages), scaled by the safety factor, plus settling. *)
            let t_exit_far = List.fold_left Float.max neg_infinity cf in
            let act_hi =
              (config.safety *. (t_exit_far -. scenario.Scenario.victim_t0))
              +. (3.0 *. rc)
            in
            {
              nominal;
              n_peak;
              s_min;
              push_cap;
              lambda;
              ov_lo = crit_lo -. act_hi;
              ov_hi = crit_hi;
            })

let overlap_interval ?config scenario ~noiseless =
  let m = model ?config scenario ~noiseless in
  (m.ov_lo, m.ov_hi)

let bracket_bound m ~lambda_obs ~d_lo ~d_hi ~tau_lo ~tau_hi =
  let base = Float.max d_lo d_hi in
  if tau_hi <= m.ov_lo || tau_lo >= m.ov_hi then Float.max m.nominal base
  else
    (* Both rates over-estimate; trust the tighter one. *)
    let rate = Float.min m.lambda lambda_obs in
    Float.min (m.nominal +. m.push_cap)
      (base +. (rate *. ((tau_hi -. tau_lo) /. 2.0)))

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let search ?(config = default) ?engine scenario ~noiseless =
  let engine = Runtime.Engine.resolve engine in
  let taus = Scenario.taus scenario in
  let n = Array.length taus in
  let delays = Array.make n None in
  let rounds = ref 0 in
  (* Solve a round of grid indices: warm the lockstep batch kernel,
     then fan the (now cached) probes out over the pool. *)
  let solve_round idxs =
    match idxs with
    | [] -> ()
    | _ ->
        incr rounds;
        let arr = Array.of_list idxs in
        let k = Array.length arr in
        ignore
          (Injection.prewarm_noisy ~engine scenario
             (Array.map (fun i -> taus.(i)) arr));
        let ds =
          Runtime.Engine.submit_batch engine k (fun j ->
              delay_at ~engine scenario ~noiseless ~tau:taus.(arr.(j)))
        in
        Array.iteri (fun j d -> delays.(arr.(j)) <- Some d) ds
  in
  let tol = config.prune_tol_ps *. 1e-12 in
  if tol <= 0.0 || n <= Int.max 2 config.coarse then
    (* Exhaustive: solve every grid point in index order — exactly the
       sweep branch-and-bound replaces, byte for byte. *)
    solve_round (List.init n Fun.id)
  else begin
    let m = model ~config scenario ~noiseless in
    (* Coarse phase: an evenly spread sub-grid, endpoints included. *)
    let c = Int.min config.coarse n in
    let coarse =
      List.sort_uniq compare
        (List.init c (fun k -> ((k * (n - 1)) + ((c - 1) / 2)) / (c - 1)))
    in
    solve_round coarse;
    (* Refine: bisect every unsolved gap whose bound still exceeds the
       incumbent by more than the coverage slack; the rest are pruned
       for good (the incumbent only grows, so the decision is final). *)
    let exhausted = ref false in
    while not !exhausted do
      let incumbent =
        Array.fold_left
          (fun acc -> function Some d -> Float.max acc d | None -> acc)
          neg_infinity delays
      in
      (* Ascending solved grid points, and the secant slope between
         consecutive ones — the local rate samples the Piyavskii-style
         estimate is built from. *)
      let ids =
        let acc = ref [] in
        for i = n - 1 downto 0 do
          match delays.(i) with
          | Some d -> acc := (i, d) :: !acc
          | None -> ()
        done;
        Array.of_list !acc
      in
      let k = Array.length ids in
      let slope j =
        let i0, d0 = ids.(j) and i1, d1 = ids.(j + 1) in
        Float.abs (d1 -. d0)
        /. Float.max epsilon_float (taus.(i1) -. taus.(i0))
      in
      let mids = ref [] in
      for j = 0 to k - 2 do
        let i0, d_lo = ids.(j) and i1, d_hi = ids.(j + 1) in
        if i1 > i0 + 1 then begin
          (* The bracket's own secant plus its solved neighbors': a
             peak hiding between flat endpoints still shows a slope on
             one of the flanks once the coarse grid straddles it. *)
          let lam = ref (slope j) in
          if j > 0 then lam := Float.max !lam (slope (j - 1));
          if j + 2 <= k - 1 then lam := Float.max !lam (slope (j + 1));
          let lambda_obs = config.safety *. !lam in
          let b =
            bracket_bound m ~lambda_obs ~d_lo ~d_hi ~tau_lo:taus.(i0)
              ~tau_hi:taus.(i1)
          in
          if b > incumbent +. tol then mids := ((i0 + i1) / 2) :: !mids
        end
      done;
      (match !mids with
      | [] -> exhausted := true
      | ms -> solve_round (List.rev ms))
    done
  end;
  (* The final argmax scans solved points in ascending grid order, so
     the first-maximum-wins tie rule matches the exhaustive sweep. *)
  let best_index = ref (-1) and best = ref neg_infinity in
  Array.iteri
    (fun i -> function
      | Some d -> if !best_index < 0 || d > !best then begin
            best_index := i;
            best := d
          end
      | None -> ())
    delays;
  if !best_index < 0 then
    Runtime.Failure.fail
      (Unsupported { what = "Alignment.search: empty alignment grid" });
  let solved =
    Array.fold_left
      (fun acc d -> if d = None then acc else acc + 1)
      0 delays
  in
  let stats =
    { total = n; solved; pruned = n - solved; rounds = !rounds }
  in
  Stats.record ~solved ~pruned:stats.pruned;
  (match Runtime.Engine.metrics engine with
  | Some mtr ->
      Runtime.Metrics.incr ~n:solved mtr "noise.alignments_solved";
      Runtime.Metrics.incr ~n:stats.pruned mtr "noise.alignments_pruned"
  | None -> ());
  {
    best_index = !best_index;
    best_tau = taus.(!best_index);
    best_delay = !best;
    delays;
    stats;
  }

let pp_stats ppf s =
  Format.fprintf ppf "%d/%d alignments solved (%d pruned, %d rounds)"
    s.solved s.total s.pruned s.rounds
