(** Crosstalk-injection simulation runs.

    [noiseless] and [noisy] run the full Figure-1 chain with the
    transistor-level engine; [receiver_response] re-applies an
    arbitrary stimulus (a technique's Gamma_eff, or the recorded noisy
    waveform) to the isolated receiver — the paper's gate-delay
    propagation step.

    All entry points take a [?engine] ({!Runtime.Engine.t}) selecting
    the solver configuration and cache; under an adaptive engine the
    process 10/50/90 thresholds are installed as crossing-refinement
    levels unless the engine configured its own. [?cache] is a
    deprecated alias kept for the PR-1 call sites — it is honored only
    when the engine (if any) carries no cache of its own.

    Every solve runs under the engine's {!Runtime.Resilience.policy}:
    a failed or invalid attempt walks the fallback ladder, and results
    are validated post-solve (finite samples, within rails; the
    full-chain runs additionally require a 0.5 Vdd crossing on both
    probes). A cached waveform that fails validation is purged before
    the ladder retries. An exhausted ladder raises
    [Runtime.Failure.Error] carrying the typed failure — callers in
    sweep loops catch it into failed rows. *)

type run = {
  far : Waveform.Wave.t; (** victim far end, the receiver's input pin (in_u) *)
  rcv : Waveform.Wave.t; (** receiver (INVx16) output (out_u) *)
}

val noiseless :
  ?cache:Runtime.Cache.t -> ?engine:Runtime.Engine.t -> Scenario.t -> run
(** Victim switches alone; aggressors hold their rails. With a cache,
    the run is memoized under the scenario's content fingerprint plus
    the full solver-config fingerprint. *)

val noisy :
  ?cache:Runtime.Cache.t -> ?engine:Runtime.Engine.t ->
  Scenario.t -> tau:float -> run
(** Victim switches at its nominal time, aggressors start at [tau]. *)

val receiver_response :
  ?dt:float -> ?cache:Runtime.Cache.t -> ?engine:Runtime.Engine.t ->
  Scenario.t -> input:Spice.Source.t -> tstop:float ->
  Waveform.Wave.t
(** Drive the victim receiver (INVx16 loaded by INVx64) with an ideal
    source and return the INVx16 output waveform. [dt] defaults to half
    the scenario's full-chain step. Cacheable for every stimulus with a
    content fingerprint; opaque [Source.fn] stimuli always simulate. *)

val ctx_of_runs :
  ?samples:int -> Scenario.t -> noiseless:run -> noisy:run ->
  Eqwave.Technique.ctx
(** Assemble the technique context from the two simulation runs. *)
