(** Crosstalk-injection simulation runs.

    [noiseless] and [noisy] run the full Figure-1 chain with the
    transistor-level engine; [receiver_response] re-applies an
    arbitrary stimulus (a technique's Gamma_eff, or the recorded noisy
    waveform) to the isolated receiver — the paper's gate-delay
    propagation step.

    All entry points take a [?engine] ({!Runtime.Engine.t}) selecting
    the solver configuration and cache; under an adaptive engine the
    process 10/50/90 thresholds are installed as crossing-refinement
    levels unless the engine configured its own.

    Every solve runs under the engine's {!Runtime.Resilience.policy}:
    a failed or invalid attempt walks the fallback ladder, and results
    are validated post-solve (finite samples, within rails; the
    full-chain runs additionally require a 0.5 Vdd crossing on both
    probes). A cached waveform that fails validation is purged before
    the ladder retries. An exhausted ladder raises
    [Runtime.Failure.Error] carrying the typed failure — callers in
    sweep loops catch it into failed rows. *)

type run = {
  far : Waveform.Wave.t; (** victim far end, the receiver's input pin (in_u) *)
  rcv : Waveform.Wave.t; (** receiver (INVx16) output (out_u) *)
}

val noiseless : ?engine:Runtime.Engine.t -> Scenario.t -> run
(** Victim switches alone; aggressors hold their rails. With a cached
    engine, the run is memoized under the scenario's content
    fingerprint plus the full solver-config fingerprint. *)

val noisy : ?engine:Runtime.Engine.t -> Scenario.t -> tau:float -> run
(** Victim switches at its nominal time, aggressors start at [tau]. *)

val prewarm_noisy :
  ?engine:Runtime.Engine.t -> Scenario.t -> float array -> int
(** Batch-first warm-up for an alignment sweep: solve every
    not-yet-cached alignment through the lockstep multi-case kernel
    ({!Spice.Transient.run_batch_outcomes}) and publish the validated
    results into the engine's cache under the keys the scalar {!noisy}
    path reads, so the sweep's subsequent per-case calls are cache
    hits. Cases that fail to solve or validate are left uncached and
    fall back to the scalar resilience ladder when the sweep reaches
    them. Returns the number of cases the batch kernel solved; 0
    without a cache (there is nowhere to publish) and 0 when a fault
    plan is armed (warming would reorder solve-index fault
    assignment). *)

val receiver_response :
  ?dt:float -> ?engine:Runtime.Engine.t ->
  Scenario.t -> input:Spice.Source.t -> tstop:float ->
  Waveform.Wave.t
(** Drive the victim receiver (INVx16 loaded by INVx64) with an ideal
    source and return the INVx16 output waveform. [dt] defaults to half
    the scenario's full-chain step. Cacheable for every stimulus with a
    content fingerprint; opaque [Source.fn] stimuli always simulate. *)

val ctx_of_runs :
  ?samples:int -> Scenario.t -> noiseless:run -> noisy:run ->
  Eqwave.Technique.ctx
(** Assemble the technique context from the two simulation runs. *)
