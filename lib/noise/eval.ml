type reference = Replay | Chain

type case_metrics = {
  technique : string;
  ramp : Waveform.Ramp.t option;
  delay_est : float option;
  delay_err : float option;
  out_arrival_err : float option;
  out_slew_err : float option;
  failure : Runtime.Failure.t option;
}

type case_eval = {
  tau : float;
  delay_ref : float;
  ref_out_arrival : float;
  chain_vs_replay : float;
  metrics : case_metrics list;
}

let mid_crossing th w what =
  let level = Waveform.Thresholds.v_mid th in
  match Waveform.Wave.last_crossing w level with
  | Some t -> t
  | None -> Runtime.Failure.fail (Missing_crossing { what; level })

let failed tech f =
  {
    technique = tech;
    ramp = None;
    delay_est = None;
    delay_err = None;
    out_arrival_err = None;
    out_slew_err = None;
    failure = Some f;
  }

(* Classify an exception escaping a case evaluation into a typed
   failure, or None for genuine bugs that must propagate. Techniques
   signal domain errors with [Stdlib.Failure]. *)
let failure_of_exn = function
  | Eqwave.Technique.Unsupported msg ->
      Some (Runtime.Failure.Unsupported { what = msg })
  | Stdlib.Failure msg -> Some (Runtime.Failure.Unsupported { what = msg })
  | e -> Runtime.Failure.of_exn e

(* A case whose reference simulation itself failed beyond recovery:
   every technique is reported failed and the reference figures are nan
   sentinels. The row summaries never read delay fields of failed
   metrics, so the nans stay contained; [n_failed] carries the story. *)
let failed_case techniques ~tau msg =
  {
    tau;
    delay_ref = Float.nan;
    ref_out_arrival = Float.nan;
    chain_vs_replay = Float.nan;
    metrics =
      List.map
        (fun (tech : Eqwave.Technique.t) ->
          failed tech.Eqwave.Technique.name msg)
        techniques;
  }

let evaluate_case ?(reference = Replay) ?techniques ?samples ?cache ?engine
    scenario ~noiseless ~tau =
  let engine = Runtime.Engine.resolve ?cache engine in
  let techniques =
    match techniques with Some ts -> ts | None -> Eqwave.Registry.all
  in
  let th = Device.Process.thresholds scenario.Scenario.proc in
  let noisy = Injection.noisy ~engine scenario ~tau in
  let ctx = Injection.ctx_of_runs ?samples scenario ~noiseless ~noisy in
  let tstop = scenario.Scenario.tstop in
  let t_in = mid_crossing th noisy.Injection.far "noisy input" in
  (* Reference: replay the recorded noisy waveform into the receiver. *)
  let replay_out =
    Injection.receiver_response ~engine scenario
      ~input:(Spice.Source.of_wave noisy.Injection.far)
      ~tstop
  in
  let t_out_replay = mid_crossing th replay_out "replayed output" in
  let t_out_chain = mid_crossing th noisy.Injection.rcv "chain output" in
  let t_out_ref =
    match reference with Replay -> t_out_replay | Chain -> t_out_chain
  in
  let delay_ref = t_out_ref -. t_in in
  let ref_out_slew = Waveform.Wave.slew replay_out th in
  let eval_technique (tech : Eqwave.Technique.t) =
    let name = tech.Eqwave.Technique.name in
    match tech.Eqwave.Technique.run ctx with
    | exception Eqwave.Technique.Unsupported msg ->
        failed name (Runtime.Failure.Unsupported { what = msg })
    | exception Stdlib.Failure msg ->
        failed name (Runtime.Failure.Unsupported { what = msg })
    | ramp -> (
        (* Give the receiver enough room to see the whole equivalent
           ramp plus its own response, wherever the fit landed. *)
        let tstop =
          Float.max tstop (Waveform.Ramp.t_settle ramp +. 1.5e-9)
        in
        match
          Injection.receiver_response ~engine scenario
            ~input:(Spice.Source.of_ramp ramp) ~tstop
        with
        | exception Runtime.Failure.Error f -> failed name f
        | exception Spice.Transient.No_convergence at ->
            failed name (Runtime.Failure.Non_convergence { at })
        | out -> (
            match mid_crossing th out "technique output" with
            | exception Runtime.Failure.Error f -> failed name f
            | t_out_est ->
                let t_in_est = Waveform.Ramp.arrival ramp th in
                let delay_est = t_out_est -. t_in_est in
                let out_slew_err =
                  match (Waveform.Wave.slew out th, ref_out_slew) with
                  | Some a, Some b -> Some (a -. b)
                  | _ -> None
                in
                {
                  technique = name;
                  ramp = Some ramp;
                  delay_est = Some delay_est;
                  delay_err = Some (delay_est -. delay_ref);
                  out_arrival_err = Some (t_out_est -. t_out_ref);
                  out_slew_err;
                  failure = None;
                }))
  in
  {
    tau;
    delay_ref;
    ref_out_arrival = t_out_ref;
    chain_vs_replay = t_out_chain -. t_out_replay;
    metrics = List.map eval_technique techniques;
  }

type row = {
  name : string;
  max_abs_ps : float;
  avg_abs_ps : float;
  n_cases : int;
  n_failed : int;
}

type table = {
  scenario : string;
  rows : row list;
  cases : case_eval list;
}

let summarize_rows techniques cases =
  (* Metrics are stored in technique order; index positionally so that
     several variants sharing a display name (ablations) stay distinct. *)
  List.mapi
    (fun idx (tech : Eqwave.Technique.t) ->
      let name = tech.Eqwave.Technique.name in
      let errs =
        List.filter_map
          (fun c ->
            List.nth_opt c.metrics idx
            |> Option.map (fun m -> m.delay_err)
            |> Option.join)
          cases
      in
      let failed =
        List.length cases - List.length errs
      in
      match errs with
      (* All cases failed: report honest zero counts, not nan
         sentinels that poison downstream max/avg arithmetic and JSON
         output; [n_failed] carries the story. *)
      | [] -> { name; max_abs_ps = 0.0; avg_abs_ps = 0.0; n_cases = 0; n_failed = failed }
      | errs ->
          let abs_ps = Array.of_list (List.map (fun e -> abs_float e *. 1e12) errs) in
          {
            name;
            max_abs_ps = Numerics.Stats.max_abs abs_ps;
            avg_abs_ps = Numerics.Stats.mean abs_ps;
            n_cases = Array.length abs_ps;
            n_failed = failed;
          })
    techniques

(* Everything that determines a per-case result, so a checkpoint
   journal written by a different sweep (or an older payload layout)
   can never be replayed into this one. [Scenario.fingerprint]
   deliberately omits the alignment window and case count; the sweep
   cares, so they are appended here. *)
let sweep_fingerprint ~tag ~schema ?reference ?samples ~techs ~engine scenario
    extra =
  String.concat "|"
    ([
       tag;
       schema;
       Scenario.fingerprint scenario;
       Printf.sprintf "%h" scenario.Scenario.window;
       Printf.sprintf "%h" scenario.Scenario.window_offset;
       string_of_int scenario.Scenario.cases;
       Spice.Transient.config_fingerprint (Runtime.Engine.solver engine);
       Runtime.Resilience.fingerprint (Runtime.Engine.resilience engine);
       (match reference with
       | Some Chain -> "chain"
       | Some Replay | None -> "replay");
       (match samples with Some n -> string_of_int n | None -> "default");
     ]
    @ List.map (fun (t : Eqwave.Technique.t) -> t.Eqwave.Technique.name) techs
    @ extra)

let run_table ?reference ?techniques ?samples ?progress ?checkpoint_dir ?pool
    ?cache ?engine scenario =
  let engine = Runtime.Engine.resolve ?pool ?cache engine in
  let techs =
    match techniques with Some ts -> ts | None -> Eqwave.Registry.all
  in
  (* The noiseless run is shared by every case; if it fails beyond the
     fallback ladder the whole sweep is unmeasurable, but that is still
     reported as rows full of typed failed cases rather than an
     escaping exception — sweeps must always return a table. *)
  let noiseless =
    match Injection.noiseless ~engine scenario with
    | r -> Ok r
    | exception Runtime.Failure.Error f -> Error f
    | exception Spice.Transient.No_convergence at ->
        Error (Runtime.Failure.Non_convergence { at })
  in
  let taus = Scenario.taus scenario in
  let total = Array.length taus in
  let checkpoint =
    match checkpoint_dir with
    | None -> None
    | Some dir ->
        Some
          (Runtime.Checkpoint.open_ ~dir
             ~name:("table1-" ^ scenario.Scenario.name)
             ~fingerprint:
               (sweep_fingerprint ~tag:"eval.run_table" ~schema:"case_eval/1"
                  ?reference ?samples ~techs ~engine scenario []))
  in
  (* Cases are independent pure simulations: sweep them on the pool.
     Results land in input order, so parallel output is identical to
     the sequential path. Progress reports completion count, which is
     monotone but not index-ordered under parallelism. *)
  let completed = Atomic.make 0 in
  let compute i =
    match noiseless with
    | Error f -> failed_case techs ~tau:taus.(i) f
    | Ok noiseless -> (
        match
          evaluate_case ?reference ~techniques:techs ?samples ~engine
            scenario ~noiseless ~tau:taus.(i)
        with
        | c -> c
        | exception e -> (
            match failure_of_exn e with
            | Some f -> failed_case techs ~tau:taus.(i) f
            | None -> raise e))
  in
  let eval i =
    let c =
      match checkpoint with
      | None -> compute i
      | Some cp -> (
          match Runtime.Checkpoint.find cp i with
          | Some (c : case_eval) -> c
          | None ->
              let c = compute i in
              Runtime.Checkpoint.record cp i c;
              c)
    in
    let k = 1 + Atomic.fetch_and_add completed 1 in
    (match progress with Some f -> f k total | None -> ());
    c
  in
  let cases =
    Array.to_list (Runtime.Pool.maybe_map (Runtime.Engine.pool engine) total eval)
  in
  {
    scenario = scenario.Scenario.name;
    rows = summarize_rows techs cases;
    cases;
  }

let pp_table ppf t =
  Format.fprintf ppf "@[<v>%s — gate delay error vs reference (ps)@," t.scenario;
  Format.fprintf ppf "%-8s %10s %10s %8s %8s@," "Method" "Max" "Avg" "cases"
    "failed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %10.1f %10.1f %8d %8d@," r.name r.max_abs_ps
        r.avg_abs_ps r.n_cases r.n_failed)
    t.rows;
  Format.fprintf ppf "@]"
