type reference = Replay | Chain

(* How the Gamma_eff ladder resolved a case: which rung accepted the
   waveform, what the degradation cost (RMS deviation of the accepted
   ramp from the sampled noisy waveform), and why earlier rungs
   skipped. Defined before [case_metrics] so the shared [technique]
   field resolves to the latter under type-directed disambiguation. *)
type degradation = {
  technique : string;
  rung : int;
  score_v : float;
  skipped : (string * string) list;
}

type case_metrics = {
  technique : string;
  ramp : Waveform.Ramp.t option;
  delay_est : float option;
  delay_err : float option;
  out_arrival_err : float option;
  out_slew_err : float option;
  failure : Runtime.Failure.t option;
}

type case_eval = {
  tau : float;
  delay_ref : float;
  ref_out_arrival : float;
  chain_vs_replay : float;
  mapping : (degradation, Runtime.Failure.t) result;
  metrics : case_metrics list;
}

let mid_crossing th w what =
  let level = Waveform.Thresholds.v_mid th in
  match Waveform.Wave.last_crossing w level with
  | Some t -> t
  | None -> Runtime.Failure.fail (Missing_crossing { what; level })

let failed tech f =
  {
    technique = tech;
    ramp = None;
    delay_est = None;
    delay_err = None;
    out_arrival_err = None;
    out_slew_err = None;
    failure = Some f;
  }

(* Classify an exception escaping a case evaluation into a typed
   failure, or None for genuine bugs that must propagate. Techniques
   signal domain errors with [Stdlib.Failure]. *)
let failure_of_exn = function
  | Eqwave.Technique.Unsupported msg ->
      Some (Runtime.Failure.Unsupported { what = msg })
  | Stdlib.Failure msg -> Some (Runtime.Failure.Unsupported { what = msg })
  | e -> Runtime.Failure.of_exn e

(* A case whose reference simulation itself failed beyond recovery:
   every technique is reported failed and the reference figures are nan
   sentinels. The row summaries never read delay fields of failed
   metrics, so the nans stay contained; [n_failed] carries the story. *)
let failed_case techniques ~tau msg =
  {
    tau;
    delay_ref = Float.nan;
    ref_out_arrival = Float.nan;
    chain_vs_replay = Float.nan;
    mapping = Error msg;
    metrics =
      List.map
        (fun (tech : Eqwave.Technique.t) ->
          failed tech.Eqwave.Technique.name msg)
        techniques;
  }

(* Run the degradation ladder over an already-built context and convert
   its result into the typed mapping carried on the case. *)
let run_ladder ?metrics ladder ctx =
  match Eqwave.Ladder.run ladder ctx with
  | Ok o ->
      (match metrics with
      | Some m ->
          Runtime.Metrics.incr m
            (Printf.sprintf "ladder.rung%d" o.Eqwave.Ladder.rung);
          if o.Eqwave.Ladder.rung > 0 then
            Runtime.Metrics.incr m "ladder.degraded"
      | None -> ());
      Ok
        {
          technique = o.Eqwave.Ladder.technique;
          rung = o.Eqwave.Ladder.rung;
          score_v = o.Eqwave.Ladder.score_v;
          skipped =
            List.map
              (fun (s : Eqwave.Ladder.skip) ->
                (s.Eqwave.Ladder.technique, s.Eqwave.Ladder.reason))
              o.Eqwave.Ladder.skipped;
        }
  | Error skips ->
      (match metrics with
      | Some m -> Runtime.Metrics.incr m "ladder.exhausted"
      | None -> ());
      let last =
        match List.rev skips with
        | s :: _ -> s.Eqwave.Ladder.reason
        | [] -> "empty ladder"
      in
      Error
        (Runtime.Failure.Mapping_exhausted
           { tried = List.length skips; last })

let evaluate_case ?(reference = Replay) ?techniques ?samples
    ?(ladder = Eqwave.Ladder.default) ?engine ?noisy scenario ~noiseless ~tau =
  let engine = Runtime.Engine.resolve engine in
  let techniques =
    match techniques with Some ts -> ts | None -> Eqwave.Registry.all
  in
  let th = Device.Process.thresholds scenario.Scenario.proc in
  (* [?noisy] lets a caller that already knows the case's waveforms —
     Monte-Carlo substituting the noiseless run for a provably
     non-overlapping draw — skip the simulation. *)
  let noisy =
    match noisy with
    | Some r -> r
    | None -> Injection.noisy ~engine scenario ~tau
  in
  let ctx = Injection.ctx_of_runs ?samples scenario ~noiseless ~noisy in
  let tstop = scenario.Scenario.tstop in
  let t_in = mid_crossing th noisy.Injection.far "noisy input" in
  (* Reference: replay the recorded noisy waveform into the receiver. *)
  let replay_out =
    Injection.receiver_response ~engine scenario
      ~input:(Spice.Source.of_wave noisy.Injection.far)
      ~tstop
  in
  let t_out_replay = mid_crossing th replay_out "replayed output" in
  let t_out_chain = mid_crossing th noisy.Injection.rcv "chain output" in
  let t_out_ref =
    match reference with Replay -> t_out_replay | Chain -> t_out_chain
  in
  let delay_ref = t_out_ref -. t_in in
  let ref_out_slew = Waveform.Wave.slew replay_out th in
  let eval_technique (tech : Eqwave.Technique.t) =
    let name = tech.Eqwave.Technique.name in
    match tech.Eqwave.Technique.run ctx with
    | exception Eqwave.Technique.Unsupported msg ->
        failed name (Runtime.Failure.Unsupported { what = msg })
    | exception Stdlib.Failure msg ->
        failed name (Runtime.Failure.Unsupported { what = msg })
    | ramp -> (
        (* Give the receiver enough room to see the whole equivalent
           ramp plus its own response, wherever the fit landed. *)
        let tstop =
          Float.max tstop (Waveform.Ramp.t_settle ramp +. 1.5e-9)
        in
        match
          Injection.receiver_response ~engine scenario
            ~input:(Spice.Source.of_ramp ramp) ~tstop
        with
        | exception Runtime.Failure.Error f -> failed name f
        | exception Spice.Transient.No_convergence at ->
            failed name (Runtime.Failure.Non_convergence { at })
        | out -> (
            match mid_crossing th out "technique output" with
            | exception Runtime.Failure.Error f -> failed name f
            | t_out_est ->
                let t_in_est = Waveform.Ramp.arrival ramp th in
                let delay_est = t_out_est -. t_in_est in
                let out_slew_err =
                  match (Waveform.Wave.slew out th, ref_out_slew) with
                  | Some a, Some b -> Some (a -. b)
                  | _ -> None
                in
                {
                  technique = name;
                  ramp = Some ramp;
                  delay_est = Some delay_est;
                  delay_err = Some (delay_est -. delay_ref);
                  out_arrival_err = Some (t_out_est -. t_out_ref);
                  out_slew_err;
                  failure = None;
                }))
  in
  (* The ladder mapping is a handful of array fits — microseconds next
     to the simulations above — so every case gets one. *)
  let mapping =
    run_ladder ?metrics:(Runtime.Engine.metrics engine) ladder ctx
  in
  {
    tau;
    delay_ref;
    ref_out_arrival = t_out_ref;
    chain_vs_replay = t_out_chain -. t_out_replay;
    mapping;
    metrics = List.map eval_technique techniques;
  }

type row = {
  name : string;
  max_abs_ps : float;
  avg_abs_ps : float;
  n_cases : int;
  n_failed : int;
}

(* Ladder outcome distribution over a sweep: [rung_counts.(k)] cases
   resolved at rung k; [n_exhausted] ran out of rungs; [n_unmapped]
   never reached the ladder (their reference simulation failed).
   [avg_score_v] averages the deviation score over the mapped cases. *)
type degradation_summary = {
  ladder : string list;
  rung_counts : int array;
  n_exhausted : int;
  n_unmapped : int;
  avg_score_v : float;
}

type table = {
  scenario : string;
  rows : row list;
  cases : case_eval list;
  degradation : degradation_summary;
  prune : Alignment.stats option;
      (** branch-and-bound accounting when the sweep ran pruned;
          [cases] then holds only the solved alignments *)
}

let summarize_rows techniques cases =
  (* Metrics are stored in technique order; index positionally so that
     several variants sharing a display name (ablations) stay distinct. *)
  List.mapi
    (fun idx (tech : Eqwave.Technique.t) ->
      let name = tech.Eqwave.Technique.name in
      let errs =
        List.filter_map
          (fun c ->
            List.nth_opt c.metrics idx
            |> Option.map (fun m -> m.delay_err)
            |> Option.join)
          cases
      in
      let failed =
        List.length cases - List.length errs
      in
      match errs with
      (* All cases failed: report honest zero counts, not nan
         sentinels that poison downstream max/avg arithmetic and JSON
         output; [n_failed] carries the story. *)
      | [] -> { name; max_abs_ps = 0.0; avg_abs_ps = 0.0; n_cases = 0; n_failed = failed }
      | errs ->
          let abs_ps = Array.of_list (List.map (fun e -> abs_float e *. 1e12) errs) in
          {
            name;
            max_abs_ps = Numerics.Stats.max_abs abs_ps;
            avg_abs_ps = Numerics.Stats.mean abs_ps;
            n_cases = Array.length abs_ps;
            n_failed = failed;
          })
    techniques

let summarize_degradation ladder cases =
  let names = Eqwave.Ladder.names ladder in
  let rung_counts = Array.make (Eqwave.Ladder.length ladder) 0 in
  let n_exhausted = ref 0 and n_unmapped = ref 0 in
  let score_sum = ref 0.0 and n_mapped = ref 0 in
  List.iter
    (fun c ->
      match c.mapping with
      | Ok d ->
          if d.rung < Array.length rung_counts then
            rung_counts.(d.rung) <- rung_counts.(d.rung) + 1;
          score_sum := !score_sum +. d.score_v;
          incr n_mapped
      | Error (Runtime.Failure.Mapping_exhausted _) -> incr n_exhausted
      | Error _ -> incr n_unmapped)
    cases;
  {
    ladder = names;
    rung_counts;
    n_exhausted = !n_exhausted;
    n_unmapped = !n_unmapped;
    avg_score_v =
      (if !n_mapped = 0 then 0.0 else !score_sum /. float_of_int !n_mapped);
  }

(* Everything that determines a per-case result, so a checkpoint
   journal written by a different sweep (or an older payload layout)
   can never be replayed into this one. [Scenario.fingerprint]
   deliberately omits the alignment window and case count; the sweep
   cares, so they are appended here. The degradation settings matter
   too: the ladder order decides which rung a case resolves at, the
   deadline decides which solves get cancelled, and a guard replays
   extra reference solves (shifting fault-injection indices) — so
   resumed journals must not mix any of them. *)
let sweep_fingerprint ~tag ~schema ?reference ?samples
    ?(ladder = Eqwave.Ladder.default) ~techs ~engine scenario extra =
  String.concat "|"
    ([
       tag;
       schema;
       Scenario.fingerprint scenario;
       Printf.sprintf "%h" scenario.Scenario.window;
       Printf.sprintf "%h" scenario.Scenario.window_offset;
       string_of_int scenario.Scenario.cases;
       Spice.Transient.config_fingerprint (Runtime.Engine.solver engine);
       Runtime.Resilience.fingerprint (Runtime.Engine.resilience engine);
       (match reference with
       | Some Chain -> "chain"
       | Some Replay | None -> "replay");
       (match samples with Some n -> string_of_int n | None -> "default");
       Eqwave.Ladder.fingerprint ladder;
       (match Runtime.Engine.deadline_ms engine with
       | Some ms -> Printf.sprintf "deadline:%h" ms
       | None -> "deadline:none");
       (match Runtime.Engine.guard engine with
       | Some g -> Runtime.Guard.fingerprint g
       | None -> "guard:none");
     ]
    @ List.map (fun (t : Eqwave.Technique.t) -> t.Eqwave.Technique.name) techs
    @ extra)

(* Reference delay of one case for the differential guard: re-simulate
   the noisy run and (for Replay mode) the receiver replay under the
   reference engine and measure the same mid-to-mid delay
   [evaluate_case] reports. Kept deliberately light — none of the
   per-technique work. *)
let guard_reference_delay ?(reference = Replay) ~engine scenario ~tau =
  let th = Device.Process.thresholds scenario.Scenario.proc in
  let noisy = Injection.noisy ~engine scenario ~tau in
  let t_in = mid_crossing th noisy.Injection.far "noisy input (guard)" in
  let t_out =
    match reference with
    | Chain -> mid_crossing th noisy.Injection.rcv "chain output (guard)"
    | Replay ->
        let replay_out =
          Injection.receiver_response ~engine scenario
            ~input:(Spice.Source.of_wave noisy.Injection.far)
            ~tstop:scenario.Scenario.tstop
        in
        mid_crossing th replay_out "replayed output (guard)"
  in
  t_out -. t_in

let run_table ?reference ?techniques ?samples ?ladder ?progress
    ?checkpoint_dir ?engine ?(prune_tol_ps = 0.0) scenario =
  let engine = Runtime.Engine.resolve engine in
  let techs =
    match techniques with Some ts -> ts | None -> Eqwave.Registry.all
  in
  let the_ladder =
    match ladder with Some l -> l | None -> Eqwave.Ladder.default
  in
  let guard = Runtime.Engine.guard engine in
  (* The guard's reference engine shares the cache and supervision of
     the sweep engine (keys differ by config fingerprint, so fast and
     reference entries never collide) but must not re-enter the pool —
     guard checks already run inside pool tasks. *)
  let guard_engine =
    lazy
      (let e = Runtime.Engine.reference in
       let e =
         match Runtime.Engine.cache engine with
         | Some c -> Runtime.Engine.with_cache e c
         | None -> e
       in
       Runtime.Engine.with_resilience e (Runtime.Engine.resilience engine))
  in
  (* The noiseless run is shared by every case; if it fails beyond the
     fallback ladder the whole sweep is unmeasurable, but that is still
     reported as rows full of typed failed cases rather than an
     escaping exception — sweeps must always return a table. *)
  let noiseless =
    match Injection.noiseless ~engine scenario with
    | r -> Ok r
    | exception Runtime.Failure.Error f -> Error f
    | exception Spice.Transient.No_convergence at ->
        Error (Runtime.Failure.Non_convergence { at })
  in
  let taus = Scenario.taus scenario in
  let total = Array.length taus in
  (* Branch-and-bound pruning of the alignment grid: run the bounded
     search first (it batch-solves exactly the alignments it needs and
     leaves them in the cache), then evaluate only the solved indices.
     Disabled — along with its fingerprint imprint, so existing
     checkpoints stay valid — at the default zero tolerance, and under
     an armed fault plan (pruning reorders solve indices, which would
     shift deterministic fault assignment). *)
  let pruning =
    prune_tol_ps > 0.0
    && (not (Spice.Transient.Fault.is_armed ()))
    && Result.is_ok noiseless
  in
  let checkpoint =
    match checkpoint_dir with
    | None -> None
    | Some dir ->
        Some
          (Runtime.Checkpoint.open_ ~dir
             ~name:("table1-" ^ scenario.Scenario.name)
             ~fingerprint:
               (sweep_fingerprint ~tag:"eval.run_table" ~schema:"case_eval/2"
                  ?reference ?samples ~ladder:the_ladder ~techs ~engine
                  scenario
                  (if pruning then
                     [ Printf.sprintf "prune:%h" prune_tol_ps ]
                   else [])))
  in
  (* Batch-first warm-up: solve the alignment sweep's noisy runs
     through the lockstep multi-case kernel before the per-case
     evaluation walks them, splitting batch-sized groups over the
     pool. The kernel produces byte-identical waveforms (same stepping
     code path), published into the cache under the keys the scalar
     path reads, so the sweep below sees cache hits; cases the batch
     failed to solve or validate stay uncached and go through the full
     scalar resilience ladder as before. Skipped when there is no
     cache (nowhere to publish), when batching is off, and when a
     fault plan is armed — deterministic fault assignment is by solve
     index, which warm-up would reorder. Checkpoint-replayed cases are
     not warmed: they will not simulate at all. *)
  let () =
    let b = Runtime.Engine.batch engine in
    if
      b > 1 && (not pruning)
      && Option.is_some (Runtime.Engine.cache engine)
      && (not (Spice.Transient.Fault.is_armed ()))
      && Result.is_ok noiseless
    then begin
      let wanted =
        Array.to_list (Array.mapi (fun i tau -> (i, tau)) taus)
        |> List.filter (fun (i, _) ->
               match checkpoint with
               | None -> true
               | Some cp ->
                   Option.is_none
                     (Runtime.Checkpoint.find cp i : case_eval option))
        |> List.map snd |> Array.of_list
      in
      let ngroups = (Array.length wanted + b - 1) / b in
      if ngroups > 0 then
        ignore
          (Runtime.Engine.submit_batch ~chunk:1 engine ngroups (fun g ->
               let lo = g * b in
               let len = Int.min b (Array.length wanted - lo) in
               Injection.prewarm_noisy ~engine scenario
                 (Array.sub wanted lo len)))
    end
  in
  (* Cases are independent pure simulations: sweep them on the pool.
     Results land in input order, so parallel output is identical to
     the sequential path. Progress reports completion count, which is
     monotone but not index-ordered under parallelism. *)
  let completed = Atomic.make 0 in
  (* Differential guard: for the deterministic sample of cases, replay
     the case's reference delay under the reference preset and compare.
     Only freshly computed cases are guarded — checkpoint-replayed ones
     were checked when first computed. *)
  let guard_check i (c : case_eval) =
    match guard with
    | Some g when Runtime.Guard.selects g i && Float.is_finite c.delay_ref -> (
        match
          guard_reference_delay ?reference
            ~engine:(Lazy.force guard_engine)
            scenario ~tau:taus.(i)
        with
        | ref_delay ->
            ignore (Runtime.Guard.record g ~delta_s:(c.delay_ref -. ref_delay))
        | exception e -> (
            match failure_of_exn e with
            | Some _ -> Runtime.Guard.record_error ()
            | None -> raise e))
    | _ -> ()
  in
  let compute i =
    match noiseless with
    | Error f -> failed_case techs ~tau:taus.(i) f
    | Ok noiseless -> (
        match
          evaluate_case ?reference ~techniques:techs ?samples
            ~ladder:the_ladder ~engine scenario ~noiseless ~tau:taus.(i)
        with
        | c ->
            guard_check i c;
            c
        | exception e -> (
            match failure_of_exn e with
            | Some f -> failed_case techs ~tau:taus.(i) f
            | None -> raise e))
  in
  (* Which grid indices actually get evaluated: all of them, or — when
     pruning — only the alignments the branch-and-bound search solved
     (its batched rounds already left those runs in the cache). *)
  let indices, prune_stats =
    if not pruning then (Array.init total Fun.id, None)
    else
      let noiseless = Result.get_ok noiseless in
      let r =
        Alignment.search
          ~config:{ Alignment.default with Alignment.prune_tol_ps }
          ~engine scenario ~noiseless
      in
      let keep = ref [] in
      for i = total - 1 downto 0 do
        if r.Alignment.delays.(i) <> None then keep := i :: !keep
      done;
      (Array.of_list !keep, Some r.Alignment.stats)
  in
  let n_eval = Array.length indices in
  let eval j =
    let i = indices.(j) in
    let c =
      match checkpoint with
      | None -> compute i
      | Some cp -> (
          match Runtime.Checkpoint.find cp i with
          | Some (c : case_eval) -> c
          | None ->
              let c = compute i in
              Runtime.Checkpoint.record cp i c;
              c)
    in
    let k = 1 + Atomic.fetch_and_add completed 1 in
    (match progress with Some f -> f k n_eval | None -> ());
    c
  in
  let cases = Array.to_list (Runtime.Engine.submit_batch engine n_eval eval) in
  {
    scenario = scenario.Scenario.name;
    rows = summarize_rows techs cases;
    cases;
    degradation = summarize_degradation the_ladder cases;
    prune = prune_stats;
  }

let pp_degradation ppf d =
  Format.fprintf ppf "ladder %s: rungs [%s]"
    (String.concat ">" d.ladder)
    (String.concat "; "
       (Array.to_list (Array.map string_of_int d.rung_counts)));
  if d.n_exhausted > 0 then Format.fprintf ppf ", %d exhausted" d.n_exhausted;
  if d.n_unmapped > 0 then Format.fprintf ppf ", %d unmapped" d.n_unmapped;
  Format.fprintf ppf ", avg deviation %.4g V" d.avg_score_v

let pp_table ppf t =
  Format.fprintf ppf "@[<v>%s — gate delay error vs reference (ps)@," t.scenario;
  Format.fprintf ppf "%-8s %10s %10s %8s %8s@," "Method" "Max" "Avg" "cases"
    "failed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %10.1f %10.1f %8d %8d@," r.name r.max_abs_ps
        r.avg_abs_ps r.n_cases r.n_failed)
    t.rows;
  Format.fprintf ppf "%a@," pp_degradation t.degradation;
  Format.fprintf ppf "@]"
