type run = { far : Waveform.Wave.t; rcv : Waveform.Wave.t }

(* All entry points take the unified [?engine] (absent = the reference
   engine). The solver config comes from the engine with the scenario's
   grid parameters layered on top, and — under adaptive stepping — the
   process 10/50/90 thresholds as crossing-refinement levels, so
   delay/slew measurement points keep fixed-grid resolution. *)
let solver_config engine scenario ~dt ~tstop =
  let th = Device.Process.thresholds scenario.Scenario.proc in
  let open Spice.Transient in
  let c = Runtime.Engine.solver engine in
  let c = with_dt c dt in
  let c = with_tstop c tstop in
  with_crossing_levels_if_empty c
    Waveform.Thresholds.[ v_low th; v_mid th; v_high th ]

(* Cached simulations store their probed waveforms as a wave list; the
   key covers the scenario content, everything case-specific, and the
   full solver configuration. *)
let memo_waves cache key compute =
  match cache with
  | None -> compute ()
  | Some c -> Runtime.Cache.memo c key compute

(* Purge the cache entry for a rejected (invalid) result before the
   ladder moves on, so the bad waveform cannot be replayed later. *)
let reject_cached cache key_of config =
  match cache with
  | Some c -> Runtime.Cache.remove c (key_of config)
  | None -> ()

(* The key digests the attempt's own config fingerprint, so ladder
   rungs (which each resolve to a distinct config) never alias the
   primary attempt's entries. Shared with [prewarm_noisy], which must
   publish batch results under exactly the key the scalar path reads. *)
let sim_key scenario config ~aggressor_active ~tau =
  Runtime.Cache.Key.(
    make "injection.simulate"
      [
        str (Scenario.fingerprint scenario);
        str (Spice.Transient.config_fingerprint config);
        bool aggressor_active;
        float (if aggressor_active then tau else 0.0);
      ])

let simulate ?engine scenario ~aggressor_active ~tau =
  let engine = Runtime.Engine.resolve engine in
  let base_config =
    solver_config engine scenario ~dt:scenario.Scenario.dt
      ~tstop:scenario.Scenario.tstop
  in
  let cache = Runtime.Engine.cache engine in
  let key_of config = sim_key scenario config ~aggressor_active ~tau in
  (* Each solve attempt runs under the engine's per-solve wall-clock
     budget (cooperative cancellation at step boundaries). The budget
     is per attempt, not per case, so a resilience-ladder retry gets a
     fresh allowance; it never enters the cache key because it cannot
     change a completed solve's result. *)
  let deadline_ms = Runtime.Engine.deadline_ms engine in
  let attempt config =
    let compute () =
      let ckt, hints = Scenario.build scenario ~aggressor_active ~tau in
      let res = Spice.Transient.run ~config ~ic:hints ckt in
      [
        Spice.Transient.probe res (Scenario.victim_far_node scenario);
        Spice.Transient.probe res (Scenario.victim_rcv_node scenario);
      ]
    in
    Runtime.Pool.with_deadline ?ms:deadline_ms (fun () ->
        memo_waves cache (key_of config) compute)
  in
  let policy = Runtime.Engine.resilience engine in
  let proc = scenario.Scenario.proc in
  let th = Device.Process.thresholds proc in
  let validate waves =
    let labeled =
      match waves with
      | [ far; rcv ] -> [ ("victim far end", far); ("receiver output", rcv) ]
      | _ -> assert false
    in
    (* The victim drives rail to rail in every scenario, so both probes
       must cross 0.5 Vdd; a "successful" solve without that crossing
       is garbage and goes back to the ladder. *)
    Runtime.Resilience.validate_waves policy
      ~rails:(0.0, proc.Device.Process.vdd)
      ~crossing:(Waveform.Thresholds.v_mid th)
      labeled
  in
  match
    Runtime.Resilience.run ~validate
      ~on_reject:(reject_cached cache key_of)
      policy ~config:base_config ~attempt
  with
  | Ok [ far; rcv ] -> { far; rcv }
  | Ok _ -> assert false
  | Error f -> Runtime.Failure.fail f

let noiseless ?engine scenario =
  simulate ?engine scenario ~aggressor_active:false ~tau:0.0

let noisy ?engine scenario ~tau =
  simulate ?engine scenario ~aggressor_active:true ~tau

(* Batch-first cache warming for an alignment sweep: every
   not-yet-cached tau is solved through the lockstep multi-case kernel
   ([Spice.Transient.run_batch_outcomes]) and the successful, validated
   waveform pairs are published into the engine's cache under exactly
   the key the scalar [noisy] path computes for its primary attempt.
   Failed or invalid cases are simply not cached — the later scalar
   call re-solves them under the full resilience ladder, so per-case
   retry and deadline semantics are untouched. Returns how many cases
   the batch kernel solved (0 without a cache: nowhere to publish). *)
let prewarm_noisy ?engine scenario taus =
  let engine = Runtime.Engine.resolve engine in
  if Spice.Transient.Fault.is_armed () then
    (* Deterministic fault plans assign faults by solve index; warming
       would reorder the sequence. Let the scalar path roll them. *)
    0
  else
  match Runtime.Engine.cache engine with
  | None -> 0
  | Some cache ->
      let config =
        solver_config engine scenario ~dt:scenario.Scenario.dt
          ~tstop:scenario.Scenario.tstop
      in
      let key tau = sim_key scenario config ~aggressor_active:true ~tau in
      let missing =
        Array.of_seq
          (Seq.filter
             (fun tau -> Option.is_none (Runtime.Cache.find cache (key tau)))
             (Array.to_seq taus))
      in
      if Array.length missing = 0 then 0
      else begin
        let builds =
          Array.map
            (fun tau -> Scenario.build scenario ~aggressor_active:true ~tau)
            missing
        in
        let ckts = Array.map fst builds in
        let ics = Array.map snd builds in
        let deadline_ms = Runtime.Engine.deadline_ms engine in
        let out =
          Runtime.Pool.with_deadline ?ms:deadline_ms (fun () ->
              Spice.Transient.run_batch_outcomes ~config ~ics ckts)
        in
        let policy = Runtime.Engine.resilience engine in
        let proc = scenario.Scenario.proc in
        let th = Device.Process.thresholds proc in
        let solved = ref 0 in
        Array.iteri
          (fun i outcome ->
            match outcome with
            | Error _ -> ()
            | Ok res ->
                incr solved;
                let far =
                  Spice.Transient.probe res (Scenario.victim_far_node scenario)
                in
                let rcv =
                  Spice.Transient.probe res (Scenario.victim_rcv_node scenario)
                in
                let invalid =
                  Runtime.Resilience.validate_waves policy
                    ~rails:(0.0, proc.Device.Process.vdd)
                    ~crossing:(Waveform.Thresholds.v_mid th)
                    [ ("victim far end", far); ("receiver output", rcv) ]
                in
                if invalid = None then
                  Runtime.Cache.store cache (key missing.(i)) [ far; rcv ])
          out;
        !solved
      end

let receiver_response ?dt ?engine scenario ~input ~tstop =
  let open Spice in
  let engine = Runtime.Engine.resolve engine in
  let dt =
    match dt with Some d -> d | None -> scenario.Scenario.dt /. 2.0
  in
  let base_config = solver_config engine scenario ~dt ~tstop in
  let compute config () =
    let proc = scenario.Scenario.proc in
    let _, _, rcv_cell, load_cell = Scenario.chain_cells scenario in
    let ckt = Circuit.create () in
    let vdd = Device.Cell.attach_supply proc ckt in
    let pin = Circuit.node ckt "pin" in
    let rcv = Circuit.node ckt "rcv" in
    let buf = Circuit.node ckt "buf" in
    Device.Cell.instantiate proc rcv_cell ~ckt ~input:pin ~output:rcv
      ~vdd_node:vdd ~name:"u16";
    Device.Cell.instantiate proc load_cell ~ckt ~input:rcv ~output:buf
      ~vdd_node:vdd ~name:"u64";
    Circuit.vsource ckt pin input;
    let res = Transient.run ~config ckt in
    [ Transient.probe res "rcv" ]
  in
  (* Opaque function sources cannot be content-addressed; run those
     uncached. *)
  let cache =
    match Source.fingerprint input with
    | None -> None
    | Some _ -> Runtime.Engine.cache engine
  in
  let key_of config =
    Runtime.Cache.Key.(
      make "injection.receiver_response"
        [
          str (Scenario.fingerprint scenario);
          str (Option.get (Source.fingerprint input));
          str (Transient.config_fingerprint config);
          float tstop;
        ])
  in
  let deadline_ms = Runtime.Engine.deadline_ms engine in
  let attempt config =
    Runtime.Pool.with_deadline ?ms:deadline_ms (fun () ->
        memo_waves cache (key_of config) (compute config))
  in
  let policy = Runtime.Engine.resilience engine in
  let proc = scenario.Scenario.proc in
  let validate waves =
    let labeled =
      match waves with
      | [ w ] -> [ ("receiver response", w) ]
      | _ -> assert false
    in
    (* No required crossing here: the stimulus may be a degenerate
       technique ramp that legitimately never switches the receiver —
       a technique failure, not a solver failure. *)
    Runtime.Resilience.validate_waves policy
      ~rails:(0.0, proc.Device.Process.vdd)
      labeled
  in
  match
    Runtime.Resilience.run ~validate
      ~on_reject:(reject_cached cache key_of)
      policy ~config:base_config ~attempt
  with
  | Ok [ w ] -> w
  | Ok _ -> assert false
  | Error f -> Runtime.Failure.fail f

let ctx_of_runs ?samples scenario ~noiseless ~noisy =
  let proc = scenario.Scenario.proc in
  Eqwave.Technique.make_ctx ?samples
    ~th:(Device.Process.thresholds proc)
    ~noisy_in:noisy.far ~noiseless_in:noiseless.far
    ~noiseless_out:noiseless.rcv ()
