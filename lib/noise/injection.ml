type run = { far : Waveform.Wave.t; rcv : Waveform.Wave.t }

(* All entry points accept the unified [?engine] plus the deprecated
   [?cache] alias; [Engine.resolve] arbitrates. The solver config comes
   from the engine with the scenario's grid parameters layered on top,
   and — under adaptive stepping — the process 10/50/90 thresholds as
   crossing-refinement levels, so delay/slew measurement points keep
   fixed-grid resolution. *)
let solver_config engine scenario ~dt ~tstop =
  let th = Device.Process.thresholds scenario.Scenario.proc in
  let open Spice.Transient in
  let c = Runtime.Engine.solver engine in
  let c = with_dt c dt in
  let c = with_tstop c tstop in
  with_crossing_levels_if_empty c
    Waveform.Thresholds.[ v_low th; v_mid th; v_high th ]

(* Cached simulations store their probed waveforms as a wave list; the
   key covers the scenario content, everything case-specific, and the
   full solver configuration. *)
let memo_waves cache key compute =
  match cache with
  | None -> compute ()
  | Some c -> Runtime.Cache.memo c key compute

let simulate ?cache ?engine scenario ~aggressor_active ~tau =
  let engine = Runtime.Engine.resolve ?cache engine in
  let config =
    solver_config engine scenario ~dt:scenario.Scenario.dt
      ~tstop:scenario.Scenario.tstop
  in
  let compute () =
    let ckt, hints = Scenario.build scenario ~aggressor_active ~tau in
    let res = Spice.Transient.run ~config ~ic:hints ckt in
    [
      Spice.Transient.probe res (Scenario.victim_far_node scenario);
      Spice.Transient.probe res (Scenario.victim_rcv_node scenario);
    ]
  in
  let key =
    Runtime.Cache.Key.(
      make "injection.simulate"
        [
          str (Scenario.fingerprint scenario);
          str (Spice.Transient.config_fingerprint config);
          bool aggressor_active;
          float (if aggressor_active then tau else 0.0);
        ])
  in
  match memo_waves (Runtime.Engine.cache engine) key compute with
  | [ far; rcv ] -> { far; rcv }
  | _ -> assert false

let noiseless ?cache ?engine scenario =
  simulate ?cache ?engine scenario ~aggressor_active:false ~tau:0.0

let noisy ?cache ?engine scenario ~tau =
  simulate ?cache ?engine scenario ~aggressor_active:true ~tau

let receiver_response ?dt ?cache ?engine scenario ~input ~tstop =
  let open Spice in
  let engine = Runtime.Engine.resolve ?cache engine in
  let dt =
    match dt with Some d -> d | None -> scenario.Scenario.dt /. 2.0
  in
  let config = solver_config engine scenario ~dt ~tstop in
  let compute () =
    let proc = scenario.Scenario.proc in
    let _, _, rcv_cell, load_cell = Scenario.chain_cells scenario in
    let ckt = Circuit.create () in
    let vdd = Device.Cell.attach_supply proc ckt in
    let pin = Circuit.node ckt "pin" in
    let rcv = Circuit.node ckt "rcv" in
    let buf = Circuit.node ckt "buf" in
    Device.Cell.instantiate proc rcv_cell ~ckt ~input:pin ~output:rcv
      ~vdd_node:vdd ~name:"u16";
    Device.Cell.instantiate proc load_cell ~ckt ~input:rcv ~output:buf
      ~vdd_node:vdd ~name:"u64";
    Circuit.vsource ckt pin input;
    let res = Transient.run ~config ckt in
    [ Transient.probe res "rcv" ]
  in
  (* Opaque function sources cannot be content-addressed; run those
     uncached. *)
  let cache =
    match Source.fingerprint input with
    | None -> None
    | Some _ -> Runtime.Engine.cache engine
  in
  let key () =
    Runtime.Cache.Key.(
      make "injection.receiver_response"
        [
          str (Scenario.fingerprint scenario);
          str (Option.get (Source.fingerprint input));
          str (Transient.config_fingerprint config);
          float tstop;
        ])
  in
  match cache with
  | None -> (
      match compute () with [ w ] -> w | _ -> assert false)
  | Some c -> (
      match Runtime.Cache.memo c (key ()) compute with
      | [ w ] -> w
      | _ -> assert false)

let ctx_of_runs ?samples scenario ~noiseless ~noisy =
  let proc = scenario.Scenario.proc in
  Eqwave.Technique.make_ctx ?samples
    ~th:(Device.Process.thresholds proc)
    ~noisy_in:noisy.far ~noiseless_in:noiseless.far
    ~noiseless_out:noiseless.rcv ()
