type run = { far : Waveform.Wave.t; rcv : Waveform.Wave.t }

(* Cached simulations store their probed waveforms as a wave list; the
   key covers the scenario content plus everything case-specific. *)
let memo_waves cache key compute =
  match cache with
  | None -> compute ()
  | Some c -> Runtime.Cache.memo c key compute

let simulate ?cache scenario ~aggressor_active ~tau =
  let compute () =
    let ckt, hints = Scenario.build scenario ~aggressor_active ~tau in
    let config =
      {
        Spice.Transient.default_config with
        dt = scenario.Scenario.dt;
        tstop = scenario.Scenario.tstop;
      }
    in
    let res = Spice.Transient.run ~config ~ic:hints ckt in
    [
      Spice.Transient.probe res (Scenario.victim_far_node scenario);
      Spice.Transient.probe res (Scenario.victim_rcv_node scenario);
    ]
  in
  let key =
    Runtime.Cache.Key.(
      make "injection.simulate"
        [
          str (Scenario.fingerprint scenario);
          bool aggressor_active;
          float (if aggressor_active then tau else 0.0);
        ])
  in
  match memo_waves cache key compute with
  | [ far; rcv ] -> { far; rcv }
  | _ -> assert false

let noiseless ?cache scenario =
  simulate ?cache scenario ~aggressor_active:false ~tau:0.0

let noisy ?cache scenario ~tau = simulate ?cache scenario ~aggressor_active:true ~tau

let receiver_response ?dt ?cache scenario ~input ~tstop =
  let open Spice in
  let dt =
    match dt with Some d -> d | None -> scenario.Scenario.dt /. 2.0
  in
  let compute () =
    let proc = scenario.Scenario.proc in
    let _, _, rcv_cell, load_cell = Scenario.chain_cells scenario in
    let ckt = Circuit.create () in
    let vdd = Device.Cell.attach_supply proc ckt in
    let pin = Circuit.node ckt "pin" in
    let rcv = Circuit.node ckt "rcv" in
    let buf = Circuit.node ckt "buf" in
    Device.Cell.instantiate proc rcv_cell ~ckt ~input:pin ~output:rcv
      ~vdd_node:vdd ~name:"u16";
    Device.Cell.instantiate proc load_cell ~ckt ~input:rcv ~output:buf
      ~vdd_node:vdd ~name:"u64";
    Circuit.vsource ckt pin input;
    let config = { Transient.default_config with dt; tstop } in
    let res = Transient.run ~config ckt in
    [ Transient.probe res "rcv" ]
  in
  (* Opaque function sources cannot be content-addressed; run those
     uncached. *)
  let cache =
    match Source.fingerprint input with
    | None -> None
    | Some _ -> cache
  in
  let key () =
    Runtime.Cache.Key.(
      make "injection.receiver_response"
        [
          str (Scenario.fingerprint scenario);
          str (Option.get (Source.fingerprint input));
          float dt;
          float tstop;
        ])
  in
  match cache with
  | None -> (
      match compute () with [ w ] -> w | _ -> assert false)
  | Some c -> (
      match Runtime.Cache.memo c (key ()) compute with
      | [ w ] -> w
      | _ -> assert false)

let ctx_of_runs ?samples scenario ~noiseless ~noisy =
  let proc = scenario.Scenario.proc in
  Eqwave.Technique.make_ctx ?samples
    ~th:(Device.Process.thresholds proc)
    ~noisy_in:noisy.far ~noiseless_in:noiseless.far
    ~noiseless_out:noiseless.rcv ()
