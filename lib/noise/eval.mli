(** Technique evaluation harness — the machinery behind Table 1.

    For each noise-injection case the noisy waveform at the receiver
    input is recorded, every technique reduces it to Gamma_eff, the
    receiver is re-simulated under Gamma_eff, and the resulting gate
    delay (0.5 Vdd input crossing to 0.5 Vdd output crossing, latest
    crossings) is compared against the reference response.

    The reference is the receiver driven by the *recorded noisy
    waveform itself* (an ideal-source replay): this isolates exactly
    the error introduced by the waveform reduction, which is what the
    paper's Table 1 measures. The full-chain receiver output is also
    carried through so tests can confirm the replay is faithful. *)

type reference = Replay | Chain

type degradation = {
  technique : string;  (** the technique whose rung accepted the case *)
  rung : int;          (** its 0-based position in the ladder *)
  score_v : float;     (** RMS ramp-vs-noisy deviation, volts *)
  skipped : (string * string) list;
      (** (technique, reason) for every rung skipped before acceptance *)
}
(** How the Gamma_eff degradation ladder ({!Eqwave.Ladder}) resolved a
    case. Declared before {!case_metrics} so the shared [technique]
    field keeps resolving to the latter. *)

type case_metrics = {
  technique : string;
  ramp : Waveform.Ramp.t option;      (** None when the technique bailed *)
  delay_est : float option;           (** its gate delay estimate *)
  delay_err : float option;           (** delay_est - delay_ref *)
  out_arrival_err : float option;     (** absolute output-crossing error *)
  out_slew_err : float option;        (** output 10-90 slew error vs the
                                          reference response *)
  failure : Runtime.Failure.t option; (** why the technique has no result *)
}

type case_eval = {
  tau : float;
  delay_ref : float;                  (** reference gate delay *)
  ref_out_arrival : float;
  chain_vs_replay : float;            (** replay-fidelity diagnostic, s *)
  mapping : (degradation, Runtime.Failure.t) result;
      (** ladder outcome: a ramp with rung/score, or a typed failure —
          [Mapping_exhausted] when every rung rejected the waveform,
          the underlying solve failure when the reference simulation
          itself failed *)
  metrics : case_metrics list;
}

val failed_case :
  Eqwave.Technique.t list -> tau:float -> Runtime.Failure.t -> case_eval
(** A case whose reference simulation itself failed: every technique
    metric carries the typed failure, and the reference fields are
    nan sentinels that row aggregation never reads. *)

val failure_of_exn : exn -> Runtime.Failure.t option
(** Sweep-level exception classification: [Runtime.Failure.of_exn]
    extended with technique-domain errors
    ([Eqwave.Technique.Unsupported], [Stdlib.Failure]). [None] means a
    genuine bug that should propagate. *)

val sweep_fingerprint :
  tag:string ->
  schema:string ->
  ?reference:reference ->
  ?samples:int ->
  ?ladder:Eqwave.Ladder.t ->
  techs:Eqwave.Technique.t list ->
  engine:Runtime.Engine.t ->
  Scenario.t ->
  string list ->
  string
(** Checkpoint fingerprint covering everything that determines a
    per-case result: scenario (including window and case count),
    solver config, resilience policy, reference mode, sample count,
    technique set, degradation-ladder order ([ladder], defaulting to
    {!Eqwave.Ladder.default}), the engine's deadline and guard
    settings, plus caller-specific [extra] parts. [schema] tags the
    marshalled payload layout. Shared by the Table-1 and Monte-Carlo
    sweep drivers. *)

val evaluate_case :
  ?reference:reference ->
  ?techniques:Eqwave.Technique.t list ->
  ?samples:int ->
  ?ladder:Eqwave.Ladder.t ->
  ?engine:Runtime.Engine.t ->
  ?noisy:Injection.run ->
  Scenario.t -> noiseless:Injection.run -> tau:float -> case_eval
(** Runs one noisy full-chain simulation plus one receiver simulation
    per technique. [noisy] overrides the case's noisy run when the
    caller already holds it — Monte-Carlo substitutes the noiseless
    run for draws whose alignment provably cannot overlap the victim's
    critical window. [techniques] defaults to [Eqwave.Registry.all];
    [samples] is the paper's P (default 35). [engine] selects solver
    config and cache (see {!Runtime.Engine}). With a cache, every underlying transient
    simulation is memoized by content (scenario, case, and full solver
    configuration), so re-evaluating a case is free. A technique whose
    receiver re-simulation fails to converge is reported as a failed
    metric rather than raising. [ladder] (default
    {!Eqwave.Ladder.default}) produces the case's [mapping]: which
    rung accepted the waveform and at what deviation score. *)

type row = {
  name : string;
  max_abs_ps : float;
  avg_abs_ps : float;
  n_cases : int;
  n_failed : int;
}

type degradation_summary = {
  ladder : string list;   (** technique names, rung order *)
  rung_counts : int array;
      (** cases resolved at each rung; same length as [ladder] *)
  n_exhausted : int;      (** cases where every rung rejected *)
  n_unmapped : int;
      (** cases that never reached the ladder (reference solve failed) *)
  avg_score_v : float;    (** mean deviation score over mapped cases *)
}

type table = {
  scenario : string;
  rows : row list;                    (** in the order techniques were given *)
  cases : case_eval list;
  degradation : degradation_summary;
  prune : Alignment.stats option;
      (** branch-and-bound accounting when the sweep ran with a
          positive [prune_tol_ps]; [cases] then holds only the solved
          alignments (grid order preserved) *)
}

val summarize_degradation : Eqwave.Ladder.t -> case_eval list -> degradation_summary

val guard_reference_delay :
  ?reference:reference ->
  engine:Runtime.Engine.t ->
  Scenario.t -> tau:float -> float
(** The reference-engine delay the differential guard compares
    against: one noisy chain simulation (plus the receiver replay in
    [Replay] mode), measured mid-to-mid exactly as [evaluate_case]
    measures [delay_ref]. Raises on solve failure — callers classify
    with {!failure_of_exn}. *)

val run_table :
  ?reference:reference ->
  ?techniques:Eqwave.Technique.t list ->
  ?samples:int ->
  ?ladder:Eqwave.Ladder.t ->
  ?progress:(int -> int -> unit) ->
  ?checkpoint_dir:string ->
  ?engine:Runtime.Engine.t ->
  ?prune_tol_ps:float ->
  Scenario.t -> table
(** Sweep all scenario cases. With [prune_tol_ps] positive, the
    alignment grid first goes through {!Alignment.search} and only the
    solved alignments are evaluated ([table.prune] reports the
    accounting); the default 0 keeps the exhaustive sweep — and the
    historical checkpoint fingerprint — untouched. Pruning is ignored
    under an armed fault plan (it would reorder deterministic fault
    assignment). [progress done_ total] is called after
    each case with the number completed so far (from worker domains
    when the engine carries a pool, so it must be quick and
    thread-safe). Cases are distributed over the engine's pool via
    {!Runtime.Engine.submit_batch}; the resulting table is identical
    to the sequential one — rows and cases stay in input order.

    When the engine carries a cache and its batch width is above 1,
    the not-yet-cached (and not-yet-checkpointed) alignments are first
    warmed through the lockstep multi-case transient kernel
    ({!Injection.prewarm_noisy}) in engine-batch-sized groups, so the
    per-case evaluations below hit the cache. Warming publishes only
    validated results under the exact keys the scalar path reads, so
    the table stays byte-identical to the unwarmed sweep.

    Sweeps always return a table: a case whose simulation fails beyond
    the engine's {!Runtime.Resilience} fallback ladder becomes a row
    of typed failed metrics counted in [n_failed] (with nan reference
    fields) instead of aborting the sweep.

    With [checkpoint_dir], every completed case is journaled
    ({!Runtime.Checkpoint}) under a fingerprint of the whole sweep; a
    re-run after an interruption replays journaled cases and computes
    only the missing ones, producing a byte-identical table.

    When the engine carries a {!Runtime.Guard}, the deterministic
    sample of cases it selects is re-evaluated under the reference
    preset and the delay deltas are recorded into the process-global
    [Runtime.Guard.Stats]; when it carries a deadline, each solve
    attempt runs under that wall-clock budget and a cancelled case
    becomes a typed [Deadline_exceeded] failure. *)

val pp_degradation : Format.formatter -> degradation_summary -> unit

val pp_table : Format.formatter -> table -> unit
(** Render in the shape of the paper's Table 1 (max / avg, ps), plus a
    ladder-degradation summary line. *)
