(* Threshold-windowed sparsification of sampled waveforms.

   The idiom comes from digitizer feature extraction: keep dense
   samples only where the signal is doing something that measurement
   cares about, and store straight segments elsewhere. Here the
   measurement points are threshold crossings (delay, arrival, slew
   are all defined by them), so the invariant is:

   - both endpoints of every segment that crosses or touches a
     threshold level survive verbatim, which reproduces every crossing
     time of every level *exactly* after decompression (the crossing
     is a linear interpolation between those two samples, and
     [Wave.crossings] counts an exact-sample touch once either way);
   - a dropped run of samples lies strictly on one side of each level
     (otherwise one of its segments would have been kept), so the
     replacement chord — whose endpoints are original samples from the
     same side — cannot invent a crossing that the original did not
     have;
   - a sample is only dropped when its vertical distance to the
     replacement chord is at most [eps], and since the original and
     the decompressed curve are both piecewise linear with the
     decompressed breakpoints a subset of the original's, the maximum
     reconstruction error over the whole span is attained at an
     original sample, hence bounded by [eps] everywhere. *)

let default_eps = 1e-3

let compress ?(eps = default_eps) ~levels w =
  if eps < 0.0 then invalid_arg "Sparse.compress: eps < 0";
  let ts = Wave.times w and vs = Wave.values w in
  let n = Array.length ts in
  let keep = Array.make n false in
  keep.(0) <- true;
  keep.(n - 1) <- true;
  List.iter
    (fun level ->
      for i = 0 to n - 2 do
        if (vs.(i) -. level) *. (vs.(i + 1) -. level) <= 0.0 then begin
          keep.(i) <- true;
          keep.(i + 1) <- true
        end
      done)
    levels;
  (* Greedy chord extension between kept anchors: from anchor [a],
     advance [b] while every interior sample stays within [eps] of the
     chord a->b and no interior sample is itself a must-keep. *)
  let chord_ok a b =
    let ta = ts.(a) and va = vs.(a) in
    let slope = (vs.(b) -. va) /. (ts.(b) -. ta) in
    let ok = ref true in
    let i = ref (a + 1) in
    while !ok && !i < b do
      if keep.(!i) then ok := false
      else begin
        let fit = va +. (slope *. (ts.(!i) -. ta)) in
        if Float.abs (vs.(!i) -. fit) > eps then ok := false
      end;
      incr i
    done;
    !ok
  in
  let out = ref [ 0 ] in
  let a = ref 0 in
  while !a < n - 1 do
    let b = ref (!a + 1) in
    while !b < n - 1 && (not keep.(!b)) && chord_ok !a (!b + 1) do
      incr b
    done;
    out := !b :: !out;
    a := !b
  done;
  let idx = Array.of_list (List.rev !out) in
  Wave.create
    (Array.map (fun i -> ts.(i)) idx)
    (Array.map (fun i -> vs.(i)) idx)

let max_error ~original ~decoded =
  let ts = Wave.times original and vs = Wave.values original in
  let worst = ref 0.0 in
  Array.iteri
    (fun i t ->
      let e = Float.abs (vs.(i) -. Wave.value_at decoded t) in
      if e > !worst then worst := e)
    ts;
  !worst

let ratio ~original ~compressed =
  float_of_int (Wave.length original) /. float_of_int (Wave.length compressed)
