(** Threshold-windowed sparse storage for sampled waveforms.

    [compress] returns a waveform whose samples are a subset of the
    original's, chosen so that (a) every segment that crosses or
    touches one of [levels] keeps both endpoints — so every crossing
    time of every listed level round-trips exactly — and (b) every
    dropped sample lies within [eps] volts of the replacement chord,
    so the piecewise-linear reconstruction error is at most [eps]
    everywhere and no spurious level crossings can appear. Intended
    for the disk cache and checkpoint journals, where traces are
    re-read only through their piecewise-linear interpolation. *)

val default_eps : float
(** 1 mV — far inside the 10%-Vdd threshold band of every supported
    process, and small enough that reconstruction error never moves a
    measured crossing (crossing segments are stored verbatim). *)

val compress : ?eps:float -> levels:float list -> Wave.t -> Wave.t
(** [compress ?eps ~levels w] sparsifies [w]. The result is a valid
    waveform over the same span (endpoints always survive). [eps]
    defaults to {!default_eps}; [levels] should list every voltage at
    which crossings will be measured (e.g. the process v_low / v_mid /
    v_high). Raises [Invalid_argument] on negative [eps]. *)

val max_error : original:Wave.t -> decoded:Wave.t -> float
(** Max |original(t) - decoded(t)| over the original's sample times —
    which is where the maximum over the whole span is attained when
    [decoded] came from [compress]. *)

val ratio : original:Wave.t -> compressed:Wave.t -> float
(** Sample-count shrink factor (original / compressed). *)
