(* Differential accuracy guard: cross-validate a deterministic, seeded
   sample of fast-engine results against the reference preset so silent
   accuracy drift becomes an observable signal instead of a surprise.
   Selection depends only on (seed, case index), never on pool
   scheduling, so the same cases are guarded on every run — including
   across a checkpoint resume. *)

type t = { every : int; seed : int; tol_s : float }

let make ?(every = 8) ?(seed = 0) ?(tol_s = 1e-12) () =
  if every < 1 then invalid_arg "Guard.make: every < 1";
  if not (Float.is_finite tol_s) then invalid_arg "Guard.make: non-finite tol";
  { every; seed; tol_s }

let default = make ()
let every t = t.every
let seed t = t.seed
let tol_s t = t.tol_s

let fingerprint t =
  Printf.sprintf "runtime.guard|%d|%d|%h" t.every t.seed t.tol_s

(* Same digest trick as Spice.Transient.Fault.roll_float: hash the
   (seed, index) pair so roughly 1/every of the cases are guarded,
   spread uniformly rather than striding (a stride would always miss
   workloads whose interesting cases share a residue). *)
let selects t i =
  if t.every = 1 then true
  else begin
    let d = Digest.string (Printf.sprintf "runtime.guard:%d:%d" t.seed i) in
    let x = ref 0 in
    for k = 0 to 5 do
      x := (!x lsl 8) lor Char.code d.[k]
    done;
    !x mod t.every = 0
  end

module Stats = struct
  type snapshot = {
    checked : int;
    agreements : int;
    disagreements : int;
    errors : int;
    max_delta_s : float;
  }

  (* Process-global, atomic, like Transient.Stats and Resilience.Stats. *)
  let checked = Atomic.make 0
  let agreements = Atomic.make 0
  let disagreements = Atomic.make 0
  let errors = Atomic.make 0
  let max_delta = Atomic.make 0.0

  let rec bump_max v =
    let cur = Atomic.get max_delta in
    if v > cur && not (Atomic.compare_and_set max_delta cur v) then bump_max v

  let snapshot () =
    {
      checked = Atomic.get checked;
      agreements = Atomic.get agreements;
      disagreements = Atomic.get disagreements;
      errors = Atomic.get errors;
      max_delta_s = Atomic.get max_delta;
    }

  (* max_delta_s is a high-water mark, not a counter — diff keeps the
     current mark rather than subtracting. *)
  let diff a b =
    {
      checked = a.checked - b.checked;
      agreements = a.agreements - b.agreements;
      disagreements = a.disagreements - b.disagreements;
      errors = a.errors - b.errors;
      max_delta_s = a.max_delta_s;
    }

  let reset () =
    Atomic.set checked 0;
    Atomic.set agreements 0;
    Atomic.set disagreements 0;
    Atomic.set errors 0;
    Atomic.set max_delta 0.0

  let pp ppf s =
    Format.fprintf ppf
      "%d checked, %d agree, %d disagree, %d errors, max delta %.4g ps"
      s.checked s.agreements s.disagreements s.errors (s.max_delta_s *. 1e12)
end

let record t ~delta_s =
  Atomic.incr Stats.checked;
  let mag = abs_float delta_s in
  Stats.bump_max mag;
  let agree = mag <= t.tol_s in
  if agree then Atomic.incr Stats.agreements
  else Atomic.incr Stats.disagreements;
  agree

let record_error () = Atomic.incr Stats.errors
