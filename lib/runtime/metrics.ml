type t = {
  m : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  timers : (string, float ref) Hashtbl.t;
}

let create () =
  { m = Mutex.create (); counters = Hashtbl.create 32; timers = Hashtbl.create 8 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let counter_cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.add t.counters name c;
      c

let timer_cell t name =
  match Hashtbl.find_opt t.timers name with
  | Some c -> c
  | None ->
      let c = ref 0.0 in
      Hashtbl.add t.timers name c;
      c

let incr ?(n = 1) t name =
  locked t (fun () ->
      let c = counter_cell t name in
      c := !c + n)

let set t name v = locked t (fun () -> counter_cell t name := v)

let add_time t name dt =
  locked t (fun () ->
      let c = timer_cell t name in
      c := !c +. dt)

let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> add_time t name (Unix.gettimeofday () -. t0))
    f

let sorted tbl get =
  Hashtbl.fold (fun k v acc -> (k, get v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = locked t (fun () -> sorted t.counters ( ! ))
let timers t = locked t (fun () -> sorted t.timers ( ! ))

let capture_spice ?since t =
  let s = Spice.Transient.Stats.snapshot () in
  let s =
    match since with
    | None -> s
    | Some base -> Spice.Transient.Stats.diff s base
  in
  set t "spice.sims" s.Spice.Transient.Stats.sims;
  set t "spice.steps" s.Spice.Transient.Stats.steps;
  set t "spice.newton_iters" s.Spice.Transient.Stats.newton_iters;
  set t "spice.bisections" s.Spice.Transient.Stats.bisections;
  set t "spice.gmin_retries" s.Spice.Transient.Stats.gmin_retries;
  set t "spice.rejected_steps" s.Spice.Transient.Stats.rejected_steps;
  set t "spice.lte_rejections" s.Spice.Transient.Stats.lte_rejections;
  set t "spice.injected_faults" s.Spice.Transient.Stats.injected_faults;
  set t "spice.deadline_hits" s.Spice.Transient.Stats.deadline_hits;
  set t "spice.factorizations" s.Spice.Transient.Stats.factorizations;
  set t "spice.jacobian_reuses" s.Spice.Transient.Stats.jac_reuses;
  set t "spice.banded_solves" s.Spice.Transient.Stats.banded_solves

let capture_cache t cache =
  set t "cache.hits" (Cache.hits cache);
  set t "cache.disk_hits" (Cache.disk_hits cache);
  set t "cache.misses" (Cache.misses cache);
  set t "cache.read_errors" (Cache.read_errors cache);
  set t "cache.write_errors" (Cache.write_errors cache);
  set t "cache.resident" (Cache.length cache);
  set t "cache.bytes_written" (Cache.bytes_written cache);
  set t "cache.disk_bytes" (Cache.disk_bytes cache);
  set t "cache.evictions" (Cache.evictions cache);
  match Cache.breaker_state cache with
  | None -> ()
  | Some st ->
      (* 0 = closed, 1 = open, 2 = half-open — a gauge operators can
         alert on. *)
      set t "cache.breaker_state"
        (match st with
        | Cache.Breaker.Closed -> 0
        | Cache.Breaker.Open -> 1
        | Cache.Breaker.Half_open -> 2);
      set t "cache.breaker_opens" (Cache.breaker_opens cache);
      set t "cache.breaker_recloses" (Cache.breaker_recloses cache);
      set t "cache.breaker_short_circuits"
        (Cache.breaker_short_circuits cache)

let capture_resilience ?since t =
  let s = Resilience.Stats.snapshot () in
  let s =
    match since with None -> s | Some base -> Resilience.Stats.diff s base
  in
  set t "resilience.solves" s.Resilience.Stats.solves;
  set t "resilience.attempts" s.Resilience.Stats.attempts;
  set t "resilience.retries" s.Resilience.Stats.retries;
  set t "resilience.recoveries" s.Resilience.Stats.recoveries;
  set t "resilience.failures" s.Resilience.Stats.failures;
  set t "resilience.rejected_waveforms" s.Resilience.Stats.rejected_waveforms;
  set t "pool.stray_exceptions" (Pool.stray_exceptions ())

let capture_guard ?since t =
  let s = Guard.Stats.snapshot () in
  let s = match since with None -> s | Some base -> Guard.Stats.diff s base in
  set t "guard.checked" s.Guard.Stats.checked;
  set t "guard.agreements" s.Guard.Stats.agreements;
  set t "guard.disagreements" s.Guard.Stats.disagreements;
  set t "guard.errors" s.Guard.Stats.errors;
  (* High-water delay delta, expressed in femtoseconds so it fits the
     integer counter table without losing the interesting digits. *)
  set t "guard.max_delta_fs"
    (int_of_float (Float.round (s.Guard.Stats.max_delta_s *. 1e15)))

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.timers)

let pp_report ppf t =
  let cs = counters t and ts = timers t in
  Format.fprintf ppf "@[<v>runtime metrics:@,";
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-28s %12d@," k v) cs;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %-28s %12.3f s@," k v)
    ts;
  if cs = [] && ts = [] then Format.fprintf ppf "  (empty)@,";
  Format.fprintf ppf "@]"

(* Tiny hand-rolled JSON: names are dotted identifiers, but escape
   defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v) fields)
  ^ "}"

(* Prometheus text exposition. Registry names are dotted identifiers,
   optionally carrying a literal label suffix in braces
   ("server.latency_ms_bucket{le=\"5\"}"); the label part is emitted
   verbatim while the base name is sanitized into a metric name. *)

let prom_sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let prom_split name =
  match String.index_opt name '{' with
  | Some i when name.[String.length name - 1] = '}' ->
      (String.sub name 0 i, String.sub name i (String.length name - i))
  | _ -> (name, "")

let prom_type base =
  let counterish suffix =
    String.length base >= String.length suffix
    && String.sub base
         (String.length base - String.length suffix)
         (String.length suffix)
       = suffix
  in
  if List.exists counterish [ "_total"; "_bucket"; "_count"; "_sum" ] then
    "counter"
  else "gauge"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let family base =
    if not (Hashtbl.mem seen base) then begin
      Hashtbl.add seen base ();
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" base (prom_type base))
    end
  in
  List.iter
    (fun (name, v) ->
      let base, labels = prom_split name in
      let base = "sta_" ^ prom_sanitize base in
      family base;
      Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base labels v))
    (counters t);
  List.iter
    (fun (name, v) ->
      let base, labels = prom_split name in
      let base = "sta_" ^ prom_sanitize base ^ "_seconds" in
      family base;
      Buffer.add_string buf (Printf.sprintf "%s%s %.6f\n" base labels v))
    (timers t);
  Buffer.contents buf

let to_json t =
  json_obj
    [
      ( "counters",
        json_obj (List.map (fun (k, v) -> (k, string_of_int v)) (counters t)) );
      ( "timers_s",
        json_obj
          (List.map (fun (k, v) -> (k, Printf.sprintf "%.6f" v)) (timers t)) );
    ]
