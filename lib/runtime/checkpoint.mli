(** Versioned, atomically-written journal of completed sweep cases.

    A sweep ([Noise.Eval.run_table], [Noise.Montecarlo.run]) opens a
    journal keyed by a {e fingerprint} of everything that determines
    its per-case results — scenario, solver config, resilience policy,
    technique set, seed. Each finished case is recorded as its own
    [case-NNNNNN] file (version magic + CRC-32 of the payload +
    [Marshal] payload) via the cache's tmp+rename pattern, so a kill
    at any instant leaves only complete entries, and a bit-rotted
    entry fails its checksum on [find] (it is unlinked and
    recomputed) instead of reaching [Marshal]. Re-running the same sweep replays recorded cases
    from the journal and computes only the missing ones; since case
    evaluation is deterministic, the resumed output is byte-identical
    to an uninterrupted run.

    Opening with a fingerprint that does not match the journal on disk
    (the sweep changed, or the format version did) wipes the stale
    entries rather than replaying results from a different sweep.

    [find] marshals back whatever type [record] stored; the caller
    must pair them on the same type and include a payload-schema tag
    in the fingerprint so a layout change invalidates old journals. *)

type t

val open_ : dir:string -> name:string -> fingerprint:string -> t
(** Open (creating directories as needed) the journal [dir/<name>]
    ([name] is sanitized to filesystem-safe characters). Entries
    recorded under a different fingerprint are deleted. *)

val find : t -> int -> 'a option
(** Recorded result for case [i], or [None] if absent or torn (a torn
    entry is unlinked). *)

val record : t -> int -> 'a -> unit
(** Persist case [i] atomically. I/O failure (full disk) is swallowed:
    the journal degrades to recomputation, never crashes the sweep. *)

val completed : t -> int
(** Number of recorded entries. *)
