(** Content-keyed memo table for transient-simulation results.

    Every expensive simulation in the repo ultimately produces a small
    set of probed waveforms, so the cache stores [Waveform.Wave.t list]
    values under hex-digest keys built from the full simulation content
    (circuit/scenario parameters, source stimulus, solver options) via
    {!Key}. The table is sharded, each shard behind its own mutex, so
    domains of a {!Pool} sweep hit different locks; hit/miss counters
    are atomics.

    An optional on-disk layer persists results across process runs:
    misses fall through to [dir/<key>] (OCaml [Marshal] format with a
    version header and a CRC-32 of the payload, validated on every
    read) and fresh results are written back atomically, so a
    repeated bench invocation skips already-simulated cases. Every disk
    read failure is still a miss — sweeps never die on a bad cache
    entry — but failures are classified: corrupt or truncated entries
    bump {!read_errors} and are unlinked so they cannot poison future
    runs; I/O errors (permissions and the like) bump {!read_errors}
    and leave the file in place.

    The disk layer sits behind a {!Breaker}: after a run of consecutive
    disk failures the breaker opens and disk ops are short-circuited
    (the memory shards keep serving) until a cooldown elapses, at which
    point a single half-open probe either re-closes the breaker or
    re-opens it. {!Disk_fault} injects deterministic, seeded disk-op
    failures for chaos testing, mirroring [Spice.Transient.Fault]'s
    spec grammar. *)

(** Deterministic disk-layer fault injection. Armed process-globally
    (the cache's disk ops all roll against one plan), indexed by a
    global op counter so a given plan faults the same ops every run. *)
module Disk_fault : sig
  type plan = Nth of { n : int } | Fraction of { rate : float; seed : int }

  val of_string : string -> (plan, string) result
  (** Spec grammar: ["nth:"N | RATE["@"SEED]] — e.g. ["nth:3"],
      ["0.5"], ["0.8@13"]. *)

  val arm : plan -> unit
  (** Arm [plan] and reset the op/injection counters. *)

  val disarm : unit -> unit
  val is_armed : unit -> bool

  val injected : unit -> int
  (** Disk ops failed by injection since the last {!arm}. *)
end

(** Circuit breaker for the disk layer: [Closed] (normal) opens after
    [threshold] consecutive failures; [Open] short-circuits every op
    until [cooldown_s] elapses; then [Half_open] admits exactly one
    probe whose outcome re-closes or re-opens the breaker. *)
module Breaker : sig
  type state = Closed | Open | Half_open
  type t

  val state_to_string : state -> string

  val create :
    ?threshold:int -> ?cooldown_s:float -> ?now:(unit -> float) -> unit -> t
  (** [threshold] defaults to 8 consecutive failures, [cooldown_s] to
      5 s. [now] is injectable for sleep-free state-machine tests. *)

  val state : t -> state

  val admit : t -> bool
  (** Should a disk op be attempted right now? [false] means it was
      short-circuited. *)

  val success : t -> unit
  val failure : t -> unit

  val opens : t -> int
  (** Closed/half-open → open transitions. *)

  val recloses : t -> int
  (** Half-open → closed transitions (successful probes). *)

  val short_circuits : t -> int
  (** Ops refused while open/half-open. *)
end

type t

val create :
  ?shards:int ->
  ?disk_dir:string ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?now:(unit -> float) ->
  ?sparse_levels:float list ->
  ?sparse_eps:float ->
  ?max_disk_bytes:int ->
  unit ->
  t
(** [shards] defaults to 16. When [disk_dir] is given the directory is
    created on demand and a {!Breaker} guards the disk layer
    ([breaker_threshold], [breaker_cooldown_s] and [now] configure it);
    without [disk_dir] there is no breaker.

    A non-empty [sparse_levels] turns on threshold-windowed
    sparsification ({!Waveform.Sparse.compress} with [sparse_eps],
    default {!Waveform.Sparse.default_eps}) of the *disk* copies:
    memory shards keep the dense waves, so in-process replay stays
    byte-identical, while cross-process round-trips reproduce every
    listed crossing level exactly and everything else within
    [sparse_eps]. [max_disk_bytes] caps the disk layer: when a write
    pushes {!disk_bytes} past the cap, entries are LRU-evicted
    (oldest mtime first) down to 90% of it. *)

val disk_dir : t -> string option

(** Key construction. A key is a digest over a tag plus typed parts;
    floats are rendered in lossless hex notation so equal keys mean
    bit-equal inputs. *)
module Key : sig
  type part

  val str : string -> part
  val int : int -> part
  val bool : bool -> part
  val float : float -> part
  val wave : Waveform.Wave.t -> part
  (** Digest of the full sample data — two waves collide only if their
      time grids and values are bit-identical. *)

  val make : string -> part list -> string
  (** [make tag parts] is a stable hex digest. The tag namespaces call
      sites so identical parameter lists from different simulations
      cannot collide. *)
end

val find : t -> string -> Waveform.Wave.t list option
(** Memory first, then disk; a disk hit is promoted into memory. *)

val store : t -> string -> Waveform.Wave.t list -> unit

val memo : t -> string -> (unit -> Waveform.Wave.t list) -> Waveform.Wave.t list
(** [find] or compute-and-[store]. The shard lock is not held during
    the computation: two domains racing on one key may both compute,
    deterministically producing the same value — last store wins. *)

val remove : t -> string -> unit
(** Evict a key from memory and unlink its disk entry (if any). Used
    by the resilience layer to purge cached results that fail
    post-solve validation. *)

type scrub_report = {
  scanned : int;  (** entries read and CRC-validated *)
  corrupt : int;  (** entries that failed validation and were removed *)
  tmp_reaped : int;  (** tmp leftovers from interrupted writes, unlinked *)
  elapsed_s : float;
  complete : bool;  (** the budget covered every disk entry *)
}

val scrub : ?budget_s:float -> ?now:(unit -> float) -> t -> scrub_report
(** Bounded-time startup scrub of the disk layer: CRC-validate entries
    newest-first (a crash or breaker-open window tears the most
    recently written files), {!remove} anything that fails to decode,
    and unlink tmp leftovers from writes the previous process died
    inside. Runs outside the breaker and the fault injector — this is
    the recovery path a crash-only restart takes before serving, so it
    must see the real disk. [budget_s] defaults to 2 s; a no-disk
    cache reports an empty, complete scrub. *)

val hits : t -> int
(** In-memory hits plus disk hits. *)

val disk_hits : t -> int
val misses : t -> int

val read_errors : t -> int
(** Disk-layer read failures mapped to misses (corrupt entries,
    I/O errors). *)

val write_errors : t -> int
(** Disk-layer write failures (full/read-only disk, injected faults) —
    the entry stays memory-only. *)

val bytes_written : t -> int
(** Total bytes of completed disk-entry writes (header + payload)
    since creation (or the last {!clear}). *)

val disk_bytes : t -> int
(** Resident bytes of the disk layer: seeded by a directory walk at
    creation, then maintained on every write, unlink and eviction. *)

val evictions : t -> int
(** Disk entries unlinked by the [max_disk_bytes] LRU cap. *)

val sparse_enabled : t -> bool
(** Whether disk writes go through {!Waveform.Sparse.compress}. *)

val breaker : t -> Breaker.t option
(** The breaker guarding the disk layer, when one exists. *)

val breaker_state : t -> Breaker.state option
val breaker_opens : t -> int
val breaker_recloses : t -> int
val breaker_short_circuits : t -> int

val length : t -> int
(** Entries currently resident in memory. *)

val clear : t -> unit
(** Drop the in-memory layer and reset counters; disk files stay. *)

val pp_stats : Format.formatter -> t -> unit
