(** Content-keyed memo table for transient-simulation results.

    Every expensive simulation in the repo ultimately produces a small
    set of probed waveforms, so the cache stores [Waveform.Wave.t list]
    values under hex-digest keys built from the full simulation content
    (circuit/scenario parameters, source stimulus, solver options) via
    {!Key}. The table is sharded, each shard behind its own mutex, so
    domains of a {!Pool} sweep hit different locks; hit/miss counters
    are atomics.

    An optional on-disk layer persists results across process runs:
    misses fall through to [dir/<key>] (OCaml [Marshal] format with a
    version header) and fresh results are written back atomically, so a
    repeated bench invocation skips already-simulated cases. Every disk
    read failure is still a miss — sweeps never die on a bad cache
    entry — but failures are classified: corrupt or truncated entries
    bump {!read_errors} and are unlinked so they cannot poison future
    runs; I/O errors (permissions and the like) bump {!read_errors}
    and leave the file in place. *)

type t

val create : ?shards:int -> ?disk_dir:string -> unit -> t
(** [shards] defaults to 16. When [disk_dir] is given the directory is
    created on demand. *)

val disk_dir : t -> string option

(** Key construction. A key is a digest over a tag plus typed parts;
    floats are rendered in lossless hex notation so equal keys mean
    bit-equal inputs. *)
module Key : sig
  type part

  val str : string -> part
  val int : int -> part
  val bool : bool -> part
  val float : float -> part
  val wave : Waveform.Wave.t -> part
  (** Digest of the full sample data — two waves collide only if their
      time grids and values are bit-identical. *)

  val make : string -> part list -> string
  (** [make tag parts] is a stable hex digest. The tag namespaces call
      sites so identical parameter lists from different simulations
      cannot collide. *)
end

val find : t -> string -> Waveform.Wave.t list option
(** Memory first, then disk; a disk hit is promoted into memory. *)

val store : t -> string -> Waveform.Wave.t list -> unit

val memo : t -> string -> (unit -> Waveform.Wave.t list) -> Waveform.Wave.t list
(** [find] or compute-and-[store]. The shard lock is not held during
    the computation: two domains racing on one key may both compute,
    deterministically producing the same value — last store wins. *)

val remove : t -> string -> unit
(** Evict a key from memory and unlink its disk entry (if any). Used
    by the resilience layer to purge cached results that fail
    post-solve validation. *)

val hits : t -> int
(** In-memory hits plus disk hits. *)

val disk_hits : t -> int
val misses : t -> int

val read_errors : t -> int
(** Disk-layer read failures mapped to misses (corrupt entries,
    I/O errors). *)

val length : t -> int
(** Entries currently resident in memory. *)

val clear : t -> unit
(** Drop the in-memory layer and reset counters; disk files stay. *)

val pp_stats : Format.formatter -> t -> unit
