(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Used as the integrity check on the server's request journal frames
   and the cache's disk entries: unlike a truncation check alone it
   catches bit rot and partially overwritten blocks, and unlike
   Digest/MD5 it is 4 bytes and cheap enough to run on every frame. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let t = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string s = update 0l s 0 (String.length s)
