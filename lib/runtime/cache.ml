module Key = struct
  type part = string

  let str s = Printf.sprintf "s%d:%s" (String.length s) s
  let int i = Printf.sprintf "i:%d" i
  let bool b = if b then "b:1" else "b:0"

  (* Hex float notation is lossless: equal parts mean bit-equal
     doubles. *)
  let float f = Printf.sprintf "f:%h" f

  let wave w =
    let payload =
      Marshal.to_string (Waveform.Wave.times w, Waveform.Wave.values w) []
    in
    "w:" ^ Digest.to_hex (Digest.string payload)

  let make tag parts =
    Digest.to_hex (Digest.string (String.concat "\x00" (str tag :: parts)))
end

(* ------------------------------------------------------------------ *)
(* Deterministic disk-layer fault injection. Mirrors
   [Spice.Transient.Fault]'s [nth:N | RATE[@SEED]] grammar so the CLI
   vocabulary is the same for solver and cache chaos; every armed roll
   is indexed by a process-global disk-op counter, so a given
   (plan, op sequence) always faults the same ops. *)

module Disk_fault = struct
  type plan = Nth of { n : int } | Fraction of { rate : float; seed : int }

  let armed : plan option Atomic.t = Atomic.make None
  let op_index = Atomic.make 0
  let injected_ops = Atomic.make 0

  let arm plan =
    Atomic.set op_index 0;
    Atomic.set injected_ops 0;
    Atomic.set armed (Some plan)

  let disarm () = Atomic.set armed None
  let is_armed () = Option.is_some (Atomic.get armed)
  let injected () = Atomic.get injected_ops

  let roll_float seed k =
    let d = Digest.string (Printf.sprintf "cache.fault:%d:%d" seed k) in
    let x = ref 0 in
    for i = 0 to 5 do
      x := (!x lsl 8) lor Char.code d.[i]
    done;
    float_of_int !x /. float_of_int (1 lsl 48)

  let roll () =
    match Atomic.get armed with
    | None -> false
    | Some plan ->
        let k = Atomic.fetch_and_add op_index 1 in
        let hit =
          match plan with
          | Nth { n } -> k = n
          | Fraction { rate; seed } -> roll_float seed k < rate
        in
        if hit then Atomic.incr injected_ops;
        hit

  (* Spec grammar: "nth:"N | RATE["@"SEED]. Examples: "nth:3" (the
     third disk op fails), "0.5" (half the disk ops fail, seed 0),
     "0.8@13". *)
  let of_string s =
    let nth_prefix = "nth:" in
    let has_nth =
      String.length s > String.length nth_prefix
      && String.sub s 0 (String.length nth_prefix) = nth_prefix
    in
    if has_nth then
      let num =
        String.sub s (String.length nth_prefix)
          (String.length s - String.length nth_prefix)
      in
      match int_of_string_opt num with
      | Some n when n >= 0 -> Ok (Nth { n })
      | _ ->
          Error (Printf.sprintf "bad cache fault spec %S: nth:N needs N >= 0" s)
    else
      let rate_s, seed =
        match String.index_opt s '@' with
        | Some i ->
            (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
        | None -> (s, "0")
      in
      match (float_of_string_opt rate_s, int_of_string_opt seed) with
      | Some rate, Some seed when rate >= 0.0 && rate <= 1.0 ->
          Ok (Fraction { rate; seed })
      | _ ->
          Error
            (Printf.sprintf
               "bad cache fault spec %S: want nth:N or RATE[@SEED] with RATE \
                in [0,1]"
               s)

  exception Injected
end

(* ------------------------------------------------------------------ *)
(* Circuit breaker guarding the disk layer: after [threshold]
   consecutive disk failures the breaker opens and every disk op is
   short-circuited (the memory shards keep serving) until [cooldown_s]
   has elapsed; then exactly one probe op is admitted (half-open) and
   its outcome either re-closes the breaker or re-opens it for another
   cooldown. The clock is injectable so the state machine is testable
   without sleeping. *)

module Breaker = struct
  type state = Closed | Open | Half_open

  let state_to_string = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half_open"

  type t = {
    threshold : int;
    cooldown_s : float;
    now : unit -> float;
    m : Mutex.t;
    mutable state : state;
    mutable consecutive : int;
    mutable opened_at : float;
    mutable probing : bool;
    mutable opens : int;
    mutable recloses : int;
    mutable short_circuits : int;
  }

  let create ?(threshold = 8) ?(cooldown_s = 5.0) ?(now = Unix.gettimeofday)
      () =
    if threshold < 1 then invalid_arg "Cache.Breaker.create: threshold < 1";
    if cooldown_s < 0.0 then
      invalid_arg "Cache.Breaker.create: cooldown_s < 0";
    {
      threshold;
      cooldown_s;
      now;
      m = Mutex.create ();
      state = Closed;
      consecutive = 0;
      opened_at = neg_infinity;
      probing = false;
      opens = 0;
      recloses = 0;
      short_circuits = 0;
    }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let state t = locked t (fun () -> t.state)
  let opens t = locked t (fun () -> t.opens)
  let recloses t = locked t (fun () -> t.recloses)
  let short_circuits t = locked t (fun () -> t.short_circuits)

  (* Should this disk op be attempted? Open transitions to half-open
     once the cooldown has elapsed, admitting exactly one probe;
     everything else during open/half-open is short-circuited. *)
  let admit t =
    locked t (fun () ->
        match t.state with
        | Closed -> true
        | Open when t.now () -. t.opened_at >= t.cooldown_s ->
            t.state <- Half_open;
            t.probing <- true;
            true
        | Open ->
            t.short_circuits <- t.short_circuits + 1;
            false
        | Half_open when not t.probing ->
            t.probing <- true;
            true
        | Half_open ->
            t.short_circuits <- t.short_circuits + 1;
            false)

  let success t =
    locked t (fun () ->
        match t.state with
        | Closed -> t.consecutive <- 0
        | Half_open ->
            t.state <- Closed;
            t.consecutive <- 0;
            t.probing <- false;
            t.recloses <- t.recloses + 1
        | Open -> ())

  let failure t =
    locked t (fun () ->
        match t.state with
        | Closed ->
            t.consecutive <- t.consecutive + 1;
            if t.consecutive >= t.threshold then begin
              t.state <- Open;
              t.opened_at <- t.now ();
              t.opens <- t.opens + 1
            end
        | Half_open ->
            t.state <- Open;
            t.opened_at <- t.now ();
            t.probing <- false;
            t.opens <- t.opens + 1
        | Open -> ())
end

type shard = { m : Mutex.t; tbl : (string, Waveform.Wave.t list) Hashtbl.t }

type t = {
  shards : shard array;
  disk_dir : string option;
  breaker : Breaker.t option;
  sparse : (float list * float) option;  (* (levels, eps) for disk writes *)
  max_disk_bytes : int option;
  hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  read_errors : int Atomic.t;
  write_errors : int Atomic.t;
  bytes_written : int Atomic.t;
  disk_bytes : int Atomic.t;
  evictions : int Atomic.t;
  evict_m : Mutex.t;
}

let file_size path =
  match (Unix.stat path).Unix.st_size with
  | s -> s
  | exception Unix.Unix_error _ -> 0

(* The resident-bytes gauge starts from a directory walk so a warm
   cache dir left by an earlier process is accounted for; after that
   every write/unlink maintains it incrementally. *)
let scan_disk_bytes dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun acc name -> acc + file_size (Filename.concat dir name))
        0 names

let create ?(shards = 16) ?disk_dir ?breaker_threshold ?breaker_cooldown_s
    ?now ?(sparse_levels = []) ?(sparse_eps = Waveform.Sparse.default_eps)
    ?max_disk_bytes () =
  if shards < 1 then invalid_arg "Cache.create: shards < 1";
  (match max_disk_bytes with
  | Some b when b < 1 -> invalid_arg "Cache.create: max_disk_bytes < 1"
  | _ -> ());
  {
    shards =
      Array.init shards (fun _ ->
          { m = Mutex.create (); tbl = Hashtbl.create 64 });
    disk_dir;
    breaker =
      Option.map
        (fun (_ : string) ->
          Breaker.create ?threshold:breaker_threshold
            ?cooldown_s:breaker_cooldown_s ?now ())
        disk_dir;
    sparse =
      (match sparse_levels with
      | [] -> None
      | levels -> Some (levels, sparse_eps));
    max_disk_bytes;
    hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    read_errors = Atomic.make 0;
    write_errors = Atomic.make 0;
    bytes_written = Atomic.make 0;
    disk_bytes =
      Atomic.make
        (match disk_dir with Some d -> scan_disk_bytes d | None -> 0);
    evictions = Atomic.make 0;
    evict_m = Mutex.create ();
  }

let disk_dir t = t.disk_dir

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let locked s f =
  Mutex.lock s.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.m) f

(* ------------------------------------------------------------------ *)
(* Disk layer. Waves are flattened to plain float arrays before
   marshalling so the format does not depend on Wave's representation.
   Format 3 lays out magic, one codec byte (dense or
   threshold-sparsified, see {!Waveform.Sparse}), a CRC-32 of the
   marshalled payload — so a torn or bit-rotted entry is detected
   before [Marshal] ever sees it — then the payload. Format-2 entries
   (same layout minus the codec byte) are still readable, so an
   upgrade inherits a warm cache dir; format-1 entries fail the magic
   check and are reaped like any other corrupt entry. *)

let disk_magic = "noisy_sta.cache.3\n"
let disk_magic_v2 = "noisy_sta.cache.2\n"
let codec_dense = '\000'
let codec_sparse = '\001'

let disk_path dir key = Filename.concat dir key

let is_tmp name =
  let rec find i =
    i + 5 <= String.length name
    && (String.equal (String.sub name i 5) ".tmp." || find (i + 1))
  in
  find 0

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let crc_bytes crc =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 crc;
  Bytes.to_string b

(* Parse one disk entry held fully in memory: magic, codec byte
   (format 3), big-endian CRC-32 of the payload, marshalled payload.
   Returns the decoded waves or [Error `Corrupt]; shared by the read
   path and the startup scrub. *)
let decode_entry raw =
  let mlen = String.length disk_magic in
  let payload_at pos =
    if String.length raw < pos + 4 then Error `Corrupt
    else
      let stored = String.get_int32_be raw pos in
      let payload_pos = pos + 4 in
      let payload_len = String.length raw - payload_pos in
      if Crc32.update 0l raw payload_pos payload_len <> stored then
        Error `Corrupt
      else
        match
          (Marshal.from_string raw payload_pos
            : (float array * float array) list)
        with
        | raw_waves
          when List.for_all
                 (fun (ts, vs) -> Array.length ts = Array.length vs)
                 raw_waves ->
            Ok
              (List.map (fun (ts, vs) -> Waveform.Wave.create ts vs) raw_waves)
        | _ -> Error `Corrupt
        | exception _ -> Error `Corrupt
  in
  if String.length raw < mlen then Error `Corrupt
  else
    let magic = String.sub raw 0 mlen in
    if String.equal magic disk_magic then
      if
        String.length raw < mlen + 1
        || (raw.[mlen] <> codec_dense && raw.[mlen] <> codec_sparse)
      then Error `Corrupt
      else payload_at (mlen + 1)
    else if String.equal magic disk_magic_v2 then payload_at mlen
    else Error `Corrupt

(* Report a disk op's outcome to the breaker (when the cache has one).
   An absent file is a successful disk interaction: only genuine
   failures count toward opening the breaker. *)
let breaker_outcome t ok =
  match t.breaker with
  | None -> ()
  | Some b -> if ok then Breaker.success b else Breaker.failure b

let breaker_admits t =
  match t.breaker with None -> true | Some b -> Breaker.admit b

(* Every read failure is still a miss — a sweep must never die on a
   bad cache entry — but failures are classified rather than hidden:
   an absent file is a plain miss, a corrupt/truncated entry bumps
   [read_errors] and is unlinked so it cannot poison future runs, and
   an I/O error (permissions, transient FS trouble) bumps
   [read_errors] but leaves the file alone. Armed {!Disk_fault} plans
   surface here as simulated I/O errors, ahead of any file access. *)
let disk_read t dir key =
  let path = disk_path dir key in
  let parse () =
    if Disk_fault.roll () then raise Disk_fault.Injected;
    if not (Sys.file_exists path) then Error `Absent
    else
      let ic = open_in_bin path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      decode_entry raw
  in
  match parse () with
  | Ok waves ->
      breaker_outcome t true;
      Some waves
  | Error `Absent ->
      breaker_outcome t true;
      None
  | Error `Corrupt | (exception (End_of_file | Stdlib.Failure _ | Invalid_argument _)) ->
      Atomic.incr t.read_errors;
      breaker_outcome t false;
      let sz = file_size path in
      (try
         Sys.remove path;
         ignore (Atomic.fetch_and_add t.disk_bytes (-sz))
       with Sys_error _ -> ());
      None
  | exception (Sys_error _ | Disk_fault.Injected) ->
      Atomic.incr t.read_errors;
      breaker_outcome t false;
      None

(* LRU disk eviction: when the resident-bytes gauge exceeds the
   configured cap after a write, unlink entries oldest-mtime-first
   (the same directory walk the scrub does) down to 90% of the cap —
   the hysteresis keeps steady-state writes from evicting one entry
   each. Only the disk copies go; memory-resident waves stay valid.
   [try_lock] makes concurrent writers skip rather than queue: one
   evictor at a time is plenty. *)
let maybe_evict t dir =
  match t.max_disk_bytes with
  | None -> ()
  | Some limit when Atomic.get t.disk_bytes <= limit -> ()
  | Some limit ->
      if Mutex.try_lock t.evict_m then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.evict_m)
          (fun () ->
            let target = limit / 10 * 9 in
            match Sys.readdir dir with
            | exception Sys_error _ -> ()
            | names ->
                let entries =
                  Array.to_list names
                  |> List.filter (fun n -> not (is_tmp n))
                  |> List.filter_map (fun n ->
                         match Unix.stat (Filename.concat dir n) with
                         | st -> Some (st.Unix.st_mtime, st.Unix.st_size, n)
                         | exception Unix.Unix_error _ -> None)
                  |> List.sort (fun (a, _, _) (b, _, _) ->
                         compare (a : float) b)
                in
                List.iter
                  (fun (_, sz, n) ->
                    if Atomic.get t.disk_bytes > target then
                      try
                        Sys.remove (Filename.concat dir n);
                        ignore (Atomic.fetch_and_add t.disk_bytes (-sz));
                        Atomic.incr t.evictions
                      with Sys_error _ -> ())
                  entries)

let disk_write t dir key waves =
  match
    if Disk_fault.roll () then raise Disk_fault.Injected;
    ensure_dir dir;
    let path = disk_path dir key in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        ((Domain.self () :> int))
    in
    (* Sparsification applies to the disk copy only; the memory shards
       keep the dense wave, so in-process replay is byte-identical and
       only a cross-process disk round-trip sees the (crossing-exact,
       eps-bounded) sparse reconstruction. *)
    let waves_out, codec =
      match t.sparse with
      | None -> (waves, codec_dense)
      | Some (levels, eps) ->
          ( List.map (Waveform.Sparse.compress ~eps ~levels) waves,
            codec_sparse )
    in
    let payload =
      Marshal.to_string
        (List.map
           (fun w -> (Waveform.Wave.times w, Waveform.Wave.values w))
           waves_out)
        []
    in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc disk_magic;
        output_char oc codec;
        output_string oc (crc_bytes (Crc32.string payload));
        output_string oc payload);
    let replaced = file_size path in
    Sys.rename tmp path;
    let entry = String.length disk_magic + 1 + 4 + String.length payload in
    ignore (Atomic.fetch_and_add t.bytes_written entry);
    ignore (Atomic.fetch_and_add t.disk_bytes (entry - replaced))
  with
  | () ->
      breaker_outcome t true;
      maybe_evict t dir
  | exception _ ->
      (* a full or read-only disk must not fail the run *)
      Atomic.incr t.write_errors;
      breaker_outcome t false

(* ------------------------------------------------------------------ *)

let find t key =
  let s = shard_of t key in
  match locked s (fun () -> Hashtbl.find_opt s.tbl key) with
  | Some v ->
      Atomic.incr t.hits;
      Some v
  | None -> (
      match t.disk_dir with
      | None -> None
      | Some dir when not (breaker_admits t) -> ignore dir; None
      | Some dir -> (
          match disk_read t dir key with
          | None -> None
          | Some v ->
              Atomic.incr t.hits;
              Atomic.incr t.disk_hits;
              locked s (fun () -> Hashtbl.replace s.tbl key v);
              Some v))

let store t key v =
  let s = shard_of t key in
  locked s (fun () -> Hashtbl.replace s.tbl key v);
  match t.disk_dir with
  | None -> ()
  | Some dir when not (breaker_admits t) -> ignore dir
  | Some dir -> disk_write t dir key v

let memo t key compute =
  match find t key with
  | Some v -> v
  | None ->
      Atomic.incr t.misses;
      let v = compute () in
      store t key v;
      v

let remove t key =
  let s = shard_of t key in
  locked s (fun () -> Hashtbl.remove s.tbl key);
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
      let path = disk_path dir key in
      let sz = file_size path in
      try
        Sys.remove path;
        ignore (Atomic.fetch_and_add t.disk_bytes (-sz))
      with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Startup scrub: CRC-validate disk entries newest-first (the entries
   most plausibly torn by a crash or a breaker-open window are the
   most recently written ones) under a wall-clock budget, unlinking
   anything that fails to decode plus any tmp leftovers from writes
   the process died inside. The scrub bypasses the breaker and the
   fault injector: it is the recovery path, not regular traffic. *)

type scrub_report = {
  scanned : int;
  corrupt : int;
  tmp_reaped : int;
  elapsed_s : float;
  complete : bool;
}

let scrub ?(budget_s = 2.0) ?(now = Unix.gettimeofday) t =
  let empty =
    { scanned = 0; corrupt = 0; tmp_reaped = 0; elapsed_s = 0.0; complete = true }
  in
  match t.disk_dir with
  | None -> empty
  | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> empty
      | names ->
          let t0 = now () in
          let tmp_reaped = ref 0 in
          let candidates = ref [] in
          Array.iter
            (fun name ->
              let path = Filename.concat dir name in
              if is_tmp name then begin
                (try Sys.remove path with Sys_error _ -> ());
                incr tmp_reaped
              end
              else
                match (Unix.stat path).Unix.st_mtime with
                | mtime -> candidates := (mtime, name) :: !candidates
                | exception Unix.Unix_error _ -> ())
            names;
          let by_newest =
            List.sort (fun (a, _) (b, _) -> compare (b : float) a) !candidates
          in
          let scanned = ref 0 and corrupt = ref 0 and complete = ref true in
          let check name =
            let path = Filename.concat dir name in
            match
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with
            | exception Sys_error _ -> ()
            | exception End_of_file -> ()
            | raw -> (
                incr scanned;
                match decode_entry raw with
                | Ok _ -> ()
                | Error `Corrupt ->
                    incr corrupt;
                    remove t name)
          in
          List.iter
            (fun (_, name) ->
              if now () -. t0 > budget_s then complete := false
              else check name)
            by_newest;
          {
            scanned = !scanned;
            corrupt = !corrupt;
            tmp_reaped = !tmp_reaped;
            elapsed_s = now () -. t0;
            complete = !complete;
          })

let hits t = Atomic.get t.hits
let disk_hits t = Atomic.get t.disk_hits
let misses t = Atomic.get t.misses
let read_errors t = Atomic.get t.read_errors
let write_errors t = Atomic.get t.write_errors
let bytes_written t = Atomic.get t.bytes_written
let disk_bytes t = Atomic.get t.disk_bytes
let evictions t = Atomic.get t.evictions
let sparse_enabled t = Option.is_some t.sparse
let breaker t = t.breaker

let breaker_state t =
  Option.map (fun b -> Breaker.state b) t.breaker

let breaker_opens t =
  match t.breaker with None -> 0 | Some b -> Breaker.opens b

let breaker_recloses t =
  match t.breaker with None -> 0 | Some b -> Breaker.recloses b

let breaker_short_circuits t =
  match t.breaker with None -> 0 | Some b -> Breaker.short_circuits b

let length t =
  Array.fold_left
    (fun acc s -> acc + locked s (fun () -> Hashtbl.length s.tbl))
    0 t.shards

let clear t =
  Array.iter (fun s -> locked s (fun () -> Hashtbl.reset s.tbl)) t.shards;
  Atomic.set t.hits 0;
  Atomic.set t.disk_hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.read_errors 0;
  Atomic.set t.write_errors 0;
  (* [disk_bytes] deliberately survives: clearing memory shards does
     not unlink disk entries, so the gauge still describes the dir. *)
  Atomic.set t.bytes_written 0;
  Atomic.set t.evictions 0

let pp_stats ppf t =
  Format.fprintf ppf
    "cache: %d hits (%d from disk), %d misses, %d read errors, %d resident"
    (hits t) (disk_hits t) (misses t) (read_errors t) (length t)
