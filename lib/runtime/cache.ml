module Key = struct
  type part = string

  let str s = Printf.sprintf "s%d:%s" (String.length s) s
  let int i = Printf.sprintf "i:%d" i
  let bool b = if b then "b:1" else "b:0"

  (* Hex float notation is lossless: equal parts mean bit-equal
     doubles. *)
  let float f = Printf.sprintf "f:%h" f

  let wave w =
    let payload =
      Marshal.to_string (Waveform.Wave.times w, Waveform.Wave.values w) []
    in
    "w:" ^ Digest.to_hex (Digest.string payload)

  let make tag parts =
    Digest.to_hex (Digest.string (String.concat "\x00" (str tag :: parts)))
end

type shard = { m : Mutex.t; tbl : (string, Waveform.Wave.t list) Hashtbl.t }

type t = {
  shards : shard array;
  disk_dir : string option;
  hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  read_errors : int Atomic.t;
}

let create ?(shards = 16) ?disk_dir () =
  if shards < 1 then invalid_arg "Cache.create: shards < 1";
  {
    shards =
      Array.init shards (fun _ ->
          { m = Mutex.create (); tbl = Hashtbl.create 64 });
    disk_dir;
    hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    read_errors = Atomic.make 0;
  }

let disk_dir t = t.disk_dir

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let locked s f =
  Mutex.lock s.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.m) f

(* ------------------------------------------------------------------ *)
(* Disk layer. Waves are flattened to plain float arrays before
   marshalling so the format does not depend on Wave's representation. *)

let disk_magic = "noisy_sta.cache.1\n"

let disk_path dir key = Filename.concat dir key

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* Every read failure is still a miss — a sweep must never die on a
   bad cache entry — but failures are classified rather than hidden:
   an absent file is a plain miss, a corrupt/truncated entry bumps
   [read_errors] and is unlinked so it cannot poison future runs, and
   an I/O error (permissions, transient FS trouble) bumps
   [read_errors] but leaves the file alone. *)
let disk_read t dir key =
  let path = disk_path dir key in
  if not (Sys.file_exists path) then None
  else
    let parse () =
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          let magic = really_input_string ic (String.length disk_magic) in
          if magic <> disk_magic then Error `Corrupt
          else
            let raw : (float array * float array) list =
              Marshal.from_channel ic
            in
            Ok (List.map (fun (ts, vs) -> Waveform.Wave.create ts vs) raw))
    in
    match parse () with
    | Ok waves -> Some waves
    | Error `Corrupt | (exception (End_of_file | Stdlib.Failure _ | Invalid_argument _)) ->
        Atomic.incr t.read_errors;
        (try Sys.remove path with Sys_error _ -> ());
        None
    | exception Sys_error _ ->
        Atomic.incr t.read_errors;
        None

let disk_write dir key waves =
  try
    ensure_dir dir;
    let path = disk_path dir key in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        ((Domain.self () :> int))
    in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc disk_magic;
        let raw =
          List.map
            (fun w -> (Waveform.Wave.times w, Waveform.Wave.values w))
            waves
        in
        Marshal.to_channel oc raw []);
    Sys.rename tmp path
  with _ -> () (* a full or read-only disk must not fail the run *)

(* ------------------------------------------------------------------ *)

let find t key =
  let s = shard_of t key in
  match locked s (fun () -> Hashtbl.find_opt s.tbl key) with
  | Some v ->
      Atomic.incr t.hits;
      Some v
  | None -> (
      match t.disk_dir with
      | None -> None
      | Some dir -> (
          match disk_read t dir key with
          | None -> None
          | Some v ->
              Atomic.incr t.hits;
              Atomic.incr t.disk_hits;
              locked s (fun () -> Hashtbl.replace s.tbl key v);
              Some v))

let store t key v =
  let s = shard_of t key in
  locked s (fun () -> Hashtbl.replace s.tbl key v);
  match t.disk_dir with None -> () | Some dir -> disk_write dir key v

let memo t key compute =
  match find t key with
  | Some v -> v
  | None ->
      Atomic.incr t.misses;
      let v = compute () in
      store t key v;
      v

let remove t key =
  let s = shard_of t key in
  locked s (fun () -> Hashtbl.remove s.tbl key);
  match t.disk_dir with
  | None -> ()
  | Some dir -> ( try Sys.remove (disk_path dir key) with Sys_error _ -> ())

let hits t = Atomic.get t.hits
let disk_hits t = Atomic.get t.disk_hits
let misses t = Atomic.get t.misses
let read_errors t = Atomic.get t.read_errors

let length t =
  Array.fold_left
    (fun acc s -> acc + locked s (fun () -> Hashtbl.length s.tbl))
    0 t.shards

let clear t =
  Array.iter (fun s -> locked s (fun () -> Hashtbl.reset s.tbl)) t.shards;
  Atomic.set t.hits 0;
  Atomic.set t.disk_hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.read_errors 0

let pp_stats ppf t =
  Format.fprintf ppf
    "cache: %d hits (%d from disk), %d misses, %d read errors, %d resident"
    (hits t) (disk_hits t) (misses t) (read_errors t) (length t)
