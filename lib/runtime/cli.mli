(** Shared command-line vocabulary for the front-ends.

    [bin/sta_main], [bin/sta_serve], and [bench/main] all configure the
    same evaluation runtime; this module defines the cmdliner flags
    once — engine preset, adaptive tolerance, worker domains, batch
    width, cache, resilience policy, per-solve deadline, differential
    guard, linear-kernel selection, fault injection — and folds the
    parsed values into a {!Engine.t}.

    The term yields a transparent {!spec} first (the raw flag values),
    so front-ends that echo their configuration (the bench [--json]
    report) don't have to reverse-engineer it from the engine. *)

type spec = {
  engine_name : string;       (** [--engine], a validated preset name *)
  ltetol : float option;      (** [--ltetol], volts *)
  jobs : int;                 (** [--jobs], clamped to >= 1 *)
  batch : int option;         (** [--batch], lockstep batch width *)
  use_cache : bool;           (** negated [--no-cache] *)
  cache_dir : string option;  (** [--cache-dir] *)
  fallback : string;          (** [--fallback], a validated policy name *)
  retries : int option;       (** [--retries] *)
  deadline_ms : float option; (** [--deadline] *)
  guard : bool;               (** [--guard] *)
  guard_every : int;          (** [--guard-every] *)
  guard_tol_ps : float;       (** [--guard-tol-ps] *)
  solver : Spice.Transient.solver_kind option; (** [--solver] *)
  jac_reuse : bool;           (** negated [--no-jac-reuse] *)
  fault : Spice.Transient.Fault.plan option;   (** [--inject-faults] *)
  cache_fault : Cache.Disk_fault.plan option;
      (** [--inject-cache-faults] *)
  prune_tol_ps : float;
      (** [--prune-tol-ps], alignment branch-and-bound slack; 0 =
          exhaustive sweep *)
  sparse_cache : bool;        (** [--sparse-cache] (or [--sparse-eps]) *)
  sparse_eps : float option;  (** [--sparse-eps], volts *)
  cache_max_mb : int option;  (** [--cache-max-mb], LRU disk cap *)
}

type sweep = {
  metrics : bool;               (** [--metrics] *)
  checkpoint_dir : string option; (** [--checkpoint] *)
  ladder : string list option;
      (** [--ladder], comma-split technique names. Left as raw strings
          — the runtime layer doesn't know the technique registry;
          callers resolve via [Eqwave.Ladder.of_names]. *)
}

val engine_conv : string Cmdliner.Arg.conv
(** Engine preset name, validated against {!Engine.of_name}. *)

val spec_term :
  ?default_engine:string -> ?default_cache_dir:string -> unit ->
  spec Cmdliner.Term.t
(** The engine-configuration flags. [default_engine] defaults to
    ["reference"] ([sta_serve] passes ["fast"]); [default_cache_dir]
    is the default for [--cache-dir] (the bench passes its on-disk
    cache directory, the binaries keep the cache in memory). *)

val sweep_term : unit -> sweep Cmdliner.Term.t
(** The sweep-harness flags ([--metrics]/[--checkpoint]/[--ladder]) —
    separate from {!spec_term} so a front-end without sweeps (the
    daemon) doesn't advertise them. *)

val engine_of_spec : ?sparse_levels:float list -> spec -> Engine.t
(** Assemble the engine: preset, then tolerance, resilience policy
    (with the retry budget), deadline, guard, solver kind, Jacobian
    reuse, batch width; a fresh {!Pool} when [jobs > 1] and a fresh
    {!Cache} unless disabled. [sparse_levels] are the threshold
    voltages handed to the cache when [--sparse-cache] is on — the
    runtime layer doesn't know the device thresholds, so front-ends
    supply them (default: empty, which disables sparsification even
    with the flag). The caller owns the pool ({!Engine.pool}) and must
    shut it down. Does NOT arm fault injection — call {!arm_faults}
    exactly once per process. *)

val policy_of_spec : spec -> Resilience.policy
(** Just the resilience policy ([--fallback]/[--retries]). *)

val arm_faults : spec -> unit
(** Arm [--inject-faults] and [--inject-cache-faults] (both
    process-global); no-op without the flags. *)
