type t =
  | Non_convergence of { at : float }
  | Step_budget of { at : float; budget : int }
  | Non_finite of { what : string }
  | Rail_bound of { what : string; v : float; lo : float; hi : float }
  | Missing_crossing of { what : string; level : float }
  | Cache_io of { path : string; reason : string }
  | Missing_cell of { cell : string }
  | Unsupported of { what : string }
  | Mapping_degraded of { technique : string; rung : int; score_v : float }
  | Mapping_exhausted of { tried : int; last : string }
  | Deadline_exceeded of { at : float; budget_ms : float }
  | Overloaded of { queue_depth : int }
  | Queue_timeout of { waited_ms : float; budget_ms : float }
  | Too_many_connections of { active : int; limit : int }

exception Error of t

let fail f = raise (Error f)

let code = function
  | Non_convergence _ -> "non_convergence"
  | Step_budget _ -> "step_budget"
  | Non_finite _ -> "non_finite"
  | Rail_bound _ -> "rail_bound"
  | Missing_crossing _ -> "missing_crossing"
  | Cache_io _ -> "cache_io"
  | Missing_cell _ -> "missing_cell"
  | Unsupported _ -> "unsupported"
  | Mapping_degraded _ -> "mapping_degraded"
  | Mapping_exhausted _ -> "mapping_exhausted"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Overloaded _ -> "overloaded"
  | Queue_timeout _ -> "queue_timeout"
  | Too_many_connections _ -> "too_many_connections"

(* Recoverable = a safer solver configuration could plausibly change
   the outcome, so the resilience ladder should retry. The rest are
   environment or input defects no re-solve can fix: a degraded or
   exhausted mapping is a property of the waveform, and an expired
   wall-clock budget cannot be beaten by re-solving the same work
   under the same budget. *)
(* The admission-control variants are recoverable in the client-retry
   sense: shedding says nothing about the query, only about transient
   server load, so retrying after backoff is the right move. *)
let is_recoverable = function
  | Non_convergence _ | Step_budget _ | Non_finite _ | Rail_bound _
  | Missing_crossing _ | Overloaded _ | Queue_timeout _
  | Too_many_connections _ ->
      true
  | Cache_io _ | Missing_cell _ | Unsupported _ | Mapping_degraded _
  | Mapping_exhausted _ | Deadline_exceeded _ ->
      false

let to_string = function
  | Non_convergence { at } ->
      Printf.sprintf "solver did not converge at t=%.4g s" at
  | Step_budget { at; budget } ->
      Printf.sprintf "step budget of %d exhausted at t=%.4g s" budget at
  | Non_finite { what } -> Printf.sprintf "non-finite sample in %s" what
  | Rail_bound { what; v; lo; hi } ->
      Printf.sprintf "%s at %.4g V outside rails [%.4g, %.4g] V" what v lo hi
  | Missing_crossing { what; level } ->
      Printf.sprintf "%s never crosses %.4g V" what level
  | Cache_io { path; reason } ->
      Printf.sprintf "cache I/O error on %s: %s" path reason
  | Missing_cell { cell } -> Printf.sprintf "cell not in library: %s" cell
  | Unsupported { what } -> Printf.sprintf "unsupported: %s" what
  | Mapping_degraded { technique; rung; score_v } ->
      Printf.sprintf "mapping degraded to %s (rung %d, deviation %.4g V)"
        technique rung score_v
  | Mapping_exhausted { tried; last } ->
      Printf.sprintf "mapping ladder exhausted after %d rungs (last: %s)" tried
        last
  | Deadline_exceeded { at; budget_ms } ->
      Printf.sprintf "deadline of %.4g ms exceeded at t=%.4g s" budget_ms at
  | Overloaded { queue_depth } ->
      Printf.sprintf
        "server overloaded: admission queue full at depth %d, request shed"
        queue_depth
  | Queue_timeout { waited_ms; budget_ms } ->
      Printf.sprintf
        "request waited %.4g ms in queue, past its %.4g ms queueing budget"
        waited_ms budget_ms
  | Too_many_connections { active; limit } ->
      Printf.sprintf
        "server at its connection budget (%d active of %d), connection shed"
        active limit

let pp ppf f = Format.pp_print_string ppf (to_string f)

let of_exn = function
  | Error f -> Some f
  | Spice.Transient.No_convergence at -> Some (Non_convergence { at })
  | Spice.Transient.Step_budget_exhausted { at; budget } ->
      Some (Step_budget { at; budget })
  | Spice.Transient.Deadline_exceeded { at; budget_ms } ->
      Some (Deadline_exceeded { at; budget_ms })
  | _ -> None

let () =
  Printexc.register_printer (function
    | Error f -> Some ("Runtime.Failure: " ^ to_string f)
    | _ -> None)
