(** Differential accuracy guard.

    Cross-validates a deterministic, seeded sample (roughly 1 in
    [every] cases) of fast-engine results against the reference solver
    preset, counting agreements and disagreements beyond a delay
    tolerance. Sweeps consult {!selects} per case index, re-evaluate
    the selected cases under the reference engine, and feed the delay
    delta into {!record}; the process-global {!Stats} then make silent
    accuracy drift an observable, CI-checkable signal (surfaced through
    [Runtime.Metrics] and the bench [--json] [guard] section). *)

type t

val make : ?every:int -> ?seed:int -> ?tol_s:float -> unit -> t
(** Defaults: check every 8th case (statistically), seed 0, tolerance
    1 ps. Raises [Invalid_argument] when [every < 1] or [tol_s] is not
    finite. *)

val default : t
val every : t -> int
val seed : t -> int
val tol_s : t -> float

val fingerprint : t -> string
(** Stable digest input for checkpoint fingerprints — guarded sweeps
    replay extra reference solves, which shifts fault-injection solve
    indices, so resumed journals must not mix guard settings. *)

val selects : t -> int -> bool
(** Whether case index [i] is in the guarded sample. Deterministic in
    [(seed, i)] — independent of pool scheduling and resume points. *)

val record : t -> delta_s:float -> bool
(** Record one fast-vs-reference delay delta (seconds); returns whether
    it agrees within [tol_s] and updates {!Stats} accordingly. *)

val record_error : unit -> unit
(** Count a guarded case whose reference re-evaluation itself failed —
    neither agreement nor disagreement. *)

(** Process-global counters, same discipline as
    [Spice.Transient.Stats]: atomics, snapshot/diff/reset, so pool
    domains account correctly. [max_delta_s] is a high-water mark
    ([diff] keeps the current mark rather than subtracting). *)
module Stats : sig
  type snapshot = {
    checked : int;
    agreements : int;
    disagreements : int;
    errors : int;
    max_delta_s : float;
  }

  val snapshot : unit -> snapshot
  val diff : snapshot -> snapshot -> snapshot
  val reset : unit -> unit
  val pp : Format.formatter -> snapshot -> unit
end
