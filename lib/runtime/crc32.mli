(** CRC-32 (IEEE 802.3) checksums for on-disk integrity checks.

    The server's request journal stamps every frame with one and the
    cache's disk layer stamps every entry; both validate on read so a
    torn or bit-rotted file is detected instead of deserialised. The
    value is the standard reflected-polynomial CRC-32 (what [cksum -o 3],
    zlib and PNG compute), so hostile test fixtures can be produced with
    any external tool. *)

val string : string -> int32
(** CRC-32 of a whole string. *)

val update : int32 -> string -> int -> int -> int32
(** [update crc s pos len] extends [crc] with a substring, so framed
    formats can checksum without copying. [string s] is
    [update 0l s 0 (String.length s)]. *)
