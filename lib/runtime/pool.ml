type t = {
  jobs : int;
  mutable domains : unit Domain.t list;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable stopping : bool;
}

(* Process-global count of task exceptions the workers swallowed.
   Well-behaved tasks ([map] chunks) trap their own exceptions; a
   nonzero count means some raw task leaked one. *)
let strays = Atomic.make 0

let stray_exceptions () = Atomic.get strays

(* Resource-exhaustion and interrupt exceptions must propagate — they
   signal a dying process, and swallowing them would turn an OOM into
   silent data loss. They kill the worker domain; [shutdown]'s join
   re-raises them in the owner. *)
let is_fatal = function
  | Out_of_memory | Stack_overflow | Sys.Break -> true
  | _ -> false

let worker t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cv t.m
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* stopping and drained *)
        Mutex.unlock t.m
    | Some task ->
        Mutex.unlock t.m;
        (try task () with e when not (is_fatal e) -> Atomic.incr strays);
        loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> Int.max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      jobs;
      domains = [];
      queue = Queue.create ();
      m = Mutex.create ();
      cv = Condition.create ();
      stopping = false;
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let async t task =
  if t.jobs = 1 then
    (* No worker domains: run inline with worker semantics. *)
    try task () with e when not (is_fatal e) -> Atomic.incr strays
  else begin
    Mutex.lock t.m;
    Queue.add task t.queue;
    Condition.signal t.cv;
    Mutex.unlock t.m
  end

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let sequential_map n f = Array.init n f

let map ?chunk t n f =
  if n < 0 then invalid_arg "Pool.map: negative size";
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then sequential_map n f
  else begin
    let chunk =
      match chunk with
      | Some c -> Int.max 1 c
      | None ->
          (* Several chunks per domain so a slow tail rebalances, but
             not so many that cursor traffic dominates. *)
          Int.max 1 (n / (4 * t.jobs))
    in
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let pending = Atomic.make n in
    let error = Atomic.make None in
    let done_m = Mutex.create () in
    let done_cv = Condition.create () in
    let run_chunks () =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue := false
        else begin
          let stop = Int.min n (start + chunk) in
          for i = start to stop - 1 do
            if Atomic.get error = None then
              try results.(i) <- Some (f i)
              with e ->
                ignore (Atomic.compare_and_set error None (Some e))
          done;
          (* Every claimed index is accounted for exactly once, even
             when skipped after an error, so [pending] reaches 0. *)
          let left = Atomic.fetch_and_add pending (start - stop) + (start - stop) in
          if left = 0 then begin
            Mutex.lock done_m;
            Condition.broadcast done_cv;
            Mutex.unlock done_m
          end
        end
      done
    in
    (* Wake the workers, then join the sweep from this domain too. *)
    Mutex.lock t.m;
    for _ = 2 to t.jobs do
      Queue.add run_chunks t.queue
    done;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    run_chunks ();
    Mutex.lock done_m;
    while Atomic.get pending <> 0 do
      Condition.wait done_cv done_m
    done;
    Mutex.unlock done_m;
    match Atomic.get error with
    | Some e -> raise e
    | None ->
        Array.map
          (function Some v -> v | None -> assert false)
          results
  end

let map_list ?chunk t f xs =
  let a = Array.of_list xs in
  Array.to_list (map ?chunk t (Array.length a) (fun i -> f a.(i)))

let map_reduce ?chunk t ~n ~map:mf ~init ~reduce =
  Array.fold_left reduce init (map ?chunk t n mf)

let maybe_map ?chunk pool n f =
  match pool with
  | None -> sequential_map n f
  | Some t -> map ?chunk t n f

let maybe_map_list ?chunk pool f xs =
  match pool with
  | None -> List.map f xs
  | Some t -> map_list ?chunk t f xs

(* Cooperative cancellation: the budget is installed in the calling
   domain's local storage, so a pool worker running [f] as part of a
   task gets exactly its own deadline and sibling workers are
   unaffected. [None] means unbounded and costs nothing. *)
let with_deadline ?ms f =
  match ms with
  | None -> f ()
  | Some ms -> Spice.Transient.Deadline.with_budget ~ms f
