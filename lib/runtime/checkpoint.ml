type t = { dir : string }

(* Format 2 stamps a big-endian CRC-32 of the marshalled payload
   between the magic and the payload, mirroring the cache's disk
   layout: a bit-rotted entry that still carries a whole magic is
   caught by the checksum instead of reaching [Marshal]. Format-1
   journals fail the meta check below (the magic is part of the meta
   content) and are wiped wholesale on open. *)
let magic = "noisy_sta.ckpt.2\n"

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let entry_name i = Printf.sprintf "case-%06d" i
let entry_path t i = Filename.concat t.dir (entry_name i)

let is_entry name =
  String.length name > 5 && String.sub name 0 5 = "case-"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* tmp+rename, same pattern as the cache's disk layer: concurrent
   writers (pool domains) each use a distinct tmp name and the rename
   is atomic, so readers only ever see complete entries. *)
let write_file path content =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      ((Domain.self () :> int))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let wipe_entries dir =
  Array.iter
    (fun name ->
      if is_entry name then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (Sys.readdir dir)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let open_ ~dir ~name ~fingerprint =
  ensure_dir dir;
  let d = Filename.concat dir (sanitize name) in
  ensure_dir d;
  let meta_path = Filename.concat d "meta" in
  let want = magic ^ fingerprint ^ "\n" in
  let current = try Some (read_file meta_path) with _ -> None in
  if current <> Some want then begin
    (* Fresh journal, or one written for a different sweep/format:
       entries would be silently wrong, so drop them all. *)
    wipe_entries d;
    write_file meta_path want
  end;
  { dir = d }

let crc_bytes crc =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 crc;
  Bytes.to_string b

let find t i =
  let path = entry_path t i in
  if not (Sys.file_exists path) then None
  else
    match
      let raw = read_file path in
      let mlen = String.length magic in
      if
        String.length raw < mlen + 4
        || not (String.equal (String.sub raw 0 mlen) magic)
      then None
      else
        let stored = String.get_int32_be raw mlen in
        let pos = mlen + 4 in
        if Crc32.update 0l raw pos (String.length raw - pos) <> stored then
          None
        else Some (Marshal.from_string raw pos)
    with
    | Some v -> Some v
    | None ->
        (* Torn or corrupt entry (e.g. the process died mid-write on a
           filesystem without atomic rename, or the bytes rotted):
           recompute it. *)
        (try Sys.remove path with Sys_error _ -> ());
        None
    | exception _ ->
        (try Sys.remove path with Sys_error _ -> ());
        None

let record t i v =
  try
    let payload = Marshal.to_string v [] in
    write_file (entry_path t i) (magic ^ crc_bytes (Crc32.string payload) ^ payload)
  with _ -> () (* a full disk degrades to recomputation, not a crash *)

let completed t =
  match Sys.readdir t.dir with
  | entries ->
      Array.fold_left
        (fun acc name -> if is_entry name then acc + 1 else acc)
        0 entries
  | exception Sys_error _ -> 0
