(** Unified evaluation-engine configuration.

    An engine bundles everything a simulation harness needs — the
    transient solver configuration, an optional domain {!Pool}, an
    optional result {!Cache}, an optional {!Metrics} sink, and a batch
    width — behind one value. Harness entry points
    ([Noise.Eval.run_table], [Noise.Montecarlo.run],
    [Noise.Worst_case.search], [Liberty.Characterize.run],
    [Noise.Injection.*], [Server.Batcher]) take a single [?engine] and
    fan work out exclusively through {!submit_batch}; the
    [?pool]/[?cache] optional-argument aliases of the PR-1 API are
    gone.

    Named presets:
    - ["reference"] — fixed 1 ps grid, bit-exact with the historical
      engine; the regression baseline.
    - ["accurate"] — adaptive stepping, 0.1 mV LTE tolerance, steps up
      to 50 ps.
    - ["fast"] — adaptive stepping, 1 mV LTE tolerance, steps up to
      200 ps; several-fold fewer steps on the Table-1 sweeps with
      sub-0.01 ps gate-delay drift. *)

type t

val make :
  ?name:string ->
  ?solver:Spice.Transient.config ->
  ?pool:Pool.t ->
  ?cache:Cache.t ->
  ?metrics:Metrics.t ->
  ?resilience:Resilience.policy ->
  ?deadline_ms:float ->
  ?guard:Guard.t ->
  ?batch:int ->
  unit ->
  t
(** Defaults: name "custom", {!Spice.Transient.default_config}, no
    pool, no cache, no metrics, {!Resilience.standard} supervision, no
    per-solve deadline, no differential guard, batch width 16. Raises
    [Invalid_argument] when [deadline_ms] is not positive or [batch]
    is not >= 1. *)

val reference : t
val accurate : t
val fast : t

val presets : t list
val names : string list

val of_name : string -> t
(** Look up a preset by name; raises [Invalid_argument] otherwise.
    This backs the CLI [--engine] flag. *)

val name : t -> string
val solver : t -> Spice.Transient.config
val pool : t -> Pool.t option
val cache : t -> Cache.t option
val metrics : t -> Metrics.t option

val resilience : t -> Resilience.policy
(** Supervision policy the harnesses run every solve under; presets
    carry {!Resilience.standard}. *)

val deadline_ms : t -> float option
(** Per-solve wall-clock budget the harnesses install around every
    solve attempt (via {!Pool.with_deadline}); [None] = unbounded. *)

val guard : t -> Guard.t option
(** Differential accuracy guard the sweep harnesses consult; [None] =
    no cross-validation. *)

val batch : t -> int
(** Batch width: how many cases a harness groups into one
    [Spice.Transient.run_batch] submission (and the default pool chunk
    of {!submit_batch}). 1 disables lockstep batching. *)

val with_solver : t -> Spice.Transient.config -> t
val with_pool : t -> Pool.t -> t
val with_cache : t -> Cache.t -> t
val with_metrics : t -> Metrics.t -> t
val with_resilience : t -> Resilience.policy -> t

val with_deadline : t -> float -> t
(** Raises [Invalid_argument] when the budget (ms) is not positive. *)

val with_guard : t -> Guard.t -> t

val with_batch : t -> int -> t
(** Raises [Invalid_argument] when the width is not >= 1. *)

val map_solver : t -> (Spice.Transient.config -> Spice.Transient.config) -> t
(** Apply a solver-config transform, e.g.
    [map_solver e (fun c -> Spice.Transient.with_adaptive ~lte_tol c)]. *)

val with_solver_kind : t -> Spice.Transient.solver_kind -> t
(** Select the linear kernel (the CLI [--solver dense|banded|auto]
    knob); presets default to [Auto]. *)

val with_jac_reuse : t -> bool -> t
(** Toggle modified-Newton Jacobian reuse (on in every preset). *)

val resolve : t option -> t
(** Normalize a harness entry point's [?engine] argument: [None] means
    the {!reference} engine. *)

val submit_batch : ?chunk:int -> t -> int -> (int -> 'a) -> 'a array
(** [submit_batch engine n f] evaluates [f 0 .. f (n-1)] on the
    engine's pool (inline when it has none) and returns the results in
    input order — the single fan-out point every harness routes
    through. [chunk] overrides how many consecutive indices a domain
    claims at a time; the default is the engine's {!batch} width, so a
    worker that batches its slice sees whole sub-batches. *)

val is_adaptive : t -> bool
val pp : Format.formatter -> t -> unit
