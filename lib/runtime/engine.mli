(** Unified evaluation-engine configuration.

    An engine bundles everything a simulation harness needs — the
    transient solver configuration, an optional domain {!Pool}, an
    optional result {!Cache}, and an optional {!Metrics} sink — behind
    one value, replacing the [?pool]/[?cache] optional-argument sprawl
    of the PR-1 API. Harness entry points ([Noise.Eval.run_table],
    [Noise.Montecarlo.run], [Noise.Worst_case.search],
    [Liberty.Characterize.run], [Noise.Injection.*]) take a single
    [?engine]; the old [?pool]/[?cache] arguments remain as deprecated
    aliases for one release and are honored only for slots the engine
    leaves empty (see {!resolve}).

    Named presets:
    - ["reference"] — fixed 1 ps grid, bit-exact with the historical
      engine; the regression baseline.
    - ["accurate"] — adaptive stepping, 0.1 mV LTE tolerance, steps up
      to 50 ps.
    - ["fast"] — adaptive stepping, 1 mV LTE tolerance, steps up to
      200 ps; several-fold fewer steps on the Table-1 sweeps with
      sub-0.01 ps gate-delay drift. *)

type t

val make :
  ?name:string ->
  ?solver:Spice.Transient.config ->
  ?pool:Pool.t ->
  ?cache:Cache.t ->
  ?metrics:Metrics.t ->
  ?resilience:Resilience.policy ->
  ?deadline_ms:float ->
  ?guard:Guard.t ->
  unit ->
  t
(** Defaults: name "custom", {!Spice.Transient.default_config}, no
    pool, no cache, no metrics, {!Resilience.standard} supervision, no
    per-solve deadline, no differential guard. Raises
    [Invalid_argument] when [deadline_ms] is not positive. *)

val reference : t
val accurate : t
val fast : t

val presets : t list
val names : string list

val of_name : string -> t
(** Look up a preset by name; raises [Invalid_argument] otherwise.
    This backs the CLI [--engine] flag. *)

val name : t -> string
val solver : t -> Spice.Transient.config
val pool : t -> Pool.t option
val cache : t -> Cache.t option
val metrics : t -> Metrics.t option

val resilience : t -> Resilience.policy
(** Supervision policy the harnesses run every solve under; presets
    carry {!Resilience.standard}. *)

val deadline_ms : t -> float option
(** Per-solve wall-clock budget the harnesses install around every
    solve attempt (via {!Pool.with_deadline}); [None] = unbounded. *)

val guard : t -> Guard.t option
(** Differential accuracy guard the sweep harnesses consult; [None] =
    no cross-validation. *)

val with_solver : t -> Spice.Transient.config -> t
val with_pool : t -> Pool.t -> t
val with_cache : t -> Cache.t -> t
val with_metrics : t -> Metrics.t -> t
val with_resilience : t -> Resilience.policy -> t

val with_deadline : t -> float -> t
(** Raises [Invalid_argument] when the budget (ms) is not positive. *)

val with_guard : t -> Guard.t -> t

val map_solver : t -> (Spice.Transient.config -> Spice.Transient.config) -> t
(** Apply a solver-config transform, e.g.
    [map_solver e (fun c -> Spice.Transient.with_adaptive ~lte_tol c)]. *)

val with_solver_kind : t -> Spice.Transient.solver_kind -> t
(** Select the linear kernel (the CLI [--solver dense|banded|auto]
    knob); presets default to [Auto]. *)

val with_jac_reuse : t -> bool -> t
(** Toggle modified-Newton Jacobian reuse (on in every preset). *)

val resolve : ?pool:Pool.t -> ?cache:Cache.t -> t option -> t
(** Normalize a harness entry point's arguments: with an engine, the
    engine wins and the deprecated [?pool]/[?cache] aliases only fill
    slots it left empty; without one, the aliases are wrapped in a
    {!reference} engine. This is what keeps PR-1 call sites working
    unchanged. *)

val is_adaptive : t -> bool
val pp : Format.formatter -> t -> unit
