(** Fixed domain pool for embarrassingly parallel sweeps.

    A pool owns [jobs - 1] worker domains (the caller participates as
    the last worker), fed through a shared task queue. Work items are
    claimed in chunks off an atomic cursor, so scheduling is dynamic,
    but results are always written into their input slot: [map] output
    is deterministic and byte-identical to the sequential path for pure
    job closures — exactly what the simulation sweeps in [Noise.Eval],
    [Noise.Montecarlo], [Noise.Worst_case] and [Liberty.Characterize]
    need.

    Closures must not share mutable state unless that state is itself
    domain-safe (the [Cache] and [Metrics] modules are). *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] is the total parallelism, including the calling domain;
    it defaults to [Domain.recommended_domain_count ()] and is clamped
    to at least 1. [create ~jobs:1 ()] spawns no domains and runs
    everything sequentially in the caller. *)

val jobs : t -> int

val async : t -> (unit -> unit) -> unit
(** Fire-and-forget task. On a [jobs = 1] pool it runs inline in the
    caller. An exception escaping the task is counted in
    {!stray_exceptions} rather than killing the worker — except fatal
    ones ([Out_of_memory], [Stack_overflow], [Sys.Break]), which
    propagate: they kill the worker domain and re-surface from
    {!shutdown}'s join. *)

val stray_exceptions : unit -> int
(** Process-global count of non-fatal exceptions workers swallowed
    from raw tasks. [map] chunks trap their own exceptions, so a
    nonzero value means some {!async} task leaked one. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; the pool must not be used
    afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val map : ?chunk:int -> t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] is [Array.init n f] evaluated on all pool domains.
    Results are collected in input order. [chunk] is the number of
    consecutive indices claimed at a time (default: balanced so each
    domain sees several chunks). If any [f i] raises, one such
    exception is re-raised in the caller after the sweep drains. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order. *)

val map_reduce :
  ?chunk:int -> t -> n:int -> map:(int -> 'a) -> init:'b ->
  reduce:('b -> 'a -> 'b) -> 'b
(** Parallel map, then a sequential in-order fold — deterministic even
    for non-commutative [reduce]. *)

(** Helpers for call sites where parallelism is optional: [None] means
    "run sequentially in the caller" with zero overhead. *)

val maybe_map : ?chunk:int -> t option -> int -> (int -> 'a) -> 'a array
val maybe_map_list : ?chunk:int -> t option -> ('a -> 'b) -> 'a list -> 'b list

val with_deadline : ?ms:float -> (unit -> 'a) -> 'a
(** Run [f] under a per-task wall-clock budget (milliseconds):
    transient solves inside [f] check the budget cooperatively at every
    accepted step boundary and raise
    [Spice.Transient.Deadline_exceeded] once it expires. The token is
    domain-local, so each pool worker carries exactly the deadline of
    its own task. [None] (the default) runs unbounded with zero
    overhead. Raises [Invalid_argument] for a non-positive budget. *)
