(** Solver supervision: bounded retry/fallback ladder plus post-solve
    waveform validation.

    A {!policy} describes how to react when a supervised solve fails
    (raises a recoverable {!Failure.t}) or produces an invalid
    waveform: re-run it through an escalating sequence of solver
    configurations — the {e ladder} — until one succeeds, validates,
    or the attempt budget is spent. The standard ladder is

    + the caller's own config (attempt 1);
    + ["tighten"] — same mode, harder: LTE tolerance / 4 and dt_max / 2
      under adaptive stepping, dt / 2 on a fixed grid;
    + ["reference"] — the fixed historical grid at the base dt;
    + ["reference-dt/2"] — fixed grid at half the base dt.

    Rungs never touch the Newton iteration budget: a config that
    cannot converge at all (e.g. [max_newton = 0]) stays failed all
    the way down, ending in a typed [Error].

    Every rung produces a distinct {!Spice.Transient.config}, and all
    cache keys digest the full config fingerprint, so fallback results
    never alias the primary attempt's cache entries.

    Counters live in {!Stats}, process-global and atomic, mirroring
    [Spice.Transient.Stats]. *)

type rung = {
  rung_name : string;
  transform : Spice.Transient.config -> Spice.Transient.config;
      (** applied to the {e base} config, not the previous rung's *)
}

type policy = {
  name : string;
  max_attempts : int;  (** total attempts including the first; >= 1 *)
  rungs : rung list;
  check_finite : bool;  (** reject waveforms with NaN/inf samples *)
  rail_tol : float option;
      (** allowed excursion outside the rails as a fraction of the
          rail-to-rail swing; [None] disables the rail check *)
}

val rung :
  string -> (Spice.Transient.config -> Spice.Transient.config) -> rung

val standard : policy
(** The ladder above; 4 attempts, finite check on, rail tolerance
    0.5 x swing (generous enough that legitimate crosstalk over- and
    undershoot never rejects). *)

val disabled : policy
(** Single attempt, no validation — the pre-supervision behavior. *)

val policies : policy list
val names : string list

val of_name : string -> policy
(** ["standard"] or ["none"]; backs the CLI [--fallback] flag. Raises
    [Invalid_argument] otherwise. *)

val with_max_attempts : policy -> int -> policy
(** Clamp to at least 1. Backs the CLI [--retries] flag. *)

val fingerprint : policy -> string
(** Stable rendering of the policy (name, budget, rung names,
    validation toggles) for checkpoint fingerprints. *)

module Stats : sig
  type snapshot = {
    solves : int;      (** supervised solves ({!run} calls) *)
    attempts : int;    (** individual attempts across all ladders *)
    retries : int;     (** attempts beyond the first *)
    recoveries : int;  (** solves rescued by a later rung *)
    failures : int;    (** solves that exhausted the ladder *)
    rejected_waveforms : int;
        (** results discarded by post-solve validation *)
  }

  val snapshot : unit -> snapshot

  val diff : snapshot -> snapshot -> snapshot
  (** [diff now before] — per-stage deltas. *)

  val reset : unit -> unit
  val pp : Format.formatter -> snapshot -> unit
end

val validate_waves :
  policy ->
  ?rails:float * float ->
  ?crossing:float ->
  (string * Waveform.Wave.t) list ->
  Failure.t option
(** Check labeled waveforms against the policy: finite samples (when
    [check_finite]), every sample within [rails] widened by
    [rail_tol] x swing, and — when [crossing] is given — every
    waveform crossing that level at least once. First violation
    wins. *)

val run :
  ?validate:('a -> Failure.t option) ->
  ?on_reject:(Spice.Transient.config -> unit) ->
  policy ->
  config:Spice.Transient.config ->
  attempt:(Spice.Transient.config -> 'a) ->
  ('a, Failure.t) result
(** Supervise one solve. [attempt] is called with the base [config],
    then with each rung's transform of it, until a result passes
    [validate] (default: accept everything) or the budget is spent.

    An attempt that raises a {e recoverable} {!Failure.t} (directly or
    via [Spice.Transient] exceptions, see {!Failure.of_exn}) moves the
    ladder to the next rung; an unrecoverable one aborts immediately
    with [Error]; any other exception is a bug and propagates. When
    [validate] rejects a result, [on_reject] is called with that
    attempt's config — the hook call sites use to purge the cache
    entry holding the invalid waveform — before the ladder advances.

    Returns [Ok result] or [Error last_failure] once the ladder is
    exhausted. *)
