(** Counters and stage timers for the evaluation runtime.

    A registry maps names to integer counters and wall-clock timers.
    All operations are domain-safe, so pool workers can report into one
    shared registry. Dotted names ("spice.sims", "cache.hits",
    "stage.table1") group related entries in the report. *)

type t

val create : unit -> t

val incr : ?n:int -> t -> string -> unit
(** Add [n] (default 1) to a counter, creating it at 0. *)

val set : t -> string -> int -> unit

val add_time : t -> string -> float -> unit
(** Accumulate seconds onto a timer, creating it at 0. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a stage and accumulate its wall-clock duration (also on
    exception). *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val timers : t -> (string * float) list
(** Sorted by name; seconds. *)

val capture_spice : ?since:Spice.Transient.Stats.snapshot -> t -> unit
(** Copy the global [Spice.Transient.Stats] counters (simulations, time
    steps, Newton iterations, bisections, gmin retries) into "spice.*"
    counters. With [since], only the delta is recorded. *)

val capture_cache : t -> Cache.t -> unit
(** Copy a cache's hit/miss/read-error/resident counters into
    "cache.*". *)

val capture_resilience : ?since:Resilience.Stats.snapshot -> t -> unit
(** Copy the global {!Resilience.Stats} counters (supervised solves,
    attempts, retries, recoveries, failures, rejected waveforms) into
    "resilience.*", plus {!Pool.stray_exceptions} into
    "pool.stray_exceptions". With [since], resilience entries record
    only the delta. *)

val capture_guard : ?since:Guard.Stats.snapshot -> t -> unit
(** Copy the global {!Guard.Stats} counters (checked, agreements,
    disagreements, errors, plus the high-water delay delta as
    "guard.max_delta_fs") into "guard.*". With [since], counts record
    only the delta. *)

val reset : t -> unit

val pp_report : Format.formatter -> t -> unit
(** Human-readable two-column report. *)

val to_json : t -> string
(** [{"counters": {...}, "timers_s": {...}}] — flat, machine-readable;
    used by the bench [--json] output. *)
