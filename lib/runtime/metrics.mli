(** Counters and stage timers for the evaluation runtime.

    A registry maps names to integer counters and wall-clock timers.
    All operations are domain-safe, so pool workers can report into one
    shared registry. Dotted names ("spice.sims", "cache.hits",
    "stage.table1") group related entries in the report. *)

type t

val create : unit -> t

val incr : ?n:int -> t -> string -> unit
(** Add [n] (default 1) to a counter, creating it at 0. *)

val set : t -> string -> int -> unit

val add_time : t -> string -> float -> unit
(** Accumulate seconds onto a timer, creating it at 0. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a stage and accumulate its wall-clock duration (also on
    exception). *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val timers : t -> (string * float) list
(** Sorted by name; seconds. *)

val capture_spice : ?since:Spice.Transient.Stats.snapshot -> t -> unit
(** Copy the global [Spice.Transient.Stats] counters (simulations, time
    steps, Newton iterations, bisections, gmin retries) into "spice.*"
    counters. With [since], only the delta is recorded. *)

val capture_cache : t -> Cache.t -> unit
(** Copy a cache's hit/miss/read-error/resident counters into
    "cache.*". *)

val capture_resilience : ?since:Resilience.Stats.snapshot -> t -> unit
(** Copy the global {!Resilience.Stats} counters (supervised solves,
    attempts, retries, recoveries, failures, rejected waveforms) into
    "resilience.*", plus {!Pool.stray_exceptions} into
    "pool.stray_exceptions". With [since], resilience entries record
    only the delta. *)

val capture_guard : ?since:Guard.Stats.snapshot -> t -> unit
(** Copy the global {!Guard.Stats} counters (checked, agreements,
    disagreements, errors, plus the high-water delay delta as
    "guard.max_delta_fs") into "guard.*". With [since], counts record
    only the delta. *)

val reset : t -> unit

val pp_report : Format.formatter -> t -> unit
(** Human-readable two-column report. *)

val to_json : t -> string
(** [{"counters": {...}, "timers_s": {...}}] — flat, machine-readable;
    used by the bench [--json] output. *)

val to_prometheus : t -> string
(** Prometheus text exposition (version 0.0.4) of the registry, served
    by the daemon's [/metrics] endpoint. Every dotted counter name maps
    to [sta_] plus the name with non-identifier characters replaced by
    underscores ("server.accepted" -> "sta_server_accepted"); timers
    get a [_seconds] suffix and are rendered in seconds. A name may
    carry a literal label suffix in braces — e.g. the counter
    ["server.latency_ms_bucket{le=\"5\"}"] is exposed as the series
    [sta_server_latency_ms_bucket{le="5"}] — and all series of one base
    name share a single [# TYPE] line. Names ending in [_total],
    [_bucket], [_count] or [_sum] are typed [counter], everything else
    [gauge]. Output is sorted by name, so it is stable across calls. *)
