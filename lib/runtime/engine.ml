type t = {
  name : string;
  solver : Spice.Transient.config;
  pool : Pool.t option;
  cache : Cache.t option;
  metrics : Metrics.t option;
  resilience : Resilience.policy;
  deadline_ms : float option;
  guard : Guard.t option;
  batch : int;
}

let default_batch = 16

let make ?(name = "custom") ?(solver = Spice.Transient.default_config) ?pool
    ?cache ?metrics ?(resilience = Resilience.standard) ?deadline_ms ?guard
    ?(batch = default_batch) () =
  (match deadline_ms with
  | Some ms when (not (Float.is_finite ms)) || ms <= 0.0 ->
      invalid_arg "Engine.make: deadline_ms must be positive"
  | _ -> ());
  if batch < 1 then invalid_arg "Engine.make: batch must be >= 1";
  { name; solver; pool; cache; metrics; resilience; deadline_ms; guard; batch }

(* Presets share the Newton/gmin settings of [default_config] and only
   disagree about step control. [reference] is the historical fixed
   grid — byte-exact regression baseline. [accurate] tightens the LTE
   tolerance below the default; [fast] relaxes it and lets steps grow
   further on quiescent spans. Crossing levels are left empty here: the
   simulation harnesses fill in 0.1/0.5/0.9 x Vdd from the process
   thresholds via [Transient.with_crossing_levels_if_empty]. *)
let reference = make ~name:"reference" ()

let accurate =
  make ~name:"accurate"
    ~solver:
      (Spice.Transient.with_adaptive ~lte_tol:1e-4 ~dt_max:50e-12
         Spice.Transient.default_config)
    ()

let fast =
  make ~name:"fast"
    ~solver:
      (Spice.Transient.with_adaptive ~lte_tol:1e-3 ~dt_max:200e-12
         Spice.Transient.default_config)
    ()

let presets = [ reference; accurate; fast ]
let names = List.map (fun e -> e.name) presets

let of_name s =
  match List.find_opt (fun e -> e.name = s) presets with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Engine.of_name: unknown engine %S (have: %s)" s
           (String.concat ", " names))

let name t = t.name
let solver t = t.solver
let pool t = t.pool
let cache t = t.cache
let metrics t = t.metrics
let resilience t = t.resilience
let deadline_ms t = t.deadline_ms
let guard t = t.guard
let batch t = t.batch

let with_solver t solver = { t with solver }
let with_pool t pool = { t with pool = Some pool }
let with_cache t cache = { t with cache = Some cache }
let with_metrics t metrics = { t with metrics = Some metrics }
let with_resilience t resilience = { t with resilience }

let with_deadline t ms =
  if (not (Float.is_finite ms)) || ms <= 0.0 then
    invalid_arg "Engine.with_deadline: deadline must be positive";
  { t with deadline_ms = Some ms }

let with_guard t guard = { t with guard = Some guard }

let with_batch t batch =
  if batch < 1 then invalid_arg "Engine.with_batch: batch must be >= 1";
  { t with batch }

let map_solver t f = { t with solver = f t.solver }

let with_solver_kind t kind =
  map_solver t (fun c -> Spice.Transient.with_solver_kind c kind)

let with_jac_reuse t reuse =
  map_solver t (fun c -> Spice.Transient.with_jac_reuse c reuse)

let resolve = function Some e -> e | None -> reference

(* The single fan-out point for every harness: split [n] work items
   over the engine's pool (or run them inline without one). [?chunk]
   overrides the work-splitting granularity; the default lets the pool
   chunk by [batch]-sized slices so a batched solve kernel sees whole
   sub-batches per domain rather than interleaved singletons. *)
let submit_batch ?chunk t n f =
  let chunk = match chunk with Some c -> c | None -> t.batch in
  Pool.maybe_map ~chunk t.pool n f

let is_adaptive t = Spice.Transient.is_adaptive t.solver

let pp ppf t =
  Format.fprintf ppf "engine %s (%s%s%s%s)" t.name
    (if is_adaptive t then "adaptive" else "fixed-grid")
    (match t.pool with
    | Some p -> Printf.sprintf ", %d jobs" (Pool.jobs p)
    | None -> "")
    (match t.cache with Some _ -> ", cached" | None -> "")
    ((match t.deadline_ms with
     | Some ms -> Printf.sprintf ", deadline %.3g ms" ms
     | None -> "")
    ^ match t.guard with Some _ -> ", guarded" | None -> "")
