(* Shared cmdliner vocabulary for every front-end (bin/sta_main,
   bin/sta_serve, bench/main): one definition of the evaluation-runtime
   flags, one assembly of the resulting Engine.t. The term produces a
   transparent [spec] first so callers that report their configuration
   (the bench --json output) can echo the raw values, then
   [engine_of_spec] folds it into the engine. *)

open Cmdliner

type spec = {
  engine_name : string;
  ltetol : float option;
  jobs : int;
  batch : int option;
  use_cache : bool;
  cache_dir : string option;
  fallback : string;
  retries : int option;
  deadline_ms : float option;
  guard : bool;
  guard_every : int;
  guard_tol_ps : float;
  solver : Spice.Transient.solver_kind option;
  jac_reuse : bool;
  fault : Spice.Transient.Fault.plan option;
  cache_fault : Cache.Disk_fault.plan option;
  prune_tol_ps : float;
  sparse_cache : bool;
  sparse_eps : float option;
  cache_max_mb : int option;
}

type sweep = {
  metrics : bool;
  checkpoint_dir : string option;
  ladder : string list option;
}

let engine_conv =
  Arg.conv
    ( (fun s ->
        match Engine.of_name s with
        | (_ : Engine.t) -> Ok s
        | exception Invalid_argument msg -> Error (`Msg msg)),
      Format.pp_print_string )

let spec_term ?(default_engine = "reference") ?default_cache_dir () =
  let engine =
    Arg.(value & opt engine_conv default_engine
         & info [ "engine" ] ~docv:"NAME"
             ~doc:"Solver engine preset: $(b,reference) (fixed 1 ps \
                   grid, the bit-exact regression baseline), \
                   $(b,accurate) or $(b,fast) (LTE-controlled adaptive \
                   time stepping, several-fold fewer steps at \
                   sub-0.01 ps gate-delay drift).")
  in
  let ltetol =
    let c =
      Arg.conv
        ( (fun s ->
            match float_of_string_opt s with
            | Some x when x > 0.0 && Float.is_finite x -> Ok x
            | _ -> Error (`Msg "expected a positive float (volts)")),
          fun ppf x -> Format.fprintf ppf "%g" x )
    in
    Arg.(value & opt (some c) None
         & info [ "ltetol" ] ~docv:"VOLTS"
             ~doc:"Adaptive local-truncation-error tolerance; implies \
                   adaptive stepping on top of the selected engine.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for the simulation sweeps. 1 runs \
                   sequentially; higher values fan the independent \
                   simulations out over OCaml domains with results \
                   identical to the sequential run.")
  in
  let batch =
    let c =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 -> Ok n
            | _ -> Error (`Msg "expected a batch width >= 1")),
          Format.pp_print_int )
    in
    Arg.(value & opt (some c) None
         & info [ "batch" ] ~docv:"N"
             ~doc:"Batch width: cases grouped into one lockstep \
                   multi-case solve (and the pool chunk of a batch \
                   submission). 1 disables lockstep batching; the \
                   default is the engine's width (16).")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Disable the content-keyed simulation memo cache.")
  in
  let cache_dir =
    Arg.(value & opt (some string) default_cache_dir
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persist the simulation cache in $(docv) so repeated \
                   invocations skip already-simulated cases.")
  in
  let policy_conv =
    Arg.conv
      ( (fun s ->
          match Resilience.of_name s with
          | (_ : Resilience.policy) -> Ok s
          | exception Invalid_argument msg -> Error (`Msg msg)),
        Format.pp_print_string )
  in
  let fallback =
    Arg.(value & opt policy_conv "standard"
         & info [ "fallback" ] ~docv:"POLICY"
             ~doc:"Solver supervision policy: $(b,standard) retries a \
                   failed or invalid solve down an escalating ladder \
                   (tightened stepping, then the fixed reference grid); \
                   $(b,none) disables supervision.")
  in
  let retries =
    let c =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 -> Ok n
            | _ -> Error (`Msg "expected a positive attempt budget")),
          Format.pp_print_int )
    in
    Arg.(value & opt (some c) None
         & info [ "retries" ] ~docv:"N"
             ~doc:"Resilience attempt budget: total solve attempts \
                   including the first (overrides the policy default).")
  in
  let deadline =
    let c =
      Arg.conv
        ( (fun s ->
            match float_of_string_opt s with
            | Some ms when ms > 0.0 && Float.is_finite ms -> Ok ms
            | _ -> Error (`Msg "expected positive milliseconds")),
          fun ppf x -> Format.fprintf ppf "%g" x )
    in
    Arg.(value & opt (some c) None
         & info [ "deadline" ] ~docv:"MS"
             ~doc:"Per-solve wall-clock budget in milliseconds. A solve \
                   exceeding it is cancelled cooperatively at a step \
                   boundary and surfaces as a typed deadline_exceeded \
                   failure on that case instead of hanging the sweep.")
  in
  let guard =
    Arg.(value & flag
         & info [ "guard" ]
             ~doc:"Enable the differential accuracy guard: a \
                   deterministic sample of sweep cases is re-evaluated \
                   under the $(b,reference) engine preset and delay \
                   disagreements beyond the tolerance are counted in \
                   the metrics report.")
  in
  let guard_every =
    let c =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 -> Ok n
            | _ -> Error (`Msg "expected a positive stride")),
          Format.pp_print_int )
    in
    Arg.(value & opt c 8
         & info [ "guard-every" ] ~docv:"N"
             ~doc:"Guard sampling stride (1 = every case).")
  in
  let guard_tol_ps =
    let c =
      Arg.conv
        ( (fun s ->
            match float_of_string_opt s with
            | Some x when Float.is_finite x -> Ok x
            | _ -> Error (`Msg "expected a float (picoseconds)")),
          fun ppf x -> Format.fprintf ppf "%g" x )
    in
    Arg.(value & opt c 1.0
         & info [ "guard-tol-ps" ] ~docv:"PS"
             ~doc:"Guard delay tolerance in picoseconds.")
  in
  let solver =
    let c =
      Arg.conv
        ( (fun s ->
            match Spice.Transient.solver_kind_of_string s with
            | Ok k -> Ok k
            | Error msg -> Error (`Msg msg)),
          fun ppf k ->
            Format.pp_print_string ppf
              (Spice.Transient.solver_kind_to_string k) )
    in
    Arg.(value & opt (some c) None
         & info [ "solver" ] ~docv:"KIND"
             ~doc:"Linear-kernel selection for the transient solver: \
                   $(b,dense) (always dense LU), $(b,banded) (force \
                   the reordered bordered-banded kernel), or \
                   $(b,auto) (per-circuit sparsity analysis picks \
                   whichever is cheaper; the default).")
  in
  let no_jac_reuse =
    Arg.(value & flag
         & info [ "no-jac-reuse" ]
             ~doc:"Refactor the Jacobian on every Newton iteration \
                   (disable modified-Newton reuse).")
  in
  let inject =
    let c =
      Arg.conv
        ( (fun s ->
            match Spice.Transient.Fault.of_string s with
            | Ok plan -> Ok plan
            | Error msg -> Error (`Msg msg)),
          fun ppf _ -> Format.pp_print_string ppf "<fault-plan>" )
    in
    Arg.(value & opt (some c) None
         & info [ "inject-faults" ] ~docv:"SPEC"
             ~doc:"Deterministic solver fault injection for resilience \
                   testing: $(b,nth:N) (the Nth solve) or \
                   $(b,RATE[@SEED]) (seeded fraction); prefix \
                   $(b,nan:) to corrupt the waveform instead of \
                   diverging, $(b,slow:) to stall the solve. \
                   Examples: 0.1@7, nth:3, nan:0.05, slow:nth:5.")
  in
  let inject_cache =
    let c =
      Arg.conv
        ( (fun s ->
            match Cache.Disk_fault.of_string s with
            | Ok plan -> Ok plan
            | Error msg -> Error (`Msg msg)),
          fun ppf _ -> Format.pp_print_string ppf "<cache-fault-plan>" )
    in
    Arg.(value & opt (some c) None
         & info [ "inject-cache-faults" ] ~docv:"SPEC"
             ~doc:"Deterministic disk-cache fault injection for chaos \
                   testing the circuit breaker: $(b,nth:N) (the Nth \
                   disk op) or $(b,RATE[@SEED]) (seeded fraction of \
                   disk ops). Examples: 0.5, nth:3, 0.8@13.")
  in
  let prune_tol =
    let c =
      Arg.conv
        ( (fun s ->
            match float_of_string_opt s with
            | Some x when x >= 0.0 && Float.is_finite x -> Ok x
            | _ -> Error (`Msg "expected a non-negative float (picoseconds)")),
          fun ppf x -> Format.fprintf ppf "%g" x )
    in
    Arg.(value & opt c 0.0
         & info [ "prune-tol-ps" ] ~docv:"PS"
             ~doc:"Alignment-sweep branch-and-bound coverage slack in \
                   picoseconds: brackets of the alignment window whose \
                   delay upper bound exceeds the incumbent by no more \
                   than $(docv) are pruned unsolved, so the found \
                   worst case trails the true one by at most $(docv). \
                   0 (the default) keeps the exhaustive, \
                   byte-identical sweep.")
  in
  let sparse_cache =
    Arg.(value & flag
         & info [ "sparse-cache" ]
             ~doc:"Store disk-cache waveforms threshold-sparsified: \
                   dense samples only around threshold crossings, \
                   linear segments elsewhere. Crossing times \
                   round-trip exactly; everything else within the \
                   sparsification tolerance. Memory-resident waves \
                   stay dense.")
  in
  let sparse_eps =
    let c =
      Arg.conv
        ( (fun s ->
            match float_of_string_opt s with
            | Some x when x >= 0.0 && Float.is_finite x -> Ok x
            | _ -> Error (`Msg "expected a non-negative float (volts)")),
          fun ppf x -> Format.fprintf ppf "%g" x )
    in
    Arg.(value & opt (some c) None
         & info [ "sparse-eps" ] ~docv:"VOLTS"
             ~doc:"Reconstruction-error bound for $(b,--sparse-cache) \
                   (default 1 mV). Implies $(b,--sparse-cache).")
  in
  let cache_max_mb =
    let c =
      Arg.conv
        ( (fun s ->
            match int_of_string_opt s with
            | Some n when n >= 1 -> Ok n
            | _ -> Error (`Msg "expected a positive size in MiB")),
          Format.pp_print_int )
    in
    Arg.(value & opt (some c) None
         & info [ "cache-max-mb" ] ~docv:"MB"
             ~doc:"Cap the on-disk cache at $(docv) MiB: when a write \
                   pushes the directory past the cap, entries are \
                   LRU-evicted (oldest first) down to 90% of it.")
  in
  let make engine_name ltetol jobs batch no_cache cache_dir fallback retries
      deadline_ms guard guard_every guard_tol_ps solver no_jac_reuse fault
      cache_fault prune_tol_ps sparse_cache sparse_eps cache_max_mb =
    {
      engine_name;
      ltetol;
      jobs = Int.max 1 jobs;
      batch;
      use_cache = not no_cache;
      cache_dir;
      fallback;
      retries;
      deadline_ms;
      guard;
      guard_every;
      guard_tol_ps;
      solver;
      jac_reuse = not no_jac_reuse;
      fault;
      cache_fault;
      prune_tol_ps;
      sparse_cache = sparse_cache || Option.is_some sparse_eps;
      sparse_eps;
      cache_max_mb;
    }
  in
  Term.(
    const make $ engine $ ltetol $ jobs $ batch $ no_cache $ cache_dir
    $ fallback $ retries $ deadline $ guard $ guard_every $ guard_tol_ps
    $ solver $ no_jac_reuse $ inject $ inject_cache $ prune_tol
    $ sparse_cache $ sparse_eps $ cache_max_mb)

let sweep_term () =
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print runtime metrics (simulation counts, Newton \
                   iterations, cache hits, wall time) after the run.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"DIR"
             ~doc:"Journal completed sweep cases under $(docv); an \
                   interrupted sweep resumes from the journal with \
                   byte-identical results.")
  in
  let ladder =
    let c =
      Arg.conv
        ( (fun s ->
            let names =
              String.split_on_char ',' s |> List.map String.trim
              |> List.filter (fun n -> n <> "")
            in
            if names = [] then Error (`Msg "expected technique names")
            else Ok names),
          fun ppf names ->
            Format.pp_print_string ppf (String.concat "," names) )
    in
    Arg.(value & opt (some c) None
         & info [ "ladder" ] ~docv:"NAMES"
             ~doc:"Comma-separated technique names for the Gamma_eff \
                   degradation ladder, tried in order until one \
                   accepts (default SGDP,WLS5,LSF3,E4,P1). Example: \
                   $(b,SGDP,LSF3,P1).")
  in
  let make metrics checkpoint_dir ladder = { metrics; checkpoint_dir; ladder } in
  Term.(const make $ metrics $ checkpoint $ ladder)

let policy_of_spec s =
  let p = Resilience.of_name s.fallback in
  match s.retries with
  | Some n -> Resilience.with_max_attempts p n
  | None -> p

let engine_of_spec ?(sparse_levels = []) s =
  let e = Engine.of_name s.engine_name in
  let e =
    match s.ltetol with
    | Some tol ->
        Engine.map_solver e (fun c -> Spice.Transient.with_adaptive ~lte_tol:tol c)
    | None -> e
  in
  let e = Engine.with_resilience e (policy_of_spec s) in
  let e =
    match s.deadline_ms with Some ms -> Engine.with_deadline e ms | None -> e
  in
  let e =
    if s.guard then
      Engine.with_guard e
        (Guard.make ~every:s.guard_every ~tol_s:(s.guard_tol_ps *. 1e-12) ())
    else e
  in
  let e =
    match s.solver with Some k -> Engine.with_solver_kind e k | None -> e
  in
  let e = if s.jac_reuse then e else Engine.with_jac_reuse e false in
  let e = match s.batch with Some b -> Engine.with_batch e b | None -> e in
  let e =
    if s.jobs > 1 then Engine.with_pool e (Pool.create ~jobs:s.jobs ()) else e
  in
  if s.use_cache then
    Engine.with_cache e
      (Cache.create ?disk_dir:s.cache_dir
         ~sparse_levels:(if s.sparse_cache then sparse_levels else [])
         ?sparse_eps:s.sparse_eps
         ?max_disk_bytes:
           (Option.map (fun mb -> mb * 1024 * 1024) s.cache_max_mb)
         ())
  else e

let arm_faults s =
  (match s.fault with
  | Some plan -> Spice.Transient.Fault.arm plan
  | None -> ());
  match s.cache_fault with
  | Some plan -> Cache.Disk_fault.arm plan
  | None -> ()
