(** Typed failure taxonomy for solves and sweeps.

    Every way a per-case evaluation can fail is a constructor here, so
    sweep results carry a value callers can pattern-match (retry? skip?
    abort?) instead of a formatted string. The split that matters is
    {!is_recoverable}: recoverable failures are worth re-running
    through the {!Resilience} fallback ladder with a safer solver
    configuration; the rest (bad input, broken environment) are not. *)

type t =
  | Non_convergence of { at : float }
      (** Newton failed beyond its bisection/floor budget at time [at] *)
  | Step_budget of { at : float; budget : int }
      (** the solve accepted more than [budget] integration steps *)
  | Non_finite of { what : string }
      (** a waveform sample is NaN or infinite *)
  | Rail_bound of { what : string; v : float; lo : float; hi : float }
      (** a sample [v] lies outside the supply rails ± tolerance *)
  | Missing_crossing of { what : string; level : float }
      (** a required threshold crossing is absent from the waveform *)
  | Cache_io of { path : string; reason : string }
      (** the disk cache layer failed to read or write an entry *)
  | Missing_cell of { cell : string }
      (** a netlist instance references a cell the library lacks *)
  | Unsupported of { what : string }
      (** the operation is outside a technique's or model's domain *)
  | Mapping_degraded of { technique : string; rung : int; score_v : float }
      (** the Gamma_eff ladder fell past its first rung: the mapping
          succeeded via [technique] at [rung] with RMS deviation
          [score_v] — informational, the case still has a result *)
  | Mapping_exhausted of { tried : int; last : string }
      (** every rung of the Gamma_eff ladder rejected the waveform;
          [last] is the final skip reason *)
  | Deadline_exceeded of { at : float; budget_ms : float }
      (** a solve was cancelled at simulation time [at] by an expired
          per-solve wall-clock budget of [budget_ms] *)
  | Overloaded of { queue_depth : int }
      (** the server's bounded admission queue was full ([queue_depth]
          requests already waiting) and the request was shed — the
          client should back off and retry *)
  | Queue_timeout of { waited_ms : float; budget_ms : float }
      (** the request waited [waited_ms] in the admission queue, past
          its queueing budget of [budget_ms], and was dropped before
          execution — its answer would have arrived too late to use *)
  | Too_many_connections of { active : int; limit : int }
      (** the server was already holding [active] connections of its
          [limit]-connection budget and shed the new connection — the
          client should back off and reconnect *)

exception Error of t
(** Carrier exception, registered with [Printexc] for readable
    uncaught-exception reports. *)

val fail : t -> 'a
(** [fail f] raises [Error f]. *)

val is_recoverable : t -> bool
(** Whether the failure is worth retrying. For solve failures this
    drives the {!Resilience} fallback ladder (retry with a safer
    config). Mapping and deadline failures are not: a
    degraded/exhausted mapping is a property of the waveform, and
    re-solving the same work under the same wall-clock budget cannot
    beat an expired deadline — one hung solve costs one typed failure,
    not extra retries. The admission-control failures ([Overloaded],
    [Queue_timeout], [Too_many_connections]) are recoverable: they say
    nothing about the query itself, only about transient server load,
    so a client retry after backoff is the right move. *)

val code : t -> string
(** Stable snake_case tag for metrics and JSON ("non_convergence",
    "step_budget", ...). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_exn : exn -> t option
(** Classify an exception: [Error], [Spice.Transient.No_convergence],
    [Spice.Transient.Step_budget_exhausted] and
    [Spice.Transient.Deadline_exceeded] map to their taxonomy entries;
    anything else is [None] (a bug, not a solve failure). *)
