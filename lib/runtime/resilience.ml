type rung = {
  rung_name : string;
  transform : Spice.Transient.config -> Spice.Transient.config;
}

type policy = {
  name : string;
  max_attempts : int;
  rungs : rung list;
  check_finite : bool;
  rail_tol : float option;
}

let rung rung_name transform = { rung_name; transform }

(* Ladder rungs, all derived from the *base* config of the failed
   attempt, never from max_newton (tests rely on a zero-Newton engine
   staying broken through the whole ladder):
   - "tighten": stay in the current mode but work harder — quarter the
     LTE tolerance and halve dt_max (adaptive), or halve dt (fixed).
   - "reference": drop to the fixed historical grid at the base dt.
   - "reference-dt/2": fixed grid at half the base dt. *)
let tighten c =
  let open Spice.Transient in
  match c.step_control with
  | Adaptive a ->
      with_adaptive ~lte_tol:(a.lte_tol /. 4.0)
        ~dt_max:(Float.max a.dt_min (a.dt_max /. 2.0))
        c
  | Fixed -> with_dt c (c.dt /. 2.0)

let fixed_grid c = Spice.Transient.with_step_control c Spice.Transient.Fixed

let fixed_half c =
  let c = fixed_grid c in
  Spice.Transient.with_dt c (c.dt /. 2.0)

let standard_rungs =
  [
    rung "tighten" tighten;
    rung "reference" fixed_grid;
    rung "reference-dt/2" fixed_half;
  ]

let standard =
  {
    name = "standard";
    max_attempts = 4;
    rungs = standard_rungs;
    check_finite = true;
    rail_tol = Some 0.5;
  }

let disabled =
  {
    name = "none";
    max_attempts = 1;
    rungs = [];
    check_finite = false;
    rail_tol = None;
  }

let policies = [ standard; disabled ]
let names = List.map (fun p -> p.name) policies

let of_name s =
  match List.find_opt (fun p -> p.name = s) policies with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Resilience.of_name: unknown policy %S (have: %s)" s
           (String.concat ", " names))

let with_max_attempts p n = { p with max_attempts = Int.max 1 n }

let fingerprint p =
  String.concat "|"
    ([
       "resilience.policy";
       p.name;
       string_of_int p.max_attempts;
       (if p.check_finite then "finite" else "nofinite");
       (match p.rail_tol with
       | Some tol -> Printf.sprintf "rail:%h" tol
       | None -> "norail");
     ]
    @ List.map (fun r -> r.rung_name) p.rungs)

module Stats = struct
  type snapshot = {
    solves : int;
    attempts : int;
    retries : int;
    recoveries : int;
    failures : int;
    rejected_waveforms : int;
  }

  (* Process-global, like [Spice.Transient.Stats]: pool domains running
     concurrent ladders account into the same counters. *)
  let solves = Atomic.make 0
  let attempts = Atomic.make 0
  let retries = Atomic.make 0
  let recoveries = Atomic.make 0
  let failures = Atomic.make 0
  let rejected_waveforms = Atomic.make 0

  let snapshot () =
    {
      solves = Atomic.get solves;
      attempts = Atomic.get attempts;
      retries = Atomic.get retries;
      recoveries = Atomic.get recoveries;
      failures = Atomic.get failures;
      rejected_waveforms = Atomic.get rejected_waveforms;
    }

  let diff a b =
    {
      solves = a.solves - b.solves;
      attempts = a.attempts - b.attempts;
      retries = a.retries - b.retries;
      recoveries = a.recoveries - b.recoveries;
      failures = a.failures - b.failures;
      rejected_waveforms = a.rejected_waveforms - b.rejected_waveforms;
    }

  let reset () =
    Atomic.set solves 0;
    Atomic.set attempts 0;
    Atomic.set retries 0;
    Atomic.set recoveries 0;
    Atomic.set failures 0;
    Atomic.set rejected_waveforms 0

  let pp ppf s =
    Format.fprintf ppf
      "%d supervised solves, %d attempts (%d retries), %d recoveries, %d \
       failures, %d rejected waveforms"
      s.solves s.attempts s.retries s.recoveries s.failures
      s.rejected_waveforms
end

let validate_waves policy ?rails ?crossing labeled =
  let check (what, w) =
    let vals = Waveform.Wave.values w in
    let non_finite =
      policy.check_finite
      && Array.exists (fun v -> not (Float.is_finite v)) vals
    in
    if non_finite then Some (Failure.Non_finite { what })
    else
      let rail_viol =
        match (rails, policy.rail_tol) with
        | Some (lo, hi), Some frac ->
            let tol = frac *. (hi -. lo) in
            Array.fold_left
              (fun acc v ->
                match acc with
                | Some _ -> acc
                | None ->
                    if v < lo -. tol || v > hi +. tol then Some v else None)
              None vals
        | _ -> None
      in
      match rail_viol with
      | Some v ->
          let lo, hi = Option.get rails in
          Some (Failure.Rail_bound { what; v; lo; hi })
      | None -> (
          match crossing with
          | Some level when Waveform.Wave.last_crossing w level = None ->
              Some (Failure.Missing_crossing { what; level })
          | _ -> None)
  in
  List.find_map check labeled

let run ?(validate = fun _ -> None) ?(on_reject = fun _ -> ()) policy ~config
    ~attempt =
  Atomic.incr Stats.solves;
  let configs =
    config :: List.map (fun r -> r.transform config) policy.rungs
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | c :: rest -> c :: take (n - 1) rest
  in
  let configs = take (Int.max 1 policy.max_attempts) configs in
  let rec go ~recovering last = function
    | [] ->
        Atomic.incr Stats.failures;
        Error (Option.get last)
    | cfg :: rest -> (
        Atomic.incr Stats.attempts;
        if recovering then Atomic.incr Stats.retries;
        match attempt cfg with
        | exception e -> (
            match Failure.of_exn e with
            | Some f when Failure.is_recoverable f ->
                go ~recovering:true (Some f) rest
            | Some f ->
                (* Typed but unrecoverable: no rung can fix it. *)
                Atomic.incr Stats.failures;
                Error f
            | None -> raise e)
        | v -> (
            match validate v with
            | None ->
                if recovering then Atomic.incr Stats.recoveries;
                Ok v
            | Some f ->
                Atomic.incr Stats.rejected_waveforms;
                on_reject cfg;
                go ~recovering:true (Some f) rest))
  in
  go ~recovering:false None configs
