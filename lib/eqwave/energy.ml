open Technique

(* For a rising edge the band is [0.5 Vdd, Vdd]: starting at the latest
   mid crossing t_m, the noisy curve encloses

     A = integral_{t_m}^{T} (Vdd - clamp(v(t), 0.5Vdd, Vdd)) dt

   against the top rail, while a line of slope a through (t_m, 0.5Vdd)
   encloses (Vdd/2)^2 / (2a). Equating the two gives the slope. Falling
   edges mirror into the [0, 0.5 Vdd] band. *)

let enclosed_area ctx ~t_m =
  let open Waveform in
  let vdd = ctx.th.Thresholds.vdd in
  let vm = Thresholds.v_mid ctx.th in
  let t_end = Wave.t_end ctx.noisy_in in
  if t_end <= t_m then
    raise (Unsupported "E4: waveform ends before the mid crossing");
  let dir = direction ctx in
  let n = 4 * ctx.samples in
  let grid = sample_times (t_m, t_end) n in
  let band_gap t =
    let v = Wave.value_at ctx.noisy_in t in
    match dir with
    | Wave.Rising -> vdd -. Float.min vdd (Float.max vm v)
    | Wave.Falling -> Float.min vm (Float.max 0.0 v)
  in
  Numerics.Integrate.trapz grid (Array.map band_gap grid)

let e4 =
  {
    name = "E4";
    describe = "area (energy) matching through the latest 0.5Vdd crossing";
    applicable =
      (fun ctx ->
        (* The slope sign is set by the transition direction, so only
           the anchor and a degenerate (zero) band area can reject. *)
        match latest_mid_crossing_opt ctx with
        | None -> Error "E4: noisy waveform never crosses 0.5 Vdd"
        | Some t_m -> (
            match enclosed_area ctx ~t_m with
            | area -> require (area > 0.0) "E4: zero enclosed area"
            | exception Unsupported reason -> Error reason));
    run =
      (fun ctx ->
        let open Waveform in
        let vdd = ctx.th.Thresholds.vdd in
        let vm = Thresholds.v_mid ctx.th in
        let t_m = latest_mid_crossing ctx in
        let area = enclosed_area ctx ~t_m in
        if area <= 0.0 then raise (Unsupported "E4: zero enclosed area");
        let half = vdd /. 2.0 in
        let mag = half *. half /. (2.0 *. area) in
        let dir = direction ctx in
        let slope = match dir with Wave.Rising -> mag | Wave.Falling -> -.mag in
        Ramp.make ~slope ~intercept:(vm -. (slope *. t_m)) ~vdd);
  }
