open Technique

let weights_floor = 1e-6

let wls5 =
  {
    name = "WLS5";
    describe = "rho-weighted least squares over the noiseless region";
    applicable =
      (fun ctx ->
        match noiseless_critical_region_opt ctx with
        | None -> Error "WLS5: noiseless input does not span the thresholds"
        | Some region -> (
            (* Probe sensitivity and the rho^2-weighted trend: the trend
               sign equals the sign of the slope the weighted fit would
               produce, so polarity contradictions and flat fits are
               rejected before fitting. *)
            match
              let sens = Sensitivity.compute ctx in
              let ts = sample_times region ctx.samples in
              let rho = Array.map (Sensitivity.rho_at_time sens) ts in
              let peak =
                Array.fold_left (fun a r -> Float.max a (abs_float r)) 0.0 rho
              in
              if peak = 0.0 then
                Error "WLS5: zero sensitivity (non-overlapping gate?)"
              else begin
                let floor = weights_floor *. peak *. peak in
                let weights = Array.map (fun r -> (r *. r) +. floor) rho in
                polarity_of_trend ~what:"WLS5" ctx (trend ~weights ctx region)
              end
            with
            | r -> r
            | exception Unsupported reason -> Error reason));
    run =
      (fun ctx ->
        let sens = Sensitivity.compute ctx in
        let region = noiseless_critical_region ctx in
        let ts = sample_times region ctx.samples in
        let vs = Array.map (Waveform.Wave.value_at ctx.noisy_in) ts in
        let rho = Array.map (Sensitivity.rho_at_time sens) ts in
        let peak = Array.fold_left (fun a r -> Float.max a (abs_float r)) 0.0 rho in
        if peak = 0.0 then
          raise (Unsupported "WLS5: zero sensitivity (non-overlapping gate?)");
        let floor = weights_floor *. peak *. peak in
        let weights = Array.map (fun r -> (r *. r) +. floor) rho in
        let line =
          try Numerics.Lsq.fit_line ~weights ts vs
          with Failure _ -> raise (Unsupported "WLS5: degenerate fit")
        in
        if line.Numerics.Lsq.slope = 0.0 then
          raise (Unsupported "WLS5: flat fit");
        check_polarity ctx
          (Waveform.Ramp.of_line line ~vdd:ctx.th.Waveform.Thresholds.vdd));
  }
