type ctx = {
  th : Waveform.Thresholds.t;
  noisy_in : Waveform.Wave.t;
  noiseless_in : Waveform.Wave.t;
  noiseless_out : Waveform.Wave.t;
  samples : int;
}

exception Unsupported of string

let make_ctx ?(samples = 35) ~th ~noisy_in ~noiseless_in ~noiseless_out () =
  if samples < 4 then invalid_arg "Technique.make_ctx: samples < 4";
  { th; noisy_in; noiseless_in; noiseless_out; samples }

type t = {
  name : string;
  describe : string;
  applicable : ctx -> (unit, string) result;
  run : ctx -> Waveform.Ramp.t;
}

let direction ctx = Waveform.Wave.direction ctx.noiseless_in

let critical_region_opt wave th dir =
  let open Waveform in
  let lo = Thresholds.v_low th and hi = Thresholds.v_high th in
  let from_level, to_level =
    match dir with Wave.Rising -> (lo, hi) | Wave.Falling -> (hi, lo)
  in
  match (Wave.first_crossing wave from_level, Wave.last_crossing wave to_level)
  with
  | Some a, Some b when b > a -> Some (a, b)
  | _ -> None

let critical_region_of wave th dir =
  match critical_region_opt wave th dir with
  | Some r -> r
  | None ->
      raise
        (Unsupported "critical region: waveform does not span the thresholds")

let noisy_critical_region_opt ctx =
  critical_region_opt ctx.noisy_in ctx.th (direction ctx)

let noiseless_critical_region_opt ctx =
  critical_region_opt ctx.noiseless_in ctx.th (direction ctx)

let noisy_critical_region ctx =
  critical_region_of ctx.noisy_in ctx.th (direction ctx)

let noiseless_critical_region ctx =
  critical_region_of ctx.noiseless_in ctx.th (direction ctx)

let sample_times (a, b) p =
  if p < 2 then invalid_arg "Technique.sample_times: p < 2";
  if b <= a then invalid_arg "Technique.sample_times: empty region";
  let h = (b -. a) /. float_of_int (p - 1) in
  Array.init p (fun i -> a +. (h *. float_of_int i))

let latest_mid_crossing_opt ctx =
  Waveform.Wave.last_crossing ctx.noisy_in (Waveform.Thresholds.v_mid ctx.th)

let latest_mid_crossing ctx =
  match latest_mid_crossing_opt ctx with
  | Some t -> t
  | None -> raise (Unsupported "noisy waveform never crosses 0.5 Vdd")

let check_polarity ctx ramp =
  if Waveform.Ramp.direction ramp <> direction ctx then
    raise (Unsupported "fit polarity does not match the transition");
  ramp

(* Weighted covariance of (t, v_noisy(t)) over [region]. The sign equals
   the sign of the slope a weighted least-squares line fit would produce
   (the denominator of the slope is a positive weighted variance), so a
   predicate can detect a polarity contradiction before paying for the
   fit itself. *)
let trend ?weights ctx (a, b) =
  let ts = sample_times (a, b) ctx.samples in
  let n = Array.length ts in
  let w =
    match weights with
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Technique.trend: weights length mismatch";
        w
    | None -> Array.make n 1.0
  in
  let vs = Array.map (Waveform.Wave.value_at ctx.noisy_in) ts in
  let sw = ref 0.0 and swt = ref 0.0 and swv = ref 0.0 in
  for k = 0 to n - 1 do
    sw := !sw +. w.(k);
    swt := !swt +. (w.(k) *. ts.(k));
    swv := !swv +. (w.(k) *. vs.(k))
  done;
  if !sw <= 0.0 then 0.0
  else begin
    let tbar = !swt /. !sw and vbar = !swv /. !sw in
    let cov = ref 0.0 in
    for k = 0 to n - 1 do
      cov := !cov +. (w.(k) *. (ts.(k) -. tbar) *. (vs.(k) -. vbar))
    done;
    !cov
  end

let polarity_of_trend ~what ctx trend =
  let ok =
    match direction ctx with
    | Waveform.Wave.Rising -> trend > 0.0
    | Waveform.Wave.Falling -> trend < 0.0
  in
  if ok then Ok ()
  else if trend = 0.0 then Error (what ^ ": flat trend over the fit region")
  else
    Error
      (what
     ^ ": polarity contradiction: the fitted slope would oppose the transition")

let require cond reason = if cond then Ok () else Error reason

let applicable_of_run run ctx =
  match run ctx with
  | (_ : Waveform.Ramp.t) -> Ok ()
  | exception Unsupported reason -> Error reason
