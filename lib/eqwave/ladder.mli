(** Graceful-degradation fallback ladder over Gamma_eff techniques.

    A single technique rejecting a pathological noisy waveform
    ([Technique.Unsupported]) should downgrade the mapping, not kill the
    data point. A ladder tries techniques in order — by default the
    paper's accuracy ordering SGDP -> WLS5 -> LSF3 -> E4 -> P1 — records
    which rung produced the ramp plus every skip reason, and scores the
    accepted ramp by its RMS deviation from the sampled noisy waveform
    so callers can see what the degradation cost them. *)

type skip = { technique : string; reason : string }

type outcome = {
  ramp : Waveform.Ramp.t;  (** the accepted equivalent ramp *)
  technique : string;  (** name of the technique that produced it *)
  rung : int;  (** 0-based index of that technique in the ladder *)
  score_v : float;
      (** RMS deviation (volts) of the ramp from the sampled noisy
          waveform over the noisy critical region *)
  skipped : skip list;  (** rungs tried and skipped before acceptance *)
}

type t

val make : ?name:string -> Technique.t list -> t
(** Raises [Invalid_argument] on an empty list or duplicate technique
    names. *)

val default : t
(** SGDP -> WLS5 -> LSF3 -> E4 -> P1, most to least accurate. *)

val of_names : string list -> t
(** Build from registry names (case-insensitive). Raises
    [Invalid_argument] on unknown names or duplicates. *)

val prepend : Technique.t -> t -> t
(** [prepend tech t] puts [tech] at rung 0, dropping any later
    occurrence of the same technique. *)

val name : t -> string
val order : t -> Technique.t list
val names : t -> string list
val length : t -> int

val fingerprint : t -> string
(** Stable digest input covering the rung order, for checkpoint/cache
    keys — two ladders with the same technique sequence fingerprint
    identically. *)

val score : Technique.ctx -> Waveform.Ramp.t -> float
(** The RMS deviation reported in {!outcome.score_v}, exposed for
    scoring ramps produced outside the ladder. *)

val run : t -> Technique.ctx -> (outcome, skip list) result
(** Try each rung in order: consult [applicable] first (an [Error]
    records a skip without paying for the fit), then run the fit,
    converting [Technique.Unsupported], [Stdlib.Failure] and non-finite
    ramps into skips. Returns [Error skips] when every rung was
    exhausted. Never raises for waveform-shaped reasons — a surviving
    exception indicates a bug in a technique, not a bad waveform. *)
