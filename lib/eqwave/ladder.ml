(* A graceful-degradation ladder over the Gamma_eff techniques: try
   each rung in order, skipping inapplicable techniques via their
   predicate (and catching Unsupported from the fit as a safety net),
   and score whatever ramp is accepted so callers can see what the
   degradation cost them. *)

type skip = { technique : string; reason : string }

type outcome = {
  ramp : Waveform.Ramp.t;
  technique : string;
  rung : int;
  score_v : float;
  skipped : skip list;
}

type t = { name : string; order : Technique.t list }

let make ?(name = "custom") order =
  if order = [] then invalid_arg "Ladder.make: empty ladder";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (tech : Technique.t) ->
      if Hashtbl.mem seen tech.Technique.name then
        invalid_arg
          (Printf.sprintf "Ladder.make: duplicate technique %s"
             tech.Technique.name);
      Hashtbl.add seen tech.Technique.name ())
    order;
  { name; order }

let default =
  make ~name:"default"
    [
      Sgdp.sgdp; Wls.wls5; Least_squares.lsf3; Energy.e4; Point_based.p1;
    ]

let of_names names =
  let order =
    List.map
      (fun n ->
        try Registry.find n
        with Not_found ->
          invalid_arg (Printf.sprintf "Ladder.of_names: unknown technique %s" n))
      names
  in
  make ~name:(String.concat ">" (List.map String.lowercase_ascii names)) order

let prepend (tech : Technique.t) t =
  let rest =
    List.filter
      (fun (o : Technique.t) -> o.Technique.name <> tech.Technique.name)
      t.order
  in
  { name = tech.Technique.name ^ ">" ^ t.name; order = tech :: rest }

let name t = t.name
let order t = t.order
let names t = List.map (fun (o : Technique.t) -> o.Technique.name) t.order
let length t = List.length t.order

let fingerprint t =
  "eqwave.ladder|" ^ t.name ^ "|" ^ String.concat "," (names t)

(* RMS deviation, in volts, of the accepted ramp from the sampled noisy
   waveform over the noisy critical region (full record when the noisy
   waveform never spans the thresholds). This is an *input-referred*
   degradation score: rung 0 on a clean waveform scores near zero and
   cruder rungs on uglier waveforms score higher. *)
let score ctx ramp =
  let a, b =
    match Technique.noisy_critical_region_opt ctx with
    | Some r -> r
    | None ->
        Waveform.Wave.
          (t_start ctx.Technique.noisy_in, t_end ctx.Technique.noisy_in)
  in
  if b <= a then 0.0
  else begin
    let p = Int.max 4 ctx.Technique.samples in
    let ts = Technique.sample_times (a, b) p in
    let acc = ref 0.0 in
    Array.iter
      (fun t ->
        let d =
          Waveform.Ramp.value_at ramp t
          -. Waveform.Wave.value_at ctx.Technique.noisy_in t
        in
        acc := !acc +. (d *. d))
      ts;
    sqrt (!acc /. float_of_int p)
  end

let ramp_is_finite (r : Waveform.Ramp.t) =
  Float.is_finite r.Waveform.Ramp.slope
  && Float.is_finite r.Waveform.Ramp.intercept

let run t ctx =
  let rec go rung skipped = function
    | [] -> Error (List.rev skipped)
    | (tech : Technique.t) :: rest -> (
        let technique = tech.Technique.name in
        let skip reason =
          go (rung + 1) ({ technique; reason } :: skipped) rest
        in
        match tech.Technique.applicable ctx with
        | Error reason -> skip reason
        | Ok () -> (
            (* The predicate is a prediction; the fit itself can still
               reject (Unsupported) or signal a numeric domain error
               (Failure) — both degrade to the next rung. *)
            match tech.Technique.run ctx with
            | exception Technique.Unsupported reason -> skip reason
            | exception Stdlib.Failure reason ->
                skip (technique ^ ": " ^ reason)
            | ramp when not (ramp_is_finite ramp) ->
                skip (technique ^ ": non-finite fit")
            | ramp ->
                Ok
                  {
                    ramp;
                    technique;
                    rung;
                    score_v = score ctx ramp;
                    skipped = List.rev skipped;
                  }))
  in
  go 0 [] t.order
