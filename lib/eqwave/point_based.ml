open Technique

let anchored_ramp ctx ~slew =
  if slew <= 0.0 then raise (Unsupported "point-based: non-positive slew");
  let arrival = latest_mid_crossing ctx in
  Waveform.Ramp.of_arrival_slew ~arrival ~slew ~dir:(direction ctx) ctx.th

(* The point-based ramps take their polarity from the transition
   direction itself, so only the anchor and slew preconditions can
   reject a context. *)
let p1 =
  {
    name = "P1";
    describe = "noiseless slew, latest noisy 0.5Vdd arrival";
    applicable =
      (fun ctx ->
        let ( let* ) = Result.bind in
        let* () =
          match Waveform.Wave.slew ctx.noiseless_in ctx.th with
          | Some slew when slew > 0.0 -> Ok ()
          | _ -> Error "P1: noiseless waveform has no slew"
        in
        require
          (latest_mid_crossing_opt ctx <> None)
          "P1: noisy waveform never crosses 0.5 Vdd");
    run =
      (fun ctx ->
        match Waveform.Wave.slew ctx.noiseless_in ctx.th with
        | Some slew -> anchored_ramp ctx ~slew
        | None -> raise (Unsupported "P1: noiseless waveform has no slew"));
  }

let p2 =
  {
    name = "P2";
    describe = "earliest-to-latest noisy threshold span as slew";
    applicable =
      (fun ctx ->
        let ( let* ) = Result.bind in
        let* () =
          require
            (noisy_critical_region_opt ctx <> None)
            "P2: noisy waveform does not span the thresholds"
        in
        require
          (latest_mid_crossing_opt ctx <> None)
          "P2: noisy waveform never crosses 0.5 Vdd");
    run =
      (fun ctx ->
        let a, b = noisy_critical_region ctx in
        anchored_ramp ctx ~slew:(b -. a));
  }
