(** The common interface of equivalent-waveform techniques.

    A technique maps a noisy input waveform to an equivalent saturated
    ramp Gamma_eff that a conventional STA tool can propagate. The
    context supplies everything the paper's techniques consume: the
    noisy waveform, the noiseless waveform of the same transition, the
    gate's noiseless response (for the sensitivity-based techniques)
    and the sampling budget P. *)

type ctx = {
  th : Waveform.Thresholds.t;
  noisy_in : Waveform.Wave.t;
  noiseless_in : Waveform.Wave.t;
  noiseless_out : Waveform.Wave.t;
  samples : int; (** P, the paper's sampling-point count (35 by default) *)
}

val make_ctx :
  ?samples:int ->
  th:Waveform.Thresholds.t ->
  noisy_in:Waveform.Wave.t ->
  noiseless_in:Waveform.Wave.t ->
  noiseless_out:Waveform.Wave.t ->
  unit -> ctx
(** Raises [Invalid_argument] if [samples < 4]. *)

exception Unsupported of string
(** A technique raises this when its preconditions fail (e.g. the
    waveform never crosses the thresholds it needs). *)

type t = {
  name : string;
  describe : string;
  applicable : ctx -> (unit, string) result;
      (** Cheap precondition probe: [Error reason] when the technique
          would reject this context (missing crossing region, polarity
          contradiction, zero sensitivity, ...). Must not run the fit
          itself — a fallback ladder consults it to skip a rung without
          paying for the fit. [Ok ()] is a prediction, not a guarantee:
          [run] may still raise [Unsupported] for conditions only the
          fit can detect. *)
  run : ctx -> Waveform.Ramp.t;
}

val direction : ctx -> Waveform.Wave.direction
(** Transition direction, judged from the noiseless input. *)

val noisy_critical_region : ctx -> float * float
(** [t_first, t_last]: first crossing of the "from" threshold and last
    crossing of the "to" threshold of the noisy waveform (0.1/0.9 Vdd
    per direction). Raises [Unsupported] when the waveform does not
    span the thresholds. *)

val noiseless_critical_region : ctx -> float * float

val noisy_critical_region_opt : ctx -> (float * float) option
(** Non-raising variant of {!noisy_critical_region} for applicability
    predicates. *)

val noiseless_critical_region_opt : ctx -> (float * float) option

val sample_times : float * float -> int -> float array
(** [sample_times (a, b) p] is [p] uniformly spaced times covering
    [a, b] inclusive. *)

val latest_mid_crossing : ctx -> float
(** The paper's arrival-time anchor: latest 0.5 Vdd crossing of the
    noisy waveform. Raises [Unsupported] if there is none. *)

val latest_mid_crossing_opt : ctx -> float option
(** Non-raising variant of {!latest_mid_crossing}. *)

val check_polarity : ctx -> Waveform.Ramp.t -> Waveform.Ramp.t
(** Returns the ramp unchanged, or raises [Unsupported] when the fitted
    slope direction contradicts the transition direction (a meaningless
    result for STA). *)

val trend : ?weights:float array -> ctx -> float * float -> float
(** Weighted covariance of [(t, v_noisy(t))] over the region, sampled at
    [ctx.samples] points. Its sign equals the sign of the slope a
    weighted least-squares line fit with the same weights would produce,
    so predicates can detect polarity contradictions before fitting.
    [weights] must have length [ctx.samples] when given. *)

val polarity_of_trend :
  what:string -> ctx -> float -> (unit, string) result
(** [Ok ()] when the trend sign matches the transition direction;
    [Error reason] for a flat trend or a polarity contradiction.
    [what] prefixes the reason (normally the technique name). *)

val require : bool -> string -> (unit, string) result
(** [require cond reason] is [Ok ()] or [Error reason]. *)

val applicable_of_run : (ctx -> Waveform.Ramp.t) -> ctx -> (unit, string) result
(** Conservative adapter for externally defined techniques: runs the fit
    and converts [Unsupported] into [Error]. Accurate but pays the full
    fit cost — prefer a purpose-built predicate. *)
