open Technique

type options = {
  second_order : bool;
  align_non_overlapping : bool;
  commit_masking : bool;
  gn_iterations : int;
}

let default_options =
  {
    second_order = true;
    align_non_overlapping = true;
    commit_masking = true;
    gn_iterations = 15;
  }

let rho_eff sens (ctx : Technique.ctx) ts =
  let vs = Array.map (Waveform.Wave.value_at ctx.noisy_in) ts in
  ( Array.map (Sensitivity.rho_at_voltage sens) vs,
    Array.map (Sensitivity.drho_dv_at_voltage sens) vs )

(* The fit runs in a centered, nanosecond-scaled time frame so the
   Gauss-Newton normal equations are well conditioned (raw SI slopes
   are ~1e9 V/s against intercepts of ~1 V). *)
let time_scale = 1e-9

(* Gamma_eff is a *saturated* ramp: where the line has already hit a
   rail, the input deviation is measured against the rail, not against
   the extrapolated line. Ignoring this drags the fit toward late
   glitch samples (the line extrapolates volts above Vdd there) and is
   the difference between a stable and a wildly tilting fit. *)
let clip vdd x = Float.min vdd (Float.max 0.0 x)

let fit options ctx ts vs rho drho =
  let vdd = ctx.th.Waveform.Thresholds.vdd in
  let n = Array.length ts in
  let tbar = Array.fold_left ( +. ) 0.0 ts /. float_of_int n in
  let tau = Array.map (fun t -> (t -. tbar) /. time_scale) ts in
  let peak = Array.fold_left (fun a r -> Float.max a (abs_float r)) 0.0 rho in
  if peak = 0.0 then raise (Unsupported "SGDP: zero effective sensitivity");
  (* Seed: a ramp with the noiseless slew anchored at the latest noisy
     0.5 Vdd crossing. It is always physically sane, it saturates over
     any secondary glitch, and the Gauss-Newton refinement below then
     pulls it onto the samples the output actually cares about. *)
  let seed =
    match Waveform.Wave.slew ctx.noiseless_in ctx.th with
    | Some s when s > 0.0 ->
        Waveform.Ramp.of_arrival_slew ~arrival:(latest_mid_crossing ctx)
          ~slew:s ~dir:(direction ctx) ctx.th
    | _ -> raise (Unsupported "SGDP: noiseless waveform has no slew")
  in
  let params0 =
    let a = (seed : Waveform.Ramp.t).slope *. time_scale in
    let b = seed.intercept +. (seed.slope *. tbar) in
    [| a; b |]
  in
  let line_at p k = (p.(0) *. tau.(k)) +. p.(1) in
  let err p k = vs.(k) -. clip vdd (line_at p k) in
  let residual p =
    Array.init n (fun k ->
        let e = err p k in
        if options.second_order then
          (rho.(k) *. e) +. (0.5 *. drho.(k) *. e *. e)
        else rho.(k) *. e)
  in
  let jacobian p =
    Array.init n (fun k ->
        let raw = line_at p k in
        if raw <= 0.0 || raw >= vdd then [| 0.0; 0.0 |]
        else
          let de =
            if options.second_order then rho.(k) +. (drho.(k) *. err p k)
            else rho.(k)
          in
          [| -.de *. tau.(k); -.de |])
  in
  let params =
    Numerics.Lsq.gauss_newton ~max_iter:options.gn_iterations ~residual
      ~jacobian params0
  in
  let slope_scaled = params.(0) and intercept_scaled = params.(1) in
  if slope_scaled = 0.0 then raise (Unsupported "SGDP: flat fit");
  let slope = slope_scaled /. time_scale in
  let intercept = intercept_scaled -. (slope *. tbar) in
  Technique.check_polarity ctx
    (Waveform.Ramp.make ~slope ~intercept ~vdd:ctx.th.Waveform.Thresholds.vdd)

(* Voltage-level matching transplants the *transient* sensitivity of
   the noiseless transition onto every sample at the same voltage —
   including samples taken long after the receiver's output has
   committed, where the true sensitivity is the (tiny) DC gain. Once
   the output has settled, input noise that never re-crosses 0.5 Vdd
   cannot move the transition, so samples past the estimated commit
   time carry no weight. The commit time is the latest noisy mid
   crossing plus the noiseless input-mid-to-output-settle margin. *)
let output_commit_time ctx =
  let open Waveform in
  let out_dir = Wave.direction ctx.noiseless_out in
  let settle_level =
    match out_dir with
    | Wave.Rising -> Thresholds.v_high ctx.th
    | Wave.Falling -> Thresholds.v_low ctx.th
  in
  let vm = Thresholds.v_mid ctx.th in
  match
    ( Wave.last_crossing ctx.noiseless_in vm,
      Wave.last_crossing ctx.noiseless_out settle_level )
  with
  | Some t_in_mid, Some t_out_settle when t_out_settle > t_in_mid ->
      let margin = t_out_settle -. t_in_mid in
      latest_mid_crossing ctx +. margin
  | _ -> infinity

let make options =
  {
    name = "SGDP";
    describe = "sensitivity remapped onto the noisy region, Taylor fit";
    applicable =
      (fun ctx ->
        let ( let* ) = Result.bind in
        let* () =
          require
            (noisy_critical_region_opt ctx <> None)
            "SGDP: noisy waveform does not span the thresholds"
        in
        let* () =
          require
            (latest_mid_crossing_opt ctx <> None)
            "SGDP: noisy waveform never crosses 0.5 Vdd"
        in
        let* () =
          match Waveform.Wave.slew ctx.noiseless_in ctx.th with
          | Some s when s > 0.0 -> Ok ()
          | _ -> Error "SGDP: noiseless waveform has no slew"
        in
        (* Effective-sensitivity probe plus a rho^2-weighted trend as a
           polarity estimate of the eventual fit — everything the full
           run checks except the Gauss-Newton iterations themselves
           (run keeps check_polarity as the post-fit safety net). *)
        match
          let shift =
            if options.align_non_overlapping then Sensitivity.overlap_shift ctx
            else 0.0
          in
          let sens = Sensitivity.compute ~output_shift:shift ctx in
          let region = noisy_critical_region ctx in
          let ts = sample_times region ctx.samples in
          let rho, _ = rho_eff sens ctx ts in
          let t_cut =
            if options.commit_masking then output_commit_time ctx else infinity
          in
          Array.iteri (fun k t -> if t > t_cut then rho.(k) <- 0.0) ts;
          let peak =
            Array.fold_left (fun a r -> Float.max a (abs_float r)) 0.0 rho
          in
          if peak = 0.0 then Error "SGDP: zero effective sensitivity"
          else begin
            let weights = Array.map (fun r -> r *. r) rho in
            polarity_of_trend ~what:"SGDP" ctx (trend ~weights ctx region)
          end
        with
        | r -> r
        | exception Unsupported reason -> Error reason);
    run =
      (fun ctx ->
        let shift =
          if options.align_non_overlapping then Sensitivity.overlap_shift ctx
          else 0.0
        in
        let sens = Sensitivity.compute ~output_shift:shift ctx in
        let region = noisy_critical_region ctx in
        let ts = sample_times region ctx.samples in
        let vs = Array.map (Waveform.Wave.value_at ctx.noisy_in) ts in
        let rho, drho = rho_eff sens ctx ts in
        let t_cut =
          if options.commit_masking then output_commit_time ctx else infinity
        in
        Array.iteri
          (fun k t ->
            if t > t_cut then begin
              rho.(k) <- 0.0;
              drho.(k) <- 0.0
            end)
          ts;
        fit options ctx ts vs rho drho);
  }

let sgdp = make default_options
