open Technique

let lsf3 =
  {
    name = "LSF3";
    describe = "unweighted least-squares line fit over the noisy region";
    applicable =
      (fun ctx ->
        match noisy_critical_region_opt ctx with
        | None -> Error "LSF3: noisy waveform does not span the thresholds"
        | Some region ->
            (* The unweighted trend covariance has exactly the sign of
               the line fit's slope, so this predicate is a precise
               pre-fit polarity/flatness check. *)
            polarity_of_trend ~what:"LSF3" ctx (trend ctx region));
    run =
      (fun ctx ->
        let region = noisy_critical_region ctx in
        let ts = sample_times region ctx.samples in
        let vs = Array.map (Waveform.Wave.value_at ctx.noisy_in) ts in
        let line =
          try Numerics.Lsq.fit_line ts vs
          with Failure _ -> raise (Unsupported "LSF3: degenerate fit")
        in
        if line.Numerics.Lsq.slope = 0.0 then
          raise (Unsupported "LSF3: flat fit");
        check_polarity ctx
          (Waveform.Ramp.of_line line ~vdd:ctx.th.Waveform.Thresholds.vdd));
  }
