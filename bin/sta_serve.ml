(* sta_serve: STA-as-a-service daemon.

   Subcommands:
     serve      (default) run the daemon until SIGINT/SIGTERM
     supervise  run the daemon under a restarting supervisor
     ping       liveness round-trip against a running daemon *)

open Cmdliner

let default_socket = "/tmp/sta_serve.sock"

let addr_of socket port =
  match port with
  | Some p -> Server.Client.Tcp ("127.0.0.1", p)
  | None -> Server.Client.Unix_path socket

let socket_arg =
  Arg.(value & opt string default_socket
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to serve (or connect to). Ignored \
                 when $(b,--port) is given.")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Serve the wire protocol over loopback TCP on $(docv) \
                 instead of a Unix socket.")

(* ------------------------------------------------------------------ *)
(* serve / supervise shared options *)

type serve_opts = {
  socket : string;
  port : int option;
  http_port : int option;
  queue_depth : int;
  queue_timeout : float option;
  max_conns : int;
  read_timeout : float option;
  write_timeout : float option;
  max_frames : int option;
  journal_dir : string option;
  scrub : float option;
  watchdog : float option;
  inject_net : Server.Netfault.plan option;
  spec : Runtime.Cli.spec;
}

let serve_opts_term =
  let http_port =
    Arg.(value & opt (some int) None
         & info [ "http-port" ] ~docv:"PORT"
             ~doc:"Expose $(b,GET /metrics) (Prometheus text format) \
                   and $(b,GET /health) over loopback HTTP on $(docv).")
  in
  let queue_depth =
    Arg.(value & opt int 64
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission queue bound. Requests arriving while $(docv) \
                   are already queued are shed immediately with a typed \
                   $(b,overloaded) error instead of growing memory.")
  in
  let queue_timeout =
    Arg.(value & opt (some float) None
         & info [ "queue-timeout" ] ~docv:"MS"
             ~doc:"Shed requests that waited longer than $(docv) ms in \
                   the queue with a typed $(b,queue_timeout) error \
                   instead of computing an answer nobody is waiting \
                   for.")
  in
  let max_conns =
    Arg.(value & opt int 256
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent protocol-connection budget. Connections \
                   past $(docv) are answered one typed \
                   $(b,too_many_connections) frame and closed.")
  in
  let read_timeout =
    Arg.(value & opt (some float) None
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection read deadline (protocol and HTTP). An \
                   idle connection past $(docv) is reclaimed; a peer \
                   that stalls mid-frame (slowloris) is answered \
                   $(b,timeout) and dropped.")
  in
  let write_timeout =
    Arg.(value & opt (some float) None
         & info [ "write-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection write deadline: a peer that stops \
                   draining its socket for $(docv) is dropped.")
  in
  let max_frames =
    Arg.(value & opt (some int) None
         & info [ "max-frames" ] ~docv:"N"
             ~doc:"Frame budget per connection; answered \
                   $(b,frame_limit) when exhausted so load balancers \
                   recycle connections.")
  in
  let journal_dir =
    Arg.(value & opt (some string) None
         & info [ "journal-dir" ] ~docv:"DIR"
             ~doc:"Write-ahead request journal: solve requests are \
                   journaled before execution and retired after their \
                   response is flushed; on restart the unretired set \
                   is replayed so acknowledged work is never lost.")
  in
  let scrub =
    Arg.(value & opt (some float) None
         & info [ "scrub" ] ~docv:"SECONDS"
             ~doc:"Bounded-time startup scrub of the disk cache: \
                   CRC-validate entries newest-first for up to \
                   $(docv), unlinking corrupt entries and tmp \
                   leftovers from a previous crash.")
  in
  let watchdog =
    Arg.(value & opt (some float) None
         & info [ "watchdog" ] ~docv:"SECONDS"
             ~doc:"Heartbeat watchdog: if the batcher makes no \
                   progress for $(docv) while work is queued, the \
                   daemon exits 70 so a supervisor can respawn it.")
  in
  let inject_net =
    let c =
      Arg.conv
        ( (fun s ->
            match Server.Netfault.of_string s with
            | Ok plan -> Ok plan
            | Error msg -> Error (`Msg msg)),
          fun ppf _ -> Format.pp_print_string ppf "<net-fault-plan>" )
    in
    Arg.(value & opt (some c) None
         & info [ "inject-net-faults" ] ~docv:"SPEC"
             ~doc:"Deterministic network fault injection for chaos \
                   testing: $(b,[KIND:])($(b,nth:N) | \
                   $(b,RATE[@SEED])) with KIND one of \
                   torn|stall|drop|corrupt (no KIND rotates all \
                   four). Examples: 0.05@7, drop:nth:3, stall:0.1.")
  in
  let mk socket port http_port queue_depth queue_timeout max_conns
      read_timeout write_timeout max_frames journal_dir scrub watchdog
      inject_net spec =
    {
      socket;
      port;
      http_port;
      queue_depth;
      queue_timeout;
      max_conns;
      read_timeout;
      write_timeout;
      max_frames;
      journal_dir;
      scrub;
      watchdog;
      inject_net;
      spec;
    }
  in
  Term.(
    const mk $ socket_arg $ port_arg $ http_port $ queue_depth
    $ queue_timeout $ max_conns $ read_timeout $ write_timeout $ max_frames
    $ journal_dir $ scrub $ watchdog $ inject_net
    $ Runtime.Cli.spec_term ~default_engine:"fast" ())

(* Everything that builds daemon state (fault arming, engine and its
   domain pool, sockets) runs here — in the serving process itself.
   Under [supervise] this is the forked child, so each incarnation
   rebuilds from scratch and the crash-recovery path is the cold-start
   path. *)
let run_serve ~restarts (o : serve_opts) =
  Runtime.Cli.arm_faults o.spec;
  Option.iter Server.Netfault.arm o.inject_net;
  (* Threshold levels the sparse disk codec must preserve exactly —
     the same levels every timing measurement reads. *)
  let sparse_levels =
    let th = Device.Process.thresholds Device.Process.c13 in
    Waveform.Thresholds.[ v_low th; v_mid th; v_high th ]
  in
  let engine = Runtime.Cli.engine_of_spec ~sparse_levels o.spec in
  let addr = addr_of o.socket o.port in
  let config =
    {
      Server.Daemon.addr;
      http_port = o.http_port;
      engine;
      queue_depth = o.queue_depth;
      (* The engine's batch width doubles as the merge bound: how
         many single-case solves one queue drain hands to the pool. *)
      max_batch = Runtime.Engine.batch engine;
      queue_timeout_ms = o.queue_timeout;
      (* --deadline is both the engine's per-solve budget and the
         default per-request budget for requests that carry none. *)
      default_deadline_ms = o.spec.Runtime.Cli.deadline_ms;
      max_conns = o.max_conns;
      read_timeout_s = o.read_timeout;
      write_timeout_s = o.write_timeout;
      max_frames_per_conn = o.max_frames;
      journal_dir = o.journal_dir;
      scrub_budget_s = o.scrub;
      watchdog_s = o.watchdog;
      restarts;
      on_wedged = None;
    }
  in
  Printf.printf
    "sta_serve %s: engine %s, queue depth %d, listening on %s%s%s\n%!"
    Server.Protocol.version
    (Runtime.Engine.name engine)
    o.queue_depth
    (Server.Client.addr_to_string addr)
    (match o.http_port with
    | Some p -> Printf.sprintf ", metrics on http://127.0.0.1:%d/metrics" p
    | None -> "")
    (if restarts > 0 then Printf.sprintf " (restart %d)" restarts else "");
  Server.Daemon.run config;
  Printf.printf "sta_serve: drained, bye\n%!"

let serve_cmd =
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the STA daemon (default command)")
    Term.(const (fun o -> run_serve ~restarts:0 o) $ serve_opts_term)

(* ------------------------------------------------------------------ *)
(* supervise *)

let supervise_cmd =
  let pid_file =
    Arg.(value & opt (some string) None
         & info [ "pid-file" ] ~docv:"PATH"
             ~doc:"Write the serving child's pid to $(docv) at every \
                   spawn — crash drills and init systems read it to \
                   signal or observe the serving process.")
  in
  let base_backoff =
    Arg.(value & opt float 0.2
         & info [ "base-backoff" ] ~docv:"SECONDS"
             ~doc:"Delay before the first restart; doubles per \
                   consecutive fast crash.")
  in
  let max_backoff =
    Arg.(value & opt float 10.0
         & info [ "max-backoff" ] ~docv:"SECONDS" ~doc:"Backoff cap.")
  in
  let healthy_after =
    Arg.(value & opt float 30.0
         & info [ "healthy-after" ] ~docv:"SECONDS"
             ~doc:"Uptime after which the consecutive-crash counter \
                   resets — rare crashes restart forever, a crash \
                   loop trips the budget.")
  in
  let crash_budget =
    Arg.(value & opt int 5
         & info [ "crash-budget" ] ~docv:"N"
             ~doc:"Give up after $(docv) consecutive fast crashes \
                   (exit 1) instead of restart-storming.")
  in
  let run o pid_file base_backoff max_backoff healthy_after crash_budget =
    let config =
      {
        Server.Supervisor.base_backoff_s = base_backoff;
        max_backoff_s = max_backoff;
        healthy_after_s = healthy_after;
        crash_budget;
        pid_file;
        on_spawn = None;
      }
    in
    let outcome =
      Server.Supervisor.run ~config (fun ~restarts -> run_serve ~restarts o)
    in
    Printf.printf "sta_serve supervise: %s\n%!"
      (Server.Supervisor.outcome_to_string outcome);
    match outcome with
    | Server.Supervisor.Clean _ -> ()
    | Server.Supervisor.Gave_up _ -> exit 1
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:"Run the STA daemon under a restarting supervisor: fork \
             the serving child, respawn on crash with capped \
             exponential backoff, give up on a crash loop. SIGTERM \
             drains the child and exits cleanly.")
    Term.(
      const run $ serve_opts_term $ pid_file $ base_backoff $ max_backoff
      $ healthy_after $ crash_budget)

(* ------------------------------------------------------------------ *)
(* ping *)

let ping_cmd =
  let retries =
    Arg.(value & opt int 20
         & info [ "retries" ] ~docv:"N"
             ~doc:"Connection attempts, 50 ms apart, before giving up.")
  in
  let run socket port retries =
    let addr = addr_of socket port in
    match Server.Client.connect ~retries addr with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "sta_serve ping: cannot connect to %s: %s\n"
          (Server.Client.addr_to_string addr)
          (Unix.error_message e);
        exit 1
    | client -> (
        let result = Server.Client.ping client in
        Server.Client.close client;
        match result with
        | Ok doc ->
            print_endline (Server.Json.to_string doc)
        | Error msg ->
            Printf.eprintf "sta_serve ping: %s\n" msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Liveness round-trip against a running daemon")
    Term.(const run $ socket_arg $ port_arg $ retries)

let () =
  let info =
    Cmd.info "sta_serve" ~version:Server.Protocol.version
      ~doc:"STA-as-a-service: timing and noise queries over a socket"
  in
  let default =
    Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))
  in
  exit (Cmd.eval (Cmd.group ~default info [ serve_cmd; supervise_cmd; ping_cmd ]))
