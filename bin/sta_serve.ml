(* sta_serve: STA-as-a-service daemon.

   Subcommands:
     serve   (default) run the daemon until SIGINT/SIGTERM
     ping    liveness round-trip against a running daemon *)

open Cmdliner

let default_socket = "/tmp/sta_serve.sock"

let addr_of socket port =
  match port with
  | Some p -> Server.Client.Tcp ("127.0.0.1", p)
  | None -> Server.Client.Unix_path socket

let socket_arg =
  Arg.(value & opt string default_socket
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to serve (or connect to). Ignored \
                 when $(b,--port) is given.")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Serve the wire protocol over loopback TCP on $(docv) \
                 instead of a Unix socket.")

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let http_port =
    Arg.(value & opt (some int) None
         & info [ "http-port" ] ~docv:"PORT"
             ~doc:"Expose $(b,GET /metrics) (Prometheus text format) \
                   and $(b,GET /health) over loopback HTTP on $(docv).")
  in
  let queue_depth =
    Arg.(value & opt int 64
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission queue bound. Requests arriving while $(docv) \
                   are already queued are shed immediately with a typed \
                   $(b,overloaded) error instead of growing memory.")
  in
  let queue_timeout =
    Arg.(value & opt (some float) None
         & info [ "queue-timeout" ] ~docv:"MS"
             ~doc:"Shed requests that waited longer than $(docv) ms in \
                   the queue with a typed $(b,queue_timeout) error \
                   instead of computing an answer nobody is waiting \
                   for.")
  in
  let max_conns =
    Arg.(value & opt int 256
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent protocol-connection budget. Connections \
                   past $(docv) are answered one typed \
                   $(b,too_many_connections) frame and closed.")
  in
  let read_timeout =
    Arg.(value & opt (some float) None
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection read deadline (protocol and HTTP). An \
                   idle connection past $(docv) is reclaimed; a peer \
                   that stalls mid-frame (slowloris) is answered \
                   $(b,timeout) and dropped.")
  in
  let write_timeout =
    Arg.(value & opt (some float) None
         & info [ "write-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection write deadline: a peer that stops \
                   draining its socket for $(docv) is dropped.")
  in
  let max_frames =
    Arg.(value & opt (some int) None
         & info [ "max-frames" ] ~docv:"N"
             ~doc:"Frame budget per connection; answered \
                   $(b,frame_limit) when exhausted so load balancers \
                   recycle connections.")
  in
  let inject_net =
    let c =
      Arg.conv
        ( (fun s ->
            match Server.Netfault.of_string s with
            | Ok plan -> Ok plan
            | Error msg -> Error (`Msg msg)),
          fun ppf _ -> Format.pp_print_string ppf "<net-fault-plan>" )
    in
    Arg.(value & opt (some c) None
         & info [ "inject-net-faults" ] ~docv:"SPEC"
             ~doc:"Deterministic network fault injection for chaos \
                   testing: $(b,[KIND:])($(b,nth:N) | \
                   $(b,RATE[@SEED])) with KIND one of \
                   torn|stall|drop|corrupt (no KIND rotates all \
                   four). Examples: 0.05@7, drop:nth:3, stall:0.1.")
  in
  let run socket port http_port queue_depth queue_timeout max_conns
      read_timeout write_timeout max_frames inject_net spec =
    Runtime.Cli.arm_faults spec;
    Option.iter Server.Netfault.arm inject_net;
    let engine = Runtime.Cli.engine_of_spec spec in
    let addr = addr_of socket port in
    let config =
      {
        Server.Daemon.addr;
        http_port;
        engine;
        queue_depth;
        (* The engine's batch width doubles as the merge bound: how
           many single-case solves one queue drain hands to the pool. *)
        max_batch = Runtime.Engine.batch engine;
        queue_timeout_ms = queue_timeout;
        (* --deadline is both the engine's per-solve budget and the
           default per-request budget for requests that carry none. *)
        default_deadline_ms = spec.Runtime.Cli.deadline_ms;
        max_conns;
        read_timeout_s = read_timeout;
        write_timeout_s = write_timeout;
        max_frames_per_conn = max_frames;
      }
    in
    Printf.printf "sta_serve %s: engine %s, queue depth %d, listening on %s%s\n%!"
      Server.Protocol.version
      (Runtime.Engine.name engine)
      queue_depth
      (Server.Client.addr_to_string addr)
      (match http_port with
      | Some p -> Printf.sprintf ", metrics on http://127.0.0.1:%d/metrics" p
      | None -> "");
    Server.Daemon.run config;
    Printf.printf "sta_serve: drained, bye\n%!"
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the STA daemon (default command)")
    Term.(
      const run $ socket_arg $ port_arg $ http_port $ queue_depth
      $ queue_timeout $ max_conns $ read_timeout $ write_timeout
      $ max_frames $ inject_net
      $ Runtime.Cli.spec_term ~default_engine:"fast" ())

(* ------------------------------------------------------------------ *)
(* ping *)

let ping_cmd =
  let retries =
    Arg.(value & opt int 20
         & info [ "retries" ] ~docv:"N"
             ~doc:"Connection attempts, 50 ms apart, before giving up.")
  in
  let run socket port retries =
    let addr = addr_of socket port in
    match Server.Client.connect ~retries addr with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "sta_serve ping: cannot connect to %s: %s\n"
          (Server.Client.addr_to_string addr)
          (Unix.error_message e);
        exit 1
    | client -> (
        let result = Server.Client.ping client in
        Server.Client.close client;
        match result with
        | Ok doc ->
            print_endline (Server.Json.to_string doc)
        | Error msg ->
            Printf.eprintf "sta_serve ping: %s\n" msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Liveness round-trip against a running daemon")
    Term.(const run $ socket_arg $ port_arg $ retries)

let () =
  let info =
    Cmd.info "sta_serve" ~version:Server.Protocol.version
      ~doc:"STA-as-a-service: timing and noise queries over a socket"
  in
  let default =
    Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))
  in
  exit (Cmd.eval (Cmd.group ~default info [ serve_cmd; ping_cmd ]))
