(* noisy-sta: command-line driver for the library.

   Subcommands:
     characterize  build NLDM tables for the inverter cells -> .lib file
     table1        reproduce the paper's Table 1
     figure2       dump the Figure-2 waveform series as CSV
     waveform      dump the noisy waveform of one injection case as CSV
     sta           run the STA engine on a demo chain, optionally with a
                   noisy pin, comparing techniques *)

open Cmdliner

let proc = Device.Process.c13

let scenario_of_string = function
  | "1" | "i" | "I" -> Ok Noise.Scenario.config_i
  | "2" | "ii" | "II" -> Ok Noise.Scenario.config_ii
  | s -> Error (`Msg ("unknown configuration: " ^ s))

let scenario_conv =
  Arg.conv
    ( (fun s -> scenario_of_string s),
      fun ppf scen -> Format.pp_print_string ppf scen.Noise.Scenario.name )

let technique_conv =
  Arg.conv
    ( (fun s ->
        match Eqwave.Registry.find s with
        | t -> Ok t
        | exception Not_found ->
            Error
              (`Msg
                (Printf.sprintf "unknown technique %s (have: %s)" s
                   (String.concat ", " Eqwave.Registry.names)))),
      fun ppf t -> Format.pp_print_string ppf t.Eqwave.Technique.name )

(* ------------------------------------------------------------------ *)
(* Shared evaluation-runtime options: every simulation-heavy
   subcommand takes the Runtime.Cli flag set (--engine/--jobs/
   --batch/--no-cache/--deadline/... plus the sweep flags), all folded
   into one Runtime.Engine value.                                      *)

type rt = {
  engine : Runtime.Engine.t;
  metrics : bool;
  checkpoint_dir : string option;
  ladder : Eqwave.Ladder.t option;
  prune_tol_ps : float;
}

(* The cache's sparse codec keeps crossings at these levels exact, so
   they must be the levels timing is measured at. *)
let sparse_levels =
  let th = Device.Process.thresholds proc in
  Waveform.Thresholds.[ v_low th; v_mid th; v_high th ]

let rt_term =
  let make spec (sweep : Runtime.Cli.sweep) =
    (* The ladder names are validated here rather than in Runtime.Cli:
       the runtime layer doesn't know the technique registry. *)
    match
      Option.map (fun ns -> Eqwave.Ladder.of_names ns) sweep.Runtime.Cli.ladder
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | ladder ->
        Runtime.Cli.arm_faults spec;
        `Ok
          {
            engine = Runtime.Cli.engine_of_spec ~sparse_levels spec;
            metrics = sweep.Runtime.Cli.metrics;
            checkpoint_dir = sweep.Runtime.Cli.checkpoint_dir;
            ladder;
            prune_tol_ps = spec.Runtime.Cli.prune_tol_ps;
          }
  in
  Term.(
    ret (const make $ Runtime.Cli.spec_term () $ Runtime.Cli.sweep_term ()))

(* Run a subcommand body under the runtime options: time it, then
   report metrics and release the pool. *)
let with_rt rt f =
  let before = Spice.Transient.Stats.snapshot () in
  let before_res = Runtime.Resilience.Stats.snapshot () in
  let before_guard = Runtime.Guard.Stats.snapshot () in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      match Runtime.Engine.pool rt.engine with
      | Some p -> Runtime.Pool.shutdown p
      | None -> ())
    (fun () ->
      f ();
      if rt.metrics then begin
        let m = Runtime.Metrics.create () in
        Runtime.Metrics.add_time m "wall" (Unix.gettimeofday () -. t0);
        (match Runtime.Engine.pool rt.engine with
        | Some p -> Runtime.Metrics.set m "pool.jobs" (Runtime.Pool.jobs p)
        | None -> Runtime.Metrics.set m "pool.jobs" 1);
        Runtime.Metrics.capture_spice ~since:before m;
        Runtime.Metrics.capture_resilience ~since:before_res m;
        Runtime.Metrics.capture_guard ~since:before_guard m;
        (match Runtime.Engine.cache rt.engine with
        | Some c -> Runtime.Metrics.capture_cache m c
        | None -> ());
        Format.printf "@.%a@." Runtime.Metrics.pp_report m
      end)

(* ------------------------------------------------------------------ *)

let characterize_cmd =
  let out =
    Arg.(value & opt string "noisy_sta.lib"
         & info [ "o"; "output" ] ~doc:"Output library file.")
  in
  let run out rt =
    with_rt rt (fun () ->
        let cells = Device.Cell.[ inv_x1; inv_x4; inv_x16; inv_x64 ] in
        let timed =
          List.map
            (fun cell ->
              Printf.printf "characterizing %s...\n%!" cell.Device.Cell.name;
              Liberty.Characterize.run ~engine:rt.engine proc cell)
            cells
        in
        Liberty.Libfile.save out timed;
        Printf.printf "wrote %s (%d cells)\n" out (List.length timed))
  in
  Cmd.v (Cmd.info "characterize" ~doc:"Build NLDM tables for the cell library")
    Term.(const run $ out $ rt_term)

let table1_cmd =
  let cases =
    Arg.(value & opt int 200 & info [ "cases" ] ~doc:"Alignment cases per configuration.")
  in
  let config =
    Arg.(value & opt_all scenario_conv
           [ Noise.Scenario.config_i; Noise.Scenario.config_ii ]
         & info [ "config" ] ~doc:"Configuration (1 or 2); repeatable.")
  in
  let samples =
    Arg.(value & opt int 35 & info [ "P"; "samples" ] ~doc:"Sampling points P.")
  in
  let run cases configs samples rt =
    with_rt rt (fun () ->
        List.iter
          (fun scen ->
            let scen = Noise.Scenario.with_cases scen cases in
            let table =
              Noise.Eval.run_table ~samples ~engine:rt.engine
                ?ladder:rt.ladder ?checkpoint_dir:rt.checkpoint_dir
                ~prune_tol_ps:rt.prune_tol_ps
                ~progress:(fun k n ->
                  if k mod 20 = 0 then Printf.eprintf "%d/%d\r%!" k n)
                scen
            in
            Format.printf "%a@." Noise.Eval.pp_table table;
            match table.Noise.Eval.prune with
            | Some s -> Format.printf "%a@." Noise.Alignment.pp_stats s
            | None -> ())
          configs)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table 1 (accuracy comparison)")
    Term.(const run $ cases $ config $ samples $ rt_term)

let figure2_cmd =
  let out =
    Arg.(value & opt string "figure2.csv" & info [ "o" ] ~doc:"Output CSV.")
  in
  let tau_ps =
    Arg.(value & opt float 1200.0 & info [ "tau" ] ~doc:"Aggressor start, ps.")
  in
  let run out tau_ps =
    let scen = Noise.Scenario.config_i in
    let tau = tau_ps *. 1e-12 in
    let noiseless = Noise.Injection.noiseless scen in
    let noisy = Noise.Injection.noisy scen ~tau in
    let ctx = Noise.Injection.ctx_of_runs scen ~noiseless ~noisy in
    let sens = Eqwave.Sensitivity.compute ctx in
    let gamma = Eqwave.Sgdp.sgdp.Eqwave.Technique.run ctx in
    let v_out_eff =
      Noise.Injection.receiver_response scen
        ~input:(Spice.Source.of_ramp gamma) ~tstop:scen.Noise.Scenario.tstop
    in
    let oc = open_out out in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc
          "t,v_nl_in,v_nl_out,rho,v_noisy,gamma_eff,rho_eff,v_out_eff,v_out_ref\n";
        let a, b = Eqwave.Technique.noisy_critical_region ctx in
        let t0 = a -. 150e-12 and t1 = b +. 200e-12 in
        let n = 400 in
        let ts =
          Array.init n (fun i ->
              t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (n - 1)))
        in
        let rho_eff, _ = Eqwave.Sgdp.rho_eff sens ctx ts in
        Array.iteri
          (fun i t ->
            Printf.fprintf oc "%.5e,%.5f,%.5f,%.5f,%.5f,%.5f,%.5f,%.5f,%.5f\n" t
              (Waveform.Wave.value_at ctx.Eqwave.Technique.noiseless_in t)
              (Waveform.Wave.value_at ctx.Eqwave.Technique.noiseless_out t)
              (Eqwave.Sensitivity.rho_at_time sens t)
              (Waveform.Wave.value_at ctx.Eqwave.Technique.noisy_in t)
              (Waveform.Ramp.value_at gamma t)
              rho_eff.(i)
              (Waveform.Wave.value_at v_out_eff t)
              (Waveform.Wave.value_at noisy.Noise.Injection.rcv t))
          ts);
    Printf.printf "wrote %s\n" out
  in
  Cmd.v (Cmd.info "figure2" ~doc:"Dump the Figure-2 waveform series as CSV")
    Term.(const run $ out $ tau_ps)

let waveform_cmd =
  let tau_ps =
    Arg.(value & opt float 1200.0 & info [ "tau" ] ~doc:"Aggressor start, ps.")
  in
  let config =
    Arg.(value & opt scenario_conv Noise.Scenario.config_i
         & info [ "config" ] ~doc:"Configuration (1 or 2).")
  in
  let run tau_ps scen =
    let noisy = Noise.Injection.noisy scen ~tau:(tau_ps *. 1e-12) in
    print_string (Waveform.Wave.to_csv noisy.Noise.Injection.far)
  in
  Cmd.v
    (Cmd.info "waveform"
       ~doc:"Print the noisy receiver-input waveform of one case as CSV")
    Term.(const run $ tau_ps $ config)

let sta_cmd =
  let technique =
    Arg.(value & opt technique_conv Eqwave.Sgdp.sgdp
         & info [ "technique" ] ~doc:"Noisy-pin reduction technique.")
  in
  let lib_file =
    Arg.(value & opt (some string) None
         & info [ "lib" ] ~doc:"NLDM library file (from `characterize`); \
                                characterizes on the fly when omitted.")
  in
  let netlist_file =
    Arg.(value & opt (some string) None
         & info [ "netlist" ] ~doc:"Gate-level netlist file (see \
                                    Sta.Netlist_io for the format); a \
                                    built-in demo chain when omitted.")
  in
  let run technique lib_file netlist_file rt =
    with_rt rt @@ fun () ->
    let library =
      match lib_file with
      | Some path -> Liberty.Libfile.load path
      | None ->
          Printf.printf "characterizing cells (pass --lib to skip)...\n%!";
          List.map
            (Liberty.Characterize.run ~engine:rt.engine proc)
            Device.Cell.[ inv_x1; inv_x4; inv_x16; inv_x64 ]
    in
    let n =
      match netlist_file with
      | Some path -> Sta.Netlist_io.load path
      | None ->
          let n = Sta.Netlist.create () in
          Sta.Netlist.input n "in";
          Sta.Netlist.gate n ~cell:"INVx1" ~name:"u1" ~input:"in" ~output:"n1";
          Sta.Netlist.gate n ~cell:"INVx4" ~name:"u2" ~input:"n1" ~output:"n2";
          Sta.Netlist.set_load n "n2"
            (Sta.Netlist.Line Noise.Scenario.config_i.Noise.Scenario.line);
          Sta.Netlist.gate n ~cell:"INVx16" ~name:"u3" ~input:"n2" ~output:"n3";
          Sta.Netlist.gate n ~cell:"INVx64" ~name:"u4" ~input:"n3" ~output:"out";
          Sta.Netlist.output n "out";
          n
    in
    let first_input =
      match Sta.Netlist.inputs n with
      | i :: _ -> i
      | [] -> failwith "netlist has no primary inputs"
    in
    let noisy_net =
      (* The demo injects on "n2"; for user netlists pick the first net
         with a line load, if any. *)
      match
        List.find_opt
          (fun net ->
            match Sta.Netlist.load_of n net with
            | Some (Sta.Netlist.Line _) -> true
            | _ -> false)
          (Sta.Netlist.nets n)
      with
      | Some net -> net
      | None -> first_input
    in
    let cfg = Sta.Propagate.config ~technique library in
    let stim =
      {
        Sta.Propagate.arrival = 100e-12;
        slew = 150e-12;
        dir = Waveform.Wave.Rising;
      }
    in
    Printf.printf "\nnominal STA (technique %s not engaged):\n"
      technique.Eqwave.Technique.name;
    let stimuli = List.map (fun i -> (i, stim)) (Sta.Netlist.inputs n) in
    let nominal = Sta.Propagate.run cfg n ~stimuli in
    Format.printf "%a@." Sta.Propagate.pp_result nominal;
    (* Inject a crosstalk waveform on n2 (the line's far end) from the
       Figure-1 scenario, time-aligned to the nominal arrival there. *)
    let scen = Noise.Scenario.config_i in
    let noisy =
      Noise.Injection.noisy scen
        ~tau:(scen.Noise.Scenario.victim_t0 +. 0.05e-9)
    in
    let at_n2 =
      (List.assoc noisy_net nominal.Sta.Propagate.timings).Sta.Propagate.at
    in
    let th = Device.Process.thresholds proc in
    let wave_arrival =
      match Waveform.Wave.arrival noisy.Noise.Injection.far th with
      | Some t -> t
      | None -> failwith "injected waveform has no arrival"
    in
    let wave = Waveform.Wave.shift noisy.Noise.Injection.far (at_n2 -. wave_arrival) in
    Printf.printf "noise-aware STA (noisy pin %s, technique %s):\n"
      noisy_net technique.Eqwave.Technique.name;
    let noisy_run =
      Sta.Propagate.run ~noisy_pins:[ (noisy_net, wave) ] cfg n ~stimuli
    in
    Format.printf "%a@." Sta.Propagate.pp_result noisy_run;
    match
      (nominal.Sta.Propagate.worst_output, noisy_run.Sta.Propagate.worst_output)
    with
    | Some (_, a), Some (_, b) ->
        Printf.printf "noise shifts the worst arrival by %+.1f ps\n"
          ((b.Sta.Propagate.at -. a.Sta.Propagate.at) *. 1e12)
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "sta" ~doc:"Run the STA engine on a demo chain with a noisy pin")
    Term.(const run $ technique $ lib_file $ netlist_file $ rt_term)

let montecarlo_cmd =
  let samples =
    Arg.(value & opt int 50 & info [ "samples" ] ~doc:"Random cases to draw.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let config =
    Arg.(value & opt scenario_conv Noise.Scenario.config_i
         & info [ "config" ] ~doc:"Configuration (1 or 2).")
  in
  let run samples seed scen rt =
    with_rt rt (fun () ->
        let draws, summaries =
          Noise.Montecarlo.run ~seed ~samples ~engine:rt.engine
            ?ladder:rt.ladder ?checkpoint_dir:rt.checkpoint_dir
            ~prune_tol_ps:rt.prune_tol_ps scen
        in
        Printf.printf "%s, %d random alignment/polarity samples (seed %d):\n"
          scen.Noise.Scenario.name samples seed;
        Format.printf "%a@." Noise.Montecarlo.pp_summary summaries;
        let pruned =
          List.length
            (List.filter (fun s -> s.Noise.Montecarlo.pruned) draws)
        in
        if pruned > 0 then
          Printf.printf "%d/%d draws pruned (no critical-window overlap)\n"
            pruned samples)
  in
  Cmd.v
    (Cmd.info "montecarlo"
       ~doc:"Randomized noise-injection error percentiles per technique")
    Term.(const run $ samples $ seed $ config $ rt_term)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "noisy-sta" ~version:"1.0.0"
             ~doc:"Noisy-waveform propagation for static timing analysis")
          [
            characterize_cmd;
            table1_cmd;
            figure2_cmd;
            waveform_cmd;
            sta_cmd;
            montecarlo_cmd;
          ]))
