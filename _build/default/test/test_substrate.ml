(* Tests for the deeper substrate additions: AWE moment matching, the
   Devgan noise bound, PWL compression, netlist file IO, and the
   Monte-Carlo driver. *)

open Helpers
open Interconnect

(* ------------------------------------------------------------------ *)
(* AWE                                                                 *)

let single_rc ~r ~c () =
  let open Spice in
  let ckt = Circuit.create () in
  let src = Circuit.node ckt "in" and out = Circuit.node ckt "out" in
  Circuit.vsource ckt src (Source.dc 1.0);
  Circuit.resistor ckt src out r;
  Circuit.capacitor ckt out (Circuit.gnd ckt) c;
  ckt

let test_awe_single_rc_moments () =
  (* H(s) = 1/(1 + sRC): moments 1, -RC, (RC)^2, -(RC)^3 ... *)
  let r = 1e3 and c = 1e-12 in
  let ckt = single_rc ~r ~c () in
  let ms = Awe.moments_of_circuit ckt ~input:"in" ~output:"out" ~order:3 in
  let rc = r *. c in
  approx_rel ~rel:1e-6 "m0" 1.0 ms.(0);
  approx_rel ~rel:1e-6 "m1" (-.rc) ms.(1);
  approx_rel ~rel:1e-6 "m2" (rc *. rc) ms.(2);
  approx_rel ~rel:1e-6 "m3" (-.(rc ** 3.0)) ms.(3)

let test_awe_single_pole_exact () =
  let r = 1e3 and c = 1e-12 in
  let ckt = single_rc ~r ~c () in
  let ms = Awe.moments_of_circuit ckt ~input:"in" ~output:"out" ~order:3 in
  let m = Awe.pade ~q:1 ms in
  approx_rel ~rel:1e-6 "pole" (-1.0 /. (r *. c)) m.Awe.poles.(0);
  approx_rel ~rel:1e-6 "delay = RC ln2" (r *. c *. log 2.0) (Awe.delay m)

let ladder_circuit spec =
  let open Spice in
  let ckt = Circuit.create () in
  let near = Circuit.node ckt "in" in
  Circuit.vsource ckt near (Source.dc 1.0);
  let far = Rcline.build ckt ~prefix:"w" ~near spec in
  (ckt, Circuit.node_name ckt far)

let line_spec = Rcline.{ rtotal = 200.0; ctotal = 200e-15; nsegs = 8 }

let test_awe_ladder_elmore_crosscheck () =
  let ckt, far = ladder_circuit line_spec in
  let ms = Awe.moments_of_circuit ckt ~input:"in" ~output:far ~order:3 in
  approx_rel ~rel:1e-4 "m1 = -elmore"
    (Rcline.elmore_discrete line_spec)
    (Awe.elmore_of_moments ms)

let test_awe_two_pole_vs_spice () =
  (* The 2-pole model's 50% delay must sit within a few percent of the
     transient simulation of the same ladder. *)
  let ckt, far = ladder_circuit line_spec in
  let ms = Awe.moments_of_circuit ckt ~input:"in" ~output:far ~order:5 in
  let model = Awe.pade ~q:2 ms in
  Alcotest.(check int) "two poles" 2 (Array.length model.Awe.poles);
  Array.iter (fun p -> check_true "stable" (p < 0.0)) model.Awe.poles;
  let awe_delay = Awe.delay model in
  (* Spice reference with a sharp step. *)
  let open Spice in
  let ckt2 = Circuit.create () in
  let near = Circuit.node ckt2 "in" in
  Circuit.vsource ckt2 near (Source.pwl [ (0.0, 0.0); (1e-14, 1.0) ]);
  let far2 = Rcline.build ckt2 ~prefix:"w" ~near line_spec in
  let config = { Transient.default_config with dt = 0.05e-12; tstop = 200e-12 } in
  let res = Transient.run ~config ckt2 in
  let w = Transient.probe res (Circuit.node_name ckt2 far2) in
  match Waveform.Wave.first_crossing w 0.5 with
  | Some t50 -> approx_rel ~rel:0.08 "awe vs spice" t50 awe_delay
  | None -> Alcotest.fail "no spice crossing"

let test_awe_step_response_shape () =
  let ckt, far = ladder_circuit line_spec in
  let ms = Awe.moments_of_circuit ckt ~input:"in" ~output:far ~order:5 in
  let m = Awe.pade ms in
  approx ~eps:1e-6 "starts near 0" 0.0 (Awe.step_response m 0.0);
  approx_rel ~rel:1e-3 "settles at dc" m.Awe.dc
    (Awe.step_response m 1e-6);
  check_true "negative time is zero" (Awe.step_response m (-1.0) = 0.0)

let test_awe_coupled_transfer () =
  (* Aggressor-to-victim transfer on the coupled bus: DC gain must be
     ~0 (capacitive coupling only), first moment non-zero. *)
  let open Spice in
  let ckt = Circuit.create () in
  let agg = Circuit.node ckt "agg" and vic = Circuit.node ckt "vic" in
  Circuit.vsource ckt agg (Source.dc 1.0);
  Circuit.resistor ckt vic (Circuit.gnd ckt) 500.0;
  let spec = Coupled.make ~line:line_spec ~nlines:2 ~cm_total:100e-15 in
  let fars = Coupled.build ckt ~prefix:"bus" ~nears:[ agg; vic ] spec in
  let far_vic = Circuit.node_name ckt (List.nth fars 1) in
  let ms = Awe.moments_of_circuit ckt ~input:"agg" ~output:far_vic ~order:2 in
  check_true "near-zero dc coupling" (abs_float ms.(0) < 1e-6);
  check_true "nonzero first moment" (abs_float ms.(1) > 1e-15)

let test_awe_rejects_nonlinear () =
  let open Spice in
  let ckt = Circuit.create () in
  let a = Circuit.node ckt "a" and y = Circuit.node ckt "y" in
  Circuit.vsource ckt a (Source.dc 1.0);
  Circuit.mosfet ckt ~name:"m" ~g:a ~d:y ~s:(Circuit.gnd ckt)
    (Device.Mosfet.nmos Device.Process.c13 ~width:1e-6);
  match Awe.moments_of_circuit ckt ~input:"a" ~output:"y" ~order:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let test_awe_unknown_names () =
  let ckt = single_rc ~r:1e3 ~c:1e-12 () in
  match Awe.moments_of_circuit ckt ~input:"zzz" ~output:"out" ~order:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unknown-node rejection"

(* ------------------------------------------------------------------ *)
(* Devgan bound                                                        *)

let victim_tree ~rdrv =
  (* Driver resistance followed by a 4-section line. *)
  Rctree.node "root"
    [
      Rctree.node ~r:rdrv ~c:0.0 "drv"
        [
          Rctree.node ~r:50.0 ~c:5e-15 "n1"
            [ Rctree.node ~r:50.0 ~c:5e-15 "n2" [] ];
        ];
    ]

let test_devgan_hand_computed () =
  (* One coupling cap at n2: bound(n2) = (rdrv + 100) * Cm * mu. *)
  let t = victim_tree ~rdrv:400.0 in
  let mu = 1.2 /. 150e-12 in
  let b =
    Noise_bound.bound_at t ~couplings:[ ("n2", 20e-15) ]
      ~aggressor_slew_rate:mu "n2"
  in
  approx_rel ~rel:1e-9 "bound" (500.0 *. 20e-15 *. mu) b

let test_devgan_monotone_along_path () =
  let t = victim_tree ~rdrv:400.0 in
  let couplings = [ ("n1", 10e-15); ("n2", 10e-15) ] in
  let bounds = Noise_bound.bound t ~couplings ~aggressor_slew_rate:1e10 in
  let get n = List.assoc n bounds in
  check_true "grows downstream" (get "n2" >= get "n1");
  check_true "driver sees less" (get "drv" <= get "n1")

let test_devgan_bounds_simulation () =
  (* The bound must dominate the simulated glitch peak on the coupled
     line with a resistive holding driver. *)
  let rdrv = 500.0 in
  let spec = Rcline.{ rtotal = 100.0; ctotal = 20e-15; nsegs = 4 } in
  let cm_total = 60e-15 in
  let slew_rate = 1.0 /. 100e-12 in
  let bound =
    Noise_bound.line_bound ~driver_resistance:rdrv ~line:spec ~cm_total
      ~aggressor_slew_rate:slew_rate
  in
  let open Spice in
  let ckt = Circuit.create () in
  let agg = Circuit.node ckt "agg" and drv = Circuit.node ckt "drv" in
  Circuit.vsource ckt agg (Source.ramp ~t0:10e-12 ~v0:0.0 ~v1:1.0 ~trans:100e-12);
  Circuit.resistor ckt drv (Circuit.gnd ckt) rdrv;
  let c = Coupled.make ~line:spec ~nlines:2 ~cm_total in
  let fars = Coupled.build ckt ~prefix:"b" ~nears:[ agg; drv ] c in
  let far = Circuit.node_name ckt (List.nth fars 1) in
  let config = { Transient.default_config with dt = 0.2e-12; tstop = 500e-12 } in
  let res = Transient.run ~config ckt in
  let peak =
    Array.fold_left Float.max neg_infinity
      (Waveform.Wave.values (Transient.probe res far))
  in
  check_true "bound dominates" (bound >= peak);
  check_true "bound not absurd" (bound < 20.0 *. peak)

let test_devgan_validation () =
  let t = victim_tree ~rdrv:100.0 in
  match
    Noise_bound.bound t ~couplings:[ ("nope", 1e-15) ] ~aggressor_slew_rate:1e9
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unknown-node rejection"

(* ------------------------------------------------------------------ *)
(* PWL compression                                                     *)

let noisy_wave () =
  let th = Waveform.Thresholds.default in
  Waveform.Edges.noisy_edge ~th ~arrival:1e-9 ~slew:150e-12
    ~dir:Waveform.Wave.Rising
    ~glitches:
      [ Waveform.Edges.triangular_glitch ~t0:1.1e-9 ~rise:40e-12 ~fall:60e-12
          ~peak:(-0.25) ]
    ()

let test_pwl_error_bound () =
  let w = noisy_wave () in
  let eps = 5e-3 in
  let c = Waveform.Pwl.compress ~eps w in
  check_true "within bound" (Waveform.Pwl.max_deviation w c <= eps +. 1e-12)

let test_pwl_compresses () =
  let w = noisy_wave () in
  let c = Waveform.Pwl.compress ~eps:5e-3 w in
  check_true "at least 5x smaller" (Waveform.Pwl.compression_ratio w c > 5.0)

let test_pwl_preserves_timing () =
  let th = Waveform.Thresholds.default in
  let w = noisy_wave () in
  let c = Waveform.Pwl.compress ~eps:2e-3 w in
  match (Waveform.Wave.arrival w th, Waveform.Wave.arrival c th) with
  | Some a, Some b -> check_true "arrival within 2 ps" (abs_float (a -. b) < 2e-12)
  | _ -> Alcotest.fail "missing arrival"

let test_pwl_line_is_two_points () =
  let w = Waveform.Wave.create
      (Array.init 100 (fun i -> float_of_int i))
      (Array.init 100 (fun i -> 2.0 *. float_of_int i))
  in
  let c = Waveform.Pwl.compress ~eps:1e-9 w in
  Alcotest.(check int) "just the ends" 2 (Waveform.Wave.length c)

let test_pwl_points () =
  let w = Waveform.Wave.create [| 0.0; 1.0 |] [| 2.0; 3.0 |] in
  Alcotest.(check int) "pairs" 2 (List.length (Waveform.Pwl.points w))

(* ------------------------------------------------------------------ *)
(* Netlist IO                                                          *)

let netlist_text =
  "# demo\n\
   input in\n\
   gate u1 INVx1 in n1\n\
   gate u2 INVx4 n1 bus\n\
   line bus 25.5 1.44e-14 6\n\
   cap n1 2e-15\n\
   gate u3 INVx16 bus out\n\
   output out\n"

let test_netlist_parse () =
  let n = Sta.Netlist_io.of_string netlist_text in
  Alcotest.(check (list string)) "inputs" [ "in" ] (Sta.Netlist.inputs n);
  Alcotest.(check (list string)) "outputs" [ "out" ] (Sta.Netlist.outputs n);
  Alcotest.(check int) "gates" 3 (List.length (Sta.Netlist.instances n));
  (match Sta.Netlist.load_of n "bus" with
  | Some (Sta.Netlist.Line spec) ->
      approx_rel ~rel:1e-9 "rtotal" 25.5 spec.Interconnect.Rcline.rtotal
  | _ -> Alcotest.fail "bus line load missing");
  match Sta.Netlist.load_of n "n1" with
  | Some (Sta.Netlist.Lumped c) -> approx_rel ~rel:1e-9 "cap" 2e-15 c
  | _ -> Alcotest.fail "n1 cap missing"

let test_netlist_roundtrip () =
  let n = Sta.Netlist_io.of_string netlist_text in
  let n2 = Sta.Netlist_io.of_string (Sta.Netlist_io.to_string n) in
  Alcotest.(check (list string)) "nets" (Sta.Netlist.nets n) (Sta.Netlist.nets n2);
  Alcotest.(check int) "gates" 3 (List.length (Sta.Netlist.instances n2))

let test_netlist_errors () =
  let bad cases =
    List.iter
      (fun text ->
        match Sta.Netlist_io.of_string text with
        | exception Failure _ -> ()
        | _ -> Alcotest.failf "accepted %S" text)
      cases
  in
  bad [ "bogus x\n"; "gate u1 INVx1 a\n"; "line n abc 1e-15 4\n";
        "input a\ninput a\n" ]

let test_netlist_file_io () =
  let path = Filename.temp_file "noisy_sta" ".net" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sta.Netlist_io.save path (Sta.Netlist_io.of_string netlist_text);
      let n = Sta.Netlist_io.load path in
      Alcotest.(check int) "gates" 3 (List.length (Sta.Netlist.instances n)))

(* ------------------------------------------------------------------ *)
(* Monte Carlo                                                         *)

let test_montecarlo_deterministic () =
  let scen = Noise.Scenario.config_i in
  let techs = [ Eqwave.Point_based.p1 ] in
  let s1, _ = Noise.Montecarlo.run ~seed:7 ~samples:3 ~techniques:techs scen in
  let s2, _ = Noise.Montecarlo.run ~seed:7 ~samples:3 ~techniques:techs scen in
  List.iter2
    (fun a b ->
      approx ~eps:0.0 "same tau" a.Noise.Montecarlo.tau b.Noise.Montecarlo.tau;
      check_true "same polarity"
        (a.Noise.Montecarlo.aggressor_rising = b.Noise.Montecarlo.aggressor_rising))
    s1 s2

let test_montecarlo_summary_shape () =
  let scen = Noise.Scenario.config_i in
  let techs = [ Eqwave.Point_based.p1; Eqwave.Sgdp.sgdp ] in
  let samples, summaries =
    Noise.Montecarlo.run ~seed:1 ~samples:4 ~techniques:techs scen
  in
  Alcotest.(check int) "samples" 4 (List.length samples);
  Alcotest.(check int) "summaries" 2 (List.length summaries);
  List.iter
    (fun s ->
      check_true "percentiles ordered"
        (s.Noise.Montecarlo.p50_ps <= s.Noise.Montecarlo.p95_ps +. 1e-9
        && s.Noise.Montecarlo.p95_ps <= s.Noise.Montecarlo.max_ps +. 1e-9))
    summaries

let qcheck_tests =
  [
    qcase ~count:20 "pwl: compression respects any eps"
      QCheck2.Gen.(float_range 1e-3 0.2)
      (fun eps ->
        let w = noisy_wave () in
        let c = Waveform.Pwl.compress ~eps w in
        Waveform.Pwl.max_deviation w c <= eps +. 1e-12);
    qcase ~count:15 "awe: single-RC delay matches RC ln2 for random R, C"
      QCheck2.Gen.(pair (float_range 10.0 10e3) (float_range 1e-15 10e-12))
      (fun (r, c) ->
        let ckt = single_rc ~r ~c () in
        let ms = Awe.moments_of_circuit ckt ~input:"in" ~output:"out" ~order:3 in
        let m = Awe.pade ~q:1 ms in
        let expected = r *. c *. log 2.0 in
        abs_float (Awe.delay m -. expected) < 0.02 *. expected);
  ]

let suite =
  ( "substrate",
    [
      case "awe: single-RC moments" test_awe_single_rc_moments;
      case "awe: single-pole exact" test_awe_single_pole_exact;
      case "awe: ladder elmore crosscheck" test_awe_ladder_elmore_crosscheck;
      case "awe: two-pole vs spice" test_awe_two_pole_vs_spice;
      case "awe: step response shape" test_awe_step_response_shape;
      case "awe: coupled transfer" test_awe_coupled_transfer;
      case "awe: rejects nonlinear" test_awe_rejects_nonlinear;
      case "awe: unknown names" test_awe_unknown_names;
      case "devgan: hand computed" test_devgan_hand_computed;
      case "devgan: monotone" test_devgan_monotone_along_path;
      case "devgan: dominates simulation" test_devgan_bounds_simulation;
      case "devgan: validation" test_devgan_validation;
      case "pwl: error bound" test_pwl_error_bound;
      case "pwl: compresses" test_pwl_compresses;
      case "pwl: preserves timing" test_pwl_preserves_timing;
      case "pwl: line is two points" test_pwl_line_is_two_points;
      case "pwl: points" test_pwl_points;
      case "netlist io: parse" test_netlist_parse;
      case "netlist io: roundtrip" test_netlist_roundtrip;
      case "netlist io: errors" test_netlist_errors;
      case "netlist io: files" test_netlist_file_io;
      slow_case "montecarlo: deterministic" test_montecarlo_deterministic;
      slow_case "montecarlo: summary shape" test_montecarlo_summary_shape;
    ]
    @ qcheck_tests )
