open Helpers

let proc = Device.Process.c13
let vdd = proc.Device.Process.vdd

(* ------------------------------------------------------------------ *)
(* Alpha-power-law model                                               *)

let test_cutoff () =
  approx "below vth" 0.0
    (Device.Mosfet.nmos_id proc ~width:1e-6 ~vgs:0.2 ~vds:1.0)

let test_on_current_scale () =
  (* Ion at full gate drive: the c13 corner targets ~600 uA/um. *)
  let ion = Device.Mosfet.nmos_id proc ~width:1e-6 ~vgs:vdd ~vds:vdd in
  check_true "N Ion in range" (ion > 400e-6 && ion < 900e-6);
  let iop = Device.Mosfet.pmos_id proc ~width:1e-6 ~vsg:vdd ~vsd:vdd in
  check_true "P Ion in range" (iop > 150e-6 && iop < 500e-6);
  check_true "P weaker than N" (iop < ion)

let test_width_scaling () =
  let i1 = Device.Mosfet.nmos_id proc ~width:1e-6 ~vgs:1.0 ~vds:1.0 in
  let i4 = Device.Mosfet.nmos_id proc ~width:4e-6 ~vgs:1.0 ~vds:1.0 in
  approx_rel ~rel:1e-9 "4x width = 4x current" (4.0 *. i1) i4

let test_monotone_in_vgs () =
  let prev = ref (-1.0) in
  for k = 0 to 24 do
    let vgs = float_of_int k *. vdd /. 24.0 in
    let i = Device.Mosfet.nmos_id proc ~width:1e-6 ~vgs ~vds:vdd in
    check_true "monotone vgs" (i >= !prev -. 1e-15);
    prev := i
  done

let test_monotone_in_vds () =
  let prev = ref (-1.0) in
  for k = 0 to 24 do
    let vds = float_of_int k *. vdd /. 24.0 in
    let i = Device.Mosfet.nmos_id proc ~width:1e-6 ~vgs:vdd ~vds in
    check_true "monotone vds" (i >= !prev -. 1e-12);
    prev := i
  done

let test_continuity_at_vdsat () =
  (* Scan vds finely: no jump bigger than the local increments. *)
  let n = 2000 in
  let prev = ref 0.0 in
  let max_jump = ref 0.0 in
  for k = 0 to n do
    let vds = float_of_int k *. vdd /. float_of_int n in
    let i = Device.Mosfet.nmos_id proc ~width:1e-6 ~vgs:0.8 ~vds in
    if k > 0 then max_jump := Float.max !max_jump (abs_float (i -. !prev));
    prev := i
  done;
  (* Total current ~ 200 uA over 2000 steps: jumps must stay ~ uA. *)
  check_true "no discontinuity" (!max_jump < 3e-6)

let fd_check name eval ~vg ~vd ~vs =
  (* Finite-difference validation of the analytic Jacobian entries. *)
  let h = 1e-7 in
  let i0, dg, dd, ds = eval ~vg ~vd ~vs in
  let ip, _, _, _ = eval ~vg:(vg +. h) ~vd ~vs in
  approx_rel ~rel:2e-2 (name ^ " dIds/dVg") ((ip -. i0) /. h +. 1e-12) (dg +. 1e-12);
  let ip, _, _, _ = eval ~vg ~vd:(vd +. h) ~vs in
  approx_rel ~rel:2e-2 (name ^ " dIds/dVd") ((ip -. i0) /. h +. 1e-12) (dd +. 1e-12);
  let ip, _, _, _ = eval ~vg ~vd ~vs:(vs +. h) in
  approx_rel ~rel:2e-2 (name ^ " dIds/dVs") ((ip -. i0) /. h +. 1e-12) (ds +. 1e-12)

let test_nmos_derivatives () =
  let eval = Device.Mosfet.nmos proc ~width:2e-6 in
  (* Operating points covering triode, saturation, and swapped S/D. *)
  List.iter
    (fun (vg, vd, vs) -> fd_check "nmos" eval ~vg ~vd ~vs)
    [
      (1.2, 1.2, 0.0); (* saturation *)
      (1.2, 0.1, 0.0); (* deep triode *)
      (0.8, 0.3, 0.0); (* moderate *)
      (1.0, 0.0, 0.4); (* swapped drain/source *)
      (0.7, 0.9, 0.2);
    ]

let test_pmos_derivatives () =
  let eval = Device.Mosfet.pmos proc ~width:2e-6 in
  List.iter
    (fun (vg, vd, vs) -> fd_check "pmos" eval ~vg ~vd ~vs)
    [ (0.0, 0.0, 1.2); (0.0, 1.1, 1.2); (0.5, 0.6, 1.2); (0.3, 1.2, 0.9) ]

let test_pmos_pulls_up () =
  (* Gate low, source at vdd, drain low: the PMOS sources current into
     the drain (ids < 0 in drain->source convention means current flows
     source->drain... our convention: ids flows d->s; for a conducting
     PMOS pulling the drain up, current enters the drain from the
     supply: ids must be negative. *)
  let eval = Device.Mosfet.pmos proc ~width:1e-6 in
  let ids, _, _, _ = eval ~vg:0.0 ~vd:0.0 ~vs:vdd in
  check_true "pmos conducts upward" (ids < -1e-5)

let test_nmos_symmetry () =
  (* Swapping drain and source negates the current. *)
  let eval = Device.Mosfet.nmos proc ~width:1e-6 in
  let i1, _, _, _ = eval ~vg:1.0 ~vd:0.6 ~vs:0.2 in
  let i2, _, _, _ = eval ~vg:1.0 ~vd:0.2 ~vs:0.6 in
  approx_rel ~rel:1e-9 "antisymmetric" i1 (-.i2)

let test_width_validation () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Mosfet.nmos: width must be positive") (fun () ->
      let (_ : Spice.Circuit.mosfet_eval) = Device.Mosfet.nmos proc ~width:0.0 in
      ())

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)

let test_cell_sizes () =
  let open Device.Cell in
  Alcotest.(check string) "name" "INVx16" inv_x16.name;
  approx_rel ~rel:1e-9 "x4 width" (4.0 *. inv_x1.wn) inv_x4.wn;
  approx_rel ~rel:1e-9 "x64 width" (64.0 *. inv_x1.wp) inv_x64.wp

let test_cell_validation () =
  Alcotest.check_raises "drive" (Invalid_argument "Cell: drive must be >= 1")
    (fun () -> ignore (Device.Cell.inv proc ~drive:0))

let test_input_cap_scales () =
  let c1 = Device.Cell.input_cap proc Device.Cell.inv_x1 in
  let c16 = Device.Cell.input_cap proc Device.Cell.inv_x16 in
  approx_rel ~rel:1e-9 "cap scales" (16.0 *. c1) c16;
  check_true "cap plausible" (c1 > 0.1e-15 && c1 < 5e-15)

let test_inverter_dc_transfer () =
  (* Sweep the input DC level: the output must fall monotonically from
     ~vdd to ~0 with a high-gain region in the middle. *)
  let open Spice in
  let out_for vin =
    let ckt = Circuit.create () in
    let vddn = Device.Cell.attach_supply proc ckt in
    let a = Circuit.node ckt "a" and y = Circuit.node ckt "y" in
    Device.Cell.instantiate proc Device.Cell.inv_x1 ~ckt ~input:a ~output:y
      ~vdd_node:vddn ~name:"u1";
    Circuit.vsource ckt a (Source.dc vin);
    let guess = [ ("y", if vin > 0.6 then 0.0 else vdd) ] in
    List.assoc "y" (Transient.dc_operating_point ~guess ~at:0.0 ckt)
  in
  let low = out_for 0.0 and high = out_for vdd in
  check_true "output high for low input" (low > 0.95 *. vdd);
  check_true "output low for high input" (high < 0.05 *. vdd);
  let mid = out_for (vdd /. 2.0) in
  check_true "transition region" (mid > 0.05 *. vdd && mid < 0.95 *. vdd)

let test_inverter_transient_delay () =
  (* An x1 inverter driving 4 fF: delay should be tens of ps, output
     must fully switch, and a rising input gives a falling output. *)
  let open Spice in
  let ckt = Circuit.create () in
  let vddn = Device.Cell.attach_supply proc ckt in
  let a = Circuit.node ckt "a" and y = Circuit.node ckt "y" in
  Device.Cell.instantiate proc Device.Cell.inv_x1 ~ckt ~input:a ~output:y
    ~vdd_node:vddn ~name:"u1";
  Circuit.capacitor ckt y (Circuit.gnd ckt) 4e-15;
  Circuit.vsource ckt a (Source.ramp ~t0:0.2e-9 ~v0:0.0 ~v1:vdd ~trans:150e-12);
  let config = { Transient.default_config with dt = 1e-12; tstop = 1.5e-9 } in
  let res = Transient.run ~config ckt in
  let th = Device.Process.thresholds proc in
  let wa = Transient.probe res "a" and wy = Transient.probe res "y" in
  check_true "output falls" (Waveform.Wave.direction wy = Waveform.Wave.Falling);
  approx ~eps:0.01 "full swing" 0.0 (Transient.final_voltage res "y");
  match (Waveform.Wave.arrival wa th, Waveform.Wave.arrival wy th) with
  | Some ti, Some ty ->
      let d = ty -. ti in
      check_true "plausible delay" (d > 5e-12 && d < 200e-12)
  | _ -> Alcotest.fail "missing crossings"

let test_chain_propagates () =
  (* Two cascaded inverters restore polarity and add delay. *)
  let open Spice in
  let ckt = Circuit.create () in
  let vddn = Device.Cell.attach_supply proc ckt in
  let a = Circuit.node ckt "a" in
  let m = Circuit.node ckt "m" in
  let y = Circuit.node ckt "y" in
  Device.Cell.instantiate proc Device.Cell.inv_x1 ~ckt ~input:a ~output:m
    ~vdd_node:vddn ~name:"u1";
  Device.Cell.instantiate proc Device.Cell.inv_x4 ~ckt ~input:m ~output:y
    ~vdd_node:vddn ~name:"u2";
  Circuit.vsource ckt a (Source.ramp ~t0:0.2e-9 ~v0:0.0 ~v1:vdd ~trans:100e-12);
  let config = { Transient.default_config with dt = 1e-12; tstop = 2e-9 } in
  let res = Transient.run ~config ckt in
  let wy = Transient.probe res "y" in
  check_true "polarity restored"
    (Waveform.Wave.direction wy = Waveform.Wave.Rising);
  approx ~eps:0.01 "settles at vdd" vdd (Transient.final_voltage res "y")

let qcheck_tests =
  [
    qcase ~count:60 "mosfet: analytic jacobian matches finite differences"
      QCheck2.Gen.(
        triple (float_range 0.0 1.2) (float_range 0.05 1.15)
          (float_range 0.05 1.15))
      (fun (vg, vd, vs) ->
        (* Keep away from the exact vds=0 kink where the FD straddles
           the symmetry point. *)
        QCheck2.assume (abs_float (vd -. vs) > 1e-3);
        let eval = Device.Mosfet.nmos proc ~width:1e-6 in
        let h = 1e-7 in
        let i0, dg, dd, ds = eval ~vg ~vd ~vs in
        let ig, _, _, _ = eval ~vg:(vg +. h) ~vd ~vs in
        let id, _, _, _ = eval ~vg ~vd:(vd +. h) ~vs in
        let is, _, _, _ = eval ~vg ~vd ~vs:(vs +. h) in
        let ok got expect =
          abs_float (got -. expect) <= (3e-2 *. abs_float expect) +. 1e-9
        in
        ok ((ig -. i0) /. h) dg
        && ok ((id -. i0) /. h) dd
        && ok ((is -. i0) /. h) ds);
    qcase ~count:30 "mosfet: current is antisymmetric under S/D swap"
      QCheck2.Gen.(
        triple (float_range 0.0 1.2) (float_range 0.0 1.2) (float_range 0.0 1.2))
      (fun (vg, vd, vs) ->
        let eval = Device.Mosfet.nmos proc ~width:1e-6 in
        let i1, _, _, _ = eval ~vg ~vd ~vs in
        let i2, _, _, _ = eval ~vg ~vd:vs ~vs:vd in
        abs_float (i1 +. i2) < 1e-12 +. (1e-9 *. abs_float i1));
  ]

let suite =
  ( "device",
    [
      case "mosfet: cutoff" test_cutoff;
      case "mosfet: on-current scale" test_on_current_scale;
      case "mosfet: width scaling" test_width_scaling;
      case "mosfet: monotone in vgs" test_monotone_in_vgs;
      case "mosfet: monotone in vds" test_monotone_in_vds;
      case "mosfet: continuity at vdsat" test_continuity_at_vdsat;
      case "mosfet: nmos derivatives" test_nmos_derivatives;
      case "mosfet: pmos derivatives" test_pmos_derivatives;
      case "mosfet: pmos pulls up" test_pmos_pulls_up;
      case "mosfet: S/D antisymmetry" test_nmos_symmetry;
      case "mosfet: width validation" test_width_validation;
      case "cell: sizes" test_cell_sizes;
      case "cell: validation" test_cell_validation;
      case "cell: input cap scaling" test_input_cap_scales;
      case "cell: inverter DC transfer" test_inverter_dc_transfer;
      case "cell: inverter transient delay" test_inverter_transient_delay;
      case "cell: two-stage chain" test_chain_propagates;
    ]
    @ qcheck_tests )
