open Helpers
open Waveform

let th = Thresholds.default
let vdd = th.Thresholds.vdd

let ramp_wave ?(t0 = 0.0) ?(trans = 100e-12) ?(rising = true) () =
  let v0, v1 = if rising then (0.0, vdd) else (vdd, 0.0) in
  Wave.of_fun ~t0:(t0 -. 50e-12) ~t1:(t0 +. trans +. 50e-12) ~n:401 (fun t ->
      if t <= t0 then v0
      else if t >= t0 +. trans then v1
      else v0 +. ((v1 -. v0) *. (t -. t0) /. trans))

(* ------------------------------------------------------------------ *)
(* Thresholds                                                          *)

let test_thresholds_default () =
  approx "low" 0.12 (Thresholds.v_low th);
  approx "mid" 0.6 (Thresholds.v_mid th);
  approx "high" 1.08 (Thresholds.v_high th)

let test_thresholds_validation () =
  Alcotest.check_raises "bad order"
    (Invalid_argument "Thresholds.make: need 0 < low < mid < high < 1")
    (fun () -> ignore (Thresholds.make ~low_frac:0.6 ~mid_frac:0.5 ~vdd:1.0 ()));
  Alcotest.check_raises "bad vdd"
    (Invalid_argument "Thresholds.make: vdd must be positive") (fun () ->
      ignore (Thresholds.make ~vdd:0.0 ()))

(* ------------------------------------------------------------------ *)
(* Wave construction and queries                                       *)

let test_create_validation () =
  Alcotest.check_raises "short"
    (Invalid_argument "Wave.create: need at least 2 samples") (fun () ->
      ignore (Wave.create [| 0.0 |] [| 1.0 |]));
  Alcotest.check_raises "nonmonotone"
    (Invalid_argument "Wave.create: times must be strictly increasing")
    (fun () -> ignore (Wave.create [| 0.0; 0.0 |] [| 1.0; 2.0 |]))

let test_value_at_interpolates () =
  let w = Wave.create [| 0.0; 1.0 |] [| 0.0; 2.0 |] in
  approx "mid" 1.0 (Wave.value_at w 0.5);
  approx "before" 0.0 (Wave.value_at w (-1.0));
  approx "after" 2.0 (Wave.value_at w 5.0)

let test_crossing_simple () =
  let w = ramp_wave () in
  (match Wave.first_crossing w (Thresholds.v_mid th) with
  | Some t -> approx ~eps:1e-15 "mid at half" 50e-12 t
  | None -> Alcotest.fail "no crossing");
  match Wave.crossings w (Thresholds.v_mid th) with
  | [ _ ] -> ()
  | l -> Alcotest.failf "expected 1 crossing, got %d" (List.length l)

let test_crossing_multiple () =
  (* A glitchy curve crossing 0.5 three times. *)
  let ts = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let vs = [| 0.0; 1.0; 0.2; 1.2; 1.2 |] in
  let w = Wave.create ts vs in
  let c = Wave.crossings w 0.6 in
  Alcotest.(check int) "three crossings" 3 (List.length c);
  (match Wave.first_crossing w 0.6 with
  | Some t -> approx "first" 0.6 t
  | None -> Alcotest.fail "no first");
  match Wave.last_crossing w 0.6 with
  | Some t -> approx "last" 2.4 t
  | None -> Alcotest.fail "no last"

let test_crossing_exact_sample () =
  (* A sample exactly on the level counts once. *)
  let w = Wave.create [| 0.0; 1.0; 2.0 |] [| 0.0; 0.5; 1.0 |] in
  Alcotest.(check int) "once" 1 (List.length (Wave.crossings w 0.5))

let test_direction () =
  check_true "rising" (Wave.direction (ramp_wave ()) = Wave.Rising);
  check_true "falling" (Wave.direction (ramp_wave ~rising:false ()) = Wave.Falling);
  let flat = Wave.create [| 0.0; 1.0 |] [| 0.3; 0.3 |] in
  match Wave.direction flat with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected no-transition error"

let test_slew_rising () =
  let w = ramp_wave ~trans:100e-12 () in
  match Wave.slew w th with
  | Some s -> approx ~eps:1e-13 "slew = 80% of trans" 80e-12 s
  | None -> Alcotest.fail "no slew"

let test_slew_falling () =
  let w = ramp_wave ~trans:200e-12 ~rising:false () in
  match Wave.slew w th with
  | Some s -> approx ~eps:1e-13 "falling slew" 160e-12 s
  | None -> Alcotest.fail "no slew"

let test_arrival_latest () =
  let ts = [| 0.0; 1e-9; 2e-9; 3e-9; 4e-9 |] in
  let vs = [| 0.0; 1.2; 0.0; 1.2; 1.2 |] in
  let w = Wave.create ts vs in
  match Wave.arrival w th with
  | Some t -> approx ~eps:1e-12 "latest mid" 2.5e-9 t
  | None -> Alcotest.fail "no arrival"

let test_shift () =
  let w = ramp_wave () in
  let s = Wave.shift w 1e-9 in
  approx ~eps:1e-15 "start moved" (Wave.t_start w +. 1e-9) (Wave.t_start s);
  approx "values preserved" (Wave.value_at w 50e-12)
    (Wave.value_at s (50e-12 +. 1e-9))

let test_scale_offset () =
  let w = ramp_wave () in
  let d = Wave.offset (Wave.scale w 2.0) (-0.1) in
  approx ~eps:1e-12 "scaled end" ((vdd *. 2.0) -. 0.1)
    (Wave.value_at d (Wave.t_end w))

let test_add_sub () =
  let a = ramp_wave () in
  let zero = Wave.sub a a in
  check_true "self-sub is zero"
    (Array.for_all (fun v -> abs_float v < 1e-12) (Wave.values zero));
  let double = Wave.add a a in
  approx ~eps:1e-12 "doubled" (2.0 *. vdd) (Wave.value_at double (Wave.t_end a))

let test_window () =
  let w = ramp_wave () in
  let win = Wave.window w 10e-12 90e-12 in
  approx ~eps:1e-15 "start" 10e-12 (Wave.t_start win);
  approx ~eps:1e-15 "end" 90e-12 (Wave.t_end win);
  approx ~eps:1e-9 "interpolated end value" (Wave.value_at w 90e-12)
    (Wave.value_at win 90e-12)

let test_window_validation () =
  let w = ramp_wave () in
  Alcotest.check_raises "empty" (Invalid_argument "Wave.window: empty window")
    (fun () -> ignore (Wave.window w 1.0 0.0))

let test_resample_preserves_values () =
  let w = ramp_wave () in
  let grid = Array.init 50 (fun i -> float_of_int i *. 4e-12) in
  let r = Wave.resample w grid in
  Array.iter
    (fun t -> approx ~eps:1e-9 "resample" (Wave.value_at w t) (Wave.value_at r t))
    grid

let test_derivative_of_ramp () =
  let w = ramp_wave ~trans:100e-12 () in
  let d = Wave.derivative w in
  (* slope inside the ramp = vdd / trans = 12 GV/s *)
  approx_rel ~rel:0.02 "slope" (vdd /. 100e-12) (Wave.value_at d 50e-12)

let test_monotone () =
  check_true "ramp monotone" (Wave.is_monotone (ramp_wave ()));
  let glitchy = Wave.create [| 0.0; 1.0; 2.0 |] [| 0.0; 1.0; 0.5 |] in
  check_true "glitchy not" (not (Wave.is_monotone glitchy))

let test_csv () =
  let w = Wave.create [| 0.0; 1.0 |] [| 0.5; 1.5 |] in
  let csv = Wave.to_csv w in
  check_true "header" (String.length csv > 4 && String.sub csv 0 4 = "t,v\n");
  check_true "two rows"
    (List.length (String.split_on_char '\n' (String.trim csv)) = 3)

let test_peak_deviation () =
  let w = Wave.create [| 0.0; 1.0; 2.0 |] [| 0.0; 1.5; 2.0 |] in
  approx "deviation" 0.5
    (Wave.peak_deviation_from_line w ~slope:1.0 ~intercept:0.0)

(* ------------------------------------------------------------------ *)
(* Ramp                                                                *)

let test_ramp_arrival_slew_roundtrip () =
  let r = Ramp.of_arrival_slew ~arrival:1e-9 ~slew:120e-12 ~dir:Wave.Rising th in
  approx ~eps:1e-15 "arrival" 1e-9 (Ramp.arrival r th);
  approx ~eps:1e-15 "slew" 120e-12 (Ramp.slew r th);
  check_true "dir" (Ramp.direction r = Wave.Rising)

let test_ramp_falling_roundtrip () =
  let r = Ramp.of_arrival_slew ~arrival:2e-9 ~slew:80e-12 ~dir:Wave.Falling th in
  approx ~eps:1e-15 "arrival" 2e-9 (Ramp.arrival r th);
  approx ~eps:1e-15 "slew" 80e-12 (Ramp.slew r th);
  check_true "dir" (Ramp.direction r = Wave.Falling)

let test_ramp_value_clipped () =
  let r = Ramp.of_arrival_slew ~arrival:0.0 ~slew:100e-12 ~dir:Wave.Rising th in
  approx "low rail" 0.0 (Ramp.value_at r (-1e-9));
  approx "high rail" vdd (Ramp.value_at r 1e-9)

let test_ramp_to_waveform_consistent () =
  let r = Ramp.of_arrival_slew ~arrival:1e-9 ~slew:150e-12 ~dir:Wave.Rising th in
  let w = Ramp.to_waveform ~n:801 r in
  (match Wave.arrival w th with
  | Some t -> approx ~eps:2e-12 "arrival preserved" 1e-9 t
  | None -> Alcotest.fail "no arrival");
  match Wave.slew w th with
  | Some s -> approx ~eps:3e-12 "slew preserved" 150e-12 s
  | None -> Alcotest.fail "no slew"

let test_ramp_shift () =
  let r = Ramp.of_arrival_slew ~arrival:1e-9 ~slew:100e-12 ~dir:Wave.Rising th in
  let s = Ramp.shift r 0.5e-9 in
  approx ~eps:1e-15 "shifted arrival" 1.5e-9 (Ramp.arrival s th)

let test_ramp_validation () =
  Alcotest.check_raises "zero slope" (Invalid_argument "Ramp.make: zero slope")
    (fun () -> ignore (Ramp.make ~slope:0.0 ~intercept:0.0 ~vdd:1.2));
  Alcotest.check_raises "bad slew"
    (Invalid_argument "Ramp.of_arrival_slew: slew must be positive") (fun () ->
      ignore (Ramp.of_arrival_slew ~arrival:0.0 ~slew:0.0 ~dir:Wave.Rising th))

let test_ramp_begin_settle () =
  let r = Ramp.of_arrival_slew ~arrival:1e-9 ~slew:80e-12 ~dir:Wave.Rising th in
  check_true "begin < settle" (Ramp.t_begin r < Ramp.t_settle r);
  approx ~eps:1e-15 "full swing duration" (80e-12 /. 0.8)
    (Ramp.t_settle r -. Ramp.t_begin r)

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  [
    qcase "wave: shifting moves crossings by the shift"
      QCheck2.Gen.(float_range (-1e-9) 1e-9)
      (fun dt ->
        let w = ramp_wave () in
        let s = Wave.shift w dt in
        match (Wave.arrival w th, Wave.arrival s th) with
        | Some a, Some b -> abs_float (b -. a -. dt) < 1e-15
        | _ -> false);
    qcase "ramp: arrival/slew roundtrip for random parameters"
      QCheck2.Gen.(pair (float_range (-2e-9) 2e-9) (float_range 1e-12 1e-9))
      (fun (arrival, slew) ->
        let r = Ramp.of_arrival_slew ~arrival ~slew ~dir:Wave.Rising th in
        abs_float (Ramp.arrival r th -. arrival) < 1e-12
        && abs_float (Ramp.slew r th -. slew) < 1e-12);
    qcase "wave: windowing preserves interpolated values"
      QCheck2.Gen.(float_range 0.1 0.8)
      (fun frac ->
        let w = ramp_wave () in
        let a = Wave.t_start w
        and b = Wave.t_end w in
        let mid = a +. (frac *. (b -. a)) in
        let win = Wave.window w a mid in
        abs_float (Wave.value_at win mid -. Wave.value_at w mid) < 1e-9);
    qcase "wave: monotone resampling of a monotone wave stays monotone"
      QCheck2.Gen.(int_range 3 100)
      (fun n ->
        let w = ramp_wave () in
        Wave.is_monotone (Wave.resample_uniform w ~n));
  ]

let suite =
  ( "waveform",
    [
      case "thresholds: defaults" test_thresholds_default;
      case "thresholds: validation" test_thresholds_validation;
      case "wave: create validation" test_create_validation;
      case "wave: interpolation" test_value_at_interpolates;
      case "wave: single crossing" test_crossing_simple;
      case "wave: multiple crossings" test_crossing_multiple;
      case "wave: exact-sample crossing" test_crossing_exact_sample;
      case "wave: direction" test_direction;
      case "wave: rising slew" test_slew_rising;
      case "wave: falling slew" test_slew_falling;
      case "wave: latest arrival" test_arrival_latest;
      case "wave: shift" test_shift;
      case "wave: scale/offset" test_scale_offset;
      case "wave: add/sub" test_add_sub;
      case "wave: window" test_window;
      case "wave: window validation" test_window_validation;
      case "wave: resample" test_resample_preserves_values;
      case "wave: derivative of ramp" test_derivative_of_ramp;
      case "wave: monotone" test_monotone;
      case "wave: csv" test_csv;
      case "wave: peak deviation" test_peak_deviation;
      case "ramp: rising roundtrip" test_ramp_arrival_slew_roundtrip;
      case "ramp: falling roundtrip" test_ramp_falling_roundtrip;
      case "ramp: clipped values" test_ramp_value_clipped;
      case "ramp: to_waveform consistency" test_ramp_to_waveform_consistent;
      case "ramp: shift" test_ramp_shift;
      case "ramp: validation" test_ramp_validation;
      case "ramp: begin/settle span" test_ramp_begin_settle;
    ]
    @ qcheck_tests )
