test/test_spice.ml: Alcotest Array Circuit Device Float Helpers List Source Spice String Transient Waveform
