test/main.mli:
