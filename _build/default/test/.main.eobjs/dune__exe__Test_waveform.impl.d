test/test_waveform.ml: Alcotest Array Helpers List QCheck2 Ramp String Thresholds Wave Waveform
