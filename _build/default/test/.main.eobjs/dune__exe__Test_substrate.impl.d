test/test_substrate.ml: Alcotest Array Awe Circuit Coupled Device Eqwave Filename Float Fun Helpers Interconnect List Noise Noise_bound QCheck2 Rcline Rctree Source Spice Sta Sys Transient Waveform
