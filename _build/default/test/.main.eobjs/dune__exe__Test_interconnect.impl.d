test/test_interconnect.ml: Alcotest Array Circuit Coupled Float Helpers Interconnect List Printf QCheck2 Rcline Rctree Source Spice Transient Waveform
