test/test_sta.ml: Alcotest Array Circuit Device Eqwave Float Format Helpers Interconnect Lazy Liberty List Netlist Propagate Ramp Source Spice Sta String Thresholds Transient Wave Waveform
