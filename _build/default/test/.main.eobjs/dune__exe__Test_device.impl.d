test/test_device.ml: Alcotest Circuit Device Float Helpers List QCheck2 Source Spice Transient Waveform
