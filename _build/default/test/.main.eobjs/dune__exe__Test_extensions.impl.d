test/test_extensions.ml: Alcotest Array Circuit Device Eqwave Helpers Liberty List Noise Option QCheck2 Source Spice Sta Transient Waveform
