test/test_numerics.ml: Alcotest Array Helpers Integrate Interp Lsq Matrix Numerics QCheck2 Roots Stats Tridiag Units
