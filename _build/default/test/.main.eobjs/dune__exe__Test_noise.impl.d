test/test_noise.ml: Alcotest Array Device Eqwave Eval Format Helpers Injection Interconnect Lazy List Noise Numerics Option Scenario Spice String Waveform
