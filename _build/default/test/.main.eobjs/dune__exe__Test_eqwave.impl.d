test/test_eqwave.ml: Alcotest Array Device Energy Eqwave Float Helpers Least_squares List Point_based QCheck2 Ramp Registry Sensitivity Sgdp Technique Wave Waveform Wls
