test/test_liberty.ml: Alcotest Array Characterize Device Filename Fun Helpers Lazy Liberty Libfile List Nldm QCheck2 Spice Sys Waveform
