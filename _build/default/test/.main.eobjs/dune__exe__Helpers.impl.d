test/helpers.ml: Alcotest Array Float QCheck2 QCheck_alcotest
