(* Shared assertion helpers for the suites. *)

let approx ?(eps = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g (eps %.2g)" msg expected actual
      eps

let approx_rel ?(rel = 1e-6) msg expected actual =
  let scale = Float.max (abs_float expected) 1e-30 in
  if abs_float (expected -. actual) > rel *. scale then
    Alcotest.failf "%s: expected %.9g, got %.9g (rel %.2g)" msg expected actual
      rel

let check_true msg b = Alcotest.(check bool) msg true b

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?count name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ?count ~name gen prop)

(* A deterministic pseudo-random float array generator for tests that
   need "arbitrary" data without QCheck plumbing. *)
let lcg_array seed n lo hi =
  let state = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      lo +. ((hi -. lo) *. (float_of_int !state /. float_of_int 0x3FFFFFFF)))
