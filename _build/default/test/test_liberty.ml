open Helpers
open Liberty

let proc = Device.Process.c13

let mk_table () =
  Nldm.table ~slews:[| 10e-12; 100e-12 |] ~loads:[| 1e-15; 10e-15 |]
    ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]

(* ------------------------------------------------------------------ *)
(* Nldm tables                                                         *)

let test_table_validation () =
  Alcotest.check_raises "rows"
    (Invalid_argument "Nldm.table: row count must match slews") (fun () ->
      ignore
        (Nldm.table ~slews:[| 1.0; 2.0 |] ~loads:[| 1.0; 2.0 |]
           ~values:[| [| 1.0; 2.0 |] |]));
  Alcotest.check_raises "axis"
    (Invalid_argument "Nldm.table: slews must be strictly increasing")
    (fun () ->
      ignore
        (Nldm.table ~slews:[| 2.0; 1.0 |] ~loads:[| 1.0; 2.0 |]
           ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]))

let test_lookup_corners () =
  let t = mk_table () in
  approx "corner" 1.0 (Nldm.lookup t ~slew:10e-12 ~load:1e-15);
  approx "corner2" 4.0 (Nldm.lookup t ~slew:100e-12 ~load:10e-15)

let test_lookup_interpolates () =
  let t = mk_table () in
  approx "center" 2.5 (Nldm.lookup t ~slew:55e-12 ~load:5.5e-15)

let test_lookup_clamps () =
  let t = mk_table () in
  approx "below" 1.0 (Nldm.lookup t ~slew:1e-12 ~load:0.1e-15);
  approx "above" 4.0 (Nldm.lookup t ~slew:1.0 ~load:1.0)

(* ------------------------------------------------------------------ *)
(* Characterization (simulation-backed)                                *)

let small_grid cell =
  let cin = Device.Cell.input_cap proc cell in
  {
    Characterize.slews = [| 50e-12; 150e-12; 300e-12 |];
    loads = [| cin; 4.0 *. cin; 12.0 *. cin |];
  }

let charx1 =
  lazy (Characterize.run ~grid:(small_grid Device.Cell.inv_x1) ~dt:1e-12 proc
          Device.Cell.inv_x1)

let test_characterize_positive () =
  let ct = Lazy.force charx1 in
  Array.iter
    (Array.iter (fun d -> check_true "positive delay" (d > 0.0)))
    ct.Nldm.out_fall.Nldm.delay.Nldm.values;
  Array.iter
    (Array.iter (fun s -> check_true "positive slew" (s > 0.0)))
    ct.Nldm.out_fall.Nldm.trans.Nldm.values

let test_characterize_monotone_in_load () =
  (* More load -> more delay and slower output, for every input slew. *)
  let ct = Lazy.force charx1 in
  let check (t : Nldm.table) what =
    Array.iter
      (fun row ->
        for j = 0 to Array.length row - 2 do
          check_true (what ^ " monotone in load") (row.(j) <= row.(j + 1))
        done)
      t.Nldm.values
  in
  check ct.Nldm.out_fall.Nldm.delay "fall delay";
  check ct.Nldm.out_rise.Nldm.delay "rise delay";
  check ct.Nldm.out_fall.Nldm.trans "fall trans";
  check ct.Nldm.out_rise.Nldm.trans "rise trans"

let test_characterize_rise_slower () =
  (* Our PMOS is weaker per drawn width ratio, so rising outputs should
     not be dramatically faster than falling ones; sanity band only. *)
  let ct = Lazy.force charx1 in
  let d_fall = ct.Nldm.out_fall.Nldm.delay.Nldm.values.(1).(1) in
  let d_rise = ct.Nldm.out_rise.Nldm.delay.Nldm.values.(1).(1) in
  check_true "same order of magnitude"
    (d_rise /. d_fall > 0.3 && d_rise /. d_fall < 3.0)

let test_gate_delay_arc_choice () =
  let ct = Lazy.force charx1 in
  let d_r, s_r =
    Nldm.gate_delay ct ~input_dir:Waveform.Wave.Rising ~slew:150e-12
      ~load:(4.0 *. ct.Nldm.input_cap)
  in
  check_true "rising input -> fall arc" (d_r > 0.0 && s_r > 0.0);
  let arc = Nldm.arc_for_input ct Waveform.Wave.Rising in
  approx "matches out_fall"
    (Nldm.lookup ct.Nldm.out_fall.Nldm.delay ~slew:150e-12
       ~load:(4.0 *. ct.Nldm.input_cap))
    (Nldm.lookup arc.Nldm.delay ~slew:150e-12 ~load:(4.0 *. ct.Nldm.input_cap));
  ignore d_r

let test_measure_gate_waveforms () =
  let input =
    Spice.Source.ramp ~t0:100e-12 ~v0:0.0 ~v1:proc.Device.Process.vdd
      ~trans:187.5e-12
  in
  let wa, wy =
    Characterize.measure_gate proc Device.Cell.inv_x4 ~extra_load:10e-15
      ~input ~tstop:2e-9
  in
  check_true "input rising" (Waveform.Wave.direction wa = Waveform.Wave.Rising);
  check_true "output falling" (Waveform.Wave.direction wy = Waveform.Wave.Falling)

(* ------------------------------------------------------------------ *)
(* Libfile round trip                                                  *)

let test_libfile_roundtrip () =
  let ct = Lazy.force charx1 in
  let text = Libfile.to_string [ ct ] in
  match Libfile.of_string text with
  | [ back ] ->
      Alcotest.(check string) "name" ct.Nldm.cell back.Nldm.cell;
      approx_rel ~rel:1e-6 "cap" ct.Nldm.input_cap back.Nldm.input_cap;
      let t0 = ct.Nldm.out_fall.Nldm.delay and t1 = back.Nldm.out_fall.Nldm.delay in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v -> approx_rel ~rel:1e-6 "value" v t1.Nldm.values.(i).(j))
            row)
        t0.Nldm.values;
      Array.iteri
        (fun i s -> approx_rel ~rel:1e-6 "slew axis" s t1.Nldm.slews.(i))
        t0.Nldm.slews
  | l -> Alcotest.failf "expected 1 cell, got %d" (List.length l)

let test_libfile_multi_cell_roundtrip () =
  let ct = Lazy.force charx1 in
  let ct2 = { ct with Nldm.cell = "INVx2" } in
  let back = Libfile.of_string (Libfile.to_string [ ct; ct2 ]) in
  Alcotest.(check int) "two cells" 2 (List.length back);
  check_true "find works" ((Libfile.find back "INVx2").Nldm.cell = "INVx2");
  Alcotest.check_raises "find missing" Not_found (fun () ->
      ignore (Libfile.find back "NAND2"))

let test_libfile_save_load () =
  let ct = Lazy.force charx1 in
  let path = Filename.temp_file "noisy_sta" ".lib" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Libfile.save path [ ct ];
      match Libfile.load path with
      | [ back ] -> Alcotest.(check string) "name" ct.Nldm.cell back.Nldm.cell
      | _ -> Alcotest.fail "expected one cell")

let test_libfile_parse_errors () =
  check_true "garbage rejected"
    (match Libfile.of_string "library(x) { cell(y) }" with
    | exception Failure _ -> true
    | _ -> false);
  check_true "empty ok" (Libfile.of_string "library(empty) {\n}\n" = [])

let qcheck_tests =
  [
    qcase ~count:20 "nldm: exact at grid nodes"
      QCheck2.Gen.(pair (int_range 0 1) (int_range 0 1))
      (fun (i, j) ->
        let t = mk_table () in
        let v = Nldm.lookup t ~slew:t.Nldm.slews.(i) ~load:t.Nldm.loads.(j) in
        abs_float (v -. t.Nldm.values.(i).(j)) < 1e-12);
    qcase ~count:25 "nldm: lookup stays within table value bounds"
      QCheck2.Gen.(pair (float_range 0.0 1e-9) (float_range 0.0 1e-13))
      (fun (slew, load) ->
        let t = mk_table () in
        let v = Nldm.lookup t ~slew ~load in
        v >= 1.0 -. 1e-9 && v <= 4.0 +. 1e-9);
  ]

let suite =
  ( "liberty",
    [
      case "nldm: validation" test_table_validation;
      case "nldm: corner lookup" test_lookup_corners;
      case "nldm: bilinear center" test_lookup_interpolates;
      case "nldm: clamping" test_lookup_clamps;
      slow_case "characterize: positive entries" test_characterize_positive;
      slow_case "characterize: monotone in load" test_characterize_monotone_in_load;
      slow_case "characterize: rise/fall balance" test_characterize_rise_slower;
      slow_case "characterize: arc choice" test_gate_delay_arc_choice;
      case "characterize: measure_gate directions" test_measure_gate_waveforms;
      slow_case "libfile: roundtrip" test_libfile_roundtrip;
      slow_case "libfile: multi-cell" test_libfile_multi_cell_roundtrip;
      slow_case "libfile: save/load" test_libfile_save_load;
      case "libfile: parse errors" test_libfile_parse_errors;
    ]
    @ qcheck_tests )
