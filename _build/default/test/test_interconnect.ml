open Helpers
open Interconnect

let spec = Rcline.{ rtotal = 100.0; ctotal = 100e-15; nsegs = 8 }

(* ------------------------------------------------------------------ *)
(* Rcline                                                              *)

let test_spec_of_per_section () =
  let s = Rcline.spec_of_per_section ~r_per_seg:8.5 ~c_per_seg:4.8e-15 ~nsegs:3 in
  approx ~eps:1e-12 "rtotal" 25.5 s.Rcline.rtotal;
  approx ~eps:1e-27 "ctotal" 14.4e-15 s.Rcline.ctotal

let test_section_nodes () =
  let nodes = Rcline.section_nodes ~prefix:"w" spec in
  Alcotest.(check int) "count" 9 (List.length nodes);
  Alcotest.(check string) "first" "w.0" (List.hd nodes);
  Alcotest.(check string) "last" "w.8" (List.nth nodes 8)

let test_elmore_closed_form () =
  approx ~eps:1e-15 "RC/2" (100.0 *. 100e-15 /. 2.0) (Rcline.elmore spec)

let test_elmore_discrete_converges () =
  (* With half-capacitance end boundaries the ladder's Elmore delay is
     exactly RC/2 for every segment count -- the pi discretization is
     moment-exact to first order. *)
  let continuous = Rcline.elmore spec in
  List.iter
    (fun nsegs ->
      approx_rel ~rel:1e-9 "exact first moment" continuous
        (Rcline.elmore_discrete { spec with Rcline.nsegs }))
    [ 1; 2; 3; 8; 64 ]

let test_validation () =
  Alcotest.check_raises "bad spec"
    (Invalid_argument "Rcline: nsegs must be >= 1") (fun () ->
      ignore (Rcline.elmore { spec with Rcline.nsegs = 0 }))

let test_build_conserves_totals () =
  let open Spice in
  let ckt = Circuit.create () in
  let near = Circuit.node ckt "near" in
  let _far = Rcline.build ckt ~prefix:"w" ~near spec in
  let rsum =
    List.fold_left (fun a (_, _, r) -> a +. r) 0.0 (Circuit.resistors ckt)
  in
  let csum =
    List.fold_left (fun a (_, _, c) -> a +. c) 0.0 (Circuit.capacitors ckt)
  in
  approx_rel ~rel:1e-9 "R conserved" spec.Rcline.rtotal rsum;
  approx_rel ~rel:1e-9 "C conserved" spec.Rcline.ctotal csum

let test_line_step_response () =
  (* Drive the ladder with an ideal step: the far-end 50% point of a
     distributed RC line sits near 0.69 * Elmore (within discretization
     error), and Elmore itself is an upper-bound-flavored estimate. *)
  let open Spice in
  let ckt = Circuit.create () in
  let near = Circuit.node ckt "near" in
  Circuit.vsource ckt near (Source.pwl [ (0.0, 0.0); (1e-12, 1.0) ]);
  let far = Rcline.build ckt ~prefix:"w" ~near spec in
  let config = { Transient.default_config with dt = 0.1e-12; tstop = 60e-12 } in
  let res = Transient.run ~config ckt in
  let w = Transient.probe res (Circuit.node_name ckt far) in
  match Waveform.Wave.first_crossing w 0.5 with
  | Some t50 ->
      let elmore = Rcline.elmore spec in
      (* 0.69 * 5 ps = 3.5 ps, allow generous band for 8 segments. *)
      check_true "t50 in elmore band"
        (t50 > 0.4 *. elmore && t50 < 1.1 *. elmore)
  | None -> Alcotest.fail "far end never crossed 50%"

(* ------------------------------------------------------------------ *)
(* Coupled                                                             *)

let test_coupled_validation () =
  Alcotest.check_raises "nlines"
    (Invalid_argument "Coupled.make: need at least 2 lines") (fun () ->
      ignore (Coupled.make ~line:spec ~nlines:1 ~cm_total:1e-15))

let test_coupled_distribution () =
  let c = Coupled.make ~line:spec ~nlines:2 ~cm_total:80e-15 in
  approx ~eps:1e-27 "per boundary" 10e-15 (Coupled.victim_coupling_per_boundary c)

let test_coupled_build () =
  let open Spice in
  let ckt = Circuit.create () in
  let n0 = Circuit.node ckt "drv0" and n1 = Circuit.node ckt "drv1" in
  let c = Coupled.make ~line:spec ~nlines:2 ~cm_total:80e-15 in
  let fars = Coupled.build ckt ~prefix:"bus" ~nears:[ n0; n1 ] c in
  Alcotest.(check int) "two far ends" 2 (List.length fars);
  (* Total capacitance: 2 lines' ground C plus the coupling C. *)
  let csum =
    List.fold_left (fun a (_, _, cv) -> a +. cv) 0.0 (Circuit.capacitors ckt)
  in
  approx_rel ~rel:1e-9 "cap budget"
    ((2.0 *. spec.Rcline.ctotal) +. 80e-15)
    csum

let test_coupled_noise_appears () =
  (* Step one line, hold the other via a resistor: the victim's far end
     must show a transient bump that decays back. *)
  let open Spice in
  let ckt = Circuit.create () in
  let agg = Circuit.node ckt "agg" and vic = Circuit.node ckt "vic" in
  Circuit.vsource ckt agg (Source.pwl [ (5e-12, 0.0); (25e-12, 1.0) ]);
  Circuit.resistor ckt vic (Circuit.gnd ckt) 200.0;
  let c = Coupled.make ~line:spec ~nlines:2 ~cm_total:80e-15 in
  let fars = Coupled.build ckt ~prefix:"bus" ~nears:[ agg; vic ] c in
  let far_vic = List.nth fars 1 in
  let config = { Transient.default_config with dt = 0.2e-12; tstop = 300e-12 } in
  let res = Transient.run ~config ckt in
  let w = Transient.probe res (Circuit.node_name ckt far_vic) in
  let peak = Array.fold_left Float.max neg_infinity (Waveform.Wave.values w) in
  check_true "bump seen" (peak > 0.05);
  check_true "decays" (abs_float (Transient.final_voltage res (Circuit.node_name ckt far_vic)) < 0.02)

(* ------------------------------------------------------------------ *)
(* Rctree                                                              *)

let balanced_tree () =
  (* root -- r1 -- a(c=1p) ; root -- r2 -- b(c=2p), r in ohms *)
  Rctree.node "root"
    [
      Rctree.node ~r:100.0 ~c:1e-12 "a" [];
      Rctree.node ~r:200.0 ~c:2e-12 "b" [];
    ]

let test_tree_total_cap () =
  approx ~eps:1e-18 "total" 3e-12 (Rctree.total_cap (balanced_tree ()))

let test_tree_elmore_hand () =
  (* Elmore(a) = 100 * 1p = 100ps ; Elmore(b) = 200 * 2p = 400ps *)
  let t = balanced_tree () in
  approx ~eps:1e-15 "a" 100e-12 (Rctree.elmore_to t "a");
  approx ~eps:1e-15 "b" 400e-12 (Rctree.elmore_to t "b")

let test_tree_chain_elmore () =
  (* r1=100 to n1(c=1p), then r2=100 to n2(c=1p):
     Elmore(n2) = 100*(1p+1p) + 100*1p = 300 ps. *)
  let t =
    Rctree.node "root"
      [ Rctree.node ~r:100.0 ~c:1e-12 "n1" [ Rctree.node ~r:100.0 ~c:1e-12 "n2" [] ] ]
  in
  approx ~eps:1e-15 "n2" 300e-12 (Rctree.elmore_to t "n2");
  approx ~eps:1e-15 "n1" 200e-12 (Rctree.elmore_to t "n1")

let test_tree_of_line_matches_discrete () =
  let t = Rctree.of_line ~name:"w" spec in
  let far = Printf.sprintf "w.%d" spec.Rcline.nsegs in
  approx_rel ~rel:1e-9 "line elmore"
    (Rcline.elmore_discrete spec)
    (Rctree.elmore_to t far)

let test_moments_first_is_elmore () =
  let t = balanced_tree () in
  let ms = Rctree.moments ~order:2 t in
  let m_a = List.assoc "a" ms in
  approx_rel ~rel:1e-9 "m1 = -elmore" (-100e-12) m_a.(0);
  check_true "m2 positive" (m_a.(1) > 0.0)

let test_d2m_bounded () =
  let t = Rctree.of_line ~name:"w" spec in
  let far = Printf.sprintf "w.%d" spec.Rcline.nsegs in
  let d2m = Rctree.d2m_delay t far in
  let elm = log 2.0 *. Rctree.elmore_to t far in
  (* D2M is a two-moment refinement: same scale as ln2*Elmore, not
     wildly off in either direction on a uniform line. *)
  check_true "d2m in band" (d2m > 0.3 *. elm && d2m < 1.7 *. elm)

let test_unknown_node () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Rctree.elmore_to (balanced_tree ()) "zzz"))

let test_tree_validation () =
  Alcotest.check_raises "neg r"
    (Invalid_argument "Rctree.node: negative resistance") (fun () ->
      ignore (Rctree.node ~r:(-1.0) "x" []))

let qcheck_tests =
  [
    qcase ~count:40 "elmore: discrete below continuous and converging"
      QCheck2.Gen.(int_range 1 40)
      (fun nsegs ->
        let s = { spec with Rcline.nsegs } in
        Rcline.elmore_discrete s <= Rcline.elmore s +. 1e-18);
    qcase ~count:30 "rctree: elmore grows along any chain"
      QCheck2.Gen.(list_size (int_range 1 8) (float_range 1.0 100.0))
      (fun rs ->
        let rec build i = function
          | [] -> []
          | r :: rest ->
              [ Rctree.node ~r ~c:1e-13 (Printf.sprintf "n%d" i) (build (i + 1) rest) ]
        in
        let t = Rctree.node "root" (build 0 rs) in
        let ds = List.map snd (Rctree.elmore t) in
        let rec nondecreasing = function
          | a :: b :: rest -> a <= b +. 1e-18 && nondecreasing (b :: rest)
          | _ -> true
        in
        nondecreasing ds);
  ]

let suite =
  ( "interconnect",
    [
      case "rcline: per-section spec" test_spec_of_per_section;
      case "rcline: section nodes" test_section_nodes;
      case "rcline: closed-form elmore" test_elmore_closed_form;
      case "rcline: discrete converges" test_elmore_discrete_converges;
      case "rcline: validation" test_validation;
      case "rcline: build conserves totals" test_build_conserves_totals;
      case "rcline: step response near elmore" test_line_step_response;
      case "coupled: validation" test_coupled_validation;
      case "coupled: Cm distribution" test_coupled_distribution;
      case "coupled: build budget" test_coupled_build;
      case "coupled: noise bump" test_coupled_noise_appears;
      case "rctree: total cap" test_tree_total_cap;
      case "rctree: hand elmore" test_tree_elmore_hand;
      case "rctree: chain elmore" test_tree_chain_elmore;
      case "rctree: of_line" test_tree_of_line_matches_discrete;
      case "rctree: m1 = -elmore" test_moments_first_is_elmore;
      case "rctree: d2m bounded" test_d2m_bounded;
      case "rctree: unknown node" test_unknown_node;
      case "rctree: validation" test_tree_validation;
    ]
    @ qcheck_tests )
