open Helpers
open Eqwave

let proc = Device.Process.c13
let th = Device.Process.thresholds proc
let vdd = proc.Device.Process.vdd

(* A synthetic "gate": the noiseless output is the inverted input ramp
   delayed by [delay] with its own slew. Close enough for the pure
   waveform-fitting layer, and fully deterministic. *)
let synth_ctx ?(samples = 35) ?(noise = fun _ v -> v) ?(delay = 40e-12)
    ?(in_slew = 120e-12) ?(out_slew = 90e-12) ?(arrival = 1e-9) () =
  let open Waveform in
  let noiseless_in =
    Ramp.to_waveform ~n:1001 ~pad:400e-12
      (Ramp.of_arrival_slew ~arrival ~slew:in_slew ~dir:Wave.Rising th)
  in
  let noiseless_out =
    Ramp.to_waveform ~n:1001 ~pad:400e-12
      (Ramp.of_arrival_slew ~arrival:(arrival +. delay) ~slew:out_slew
         ~dir:Wave.Falling th)
  in
  let ts = Wave.times noiseless_in in
  let vs = Array.map (Wave.value_at noiseless_in) ts in
  let noisy_in = Wave.create ts (Array.mapi (fun i v -> noise ts.(i) v) vs) in
  Technique.make_ctx ~samples ~th ~noisy_in ~noiseless_in ~noiseless_out ()

(* ------------------------------------------------------------------ *)
(* Technique plumbing                                                  *)

let test_ctx_validation () =
  match synth_ctx ~samples:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected samples check"

let test_direction () =
  check_true "rising" (Technique.direction (synth_ctx ()) = Waveform.Wave.Rising)

let test_critical_regions () =
  let ctx = synth_ctx () in
  let a, b = Technique.noisy_critical_region ctx in
  let a', b' = Technique.noiseless_critical_region ctx in
  approx ~eps:2e-12 "same for clean input" a a';
  approx ~eps:2e-12 "same end" b b';
  (* 10-90 band of a 120 ps slew ramp. *)
  approx ~eps:3e-12 "width" 120e-12 (b -. a)

let test_sample_times () =
  let ts = Technique.sample_times (0.0, 1.0) 5 in
  Alcotest.(check int) "count" 5 (Array.length ts);
  approx "first" 0.0 ts.(0);
  approx "last" 1.0 ts.(4);
  approx "uniform" 0.25 ts.(1)

let test_latest_mid_anchor () =
  (* Add a dip that re-crosses 0.5 Vdd after the main edge. *)
  let noise t v =
    if t > 1.15e-9 && t < 1.3e-9 then Float.max 0.0 (v -. 0.9) else v
  in
  let ctx = synth_ctx ~noise () in
  let anchor = Technique.latest_mid_crossing ctx in
  check_true "anchor moved past the dip" (anchor > 1.2e-9)

let test_registry () =
  Alcotest.(check int) "six techniques" 6 (List.length Registry.all);
  Alcotest.(check string) "last is SGDP" "SGDP"
    (List.nth Registry.all 5).Technique.name;
  check_true "find case-insensitive"
    ((Registry.find "sgdp").Technique.name = "SGDP");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Registry.find "nope"))

(* ------------------------------------------------------------------ *)
(* Exactness: with no noise every technique must reproduce the ramp.   *)

let exactness tech () =
  let ctx = synth_ctx () in
  let ramp = tech.Technique.run ctx in
  approx ~eps:4e-12
    (tech.Technique.name ^ " arrival")
    1e-9
    (Waveform.Ramp.arrival ramp th);
  approx_rel ~rel:0.12
    (tech.Technique.name ^ " slew")
    120e-12
    (Waveform.Ramp.slew ramp th)

let exactness_cases =
  List.map
    (fun tech -> case ("exact on noiseless: " ^ tech.Technique.name) (exactness tech))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Point-based behaviours                                              *)

let dip_noise t v =
  (* A 200 mV dip in the middle of the transition. *)
  if t > 0.98e-9 && t < 1.06e-9 then Float.max 0.0 (v -. 0.2) else v

let test_p1_ignores_shape () =
  let clean = synth_ctx () in
  let noisy = synth_ctx ~noise:dip_noise () in
  let r_clean = Point_based.p1.Technique.run clean in
  let r_noisy = Point_based.p1.Technique.run noisy in
  (* P1's slew never changes; only the anchor may move. *)
  approx ~eps:1e-13 "same slew"
    (Waveform.Ramp.slew r_clean th)
    (Waveform.Ramp.slew r_noisy th)

let test_p2_stretches () =
  let stretch_noise t v =
    (* Pull the early part down so the first 0.1 Vdd crossing is early. *)
    if t < 0.96e-9 then v +. 0.1 else v
  in
  let clean = synth_ctx () in
  let noisy = synth_ctx ~noise:stretch_noise () in
  let s_clean = Waveform.Ramp.slew (Point_based.p2.Technique.run clean) th in
  let s_noisy = Waveform.Ramp.slew (Point_based.p2.Technique.run noisy) th in
  check_true "P2 slew stretched" (s_noisy > s_clean +. 10e-12)

let test_anchored_at_latest_mid () =
  let noise t v =
    if t > 1.15e-9 && t < 1.3e-9 then Float.max 0.0 (v -. 0.9) else v
  in
  let ctx = synth_ctx ~noise () in
  let anchor = Technique.latest_mid_crossing ctx in
  List.iter
    (fun tech ->
      let r = tech.Technique.run ctx in
      approx ~eps:2e-12
        (tech.Technique.name ^ " anchored")
        anchor
        (Waveform.Ramp.arrival r th))
    [ Point_based.p1; Point_based.p2; Energy.e4 ]

(* ------------------------------------------------------------------ *)
(* E4 area property                                                    *)

let test_e4_area_matching () =
  (* For the clean ramp, E4's slope must reproduce the ramp's slope
     (the ramp trivially area-matches itself). *)
  let ctx = synth_ctx () in
  let r = Energy.e4.Technique.run ctx in
  approx_rel ~rel:0.05 "slope" (vdd /. 150e-12)
    (r : Waveform.Ramp.t).Waveform.Ramp.slope

let test_e4_slower_for_shallow_tail () =
  (* Flatten the top half of the transition: the enclosed area grows,
     so E4's slope must drop. *)
  let slow_tail v = if v > 0.6 then 0.6 +. ((v -. 0.6) *. 0.4) else v in
  let clean = synth_ctx () in
  let noisy = synth_ctx ~noise:(fun _ v -> slow_tail v) () in
  let s_clean = (Energy.e4.Technique.run clean : Waveform.Ramp.t).Waveform.Ramp.slope in
  let s_noisy = (Energy.e4.Technique.run noisy : Waveform.Ramp.t).Waveform.Ramp.slope in
  check_true "slope reduced" (s_noisy < s_clean)

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)

let test_rho_of_identity () =
  (* If the "gate" output equals the input (same ramp, same timing),
     rho = 1 across the critical region interior. *)
  let open Waveform in
  let ramp = Ramp.of_arrival_slew ~arrival:1e-9 ~slew:120e-12 ~dir:Wave.Rising th in
  let w = Ramp.to_waveform ~n:2001 ~pad:300e-12 ramp in
  let ctx = Technique.make_ctx ~th ~noisy_in:w ~noiseless_in:w ~noiseless_out:w () in
  let s = Sensitivity.compute ctx in
  approx_rel ~rel:0.05 "rho=1 mid" 1.0 (Sensitivity.rho_at_voltage s (vdd /. 2.0))

let test_rho_peak_positive () =
  let ctx = synth_ctx () in
  let s = Sensitivity.compute ctx in
  check_true "peak magnitude sane" (Sensitivity.peak s > 0.2);
  (* Inverting gate: rho is negative where it matters. *)
  check_true "sign" (Sensitivity.rho_at_voltage s (vdd /. 2.0) <= 0.0)

let test_rho_zero_outside_band () =
  let ctx = synth_ctx () in
  let s = Sensitivity.compute ctx in
  approx "below band" 0.0 (Sensitivity.rho_at_voltage s 0.01);
  approx "above band" 0.0 (Sensitivity.rho_at_voltage s (vdd -. 0.01));
  approx "before region" 0.0 (Sensitivity.rho_at_time s 0.0);
  approx "after region" 0.0 (Sensitivity.rho_at_time s 1.0)

let test_overlap_shift_zero_when_overlapping () =
  approx "no shift" 0.0 (Sensitivity.overlap_shift (synth_ctx ()))

let test_overlap_shift_for_separated () =
  (* Push the output 500 ps later than the input: regions no longer
     intersect, so the shift equals the mid-to-mid gap. *)
  let ctx = synth_ctx ~delay:500e-12 () in
  approx ~eps:5e-12 "gap" 500e-12 (Sensitivity.overlap_shift ctx)

(* ------------------------------------------------------------------ *)
(* WLS5 and SGDP                                                       *)

let test_wls5_filters_outside_noise () =
  (* Noise strictly before the noiseless critical region must leave
     WLS5's fit untouched (its samples live inside the region). *)
  let pre_noise t v = if t < 0.9e-9 then v +. 0.11 else v in
  let clean = synth_ctx () in
  let noisy = synth_ctx ~noise:pre_noise () in
  let r0 = Wls.wls5.Technique.run clean in
  let r1 = Wls.wls5.Technique.run noisy in
  approx ~eps:2e-12 "arrival unchanged"
    (Waveform.Ramp.arrival r0 th)
    (Waveform.Ramp.arrival r1 th)

let test_sgdp_sees_outside_noise () =
  (* A transition delayed beyond the noiseless window: SGDP must follow
     the actual (delayed) edge; that is exactly the WLS5 blind spot. *)
  let shift = 180e-12 in
  let open Waveform in
  let clean = synth_ctx () in
  let noisy_in =
    Wave.shift clean.Technique.noisy_in shift
    |> fun w -> Wave.resample w (Wave.times clean.Technique.noisy_in)
  in
  let ctx = { clean with Technique.noisy_in } in
  let r = Sgdp.sgdp.Technique.run ctx in
  approx ~eps:8e-12 "follows delayed edge" (1e-9 +. shift)
    (Ramp.arrival r th)

let test_sgdp_second_order_ablation () =
  let ctx = synth_ctx ~noise:dip_noise () in
  let full = Sgdp.sgdp.Technique.run ctx in
  let first_order =
    (Sgdp.make { Sgdp.default_options with Sgdp.second_order = false })
      .Technique.run ctx
  in
  (* Both must produce sane rising ramps near the transition. *)
  List.iter
    (fun r ->
      check_true "rising" (Waveform.Ramp.direction r = Waveform.Wave.Rising);
      check_true "anchored near edge"
        (abs_float (Waveform.Ramp.arrival r th -. 1e-9) < 60e-12))
    [ full; first_order ]

let test_sgdp_rho_eff_remap () =
  let ctx = synth_ctx ~noise:dip_noise () in
  let sens = Sensitivity.compute ctx in
  let ts = Technique.sample_times (Technique.noisy_critical_region ctx) 35 in
  let rho, _ = Sgdp.rho_eff sens ctx ts in
  (* The remapped sensitivity must be non-zero somewhere (transition)
     and zero at rail samples. *)
  check_true "nonzero inside" (Array.exists (fun r -> abs_float r > 0.1) rho);
  let v_first = Waveform.Wave.value_at ctx.Technique.noisy_in ts.(0) in
  check_true "first sample near low rail" (v_first < 0.2 *. vdd)

let test_polarity_guard () =
  let ctx = synth_ctx () in
  let falling =
    Waveform.Ramp.of_arrival_slew ~arrival:1e-9 ~slew:100e-12
      ~dir:Waveform.Wave.Falling th
  in
  match Technique.check_polarity ctx falling with
  | exception Technique.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected polarity rejection"

let test_unsupported_on_flat_waveform () =
  let open Waveform in
  let flat = Wave.create [| 0.0; 1e-9 |] [| 0.0; 0.0 |] in
  let ramp =
    Ramp.to_waveform ~n:201
      (Ramp.of_arrival_slew ~arrival:0.5e-9 ~slew:100e-12 ~dir:Wave.Rising th)
  in
  let ctx =
    Technique.make_ctx ~th ~noisy_in:flat ~noiseless_in:ramp ~noiseless_out:ramp ()
  in
  List.iter
    (fun tech ->
      match tech.Technique.run ctx with
      | exception Technique.Unsupported _ -> ()
      | _ -> Alcotest.failf "%s should reject a flat noisy waveform"
               tech.Technique.name)
    Registry.all

(* ------------------------------------------------------------------ *)

let qcheck_tests =
  [
    qcase ~count:20 "LSF3: fitted line is the SSE optimum"
      QCheck2.Gen.(pair (float_range (-0.1) 0.1) (float_range (-0.05) 0.05))
      (fun (da_frac, db) ->
        (* Perturbing the fitted line must not reduce the sum of squared
           errors over the same samples. *)
        QCheck2.assume (abs_float da_frac > 1e-4 || abs_float db > 1e-4);
        let ctx = synth_ctx ~noise:dip_noise () in
        let r = Least_squares.lsf3.Technique.run ctx in
        let region = Technique.noisy_critical_region ctx in
        let ts = Technique.sample_times region ctx.Technique.samples in
        let sse slope intercept =
          Array.fold_left
            (fun acc t ->
              let e =
                Waveform.Wave.value_at ctx.Technique.noisy_in t
                -. ((slope *. t) +. intercept)
              in
              acc +. (e *. e))
            0.0 ts
        in
        let a = (r : Waveform.Ramp.t).Waveform.Ramp.slope in
        let b = r.Waveform.Ramp.intercept in
        sse a b <= sse (a *. (1.0 +. da_frac)) (b +. db) +. 1e-12);
    qcase ~count:15 "E4: ramp through anchor for arbitrary dips"
      QCheck2.Gen.(float_range 0.05 0.3)
      (fun depth ->
        let noise t v =
          if t > 0.99e-9 && t < 1.07e-9 then Float.max 0.0 (v -. depth) else v
        in
        let ctx = synth_ctx ~noise () in
        let r = Energy.e4.Technique.run ctx in
        let anchor = Technique.latest_mid_crossing ctx in
        abs_float (Waveform.Ramp.arrival r th -. anchor) < 1e-12);
    qcase ~count:15 "all techniques: time-shift equivariance"
      QCheck2.Gen.(float_range (-0.3e-9) 0.3e-9)
      (fun dt ->
        (* Shifting every waveform by dt must shift Gamma_eff by dt. *)
        let ctx = synth_ctx ~noise:dip_noise () in
        let shift w = Waveform.Wave.shift w dt in
        let ctx' =
          {
            ctx with
            Technique.noisy_in = shift ctx.Technique.noisy_in;
            noiseless_in = shift ctx.Technique.noiseless_in;
            noiseless_out = shift ctx.Technique.noiseless_out;
          }
        in
        List.for_all
          (fun (tech : Technique.t) ->
            match (tech.Technique.run ctx, tech.Technique.run ctx') with
            | r0, r1 ->
                abs_float
                  (Waveform.Ramp.arrival r1 th -. Waveform.Ramp.arrival r0 th
                  -. dt)
                < 2e-12
            | exception Technique.Unsupported _ -> true)
          Registry.all);
    qcase ~count:20 "all techniques: noiseless exactness across slews"
      QCheck2.Gen.(float_range 60e-12 300e-12)
      (fun in_slew ->
        let ctx = synth_ctx ~in_slew () in
        List.for_all
          (fun tech ->
            match tech.Technique.run ctx with
            | r -> abs_float (Waveform.Ramp.arrival r th -. 1e-9) < 6e-12
            | exception Technique.Unsupported _ -> false)
          Registry.all);
    qcase ~count:20 "SGDP: small mid-transition dips keep the anchor near"
      QCheck2.Gen.(float_range 0.02 0.25)
      (fun depth ->
        let noise t v =
          if t > 0.98e-9 && t < 1.06e-9 then Float.max 0.0 (v -. depth) else v
        in
        let ctx = synth_ctx ~noise () in
        match Sgdp.sgdp.Technique.run ctx with
        | r -> abs_float (Waveform.Ramp.arrival r th -. 1e-9) < 80e-12
        | exception Technique.Unsupported _ -> false);
  ]

let suite =
  ( "eqwave",
    [
      case "ctx: validation" test_ctx_validation;
      case "ctx: direction" test_direction;
      case "ctx: critical regions" test_critical_regions;
      case "ctx: sample times" test_sample_times;
      case "ctx: latest mid anchor" test_latest_mid_anchor;
      case "registry: contents" test_registry;
      case "P1: shape-blind slew" test_p1_ignores_shape;
      case "P2: stretches on early noise" test_p2_stretches;
      case "P1/P2/E4: anchored at latest mid" test_anchored_at_latest_mid;
      case "E4: self area match" test_e4_area_matching;
      case "E4: shallow tail slows slope" test_e4_slower_for_shallow_tail;
      case "rho: identity gate" test_rho_of_identity;
      case "rho: peak and sign" test_rho_peak_positive;
      case "rho: zero outside band" test_rho_zero_outside_band;
      case "shift: zero when overlapping" test_overlap_shift_zero_when_overlapping;
      case "shift: gap when separated" test_overlap_shift_for_separated;
      case "WLS5: noiseless-region filter" test_wls5_filters_outside_noise;
      case "SGDP: follows delayed edges" test_sgdp_sees_outside_noise;
      case "SGDP: second-order ablation" test_sgdp_second_order_ablation;
      case "SGDP: rho_eff remap" test_sgdp_rho_eff_remap;
      case "polarity guard" test_polarity_guard;
      case "flat waveform rejected" test_unsupported_on_flat_waveform;
    ]
    @ exactness_cases @ qcheck_tests )
