(* Tests for the extension features: analytic edges/glitches, the
   NAND/NOR/BUF cells and unateness plumbing, process corners, slack
   constraints, and the worst-case alignment search. *)

open Helpers

let proc = Device.Process.c13
let th = Device.Process.thresholds proc
let vdd = proc.Device.Process.vdd

(* ------------------------------------------------------------------ *)
(* Edges                                                               *)

let test_linear_edge () =
  let f = Waveform.Edges.linear_edge ~t0:1.0 ~trans:2.0 ~v0:0.0 ~v1:1.0 in
  approx "before" 0.0 (f 0.5);
  approx "mid" 0.5 (f 2.0);
  approx "after" 1.0 (f 4.0)

let test_exponential_edge () =
  let f = Waveform.Edges.exponential_edge ~t0:0.0 ~tau:1.0 ~v0:0.0 ~v1:1.0 in
  approx ~eps:1e-9 "one tau" (1.0 -. exp (-1.0)) (f 1.0);
  approx "before" 0.0 (f (-1.0))

let test_raised_cosine_edge () =
  let f = Waveform.Edges.raised_cosine_edge ~t0:0.0 ~trans:1.0 ~v0:0.0 ~v1:2.0 in
  approx ~eps:1e-9 "midpoint" 1.0 (f 0.5);
  approx "ends" 2.0 (f 1.0);
  (* C1 at the ends: tiny slope near t0. *)
  check_true "flat start" (f 0.01 < 0.01)

let test_triangular_glitch () =
  let g = Waveform.Edges.triangular_glitch ~t0:1.0 ~rise:1.0 ~fall:2.0 ~peak:0.6 in
  approx "peak" 0.6 (g 2.0);
  approx "outside" 0.0 (g 0.9);
  approx "outside2" 0.0 (g 4.1);
  approx ~eps:1e-9 "mid fall" 0.3 (g 3.0)

let test_decay_glitch () =
  let g = Waveform.Edges.decay_glitch ~t0:0.0 ~tau:2.0 ~peak:1.0 in
  approx ~eps:1e-9 "decay" (exp (-1.0)) (g 2.0)

let test_superpose_clamp () =
  let f =
    Waveform.Edges.clamp ~vdd:1.0
      (Waveform.Edges.superpose [ (fun _ -> 0.8); (fun _ -> 0.8) ])
  in
  approx "clamped" 1.0 (f 0.0)

let test_noisy_edge_builder () =
  let glitch =
    Waveform.Edges.triangular_glitch ~t0:1.05e-9 ~rise:30e-12 ~fall:50e-12
      ~peak:(-0.3)
  in
  let w =
    Waveform.Edges.noisy_edge ~th ~arrival:1e-9 ~slew:150e-12
      ~dir:Waveform.Wave.Rising ~glitches:[ glitch ] ()
  in
  check_true "rising overall" (Waveform.Wave.direction w = Waveform.Wave.Rising);
  check_true "not monotone" (not (Waveform.Wave.is_monotone ~eps:1e-6 w));
  (* All techniques should process this synthetic edge. *)
  let noiseless =
    Waveform.Edges.noisy_edge ~th ~arrival:1e-9 ~slew:150e-12
      ~dir:Waveform.Wave.Rising ~glitches:[] ()
  in
  let out =
    Waveform.Edges.noisy_edge ~th ~arrival:1.05e-9 ~slew:100e-12
      ~dir:Waveform.Wave.Falling ~glitches:[]
      ~span:(Waveform.Wave.t_start w, Waveform.Wave.t_end w) ()
  in
  let ctx =
    Eqwave.Technique.make_ctx ~th ~noisy_in:w ~noiseless_in:noiseless
      ~noiseless_out:out ()
  in
  List.iter
    (fun (tech : Eqwave.Technique.t) ->
      match tech.Eqwave.Technique.run ctx with
      | r ->
          check_true
            (tech.Eqwave.Technique.name ^ " sane")
            (abs_float (Waveform.Ramp.arrival r th -. 1e-9) < 200e-12)
      | exception Eqwave.Technique.Unsupported _ -> ())
    Eqwave.Registry.all

(* ------------------------------------------------------------------ *)
(* New cells                                                           *)

let run_cell cell ~input_rising =
  let open Spice in
  let ckt = Circuit.create () in
  let vddn = Device.Cell.attach_supply proc ckt in
  let a = Circuit.node ckt "a" and y = Circuit.node ckt "y" in
  Device.Cell.instantiate proc cell ~ckt ~input:a ~output:y ~vdd_node:vddn
    ~name:"dut";
  Circuit.capacitor ckt y (Circuit.gnd ckt) 10e-15;
  let v0, v1 = if input_rising then (0.0, vdd) else (vdd, 0.0) in
  Circuit.vsource ckt a (Source.ramp ~t0:0.2e-9 ~v0 ~v1 ~trans:150e-12);
  let config = { Transient.default_config with dt = 1e-12; tstop = 2.5e-9 } in
  let res = Transient.run ~config ckt in
  Transient.probe res "y"

let test_buffer_is_non_inverting () =
  check_true "sense" (not (Device.Cell.inverting Device.Cell.buf_x16));
  let y = run_cell Device.Cell.buf_x16 ~input_rising:true in
  check_true "output rises" (Waveform.Wave.direction y = Waveform.Wave.Rising)

let test_buffer_has_bigger_delay_than_inverter () =
  let arrival w = Option.get (Waveform.Wave.arrival w th) in
  let buf = run_cell Device.Cell.buf_x16 ~input_rising:true in
  let inv = run_cell Device.Cell.inv_x16 ~input_rising:true in
  check_true "two stages are slower" (arrival buf > arrival inv)

let test_nand2_inverts () =
  (* With pin B tied high the NAND acts as an inverter. *)
  let cell = Device.Cell.nand2 proc ~drive:4 in
  check_true "sense" (Device.Cell.inverting cell);
  let y = run_cell cell ~input_rising:true in
  check_true "falls" (Waveform.Wave.direction y = Waveform.Wave.Falling);
  approx ~eps:0.02 "full swing low" 0.0
    (Waveform.Wave.value_at y (Waveform.Wave.t_end y))

let test_nor2_inverts () =
  let cell = Device.Cell.nor2 proc ~drive:4 in
  let y = run_cell cell ~input_rising:false in
  check_true "rises" (Waveform.Wave.direction y = Waveform.Wave.Rising);
  approx ~eps:0.02 "full swing high" vdd
    (Waveform.Wave.value_at y (Waveform.Wave.t_end y))

let test_stack_weaker_than_inverter () =
  (* NOR2(d) uses two series PMOS of width 2d; an inverter of drive 2d
     has a single PMOS of that same width, so pulling up through the
     stack must be slower than the single device. *)
  let arrival w = Option.get (Waveform.Wave.arrival w th) in
  let nor = run_cell (Device.Cell.nor2 proc ~drive:4) ~input_rising:false in
  let inv = run_cell (Device.Cell.inv proc ~drive:8) ~input_rising:false in
  check_true "stack slower" (arrival nor > arrival inv)

(* ------------------------------------------------------------------ *)
(* Corners                                                             *)

let corner_delay proc_corner =
  let open Spice in
  let ckt = Circuit.create () in
  let vddn = Device.Cell.attach_supply proc_corner ckt in
  let a = Circuit.node ckt "a" and y = Circuit.node ckt "y" in
  Device.Cell.instantiate proc_corner (Device.Cell.inv proc_corner ~drive:1)
    ~ckt ~input:a ~output:y ~vdd_node:vddn ~name:"u";
  Circuit.capacitor ckt y (Circuit.gnd ckt) 8e-15;
  Circuit.vsource ckt a (Source.ramp ~t0:0.2e-9 ~v0:0.0 ~v1:vdd ~trans:150e-12);
  let config = { Transient.default_config with dt = 1e-12; tstop = 1.5e-9 } in
  let res = Transient.run ~config ckt in
  let wa = Transient.probe res "a" and wy = Transient.probe res "y" in
  Option.get (Waveform.Wave.arrival wy th)
  -. Option.get (Waveform.Wave.arrival wa th)

let test_corner_ordering () =
  let fast = corner_delay Device.Process.c13_fast in
  let typ = corner_delay Device.Process.c13 in
  let slow = corner_delay Device.Process.c13_slow in
  check_true "fast < typ" (fast < typ);
  check_true "typ < slow" (typ < slow)

let test_corner_scaling () =
  let c = Device.Process.scale_corner ~name:"x" ~drive:2.0 ~vth:1.0
      Device.Process.c13 in
  approx_rel ~rel:1e-9 "ksat scaled"
    (2.0 *. Device.Process.c13.Device.Process.nmos.Device.Process.ksat)
    c.Device.Process.nmos.Device.Process.ksat

(* ------------------------------------------------------------------ *)
(* Unateness plumbing                                                  *)

let mk_arc v =
  let t =
    Liberty.Nldm.table ~slews:[| 1e-11; 1e-10 |] ~loads:[| 1e-15; 1e-14 |]
      ~values:[| [| v; v |]; [| v; v |] |]
  in
  { Liberty.Nldm.delay = t; trans = t }

let test_output_dir () =
  let inv_ct =
    { Liberty.Nldm.cell = "INVx1"; input_cap = 1e-15; inverting = true;
      out_rise = mk_arc 1.0; out_fall = mk_arc 2.0 }
  in
  let buf_ct = { inv_ct with Liberty.Nldm.cell = "BUFx1"; inverting = false } in
  let open Waveform.Wave in
  check_true "inv flips" (Liberty.Nldm.output_dir inv_ct Rising = Falling);
  check_true "buf keeps" (Liberty.Nldm.output_dir buf_ct Rising = Rising);
  (* Rising input on an inverter exercises the falling-output arc. *)
  let d, _ = Liberty.Nldm.gate_delay inv_ct ~input_dir:Rising ~slew:5e-11 ~load:5e-15 in
  approx "fall arc" 2.0 d;
  let d, _ = Liberty.Nldm.gate_delay buf_ct ~input_dir:Rising ~slew:5e-11 ~load:5e-15 in
  approx "rise arc" 1.0 d

let test_libfile_sense_roundtrip () =
  let ct =
    { Liberty.Nldm.cell = "BUFx4"; input_cap = 2e-15; inverting = false;
      out_rise = mk_arc 1.0; out_fall = mk_arc 2.0 }
  in
  match Liberty.Libfile.of_string (Liberty.Libfile.to_string [ ct ]) with
  | [ back ] -> check_true "sense preserved" (not back.Liberty.Nldm.inverting)
  | _ -> Alcotest.fail "roundtrip failed"

let test_sta_buffer_direction () =
  (* STA through a buffer must keep the edge direction. *)
  let lib =
    [
      { Liberty.Nldm.cell = "BUFx4"; input_cap = 2e-15; inverting = false;
        out_rise = mk_arc 10e-12; out_fall = mk_arc 20e-12 };
    ]
  in
  let n = Sta.Netlist.create () in
  Sta.Netlist.input n "a";
  Sta.Netlist.gate n ~cell:"BUFx4" ~name:"u1" ~input:"a" ~output:"y";
  Sta.Netlist.output n "y";
  let cfg = Sta.Propagate.config lib in
  let stim =
    { Sta.Propagate.arrival = 0.0; slew = 100e-12; dir = Waveform.Wave.Rising }
  in
  let r = Sta.Propagate.run cfg n ~stimuli:[ ("a", stim) ] in
  let ty = List.assoc "y" r.Sta.Propagate.timings in
  check_true "still rising" (ty.Sta.Propagate.dir = Waveform.Wave.Rising);
  approx ~eps:1e-15 "rise arc delay" 10e-12 ty.Sta.Propagate.at

(* ------------------------------------------------------------------ *)
(* Constraints / slack                                                 *)

let slack_fixture () =
  let lib =
    [
      { Liberty.Nldm.cell = "INVx1"; input_cap = 1e-15; inverting = true;
        out_rise = mk_arc 30e-12; out_fall = mk_arc 50e-12 };
    ]
  in
  let n = Sta.Netlist.create () in
  Sta.Netlist.input n "a";
  Sta.Netlist.gate n ~cell:"INVx1" ~name:"u1" ~input:"a" ~output:"b";
  Sta.Netlist.gate n ~cell:"INVx1" ~name:"u2" ~input:"b" ~output:"c";
  Sta.Netlist.output n "c";
  let cfg = Sta.Propagate.config lib in
  let stim =
    { Sta.Propagate.arrival = 0.0; slew = 50e-12; dir = Waveform.Wave.Rising }
  in
  (n, Sta.Propagate.run cfg n ~stimuli:[ ("a", stim) ])

let test_slack_met () =
  let n, r = slack_fixture () in
  (* Path delay = 50 + 30 = 80 ps; a 100 ps requirement leaves 20 ps. *)
  let report = Sta.Constraints.analyze n r ~required:[ ("c", 100e-12) ] in
  check_true "met" (Sta.Constraints.met report);
  (match report.Sta.Constraints.worst with
  | Some (_, s) -> approx ~eps:1e-15 "slack 20ps" 20e-12 s
  | None -> Alcotest.fail "no worst");
  (* Back-propagated: slack is uniform along a single path. *)
  List.iter
    (fun (_, s) -> approx ~eps:1e-15 "uniform" 20e-12 s)
    report.Sta.Constraints.per_net

let test_slack_violated () =
  let n, r = slack_fixture () in
  let report = Sta.Constraints.analyze n r ~required:[ ("c", 60e-12) ] in
  check_true "violated" (not (Sta.Constraints.met report));
  Alcotest.(check int) "three nets late" 3
    report.Sta.Constraints.violations

let test_slack_unknown_net () =
  let n, r = slack_fixture () in
  match Sta.Constraints.analyze n r ~required:[ ("zz", 1.0) ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

(* ------------------------------------------------------------------ *)
(* Worst-case search                                                   *)

let test_worst_case_search () =
  let scen = Noise.Scenario.config_i in
  let r = Noise.Worst_case.search ~coarse:8 ~refine:4 scen in
  (* The worst delay cannot be below nominal (no-interaction cases
     exist in the window), and the search must stay inside it. *)
  check_true "worse than nominal" (r.Noise.Worst_case.delay >= r.Noise.Worst_case.nominal_delay -. 1e-12);
  let taus = Noise.Scenario.taus (Noise.Scenario.with_cases scen 2) in
  let lo = taus.(0) and hi = taus.(1) in
  let margin = 0.2 *. (hi -. lo) in
  check_true "inside window"
    (r.Noise.Worst_case.tau >= lo -. margin && r.Noise.Worst_case.tau <= hi +. margin);
  check_true "probe budget" (r.Noise.Worst_case.probes <= 8 + (2 * 4) + 4)

let test_worst_case_beats_average () =
  (* The refined worst case should be at least as bad as every coarse
     probe of a small sweep. *)
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_i 6 in
  let noiseless = Noise.Injection.noiseless scen in
  let r = Noise.Worst_case.search ~coarse:6 ~refine:3 scen in
  Array.iter
    (fun tau ->
      let d = Noise.Worst_case.delay_at scen ~noiseless ~tau in
      check_true "dominates sweep" (r.Noise.Worst_case.delay >= d -. 1e-12))
    (Noise.Scenario.taus scen)

(* ------------------------------------------------------------------ *)
(* Buffer-receiver (non-overlap) scenario                              *)

let test_buffer_scenario_runs () =
  let scen = Noise.Scenario.config_i_buffer in
  let r = Noise.Injection.noiseless scen in
  (* Non-inverting receiver: output direction matches the input. *)
  check_true "far rising"
    (Waveform.Wave.direction r.Noise.Injection.far = Waveform.Wave.Rising);
  check_true "rcv also rising"
    (Waveform.Wave.direction r.Noise.Injection.rcv = Waveform.Wave.Rising);
  let case =
    Noise.Eval.evaluate_case scen ~noiseless:r ~tau:scen.Noise.Scenario.victim_t0
  in
  check_true "positive delay" (case.Noise.Eval.delay_ref > 0.0);
  (* SGDP must produce a result on the two-stage receiver. *)
  let sgdp =
    List.find (fun m -> m.Noise.Eval.technique = "SGDP") case.Noise.Eval.metrics
  in
  check_true "sgdp ok" (sgdp.Noise.Eval.delay_err <> None)

let qcheck_tests =
  [
    qcase ~count:25 "edges: composite noisy edge stays within rails"
      QCheck2.Gen.(pair (float_range (-0.5) 0.5) (float_range 10e-12 200e-12))
      (fun (peak, width) ->
        let g =
          Waveform.Edges.triangular_glitch ~t0:1.0e-9 ~rise:width ~fall:width
            ~peak
        in
        let w =
          Waveform.Edges.noisy_edge ~th ~arrival:1e-9 ~slew:120e-12
            ~dir:Waveform.Wave.Rising ~glitches:[ g ] ()
        in
        Array.for_all (fun v -> v >= -1e-9 && v <= vdd +. 1e-9)
          (Waveform.Wave.values w));
    qcase ~count:15 "edges: raised-cosine edge is monotone"
      QCheck2.Gen.(float_range 20e-12 400e-12)
      (fun trans ->
        let w =
          Waveform.Edges.sample ~t0:0.0 ~t1:(2.0 *. trans)
            (Waveform.Edges.raised_cosine_edge ~t0:(0.5 *. trans) ~trans
               ~v0:0.0 ~v1:vdd)
        in
        Waveform.Wave.is_monotone w);
  ]

let suite =
  ( "extensions",
    [
      case "edges: linear" test_linear_edge;
      case "edges: exponential" test_exponential_edge;
      case "edges: raised cosine" test_raised_cosine_edge;
      case "edges: triangular glitch" test_triangular_glitch;
      case "edges: decay glitch" test_decay_glitch;
      case "edges: superpose/clamp" test_superpose_clamp;
      case "edges: noisy edge through techniques" test_noisy_edge_builder;
      case "cells: buffer non-inverting" test_buffer_is_non_inverting;
      case "cells: buffer slower than inverter" test_buffer_has_bigger_delay_than_inverter;
      case "cells: nand2 inverts" test_nand2_inverts;
      case "cells: nor2 inverts" test_nor2_inverts;
      case "cells: stack weaker" test_stack_weaker_than_inverter;
      case "corners: delay ordering" test_corner_ordering;
      case "corners: scaling" test_corner_scaling;
      case "nldm: output_dir and arcs" test_output_dir;
      case "libfile: sense roundtrip" test_libfile_sense_roundtrip;
      case "sta: buffer keeps direction" test_sta_buffer_direction;
      case "slack: met" test_slack_met;
      case "slack: violated" test_slack_violated;
      case "slack: unknown net" test_slack_unknown_net;
      slow_case "worst-case: search" test_worst_case_search;
      slow_case "worst-case: dominates sweep" test_worst_case_beats_average;
      slow_case "buffer scenario: end to end" test_buffer_scenario_runs;
    ]
    @ qcheck_tests )
