type t = { ts : float array; vs : float array }
type direction = Rising | Falling

let pp_direction ppf = function
  | Rising -> Format.pp_print_string ppf "rising"
  | Falling -> Format.pp_print_string ppf "falling"

let create ts vs =
  let n = Array.length ts in
  if n <> Array.length vs then invalid_arg "Wave.create: size mismatch";
  if n < 2 then invalid_arg "Wave.create: need at least 2 samples";
  for i = 0 to n - 2 do
    if ts.(i + 1) <= ts.(i) then
      invalid_arg "Wave.create: times must be strictly increasing"
  done;
  { ts = Array.copy ts; vs = Array.copy vs }

let of_fun ~t0 ~t1 ~n f =
  if n < 2 then invalid_arg "Wave.of_fun: need n >= 2";
  if t1 <= t0 then invalid_arg "Wave.of_fun: empty span";
  let h = (t1 -. t0) /. float_of_int (n - 1) in
  let ts = Array.init n (fun i -> t0 +. (h *. float_of_int i)) in
  { ts; vs = Array.map f ts }

let times w = Array.copy w.ts
let values w = Array.copy w.vs
let length w = Array.length w.ts
let t_start w = w.ts.(0)
let t_end w = w.ts.(Array.length w.ts - 1)

let value_at w t =
  let n = Array.length w.ts in
  if t <= w.ts.(0) then w.vs.(0)
  else if t >= w.ts.(n - 1) then w.vs.(n - 1)
  else Numerics.Interp.linear w.ts w.vs t

let shift w dt = { ts = Array.map (fun t -> t +. dt) w.ts; vs = Array.copy w.vs }
let scale w k = { ts = Array.copy w.ts; vs = Array.map (fun v -> v *. k) w.vs }
let offset w dv = { ts = Array.copy w.ts; vs = Array.map (fun v -> v +. dv) w.vs }

let map2 f a b =
  { ts = Array.copy a.ts;
    vs = Array.mapi (fun i va -> f va (value_at b a.ts.(i))) a.vs }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b

let resample w grid =
  let n = Array.length grid in
  if n < 2 then invalid_arg "Wave.resample: need 2 points";
  for i = 0 to n - 2 do
    if grid.(i + 1) <= grid.(i) then
      invalid_arg "Wave.resample: grid must be strictly increasing"
  done;
  { ts = Array.copy grid; vs = Array.map (value_at w) grid }

let resample_uniform w ~n =
  if n < 2 then invalid_arg "Wave.resample_uniform: need n >= 2";
  let t0 = t_start w and t1 = t_end w in
  let h = (t1 -. t0) /. float_of_int (n - 1) in
  resample w (Array.init n (fun i -> t0 +. (h *. float_of_int i)))

let window w a b =
  if b <= a then invalid_arg "Wave.window: empty window";
  if a > t_end w || b < t_start w then
    invalid_arg "Wave.window: outside waveform span";
  let inside =
    Array.to_list w.ts |> List.filter (fun t -> t > a && t < b)
  in
  let ts = Array.of_list ((a :: inside) @ [ b ]) in
  { ts; vs = Array.map (value_at w) ts }

let crossings w level =
  let n = Array.length w.ts in
  let acc = ref [] in
  let last_was_exact = ref false in
  for i = 0 to n - 2 do
    let v0 = w.vs.(i) and v1 = w.vs.(i + 1) in
    if v0 = level then begin
      if not !last_was_exact then acc := w.ts.(i) :: !acc;
      last_was_exact := true
    end
    else begin
      last_was_exact := false;
      if (v0 -. level) *. (v1 -. level) < 0.0 then begin
        let t =
          w.ts.(i) +. ((level -. v0) /. (v1 -. v0) *. (w.ts.(i + 1) -. w.ts.(i)))
        in
        acc := t :: !acc
      end
    end
  done;
  if w.vs.(n - 1) = level && not !last_was_exact then
    acc := w.ts.(n - 1) :: !acc;
  List.rev !acc

let first_crossing w level =
  match crossings w level with [] -> None | t :: _ -> Some t

let last_crossing w level =
  match List.rev (crossings w level) with [] -> None | t :: _ -> Some t

let direction w =
  let n = Array.length w.vs in
  let v0 = w.vs.(0) and v1 = w.vs.(n - 1) in
  if v1 > v0 then Rising
  else if v1 < v0 then Falling
  else invalid_arg "Wave.direction: no transition"

let arrival w th = last_crossing w (Thresholds.v_mid th)

let slew w th =
  let lo = Thresholds.v_low th and hi = Thresholds.v_high th in
  match direction w with
  | exception Invalid_argument _ -> None
  | Rising -> (
      match (first_crossing w lo, last_crossing w hi) with
      | Some t_lo, Some t_hi when t_hi > t_lo -> Some (t_hi -. t_lo)
      | _ -> None)
  | Falling -> (
      match (first_crossing w hi, last_crossing w lo) with
      | Some t_hi, Some t_lo when t_lo > t_hi -> Some (t_lo -. t_hi)
      | _ -> None)

let derivative w =
  { ts = Array.copy w.ts; vs = Numerics.Interp.derivative w.ts w.vs }

let is_monotone ?(eps = 0.0) w =
  let n = Array.length w.vs in
  let up = ref true and down = ref true in
  for i = 0 to n - 2 do
    if w.vs.(i + 1) < w.vs.(i) -. eps then up := false;
    if w.vs.(i + 1) > w.vs.(i) +. eps then down := false
  done;
  !up || !down

let peak_deviation_from_line w ~slope ~intercept =
  let worst = ref 0.0 in
  Array.iteri
    (fun i t ->
      let d = abs_float (w.vs.(i) -. ((slope *. t) +. intercept)) in
      if d > !worst then worst := d)
    w.ts;
  !worst

let equal ?(eps = 0.0) a b =
  Array.length a.ts = Array.length b.ts
  && (let ok = ref true in
      Array.iteri
        (fun i t ->
          if abs_float (t -. b.ts.(i)) > eps
             || abs_float (a.vs.(i) -. b.vs.(i)) > eps
          then ok := false)
        a.ts;
      !ok)

let pp ppf w =
  Format.fprintf ppf "@[<v>waveform %d samples [%a .. %a], v in [%.4g, %.4g]@]"
    (Array.length w.ts) Numerics.Units.pp_time w.ts.(0) Numerics.Units.pp_time
    (t_end w)
    (Array.fold_left Float.min infinity w.vs)
    (Array.fold_left Float.max neg_infinity w.vs)

let to_csv w =
  let buf = Buffer.create (16 * Array.length w.ts) in
  Buffer.add_string buf "t,v\n";
  Array.iteri
    (fun i t -> Buffer.add_string buf (Printf.sprintf "%.6e,%.6e\n" t w.vs.(i)))
    w.ts;
  Buffer.contents buf
