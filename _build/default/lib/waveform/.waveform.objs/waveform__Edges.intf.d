lib/waveform/edges.mli: Thresholds Wave
