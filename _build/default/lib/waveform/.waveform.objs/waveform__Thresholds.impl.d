lib/waveform/thresholds.ml:
