lib/waveform/pwl.ml: Array List Wave
