lib/waveform/wave.ml: Array Buffer Float Format List Numerics Printf Thresholds
