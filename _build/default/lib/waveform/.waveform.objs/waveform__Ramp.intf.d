lib/waveform/ramp.mli: Format Numerics Thresholds Wave
