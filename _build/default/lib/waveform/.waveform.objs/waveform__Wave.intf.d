lib/waveform/wave.mli: Format Thresholds
