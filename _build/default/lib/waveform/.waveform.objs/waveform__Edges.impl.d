lib/waveform/edges.ml: Float List Ramp Thresholds Wave
