lib/waveform/pwl.mli: Wave
