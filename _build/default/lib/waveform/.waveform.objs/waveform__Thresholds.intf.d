lib/waveform/thresholds.mli:
