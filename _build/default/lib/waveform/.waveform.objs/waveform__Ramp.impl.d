lib/waveform/ramp.ml: Float Format Numerics Thresholds Wave
