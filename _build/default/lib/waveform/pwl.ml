(* Douglas-Peucker: recursively keep the sample farthest from the chord
   while it deviates more than eps. *)
let compress ?(eps = 1e-3) w =
  if eps <= 0.0 then invalid_arg "Pwl.compress: eps must be positive";
  let ts = Wave.times w and vs = Wave.values w in
  let n = Array.length ts in
  let keep = Array.make n false in
  keep.(0) <- true;
  keep.(n - 1) <- true;
  let rec split lo hi =
    if hi > lo + 1 then begin
      let t0 = ts.(lo) and v0 = vs.(lo) in
      let t1 = ts.(hi) and v1 = vs.(hi) in
      let worst = ref 0.0 and worst_i = ref lo in
      for i = lo + 1 to hi - 1 do
        let chord = v0 +. ((v1 -. v0) *. (ts.(i) -. t0) /. (t1 -. t0)) in
        let d = abs_float (vs.(i) -. chord) in
        if d > !worst then begin
          worst := d;
          worst_i := i
        end
      done;
      if !worst > eps then begin
        keep.(!worst_i) <- true;
        split lo !worst_i;
        split !worst_i hi
      end
    end
  in
  split 0 (n - 1);
  let kept_t = ref [] and kept_v = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then begin
      kept_t := ts.(i) :: !kept_t;
      kept_v := vs.(i) :: !kept_v
    end
  done;
  Wave.create (Array.of_list !kept_t) (Array.of_list !kept_v)

let max_deviation a b =
  let worst = ref 0.0 in
  let probe w =
    Array.iter
      (fun t ->
        let d = abs_float (Wave.value_at a t -. Wave.value_at b t) in
        if d > !worst then worst := d)
      (Wave.times w)
  in
  probe a;
  probe b;
  !worst

let compression_ratio original compressed =
  float_of_int (Wave.length original) /. float_of_int (Wave.length compressed)

let points w =
  List.combine
    (Array.to_list (Wave.times w))
    (Array.to_list (Wave.values w))
