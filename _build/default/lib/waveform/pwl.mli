(** Piecewise-linear waveform compression.

    Full transient waveforms carry thousands of samples; STA tools
    store and exchange them as reduced PWL tables. [compress] is the
    Douglas-Peucker reduction: the result deviates from the original by
    at most [eps] volts at every original sample, with far fewer
    points. *)

val compress : ?eps:float -> Wave.t -> Wave.t
(** [compress ~eps w] (default [eps] = 1 mV). Keeps the end points;
    the result interpolates the original within [eps] everywhere. *)

val max_deviation : Wave.t -> Wave.t -> float
(** Max |a(t) - b(t)| over the union of both sample grids. *)

val compression_ratio : Wave.t -> Wave.t -> float
(** original points / compressed points. *)

val points : Wave.t -> (float * float) list
(** The (time, value) pairs of the waveform, e.g. for building PWL
    simulator stimuli. *)
