(** Measurement thresholds. The paper measures slew between 0.1*Vdd and
    0.9*Vdd and arrival/delay at 0.5*Vdd; all of these are configurable
    here so that the techniques never hard-code supply-dependent
    voltages. *)

type t = {
  vdd : float;       (** supply voltage, volts *)
  low_frac : float;  (** lower slew threshold as a fraction of vdd *)
  mid_frac : float;  (** arrival/delay threshold fraction *)
  high_frac : float; (** upper slew threshold fraction *)
}

val make : ?low_frac:float -> ?mid_frac:float -> ?high_frac:float -> vdd:float -> unit -> t
(** Defaults: 0.1 / 0.5 / 0.9. Raises [Invalid_argument] unless
    [0 < low < mid < high < 1] and [vdd > 0]. *)

val default : t
(** 1.2 V supply with the standard 10/50/90 thresholds (our 0.13 um
    process corner). *)

val v_low : t -> float
val v_mid : t -> float
val v_high : t -> float
