(** Sampled voltage waveforms.

    A waveform is a piecewise-linear curve through samples at strictly
    increasing times. Between samples the curve is linearly
    interpolated; outside its span it is held at the end values (a
    settled signal). *)

type t

type direction = Rising | Falling

val pp_direction : Format.formatter -> direction -> unit

val create : float array -> float array -> t
(** [create ts vs] validates that [ts] is strictly increasing, has the
    same length as [vs] (>= 2), and copies both. *)

val of_fun : t0:float -> t1:float -> n:int -> (float -> float) -> t
(** Sample a function on [n] uniform points spanning [t0, t1]. *)

val times : t -> float array
(** A copy of the sample times. *)

val values : t -> float array
val length : t -> int
val t_start : t -> float
val t_end : t -> float

val value_at : t -> float -> float
(** Linear interpolation; clamps to end values outside the span. *)

val shift : t -> float -> t
(** [shift w dt] delays the waveform by [dt] (moves it right for
    positive [dt]). *)

val scale : t -> float -> t
val offset : t -> float -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** [map2 f a b] resamples [b] onto [a]'s grid and combines pointwise;
    used for superposing coupled-noise contributions. *)

val add : t -> t -> t
val sub : t -> t -> t

val resample : t -> float array -> t
(** Resample onto a new (strictly increasing) grid. *)

val resample_uniform : t -> n:int -> t

val window : t -> float -> float -> t
(** [window w a b] restricts to samples in [a, b], adding interpolated
    end points at [a] and [b] exactly. Raises [Invalid_argument] if the
    window is empty or outside the span. *)

val first_crossing : t -> float -> float option
(** [first_crossing w level] is the earliest time the curve reaches
    [level], by linear interpolation. *)

val last_crossing : t -> float -> float option

val crossings : t -> float -> float list
(** All crossing times, earliest first. A sample exactly at [level]
    counts once. *)

val direction : t -> direction
(** Overall transition direction, judged from the end values. Raises
    [Invalid_argument "Wave.direction: no transition"] when the curve is
    flat. *)

val arrival : t -> Thresholds.t -> float option
(** Latest mid-threshold crossing — the paper's arrival-time convention
    for noisy waveforms. *)

val slew : t -> Thresholds.t -> float option
(** Transition time between the low and high thresholds for the overall
    direction: time from the last low-threshold crossing before the
    final settling for rising edges, measured as
    [t(high, last) - t(low, first)]. Returns [None] when the curve never
    spans the thresholds. *)

val derivative : t -> t
(** Centered finite-difference dV/dt on the same grid. *)

val is_monotone : ?eps:float -> t -> bool
(** True when samples are non-decreasing or non-increasing within
    [eps] (default 0, exact). *)

val peak_deviation_from_line : t -> slope:float -> intercept:float -> float
(** Max |v(t) - (slope*t + intercept)| over the samples; a test helper
    for fitting code. *)

val equal : ?eps:float -> t -> t -> bool
(** Same grid (within eps) and same values (within eps). *)

val pp : Format.formatter -> t -> unit
val to_csv : t -> string
(** Two-column "t,v" CSV text with a header, times in seconds. *)
