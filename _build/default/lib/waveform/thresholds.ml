type t = {
  vdd : float;
  low_frac : float;
  mid_frac : float;
  high_frac : float;
}

let make ?(low_frac = 0.1) ?(mid_frac = 0.5) ?(high_frac = 0.9) ~vdd () =
  if vdd <= 0.0 then invalid_arg "Thresholds.make: vdd must be positive";
  if not (0.0 < low_frac && low_frac < mid_frac && mid_frac < high_frac
          && high_frac < 1.0)
  then invalid_arg "Thresholds.make: need 0 < low < mid < high < 1";
  { vdd; low_frac; mid_frac; high_frac }

let default = make ~vdd:1.2 ()
let v_low t = t.low_frac *. t.vdd
let v_mid t = t.mid_frac *. t.vdd
let v_high t = t.high_frac *. t.vdd
