type t = { slope : float; intercept : float; vdd : float }

let make ~slope ~intercept ~vdd =
  if slope = 0.0 then invalid_arg "Ramp.make: zero slope";
  if vdd <= 0.0 then invalid_arg "Ramp.make: vdd must be positive";
  { slope; intercept; vdd }

let of_line (l : Numerics.Lsq.line) ~vdd =
  make ~slope:l.Numerics.Lsq.slope ~intercept:l.Numerics.Lsq.intercept ~vdd

let direction r = if r.slope > 0.0 then Wave.Rising else Wave.Falling

let crossing r level =
  if level <= 0.0 || level >= r.vdd then
    invalid_arg "Ramp.crossing: level outside (0, vdd)";
  (level -. r.intercept) /. r.slope

let of_arrival_slew ~arrival ~slew ~dir th =
  if slew <= 0.0 then invalid_arg "Ramp.of_arrival_slew: slew must be positive";
  let vdd = th.Thresholds.vdd in
  let dv = (th.Thresholds.high_frac -. th.Thresholds.low_frac) *. vdd in
  let mag = dv /. slew in
  let slope = match dir with Wave.Rising -> mag | Wave.Falling -> -.mag in
  let v_mid = Thresholds.v_mid th in
  let intercept = v_mid -. (slope *. arrival) in
  make ~slope ~intercept ~vdd

let value_at r t =
  let v = (r.slope *. t) +. r.intercept in
  Float.min r.vdd (Float.max 0.0 v)

let arrival r th = crossing r (Thresholds.v_mid th)

let slew r th =
  let t_lo = crossing r (Thresholds.v_low th) in
  let t_hi = crossing r (Thresholds.v_high th) in
  abs_float (t_hi -. t_lo)

let t_begin r =
  (* Time the unclipped line leaves the starting rail. *)
  if r.slope > 0.0 then (0.0 -. r.intercept) /. r.slope
  else (r.vdd -. r.intercept) /. r.slope

let t_settle r =
  if r.slope > 0.0 then (r.vdd -. r.intercept) /. r.slope
  else (0.0 -. r.intercept) /. r.slope

let to_waveform ?pad ?(n = 201) r =
  let trans = abs_float (r.vdd /. r.slope) in
  let pad = match pad with Some p -> p | None -> trans in
  let t0 = t_begin r -. pad and t1 = t_settle r +. pad in
  Wave.of_fun ~t0 ~t1 ~n (value_at r)

let shift r dt =
  { r with intercept = r.intercept -. (r.slope *. dt) }

let pp ppf r =
  Format.fprintf ppf "ramp %a slope=%.4g V/ns, mid@%a"
    Wave.pp_direction (direction r)
    (r.slope *. 1e-9)
    Numerics.Units.pp_time
    ((0.5 *. r.vdd -. r.intercept) /. r.slope)
