(** Analytic edge and glitch shapes.

    Parametric waveform generators used for fast technique testing and
    synthetic workloads: classic exponential and raised-cosine edges,
    plus crosstalk glitch shapes (triangular and capacitive
    charge-sharing pulses) that can be superposed onto any edge. All
    generators return plain functions of time so they can be sampled
    into {!Wave.t} or used directly as stimuli. *)

val linear_edge :
  t0:float -> trans:float -> v0:float -> v1:float -> float -> float
(** Saturated linear transition from [v0] to [v1] starting at [t0]. *)

val exponential_edge :
  t0:float -> tau:float -> v0:float -> v1:float -> float -> float
(** First-order RC response [v0 + (v1-v0)(1 - exp(-(t-t0)/tau))]. *)

val raised_cosine_edge :
  t0:float -> trans:float -> v0:float -> v1:float -> float -> float
(** Smooth (C1) transition with zero end slopes — a good stand-in for a
    buffered CMOS edge. *)

val triangular_glitch :
  t0:float -> rise:float -> fall:float -> peak:float -> float -> float
(** Zero outside [t0, t0 + rise + fall]; linear up to [peak] then back.
    [rise] and [fall] must be positive. *)

val decay_glitch :
  t0:float -> tau:float -> peak:float -> float -> float
(** Instantaneous kick of [peak] at [t0] decaying with [tau] — the
    charge-sharing shape of a coupling capacitor against a holding
    driver. *)

val superpose : (float -> float) list -> float -> float
(** Pointwise sum. *)

val clamp : vdd:float -> (float -> float) -> float -> float
(** Clip a composite shape to the rails. *)

val sample :
  ?n:int -> t0:float -> t1:float -> (float -> float) -> Wave.t
(** Sample onto a uniform grid ([n] defaults to 601). *)

val noisy_edge :
  th:Thresholds.t ->
  arrival:float -> slew:float -> dir:Wave.direction ->
  glitches:(float -> float) list ->
  ?span:float * float -> unit -> Wave.t
(** A complete synthetic noisy transition: saturated ramp with the
    given timing, glitches superposed, clamped to the rails. [span]
    defaults to generous padding around the transition and glitches. *)
