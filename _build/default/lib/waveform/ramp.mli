(** Saturated linear ramps — the equivalent waveform Gamma_eff.

    Every technique in the paper outputs a line v(t) = a*t + b; applied
    to a gate it is clipped at the supply rails. A ramp therefore
    carries the line coefficients plus the supply it saturates at. *)

type t = private {
  slope : float;     (** a, in V/s; negative for falling edges *)
  intercept : float; (** b, in V *)
  vdd : float;
}

val make : slope:float -> intercept:float -> vdd:float -> t
(** Raises [Invalid_argument] when [slope = 0] or [vdd <= 0]. *)

val of_line : Numerics.Lsq.line -> vdd:float -> t

val of_arrival_slew :
  arrival:float -> slew:float -> dir:Wave.direction -> Thresholds.t -> t
(** Build the ramp that crosses the mid threshold at [arrival] with the
    given low-to-high transition time [slew] (must be positive). This is
    the classical (arrival, slew) -> waveform expansion used by STA. *)

val direction : t -> Wave.direction

val value_at : t -> float -> float
(** The clipped value min(max(a*t + b, 0), vdd). *)

val crossing : t -> float -> float
(** [crossing r level] is the unique time the unclipped line reaches
    [level]. Raises [Invalid_argument] if [level] is outside (0, vdd). *)

val arrival : t -> Thresholds.t -> float
(** Mid-threshold crossing time. *)

val slew : t -> Thresholds.t -> float
(** Low/high threshold transition time (always positive). *)

val t_begin : t -> float
(** Time at which the clipped ramp leaves its initial rail. *)

val t_settle : t -> float
(** Time at which the clipped ramp reaches its final rail. *)

val to_waveform : ?pad:float -> ?n:int -> t -> Wave.t
(** Sample the clipped ramp, padding [pad] (default: one transition
    time) of settled rail on each side, with [n] (default 201)
    samples. *)

val shift : t -> float -> t
(** [shift r dt] delays the ramp by [dt]. *)

val pp : Format.formatter -> t -> unit
