let linear_edge ~t0 ~trans ~v0 ~v1 t =
  if trans <= 0.0 then invalid_arg "Edges.linear_edge: trans";
  if t <= t0 then v0
  else if t >= t0 +. trans then v1
  else v0 +. ((v1 -. v0) *. (t -. t0) /. trans)

let exponential_edge ~t0 ~tau ~v0 ~v1 t =
  if tau <= 0.0 then invalid_arg "Edges.exponential_edge: tau";
  if t <= t0 then v0 else v0 +. ((v1 -. v0) *. (1.0 -. exp (-.(t -. t0) /. tau)))

let raised_cosine_edge ~t0 ~trans ~v0 ~v1 t =
  if trans <= 0.0 then invalid_arg "Edges.raised_cosine_edge: trans";
  if t <= t0 then v0
  else if t >= t0 +. trans then v1
  else
    let x = (t -. t0) /. trans in
    v0 +. ((v1 -. v0) *. 0.5 *. (1.0 -. cos (Float.pi *. x)))

let triangular_glitch ~t0 ~rise ~fall ~peak t =
  if rise <= 0.0 || fall <= 0.0 then invalid_arg "Edges.triangular_glitch";
  if t <= t0 || t >= t0 +. rise +. fall then 0.0
  else if t <= t0 +. rise then peak *. (t -. t0) /. rise
  else peak *. (t0 +. rise +. fall -. t) /. fall

let decay_glitch ~t0 ~tau ~peak t =
  if tau <= 0.0 then invalid_arg "Edges.decay_glitch: tau";
  if t <= t0 then 0.0 else peak *. exp (-.(t -. t0) /. tau)

let superpose fs t = List.fold_left (fun acc f -> acc +. f t) 0.0 fs

let clamp ~vdd f t = Float.min vdd (Float.max 0.0 (f t))

let sample ?(n = 601) ~t0 ~t1 f = Wave.of_fun ~t0 ~t1 ~n f

let noisy_edge ~th ~arrival ~slew ~dir ~glitches ?span () =
  let vdd = th.Thresholds.vdd in
  let ramp = Ramp.of_arrival_slew ~arrival ~slew ~dir th in
  let base t = Ramp.value_at ramp t in
  let t0, t1 =
    match span with
    | Some (a, b) -> (a, b)
    | None ->
        let trans = Ramp.t_settle ramp -. Ramp.t_begin ramp in
        (Ramp.t_begin ramp -. (3.0 *. trans), Ramp.t_settle ramp +. (5.0 *. trans))
  in
  sample ~t0 ~t1 (clamp ~vdd (superpose (base :: glitches)))
