type table = {
  slews : float array;
  loads : float array;
  values : float array array;
}

let check_axis name a =
  if Array.length a < 2 then invalid_arg ("Nldm.table: " ^ name ^ " too short");
  for i = 0 to Array.length a - 2 do
    if a.(i + 1) <= a.(i) then
      invalid_arg ("Nldm.table: " ^ name ^ " must be strictly increasing")
  done

let table ~slews ~loads ~values =
  check_axis "slews" slews;
  check_axis "loads" loads;
  if Array.length values <> Array.length slews then
    invalid_arg "Nldm.table: row count must match slews";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length loads then
        invalid_arg "Nldm.table: column count must match loads")
    values;
  { slews; loads; values }

let lookup t ~slew ~load =
  Numerics.Interp.bilinear t.slews t.loads t.values slew load

type arc = { delay : table; trans : table }

type cell_timing = {
  cell : string;
  input_cap : float;
  inverting : bool;
  out_rise : arc;
  out_fall : arc;
}

let output_dir ct dir =
  let open Waveform.Wave in
  if ct.inverting then match dir with Rising -> Falling | Falling -> Rising
  else dir

let arc_for_input ct dir =
  match output_dir ct dir with
  | Waveform.Wave.Rising -> ct.out_rise
  | Waveform.Wave.Falling -> ct.out_fall

let gate_delay ct ~input_dir ~slew ~load =
  let arc = arc_for_input ct input_dir in
  (lookup arc.delay ~slew ~load, lookup arc.trans ~slew ~load)
