let bprint_floats buf a =
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%.8e" x))
    a

let bprint_table buf name (t : Nldm.table) indent =
  let pad = String.make indent ' ' in
  Buffer.add_string buf (Printf.sprintf "%s%s {\n" pad name);
  Array.iter
    (fun row ->
      Buffer.add_string buf (pad ^ "  ");
      bprint_floats buf row;
      Buffer.add_string buf ";\n")
    t.Nldm.values;
  Buffer.add_string buf (pad ^ "}\n")

let bprint_arc buf name (a : Nldm.arc) =
  Buffer.add_string buf (Printf.sprintf "    timing(%s) {\n" name);
  Buffer.add_string buf "      index_slew: ";
  bprint_floats buf a.Nldm.delay.Nldm.slews;
  Buffer.add_string buf ";\n      index_load: ";
  bprint_floats buf a.Nldm.delay.Nldm.loads;
  Buffer.add_string buf ";\n";
  bprint_table buf "delay" a.Nldm.delay 6;
  bprint_table buf "trans" a.Nldm.trans 6;
  Buffer.add_string buf "    }\n"

let to_string cells =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "library(noisy_sta) {\n";
  List.iter
    (fun (ct : Nldm.cell_timing) ->
      Buffer.add_string buf (Printf.sprintf "  cell(%s) {\n" ct.Nldm.cell);
      Buffer.add_string buf
        (Printf.sprintf "    input_cap: %.8e;\n" ct.Nldm.input_cap);
      Buffer.add_string buf
        (Printf.sprintf "    sense: %s;\n"
           (if ct.Nldm.inverting then "negative_unate" else "positive_unate"));
      bprint_arc buf "out_rise" ct.Nldm.out_rise;
      bprint_arc buf "out_fall" ct.Nldm.out_fall;
      Buffer.add_string buf "  }\n")
    cells;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- Parsing: a tiny tokenizer plus recursive descent. --- *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Colon
  | Semi

type lexer = { mutable toks : (token * int) list }

let tokenize s =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length s in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '+' || c = '-' || c = 'e' || c = 'E'
  in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '(' -> toks := (Lparen, !line) :: !toks; incr i
    | ')' -> toks := (Rparen, !line) :: !toks; incr i
    | '{' -> toks := (Lbrace, !line) :: !toks; incr i
    | '}' -> toks := (Rbrace, !line) :: !toks; incr i
    | ':' -> toks := (Colon, !line) :: !toks; incr i
    | ';' -> toks := (Semi, !line) :: !toks; incr i
    | _ when is_word c ->
        let j = ref !i in
        while !j < n && is_word s.[!j] do incr j done;
        let w = String.sub s !i (!j - !i) in
        i := !j;
        let tok =
          match float_of_string_opt w with
          | Some f when w.[0] = '-' || w.[0] = '+' || (w.[0] >= '0' && w.[0] <= '9') ->
              Number f
          | _ -> Ident w
        in
        toks := (tok, !line) :: !toks
    | _ -> failwith (Printf.sprintf "libfile: line %d: bad character %C" !line c));
  done;
  { toks = List.rev !toks }

let fail_at line msg = failwith (Printf.sprintf "libfile: line %d: %s" line msg)

let peek lx = match lx.toks with [] -> None | (t, l) :: _ -> Some (t, l)

let next lx =
  match lx.toks with
  | [] -> failwith "libfile: unexpected end of input"
  | (t, l) :: rest ->
      lx.toks <- rest;
      (t, l)

let expect lx want name =
  let t, l = next lx in
  if t <> want then fail_at l ("expected " ^ name)

let expect_ident lx =
  match next lx with
  | Ident s, _ -> s
  | _, l -> fail_at l "expected identifier"

let numbers_until_semi lx =
  let rec go acc =
    match next lx with
    | Number f, _ -> go (f :: acc)
    | Semi, _ -> Array.of_list (List.rev acc)
    | _, l -> fail_at l "expected number or ';'"
  in
  go []

(* name(arg) { ... } header: consumes "name ( arg ) {" and gives arg. *)
let header lx name =
  let id = expect_ident lx in
  if id <> name then failwith ("libfile: expected " ^ name ^ ", got " ^ id);
  expect lx Lparen "'('";
  let arg = expect_ident lx in
  expect lx Rparen "')'";
  expect lx Lbrace "'{'";
  arg

let parse_matrix lx =
  expect lx Lbrace "'{'";
  let rec rows acc =
    match peek lx with
    | Some (Rbrace, _) ->
        ignore (next lx);
        Array.of_list (List.rev acc)
    | Some (Number _, _) -> rows (numbers_until_semi lx :: acc)
    | Some (_, l) -> fail_at l "expected row or '}'"
    | None -> failwith "libfile: unexpected end in table"
  in
  rows []

let parse_arc lx =
  let field lx name =
    let id = expect_ident lx in
    if id <> name then failwith ("libfile: expected " ^ name);
    expect lx Colon "':'";
    numbers_until_semi lx
  in
  let slews = field lx "index_slew" in
  let loads = field lx "index_load" in
  let delay_name = expect_ident lx in
  if delay_name <> "delay" then failwith "libfile: expected delay table";
  let delay = parse_matrix lx in
  let trans_name = expect_ident lx in
  if trans_name <> "trans" then failwith "libfile: expected trans table";
  let trans = parse_matrix lx in
  expect lx Rbrace "'}'";
  {
    Nldm.delay = Nldm.table ~slews ~loads ~values:delay;
    trans = Nldm.table ~slews ~loads ~values:trans;
  }

let parse_cell lx =
  let name = header lx "cell" in
  let id = expect_ident lx in
  if id <> "input_cap" then failwith "libfile: expected input_cap";
  expect lx Colon "':'";
  let cap =
    match next lx with
    | Number f, _ -> f
    | _, l -> fail_at l "expected number"
  in
  expect lx Semi "';'";
  (* Optional sense attribute (defaults to negative-unate for files
     written before it existed). *)
  let inverting = ref true in
  (match peek lx with
  | Some (Ident "sense", _) ->
      ignore (next lx);
      expect lx Colon "':'";
      let v = expect_ident lx in
      expect lx Semi "';'";
      (match v with
      | "negative_unate" -> inverting := true
      | "positive_unate" -> inverting := false
      | _ -> failwith ("libfile: bad sense " ^ v))
  | _ -> ());
  let arcs = Hashtbl.create 2 in
  let rec read_arcs () =
    match peek lx with
    | Some (Rbrace, _) -> ignore (next lx)
    | _ ->
        let which = header lx "timing" in
        Hashtbl.replace arcs which (parse_arc lx);
        read_arcs ()
  in
  read_arcs ();
  let get which =
    match Hashtbl.find_opt arcs which with
    | Some a -> a
    | None -> failwith ("libfile: cell " ^ name ^ " missing arc " ^ which)
  in
  {
    Nldm.cell = name;
    input_cap = cap;
    inverting = !inverting;
    out_rise = get "out_rise";
    out_fall = get "out_fall";
  }

let of_string s =
  let lx = tokenize s in
  let _lib = header lx "library" in
  let rec cells acc =
    match peek lx with
    | Some (Rbrace, _) ->
        ignore (next lx);
        List.rev acc
    | Some _ -> cells (parse_cell lx :: acc)
    | None -> failwith "libfile: unexpected end of library"
  in
  cells []

let save path cells =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string cells))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let find cells name =
  match List.find_opt (fun c -> c.Nldm.cell = name) cells with
  | Some c -> c
  | None -> raise Not_found
