(** Non-linear delay model tables.

    The paper stresses that SGDP "is compatible with the current level
    of gate characterization in conventional ASIC cell libraries": a
    technique reduces the noisy waveform to (arrival, slew), and the
    cell's behaviour is then read from standard NLDM tables indexed by
    input slew and output load. These are those tables. *)

type table = {
  slews : float array;  (** input transition times, seconds, increasing *)
  loads : float array;  (** output loads, farads, increasing *)
  values : float array array; (** values.(i).(j) at slews.(i), loads.(j) *)
}

val table : slews:float array -> loads:float array -> values:float array array -> table
(** Validates monotone axes and rectangular values. *)

val lookup : table -> slew:float -> load:float -> float
(** Bilinear interpolation, clamped at the table edges. *)

type arc = {
  delay : table; (** mid-input to mid-output crossing *)
  trans : table; (** output 10-90 transition time *)
}

type cell_timing = {
  cell : string;
  input_cap : float;
  inverting : bool; (** negative-unate (inverter/NAND/NOR arcs) when true *)
  out_rise : arc;   (** arc producing a rising output *)
  out_fall : arc;   (** arc producing a falling output *)
}

val arc_for_input : cell_timing -> Waveform.Wave.direction -> arc
(** The arc exercised by an input edge of the given direction, honoring
    the cell's unateness. *)

val output_dir :
  cell_timing -> Waveform.Wave.direction -> Waveform.Wave.direction
(** Output edge direction for a given input edge. *)

val gate_delay :
  cell_timing -> input_dir:Waveform.Wave.direction -> slew:float ->
  load:float -> float * float
(** [(delay, output_slew)] for the given stimulus. *)
