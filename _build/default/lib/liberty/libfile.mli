(** A miniature Liberty-style text format for NLDM tables.

    Characterization is the slowest part of the flow, so the tables can
    be written to disk once and reloaded by the STA engine and the
    benches. The syntax is a braces-and-attributes subset of Liberty:

    {v
    library(noisy_sta) {
      cell(INVx1) {
        input_cap: 1.2e-15;
        timing(out_fall) {
          index_slew: 2e-11 5e-11 ...;
          index_load: 1e-15 2e-15 ...;
          delay { 1.1e-11 ...; ... }
          trans { ... }
        }
        timing(out_rise) { ... }
      }
    }
    v} *)

val to_string : Nldm.cell_timing list -> string

val of_string : string -> Nldm.cell_timing list
(** Raises [Failure] with a line-located message on malformed input. *)

val save : string -> Nldm.cell_timing list -> unit
(** [save path cells]. *)

val load : string -> Nldm.cell_timing list
(** Raises [Sys_error] when the file is unreadable, [Failure] on parse
    errors. *)

val find : Nldm.cell_timing list -> string -> Nldm.cell_timing
(** Raises [Not_found]. *)
