lib/liberty/nldm.ml: Array Numerics Waveform
