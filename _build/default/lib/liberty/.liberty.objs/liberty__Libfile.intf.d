lib/liberty/libfile.mli: Nldm
