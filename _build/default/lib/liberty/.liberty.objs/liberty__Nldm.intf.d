lib/liberty/nldm.mli: Waveform
