lib/liberty/characterize.mli: Device Nldm Spice Waveform
