lib/liberty/characterize.ml: Array Circuit Device Nldm Printf Spice Transient Waveform
