lib/liberty/libfile.ml: Array Buffer Fun Hashtbl List Nldm Printf String
