(** E4 — the Elmore-inspired area-matching technique (Section 2.3).

    Gamma_eff passes through the latest 0.5 Vdd crossing of the noisy
    waveform; its slope makes the area enclosed between the line and
    the far supply rail (within the half-swing band) equal to the area
    enclosed by the noisy waveform in the same band. *)

val e4 : Technique.t
