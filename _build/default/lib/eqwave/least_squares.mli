(** LSF3 — plain least-squares waveform matching (Section 2.2).

    Fits the line to P samples of the noisy waveform over its critical
    region, with no knowledge of the receiving gate. *)

val lsf3 : Technique.t
