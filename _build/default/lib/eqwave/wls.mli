(** WLS5 — the weighted-least-squares technique of Hashimoto, Yamada
    and Onodera (TCAD'04), Section 2.4 of the paper.

    Minimizes sum_k (rho(t_k) * (v_noisy(t_k) - (a t_k + b)))^2 where
    rho is the noiseless sensitivity and the samples live in the
    *noiseless* critical region. Noise outside that region is filtered
    away — the weakness SGDP fixes. *)

val wls5 : Technique.t

val weights_floor : float
(** Relative floor added to the squared weights so the normal equations
    stay solvable when the noise pushes the transition entirely outside
    the noiseless critical region (WLS5 then degrades gracefully
    instead of crashing — matching the paper's observation that it
    underestimates in exactly those cases). *)
