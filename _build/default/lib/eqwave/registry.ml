let conventional =
  [
    Point_based.p1;
    Point_based.p2;
    Least_squares.lsf3;
    Energy.e4;
    Wls.wls5;
  ]

let all = conventional @ [ Sgdp.sgdp ]

let find name =
  let target = String.lowercase_ascii name in
  match
    List.find_opt
      (fun t -> String.lowercase_ascii t.Technique.name = target)
      all
  with
  | Some t -> t
  | None -> raise Not_found

let names = List.map (fun t -> t.Technique.name) all
