type ctx = {
  th : Waveform.Thresholds.t;
  noisy_in : Waveform.Wave.t;
  noiseless_in : Waveform.Wave.t;
  noiseless_out : Waveform.Wave.t;
  samples : int;
}

exception Unsupported of string

let make_ctx ?(samples = 35) ~th ~noisy_in ~noiseless_in ~noiseless_out () =
  if samples < 4 then invalid_arg "Technique.make_ctx: samples < 4";
  { th; noisy_in; noiseless_in; noiseless_out; samples }

type t = {
  name : string;
  describe : string;
  run : ctx -> Waveform.Ramp.t;
}

let direction ctx = Waveform.Wave.direction ctx.noiseless_in

let critical_region_of wave th dir =
  let open Waveform in
  let lo = Thresholds.v_low th and hi = Thresholds.v_high th in
  let from_level, to_level =
    match dir with Wave.Rising -> (lo, hi) | Wave.Falling -> (hi, lo)
  in
  match (Wave.first_crossing wave from_level, Wave.last_crossing wave to_level)
  with
  | Some a, Some b when b > a -> (a, b)
  | _ ->
      raise
        (Unsupported "critical region: waveform does not span the thresholds")

let noisy_critical_region ctx =
  critical_region_of ctx.noisy_in ctx.th (direction ctx)

let noiseless_critical_region ctx =
  critical_region_of ctx.noiseless_in ctx.th (direction ctx)

let sample_times (a, b) p =
  if p < 2 then invalid_arg "Technique.sample_times: p < 2";
  if b <= a then invalid_arg "Technique.sample_times: empty region";
  let h = (b -. a) /. float_of_int (p - 1) in
  Array.init p (fun i -> a +. (h *. float_of_int i))

let latest_mid_crossing ctx =
  match
    Waveform.Wave.last_crossing ctx.noisy_in (Waveform.Thresholds.v_mid ctx.th)
  with
  | Some t -> t
  | None -> raise (Unsupported "noisy waveform never crosses 0.5 Vdd")

let check_polarity ctx ramp =
  if Waveform.Ramp.direction ramp <> direction ctx then
    raise (Unsupported "fit polarity does not match the transition");
  ramp
