lib/eqwave/energy.ml: Array Float Numerics Ramp Technique Thresholds Wave Waveform
