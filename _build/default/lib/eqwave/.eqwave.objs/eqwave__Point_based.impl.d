lib/eqwave/point_based.ml: Technique Waveform
