lib/eqwave/wls.mli: Technique
