lib/eqwave/registry.mli: Technique
