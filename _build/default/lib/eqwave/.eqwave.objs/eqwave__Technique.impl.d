lib/eqwave/technique.ml: Array Thresholds Wave Waveform
