lib/eqwave/least_squares.ml: Array Numerics Technique Waveform
