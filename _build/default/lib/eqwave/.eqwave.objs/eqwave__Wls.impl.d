lib/eqwave/wls.ml: Array Float Numerics Sensitivity Technique Waveform
