lib/eqwave/registry.ml: Energy Least_squares List Point_based Sgdp String Technique Wls
