lib/eqwave/sgdp.ml: Array Float Numerics Sensitivity Technique Thresholds Wave Waveform
