lib/eqwave/sgdp.mli: Sensitivity Technique
