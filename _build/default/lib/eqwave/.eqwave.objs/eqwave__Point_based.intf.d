lib/eqwave/point_based.mli: Technique
