lib/eqwave/sensitivity.mli: Technique
