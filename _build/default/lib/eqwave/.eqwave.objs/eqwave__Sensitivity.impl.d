lib/eqwave/sensitivity.ml: Array Float List Numerics Technique Thresholds Wave Waveform
