lib/eqwave/energy.mli: Technique
