lib/eqwave/technique.mli: Waveform
