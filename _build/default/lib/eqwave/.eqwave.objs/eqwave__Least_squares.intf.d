lib/eqwave/least_squares.mli: Technique
