open Technique

let anchored_ramp ctx ~slew =
  if slew <= 0.0 then raise (Unsupported "point-based: non-positive slew");
  let arrival = latest_mid_crossing ctx in
  Waveform.Ramp.of_arrival_slew ~arrival ~slew ~dir:(direction ctx) ctx.th

let p1 =
  {
    name = "P1";
    describe = "noiseless slew, latest noisy 0.5Vdd arrival";
    run =
      (fun ctx ->
        match Waveform.Wave.slew ctx.noiseless_in ctx.th with
        | Some slew -> anchored_ramp ctx ~slew
        | None -> raise (Unsupported "P1: noiseless waveform has no slew"));
  }

let p2 =
  {
    name = "P2";
    describe = "earliest-to-latest noisy threshold span as slew";
    run =
      (fun ctx ->
        let a, b = noisy_critical_region ctx in
        anchored_ramp ctx ~slew:(b -. a));
  }
