(** The point-based techniques of Section 2.1.

    Both anchor Gamma_eff's 0.5 Vdd point at the latest mid crossing of
    the noisy waveform; they differ in where the slew comes from. *)

val p1 : Technique.t
(** P1: slew taken from the noiseless waveform's 10-90 transition, as
    though the noise did not exist. *)

val p2 : Technique.t
(** P2: slew stretched from the earliest "from"-threshold crossing to
    the latest "to"-threshold crossing of the noisy waveform. *)
