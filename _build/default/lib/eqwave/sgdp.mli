(** SGDP — Sensitivity-based Gate Delay Propagation (Section 3), the
    paper's contribution.

    Step 1 computes the noiseless sensitivity rho (shared with WLS5).
    Step 2 re-maps rho onto the *noisy* critical region by matching
    input voltage levels, giving rho_eff: noise distortion is weighted
    wherever it actually happens, not where the noiseless transition
    happened to be. Step 3 picks Gamma_eff = a t + b minimizing the
    Taylor-approximated output error (paper Eq. 3)

      sum_k ( rho_eff(t_k) e_k + 1/2 (d rho_eff/d v_in)(t_k) e_k^2 )^2,
      e_k = v_noisy(t_k) - (a t_k + b),

    solved by Gauss-Newton seeded with the rho_eff-weighted linear fit.
    For gates whose input and output transitions do not overlap, the
    output is pre-shifted so the 0.5 Vdd crossings coincide before the
    sensitivity is formed (the paper's additional step). *)

type options = {
  second_order : bool;
  (** include the 1/2 * drho/dv * e^2 Taylor term (Eq. 3); switching it
      off reduces step 3 to a rho_eff-weighted least squares — the
      ablation benchmarked in the bench harness *)
  align_non_overlapping : bool;
  (** apply the pre-shift delta for non-overlapping transitions *)
  commit_masking : bool;
  (** zero the remapped sensitivity after the estimated output-commit
      time. Voltage-level matching (Step 2) transplants *transient*
      sensitivity onto samples taken after the receiver's output has
      settled, where the true sensitivity is only the (tiny) DC gain;
      without this mask a long post-transition shoulder at a
      mid-sensitivity voltage drags the fit off the real edge. Kept as
      an option because it is an interpretation this implementation
      adds to make Step 2 well-posed on such waveforms (documented in
      DESIGN.md), and so its effect can be measured by the ablation
      bench. *)
  gn_iterations : int;
}

val default_options : options
(** [second_order = true], [align_non_overlapping = true],
    [commit_masking = true], [gn_iterations = 15]. *)

val make : options -> Technique.t
val sgdp : Technique.t
(** [make default_options]. *)

val rho_eff :
  Sensitivity.t -> Technique.ctx -> float array -> float array * float array
(** [rho_eff sens ctx ts] evaluates (rho_eff, d rho_eff / d v_in) at
    the given times by voltage-level matching — exposed for the
    Figure 2b reproduction and for tests. *)
