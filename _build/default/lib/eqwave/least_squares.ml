open Technique

let lsf3 =
  {
    name = "LSF3";
    describe = "unweighted least-squares line fit over the noisy region";
    run =
      (fun ctx ->
        let region = noisy_critical_region ctx in
        let ts = sample_times region ctx.samples in
        let vs = Array.map (Waveform.Wave.value_at ctx.noisy_in) ts in
        let line =
          try Numerics.Lsq.fit_line ts vs
          with Failure _ -> raise (Unsupported "LSF3: degenerate fit")
        in
        if line.Numerics.Lsq.slope = 0.0 then
          raise (Unsupported "LSF3: flat fit");
        check_polarity ctx
          (Waveform.Ramp.of_line line ~vdd:ctx.th.Waveform.Thresholds.vdd));
  }
