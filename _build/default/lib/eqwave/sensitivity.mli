(** Output-to-input sensitivity rho (paper Eq. 1).

    rho(t) = (dv_out/dt) / (dv_in/dt) for the *noiseless* transition,
    defined on the noiseless critical region and zero outside. Because
    the noiseless input is monotone there, rho can also be indexed by
    input *voltage* — which is exactly the remapping SGDP-Step 2 uses
    to carry the sensitivity onto the noisy waveform. *)

type t = {
  region : float * float;   (** noiseless critical region *)
  ts : float array;         (** sample times inside the region *)
  vin : float array;        (** noiseless input voltage at [ts] *)
  rho : float array;        (** sensitivity at [ts] *)
  drho_dv : float array;    (** d rho / d v_in at [ts] *)
  output_shift : float;     (** the delta applied to the output, >= 0 *)
  v_grid : float array;     (** ascending input-voltage grid (internal
                                cache for voltage-indexed lookups) *)
  rho_by_v : float array;   (** rho on [v_grid] *)
  drho_by_v : float array;  (** drho/dv on [v_grid] *)
}

val compute : ?output_shift:float -> ?points:int -> Technique.ctx -> t
(** Sample the sensitivity on [points] (default 201) uniform times over
    the noiseless critical region. [output_shift] shifts the noiseless
    output *earlier* by that amount before differentiating — the
    alignment step SGDP adds for non-overlapping transitions. *)

val rho_at_voltage : t -> float -> float
(** Sensitivity at a given input voltage level; 0 outside the critical
    voltage range (the paper's "filter" behaviour). *)

val drho_dv_at_voltage : t -> float -> float

val rho_at_time : t -> float -> float
(** Sensitivity at an absolute time; 0 outside the critical region.
    This is WLS5's time-indexed weight. *)

val overlap_shift : Technique.ctx -> float
(** The delta of SGDP's pre-processing step: 0 when the noiseless input
    and output critical regions overlap in time, otherwise the gap
    between their mid-threshold crossings. *)

val peak : t -> float
(** max |rho|; a diagnostic (Figure 2a plots 0.2 x rho). *)
