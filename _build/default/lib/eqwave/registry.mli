(** All techniques of the paper, in Table-1 order. *)

val all : Technique.t list
(** P1, P2, LSF3, E4, WLS5, SGDP. *)

val conventional : Technique.t list
(** Everything except SGDP. *)

val find : string -> Technique.t
(** Case-insensitive lookup by name; raises [Not_found]. *)

val names : string list
