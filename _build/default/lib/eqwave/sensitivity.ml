type t = {
  region : float * float;
  ts : float array;
  vin : float array;
  rho : float array;
  drho_dv : float array;
  output_shift : float;
  (* Voltage-indexed views, precomputed once: lookups happen per sample
     per technique call and must stay cheap. *)
  v_grid : float array;
  rho_by_v : float array;
  drho_by_v : float array;
}

(* The noiseless input is monotone on the critical region, so [vin] is
   sorted one way or the other; normalize to ascending and keep only
   the strictly increasing spine so interpolation stays well defined
   (simulated edges can carry flat samples near the rails). *)
let build_by_voltage vin values =
  let n = Array.length vin in
  let ordered =
    if n < 2 || vin.(0) <= vin.(n - 1) then
      Array.init n (fun i -> (vin.(i), Array.map (fun v -> v.(i)) values))
    else
      Array.init n (fun i ->
          (vin.(n - 1 - i), Array.map (fun v -> v.(n - 1 - i)) values))
  in
  let kept = ref [ ordered.(0) ] in
  Array.iter
    (fun (v, ys) ->
      match !kept with
      | (vp, _) :: _ when v > vp -> kept := (v, ys) :: !kept
      | _ -> ())
    ordered;
  let pairs = Array.of_list (List.rev !kept) in
  ( Array.map fst pairs,
    Array.map (fun (_, ys) -> ys.(0)) pairs,
    Array.map (fun (_, ys) -> ys.(1)) pairs )

let compute ?(output_shift = 0.0) ?(points = 201) (ctx : Technique.ctx) =
  let open Waveform in
  let region = Technique.noiseless_critical_region ctx in
  let ts = Technique.sample_times region points in
  let vin = Array.map (Wave.value_at ctx.noiseless_in) ts in
  (* Shift the output earlier: v_out_shifted(t) = v_out(t + shift). *)
  let vout =
    Array.map
      (fun tk -> Wave.value_at ctx.noiseless_out (tk +. output_shift))
      ts
  in
  let din = Numerics.Interp.derivative ts vin in
  let dout = Numerics.Interp.derivative ts vout in
  (* Guard the ratio against the vanishing input slope at the very edge
     of the region: treat slopes below 1e-6 of the peak as zero. *)
  let din_peak = Array.fold_left (fun a d -> Float.max a (abs_float d)) 0.0 din in
  let eps = 1e-6 *. din_peak in
  let rho =
    Array.init points (fun k ->
        if abs_float din.(k) <= eps then 0.0 else dout.(k) /. din.(k))
  in
  let drho_dt = Numerics.Interp.derivative ts rho in
  let drho_dv =
    Array.init points (fun k ->
        if abs_float din.(k) <= eps then 0.0 else drho_dt.(k) /. din.(k))
  in
  let v_grid, rho_by_v, drho_by_v = build_by_voltage vin [| rho; drho_dv |] in
  {
    region;
    ts;
    vin;
    rho;
    drho_dv;
    output_shift;
    v_grid;
    rho_by_v;
    drho_by_v;
  }

let lookup_by_voltage s ys v =
  let xs = s.v_grid in
  let n = Array.length xs in
  (* Outside the critical voltage band the sensitivity is zero by
     definition (the paper's filter). *)
  if n < 2 || v < xs.(0) || v > xs.(n - 1) then 0.0
  else Numerics.Interp.linear xs ys v

let rho_at_voltage s v = lookup_by_voltage s s.rho_by_v v
let drho_dv_at_voltage s v = lookup_by_voltage s s.drho_by_v v

let rho_at_time s t =
  let a, b = s.region in
  if t < a || t > b then 0.0 else Numerics.Interp.linear s.ts s.rho t

let overlap_shift (ctx : Technique.ctx) =
  let open Waveform in
  let in_region = Technique.noiseless_critical_region ctx in
  (* The receiver may be inverting or not (buffers); judge the output
     edge from the waveform itself. *)
  let out_dir = Wave.direction ctx.Technique.noiseless_out in
  let lo = Thresholds.v_low ctx.th and hi = Thresholds.v_high ctx.th in
  let from_level, to_level =
    match out_dir with
    | Wave.Rising -> (lo, hi)
    | Wave.Falling -> (hi, lo)
  in
  match
    ( Wave.first_crossing ctx.noiseless_out from_level,
      Wave.last_crossing ctx.noiseless_out to_level )
  with
  | Some a2, Some b2 when b2 > a2 ->
      let a1, b1 = in_region in
      if a2 <= b1 && a1 <= b2 then 0.0
      else begin
        (* Align the 0.5 Vdd crossings. *)
        let vm = Thresholds.v_mid ctx.th in
        match
          ( Wave.last_crossing ctx.noiseless_in vm,
            Wave.last_crossing ctx.noiseless_out vm )
        with
        | Some tmi, Some tmo -> tmo -. tmi
        | _ ->
            raise
              (Technique.Unsupported
                 "overlap_shift: missing 0.5 Vdd crossing")
      end
  | _ ->
      raise
        (Technique.Unsupported
           "overlap_shift: noiseless output does not span the thresholds")

let peak s =
  Array.fold_left (fun a r -> Float.max a (abs_float r)) 0.0 s.rho
