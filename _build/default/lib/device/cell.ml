type kind =
  | Inverter
  | Buffer of int
  | Nand2
  | Nor2

type t = { name : string; kind : kind; drive : int; wn : float; wp : float }

(* Unit inverter: 0.4 um NMOS, 0.8 um PMOS -- roughly balanced rise and
   fall drive at the c13 corner's 2.1x N/P mobility ratio. *)
let unit_wn = 0.4e-6
let unit_wp = 0.8e-6

let check_drive drive =
  if drive < 1 then invalid_arg "Cell: drive must be >= 1"

let inv (_proc : Process.t) ~drive =
  check_drive drive;
  {
    name = Printf.sprintf "INVx%d" drive;
    kind = Inverter;
    drive;
    wn = unit_wn *. float_of_int drive;
    wp = unit_wp *. float_of_int drive;
  }

let buf (_proc : Process.t) ~drive =
  check_drive drive;
  {
    name = Printf.sprintf "BUFx%d" drive;
    kind = Buffer 4;
    drive;
    wn = unit_wn *. float_of_int drive;
    wp = unit_wp *. float_of_int drive;
  }

(* Series NMOS stack doubled in width so the pull-down matches the
   inverter's worst-case drive; PMOS in parallel at inverter width. *)
let nand2 (_proc : Process.t) ~drive =
  check_drive drive;
  {
    name = Printf.sprintf "NAND2x%d" drive;
    kind = Nand2;
    drive;
    wn = 2.0 *. unit_wn *. float_of_int drive;
    wp = unit_wp *. float_of_int drive;
  }

let nor2 (_proc : Process.t) ~drive =
  check_drive drive;
  {
    name = Printf.sprintf "NOR2x%d" drive;
    kind = Nor2;
    drive;
    wn = unit_wn *. float_of_int drive;
    wp = 2.0 *. unit_wp *. float_of_int drive;
  }

let inv_x1 = inv Process.c13 ~drive:1
let inv_x4 = inv Process.c13 ~drive:4
let inv_x16 = inv Process.c13 ~drive:16
let inv_x64 = inv Process.c13 ~drive:64
let buf_x16 = buf Process.c13 ~drive:16

let inverting cell =
  match cell.kind with
  | Inverter | Nand2 | Nor2 -> true
  | Buffer _ -> false

let first_stage_drive cell divisor = Int.max 1 (cell.drive / divisor)

let input_cap (proc : Process.t) cell =
  let per_width = proc.Process.cg_per_width +. proc.Process.cgd_per_width in
  match cell.kind with
  | Inverter | Nand2 | Nor2 ->
      (* The timed pin sees one NMOS and one PMOS gate. *)
      per_width *. (cell.wn +. cell.wp)
  | Buffer divisor ->
      let d1 = float_of_int (first_stage_drive cell divisor) in
      per_width *. ((unit_wn +. unit_wp) *. d1)

let output_cap (proc : Process.t) cell =
  match cell.kind with
  | Inverter | Buffer _ ->
      proc.Process.cd_per_width *. (cell.wn +. cell.wp)
  | Nand2 ->
      (* Output sees one NMOS drain and both PMOS drains. *)
      proc.Process.cd_per_width *. (cell.wn +. (2.0 *. cell.wp))
  | Nor2 -> proc.Process.cd_per_width *. ((2.0 *. cell.wn) +. cell.wp)

(* Inverter stage expansion shared by Inverter and Buffer. *)
let stamp_inverter proc ~ckt ~input ~output ~vdd_node ~name ~wn ~wp =
  let open Spice in
  Circuit.mosfet ckt ~name:(name ^ ".mn") ~g:input ~d:output
    ~s:(Circuit.gnd ckt)
    (Mosfet.nmos proc ~width:wn);
  Circuit.mosfet ckt ~name:(name ^ ".mp") ~g:input ~d:output ~s:vdd_node
    (Mosfet.pmos proc ~width:wp);
  let w = wn +. wp in
  Circuit.capacitor ckt input (Circuit.gnd ckt)
    (proc.Process.cg_per_width *. w);
  Circuit.capacitor ckt input output (proc.Process.cgd_per_width *. w);
  Circuit.capacitor ckt output (Circuit.gnd ckt)
    (proc.Process.cd_per_width *. w)

let instantiate proc cell ~ckt ~input ~output ~vdd_node ~name =
  let open Spice in
  let gnd = Circuit.gnd ckt in
  match cell.kind with
  | Inverter ->
      stamp_inverter proc ~ckt ~input ~output ~vdd_node ~name ~wn:cell.wn
        ~wp:cell.wp
  | Buffer divisor ->
      let d1 = float_of_int (first_stage_drive cell divisor) in
      let mid = Circuit.node ckt (name ^ ".mid") in
      stamp_inverter proc ~ckt ~input ~output:mid ~vdd_node
        ~name:(name ^ ".s1") ~wn:(unit_wn *. d1) ~wp:(unit_wp *. d1);
      stamp_inverter proc ~ckt ~input:mid ~output ~vdd_node
        ~name:(name ^ ".s2") ~wn:cell.wn ~wp:cell.wp
  | Nand2 ->
      (* Pin A is the timed input; pin B is tied high (non-controlling)
         so the cell exercises its characterized arc. The series stack
         keeps the internal node explicit. *)
      let mid = Circuit.node ckt (name ^ ".x") in
      Circuit.mosfet ckt ~name:(name ^ ".mna") ~g:input ~d:output ~s:mid
        (Mosfet.nmos proc ~width:cell.wn);
      Circuit.mosfet ckt ~name:(name ^ ".mnb") ~g:vdd_node ~d:mid ~s:gnd
        (Mosfet.nmos proc ~width:cell.wn);
      Circuit.mosfet ckt ~name:(name ^ ".mpa") ~g:input ~d:output ~s:vdd_node
        (Mosfet.pmos proc ~width:cell.wp);
      (* The pin-B PMOS (gate high) never conducts; it only loads the
         output with junction capacitance, folded into the cap below. *)
      let wa = cell.wn +. cell.wp in
      Circuit.capacitor ckt input gnd (proc.Process.cg_per_width *. wa);
      Circuit.capacitor ckt input output (proc.Process.cgd_per_width *. wa);
      Circuit.capacitor ckt output gnd
        (proc.Process.cd_per_width *. (cell.wn +. (2.0 *. cell.wp)));
      Circuit.capacitor ckt mid gnd (proc.Process.cd_per_width *. cell.wn)
  | Nor2 ->
      (* Pin A timed; pin B tied low. Series PMOS stack with an explicit
         internal node; the pin-B NMOS never conducts. *)
      let mid = Circuit.node ckt (name ^ ".x") in
      Circuit.mosfet ckt ~name:(name ^ ".mpb") ~g:gnd ~d:mid ~s:vdd_node
        (Mosfet.pmos proc ~width:cell.wp);
      Circuit.mosfet ckt ~name:(name ^ ".mpa") ~g:input ~d:output ~s:mid
        (Mosfet.pmos proc ~width:cell.wp);
      Circuit.mosfet ckt ~name:(name ^ ".mna") ~g:input ~d:output ~s:gnd
        (Mosfet.nmos proc ~width:cell.wn);
      let wa = cell.wn +. cell.wp in
      Circuit.capacitor ckt input gnd (proc.Process.cg_per_width *. wa);
      Circuit.capacitor ckt input output (proc.Process.cgd_per_width *. wa);
      Circuit.capacitor ckt output gnd
        (proc.Process.cd_per_width *. ((2.0 *. cell.wn) +. cell.wp));
      Circuit.capacitor ckt mid gnd (proc.Process.cd_per_width *. cell.wp)

let attach_supply proc ckt =
  let open Spice in
  let vdd = Circuit.node ckt "vdd" in
  Circuit.vsource ckt vdd (Source.dc proc.Process.vdd);
  vdd
