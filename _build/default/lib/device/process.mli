(** Process corner parameters for the alpha-power-law devices.

    The paper used a TSMC 0.13 um library; this is a synthetic
    0.13 um-class corner with the same supply (1.2 V), on-current
    densities and velocity-saturation index typical of that node. *)

type mos_params = {
  vth : float;     (** threshold voltage magnitude, V *)
  alpha : float;   (** velocity-saturation index (Sakurai-Newton) *)
  ksat : float;    (** saturation transconductance, A per meter of width
                       at 1 V overdrive: Idsat = ksat * W * Vov^alpha *)
  kv : float;      (** Vdsat coefficient: Vdsat = kv * Vov^(alpha/2) *)
  lambda : float;  (** channel-length modulation, 1/V *)
  goff : float;    (** off-state leakage conductance, S per meter width *)
}

type t = {
  name : string;
  vdd : float;
  nmos : mos_params;
  pmos : mos_params;
  cg_per_width : float;   (** gate-to-ground capacitance, F/m of width *)
  cgd_per_width : float;  (** gate-to-drain (Miller) capacitance, F/m *)
  cd_per_width : float;   (** drain junction capacitance, F/m *)
}

val c13 : t
(** The default (typical) 0.13 um-class corner used throughout the
    experiments. *)

val c13_fast : t
(** Fast corner: +15% drive, -5% threshold magnitude. *)

val c13_slow : t
(** Slow corner: -15% drive, +5% threshold magnitude. *)

val scale_corner : name:string -> drive:float -> vth:float -> t -> t
(** Derive a corner by scaling drive currents and threshold voltages. *)

val thresholds : t -> Waveform.Thresholds.t
(** Standard 10/50/90 measurement thresholds at this corner's supply. *)
