type mos_params = {
  vth : float;
  alpha : float;
  ksat : float;
  kv : float;
  lambda : float;
  goff : float;
}

type t = {
  name : string;
  vdd : float;
  nmos : mos_params;
  pmos : mos_params;
  cg_per_width : float;
  cgd_per_width : float;
  cd_per_width : float;
}

(* ksat is normalized to a 1 V overdrive; at Vdd = 1.2 V the overdrive
   is 0.9 V, giving Ion(N) ~ 600 uA/um and Ion(P) ~ 280 uA/um --
   representative of a 0.13 um process. *)
let c13 =
  {
    name = "c13";
    vdd = 1.2;
    nmos =
      {
        vth = 0.30;
        alpha = 1.3;
        ksat = 690e-6 /. 1e-6; (* A/m at 1 V overdrive *)
        kv = 0.45;
        lambda = 0.06;
        goff = 1e-9 /. 1e-6;
      };
    pmos =
      {
        vth = 0.32;
        alpha = 1.40;
        ksat = 330e-6 /. 1e-6;
        kv = 0.50;
        lambda = 0.06;
        goff = 1e-9 /. 1e-6;
      };
    cg_per_width = 0.75e-15 /. 1e-6;
    cgd_per_width = 0.25e-15 /. 1e-6;
    cd_per_width = 0.80e-15 /. 1e-6;
  }

let thresholds p = Waveform.Thresholds.make ~vdd:p.vdd ()

let scale_corner ~name ~drive ~vth base =
  let scale_mos (m : mos_params) =
    { m with ksat = m.ksat *. drive; vth = m.vth *. vth }
  in
  { base with name; nmos = scale_mos base.nmos; pmos = scale_mos base.pmos }

let c13_fast = scale_corner ~name:"c13_fast" ~drive:1.15 ~vth:0.95 c13
let c13_slow = scale_corner ~name:"c13_slow" ~drive:0.85 ~vth:1.05 c13
