lib/device/mosfet.ml: Process
