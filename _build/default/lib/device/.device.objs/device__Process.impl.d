lib/device/process.ml: Waveform
