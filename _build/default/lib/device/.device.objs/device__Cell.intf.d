lib/device/cell.mli: Process Spice
