lib/device/cell.ml: Circuit Int Mosfet Printf Process Source Spice
