lib/device/mosfet.mli: Process Spice
