lib/device/process.mli: Waveform
