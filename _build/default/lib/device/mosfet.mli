(** Alpha-power-law MOSFET evaluation (Sakurai-Newton model).

    Currents follow the channel convention used by [Spice.Circuit]:
    positive [ids] flows from the drain terminal into the device. The
    closures are C1-smooth across the cutoff, triode and saturation
    boundaries (required for reliable Newton iteration). *)

val nmos : Process.t -> width:float -> Spice.Circuit.mosfet_eval
(** [nmos process ~width] with [width] in meters. Source/drain swap
    (vds < 0) is handled by symmetry. Raises [Invalid_argument] on a
    non-positive width. *)

val pmos : Process.t -> width:float -> Spice.Circuit.mosfet_eval

val nmos_id : Process.t -> width:float -> vgs:float -> vds:float -> float
(** Channel current only (vds >= 0 expected; symmetric otherwise);
    convenience for characterization tests and I-V plotting. *)

val pmos_id : Process.t -> width:float -> vsg:float -> vsd:float -> float
(** Magnitude of PMOS current for positive source-gate / source-drain
    overdrives. *)
