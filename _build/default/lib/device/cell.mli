(** Standard cells and their transistor-level expansion.

    The experimental setup of the paper (Figure 1) uses inverters of
    drive strengths x1, x4, x16 and x64 from a 0.13 um library; these
    are reconstructed here by width scaling of a unit inverter. The
    library also carries two-input NAND/NOR gates (characterized per
    pin with the other input held at its controlling-complement value)
    and two-stage buffers, whose large intrinsic delay produces the
    non-overlapping input/output transitions that break WLS5 and
    motivate SGDP's alignment step. *)

type kind =
  | Inverter
  | Buffer of int
      (** two-stage buffer; the payload is the first stage's drive as a
          fraction divisor (stage1 drive = drive / divisor, min 1) *)
  | Nand2
  | Nor2

type t = {
  name : string;
  kind : kind;
  drive : int;     (** drive-strength multiple of the unit inverter *)
  wn : float;      (** NMOS width of the output stage, m *)
  wp : float;      (** PMOS width of the output stage, m *)
}

val inv : Process.t -> drive:int -> t
(** [inv process ~drive] is an inverter of the given strength. Raises
    [Invalid_argument] when [drive < 1]. *)

val buf : Process.t -> drive:int -> t
(** Two-stage buffer: INV(drive/4, min 1) -> INV(drive). *)

val nand2 : Process.t -> drive:int -> t
(** Series NMOS stack (2x width to compensate), parallel PMOS. *)

val nor2 : Process.t -> drive:int -> t
(** Parallel NMOS, series PMOS stack (2x width). *)

val inv_x1 : t
val inv_x4 : t
val inv_x16 : t
val inv_x64 : t
(** The Figure-1 cells, on the [Process.c13] corner. *)

val buf_x16 : t
(** The non-overlap experiment's receiver. *)

val inverting : t -> bool
(** Whether the characterized arc is negative-unate (true for all kinds
    except buffers). *)

val input_cap : Process.t -> t -> float
(** Input (gate) capacitance of the cell's timed pin, farads. *)

val output_cap : Process.t -> t -> float
(** Parasitic drain capacitance the cell adds to its output net. *)

val instantiate :
  Process.t -> t -> ckt:Spice.Circuit.t ->
  input:Spice.Circuit.node -> output:Spice.Circuit.node ->
  vdd_node:Spice.Circuit.node -> name:string -> unit
(** Expand the cell into the circuit: channel devices plus gate, Miller
    and junction capacitances. For NAND2/NOR2 the timed pin is input A;
    pin B is tied to its non-controlling rail (so the cell behaves as
    its characterized single-input arc). [vdd_node] must be held at the
    supply by the caller (one shared DC source per circuit). *)

val attach_supply : Process.t -> Spice.Circuit.t -> Spice.Circuit.node
(** Create (or reuse) the "vdd" node and bind it to a DC source at the
    process supply. Call once per circuit. *)
