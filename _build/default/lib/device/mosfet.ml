(* Core alpha-power evaluation in NMOS convention with vds >= 0.
   Returns (id, did_dvgs, did_dvds). *)
let alpha_power (p : Process.mos_params) ~width ~vgs ~vds =
  let vov = vgs -. p.vth in
  if vov <= 0.0 then (0.0, 0.0, 0.0)
  else begin
    let idsat = p.ksat *. width *. (vov ** p.alpha) in
    let didsat_dvov = p.alpha *. idsat /. vov in
    let vdsat = p.kv *. (vov ** (p.alpha /. 2.0)) in
    let dvdsat_dvov = p.alpha /. 2.0 *. vdsat /. vov in
    let clm = 1.0 +. (p.lambda *. vds) in
    if vds >= vdsat then
      (* Saturation. *)
      ( idsat *. clm,
        didsat_dvov *. clm,
        idsat *. p.lambda )
    else begin
      (* Triode: id = idsat * u (2 - u) * clm with u = vds/vdsat.
         Continuous in value and slope at vds = vdsat. *)
      let u = vds /. vdsat in
      let f = u *. (2.0 -. u) in
      let df_du = 2.0 -. (2.0 *. u) in
      let du_dvds = 1.0 /. vdsat in
      let du_dvdsat = -.vds /. (vdsat *. vdsat) in
      let id = idsat *. f *. clm in
      let did_dvgs =
        (didsat_dvov *. f *. clm)
        +. (idsat *. df_du *. du_dvdsat *. dvdsat_dvov *. clm)
      in
      let did_dvds =
        (idsat *. df_du *. du_dvds *. clm) +. (idsat *. f *. p.lambda)
      in
      (id, did_dvgs, did_dvds)
    end
  end

(* Terminal-level NMOS: handles vd < vs by swapping source and drain.
   Adds a small leakage conductance so the Jacobian never goes fully
   singular when the device is off. *)
let nmos_terminal (p : Process.mos_params) ~width ~vg ~vd ~vs =
  let gleak = p.goff *. width in
  if vd >= vs then begin
    let id, dg, dd = alpha_power p ~width ~vgs:(vg -. vs) ~vds:(vd -. vs) in
    let ids = id +. (gleak *. (vd -. vs)) in
    let dids_dvg = dg in
    let dids_dvd = dd +. gleak in
    let dids_dvs = -.dg -. dd -. gleak in
    (ids, dids_dvg, dids_dvd, dids_dvs)
  end
  else begin
    (* Swapped: the physical source is the drain terminal. *)
    let id, dg, dd = alpha_power p ~width ~vgs:(vg -. vd) ~vds:(vs -. vd) in
    let ids = -.id +. (gleak *. (vd -. vs)) in
    let dids_dvg = -.dg in
    let dids_dvs = -.dd -. gleak in
    let dids_dvd = dg +. dd +. gleak in
    (ids, dids_dvg, dids_dvd, dids_dvs)
  end

let nmos (proc : Process.t) ~width =
  if width <= 0.0 then invalid_arg "Mosfet.nmos: width must be positive";
  let p = proc.Process.nmos in
  fun ~vg ~vd ~vs -> nmos_terminal p ~width ~vg ~vd ~vs

(* PMOS as a mirrored NMOS: ids_p(vg, vd, vs) = -ids_n(-vg, -vd, -vs)
   evaluated with PMOS magnitude parameters. The chain rule flips the
   sign twice, so the terminal partials carry over unchanged. *)
let pmos (proc : Process.t) ~width =
  if width <= 0.0 then invalid_arg "Mosfet.pmos: width must be positive";
  let p = proc.Process.pmos in
  fun ~vg ~vd ~vs ->
    let ids, dg, dd, ds =
      nmos_terminal p ~width ~vg:(-.vg) ~vd:(-.vd) ~vs:(-.vs)
    in
    (-.ids, dg, dd, ds)

let nmos_id (proc : Process.t) ~width ~vgs ~vds =
  let ids, _, _, _ =
    nmos_terminal proc.Process.nmos ~width ~vg:vgs ~vd:vds ~vs:0.0
  in
  ids

let pmos_id (proc : Process.t) ~width ~vsg ~vsd =
  let eval = pmos proc ~width in
  let vdd = proc.Process.vdd in
  (* Source pinned at vdd: vsg = vdd - vg, vsd = vdd - vd. *)
  let ids, _, _, _ = eval ~vg:(vdd -. vsg) ~vd:(vdd -. vsd) ~vs:vdd in
  abs_float ids
