type spec = { line : Rcline.spec; nlines : int; cm_total : float }

let make ~line ~nlines ~cm_total =
  if nlines < 2 then invalid_arg "Coupled.make: need at least 2 lines";
  if cm_total <= 0.0 then invalid_arg "Coupled.make: cm_total must be positive";
  { line; nlines; cm_total }

let victim_coupling_per_boundary spec =
  spec.cm_total /. float_of_int spec.line.Rcline.nsegs

let build ckt ~prefix ~nears spec =
  if List.length nears <> spec.nlines then
    invalid_arg "Coupled.build: one near node required per line";
  let open Spice in
  let line_prefix k = Printf.sprintf "%s%d" prefix k in
  let fars =
    List.mapi
      (fun k near ->
        Rcline.build ckt ~prefix:(line_prefix k) ~near spec.line)
      nears
  in
  (* Couple boundary i of line k to boundary i of line k+1, for
     i = 1 .. nsegs (the driven ends are held by their drivers, so the
     first coupled boundary is the first interior node). *)
  let cm = victim_coupling_per_boundary spec in
  let boundary k i = Circuit.node ckt (Printf.sprintf "%s.%d" (line_prefix k) i) in
  for k = 0 to spec.nlines - 2 do
    for i = 1 to spec.line.Rcline.nsegs do
      Circuit.capacitor ckt (boundary k i) (boundary (k + 1) i) cm
    done
  done;
  fars
