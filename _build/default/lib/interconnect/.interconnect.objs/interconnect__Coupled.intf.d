lib/interconnect/coupled.mli: Rcline Spice
