lib/interconnect/noise_bound.ml: List Rcline Rctree
