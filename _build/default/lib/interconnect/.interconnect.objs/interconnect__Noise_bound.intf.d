lib/interconnect/noise_bound.mli: Rcline Rctree
