lib/interconnect/rcline.mli: Spice
