lib/interconnect/rcline.ml: Circuit List Printf Spice
