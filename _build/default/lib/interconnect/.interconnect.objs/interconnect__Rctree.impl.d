lib/interconnect/rctree.ml: Array Hashtbl List Printf Rcline
