lib/interconnect/awe.ml: Array Float List Numerics Spice
