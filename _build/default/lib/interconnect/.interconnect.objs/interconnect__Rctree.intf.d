lib/interconnect/rctree.mli: Rcline
