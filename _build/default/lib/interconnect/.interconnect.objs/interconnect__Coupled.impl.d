lib/interconnect/coupled.ml: Circuit List Printf Rcline Spice
