lib/interconnect/awe.mli: Spice
