type moments = float array

(* Build the MNA G and C matrices of a linear circuit. Unknowns: node
   voltages then voltage-source branch currents, exactly like the
   transient engine. *)
let build_mna ckt =
  let n = Spice.Circuit.num_nodes ckt in
  if Spice.Circuit.mosfets ckt <> [] then
    invalid_arg "Awe: circuit contains nonlinear devices";
  let vsrcs = Spice.Circuit.vsources ckt in
  let m = List.length vsrcs in
  let nu = n + m in
  let g = Numerics.Matrix.create nu nu in
  let c = Numerics.Matrix.create nu nu in
  let idx (node : Spice.Circuit.node) = (node :> int) in
  let stamp mat a b v =
    let a = idx a and b = idx b in
    if a >= 0 then Numerics.Matrix.add_to mat a a v;
    if b >= 0 then Numerics.Matrix.add_to mat b b v;
    if a >= 0 && b >= 0 then begin
      Numerics.Matrix.add_to mat a b (-.v);
      Numerics.Matrix.add_to mat b a (-.v)
    end
  in
  List.iter (fun (a, b, r) -> stamp g a b (1.0 /. r)) (Spice.Circuit.resistors ckt);
  List.iter (fun (a, b, cv) -> stamp c a b cv) (Spice.Circuit.capacitors ckt);
  List.iteri
    (fun j (node, _) ->
      let row = n + j in
      let ni = idx node in
      Numerics.Matrix.add_to g ni row 1.0;
      Numerics.Matrix.add_to g row ni 1.0)
    vsrcs;
  (* A tiny gmin keeps floating nodes from making G singular. *)
  for i = 0 to n - 1 do
    Numerics.Matrix.add_to g i i 1e-12
  done;
  (g, c, n, m, vsrcs)

let moments_of_circuit ckt ~input ~output ~order =
  if order < 0 then invalid_arg "Awe.moments_of_circuit: negative order";
  let names = Spice.Circuit.node_names ckt in
  if not (List.mem input names) then
    invalid_arg ("Awe: unknown node " ^ input);
  if not (List.mem output names) then
    invalid_arg ("Awe: unknown node " ^ output);
  let in_node = Spice.Circuit.node ckt input in
  let out_node = Spice.Circuit.node ckt output in
  let g, c, n, m, vsrcs = build_mna ckt in
  let src_index =
    let rec find j = function
      | [] -> invalid_arg ("Awe: no voltage source on node " ^ input)
      | ((nd : Spice.Circuit.node), _) :: rest ->
          if (nd :> int) = (in_node :> int) then j else find (j + 1) rest
    in
    find 0 vsrcs
  in
  let lu = Numerics.Matrix.lu_factor g in
  let nu = n + m in
  let b = Array.make nu 0.0 in
  b.(n + src_index) <- 1.0;
  let out_i = (out_node :> int) in
  let x = ref (Numerics.Matrix.lu_solve lu b) in
  let ms = Array.make (order + 1) 0.0 in
  ms.(0) <- !x.(out_i);
  for k = 1 to order do
    let rhs = Array.map (fun v -> -.v) (Numerics.Matrix.mul_vec c !x) in
    x := Numerics.Matrix.lu_solve lu rhs;
    ms.(k) <- !x.(out_i)
  done;
  ms

type model = {
  poles : float array;
  residues : float array;
  dc : float;
}

let one_pole ms =
  if Array.length ms < 2 then failwith "Awe.pade: need at least 2 moments";
  let m0 = ms.(0) and m1 = ms.(1) in
  if m1 = 0.0 then failwith "Awe.pade: zero first moment";
  let p = m0 /. m1 in
  if p >= 0.0 then failwith "Awe.pade: unstable single pole";
  { poles = [| p |]; residues = [| -.m0 *. p |]; dc = m0 }

let two_pole ms =
  if Array.length ms < 4 then None
  else begin
    let m0 = ms.(0) and m1 = ms.(1) and m2 = ms.(2) and m3 = ms.(3) in
    (* Denominator 1 + b1 s + b2 s^2 from the moment Hankel system. *)
    let det = (m0 *. m2) -. (m1 *. m1) in
    if abs_float det < 1e-300 then None
    else begin
      let b2 = ((m1 *. m3) -. (m2 *. m2)) /. det in
      let b1 = ((m1 *. m2) -. (m0 *. m3)) /. det in
      (* Poles: roots of b2 s^2 + b1 s + 1 = 0, required real negative. *)
      let disc = (b1 *. b1) -. (4.0 *. b2) in
      if disc <= 0.0 || b2 = 0.0 then None
      else begin
        let sq = sqrt disc in
        let p1 = (-.b1 +. sq) /. (2.0 *. b2) in
        let p2 = (-.b1 -. sq) /. (2.0 *. b2) in
        if p1 >= 0.0 || p2 >= 0.0 then None
        else begin
          (* Residues from m0 = -k1/p1 - k2/p2, m1 = -k1/p1^2 - k2/p2^2. *)
          let a = Numerics.Matrix.of_arrays
              [| [| -1.0 /. p1; -1.0 /. p2 |];
                 [| -1.0 /. (p1 *. p1); -1.0 /. (p2 *. p2) |] |]
          in
          match Numerics.Matrix.solve a [| m0; m1 |] with
          | exception Numerics.Matrix.Singular _ -> None
          | k -> Some { poles = [| p1; p2 |]; residues = k; dc = m0 }
        end
      end
    end
  end

let pade ?(q = 2) ms =
  match q with
  | 1 -> one_pole ms
  | 2 -> (
      match two_pole ms with Some m -> m | None -> one_pole ms)
  | _ -> invalid_arg "Awe.pade: q must be 1 or 2"

let step_response m t =
  if t < 0.0 then 0.0
  else
    let acc = ref m.dc in
    Array.iteri
      (fun i p -> acc := !acc +. (m.residues.(i) /. p *. exp (p *. t)))
      m.poles;
    !acc

let delay ?(frac = 0.5) m =
  if m.dc = 0.0 then failwith "Awe.delay: zero DC gain";
  let target = frac *. m.dc in
  let tau =
    Array.fold_left (fun a p -> Float.max a (1.0 /. abs_float p)) 0.0 m.poles
  in
  let f t = step_response m t -. target in
  match Numerics.Roots.find_bracket f ~lo:0.0 ~hi:(30.0 *. tau) ~steps:3000 with
  | Some (a, b) -> Numerics.Roots.brent ~tol:(tau *. 1e-9) f a b
  | None -> failwith "Awe.delay: response never reaches the target"

let elmore_of_moments ms =
  if Array.length ms < 2 then invalid_arg "Awe.elmore_of_moments";
  -.ms.(1)
