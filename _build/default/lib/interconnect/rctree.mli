(** RC trees: Elmore delay and higher transfer-function moments.

    The paper's E4 technique is "inspired by the Elmore delay idea
    [2]"; this module provides the Elmore machinery both as that
    historical baseline and as the interconnect delay estimator used by
    the STA engine for uncoupled nets. *)

type t = {
  name : string;
  r : float;          (** resistance of the edge from the parent; 0 at root *)
  c : float;          (** grounded capacitance at this node *)
  children : t list;
}

val node : ?r:float -> ?c:float -> string -> t list -> t
(** Convenience constructor; negative [r] or [c] raise
    [Invalid_argument]. *)

val of_line : name:string -> Rcline.spec -> t
(** The ladder discretization of a uniform line, as a degenerate tree. *)

val total_cap : t -> float

val elmore : t -> (string * float) list
(** Elmore delay (first transfer moment magnitude) from the root
    driving point to every node, in depth-first order. *)

val elmore_to : t -> string -> float
(** Raises [Not_found] for an unknown node name. *)

val moments : order:int -> t -> (string * float array) list
(** [moments ~order tree] gives per node the transfer moments
    m_1 .. m_order of V(s)/V_root(s) (m_1 = -Elmore). *)

val d2m_delay : t -> string -> float
(** Alpert's D2M two-moment delay metric ln(2) * m1^2 / sqrt(m2);
    tighter than ln(2)*Elmore on far-end nodes. *)
