(** Asymptotic waveform evaluation (AWE): moment matching on arbitrary
    linear RC circuits.

    Where {!Rctree} computes moments on tree topologies, this module
    works on any [Spice.Circuit.t] containing only linear elements —
    including the coupled buses of the noise experiments — by the
    classical MNA recursion

      G x_0 = b,   G x_k = -C x_{k-1}

    so that the voltage transfer from a chosen source to any node is
    H(s) = sum_k m_k s^k with m_k = x_k(node). A Pade approximation
    with q real poles then gives closed-form step responses and delay
    estimates orders of magnitude faster than transient simulation —
    the classical fast path of interconnect analysis (Pillage &
    Rohrer's AWE). *)

type moments = float array
(** m_0 .. m_n of a voltage transfer function (m_0 = 1 for a
    DC-connected RC path). *)

val moments_of_circuit :
  Spice.Circuit.t -> input:string -> output:string -> order:int -> moments
(** [moments_of_circuit ckt ~input ~output ~order] computes
    m_0 .. m_order of V(output)/V(input), where [input] names a node
    driven by a voltage source (the stimulus; every other source is
    zeroed). Raises [Invalid_argument] if the circuit contains MOSFETs,
    if [input] has no voltage source, or if a name is unknown. *)

type model = {
  poles : float array;    (** real, negative for passive RC *)
  residues : float array;
  dc : float;             (** H(0) *)
}

val pade : ?q:int -> moments -> model
(** Fit a [q]-pole (default 2; 1 and 2 supported) model to the leading moments.
    Falls back to a single-pole fit when the higher-order system is
    numerically singular or produces non-negative / complex poles
    (standard AWE practice). Raises [Failure] when even the one-pole
    fit is impossible (zero first moment). *)

val step_response : model -> float -> float
(** [step_response m t] is the response at time [t >= 0] to a unit step
    through the modeled transfer (response to H at DC = [dc]). *)

val delay : ?frac:float -> model -> float
(** Time for the unit-step response to reach [frac] (default 0.5) of
    its final value. Raises [Failure] if the response never does
    (non-monotone model with pathological residues). *)

val elmore_of_moments : moments -> float
(** -m_1: the Elmore delay, for cross-checking against {!Rctree}. *)
