let bound tree ~couplings ~aggressor_slew_rate =
  if aggressor_slew_rate <= 0.0 then
    invalid_arg "Noise_bound: slew rate must be positive";
  let known = Rctree.elmore tree |> List.map fst in
  List.iter
    (fun (name, cm) ->
      if cm < 0.0 then invalid_arg "Noise_bound: negative coupling";
      if not (List.mem name known) then
        invalid_arg ("Noise_bound: unknown node " ^ name))
    couplings;
  (* The injected current at node j is Cm_j * mu; the voltage bound at i
     is sum_j R(i,j) * I_j, which is exactly the Elmore-style
     shared-path-resistance sum with "capacitances" Cm_j * mu.
     Reuse the tree moment machinery by building a weight tree. *)
  let weight name =
    List.fold_left
      (fun acc (n, cm) -> if n = name then acc +. (cm *. aggressor_slew_rate) else acc)
      0.0 couplings
  in
  let rec rebuild (t : Rctree.t) =
    Rctree.node ~r:t.Rctree.r ~c:(weight t.Rctree.name) t.Rctree.name
      (List.map rebuild t.Rctree.children)
  in
  (* With c_j = Cm_j * mu, the "Elmore delay" of the rebuilt tree is the
     noise bound in volts. *)
  Rctree.elmore (rebuild tree)

let bound_at tree ~couplings ~aggressor_slew_rate name =
  match List.assoc_opt name (bound tree ~couplings ~aggressor_slew_rate) with
  | Some v -> v
  | None -> raise Not_found

let line_bound ~driver_resistance ~line ~cm_total ~aggressor_slew_rate =
  if driver_resistance <= 0.0 then
    invalid_arg "Noise_bound.line_bound: driver resistance";
  let n = line.Rcline.nsegs in
  let rseg = line.Rcline.rtotal /. float_of_int n in
  let cm = cm_total /. float_of_int n in
  (* Far end: R(far, j) = driver + j * rseg for the j-th boundary. *)
  let acc = ref 0.0 in
  for j = 1 to n do
    acc := !acc +. ((driver_resistance +. (rseg *. float_of_int j)) *. cm)
  done;
  !acc *. aggressor_slew_rate
