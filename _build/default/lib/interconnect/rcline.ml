type spec = { rtotal : float; ctotal : float; nsegs : int }

let validate { rtotal; ctotal; nsegs } =
  if rtotal <= 0.0 then invalid_arg "Rcline: rtotal must be positive";
  if ctotal <= 0.0 then invalid_arg "Rcline: ctotal must be positive";
  if nsegs < 1 then invalid_arg "Rcline: nsegs must be >= 1"

let spec_of_per_section ~r_per_seg ~c_per_seg ~nsegs =
  let s =
    {
      rtotal = r_per_seg *. float_of_int nsegs;
      ctotal = c_per_seg *. float_of_int nsegs;
      nsegs;
    }
  in
  validate s;
  s

let section_nodes ~prefix spec =
  validate spec;
  List.init (spec.nsegs + 1) (fun i -> Printf.sprintf "%s.%d" prefix i)

let build ckt ~prefix ~near spec =
  validate spec;
  let open Spice in
  let n = spec.nsegs in
  let rseg = spec.rtotal /. float_of_int n in
  let cseg = spec.ctotal /. float_of_int n in
  let gnd = Circuit.gnd ckt in
  let boundary i =
    if i = 0 then near else Circuit.node ckt (Printf.sprintf "%s.%d" prefix i)
  in
  (* End boundaries carry half a section's capacitance. *)
  Circuit.capacitor ckt (boundary 0) gnd (cseg /. 2.0);
  for i = 1 to n do
    Circuit.resistor ckt (boundary (i - 1)) (boundary i) rseg;
    let c = if i = n then cseg /. 2.0 else cseg in
    Circuit.capacitor ckt (boundary i) gnd c
  done;
  boundary n

let elmore spec =
  validate spec;
  spec.rtotal *. spec.ctotal /. 2.0

let elmore_discrete spec =
  validate spec;
  let n = spec.nsegs in
  let rseg = spec.rtotal /. float_of_int n in
  let cseg = spec.ctotal /. float_of_int n in
  (* Elmore to the far end: sum over sections of (resistance from the
     source) * (capacitance at each boundary). *)
  let acc = ref 0.0 in
  for i = 1 to n do
    let rpath = rseg *. float_of_int i in
    let c = if i = n then cseg /. 2.0 else cseg in
    acc := !acc +. (rpath *. c)
  done;
  !acc
