(** Distributed RC lines as cascaded pi-sections.

    Figure 1 of the paper models each 1000 um (Config I) or 500 um
    (Config II) wire as a uniform RC ladder with R = 8.5 ohm and
    C = 4.8 fF per section; [build] generalizes that to any section
    count while conserving total R and C. *)

type spec = {
  rtotal : float; (** total series resistance, ohms *)
  ctotal : float; (** total ground capacitance, farads *)
  nsegs : int;    (** number of pi sections (>= 1) *)
}

val spec_of_per_section : r_per_seg:float -> c_per_seg:float -> nsegs:int -> spec
(** Directly from the paper's per-section values. *)

val section_nodes : prefix:string -> spec -> string list
(** The boundary node names [prefix.0 .. prefix.n]; [prefix.0] is the
    near (driven) end, [prefix.n] the far end. *)

val build :
  Spice.Circuit.t -> prefix:string -> near:Spice.Circuit.node -> spec ->
  Spice.Circuit.node
(** Stamp the ladder into the circuit starting at [near]; returns the
    far-end node. Interior boundary nodes get C/n to ground, the two end
    boundaries C/2n each (standard pi discretization). Raises
    [Invalid_argument] on a non-positive spec field. *)

val elmore : spec -> float
(** Closed-form Elmore delay of the *continuous* uniform line seen from
    an ideal source: R*C/2. *)

val elmore_discrete : spec -> float
(** Elmore delay of the discretized ladder to its far end; converges to
    [elmore] as [nsegs] grows. *)
