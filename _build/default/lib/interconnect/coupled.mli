(** Capacitively coupled parallel buses.

    Reproduces the Figure-1 geometry: victim and aggressor lines of
    identical RC discretization with the total coupling capacitance
    distributed uniformly along the line. Adjacent lines couple; line 0
    is conventionally the victim. *)

type spec = {
  line : Rcline.spec; (** per-line RC ladder, identical for all lines *)
  nlines : int;       (** >= 2 *)
  cm_total : float;   (** total coupling cap between each adjacent pair *)
}

val make : line:Rcline.spec -> nlines:int -> cm_total:float -> spec
(** Raises [Invalid_argument] when [nlines < 2] or [cm_total <= 0]. *)

val build :
  Spice.Circuit.t -> prefix:string -> nears:Spice.Circuit.node list -> spec ->
  Spice.Circuit.node list
(** Stamp all lines (line [k] gets node prefix "<prefix><k>") and the
    coupling caps; returns the far-end nodes in line order. [nears]
    must supply one driven node per line. *)

val victim_coupling_per_boundary : spec -> float
(** The Cm stamped at each of the [nsegs] coupled boundaries. *)
