type t = { name : string; r : float; c : float; children : t list }

let node ?(r = 0.0) ?(c = 0.0) name children =
  if r < 0.0 then invalid_arg "Rctree.node: negative resistance";
  if c < 0.0 then invalid_arg "Rctree.node: negative capacitance";
  { name; r; c; children }

let of_line ~name (spec : Rcline.spec) =
  let n = spec.Rcline.nsegs in
  let rseg = spec.Rcline.rtotal /. float_of_int n in
  let cseg = spec.Rcline.ctotal /. float_of_int n in
  let rec chain i =
    let c = if i = n then cseg /. 2.0 else cseg in
    let children = if i = n then [] else [ chain (i + 1) ] in
    { name = Printf.sprintf "%s.%d" name i; r = rseg; c; children }
  in
  { name = name ^ ".0"; r = 0.0; c = cseg /. 2.0; children = [ chain 1 ] }

let rec total_cap t = t.c +. List.fold_left (fun a ch -> a +. total_cap ch) 0.0 t.children

(* One moment-propagation pass: given per-node weights w (initially the
   capacitances), produce per-node sums  m(i) = sum over edges e on the
   root->i path of R_e * (total weight in the subtree hanging under e).
   This is the classical O(n) tree-moment recursion. *)
let propagate weights t =
  let out = ref [] in
  (* Bottom-up subtree weight, top-down accumulation. *)
  let rec subtree_weight t =
    weights t.name
    +. List.fold_left (fun a ch -> a +. subtree_weight ch) 0.0 t.children
  in
  let rec walk acc t =
    (* acc = sum over path edges of R_e * S_e, already including t.r *)
    out := (t.name, acc) :: !out;
    List.iter (fun ch -> walk (acc +. (ch.r *. subtree_weight ch)) ch) t.children
  in
  walk 0.0 t;
  List.rev !out

let elmore t =
  let caps = Hashtbl.create 64 in
  let rec collect t =
    Hashtbl.replace caps t.name t.c;
    List.iter collect t.children
  in
  collect t;
  propagate (fun n -> Hashtbl.find caps n) t

let elmore_to t name =
  match List.assoc_opt name (elmore t) with
  | Some d -> d
  | None -> raise Not_found

let moments ~order t =
  if order < 1 then invalid_arg "Rctree.moments: order must be >= 1";
  let caps = Hashtbl.create 64 in
  let rec collect t =
    Hashtbl.replace caps t.name t.c;
    List.iter collect t.children
  in
  collect t;
  (* m_k(i) = -sum_e R_e * S_e(k)  with subtree weights
     w_k(j) = C_j * m_{k-1}(j), m_0 = 1. *)
  let prev = Hashtbl.create 64 in
  let rec init t =
    Hashtbl.replace prev t.name 1.0;
    List.iter init t.children
  in
  init t;
  let results = Hashtbl.create 64 in
  let record name k v =
    let arr =
      match Hashtbl.find_opt results name with
      | Some a -> a
      | None ->
          let a = Array.make order 0.0 in
          Hashtbl.replace results name a;
          a
    in
    arr.(k - 1) <- v
  in
  for k = 1 to order do
    let w name = Hashtbl.find caps name *. Hashtbl.find prev name in
    let sums = propagate w t in
    List.iter (fun (name, s) -> record name k (-.s)) sums;
    List.iter (fun (name, s) -> Hashtbl.replace prev name (-.s)) sums
  done;
  (* Emit in the tree's depth-first order. *)
  let out = ref [] in
  let rec walk t =
    out := (t.name, Hashtbl.find results t.name) :: !out;
    List.iter walk t.children
  in
  walk t;
  List.rev !out

let d2m_delay t name =
  let ms = moments ~order:2 t in
  match List.assoc_opt name ms with
  | None -> raise Not_found
  | Some m ->
      let m1 = m.(0) and m2 = m.(1) in
      if m2 <= 0.0 then log 2.0 *. abs_float m1
      else log 2.0 *. (m1 *. m1 /. sqrt m2)
