(** Devgan-style crosstalk noise upper bounds on RC trees.

    Devgan's metric (ICCAD'97): for a victim RC tree whose coupling
    capacitors see an aggressor ramping with bounded slew rate mu
    (V/s), the peak noise at node i is bounded by

      V_i <= sum_j R(i, j) * Cm_j * mu

    where R(i, j) is the shared path resistance to the tree root (the
    holding driver, whose output resistance is the root's [r]). The
    bound is conservative — exact in the limit of slow aggressors —
    and needs no transient simulation, which is why noise-aware STA
    uses it for fast filtering before waveform-accurate analysis. *)

val bound :
  Rctree.t -> couplings:(string * float) list -> aggressor_slew_rate:float ->
  (string * float) list
(** [bound tree ~couplings ~aggressor_slew_rate] returns the per-node
    peak-noise bound in volts. [couplings] lists (node, Cm) pairs;
    unknown node names raise [Invalid_argument]. The driver's holding
    resistance should be modeled as the root edge [r] of the tree. *)

val bound_at :
  Rctree.t -> couplings:(string * float) list -> aggressor_slew_rate:float ->
  string -> float
(** The bound at one node; raises [Not_found]. *)

val line_bound :
  driver_resistance:float -> line:Rcline.spec -> cm_total:float ->
  aggressor_slew_rate:float -> float
(** Far-end bound for the uniform coupled line of the experiments, with
    the coupling distributed evenly along the line. *)
