(** Circuit netlist construction.

    Nodes are named; the name "0" (and "gnd") is ground. Elements are
    two- or three-terminal primitives; nonlinear devices are supplied as
    evaluation closures so that the engine stays independent of any
    particular transistor model (the [device] library provides
    alpha-power-law closures). *)

type t

type node = private int
(** Ground is negative; non-ground nodes coerce to their unknown index
    in [0 .. num_nodes-1]. The representation is exposed read-only so
    the analysis engine can index arrays directly. *)

type mosfet_eval = vg:float -> vd:float -> vs:float -> float * float * float * float
(** [eval ~vg ~vd ~vs] returns [(ids, dids_dvg, dids_dvd, dids_dvs)]
    where [ids] is the channel current flowing from the drain terminal
    into the device (and out of the source terminal). The closure must
    handle arbitrary terminal orderings (vd < vs included) and be
    C1-smooth enough for Newton iteration. *)

val create : unit -> t

val node : t -> string -> node
(** Intern a node by name; "0" and "gnd" give the ground node. *)

val gnd : t -> node
val node_name : t -> node -> string
val is_ground : node -> bool
val node_names : t -> string list
(** All non-ground node names, in creation order. *)

val resistor : t -> node -> node -> float -> unit
(** Raises [Invalid_argument] on a non-positive resistance. *)

val capacitor : t -> node -> node -> float -> unit
(** Grounded or coupling capacitor; non-negative value required. *)

val vsource : t -> node -> Source.t -> unit
(** Ideal voltage source from the node to ground. At most one per node
    (checked at analysis time). *)

val isource : t -> node -> node -> Source.t -> unit
(** Current source pushing current from the first node to the second. *)

val mosfet : t -> name:string -> g:node -> d:node -> s:node -> mosfet_eval -> unit

(** Introspection used by the analysis engine and by reporting. *)

val num_nodes : t -> int
(** Non-ground node count. *)

val node_index : t -> node -> int
(** Index in [0 .. num_nodes-1]; raises [Invalid_argument] on ground. *)

val resistors : t -> (node * node * float) list
val capacitors : t -> (node * node * float) list
val vsources : t -> (node * Source.t) list
val isources : t -> (node * node * Source.t) list
val mosfets : t -> (string * node * node * node * mosfet_eval) list

val summary : t -> string
(** One-line element/node count, for logs and the figure-1 bench. *)
