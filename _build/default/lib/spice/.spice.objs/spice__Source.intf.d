lib/spice/source.mli: Waveform
