lib/spice/circuit.mli: Source
