lib/spice/transient.ml: Array Circuit Float Hashtbl List Numerics Source Waveform
