lib/spice/transient.mli: Circuit Waveform
