lib/spice/source.ml: Array Waveform
