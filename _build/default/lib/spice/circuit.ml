type node = int
(* -1 is ground; 0.. index the unknown nodes. *)

type mosfet_eval = vg:float -> vd:float -> vs:float -> float * float * float * float

type t = {
  names : (string, node) Hashtbl.t;
  mutable order : string list; (* reversed creation order *)
  mutable next : int;
  mutable resistors : (node * node * float) list;
  mutable capacitors : (node * node * float) list;
  mutable vsources : (node * Source.t) list;
  mutable isources : (node * node * Source.t) list;
  mutable mosfets : (string * node * node * node * mosfet_eval) list;
}

let create () =
  {
    names = Hashtbl.create 64;
    order = [];
    next = 0;
    resistors = [];
    capacitors = [];
    vsources = [];
    isources = [];
    mosfets = [];
  }

let ground = -1

let node t name =
  if name = "0" || name = "gnd" then ground
  else
    match Hashtbl.find_opt t.names name with
    | Some n -> n
    | None ->
        let n = t.next in
        t.next <- n + 1;
        Hashtbl.add t.names name n;
        t.order <- name :: t.order;
        n

let gnd _ = ground
let is_ground n = n = ground

let node_name t n =
  if n = ground then "0"
  else
    match List.nth_opt (List.rev t.order) n with
    | Some s -> s
    | None -> invalid_arg "Circuit.node_name: unknown node"

let node_names t = List.rev t.order

let resistor t a b r =
  if r <= 0.0 then invalid_arg "Circuit.resistor: must be positive";
  if a = b then invalid_arg "Circuit.resistor: shorted terminals";
  t.resistors <- (a, b, r) :: t.resistors

let capacitor t a b c =
  if c < 0.0 then invalid_arg "Circuit.capacitor: must be non-negative";
  if a = b then invalid_arg "Circuit.capacitor: shorted terminals";
  if c > 0.0 then t.capacitors <- (a, b, c) :: t.capacitors

let vsource t n src =
  if n = ground then invalid_arg "Circuit.vsource: cannot drive ground";
  t.vsources <- (n, src) :: t.vsources

let isource t a b src = t.isources <- (a, b, src) :: t.isources

let mosfet t ~name ~g ~d ~s eval =
  t.mosfets <- (name, g, d, s, eval) :: t.mosfets

let num_nodes t = t.next

let node_index _ n =
  if n = ground then invalid_arg "Circuit.node_index: ground has no index";
  n

let resistors t = List.rev t.resistors
let capacitors t = List.rev t.capacitors
let vsources t = List.rev t.vsources
let isources t = List.rev t.isources
let mosfets t = List.rev t.mosfets

let summary t =
  Printf.sprintf
    "circuit: %d nodes, %d R, %d C, %d V, %d I, %d MOSFETs"
    t.next
    (List.length t.resistors)
    (List.length t.capacitors)
    (List.length t.vsources)
    (List.length t.isources)
    (List.length t.mosfets)
