lib/sta/netlist_io.ml: Buffer Fun Interconnect List Netlist Printf String
