lib/sta/propagate.mli: Device Eqwave Format Liberty Netlist Waveform
