lib/sta/constraints.ml: Format Hashtbl List Netlist Option Propagate
