lib/sta/netlist_io.mli: Netlist
