lib/sta/netlist.mli: Interconnect
