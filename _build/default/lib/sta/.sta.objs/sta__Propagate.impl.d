lib/sta/propagate.ml: Device Eqwave Float Format Hashtbl Interconnect Liberty List Netlist Option Ramp Spice String Wave Waveform
