lib/sta/netlist.ml: Hashtbl Interconnect List Printf
