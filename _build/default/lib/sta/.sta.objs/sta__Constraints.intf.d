lib/sta/constraints.mli: Format Netlist Propagate
