(** Gate-level netlists for the STA engine.

    A netlist is a DAG of cell instances connected by nets. Primary
    inputs carry externally supplied transitions; every net has one
    driver (a primary input or a cell output) and any number of
    receiver pins. Nets may carry an RC interconnect description used
    for wire delay, and may be declared coupled to an aggressor for
    noise-aware analysis. *)

type net_load =
  | Lumped of float
      (** extra lumped capacitance on the net (on top of pin caps) *)
  | Line of Interconnect.Rcline.spec
      (** a distributed line between driver and receivers *)

type t

val create : unit -> t

val input : t -> string -> unit
(** Declare a primary input net. *)

val output : t -> string -> unit
(** Mark a net as a primary output (observed endpoint). *)

val gate : t -> cell:string -> name:string -> input:string -> output:string -> unit
(** Instantiate an (inverting) cell from the library between two nets.
    Raises [Invalid_argument] if the output net already has a driver. *)

val set_load : t -> string -> net_load -> unit
(** Attach interconnect to a net (between its driver and receivers). *)

val inputs : t -> string list
val outputs : t -> string list
val nets : t -> string list

type instance = { name : string; cell : string; input : string; output : string }

val instances : t -> instance list
val driver_of : t -> string -> [ `Input | `Gate of instance ]
(** Raises [Not_found] for undriven nets. *)

val receivers_of : t -> string -> instance list
val load_of : t -> string -> net_load option

val topological_nets : t -> string list
(** Nets in driver-before-receiver order. Raises
    [Failure "Netlist: combinational cycle"] on cyclic netlists. *)

val inverter_chain : ?prefix:string -> t -> cells:string list -> in_net:string -> string
(** Convenience: string the named cells into a chain starting at
    [in_net]; returns the final output net (named [prefix ^ ".n<k>"]).
    Declares nothing about loads. *)
