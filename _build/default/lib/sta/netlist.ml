type net_load =
  | Lumped of float
  | Line of Interconnect.Rcline.spec

type instance = { name : string; cell : string; input : string; output : string }

type t = {
  mutable prim_inputs : string list;  (* reversed *)
  mutable prim_outputs : string list; (* reversed *)
  mutable insts : instance list;      (* reversed *)
  drivers : (string, instance option) Hashtbl.t; (* None = primary input *)
  loads : (string, net_load) Hashtbl.t;
}

let create () =
  {
    prim_inputs = [];
    prim_outputs = [];
    insts = [];
    drivers = Hashtbl.create 32;
    loads = Hashtbl.create 8;
  }

let input t name =
  if Hashtbl.mem t.drivers name then
    invalid_arg ("Netlist.input: net already driven: " ^ name);
  Hashtbl.replace t.drivers name None;
  t.prim_inputs <- name :: t.prim_inputs

let output t name = t.prim_outputs <- name :: t.prim_outputs

let gate t ~cell ~name ~input ~output =
  if Hashtbl.mem t.drivers output then
    invalid_arg ("Netlist.gate: net already driven: " ^ output);
  let inst = { name; cell; input; output } in
  Hashtbl.replace t.drivers output (Some inst);
  t.insts <- inst :: t.insts

let set_load t net load = Hashtbl.replace t.loads net load

let inputs t = List.rev t.prim_inputs
let outputs t = List.rev t.prim_outputs
let instances t = List.rev t.insts

let nets t =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  List.iter add (inputs t);
  List.iter
    (fun i ->
      add i.input;
      add i.output)
    (instances t);
  List.rev !out

let driver_of t net =
  match Hashtbl.find_opt t.drivers net with
  | None -> raise Not_found
  | Some None -> `Input
  | Some (Some inst) -> `Gate inst

let receivers_of t net =
  List.filter (fun i -> i.input = net) (instances t)

let load_of t net = Hashtbl.find_opt t.loads net

let topological_nets t =
  (* Kahn's algorithm over nets: a net depends on its driving gate's
     input net. *)
  let all = nets t in
  let dep net =
    match driver_of t net with
    | `Input -> None
    | `Gate inst -> Some inst.input
    | exception Not_found -> None
  in
  let out = ref [] in
  let state = Hashtbl.create 32 in (* net -> [`Visiting | `Done] *)
  let rec visit net =
    match Hashtbl.find_opt state net with
    | Some `Done -> ()
    | Some `Visiting -> failwith "Netlist: combinational cycle"
    | None ->
        Hashtbl.replace state net `Visiting;
        (match dep net with None -> () | Some d -> visit d);
        Hashtbl.replace state net `Done;
        out := net :: !out
  in
  List.iter visit all;
  List.rev !out

let inverter_chain ?(prefix = "chain") t ~cells ~in_net =
  let rec go k current = function
    | [] -> current
    | cell :: rest ->
        let next = Printf.sprintf "%s.n%d" prefix k in
        gate t ~cell ~name:(Printf.sprintf "%s.u%d" prefix k) ~input:current
          ~output:next;
        go (k + 1) next rest
  in
  go 1 in_net cells
