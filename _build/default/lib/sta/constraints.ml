type slack_report = {
  per_net : (string * float) list;
  worst : (string * float) option;
  violations : int;
}

let analyze netlist (result : Propagate.result) ~required =
  let arrival net =
    match List.assoc_opt net result.Propagate.timings with
    | Some t -> t
    | None -> failwith ("Constraints: net was not timed: " ^ net)
  in
  List.iter (fun (net, _) -> ignore (arrival net)) required;
  (* Required times, tightest-wins, computed against the same stage
     delays the forward pass used: req(input of gate) =
     req(output) - (at(output) - at(input)). *)
  let req : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let tighten net r =
    match Hashtbl.find_opt req net with
    | Some r0 when r0 <= r -> ()
    | _ -> Hashtbl.replace req net r
  in
  List.iter (fun (net, r) -> tighten net r) required;
  let order = List.rev (Netlist.topological_nets netlist) in
  List.iter
    (fun net ->
      match Hashtbl.find_opt req net with
      | None -> ()
      | Some r -> (
          match Netlist.driver_of netlist net with
          | `Input | (exception Not_found) -> ()
          | `Gate inst ->
              let stage =
                (arrival net).Propagate.at
                -. (arrival inst.Netlist.input).Propagate.at
              in
              tighten inst.Netlist.input (r -. stage)))
    order;
  let per_net =
    List.filter_map
      (fun (net, t) ->
        Hashtbl.find_opt req net
        |> Option.map (fun r -> (net, r -. t.Propagate.at)))
      result.Propagate.timings
  in
  let worst =
    List.fold_left
      (fun acc (net, s) ->
        match acc with
        | Some (_, best) when best <= s -> acc
        | _ -> Some (net, s))
      None per_net
  in
  let violations = List.length (List.filter (fun (_, s) -> s < 0.0) per_net) in
  { per_net; worst; violations }

let met r = r.violations = 0

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (net, s) ->
      Format.fprintf ppf "%-14s slack %+9.1f ps%s@," net (s *. 1e12)
        (if s < 0.0 then "  VIOLATED" else ""))
    r.per_net;
  (match r.worst with
  | Some (net, s) ->
      Format.fprintf ppf "worst slack %+.1f ps at %s (%d violations)@,"
        (s *. 1e12) net r.violations
  | None -> Format.fprintf ppf "no constrained nets@,");
  Format.fprintf ppf "@]"
