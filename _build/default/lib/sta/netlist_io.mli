(** Textual gate-level netlist format.

    A small line-oriented structural format so designs can live in
    files and flow through the CLI:

    {v
    # two-stage chain with a coupled bus
    input in
    gate u1 INVx1 in n1
    gate u2 INVx4 n1 bus
    line bus 25.5 14.4e-15 6
    cap n1 2e-15
    gate u3 INVx16 bus out
    output out
    v}

    Lines: [input <net>], [output <net>],
    [gate <name> <cell> <in-net> <out-net>],
    [line <net> <rtotal> <ctotal> <nsegs>], [cap <net> <farads>].
    '#' starts a comment; blank lines are ignored. *)

val of_string : string -> Netlist.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_string : Netlist.t -> string
(** Round-trips through {!of_string}. *)

val load : string -> Netlist.t
val save : string -> Netlist.t -> unit
