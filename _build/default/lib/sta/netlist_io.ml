let of_string text =
  let netlist = Netlist.create () in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      let fail msg =
        failwith (Printf.sprintf "netlist: line %d: %s" (lineno + 1) msg)
      in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      let float_of w =
        match float_of_string_opt w with
        | Some f -> f
        | None -> fail ("bad number " ^ w)
      in
      match words with
      | [] -> ()
      | [ "input"; net ] -> (
          try Netlist.input netlist net
          with Invalid_argument m -> fail m)
      | [ "output"; net ] -> Netlist.output netlist net
      | [ "gate"; name; cell; in_net; out_net ] -> (
          try Netlist.gate netlist ~cell ~name ~input:in_net ~output:out_net
          with Invalid_argument m -> fail m)
      | [ "line"; net; r; c; nsegs ] ->
          let nsegs =
            match int_of_string_opt nsegs with
            | Some n when n >= 1 -> n
            | _ -> fail "bad segment count"
          in
          let spec =
            try
              Interconnect.Rcline.
                { rtotal = float_of r; ctotal = float_of c; nsegs }
            with Invalid_argument m -> fail m
          in
          Netlist.set_load netlist net (Netlist.Line spec)
      | [ "cap"; net; c ] -> Netlist.set_load netlist net (Netlist.Lumped (float_of c))
      | cmd :: _ -> fail ("unknown directive " ^ cmd))
    lines;
  netlist

let to_string netlist =
  let buf = Buffer.create 512 in
  List.iter
    (fun net -> Buffer.add_string buf (Printf.sprintf "input %s\n" net))
    (Netlist.inputs netlist);
  List.iter
    (fun (inst : Netlist.instance) ->
      Buffer.add_string buf
        (Printf.sprintf "gate %s %s %s %s\n" inst.Netlist.name
           inst.Netlist.cell inst.Netlist.input inst.Netlist.output))
    (Netlist.instances netlist);
  List.iter
    (fun net ->
      match Netlist.load_of netlist net with
      | Some (Netlist.Lumped c) ->
          Buffer.add_string buf (Printf.sprintf "cap %s %.6e\n" net c)
      | Some (Netlist.Line spec) ->
          Buffer.add_string buf
            (Printf.sprintf "line %s %.6e %.6e %d\n" net
               spec.Interconnect.Rcline.rtotal spec.Interconnect.Rcline.ctotal
               spec.Interconnect.Rcline.nsegs)
      | None -> ())
    (Netlist.nets netlist);
  List.iter
    (fun net -> Buffer.add_string buf (Printf.sprintf "output %s\n" net))
    (Netlist.outputs netlist);
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path netlist =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string netlist))
