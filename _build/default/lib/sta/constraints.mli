(** Timing constraints and slack.

    Required-time back-propagation over the netlist DAG: primary
    outputs get a required arrival (e.g. clock period minus setup),
    each gate input's required time is its output's requirement minus
    the gate+wire delay actually used in the forward pass, and
    slack = required - arrival. Negative slack is a violation. *)

type slack_report = {
  per_net : (string * float) list;  (** slack per net, topo order *)
  worst : (string * float) option;  (** most negative (or smallest) slack *)
  violations : int;
}

val analyze :
  Netlist.t -> Propagate.result ->
  required:(string * float) list -> slack_report
(** [analyze netlist result ~required] back-propagates the required
    times given at primary outputs. Outputs missing from [required] are
    unconstrained (infinite requirement). Raises [Failure] if [required]
    names a net that was not timed. *)

val met : slack_report -> bool
(** No violations. *)

val pp : Format.formatter -> slack_report -> unit
