type run = { far : Waveform.Wave.t; rcv : Waveform.Wave.t }

let simulate scenario ~aggressor_active ~tau =
  let ckt, hints = Scenario.build scenario ~aggressor_active ~tau in
  let config =
    {
      Spice.Transient.default_config with
      dt = scenario.Scenario.dt;
      tstop = scenario.Scenario.tstop;
    }
  in
  let res = Spice.Transient.run ~config ~ic:hints ckt in
  {
    far = Spice.Transient.probe res (Scenario.victim_far_node scenario);
    rcv = Spice.Transient.probe res (Scenario.victim_rcv_node scenario);
  }

let noiseless scenario = simulate scenario ~aggressor_active:false ~tau:0.0

let noisy scenario ~tau = simulate scenario ~aggressor_active:true ~tau

let receiver_response ?dt scenario ~input ~tstop =
  let open Spice in
  let proc = scenario.Scenario.proc in
  let _, _, rcv_cell, load_cell = Scenario.chain_cells scenario in
  let ckt = Circuit.create () in
  let vdd = Device.Cell.attach_supply proc ckt in
  let pin = Circuit.node ckt "pin" in
  let rcv = Circuit.node ckt "rcv" in
  let buf = Circuit.node ckt "buf" in
  Device.Cell.instantiate proc rcv_cell ~ckt ~input:pin ~output:rcv
    ~vdd_node:vdd ~name:"u16";
  Device.Cell.instantiate proc load_cell ~ckt ~input:rcv ~output:buf
    ~vdd_node:vdd ~name:"u64";
  Circuit.vsource ckt pin input;
  let dt =
    match dt with Some d -> d | None -> scenario.Scenario.dt /. 2.0
  in
  let config = { Transient.default_config with dt; tstop } in
  let res = Transient.run ~config ckt in
  Transient.probe res "rcv"

let ctx_of_runs ?samples scenario ~noiseless ~noisy =
  let proc = scenario.Scenario.proc in
  Eqwave.Technique.make_ctx ?samples
    ~th:(Device.Process.thresholds proc)
    ~noisy_in:noisy.far ~noiseless_in:noiseless.far
    ~noiseless_out:noiseless.rcv ()
