lib/noise/injection.ml: Circuit Device Eqwave Scenario Spice Transient Waveform
