lib/noise/scenario.ml: Array Circuit Device Interconnect List Printf Source Spice Waveform
