lib/noise/montecarlo.mli: Eqwave Eval Format Scenario
