lib/noise/montecarlo.ml: Array Eqwave Eval Format Hashtbl Injection List Numerics Option Random Scenario
