lib/noise/worst_case.mli: Format Injection Scenario
