lib/noise/eval.mli: Eqwave Format Injection Scenario Waveform
