lib/noise/worst_case.ml: Array Device Format Injection Scenario Waveform
