lib/noise/eval.ml: Array Device Eqwave Float Format Injection List Numerics Option Scenario Spice Waveform
