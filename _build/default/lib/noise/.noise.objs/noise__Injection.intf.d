lib/noise/injection.mli: Eqwave Scenario Spice Waveform
