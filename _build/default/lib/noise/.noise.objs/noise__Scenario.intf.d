lib/noise/scenario.mli: Device Interconnect Spice
