lib/numerics/integrate.mli:
