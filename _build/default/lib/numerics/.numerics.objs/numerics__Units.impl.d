lib/numerics/units.ml: Format
