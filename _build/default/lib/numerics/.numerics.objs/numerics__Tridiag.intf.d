lib/numerics/tridiag.mli:
