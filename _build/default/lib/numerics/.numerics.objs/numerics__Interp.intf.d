lib/numerics/interp.mli:
