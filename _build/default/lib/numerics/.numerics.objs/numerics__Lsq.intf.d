lib/numerics/lsq.mli:
