lib/numerics/matrix.ml: Array Format
