lib/numerics/roots.mli:
