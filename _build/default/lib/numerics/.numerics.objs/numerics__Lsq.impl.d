lib/numerics/lsq.ml: Array Float Matrix
