lib/numerics/tridiag.ml: Array
