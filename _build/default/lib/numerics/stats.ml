type summary = {
  count : int;
  mean : float;
  max : float;
  min : float;
  rms : float;
  stddev : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let max_abs xs =
  Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0.0 xs

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let mu = mean xs in
  let mx = Array.fold_left Float.max neg_infinity xs in
  let mn = Array.fold_left Float.min infinity xs in
  let ss = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs
    /. float_of_int n
  in
  {
    count = n;
    mean = mu;
    max = mx;
    min = mn;
    rms = sqrt (ss /. float_of_int n);
    stddev = sqrt var;
  }

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let t = rank -. float_of_int lo in
    sorted.(lo) +. (t *. (sorted.(hi) -. sorted.(lo)))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g max=%.4g min=%.4g rms=%.4g sd=%.4g"
    s.count s.mean s.max s.min s.rms s.stddev
