(** 1-D and 2-D interpolation over sorted grids. *)

val validate_grid : float array -> unit
(** Raises [Invalid_argument] unless the array is strictly increasing
    with at least two entries. Call where grids enter the system. *)

val bracket : float array -> float -> int
(** [bracket xs x] returns an index [i] such that
    [xs.(i) <= x <= xs.(i+1)] when [x] is inside the grid; clamps to the
    first or last interval when outside. [xs] must be strictly
    increasing with at least two entries; only the length is checked
    here (this is the per-sample hot path — grids are validated where
    they are built). *)

val linear : float array -> float array -> float -> float
(** [linear xs ys x] evaluates the piecewise-linear interpolant through
    (xs, ys) at [x], extrapolating linearly from the end intervals. *)

val linear_clamped : float array -> float array -> float -> float
(** Like [linear] but clamps to the end values rather than
    extrapolating; used for table lookups where extrapolation is
    unphysical. *)

val bilinear :
  float array -> float array -> float array array -> float -> float -> float
(** [bilinear xs ys z x y] interpolates the surface [z.(i).(j)] defined
    on the grid [xs] x [ys]; clamps outside the grid. [z] must be
    [length xs] rows of [length ys]. *)

val inverse_linear : float array -> float array -> float -> float option
(** [inverse_linear xs ys level] finds the first [x] (scanning left to
    right) at which the piecewise-linear curve crosses [level], or
    [None] if it never does. The curve need not be monotone. *)

val derivative : float array -> float array -> float array
(** [derivative xs ys] is the centered finite-difference derivative
    dy/dx on the same grid (one-sided at the ends). *)
