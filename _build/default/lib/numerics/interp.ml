let validate_grid xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Interp: grid needs at least 2 points";
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then
      invalid_arg "Interp: grid must be strictly increasing"
  done

(* Hot path: called per waveform lookup. The grid is validated where
   arrays enter the system (Wave.create, Nldm.table, resample), not on
   every probe. *)
let bracket xs x =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Interp: grid needs at least 2 points";
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    (* Binary search for the interval containing x. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear xs ys x =
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.linear: size mismatch";
  let i = bracket xs x in
  let t = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
  ys.(i) +. (t *. (ys.(i + 1) -. ys.(i)))

let linear_clamped xs ys x =
  let n = Array.length xs in
  if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else linear xs ys x

let bilinear xs ys z x y =
  if Array.length z <> Array.length xs then
    invalid_arg "Interp.bilinear: row count mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length ys then
        invalid_arg "Interp.bilinear: column count mismatch")
    z;
  let clamp lo hi v = if v < lo then lo else if v > hi then hi else v in
  let x = clamp xs.(0) xs.(Array.length xs - 1) x in
  let y = clamp ys.(0) ys.(Array.length ys - 1) y in
  let i = bracket xs x and j = bracket ys y in
  let tx = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
  let ty = (y -. ys.(j)) /. (ys.(j + 1) -. ys.(j)) in
  let z00 = z.(i).(j)
  and z01 = z.(i).(j + 1)
  and z10 = z.(i + 1).(j)
  and z11 = z.(i + 1).(j + 1) in
  ((1.0 -. tx) *. (1.0 -. ty) *. z00)
  +. ((1.0 -. tx) *. ty *. z01)
  +. (tx *. (1.0 -. ty) *. z10)
  +. (tx *. ty *. z11)

let inverse_linear xs ys level =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Interp.inverse_linear: size";
  let rec scan i =
    if i >= n - 1 then None
    else
      let y0 = ys.(i) and y1 = ys.(i + 1) in
      if (y0 -. level) *. (y1 -. level) <= 0.0 && y0 <> y1 then
        let t = (level -. y0) /. (y1 -. y0) in
        if t >= 0.0 && t <= 1.0 then
          Some (xs.(i) +. (t *. (xs.(i + 1) -. xs.(i))))
        else scan (i + 1)
      else if y0 = level then Some xs.(i)
      else scan (i + 1)
  in
  scan 0

let derivative xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Interp.derivative: size";
  if n < 2 then invalid_arg "Interp.derivative: need 2 points";
  Array.init n (fun i ->
      if i = 0 then (ys.(1) -. ys.(0)) /. (xs.(1) -. xs.(0))
      else if i = n - 1 then
        (ys.(n - 1) -. ys.(n - 2)) /. (xs.(n - 1) -. xs.(n - 2))
      else (ys.(i + 1) -. ys.(i - 1)) /. (xs.(i + 1) -. xs.(i - 1)))
