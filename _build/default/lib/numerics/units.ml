let ps x = x *. 1e-12
let ns x = x *. 1e-9
let ff x = x *. 1e-15
let pf x = x *. 1e-12
let ohm x = x
let kohm x = x *. 1e3
let um x = x *. 1e-6
let mv x = x *. 1e-3
let ua x = x *. 1e-6
let to_ps t = t *. 1e12
let to_ns t = t *. 1e9
let to_ff c = c *. 1e15
let to_mv v = v *. 1e3

let pp_time ppf t =
  let a = abs_float t in
  if a < 1e-12 then Format.fprintf ppf "%.3gfs" (t *. 1e15)
  else if a < 1e-9 then Format.fprintf ppf "%.4gps" (t *. 1e12)
  else if a < 1e-6 then Format.fprintf ppf "%.4gns" (t *. 1e9)
  else Format.fprintf ppf "%.4gus" (t *. 1e6)

let pp_cap ppf c =
  let a = abs_float c in
  if a < 1e-12 then Format.fprintf ppf "%.4gfF" (c *. 1e15)
  else Format.fprintf ppf "%.4gpF" (c *. 1e12)
