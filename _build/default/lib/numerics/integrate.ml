let trapz xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Integrate.trapz: size mismatch";
  if n < 2 then invalid_arg "Integrate.trapz: need 2 points";
  let s = ref 0.0 in
  for i = 0 to n - 2 do
    s := !s +. (0.5 *. (ys.(i) +. ys.(i + 1)) *. (xs.(i + 1) -. xs.(i)))
  done;
  !s

let trapz_fn ?(n = 256) f a b =
  if n < 1 then invalid_arg "Integrate.trapz_fn: n";
  let h = (b -. a) /. float_of_int n in
  let s = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    s := !s +. f (a +. (h *. float_of_int i))
  done;
  !s *. h

let simpson_fn ?(n = 256) f a b =
  let n = if n mod 2 = 0 then n else n + 1 in
  if n < 2 then invalid_arg "Integrate.simpson_fn: n";
  let h = (b -. a) /. float_of_int n in
  let s = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let coeff = if i mod 2 = 1 then 4.0 else 2.0 in
    s := !s +. (coeff *. f (a +. (h *. float_of_int i)))
  done;
  !s *. h /. 3.0

let cumulative xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Integrate.cumulative: size";
  let out = Array.make n 0.0 in
  for i = 1 to n - 1 do
    out.(i) <-
      out.(i - 1) +. (0.5 *. (ys.(i) +. ys.(i - 1)) *. (xs.(i) -. xs.(i - 1)))
  done;
  out
