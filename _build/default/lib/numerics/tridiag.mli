(** Thomas algorithm for tridiagonal systems.

    RC ladder networks without coupling reduce to tridiagonal systems;
    this solver backs the fast pure-interconnect path and serves as an
    independent check on the dense LU. *)

val solve :
  lower:float array ->
  diag:float array ->
  upper:float array ->
  rhs:float array ->
  float array
(** [solve ~lower ~diag ~upper ~rhs] solves the n x n tridiagonal system
    where [lower] has length n-1 (sub-diagonal), [diag] length n,
    [upper] length n-1 (super-diagonal). Raises [Invalid_argument] on
    size mismatch and [Failure] on a zero pivot. Inputs are unmodified. *)
