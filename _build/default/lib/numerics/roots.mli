(** Scalar root finding. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [a, b]. Requires
    [f a] and [f b] to have opposite signs (raises [Invalid_argument]
    otherwise). Default [tol] 1e-15 on the interval width. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method: inverse quadratic interpolation with bisection
    fallback. Same contract as [bisect], converges much faster on
    smooth functions. *)

val find_bracket :
  (float -> float) -> lo:float -> hi:float -> steps:int -> (float * float) option
(** [find_bracket f ~lo ~hi ~steps] scans [steps] uniform subintervals
    of [lo, hi] and returns the first subinterval on which [f] changes
    sign. *)
