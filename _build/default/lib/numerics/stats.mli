(** Summary statistics for experiment reporting (Table 1 columns). *)

type summary = {
  count : int;
  mean : float;
  max : float;
  min : float;
  rms : float;
  stddev : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val max_abs : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with p in [0, 100]; linear interpolation between
    order statistics. The input is not modified. *)

val pp_summary : Format.formatter -> summary -> unit
