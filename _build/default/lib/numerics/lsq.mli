(** Weighted linear least squares and a small Gauss-Newton driver.

    The equivalent-waveform techniques all reduce to fitting a line
    Gamma(t) = a*t + b to voltage samples under various weightings
    (paper Eq. 2) or to minimizing a nonlinear residual (paper Eq. 3);
    these are the shared fitting kernels. *)

type line = { slope : float; intercept : float }
(** The fitted line a*t + b as [slope]*t + [intercept]. *)

val eval_line : line -> float -> float

val fit_line : ?weights:float array -> float array -> float array -> line
(** [fit_line ?weights ts vs] minimizes
    sum_k w_k * (v_k - (a*t_k + b))^2 (w_k = 1 when [weights] is
    omitted). Raises [Invalid_argument] on size mismatch or fewer than
    two effective points, [Failure "Lsq.fit_line: degenerate"] when the
    weighted design matrix is singular (e.g. all weight on one t). *)

val fit_line_through : float -> float -> float array -> float array -> line
(** [fit_line_through t0 v0 ts vs] least-squares fit constrained to pass
    through the point (t0, v0); used by the E4-style constructions. *)

val gauss_newton :
  ?max_iter:int ->
  ?tol:float ->
  residual:(float array -> float array) ->
  jacobian:(float array -> float array array) ->
  float array ->
  float array
(** [gauss_newton ~residual ~jacobian x0] minimizes |r(x)|^2 starting
    from [x0]. [jacobian x] returns rows dr_i/dx_j. Performs damped
    steps (halving up to 20 times when the step does not decrease the
    cost) and stops when the step max-norm falls below [tol] (default
    1e-12) or after [max_iter] (default 25) iterations. Returns the best
    iterate seen. *)
