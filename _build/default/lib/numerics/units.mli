(** SI scaling helpers. All library-internal quantities are in base SI
    units (seconds, volts, farads, ohms, amperes); these helpers keep
    experiment descriptions readable. *)

val ps : float -> float
(** [ps x] is x picoseconds in seconds. *)

val ns : float -> float
val ff : float -> float
(** [ff x] is x femtofarads in farads. *)

val pf : float -> float
val ohm : float -> float
val kohm : float -> float
val um : float -> float
(** [um x] is x micrometers in meters. *)

val mv : float -> float
val ua : float -> float

val to_ps : float -> float
(** [to_ps t] converts seconds to picoseconds (for reporting). *)

val to_ns : float -> float
val to_ff : float -> float
val to_mv : float -> float

val pp_time : Format.formatter -> float -> unit
(** Pretty-print a time in engineering notation (fs/ps/ns/us). *)

val pp_cap : Format.formatter -> float -> unit
