(** Dense real matrices and linear solvers.

    Matrices are stored row-major in a flat [float array]. Sizes are small
    (tens to low hundreds of unknowns, as produced by circuit MNA
    stamping), so a dense LU with partial pivoting is both simple and
    fast enough. *)

type t
(** A mutable [rows] x [cols] dense matrix of floats. *)

val create : int -> int -> t
(** [create rows cols] is a zero-filled matrix. Raises
    [Invalid_argument] if a dimension is not positive. *)

val identity : int -> t
(** [identity n] is the n x n identity matrix. *)

val of_arrays : float array array -> t
(** [of_arrays a] copies a rectangular array-of-rows into a matrix.
    Raises [Invalid_argument] on ragged input or empty input. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] adds [x] to element (i, j); the basic stamping
    operation used by MNA assembly. *)

val copy : t -> t
val fill : t -> float -> unit

val mul_vec : t -> float array -> float array
(** [mul_vec m v] is the matrix-vector product [m * v]. *)

val transpose : t -> t

val mul : t -> t -> t
(** Matrix-matrix product. *)

type lu
(** An LU factorization with partial pivoting (PA = LU). *)

exception Singular of int
(** Raised (with the offending pivot column) when factorization meets a
    pivot smaller than the singularity threshold. *)

val lu_factor : t -> lu
(** Factor a square matrix. The input is not modified. *)

val lu_solve : lu -> float array -> float array
(** [lu_solve lu b] solves [A x = b] for the factored [A]. *)

val solve : t -> float array -> float array
(** One-shot [solve a b]: factor and solve. *)

val residual_norm : t -> float array -> float array -> float
(** [residual_norm a x b] is the max-norm of [a*x - b]; used by tests. *)

val pp : Format.formatter -> t -> unit
