type line = { slope : float; intercept : float }

let eval_line { slope; intercept } t = (slope *. t) +. intercept

(* Weighted normal equations for the 2-parameter line fit. Times are
   shifted by their weighted mean before forming the sums to keep the
   system well conditioned for nanosecond-scale abscissae. *)
let fit_line ?weights ts vs =
  let n = Array.length ts in
  if n <> Array.length vs then invalid_arg "Lsq.fit_line: size mismatch";
  if n < 2 then invalid_arg "Lsq.fit_line: need at least 2 points";
  let w = match weights with
    | None -> Array.make n 1.0
    | Some w ->
      if Array.length w <> n then invalid_arg "Lsq.fit_line: weights size";
      w
  in
  let sw = ref 0.0 and swt = ref 0.0 in
  for k = 0 to n - 1 do
    sw := !sw +. w.(k);
    swt := !swt +. (w.(k) *. ts.(k))
  done;
  if !sw <= 0.0 then failwith "Lsq.fit_line: degenerate";
  let tbar = !swt /. !sw in
  let stt = ref 0.0 and stv = ref 0.0 and sv = ref 0.0 in
  for k = 0 to n - 1 do
    let dt = ts.(k) -. tbar in
    stt := !stt +. (w.(k) *. dt *. dt);
    stv := !stv +. (w.(k) *. dt *. vs.(k));
    sv := !sv +. (w.(k) *. vs.(k))
  done;
  if !stt <= 0.0 then failwith "Lsq.fit_line: degenerate";
  let slope = !stv /. !stt in
  let intercept = (!sv /. !sw) -. (slope *. tbar) in
  { slope; intercept }

let fit_line_through t0 v0 ts vs =
  let n = Array.length ts in
  if n <> Array.length vs then invalid_arg "Lsq.fit_line_through: size";
  let num = ref 0.0 and den = ref 0.0 in
  for k = 0 to n - 1 do
    let dt = ts.(k) -. t0 in
    num := !num +. (dt *. (vs.(k) -. v0));
    den := !den +. (dt *. dt)
  done;
  if !den <= 0.0 then failwith "Lsq.fit_line_through: degenerate";
  let slope = !num /. !den in
  { slope; intercept = v0 -. (slope *. t0) }

let cost r =
  Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 r

let gauss_newton ?(max_iter = 25) ?(tol = 1e-12) ~residual ~jacobian x0 =
  let np = Array.length x0 in
  let x = Array.copy x0 in
  let best = ref (Array.copy x0) in
  let best_cost = ref (cost (residual x0)) in
  (try
     for _ = 1 to max_iter do
       let r = residual x in
       let j = jacobian x in
       let m = Array.length r in
       (* Normal equations J^T J dx = -J^T r. *)
       let a = Matrix.create np np and b = Array.make np 0.0 in
       for i = 0 to m - 1 do
         for p = 0 to np - 1 do
           b.(p) <- b.(p) -. (j.(i).(p) *. r.(i));
           for q = 0 to np - 1 do
             Matrix.add_to a p q (j.(i).(p) *. j.(i).(q))
           done
         done
       done;
       (* Levenberg damping on the diagonal guards rank deficiency. *)
       for p = 0 to np - 1 do
         Matrix.add_to a p p (1e-12 *. (1.0 +. abs_float (Matrix.get a p p)))
       done;
       let dx = Matrix.solve a b in
       let step_norm =
         Array.fold_left (fun acc d -> Float.max acc (abs_float d)) 0.0 dx
       in
       (* Backtracking line search. *)
       let lambda = ref 1.0 in
       let improved = ref false in
       let attempts = ref 0 in
       while (not !improved) && !attempts < 20 do
         let trial = Array.mapi (fun p xi -> xi +. (!lambda *. dx.(p))) x in
         let c = cost (residual trial) in
         if c < !best_cost then begin
           Array.blit trial 0 x 0 np;
           best := Array.copy trial;
           best_cost := c;
           improved := true
         end
         else begin
           lambda := !lambda /. 2.0;
           incr attempts
         end
       done;
       if (not !improved) || step_norm < tol then raise Exit
     done
   with Exit | Matrix.Singular _ -> ());
  !best
