let bisect ?(tol = 1e-15) ?(max_iter = 200) f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then invalid_arg "Roots.bisect: no sign change"
  else begin
    let a = ref a and b = ref b and fa = ref fa in
    let i = ref 0 in
    while !b -. !a > tol && !i < max_iter do
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end;
      incr i
    done;
    0.5 *. (!a +. !b)
  end

let brent ?(tol = 1e-15) ?(max_iter = 100) f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then invalid_arg "Roots.brent: no sign change"
  else begin
    (* State follows the classical Brent formulation: b is the current
       best, a the previous iterate, c the bracket counterpart. *)
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if abs_float !fa < abs_float !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let mflag = ref true in
    let d = ref !c in
    let i = ref 0 in
    while !fb <> 0.0 && abs_float (!b -. !a) > tol && !i < max_iter do
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo = ((3.0 *. !a) +. !b) /. 4.0 in
      let cond1 = not ((s > Float.min lo !b) && (s < Float.max lo !b)) in
      let cond2 = !mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.0 in
      let cond3 = (not !mflag) && abs_float (s -. !b) >= abs_float (!c -. !d) /. 2.0 in
      let cond4 = !mflag && abs_float (!b -. !c) < tol in
      let cond5 = (not !mflag) && abs_float (!c -. !d) < tol in
      let s =
        if cond1 || cond2 || cond3 || cond4 || cond5 then begin
          mflag := true;
          0.5 *. (!a +. !b)
        end
        else begin
          mflag := false;
          s
        end
      in
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0.0 then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if abs_float !fa < abs_float !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end;
      incr i
    done;
    !b
  end

let find_bracket f ~lo ~hi ~steps =
  if steps < 1 then invalid_arg "Roots.find_bracket: steps";
  let h = (hi -. lo) /. float_of_int steps in
  let rec scan i fprev =
    if i > steps then None
    else
      let x = lo +. (h *. float_of_int i) in
      let fx = f x in
      if fprev *. fx <= 0.0 then Some (x -. h, x) else scan (i + 1) fx
  in
  scan 1 (f lo)
