(** Quadrature over sampled data and functions. *)

val trapz : float array -> float array -> float
(** [trapz xs ys] is the trapezoidal integral of the sampled curve.
    Raises [Invalid_argument] on size mismatch or fewer than 2 points. *)

val trapz_fn : ?n:int -> (float -> float) -> float -> float -> float
(** [trapz_fn f a b] integrates [f] on [a, b] with [n] (default 256)
    uniform trapezoids. *)

val simpson_fn : ?n:int -> (float -> float) -> float -> float -> float
(** Composite Simpson rule; [n] (default 256) is rounded up to even. *)

val cumulative : float array -> float array -> float array
(** [cumulative xs ys] is the running trapezoidal integral, same length
    as the input, starting at 0. *)
