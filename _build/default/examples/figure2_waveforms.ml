(* Figure-2 reproduction: dumps CSV files with the sensitivity and
   equivalent-waveform series for one representative noisy case.

     dune exec examples/figure2_waveforms.exe [-- <tau_ps>]

   Produces figure2a.csv (noiseless sensitivity, Figure 2a) and
   figure2b.csv (rho_eff, Gamma_eff and the resulting output vs the
   reference, Figure 2b). *)

let () =
  let tau_ps =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 1200.0
  in
  let scen = Noise.Scenario.config_i in
  let th = Device.Process.thresholds scen.Noise.Scenario.proc in
  let tau = tau_ps *. 1e-12 in
  let noiseless = Noise.Injection.noiseless scen in
  let noisy = Noise.Injection.noisy scen ~tau in
  let ctx = Noise.Injection.ctx_of_runs scen ~noiseless ~noisy in
  let sens = Eqwave.Sensitivity.compute ctx in
  let gamma = Eqwave.Sgdp.sgdp.Eqwave.Technique.run ctx in
  let v_out_eff =
    Noise.Injection.receiver_response scen ~input:(Spice.Source.of_ramp gamma)
      ~tstop:scen.Noise.Scenario.tstop
  in
  let a, b = Eqwave.Technique.noisy_critical_region ctx in
  let t0 = a -. 150e-12 and t1 = b +. 250e-12 in
  let n = 500 in
  let ts =
    Array.init n (fun i ->
        t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (n - 1)))
  in
  let rho_eff, _ = Eqwave.Sgdp.rho_eff sens ctx ts in

  let write path header row =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header ^ "\n");
        Array.iteri (fun i t -> output_string oc (row i t ^ "\n")) ts);
    Printf.printf "wrote %s\n" path
  in
  write "figure2a.csv" "t,v_in_noiseless,v_out_noiseless,rho_x02" (fun _ t ->
      Printf.sprintf "%.5e,%.5f,%.5f,%.5f" t
        (Waveform.Wave.value_at ctx.Eqwave.Technique.noiseless_in t)
        (Waveform.Wave.value_at ctx.Eqwave.Technique.noiseless_out t)
        (0.2 *. Eqwave.Sensitivity.rho_at_time sens t));
  write "figure2b.csv"
    "t,v_in_noisy,gamma_eff,rho_eff_x02,v_out_eff,v_out_reference"
    (fun i t ->
      Printf.sprintf "%.5e,%.5f,%.5f,%.5f,%.5f,%.5f" t
        (Waveform.Wave.value_at ctx.Eqwave.Technique.noisy_in t)
        (Waveform.Ramp.value_at gamma t)
        (0.2 *. rho_eff.(i))
        (Waveform.Wave.value_at v_out_eff t)
        (Waveform.Wave.value_at noisy.Noise.Injection.rcv t));
  Printf.printf
    "Gamma_eff: arrival %.1f ps, slew %.1f ps; peak |rho| = %.2f\n"
    (Waveform.Ramp.arrival gamma th *. 1e12)
    (Waveform.Ramp.slew gamma th *. 1e12)
    (Eqwave.Sensitivity.peak sens)
