(* Quickstart: take a hand-made noisy waveform, reduce it with every
   technique, and push each equivalent ramp through a transistor-level
   receiver to compare delays.

     dune exec examples/quickstart.exe *)

let () =
  let proc = Device.Process.c13 in
  let th = Device.Process.thresholds proc in
  let vdd = proc.Device.Process.vdd in

  (* 1. A noiseless 150 ps transition arriving at 1 ns... *)
  let noiseless_ramp =
    Waveform.Ramp.of_arrival_slew ~arrival:1e-9 ~slew:150e-12
      ~dir:Waveform.Wave.Rising th
  in
  let noiseless_in = Waveform.Ramp.to_waveform ~n:1201 ~pad:400e-12 noiseless_ramp in

  (* 2. ...and the same transition with a crosstalk dip in the middle. *)
  let ts = Waveform.Wave.times noiseless_in in
  let noisy_in =
    Waveform.Wave.create ts
      (Array.map
         (fun t ->
           let v = Waveform.Wave.value_at noiseless_in t in
           if t > 0.99e-9 && t < 1.08e-9 then Float.max 0.0 (v -. 0.35) else v)
         ts)
  in

  (* 3. The receiving gate: INVx16 loaded by INVx64, simulated with the
     bundled SPICE engine to get its noiseless response. *)
  let receiver input tstop =
    let open Spice in
    let ckt = Circuit.create () in
    let vddn = Device.Cell.attach_supply proc ckt in
    let pin = Circuit.node ckt "pin" and out = Circuit.node ckt "out" in
    let buf = Circuit.node ckt "buf" in
    Device.Cell.instantiate proc Device.Cell.inv_x16 ~ckt ~input:pin
      ~output:out ~vdd_node:vddn ~name:"u16";
    Device.Cell.instantiate proc Device.Cell.inv_x64 ~ckt ~input:out
      ~output:buf ~vdd_node:vddn ~name:"u64";
    Circuit.vsource ckt pin input;
    let config = { Transient.default_config with dt = 1e-12; tstop } in
    Transient.probe (Transient.run ~config ckt) "out"
  in
  let tstop = 3e-9 in
  let noiseless_out = receiver (Spice.Source.of_wave noiseless_in) tstop in

  (* 4. Build the technique context and run all six techniques. *)
  let ctx =
    Eqwave.Technique.make_ctx ~th ~noisy_in ~noiseless_in ~noiseless_out ()
  in
  let reference_out = receiver (Spice.Source.of_wave noisy_in) tstop in
  let t_ref =
    Option.get (Waveform.Wave.arrival reference_out th)
  in
  Printf.printf "reference output arrival (noisy waveform replayed): %.1f ps\n\n"
    (t_ref *. 1e12);
  Printf.printf "%-6s %12s %12s %14s\n" "tech" "arrival(ps)" "slew(ps)" "out err(ps)";
  List.iter
    (fun (tech : Eqwave.Technique.t) ->
      match tech.Eqwave.Technique.run ctx with
      | gamma ->
          let out = receiver (Spice.Source.of_ramp gamma) tstop in
          let t_out = Option.get (Waveform.Wave.arrival out th) in
          Printf.printf "%-6s %12.1f %12.1f %+14.1f\n"
            tech.Eqwave.Technique.name
            (Waveform.Ramp.arrival gamma th *. 1e12)
            (Waveform.Ramp.slew gamma th *. 1e12)
            ((t_out -. t_ref) *. 1e12)
      | exception Eqwave.Technique.Unsupported msg ->
          Printf.printf "%-6s unsupported: %s\n" tech.Eqwave.Technique.name msg)
    Eqwave.Registry.all;
  ignore vdd
