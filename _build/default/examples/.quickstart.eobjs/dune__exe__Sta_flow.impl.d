examples/sta_flow.ml: Device Eqwave Format Liberty List Noise Printf Sta String Waveform
