examples/figure2_waveforms.mli:
