examples/netlist_sta.mli:
