examples/crosstalk_sweep.ml: Array Format List Noise Printf Sys
