examples/quickstart.ml: Array Circuit Device Eqwave Float List Option Printf Spice Transient Waveform
