examples/figure2_waveforms.ml: Array Device Eqwave Fun Noise Printf Spice Sys Waveform
