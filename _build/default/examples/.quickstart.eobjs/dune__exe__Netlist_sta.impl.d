examples/netlist_sta.ml: Array Device Format Liberty List Printf Sta String Sys Waveform
