examples/quickstart.mli:
