examples/crosstalk_sweep.mli:
