(* Netlist-file STA: load a design from the textual netlist format,
   characterize the library, and produce timing + slack reports.

     dune exec examples/netlist_sta.exe [-- <file.net>] *)

let proc = Device.Process.c13

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "examples/data/pipeline.net"
  in
  let netlist = Sta.Netlist_io.load path in
  Printf.printf "loaded %s: %d gates, %d nets\n%!" path
    (List.length (Sta.Netlist.instances netlist))
    (List.length (Sta.Netlist.nets netlist));
  Printf.printf "round-trip:\n%s\n" (Sta.Netlist_io.to_string netlist);

  (* Characterize only the cells the design instantiates. *)
  let cells_used =
    Sta.Netlist.instances netlist
    |> List.map (fun (i : Sta.Netlist.instance) -> i.Sta.Netlist.cell)
    |> List.sort_uniq compare
  in
  Printf.printf "characterizing: %s\n%!" (String.concat ", " cells_used);
  let drive_of name =
    (* INVx<k> names; extend here for other families. *)
    int_of_string (String.sub name 4 (String.length name - 4))
  in
  let library =
    List.map
      (fun name -> Liberty.Characterize.run proc (Device.Cell.inv proc ~drive:(drive_of name)))
      cells_used
  in

  let cfg = Sta.Propagate.config library in
  let stim =
    { Sta.Propagate.arrival = 0.0; slew = 150e-12; dir = Waveform.Wave.Rising }
  in
  let stimuli = List.map (fun i -> (i, stim)) (Sta.Netlist.inputs netlist) in
  let result = Sta.Propagate.run cfg netlist ~stimuli in
  Format.printf "@.timing:@.%a@." Sta.Propagate.pp_result result;

  let required =
    List.map (fun o -> (o, 350e-12)) (Sta.Netlist.outputs netlist)
  in
  let slack = Sta.Constraints.analyze netlist result ~required in
  Format.printf "slack (350 ps requirement):@.%a@." Sta.Constraints.pp slack;
  Printf.printf "timing %s\n"
    (if Sta.Constraints.met slack then "MET" else "VIOLATED")
