(* STA flow: characterize the library, build a small gate-level design
   with an RC net, and time it nominally and with a recorded crosstalk
   waveform reduced by each technique — the paper's integration story.

     dune exec examples/sta_flow.exe *)

let proc = Device.Process.c13

let () =
  (* 1. Characterize the cells (a coarse grid keeps this quick). *)
  Printf.printf "characterizing cells...\n%!";
  let grid cell =
    let cin = Device.Cell.input_cap proc cell in
    {
      Liberty.Characterize.slews = [| 30e-12; 100e-12; 200e-12; 400e-12 |];
      loads = [| 0.5 *. cin; 2.0 *. cin; 8.0 *. cin; 24.0 *. cin |];
    }
  in
  let library =
    List.map
      (fun c -> Liberty.Characterize.run ~grid:(grid c) proc c)
      Device.Cell.[ inv_x1; inv_x4; inv_x16; inv_x64 ]
  in

  (* 2. A five-net design: chain with a long coupled net in the middle. *)
  let n = Sta.Netlist.create () in
  Sta.Netlist.input n "in";
  Sta.Netlist.gate n ~cell:"INVx1" ~name:"u1" ~input:"in" ~output:"n1";
  Sta.Netlist.gate n ~cell:"INVx4" ~name:"u2" ~input:"n1" ~output:"bus";
  Sta.Netlist.set_load n "bus"
    (Sta.Netlist.Line Noise.Scenario.config_i.Noise.Scenario.line);
  Sta.Netlist.gate n ~cell:"INVx16" ~name:"u3" ~input:"bus" ~output:"n3";
  Sta.Netlist.gate n ~cell:"INVx64" ~name:"u4" ~input:"n3" ~output:"out";
  Sta.Netlist.output n "out";

  let stim =
    { Sta.Propagate.arrival = 0.0; slew = 150e-12; dir = Waveform.Wave.Rising }
  in

  (* 3. Nominal STA. *)
  let cfg = Sta.Propagate.config library in
  let nominal = Sta.Propagate.run cfg n ~stimuli:[ ("in", stim) ] in
  Printf.printf "\nnominal timing:\n";
  Format.printf "%a@." Sta.Propagate.pp_result nominal;
  Printf.printf "critical path: %s\n"
    (String.concat " -> " (Sta.Propagate.critical_path n nominal));

  (* 4. Record a crosstalk waveform for the bus from the Figure-1
     scenario, aligned to the bus's nominal arrival. *)
  let scen = Noise.Scenario.config_i in
  let noisy =
    Noise.Injection.noisy scen ~tau:(scen.Noise.Scenario.victim_t0 +. 0.05e-9)
  in
  let th = Device.Process.thresholds proc in
  let at_bus = (List.assoc "bus" nominal.Sta.Propagate.timings).Sta.Propagate.at in
  let wave =
    match Waveform.Wave.arrival noisy.Noise.Injection.far th with
    | Some t -> Waveform.Wave.shift noisy.Noise.Injection.far (at_bus -. t)
    | None -> failwith "no arrival on recorded waveform"
  in

  (* 5. Constrain the output and report slack. *)
  let period = 400e-12 in
  let report = Sta.Constraints.analyze n nominal ~required:[ ("out", period) ] in
  Printf.printf "\nslack against a %.0f ps requirement:\n" (period *. 1e12);
  Format.printf "%a@." Sta.Constraints.pp report;

  (* 6. Noise-aware STA with each technique on the noisy pin. *)
  Printf.printf "\nworst arrival with the bus waveform reduced by:\n";
  List.iter
    (fun (tech : Eqwave.Technique.t) ->
      let cfg = Sta.Propagate.config ~technique:tech library in
      match Sta.Propagate.run ~noisy_pins:[ ("bus", wave) ] cfg n
              ~stimuli:[ ("in", stim) ] with
      | r -> (
          match r.Sta.Propagate.worst_output with
          | Some (_, t) ->
              Printf.printf "  %-6s %8.1f ps\n" tech.Eqwave.Technique.name
                (t.Sta.Propagate.at *. 1e12)
          | None -> ())
      | exception Failure msg ->
          Printf.printf "  %-6s failed: %s\n" tech.Eqwave.Technique.name msg)
    Eqwave.Registry.all
