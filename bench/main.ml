(* Benchmark harness: regenerates every table and figure of the paper.

   Sections (select by passing their names as arguments; default all):
     figure1  — the experimental setup (Figure 1): topology summary and
                interconnect sanity checks
     figure2  — rho_noiseless / rho_eff / Gamma_eff / v_out_eff series
                (Figure 2a and 2b)
     table1   — accuracy comparison across all techniques (Table 1)
     runtime  — per-technique extraction latency and the SGDP cost vs P
                sweep (Section 4.2), measured with Bechamel
     kernel   — solver hot-path A/B on a Config II sweep: dense LU with
                per-iteration refactorization vs the auto-selected
                bordered-banded kernel with Jacobian reuse (per-solve
                wall time, factorization counts, delay drift)
     batch    — batch-first A/B on the same sweep: the lockstep
                multi-case kernel behind Transient.run_batch vs the
                one-at-a-time scalar loop (per-solve wall time,
                batched/peeled counts, exact-identity drift check)
     ablation — SGDP design-choice ablations (DESIGN.md)
     nonoverlap — the two-stage-buffer receiver extension (the paper's
                non-overlapping-transition case)
     worstcase — worst-aggressor-alignment search (noise-aware STA)
     corners  — technique accuracy across process corners
     montecarlo — randomized alignment/polarity error percentiles
     awe      — moment-matched interconnect model vs transient sim

   Options:
     --cases N      per-configuration case count (default 100 here; the
                    paper's full 200 is used by `bin/sta_main.exe table1
                    --cases 200`, see EXPERIMENTS.md)
     --jobs N       worker domains for the simulation sweeps (default 1;
                    results are byte-identical to the sequential run)
     --engine NAME  solver engine preset: reference | accurate | fast
                    (default reference, the fixed 1 ps grid)
     --ltetol X     adaptive LTE tolerance in volts; implies adaptive
                    stepping on top of the selected engine
     --no-cache     disable the simulation memo cache
     --cache-dir D  on-disk cache directory (default .noisy_sta_cache;
                    repeated invocations skip already-simulated cases)
     --metrics      print the Runtime.Metrics report after the run
     --json FILE    write machine-readable results (table rows plus the
                    metrics snapshot) for cross-PR perf tracking
     --retries N    resilience ladder attempt budget (total attempts
                    including the first; default: the policy's own)
     --fallback P   resilience policy: standard | none
     --checkpoint D journal completed table1/montecarlo cases under D;
                    an interrupted sweep resumes from the journal
     --inject-faults SPEC
                    deterministic fault injection for resilience
                    testing: nth:N | RATE[@SEED], prefix nan: for
                    corrupted-waveform faults or slow: for stalled
                    solves (e.g. 0.1@7, nan:nth:3, slow:nth:5)
     --deadline MS  per-solve wall-clock budget in milliseconds; an
                    expired solve becomes a typed deadline_exceeded
                    failure instead of hanging the sweep
     --ladder LIST  comma-separated technique names for the Gamma_eff
                    degradation ladder (default SGDP,WLS5,LSF3,E4,P1)
     --guard        enable the differential accuracy guard: a
                    deterministic sample of fast-engine cases is
                    re-checked against the reference preset
     --guard-every N  guard sampling stride (default 8; 1 = every case)
     --guard-tol-ps X guard delay tolerance in picoseconds (default 1)
     --solver KIND  linear-kernel selection: dense | banded | auto
     --no-jac-reuse refactor the Jacobian on every Newton iteration
     --batch N      lockstep batch width the engine submits at a time
                    (default 16; 1 disables lockstep batching)
     --compare FILE regression gate for the kernel and batch sections:
                    fail when the per-solve time regressed >25% or
                    delays drifted >0.01 ps against FILE (a previous
                    --json output) *)

(* The engine/runtime flags are the shared Runtime.Cli set; the parsed
   spec lands here before any section runs. *)
let cli : Runtime.Cli.spec option ref = ref None
let cli_spec () = Option.get !cli

let cases = ref 100
let want_metrics = ref false
let json_out : string option ref = ref None
let sections : string list ref = ref []
let checkpoint_dir : string option ref = ref None
let ladder_names : string list option ref = ref None
let compare_file : string option ref = ref None
let exit_code = ref 0

let ladder =
  lazy
    (match !ladder_names with
    | Some names -> Eqwave.Ladder.of_names names
    | None -> Eqwave.Ladder.default)

(* The one engine every sweep below runs on: the shared Runtime.Cli
   assembly (preset solver config with the flag overrides layered on,
   plus the pool and cache the whole run shares). *)
let engine = lazy (Runtime.Cli.engine_of_spec (cli_spec ()))
let pool = lazy (Runtime.Engine.pool (Lazy.force engine))
let cache = lazy (Runtime.Engine.cache (Lazy.force engine))

let metrics = Runtime.Metrics.create ()

let section_enabled wanted = !sections = [] || List.mem wanted !sections

let header title =
  Printf.printf "\n==================== %s ====================\n%!" title

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)

let figure1 () =
  header "Figure 1: experimental setup";
  List.iter
    (fun scen ->
      let ckt, _ = Noise.Scenario.build scen ~aggressor_active:true ~tau:1e-9 in
      Printf.printf "%s: %s\n" scen.Noise.Scenario.name
        (Spice.Circuit.summary ckt);
      let line = scen.Noise.Scenario.line in
      Printf.printf
        "  line: R=%.1f ohm C=%.1f fF over %d sections; Cm=%.0f fF/pair\n"
        line.Interconnect.Rcline.rtotal
        (line.Interconnect.Rcline.ctotal *. 1e15)
        line.Interconnect.Rcline.nsegs
        (scen.Noise.Scenario.cm_total *. 1e15);
      Printf.printf "  line Elmore delay: %.2f ps (discrete %.2f ps)\n"
        (Interconnect.Rcline.elmore line *. 1e12)
        (Interconnect.Rcline.elmore_discrete line *. 1e12);
      let th = Device.Process.thresholds scen.Noise.Scenario.proc in
      let r = Noise.Injection.noiseless ~engine:(Lazy.force engine) scen in
      let show name w =
        match
          (Waveform.Wave.arrival w th, Waveform.Wave.slew w th)
        with
        | Some a, Some s ->
            Printf.printf "  noiseless %s: arrival %.1f ps, slew %.1f ps\n"
              name (a *. 1e12) (s *. 1e12)
        | _ -> Printf.printf "  noiseless %s: (no transition?)\n" name
      in
      show "in_u (victim far end)" r.Noise.Injection.far;
      show "out_u (receiver out)" r.Noise.Injection.rcv)
    [ Noise.Scenario.config_i; Noise.Scenario.config_ii ]

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)

let representative_tau scen =
  (* An alignment where the aggressor meaningfully distorts the victim
     transition: slightly after the victim launch. *)
  scen.Noise.Scenario.victim_t0

let figure2 () =
  header "Figure 2: sensitivity and equivalent waveforms";
  let scen = Noise.Scenario.config_i in
  let th = Device.Process.thresholds scen.Noise.Scenario.proc in
  let noiseless = Noise.Injection.noiseless ~engine:(Lazy.force engine) scen in
  let tau = representative_tau scen in
  let noisy = Noise.Injection.noisy ~engine:(Lazy.force engine) scen ~tau in
  let ctx = Noise.Injection.ctx_of_runs scen ~noiseless ~noisy in
  let sens = Eqwave.Sensitivity.compute ctx in
  let region_nl = Eqwave.Technique.noiseless_critical_region ctx in
  let region_ny = Eqwave.Technique.noisy_critical_region ctx in
  Printf.printf
    "victim transition with aggressor at tau = %.0f ps\n\
     noiseless critical region [%.0f, %.0f] ps; noisy [%.0f, %.0f] ps\n\
     peak |rho| = %.2f\n"
    (tau *. 1e12)
    (fst region_nl *. 1e12) (snd region_nl *. 1e12)
    (fst region_ny *. 1e12) (snd region_ny *. 1e12)
    (Eqwave.Sensitivity.peak sens);
  let gamma = Eqwave.Sgdp.sgdp.Eqwave.Technique.run ctx in
  Printf.printf "SGDP Gamma_eff: arrival %.1f ps, slew %.1f ps\n"
    (Waveform.Ramp.arrival gamma th *. 1e12)
    (Waveform.Ramp.slew gamma th *. 1e12);
  let v_out_eff =
    Noise.Injection.receiver_response ~engine:(Lazy.force engine) scen
      ~input:(Spice.Source.of_ramp gamma) ~tstop:scen.Noise.Scenario.tstop
  in
  let v_out_ref =
    Noise.Injection.receiver_response ~engine:(Lazy.force engine) scen
      ~input:(Spice.Source.of_wave noisy.Noise.Injection.far)
      ~tstop:scen.Noise.Scenario.tstop
  in
  (* Figure 2a series: v_in, v_out, 0.2 x rho over the noiseless region;
     Figure 2b series: noisy input, Gamma_eff, 0.2 x rho_eff, outputs. *)
  Printf.printf
    "\n  t(ps)   v_nl_in  v_nl_out  0.2*rho | v_noisy  Gamma   0.2*rho_eff  v_out_eff  v_out_ref\n";
  let t0 = fst region_ny -. 100e-12 and t1 = snd region_ny +. 150e-12 in
  let samples = 28 in
  let rho_eff_at =
    let ts1 = Array.init 256 (fun i ->
        t0 +. ((t1 -. t0) *. float_of_int i /. 255.0)) in
    let rho, _ = Eqwave.Sgdp.rho_eff sens ctx ts1 in
    fun t ->
      let i =
        int_of_float ((t -. t0) /. (t1 -. t0) *. 255.0)
        |> Int.max 0 |> Int.min 255
      in
      rho.(i)
  in
  for i = 0 to samples - 1 do
    let t = t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (samples - 1)) in
    Printf.printf
      "  %6.0f   %6.3f   %6.3f   %6.3f | %6.3f   %6.3f   %6.3f       %6.3f     %6.3f\n"
      (t *. 1e12)
      (Waveform.Wave.value_at ctx.Eqwave.Technique.noiseless_in t)
      (Waveform.Wave.value_at ctx.Eqwave.Technique.noiseless_out t)
      (0.2 *. Eqwave.Sensitivity.rho_at_time sens t)
      (Waveform.Wave.value_at ctx.Eqwave.Technique.noisy_in t)
      (Waveform.Ramp.value_at gamma t)
      (0.2 *. rho_eff_at t)
      (Waveform.Wave.value_at v_out_eff t)
      (Waveform.Wave.value_at v_out_ref t)
  done;
  match
    (Waveform.Wave.arrival v_out_eff th, Waveform.Wave.arrival v_out_ref th)
  with
  | Some a, Some b ->
      Printf.printf
        "\nv_out_eff vs reference output arrival: %.1f vs %.1f ps (err %.1f ps)\n"
        (a *. 1e12) (b *. 1e12)
        ((a -. b) *. 1e12)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

(* (scenario, elapsed seconds, rows, degradation) per configuration,
   for --json. *)
let table1_results :
    (string * float * Noise.Eval.row list * Noise.Eval.degradation_summary)
    list ref = ref []

let table1 () =
  header (Printf.sprintf "Table 1: accuracy comparison (%d cases/config)" !cases);
  List.iter
    (fun scen ->
      let scen = Noise.Scenario.with_cases scen !cases in
      let t0 = Unix.gettimeofday () in
      let table =
        Noise.Eval.run_table ~engine:(Lazy.force engine)
          ~ladder:(Lazy.force ladder)
          ?checkpoint_dir:!checkpoint_dir
          ~progress:(fun k n ->
            if k mod 25 = 0 then Printf.eprintf "  %s: %d/%d\r%!" scen.Noise.Scenario.name k n)
          scen
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Printf.eprintf "%40s\r%!" "";
      Format.printf "%a@." Noise.Eval.pp_table table;
      Printf.printf "(%.1f s)\n" elapsed;
      table1_results :=
        !table1_results
        @ [
            ( scen.Noise.Scenario.name,
              elapsed,
              table.Noise.Eval.rows,
              table.Noise.Eval.degradation );
          ])
    [ Noise.Scenario.config_i; Noise.Scenario.config_ii ]

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let json_obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields)
  ^ "}"

let json_list xs = "[" ^ String.concat "," xs ^ "]"

(* ------------------------------------------------------------------ *)
(* Runtime comparison (Section 4.2) via Bechamel                       *)

(* JSON fragment from the fixed-vs-adaptive sweep, for --json. *)
let adaptive_json : string option ref = ref None

let bench_ctx =
  lazy
    (let scen = Noise.Scenario.config_i in
     let noiseless = Noise.Injection.noiseless ~engine:(Lazy.force engine) scen in
     let noisy =
       Noise.Injection.noisy ~engine:(Lazy.force engine) scen
         ~tau:(representative_tau scen)
     in
     Noise.Injection.ctx_of_runs scen ~noiseless ~noisy)

let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"t" tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      match Analyze.OLS.estimates est with
      | Some (v :: _) -> rows := (name, v) :: !rows
      | _ -> ())
    results;
  List.sort compare !rows

let runtime () =
  header "Section 4.2: run-time comparison (per-gate extraction)";
  let ctx = Lazy.force bench_ctx in
  let tests =
    List.map
      (fun (tech : Eqwave.Technique.t) ->
        Bechamel.Test.make ~name:tech.Eqwave.Technique.name
          (Bechamel.Staged.stage (fun () ->
               match tech.Eqwave.Technique.run ctx with
               | (_ : Waveform.Ramp.t) -> ()
               | exception Eqwave.Technique.Unsupported _ -> ())))
      Eqwave.Registry.all
  in
  Printf.printf "equivalent-waveform extraction, P = %d samples:\n"
    ctx.Eqwave.Technique.samples;
  List.iter
    (fun (name, ns) -> Printf.printf "  %-12s %10.2f us/gate\n" name (ns /. 1e3))
    (run_bechamel tests);
  (* SGDP cost vs P (the paper: smaller P is cheaper but less accurate). *)
  Printf.printf "\nSGDP extraction cost vs P:\n";
  let p_tests =
    List.map
      (fun p ->
        let ctx = { ctx with Eqwave.Technique.samples = p } in
        Bechamel.Test.make ~name:(Printf.sprintf "P=%03d" p)
          (Bechamel.Staged.stage (fun () ->
               match Eqwave.Sgdp.sgdp.Eqwave.Technique.run ctx with
               | (_ : Waveform.Ramp.t) -> ()
               | exception Eqwave.Technique.Unsupported _ -> ())))
      [ 5; 10; 20; 35; 70; 140 ]
  in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-12s %10.2f us/gate\n" name (ns /. 1e3))
    (run_bechamel p_tests);
  (* Accuracy vs P on a small sweep, completing the paper's cost-vs-
     accuracy remark. *)
  Printf.printf "\nSGDP accuracy vs P (20-case Config I sweep):\n";
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_i 20 in
  List.iter
    (fun p ->
      let table =
        Noise.Eval.run_table ~samples:p ~engine:(Lazy.force engine)
          ~techniques:[ Eqwave.Sgdp.sgdp ] scen
      in
      match table.Noise.Eval.rows with
      | [ row ] ->
          Printf.printf "  P=%-4d max %.1f ps avg %.1f ps (failed %d)\n" p
            row.Noise.Eval.max_abs_ps row.Noise.Eval.avg_abs_ps
            row.Noise.Eval.n_failed
      | _ -> ())
    [ 5; 10; 20; 35; 70 ];
  (* Fixed-grid vs LTE-adaptive stepping on a Config I slice: accepted
     step counts, gate-delay drift, and parallel determinism. Fresh
     engines with no cache so the step counters measure real solver
     work, not memo hits. *)
  let n = Int.min !cases 20 in
  Printf.printf "\nadaptive vs fixed stepping (%d-case Config I sweep):\n" n;
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_i n in
  let sweep engine =
    let before = Spice.Transient.Stats.snapshot () in
    let t0 = Unix.gettimeofday () in
    let table =
      Noise.Eval.run_table ~techniques:[ Eqwave.Sgdp.sgdp ] ~engine scen
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let d = Spice.Transient.Stats.(diff (snapshot ()) before) in
    (List.map (fun c -> c.Noise.Eval.delay_ref) table.Noise.Eval.cases, d, elapsed)
  in
  let fixed_engine = Runtime.Engine.reference in
  (* Compare against the CLI engine when it is adaptive, else the stock
     adaptive defaults on the reference config. *)
  let adaptive_solver =
    let e = Lazy.force engine in
    if Runtime.Engine.is_adaptive e then Runtime.Engine.solver e
    else Spice.Transient.(with_adaptive default_config)
  in
  let adaptive_engine =
    Runtime.Engine.make ~name:"adaptive" ~solver:adaptive_solver ()
  in
  let d_fixed, s_fixed, t_fixed = sweep fixed_engine in
  let d_adapt, s_adapt, t_adapt = sweep adaptive_engine in
  let deltas_ps =
    List.map2 (fun a b -> abs_float (a -. b) *. 1e12) d_fixed d_adapt
  in
  let max_delta = List.fold_left Float.max 0.0 deltas_ps in
  let avg_delta =
    List.fold_left ( +. ) 0.0 deltas_ps /. float_of_int (List.length deltas_ps)
  in
  let open Spice.Transient.Stats in
  let ratio = float_of_int s_fixed.steps /. float_of_int s_adapt.steps in
  Printf.printf
    "  fixed    %8d accepted steps              %6.1f s\n\
    \  adaptive %8d accepted steps (%d rejected) %6.1f s\n\
    \  step ratio %.2fx fewer; gate-delay drift max %.4f ps avg %.4f ps\n"
    s_fixed.steps t_fixed s_adapt.steps s_adapt.rejected_steps t_adapt ratio
    max_delta avg_delta;
  (* Determinism: the adaptive sweep on two domains must reproduce the
     sequential result bit-for-bit. *)
  let pool2 = Runtime.Pool.create ~jobs:2 () in
  let d_par, _, _ =
    sweep (Runtime.Engine.with_pool adaptive_engine pool2)
  in
  Runtime.Pool.shutdown pool2;
  let deterministic =
    List.for_all2
      (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
      d_adapt d_par
  in
  Printf.printf "  parallel (2 jobs) identical to sequential: %b\n" deterministic;
  adaptive_json :=
    Some
      (json_obj
         [
           ("n_cases", string_of_int n);
           ("fixed_steps", string_of_int s_fixed.steps);
           ("adaptive_steps", string_of_int s_adapt.steps);
           ("adaptive_rejected", string_of_int s_adapt.rejected_steps);
           ("step_ratio", Printf.sprintf "%.4f" ratio);
           ("max_delay_delta_ps", Printf.sprintf "%.6f" max_delta);
           ("avg_delay_delta_ps", Printf.sprintf "%.6f" avg_delta);
           ("fixed_elapsed_s", Printf.sprintf "%.3f" t_fixed);
           ("adaptive_elapsed_s", Printf.sprintf "%.3f" t_adapt);
           ("parallel_deterministic", if deterministic then "true" else "false");
         ])

(* ------------------------------------------------------------------ *)
(* Kernel: solver hot-path A/B (dense vs banded + Jacobian reuse)      *)

(* JSON fragment from the kernel comparison, for --json and the
   regression gate. *)
let kernel_json : string option ref = ref None

(* Minimal JSON scanning for --compare: pull one numeric scalar or one
   numeric array out of a baseline file by key, without a JSON parser
   dependency. Good enough because BENCH_baseline.json is produced by
   this very program. *)
let find_sub text pat =
  let n = String.length text and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub text i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let scan_number text key =
  match find_sub text (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some pos ->
      let buf = Buffer.create 24 in
      let n = String.length text in
      let rec take i =
        if i < n then
          match text.[i] with
          | ',' | '}' | ']' -> ()
          | c ->
              Buffer.add_char buf c;
              take (i + 1)
      in
      take pos;
      float_of_string_opt (String.trim (Buffer.contents buf))

let scan_array text key =
  match find_sub text (Printf.sprintf "\"%s\":[" key) with
  | None -> None
  | Some pos -> (
      match String.index_from_opt text pos ']' with
      | None -> None
      | Some close ->
          let body = String.sub text pos (close - pos) in
          if String.trim body = "" then Some []
          else
            String.split_on_char ',' body
            |> List.map (fun s -> float_of_string_opt (String.trim s))
            |> List.fold_left
                 (fun acc x ->
                   match (acc, x) with
                   | Some l, Some v -> Some (v :: l)
                   | _ -> None)
                 (Some [])
            |> Option.map List.rev)

let kernel_compare ~opt_per_solve_ms ~delays_ps path =
  let text =
    In_channel.with_open_text path In_channel.input_all
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.printf "  REGRESSION vs %s: %s\n" path msg;
        exit_code := 1)
      fmt
  in
  (match scan_number text "opt_per_solve_ms" with
  | None -> fail "baseline has no opt_per_solve_ms"
  | Some base ->
      let limit = base *. 1.25 in
      if opt_per_solve_ms > limit then
        fail "per-solve %.3f ms exceeds baseline %.3f ms by >25%%"
          opt_per_solve_ms base
      else
        Printf.printf "  per-solve %.3f ms vs baseline %.3f ms: ok\n"
          opt_per_solve_ms base);
  match scan_array text "delays_ps" with
  | None -> fail "baseline has no delays_ps array"
  | Some base ->
      if List.length base <> List.length delays_ps then
        Printf.printf
          "  (baseline has %d delays, this run %d — skipping drift check; \
           re-run with matching --cases)\n"
          (List.length base) (List.length delays_ps)
      else
        let drift =
          List.fold_left2
            (fun acc a b -> Float.max acc (abs_float (a -. b)))
            0.0 base delays_ps
        in
        if drift > 0.01 then
          fail "delay drift %.4f ps vs baseline exceeds 0.01 ps" drift
        else Printf.printf "  delay drift %.4f ps vs baseline: ok\n" drift

let kernel () =
  header "Kernel: solver hot path (dense vs banded + Jacobian reuse)";
  let n = Int.min !cases 20 in
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_ii n in
  (* Fresh engines with neither pool nor cache so elapsed time and the
     Stats counters measure real solver work. Both sides share the
     CLI preset's step control; only the linear kernel and reuse
     policy differ. *)
  let base =
    let s = cli_spec () in
    let e = Runtime.Engine.of_name s.Runtime.Cli.engine_name in
    match s.Runtime.Cli.ltetol with
    | Some tol ->
        Runtime.Engine.map_solver e (fun c ->
            Spice.Transient.with_adaptive ~lte_tol:tol c)
    | None -> e
  in
  let dense_engine =
    Runtime.Engine.with_jac_reuse
      (Runtime.Engine.with_solver_kind base Spice.Transient.Dense)
      false
  in
  let opt_engine =
    Runtime.Engine.with_jac_reuse
      (Runtime.Engine.with_solver_kind base Spice.Transient.Auto)
      true
  in
  let sweep engine =
    let before = Spice.Transient.Stats.snapshot () in
    let t0 = Unix.gettimeofday () in
    let table =
      Noise.Eval.run_table ~techniques:[ Eqwave.Sgdp.sgdp ] ~engine scen
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let d = Spice.Transient.Stats.(diff (snapshot ()) before) in
    ( List.map
        (fun c -> c.Noise.Eval.delay_ref *. 1e12)
        table.Noise.Eval.cases,
      d,
      elapsed )
  in
  let d_dense, s_dense, t_dense = sweep dense_engine in
  let d_opt, s_opt, t_opt = sweep opt_engine in
  let open Spice.Transient.Stats in
  let per_solve_ms elapsed (s : snapshot) =
    if s.sims = 0 then 0.0 else elapsed *. 1e3 /. float_of_int s.sims
  in
  let dense_ms = per_solve_ms t_dense s_dense in
  let opt_ms = per_solve_ms t_opt s_opt in
  let speedup = if opt_ms > 0.0 then dense_ms /. opt_ms else 0.0 in
  let drift_ps =
    List.fold_left2
      (fun acc a b -> Float.max acc (abs_float (a -. b)))
      0.0 d_dense d_opt
  in
  Printf.printf
    "  %d-case Config II sweep, %d sims per side\n\
    \  dense, no reuse   %8.3f ms/solve  (%d factorizations / %d iters)\n\
    \  auto + reuse      %8.3f ms/solve  (%d factorizations / %d iters, \
     %d reused, %d banded sims)\n\
    \  speedup %.2fx; max delay drift %.4f ps\n"
    n s_dense.sims dense_ms s_dense.factorizations s_dense.newton_iters
    opt_ms s_opt.factorizations s_opt.newton_iters s_opt.jac_reuses
    s_opt.banded_solves speedup drift_ps;
  kernel_json :=
    Some
      (json_obj
         [
           ("n_cases", string_of_int n);
           ("sims", string_of_int s_opt.sims);
           ("dense_per_solve_ms", Printf.sprintf "%.6f" dense_ms);
           ("opt_per_solve_ms", Printf.sprintf "%.6f" opt_ms);
           ("speedup", Printf.sprintf "%.4f" speedup);
           ("dense_factorizations", string_of_int s_dense.factorizations);
           ("dense_newton_iters", string_of_int s_dense.newton_iters);
           ("opt_factorizations", string_of_int s_opt.factorizations);
           ("opt_newton_iters", string_of_int s_opt.newton_iters);
           ("jac_reuses", string_of_int s_opt.jac_reuses);
           ("banded_solves", string_of_int s_opt.banded_solves);
           ("max_delay_delta_ps", Printf.sprintf "%.6f" drift_ps);
           ( "delays_ps",
             json_list (List.map (Printf.sprintf "%.6f") d_opt) );
         ]);
  match !compare_file with
  | Some path -> kernel_compare ~opt_per_solve_ms:opt_ms ~delays_ps:d_opt path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Batch: the lockstep multi-case kernel behind the batch-first API    *)

(* JSON fragment from the batch-vs-scalar comparison, for --json and
   the regression gate. *)
let batch_json : string option ref = ref None

let batch_compare ~batch_per_solve_ms ~delays_ps path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.printf "  REGRESSION vs %s: %s\n" path msg;
        exit_code := 1)
      fmt
  in
  (match scan_number text "batch_per_solve_ms" with
  | None -> fail "baseline has no batch_per_solve_ms"
  | Some base ->
      let limit = base *. 1.25 in
      if batch_per_solve_ms > limit then
        fail "batch per-solve %.3f ms exceeds baseline %.3f ms by >25%%"
          batch_per_solve_ms base
      else
        Printf.printf "  batch per-solve %.3f ms vs baseline %.3f ms: ok\n"
          batch_per_solve_ms base);
  match scan_array text "delays_ps" with
  | None -> fail "baseline has no delays_ps array"
  | Some base ->
      if List.length base <> List.length delays_ps then
        Printf.printf
          "  (baseline has %d delays, this run %d — skipping drift check; \
           re-run with matching --cases)\n"
          (List.length base) (List.length delays_ps)
      else
        let drift =
          List.fold_left2
            (fun acc a b -> Float.max acc (abs_float (a -. b)))
            0.0 base delays_ps
        in
        if drift > 0.01 then
          fail "delay drift %.4f ps vs baseline exceeds 0.01 ps" drift
        else Printf.printf "  delay drift %.4f ps vs baseline: ok\n" drift

let batch_stage () =
  header "Batch: lockstep multi-case kernel vs one-at-a-time scalar loop";
  let n = Int.min !cases 20 in
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_ii n in
  let s = cli_spec () in
  (* Scalar side: the CLI preset exactly as the kernel section's
     optimized engine runs it — sequential, uncached, one case at a
     time. This is the BENCH_baseline.json configuration. *)
  let scalar_engine =
    let e = Runtime.Engine.of_name s.Runtime.Cli.engine_name in
    match s.Runtime.Cli.ltetol with
    | Some tol ->
        Runtime.Engine.map_solver e (fun c ->
            Spice.Transient.with_adaptive ~lte_tol:tol c)
    | None -> e
  in
  (* Batch side: the same solver config behind the batch-first surface
     — a lockstep batch width sized so the prewarm groups fill the
     pool, a fresh in-memory cache for the kernel to publish into, and
     worker domains for the fan-out. *)
  let jobs =
    if s.Runtime.Cli.jobs > 1 then s.Runtime.Cli.jobs
    else Domain.recommended_domain_count ()
  in
  let bpool = if jobs > 1 then Some (Runtime.Pool.create ~jobs ()) else None in
  let width =
    match s.Runtime.Cli.batch with
    | Some b -> b
    | None -> Int.max 1 ((n + jobs - 1) / jobs)
  in
  let batch_engine =
    let e = Runtime.Engine.with_batch scalar_engine width in
    let e =
      match bpool with Some p -> Runtime.Engine.with_pool e p | None -> e
    in
    Runtime.Engine.with_cache e (Runtime.Cache.create ())
  in
  let sweep engine =
    let before = Spice.Transient.Stats.snapshot () in
    let t0 = Unix.gettimeofday () in
    let table =
      Noise.Eval.run_table ~techniques:[ Eqwave.Sgdp.sgdp ] ~engine scen
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let d = Spice.Transient.Stats.(diff (snapshot ()) before) in
    ( List.map
        (fun c -> c.Noise.Eval.delay_ref *. 1e12)
        table.Noise.Eval.cases,
      d,
      elapsed )
  in
  let d_scalar, s_scalar, t_scalar = sweep scalar_engine in
  let d_batch, s_batch, t_batch = sweep batch_engine in
  Option.iter Runtime.Pool.shutdown bpool;
  let open Spice.Transient.Stats in
  let per_solve_ms elapsed (st : snapshot) =
    if st.sims = 0 then 0.0 else elapsed *. 1e3 /. float_of_int st.sims
  in
  let scalar_ms = per_solve_ms t_scalar s_scalar in
  let batch_ms = per_solve_ms t_batch s_batch in
  let speedup = if batch_ms > 0.0 then scalar_ms /. batch_ms else 0.0 in
  let drift_ps =
    List.fold_left2
      (fun acc a b -> Float.max acc (abs_float (a -. b)))
      0.0 d_scalar d_batch
  in
  Printf.printf
    "  %d-case Config II sweep\n\
    \  scalar loop       %8.3f ms/solve  (%d sims, jobs 1)\n\
    \  batch-first       %8.3f ms/solve  (%d sims, jobs %d, width %d, \
     %d batched, %d peeled)\n\
    \  speedup %.2fx; max delay drift %.4f ps\n"
    n scalar_ms s_scalar.sims batch_ms s_batch.sims jobs width
    s_batch.batched_solves s_batch.peeled_solves speedup drift_ps;
  if s_batch.batched_solves = 0 then begin
    Printf.printf "  FAIL: batch path never selected for the sweep\n";
    exit_code := 1
  end;
  if drift_ps <> 0.0 then begin
    Printf.printf
      "  FAIL: batch kernel must be byte-identical to the scalar loop\n";
    exit_code := 1
  end;
  batch_json :=
    Some
      (json_obj
         [
           ("n_cases", string_of_int n);
           ("jobs", string_of_int jobs);
           ("width", string_of_int width);
           ("scalar_sims", string_of_int s_scalar.sims);
           ("batch_sims", string_of_int s_batch.sims);
           ("scalar_per_solve_ms", Printf.sprintf "%.6f" scalar_ms);
           ("batch_per_solve_ms", Printf.sprintf "%.6f" batch_ms);
           ("speedup", Printf.sprintf "%.4f" speedup);
           ("batched_solves", string_of_int s_batch.batched_solves);
           ("peeled_solves", string_of_int s_batch.peeled_solves);
           ("max_delay_delta_ps", Printf.sprintf "%.6f" drift_ps);
           ( "delays_ps",
             json_list (List.map (Printf.sprintf "%.6f") d_batch) );
         ]);
  match !compare_file with
  | Some path -> batch_compare ~batch_per_solve_ms:batch_ms ~delays_ps:d_batch path
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation () =
  header "SGDP ablations (design choices)";
  let variants =
    [
      ("SGDP (full)", Eqwave.Sgdp.sgdp);
      ( "no 2nd-order term",
        Eqwave.Sgdp.(make { default_options with second_order = false }) );
      ( "no commit masking",
        Eqwave.Sgdp.(make { default_options with commit_masking = false }) );
      ( "no overlap align",
        Eqwave.Sgdp.(make { default_options with align_non_overlapping = false })
      );
    ]
  in
  let techniques = List.map snd variants in
  let n = Int.min !cases 60 in
  List.iter
    (fun scen ->
      let scen = Noise.Scenario.with_cases scen n in
      let table =
        Noise.Eval.run_table ~techniques ~engine:(Lazy.force engine) scen
      in
      Printf.printf "%s (%d cases):\n" scen.Noise.Scenario.name n;
      List.iteri
        (fun i row ->
          Printf.printf "  %-20s max %6.1f ps avg %6.1f ps (failed %d)\n"
            (fst (List.nth variants i))
            row.Noise.Eval.max_abs_ps row.Noise.Eval.avg_abs_ps
            row.Noise.Eval.n_failed)
        table.Noise.Eval.rows)
    [ Noise.Scenario.config_i; Noise.Scenario.config_ii ]

(* ------------------------------------------------------------------ *)
(* Extensions                                                          *)

let nonoverlap () =
  header "Extension: two-stage buffer receiver (non-overlapping case)";
  let n = Int.min !cases 60 in
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_i_buffer n in
  let table =
    Noise.Eval.run_table ~engine:(Lazy.force engine) scen
  in
  Format.printf "%a@." Noise.Eval.pp_table table;
  Printf.printf
    "(WLS5's failures here are the paper's point: with a multi-stage\n\
    \ receiver the sensitivity window thins out and the weighted fit\n\
    \ degenerates, while SGDP's alignment step keeps it defined.)\n"

let worstcase () =
  header "Extension: worst-case aggressor alignment search";
  List.iter
    (fun scen ->
      let t0 = Unix.gettimeofday () in
      let r =
        Noise.Worst_case.search ~coarse:16 ~refine:8
          ~engine:(Lazy.force engine) scen
      in
      Format.printf "%s: %a  [%.1f s]@." scen.Noise.Scenario.name
        Noise.Worst_case.pp r
        (Unix.gettimeofday () -. t0))
    [ Noise.Scenario.config_i; Noise.Scenario.config_ii ]

(* ------------------------------------------------------------------ *)
(* Sweep: branch-and-bound alignment pruning + sparse waveform storage *)

(* JSON fragment from the sweep section, for --json and the
   regression gate. *)
let sweep_json : string option ref = ref None

let sweep_compare ~pruned_solves ~sparse_ratio path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.printf "  REGRESSION vs %s: %s\n" path msg;
        exit_code := 1)
      fmt
  in
  (match scan_number text "pruned_solves" with
  | None -> fail "baseline has no pruned_solves"
  | Some base ->
      let limit = int_of_float (Float.round (base *. 1.25)) in
      if pruned_solves > limit then
        fail "pruned sweep took %d solves, baseline %.0f (>25%% more)"
          pruned_solves base
      else
        Printf.printf "  pruned solves %d vs baseline %.0f: ok\n"
          pruned_solves base);
  match scan_number text "sparse_ratio" with
  | None -> fail "baseline has no sparse_ratio"
  | Some base ->
      if sparse_ratio < base *. 0.8 then
        fail "sparse compression %.2fx fell below 80%% of baseline %.2fx"
          sparse_ratio base
      else
        Printf.printf "  sparse ratio %.2fx vs baseline %.2fx: ok\n"
          sparse_ratio base

let sweep_stage () =
  header "Sweep: branch-and-bound alignment search + sparse storage";
  let n = !cases in
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_ii n in
  let s = cli_spec () in
  let tol =
    if s.Runtime.Cli.prune_tol_ps > 0.0 then s.Runtime.Cli.prune_tol_ps
    else 2.0
  in
  (* Each side gets the shared solver config and pool but a fresh
     in-memory cache, so the second sweep cannot ride on the first
     one's published waveforms and the solve counts are honest. *)
  let mk_engine () =
    let e = Runtime.Engine.of_name s.Runtime.Cli.engine_name in
    let e =
      match s.Runtime.Cli.ltetol with
      | Some tol ->
          Runtime.Engine.map_solver e (fun c ->
              Spice.Transient.with_adaptive ~lte_tol:tol c)
      | None -> e
    in
    let e =
      match Lazy.force pool with
      | Some p -> Runtime.Engine.with_pool e p
      | None -> e
    in
    let e =
      match s.Runtime.Cli.batch with
      | Some b -> Runtime.Engine.with_batch e b
      | None -> e
    in
    Runtime.Engine.with_cache e (Runtime.Cache.create ())
  in
  let run config =
    let engine = mk_engine () in
    let noiseless = Noise.Injection.noiseless ~engine scen in
    let t0 = Unix.gettimeofday () in
    let r = Noise.Alignment.search ~config ~engine scen ~noiseless in
    (r, Unix.gettimeofday () -. t0, engine, noiseless)
  in
  let ex, t_ex, _, _ =
    run { Noise.Alignment.default with Noise.Alignment.prune_tol_ps = 0.0 }
  in
  let pr, t_pr, engine_pr, noiseless_pr =
    run { Noise.Alignment.default with Noise.Alignment.prune_tol_ps = tol }
  in
  (* Guard sample: every alignment the pruned search did solve must
     measure the exact delay the exhaustive sweep measured there. *)
  let guard_disagreements = ref 0 and guard_drift = ref 0.0 in
  Array.iteri
    (fun i d ->
      match (d, ex.Noise.Alignment.delays.(i)) with
      | Some a, Some b ->
          if a <> b then begin
            incr guard_disagreements;
            guard_drift := Float.max !guard_drift (abs_float (a -. b))
          end
      | Some _, None -> incr guard_disagreements (* can't happen *)
      | _ -> ())
    pr.Noise.Alignment.delays;
  let guard_drift_ps = !guard_drift *. 1e12 in
  (* The worst case itself is only promised to within the coverage
     slack: the search may settle on a different grid point whose
     delay trails the true maximum by at most tol. *)
  let drift_ps =
    abs_float (pr.Noise.Alignment.best_delay -. ex.Noise.Alignment.best_delay)
    *. 1e12
  in
  let solves_ex = ex.Noise.Alignment.stats.Noise.Alignment.solved in
  let solves_pr = pr.Noise.Alignment.stats.Noise.Alignment.solved in
  let solve_ratio =
    if solves_pr > 0 then float_of_int solves_ex /. float_of_int solves_pr
    else 0.0
  in
  (* Sparse storage on the worst-case waveforms: serialize the probed
     traces the way the disk cache does (time/value array pairs) with
     and without threshold-windowed compression. *)
  let th = Device.Process.thresholds scen.Noise.Scenario.proc in
  let levels = Waveform.Thresholds.[ v_low th; v_mid th; v_high th ] in
  let noisy =
    Noise.Injection.noisy ~engine:engine_pr scen
      ~tau:pr.Noise.Alignment.best_tau
  in
  let waves =
    [
      noisy.Noise.Injection.far;
      noisy.Noise.Injection.rcv;
      noiseless_pr.Noise.Injection.far;
      noiseless_pr.Noise.Injection.rcv;
    ]
  in
  let entry_bytes ws =
    String.length
      (Marshal.to_string
         (List.map
            (fun w -> (Waveform.Wave.times w, Waveform.Wave.values w))
            ws)
         [])
  in
  let compressed = List.map (Waveform.Sparse.compress ~levels) waves in
  let bytes_dense = entry_bytes waves in
  let bytes_sparse = entry_bytes compressed in
  let sparse_ratio =
    if bytes_sparse > 0 then
      float_of_int bytes_dense /. float_of_int bytes_sparse
    else 0.0
  in
  let sparse_max_err =
    List.fold_left2
      (fun acc original decoded ->
        Float.max acc (Waveform.Sparse.max_error ~original ~decoded))
      0.0 waves compressed
  in
  Printf.printf
    "  %d-point Config II alignment grid, tol %.1f ps\n\
    \  exhaustive    %4d solves  [%.1f s]\n\
    \  pruned        %4d solves  [%.1f s]  (%d pruned, %d rounds)\n\
    \  %.1fx fewer transient solves; worst case tau %.1f ps, delay %.2f ps\n\
    \  best-delay drift %.6f ps (slack %.1f ps); guard sample: %d \
     disagreements, drift %.3f ps\n\
    \  sparse storage: %d -> %d bytes (%.1fx), max err %.2e V\n"
    n tol solves_ex t_ex solves_pr t_pr
    pr.Noise.Alignment.stats.Noise.Alignment.pruned
    pr.Noise.Alignment.stats.Noise.Alignment.rounds solve_ratio
    (pr.Noise.Alignment.best_tau *. 1e12)
    (pr.Noise.Alignment.best_delay *. 1e12)
    drift_ps tol !guard_disagreements guard_drift_ps bytes_dense bytes_sparse
    sparse_ratio sparse_max_err;
  if drift_ps > tol then begin
    Printf.printf
      "  FAIL: worst-case delay drifted %.6f ps, beyond the %.1f ps slack\n"
      drift_ps tol;
    exit_code := 1
  end;
  if !guard_disagreements > 0 then begin
    Printf.printf
      "  FAIL: solved alignments must match the exhaustive sweep \
       byte-for-byte\n";
    exit_code := 1
  end;
  if n >= 100 && solve_ratio < 4.0 then begin
    Printf.printf "  FAIL: expected >= 4x fewer solves, got %.1fx\n"
      solve_ratio;
    exit_code := 1
  end;
  if n >= 200 && solves_pr > 40 then begin
    Printf.printf "  FAIL: pruned sweep took %d solves (budget 40)\n"
      solves_pr;
    exit_code := 1
  end;
  if sparse_ratio < 5.0 then begin
    Printf.printf "  FAIL: expected >= 5x smaller entries, got %.1fx\n"
      sparse_ratio;
    exit_code := 1
  end;
  if sparse_max_err > Waveform.Sparse.default_eps then begin
    Printf.printf "  FAIL: sparse reconstruction error %.2e V above %.0e V\n"
      sparse_max_err Waveform.Sparse.default_eps;
    exit_code := 1
  end;
  sweep_json :=
    Some
      (json_obj
         [
           ("n_cases", string_of_int n);
           ("prune_tol_ps", Printf.sprintf "%.3f" tol);
           ("exhaustive_solves", string_of_int solves_ex);
           ("pruned_solves", string_of_int solves_pr);
           ("pruned", string_of_int
              pr.Noise.Alignment.stats.Noise.Alignment.pruned);
           ("rounds", string_of_int
              pr.Noise.Alignment.stats.Noise.Alignment.rounds);
           ("solve_ratio", Printf.sprintf "%.4f" solve_ratio);
           ("exhaustive_elapsed_s", Printf.sprintf "%.3f" t_ex);
           ("pruned_elapsed_s", Printf.sprintf "%.3f" t_pr);
           ( "best_tau_ps",
             Printf.sprintf "%.6f" (pr.Noise.Alignment.best_tau *. 1e12) );
           ( "best_delay_ps",
             Printf.sprintf "%.6f" (pr.Noise.Alignment.best_delay *. 1e12) );
           ("drift_ps", Printf.sprintf "%.6f" drift_ps);
           ("guard_disagreements", string_of_int !guard_disagreements);
           ("guard_drift_ps", Printf.sprintf "%.6f" guard_drift_ps);
           ("bytes_dense", string_of_int bytes_dense);
           ("bytes_sparse", string_of_int bytes_sparse);
           ("sparse_ratio", Printf.sprintf "%.4f" sparse_ratio);
           ("sparse_max_err_v", Printf.sprintf "%.6e" sparse_max_err);
         ]);
  match !compare_file with
  | Some path ->
      sweep_compare ~pruned_solves:solves_pr ~sparse_ratio path
  | None -> ()

let corners () =
  header "Extension: accuracy across process corners (Config I)";
  let n = Int.min !cases 40 in
  let techniques = [ Eqwave.Wls.wls5; Eqwave.Sgdp.sgdp ] in
  List.iter
    (fun proc ->
      let scen =
        Noise.Scenario.with_cases { Noise.Scenario.config_i with proc } n
      in
      let table =
        Noise.Eval.run_table ~techniques ~engine:(Lazy.force engine) scen
      in
      Printf.printf "%s corner (%d cases):\n" proc.Device.Process.name n;
      List.iter
        (fun row ->
          Printf.printf "  %-6s max %6.1f ps avg %6.1f ps (failed %d)\n"
            row.Noise.Eval.name row.Noise.Eval.max_abs_ps
            row.Noise.Eval.avg_abs_ps row.Noise.Eval.n_failed)
        table.Noise.Eval.rows)
    Device.Process.[ c13_fast; c13; c13_slow ]

let montecarlo () =
  header "Extension: Monte-Carlo alignment & polarity sampling";
  let n = Int.min !cases 60 in
  List.iter
    (fun scen ->
      let _, summaries =
        Noise.Montecarlo.run ~samples:n ~engine:(Lazy.force engine)
          ?checkpoint_dir:!checkpoint_dir scen
      in
      Printf.printf "%s (%d samples):\n" scen.Noise.Scenario.name n;
      Format.printf "%a@." Noise.Montecarlo.pp_summary summaries)
    [ Noise.Scenario.config_i ]

let awe () =
  header "Extension: AWE moment matching vs transient simulation";
  let specs =
    [
      ("Figure-1 line (1000 um)", Noise.Scenario.config_i.Noise.Scenario.line);
      ("Figure-1 line (500 um)", Noise.Scenario.config_ii.Noise.Scenario.line);
      ("resistive net", Interconnect.Rcline.{ rtotal = 500.0; ctotal = 300e-15; nsegs = 10 });
    ]
  in
  Printf.printf "%-24s %12s %12s %12s\n" "net" "elmore*ln2" "AWE-2pole"
    "spice t50";
  List.iter
    (fun (name, spec) ->
      let open Spice in
      let ckt = Circuit.create () in
      let near = Circuit.node ckt "in" in
      Circuit.vsource ckt near (Source.pwl [ (0.0, 0.0); (1e-14, 1.0) ]);
      let far = Interconnect.Rcline.build ckt ~prefix:"w" ~near spec in
      let far_name = Circuit.node_name ckt far in
      let ms =
        Interconnect.Awe.moments_of_circuit ckt ~input:"in" ~output:far_name
          ~order:5
      in
      let model = Interconnect.Awe.pade ms in
      let awe_d = Interconnect.Awe.delay model in
      let span = Float.max 50e-12 (40.0 *. Interconnect.Rcline.elmore spec) in
      let config =
        { Transient.default_config with dt = span /. 4000.0; tstop = span }
      in
      let res = Transient.run ~config ckt in
      let t50 =
        match
          Waveform.Wave.first_crossing (Transient.probe res far_name) 0.5
        with
        | Some t -> t
        | None -> nan
      in
      Printf.printf "%-24s %10.2f ps %10.2f ps %10.2f ps\n" name
        (log 2.0 *. Interconnect.Rcline.elmore spec *. 1e12)
        (awe_d *. 1e12) (t50 *. 1e12))
    specs

(* ------------------------------------------------------------------ *)
(* serve — load-test the sta_serve daemon.

   Explicit-only section (never part of the default sweep): spin up an
   in-process daemon (or connect to an external one via --connect),
   drive --clients concurrent synthetic clients through a small
   deterministic request mix, and report throughput, latency
   percentiles, shed rate, cache hit rate, and whether every non-shed
   socket response was byte-identical to a direct Protocol.execute
   rendering on the same engine.                                       *)

let serve_clients = ref 1000
let serve_reqs = ref 4
let serve_connect : string option ref = ref None
let serve_queue_depth = ref 64
let serve_json : string option ref = ref None

let serve_parse_connect s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt tail with
      | Some port when host <> "" -> Server.Client.Tcp (host, port)
      | _ -> Server.Client.Unix_path s)
  | None -> Server.Client.Unix_path s

(* The deterministic request mix: request [i] always has id [i], so
   the expected response bytes for id [i] are computable offline. *)
let serve_requests () =
  let configs = [ "i"; "ii" ] in
  let delay_taus = [ 20.; 40.; 60.; 80.; 100.; 120. ] in
  let gamma_taus = [ 30.; 70.; 110. ] in
  let reqs = ref [] in
  List.iter
    (fun config ->
      List.iter
        (fun tau_ps ->
          reqs :=
            Server.Protocol.Delay
              { config; tau = tau_ps *. 1e-12; technique = "SGDP" }
            :: !reqs)
        delay_taus;
      List.iter
        (fun tau_ps ->
          reqs :=
            Server.Protocol.Gamma
              { config; tau = tau_ps *. 1e-12; ladder = None }
            :: !reqs)
        gamma_taus)
    configs;
  Array.of_list
    (List.mapi
       (fun i query -> { Server.Protocol.id = i; query; deadline_ms = None })
       (List.rev !reqs))

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Int.min (n - 1) (int_of_float (q *. float_of_int (n - 1))))

(* /health status of an in-process daemon, for the serve/chaos/crash
   sections' health-transition assertions. *)
let daemon_health_status d =
  match Server.Json.member "status" (Server.Daemon.health d) with
  | Some (Server.Json.Str s) -> s
  | _ -> "?"

let daemon_health_reason d reason =
  match Server.Json.member "reasons" (Server.Daemon.health d) with
  | Some (Server.Json.Arr rs) -> List.mem (Server.Json.Str reason) rs
  | _ -> false

let serve_stage () =
  header "sta_serve load";
  let requests = serve_requests () in
  let daemon, addr =
    match !serve_connect with
    | Some s -> (None, serve_parse_connect s)
    | None ->
        let sock =
          Printf.sprintf "/tmp/sta_bench_%d.sock" (Unix.getpid ())
        in
        let config =
          {
            Server.Daemon.default_config with
            addr = Server.Client.Unix_path sock;
            engine = Lazy.force engine;
            queue_depth = !serve_queue_depth;
          }
        in
        (Some (Server.Daemon.start config), Server.Client.Unix_path sock)
  in
  (* Engine for the offline byte-identity rendering: the daemon's own
     engine when in-process, else the preset the external daemon
     reports over ping. *)
  let compare_engine =
    match daemon with
    | Some _ -> Lazy.force engine
    | None -> (
        let c = Server.Client.connect addr in
        let e =
          match Server.Client.ping c with
          | Ok doc -> (
              match Server.Json.(member "ok" doc) with
              | Some ok -> (
                  match Server.Json.(member "engine" ok) with
                  | Some (Server.Json.Str name) -> (
                      match Runtime.Engine.of_name name with
                      | e -> e
                      | exception Invalid_argument _ -> Lazy.force engine)
                  | _ -> Lazy.force engine)
              | None -> Lazy.force engine)
          | Error _ -> Lazy.force engine
        in
        Server.Client.close c;
        Runtime.Engine.with_cache e (Runtime.Cache.create ()))
  in
  (* A fresh in-process daemon (no journal replay, breaker closed,
     empty queue) must report ok before any load. *)
  let health_ok_before =
    match daemon with
    | Some d -> daemon_health_status d = "ok"
    | None -> true
  in
  let n_clients = Int.max 1 !serve_clients in
  let n_reqs = Int.max 1 !serve_reqs in
  let n_distinct = Array.length requests in
  Printf.printf
    "driving %d concurrent clients x %d requests (%d distinct cases) at %s\n%!"
    n_clients n_reqs n_distinct
    (Server.Client.addr_to_string addr);
  (* Per-thread result slots: no shared mutable state during the run. *)
  let latencies = Array.make n_clients [||] in
  let payloads = Array.make n_clients [||] in
  let transport_errors = Array.make n_clients 0 in
  let worker k () =
    match Server.Client.connect ~retries:400 addr with
    | exception _ -> transport_errors.(k) <- transport_errors.(k) + n_reqs
    | client ->
        let lats = Array.make n_reqs nan in
        let pays = Array.make n_reqs (-1, "") in
        for r = 0 to n_reqs - 1 do
          let idx = ((k * n_reqs) + r) mod n_distinct in
          let t0 = Unix.gettimeofday () in
          match Server.Client.call_raw client requests.(idx) with
          | Ok payload ->
              lats.(r) <- (Unix.gettimeofday () -. t0) *. 1e3;
              pays.(r) <- (idx, payload)
          | Error _ ->
              transport_errors.(k) <- transport_errors.(k) + 1
        done;
        Server.Client.close client;
        latencies.(k) <- lats;
        payloads.(k) <- pays
  in
  let t_start = Unix.gettimeofday () in
  let threads =
    Array.init n_clients (fun k -> Thread.create (worker k) ())
  in
  Array.iter Thread.join threads;
  let duration_s = Unix.gettimeofday () -. t_start in
  (* Server-side counters before shutdown. *)
  let stats_counters =
    match Server.Client.connect ~retries:10 addr with
    | exception _ -> []
    | c -> (
        let r =
          Server.Client.call c
            { Server.Protocol.id = 0; query = Server.Protocol.Stats;
              deadline_ms = None }
        in
        Server.Client.close c;
        match r with
        | Ok doc -> (
            match Server.Json.member "ok" doc with
            | Some ok -> (
                match Server.Json.member "counters" ok with
                | Some (Server.Json.Obj kvs) ->
                    List.filter_map
                      (fun (k, v) ->
                        match v with
                        | Server.Json.Num x -> Some (k, int_of_float x)
                        | _ -> None)
                      kvs
                | _ -> [])
            | None -> [])
        | Error _ -> [])
  in
  (* Drain; the draining status latches, so /health must keep
     reporting it once stop has run. *)
  let health_draining =
    match daemon with
    | Some d ->
        Server.Daemon.stop d;
        daemon_health_status d = "draining"
    | None -> true
  in
  (* Offline rendering of every distinct case on the same engine. *)
  let expected =
    Array.map
      (fun (req : Server.Protocol.request) ->
        Server.Json.to_string
          (Server.Protocol.response ~id:req.Server.Protocol.id
             (Server.Protocol.execute ~engine:compare_engine
                req.Server.Protocol.query)))
      requests
  in
  let ok_identical = ref 0
  and mismatches = ref 0
  and shed = ref 0
  and queue_timeouts = ref 0
  and other_errors = ref 0 in
  let classify payload idx =
    if payload = expected.(idx) then incr ok_identical
    else
      let code =
        match Server.Json.parse payload with
        | Ok doc -> (
            match Server.Json.member "error" doc with
            | Some err -> (
                match Server.Json.member "code" err with
                | Some (Server.Json.Str c) -> c
                | _ -> "?")
            | None -> "?")
        | Error _ -> "?"
      in
      match code with
      | "overloaded" -> incr shed
      | "queue_timeout" -> incr queue_timeouts
      | "shutting_down" -> incr other_errors
      | _ -> incr mismatches
  in
  Array.iter
    (Array.iter (fun (idx, payload) -> if idx >= 0 then classify payload idx))
    payloads;
  let completed = !ok_identical + !mismatches + !shed + !queue_timeouts + !other_errors in
  let transport = Array.fold_left ( + ) 0 transport_errors in
  let lats =
    Array.concat (Array.to_list latencies)
    |> Array.to_seq
    |> Seq.filter (fun x -> not (Float.is_nan x))
    |> Array.of_seq
  in
  Array.sort compare lats;
  let p50 = percentile lats 0.50
  and p95 = percentile lats 0.95
  and p99 = percentile lats 0.99 in
  let rps = float_of_int completed /. Float.max duration_s 1e-9 in
  let shed_total = !shed + !queue_timeouts in
  let shed_rate =
    if completed > 0 then float_of_int shed_total /. float_of_int completed
    else 0.0
  in
  let counter name =
    match List.assoc_opt name stats_counters with Some v -> v | None -> 0
  in
  let cache_hit_rate =
    let hits = counter "cache.hits" and misses = counter "cache.misses" in
    if hits + misses > 0 then
      float_of_int hits /. float_of_int (hits + misses)
    else 0.0
  in
  let protocol_errors = !mismatches + transport in
  Printf.printf
    "completed %d/%d in %.2f s (%.0f req/s)\n\
     latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n\
     shed %d (overloaded %d, queue_timeout %d) — shed rate %.1f%%\n\
     byte-identical ok responses: %d, mismatches: %d, transport errors: %d\n\
     server counters: accepted %d, shed %d, batches %d; cache hit rate %.1f%%\n%!"
    completed
    ((n_clients * n_reqs) + transport)
    duration_s rps p50 p95 p99 shed_total !shed !queue_timeouts
    (100.0 *. shed_rate) !ok_identical !mismatches transport
    (counter "server.accepted") (counter "server.shed")
    (counter "server.batches")
    (100.0 *. cache_hit_rate);
  Printf.printf "health: ok before load %b, draining after stop %b\n%!"
    health_ok_before health_draining;
  if !mismatches > 0 || transport > 0 then exit_code := 1;
  if not (health_ok_before && health_draining) then exit_code := 1;
  serve_json :=
    Some
      (json_obj
         [
           ("clients", string_of_int n_clients);
           ("requests_per_client", string_of_int n_reqs);
           ("distinct_cases", string_of_int n_distinct);
           ("completed", string_of_int completed);
           ("duration_s", Printf.sprintf "%.6f" duration_s);
           ("requests_per_sec", Printf.sprintf "%.3f" rps);
           ("p50_ms", Printf.sprintf "%.4f" p50);
           ("p95_ms", Printf.sprintf "%.4f" p95);
           ("p99_ms", Printf.sprintf "%.4f" p99);
           ("shed", string_of_int shed_total);
           ("shed_overloaded", string_of_int !shed);
           ("shed_queue_timeout", string_of_int !queue_timeouts);
           ("shed_rate", Printf.sprintf "%.6f" shed_rate);
           ("ok_byte_identical", string_of_int !ok_identical);
           ("mismatches", string_of_int !mismatches);
           ("transport_errors", string_of_int transport);
           ("protocol_errors", string_of_int protocol_errors);
           ( "byte_identical",
             if !mismatches = 0 then "true" else "false" );
           ("cache_hit_rate", Printf.sprintf "%.6f" cache_hit_rate);
           ("server_accepted", string_of_int (counter "server.accepted"));
           ("server_shed", string_of_int (counter "server.shed"));
           ("server_batches", string_of_int (counter "server.batches"));
           ("health_ok_before", if health_ok_before then "true" else "false");
           ("health_draining", if health_draining then "true" else "false");
         ])

(* ------------------------------------------------------------------ *)
(* chaos — availability under injected faults.

   Explicit-only section: an in-process daemon with a deliberately
   tight connection budget and read deadline, driven by a client herd
   of which a --misbehave fraction stalls mid-frame, disconnects
   mid-frame, or speaks garbage — under seeded network faults
   (--inject-net-faults) and disk-cache faults
   (--inject-cache-faults, armed for the whole run by the shared CLI
   spec; the stage arms a default plan when neither is given).

   Published invariants, each wired to the exit code:
   - every well-behaved request is eventually answered byte-identically
     to a direct Protocol.execute rendering (retries absorb typed sheds
     and transit corruption);
   - misbehaving peers only ever produce typed failures and reclaimed
     connections, never a wedged or crashed daemon;
   - the disk-cache circuit breaker opens under disk faults and
     re-closes after recovery, with memory shards serving throughout;
   - no connection leaks: the live-connection gauge drains to zero;
   - a large seeded fuzz sweep through Frame -> Json -> Protocol.parse
     yields zero escaped exceptions.                                   *)

let chaos_misbehave = ref 0.25
let chaos_net : Server.Netfault.plan option ref = ref None
let chaos_fuzz = ref 100_000
let chaos_json : string option ref = ref None

let chaos_stage () =
  header "service-boundary chaos";
  let requests = serve_requests () in
  let n_distinct = Array.length requests in
  let n_total = Int.max 8 !serve_clients in
  let n_reqs = Int.max 1 !serve_reqs in
  let frac = Float.min 1.0 (Float.max 0.0 !chaos_misbehave) in
  let n_bad = int_of_float (frac *. float_of_int n_total) in
  let n_wb = n_total - n_bad in
  (* Disk-backed cache with a tight breaker: the faulted phase must
     open it, recovery must re-close it. *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sta_chaos_cache_%d" (Unix.getpid ()))
  in
  let cooldown_s = 0.3 in
  let chaos_cache =
    Runtime.Cache.create ~disk_dir:cache_dir ~breaker_threshold:4
      ~breaker_cooldown_s:cooldown_s ()
  in
  (* Arm the chaos. Cache faults may already be armed by
     --inject-cache-faults; otherwise use a deterministic default so a
     bare `bench chaos` still exercises the breaker. *)
  if not (Runtime.Cache.Disk_fault.is_armed ()) then
    (match Runtime.Cache.Disk_fault.of_string "0.8@11" with
    | Ok plan -> Runtime.Cache.Disk_fault.arm plan
    | Error _ -> ());
  Option.iter (Server.Netfault.arm ~stall_s:0.02) !chaos_net;
  let net_injected_before = Server.Netfault.injected () in
  let cache_injected_before = Runtime.Cache.Disk_fault.injected () in
  let sock = Printf.sprintf "/tmp/sta_chaos_%d.sock" (Unix.getpid ()) in
  let max_conns = Int.max 8 (n_total / 4) in
  let config =
    {
      Server.Daemon.default_config with
      addr = Server.Client.Unix_path sock;
      engine = Runtime.Engine.with_cache (Lazy.force engine) chaos_cache;
      queue_depth = !serve_queue_depth;
      max_conns;
      read_timeout_s = Some 0.25;
      write_timeout_s = Some 2.0;
      max_frames_per_conn = Some 64;
    }
  in
  let d = Server.Daemon.start config in
  let counter name =
    Option.value ~default:0
      (List.assoc_opt name
         (Runtime.Metrics.counters (Server.Daemon.metrics d)))
  in
  (* Expected bytes for every distinct case, rendered offline on an
     identically configured engine. *)
  let compare_engine =
    Runtime.Engine.with_cache (Lazy.force engine) (Runtime.Cache.create ())
  in
  let expected =
    Array.map
      (fun (req : Server.Protocol.request) ->
        Server.Json.to_string
          (Server.Protocol.response ~id:req.Server.Protocol.id
             (Server.Protocol.execute ~engine:compare_engine
                req.Server.Protocol.query)))
      requests
  in
  Printf.printf
    "driving %d clients (%d misbehaving) x %d requests at %s\n\
     max_conns %d, read deadline 0.25 s, net faults %s, cache faults %s\n%!"
    n_total n_bad n_reqs sock max_conns
    (if Server.Netfault.is_armed () then "armed" else "off")
    (if Runtime.Cache.Disk_fault.is_armed () then "armed" else "off");
  (* Per-thread slots: no shared mutable state during the run. *)
  let served = Array.make (Int.max 1 n_wb) 0 in
  let retried_typed = Array.make (Int.max 1 n_wb) 0 in
  let retried_corrupt = Array.make (Int.max 1 n_wb) 0 in
  let unserved = Array.make (Int.max 1 n_wb) 0 in
  let latencies = Array.make (Int.max 1 n_wb) [||] in
  let classify_nonmatching payload =
    match Server.Json.parse payload with
    | Ok doc -> (
        match Server.Json.member "error" doc with
        | Some _ -> `Typed
        | None -> `Corrupt)
    | Error _ -> `Corrupt
  in
  let wb_worker k () =
    let lats = Array.make n_reqs nan in
    let policy =
      { Server.Client.attempts = 4; base_delay_s = 0.01; max_delay_s = 0.2;
        seed = k }
    in
    for r = 0 to n_reqs - 1 do
      let idx = ((k * n_reqs) + r) mod n_distinct in
      let t0 = Unix.gettimeofday () in
      (* Outer loop: call_with_retry absorbs transport errors and
         recoverable typed sheds; anything else (transit corruption, a
         request corrupted into bad_request) is retried here. Only an
         exhausted budget counts as unserved. *)
      let rec attempt tries =
        if tries >= 6 then unserved.(k) <- unserved.(k) + 1
        else
          match
            Server.Client.call_raw_with_retry ~policy ~retry_recoverable:true
              ~read_timeout_s:2.0 ~write_timeout_s:2.0
              (Server.Client.Unix_path sock) requests.(idx)
          with
          | Ok payload when payload = expected.(idx) ->
              served.(k) <- served.(k) + 1;
              lats.(r) <- (Unix.gettimeofday () -. t0) *. 1e3
          | Ok payload ->
              (match classify_nonmatching payload with
              | `Typed -> retried_typed.(k) <- retried_typed.(k) + 1
              | `Corrupt -> retried_corrupt.(k) <- retried_corrupt.(k) + 1);
              attempt (tries + 1)
          | Error _ -> attempt (tries + 1)
      in
      attempt 0
    done;
    latencies.(k) <- lats
  in
  let bad_worker k () =
    for _r = 0 to n_reqs - 1 do
      match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception _ -> ()
      | fd ->
          (try
             Unix.connect fd (Unix.ADDR_UNIX sock);
             match k mod 3 with
             | 0 ->
                 (* Slowloris: half a header, hold past the deadline. *)
                 ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
                 Thread.delay 0.35
             | 1 ->
                 (* Disconnect mid-frame. *)
                 let b = Bytes.of_string "\x00\x00\x01\x00{\"v\"" in
                 ignore (Unix.write fd b 0 (Bytes.length b))
             | _ ->
                 (* A well-framed garbage payload; the typed bad_request
                    answer is read and dropped. *)
                 Server.Protocol.write_frame fd "\xde\xad not json";
                 ignore (Server.Protocol.read_frame fd)
           with _ -> ());
          (try Unix.close fd with _ -> ())
    done
  in
  let t_start = Unix.gettimeofday () in
  let threads =
    Array.append
      (Array.init n_wb (fun k -> Thread.create (wb_worker k) ()))
      (Array.init n_bad (fun k -> Thread.create (bad_worker k) ()))
  in
  Array.iter Thread.join threads;
  let duration_s = Unix.gettimeofday () -. t_start in
  (* The connection budget must have shed at least once; if the herd's
     timing never exceeded it, saturate deliberately so the typed-shed
     path is exercised on every run. *)
  if counter "server.conn_shed" = 0 then begin
    let extras =
      Array.init (max_conns + 8) (fun _ ->
          match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
          | exception _ -> None
          | fd -> (
              match Unix.connect fd (Unix.ADDR_UNIX sock) with
              | () -> Some fd
              | exception _ ->
                  (try Unix.close fd with _ -> ());
                  None))
    in
    Thread.delay 0.1;
    Array.iter
      (Option.iter (fun fd -> try Unix.close fd with _ -> ()))
      extras
  end;
  (* Breaker: the faulted traffic should have opened it; when the mix
     served entirely from memory, a direct burst of faulted stores
     opens it deterministically. *)
  let wave = Waveform.Wave.create [| 0.0; 1e-12 |] [| 0.0; 1.0 |] in
  if Runtime.Cache.breaker_opens chaos_cache = 0 then begin
    Runtime.Cache.Disk_fault.disarm ();
    (match Runtime.Cache.Disk_fault.of_string "1.0@1" with
    | Ok plan -> Runtime.Cache.Disk_fault.arm plan
    | Error _ -> ());
    for i = 0 to 15 do
      Runtime.Cache.store chaos_cache
        (Printf.sprintf "chaos:drill:%d" i)
        [ wave ]
    done
  end;
  let breaker_opens = Runtime.Cache.breaker_opens chaos_cache in
  let short_circuits = Runtime.Cache.breaker_short_circuits chaos_cache in
  (* Memory shards keep serving while the breaker is open. *)
  Runtime.Cache.store chaos_cache "chaos:memory" [ wave ];
  let memory_serves =
    Runtime.Cache.find chaos_cache "chaos:memory" <> None
  in
  (* /health must say degraded with reason breaker_open while the
     breaker is open. The traffic phase may have left the breaker
     anywhere in its cycle, so force it open deterministically. *)
  (if
     Runtime.Cache.breaker_state chaos_cache
     <> Some Runtime.Cache.Breaker.Open
   then begin
     Runtime.Cache.Disk_fault.disarm ();
     (match Runtime.Cache.Disk_fault.of_string "1.0@3" with
     | Ok plan -> Runtime.Cache.Disk_fault.arm plan
     | Error _ -> ());
     let i = ref 0 in
     while
       Runtime.Cache.breaker_state chaos_cache
       <> Some Runtime.Cache.Breaker.Open
       && !i < 32
     do
       Runtime.Cache.store chaos_cache
         (Printf.sprintf "chaos:health:%d" !i)
         [ wave ];
       incr i
     done
   end);
  let health_degraded_while_open =
    daemon_health_status d = "degraded" && daemon_health_reason d "breaker_open"
  in
  (* Recovery: faults off, past the cooldown, the half-open probe must
     re-close the breaker and disk writes must resume. *)
  Runtime.Cache.Disk_fault.disarm ();
  Server.Netfault.disarm ();
  Thread.delay (cooldown_s +. 0.15);
  Runtime.Cache.store chaos_cache "chaos:probe" [ wave ];
  let breaker_recloses = Runtime.Cache.breaker_recloses chaos_cache in
  let breaker_reclosed =
    breaker_recloses >= 1
    && Runtime.Cache.breaker_state chaos_cache
       = Some Runtime.Cache.Breaker.Closed
  in
  (* Breaker closed again, queue drained, not draining: back to ok. *)
  let health_ok_after_reclose = daemon_health_status d = "ok" in
  let disk_resumed =
    let fresh =
      Runtime.Cache.create ~disk_dir:cache_dir ()
    in
    Runtime.Cache.find fresh "chaos:probe" <> None
  in
  (* Recovery traffic: with faults disarmed every request must be
     served byte-identically on the first try. *)
  let n_recovery = Int.min 64 (Int.max 1 n_wb) in
  let recovered = Array.make n_recovery false in
  let rec_worker k () =
    let idx = k mod n_distinct in
    match
      Server.Client.call_raw_with_retry
        ~policy:
          { Server.Client.attempts = 3; base_delay_s = 0.01;
            max_delay_s = 0.1; seed = 1000 + k }
        ~retry_recoverable:true (Server.Client.Unix_path sock)
        requests.(idx)
    with
    | Ok payload -> recovered.(k) <- payload = expected.(idx)
    | Error _ -> ()
  in
  let rec_threads =
    Array.init n_recovery (fun k -> Thread.create (rec_worker k) ())
  in
  Array.iter Thread.join rec_threads;
  let recovery_ok =
    Array.for_all Fun.id recovered
  in
  (* No fd leaks: the live-connection gauge must drain to zero now
     that every client is gone. *)
  let rec drain deadline =
    if Server.Daemon.conn_active d = 0 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      drain deadline
    end
  in
  let drained = drain (Unix.gettimeofday () +. 3.0) in
  let conn_shed = counter "server.conn_shed" in
  let conn_opened = counter "server.conn_opened" in
  let conn_closed = counter "server.conn_closed" in
  let idle_timeouts = counter "server.conn_idle_timeouts" in
  let read_timeouts = counter "server.conn_read_timeouts" in
  let conn_errors = counter "server.conn_errors" in
  let queue_shed = counter "server.shed" in
  Server.Daemon.stop d;
  (* The fuzz sweep: totality of Frame -> Json -> Protocol.parse over
     a large seeded hostile corpus. *)
  let fuzz_count = Int.max 1 !chaos_fuzz in
  let fz = Server.Fuzz.run ~seed:11 ~count:fuzz_count () in
  let fuzz_escapes = List.length fz.Server.Fuzz.escaped in
  let wb_total = n_wb * n_reqs in
  let sum a = Array.fold_left ( + ) 0 a in
  let served_n = sum served
  and typed_n = sum retried_typed
  and corrupt_n = sum retried_corrupt
  and unserved_n = sum unserved in
  let availability =
    if wb_total = 0 then 1.0
    else float_of_int served_n /. float_of_int wb_total
  in
  let lats =
    Array.concat (Array.to_list latencies)
    |> Array.to_seq
    |> Seq.filter (fun x -> not (Float.is_nan x))
    |> Array.of_seq
  in
  Array.sort compare lats;
  let p50 = percentile lats 0.50
  and p95 = percentile lats 0.95
  and p99 = percentile lats 0.99 in
  let net_injected = Server.Netfault.injected () - net_injected_before in
  let cache_injected =
    Runtime.Cache.Disk_fault.injected () - cache_injected_before
  in
  let passed =
    unserved_n = 0 && conn_shed >= 1 && breaker_opens >= 1
    && breaker_reclosed && memory_serves && disk_resumed && drained
    && recovery_ok && fuzz_escapes = 0 && health_degraded_while_open
    && health_ok_after_reclose
  in
  Printf.printf
    "well-behaved: %d/%d byte-identical in %.2f s (availability %.4f)\n\
     retries: %d typed, %d corrupted-in-transit; unserved: %d\n\
     latency-to-success p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n\
     conns: opened %d closed %d shed %d; idle timeouts %d, mid-frame %d, \
     errors %d; queue shed %d; drained to zero: %b\n\
     injected faults: %d net, %d cache-disk\n\
     breaker: opens %d, recloses %d, short-circuits %d, reclosed %b; \
     memory served while open: %b; disk resumed: %b\n\
     health: degraded/breaker_open while open %b, ok after re-close %b\n\
     recovery wave: %s\n\
     fuzz: %d inputs (%d parsed, %d bad_request, %d version_mismatch, \
     %d frame trips), %d escaped\n\
     chaos invariants: %s\n%!"
    served_n wb_total duration_s availability typed_n corrupt_n unserved_n
    p50 p95 p99 conn_opened conn_closed conn_shed idle_timeouts
    read_timeouts conn_errors queue_shed drained net_injected cache_injected
    breaker_opens breaker_recloses short_circuits breaker_reclosed
    memory_serves disk_resumed health_degraded_while_open
    health_ok_after_reclose
    (if recovery_ok then "all byte-identical" else "FAILED")
    fz.Server.Fuzz.inputs fz.Server.Fuzz.parsed fz.Server.Fuzz.bad_requests
    fz.Server.Fuzz.version_mismatches fz.Server.Fuzz.frame_trips
    fuzz_escapes
    (if passed then "PASS" else "FAIL");
  if not passed then exit_code := 1;
  chaos_json :=
    Some
      (json_obj
         [
           ("clients", string_of_int n_total);
           ("misbehaving", string_of_int n_bad);
           ("requests_per_client", string_of_int n_reqs);
           ("max_conns", string_of_int max_conns);
           ("duration_s", Printf.sprintf "%.6f" duration_s);
           ("wb_total", string_of_int wb_total);
           ("wb_byte_identical", string_of_int served_n);
           ("wb_retried_typed", string_of_int typed_n);
           ("wb_retried_corrupt", string_of_int corrupt_n);
           ("wb_unserved", string_of_int unserved_n);
           ("availability", Printf.sprintf "%.6f" availability);
           ("p50_ms", Printf.sprintf "%.4f" p50);
           ("p95_ms", Printf.sprintf "%.4f" p95);
           ("p99_ms", Printf.sprintf "%.4f" p99);
           ("conn_opened", string_of_int conn_opened);
           ("conn_closed", string_of_int conn_closed);
           ("conn_shed", string_of_int conn_shed);
           ("conn_idle_timeouts", string_of_int idle_timeouts);
           ("conn_read_timeouts", string_of_int read_timeouts);
           ("conn_errors", string_of_int conn_errors);
           ("queue_shed", string_of_int queue_shed);
           ("conns_drained", if drained then "true" else "false");
           ("net_faults_injected", string_of_int net_injected);
           ("cache_faults_injected", string_of_int cache_injected);
           ("breaker_opens", string_of_int breaker_opens);
           ("breaker_recloses", string_of_int breaker_recloses);
           ("breaker_short_circuits", string_of_int short_circuits);
           ("breaker_reclosed", if breaker_reclosed then "true" else "false");
           ("memory_served_while_open", if memory_serves then "true" else "false");
           ("disk_resumed", if disk_resumed then "true" else "false");
           ( "health_degraded_while_open",
             if health_degraded_while_open then "true" else "false" );
           ( "health_ok_after_reclose",
             if health_ok_after_reclose then "true" else "false" );
           ("recovery_ok", if recovery_ok then "true" else "false");
           ("fuzz_inputs", string_of_int fz.Server.Fuzz.inputs);
           ("fuzz_parsed", string_of_int fz.Server.Fuzz.parsed);
           ("fuzz_bad_requests", string_of_int fz.Server.Fuzz.bad_requests);
           ( "fuzz_version_mismatches",
             string_of_int fz.Server.Fuzz.version_mismatches );
           ("fuzz_frame_trips", string_of_int fz.Server.Fuzz.frame_trips);
           ("fuzz_escapes", string_of_int fuzz_escapes);
           ("passed", if passed then "true" else "false");
         ])

(* ------------------------------------------------------------------ *)
(* crash — crash-safety drill against a real supervised daemon.

   Explicit-only section: fork+exec `sta_serve supervise` with a
   write-ahead journal, drive a client herd through retrying calls,
   and SIGKILL the serving child (pid read from --pid-file) on a
   seeded schedule mid-load. Published invariants, each wired to the
   exit code:
   - zero acknowledged-and-lost: every response a client received is
     returned byte-identically when the same request (same payload
     bytes, same journal digest) is re-sent after the crashes — the
     journal either replayed it or the dedup table still holds it;
   - every acknowledged success is byte-identical to a direct
     Protocol.execute rendering;
   - recovery is bounded: after each SIGKILL the service answers a
     ping again within --recovery-budget;
   - the supervisor restarted exactly the killed children
     (server.restarts == kills) and drains cleanly on SIGTERM;
   - after the clean drain no journal entry is left pending (the
     retire-before-drain-ack protocol held).                          *)

let crash_clients = ref 12
let crash_reqs = ref 8
let crash_kills = ref 2
let crash_seed = ref 42
let crash_recovery_budget = ref 30.0
let crash_json : string option ref = ref None

(* Seeded roll in [0,1) — same digest trick as the client's retry
   jitter, so the kill schedule is reproducible from --kill-seed. *)
let crash_roll seed k =
  let d = Digest.string (Printf.sprintf "bench.crash:%d:%d" seed k) in
  float_of_int (Char.code d.[0] lor (Char.code d.[1] lsl 8)) /. 65536.0

let crash_stage () =
  header "crash-safety drill (SIGKILL under load)";
  let requests = serve_requests () in
  let n_distinct = Array.length requests in
  let n_clients = Int.max 1 !crash_clients in
  let n_reqs = Int.max 1 !crash_reqs in
  let n_kills = Int.max 0 !crash_kills in
  let budget = Float.max 1.0 !crash_recovery_budget in
  let pid = Unix.getpid () in
  let tmp = Filename.get_temp_dir_name () in
  let sock = Filename.concat tmp (Printf.sprintf "sta_crash_%d.sock" pid) in
  let journal_dir =
    Filename.concat tmp (Printf.sprintf "sta_crash_journal_%d" pid)
  in
  let pid_file = Filename.concat tmp (Printf.sprintf "sta_crash_%d.pid" pid) in
  let addr = Server.Client.Unix_path sock in
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "sta_serve.exe"))
  in
  let read_pid_file () =
    match open_in pid_file with
    | exception Sys_error _ -> None
    | ic ->
        let p =
          match input_line ic with
          | l -> int_of_string_opt (String.trim l)
          | exception End_of_file -> None
        in
        close_in_noerr ic;
        p
  in
  (* Block until a ping round-trips; returns the instant it did. *)
  let wait_ready () =
    let deadline = Unix.gettimeofday () +. budget in
    let rec go () =
      if Unix.gettimeofday () > deadline then None
      else
        match Server.Client.connect ~retries:0 addr with
        | exception _ ->
            Thread.delay 0.05;
            go ()
        | c -> (
            let r = Server.Client.ping c in
            Server.Client.close c;
            match r with
            | Ok _ -> Some (Unix.gettimeofday ())
            | Error _ ->
                Thread.delay 0.05;
                go ())
    in
    go ()
  in
  if not (Sys.file_exists exe) then begin
    Printf.printf "crash: sta_serve binary not found at %s — FAIL\n%!" exe;
    exit_code := 1;
    crash_json :=
      Some
        (json_obj
           [ ("passed", "false"); ("error", json_str "sta_serve not found") ])
  end
  else begin
    let argv =
      [|
        exe; "supervise"; "--socket"; sock; "--journal-dir"; journal_dir;
        "--pid-file"; pid_file; "--scrub"; "1"; "--watchdog"; "30";
        "--base-backoff"; "0.05"; "--max-backoff"; "0.5"; "--healthy-after";
        "3600"; "--crash-budget"; string_of_int (n_kills + 3);
      |]
    in
    (* posix_spawn-based, so the drill composes with bench sections
       that already created pool domains (OCaml 5 forbids fork then). *)
    let sup_pid =
      Unix.create_process exe argv Unix.stdin Unix.stdout Unix.stderr
    in
    let t_spawn = Unix.gettimeofday () in
    let ready0 = wait_ready () in
    let startup_s =
      match ready0 with Some t -> t -. t_spawn | None -> -1.0
    in
    (* Offline expected bytes on the engine the daemon reports. *)
    let compare_engine =
      let name =
        match Server.Client.connect ~retries:10 addr with
        | exception _ -> "fast"
        | c -> (
            let r = Server.Client.ping c in
            Server.Client.close c;
            match r with
            | Ok doc -> (
                match
                  Option.bind
                    (Server.Json.member "ok" doc)
                    (Server.Json.member "engine")
                with
                | Some (Server.Json.Str n) -> n
                | _ -> "fast")
            | Error _ -> "fast")
      in
      let e =
        match Runtime.Engine.of_name name with
        | e -> e
        | exception Invalid_argument _ -> Runtime.Engine.fast
      in
      Runtime.Engine.with_cache e (Runtime.Cache.create ())
    in
    let expected =
      Array.map
        (fun (req : Server.Protocol.request) ->
          Server.Json.to_string
            (Server.Protocol.response ~id:req.Server.Protocol.id
               (Server.Protocol.execute ~engine:compare_engine
                  req.Server.Protocol.query)))
        requests
    in
    Printf.printf
      "supervisor pid %d, serving on %s (up in %.2f s)\n\
       driving %d clients x %d requests; %d seeded SIGKILLs (seed %d), \
       recovery budget %.0f s\n%!"
      sup_pid sock startup_s n_clients n_reqs n_kills !crash_seed budget;
    (* The herd: every logical request retried until acknowledged —
       crashes show up as transport errors and connection refusals
       that the retry loop absorbs. *)
    let acked = Array.make n_clients [||] in
    let unserved = Array.make n_clients 0 in
    let acked_count = Atomic.make 0 in
    let finished = Atomic.make 0 in
    let retry_policy k =
      { Server.Client.attempts = 60; base_delay_s = 0.05; max_delay_s = 0.5;
        seed = !crash_seed + k }
    in
    let worker k () =
      let res = Array.make n_reqs (-1, "") in
      for r = 0 to n_reqs - 1 do
        let idx = ((k * n_reqs) + r) mod n_distinct in
        match
          Server.Client.call_raw_with_retry ~policy:(retry_policy k)
            ~retry_recoverable:true ~read_timeout_s:15.0 ~write_timeout_s:15.0
            addr requests.(idx)
        with
        | Ok payload ->
            res.(r) <- (idx, payload);
            Atomic.incr acked_count
        | Error _ -> unserved.(k) <- unserved.(k) + 1
      done;
      acked.(k) <- res;
      Atomic.incr finished
    in
    let t_start = Unix.gettimeofday () in
    let threads =
      Array.init n_clients (fun k -> Thread.create (worker k) ())
    in
    (* The kill controller (this thread): at seeded fractions of the
       total request count, SIGKILL whatever pid the supervisor last
       wrote, then measure time-to-ping. *)
    let total = n_clients * n_reqs in
    let kills_done = ref 0 in
    let recovery_times = ref [] in
    let last_killed = ref 0 in
    for i = 0 to n_kills - 1 do
      let frac =
        float_of_int (i + 1) /. (float_of_int n_kills +. 1.0)
      in
      let jitter = 0.9 +. (0.2 *. crash_roll !crash_seed i) in
      let threshold =
        Int.max 1
          (Int.min (total - 1)
             (int_of_float (frac *. jitter *. float_of_int total)))
      in
      while
        Atomic.get acked_count < threshold && Atomic.get finished < n_clients
      do
        Thread.delay 0.01
      done;
      if Atomic.get finished < n_clients then begin
        (* The pid file may still hold the previous (dead) child for a
           moment after a kill; wait for a fresh pid. *)
        let deadline = Unix.gettimeofday () +. budget in
        let rec serving_pid () =
          match read_pid_file () with
          | Some p when p > 0 && p <> !last_killed -> Some p
          | _ ->
              if Unix.gettimeofday () > deadline then None
              else begin
                Thread.delay 0.02;
                serving_pid ()
              end
        in
        match serving_pid () with
        | None -> ()
        | Some cpid ->
            let t_kill = Unix.gettimeofday () in
            (try Unix.kill cpid Sys.sigkill with Unix.Unix_error _ -> ());
            last_killed := cpid;
            incr kills_done;
            let rec_s =
              match wait_ready () with
              | Some t -> t -. t_kill
              | None -> -1.0
            in
            recovery_times := rec_s :: !recovery_times;
            Printf.printf
              "  SIGKILL #%d -> pid %d at %d/%d acked; serving again in \
               %.2f s\n\
               %!"
              (i + 1) cpid
              (Atomic.get acked_count)
              total rec_s
      end
    done;
    Array.iter Thread.join threads;
    let duration_s = Unix.gettimeofday () -. t_start in
    let recovery_times = List.rev !recovery_times in
    let unserved_n = Array.fold_left ( + ) 0 unserved in
    (* Acked successes must match the offline rendering. *)
    let acked_total = ref 0 and acked_identical = ref 0 in
    Array.iter
      (Array.iter (fun (idx, payload) ->
           if idx >= 0 then begin
             incr acked_total;
             if payload = expected.(idx) then incr acked_identical
           end))
      acked;
    (* Zero acknowledged-and-lost: re-send every acknowledged request
       (byte-identical payload, same journal digest) against the
       post-crash daemon; the answer must be the bytes the client
       already holds. *)
    let resend_identical = ref 0 and resend_lost = ref 0 in
    Array.iter
      (Array.iter (fun (idx, payload) ->
           if idx >= 0 then
             match
               Server.Client.call_raw_with_retry ~policy:(retry_policy 7919)
                 ~retry_recoverable:true ~read_timeout_s:15.0
                 ~write_timeout_s:15.0 addr requests.(idx)
             with
             | Ok p2 when p2 = payload -> incr resend_identical
             | Ok _ | Error _ -> incr resend_lost))
      acked;
    (* Final incarnation's counters. *)
    let stats_counters =
      match Server.Client.connect ~retries:20 addr with
      | exception _ -> []
      | c -> (
          let r =
            Server.Client.call c
              { Server.Protocol.id = 0; query = Server.Protocol.Stats;
                deadline_ms = None }
          in
          Server.Client.close c;
          match r with
          | Ok doc -> (
              match
                Option.bind
                  (Server.Json.member "ok" doc)
                  (Server.Json.member "counters")
              with
              | Some (Server.Json.Obj kvs) ->
                  List.filter_map
                    (fun (k, v) ->
                      match v with
                      | Server.Json.Num x -> Some (k, int_of_float x)
                      | _ -> None)
                    kvs
              | _ -> [])
          | Error _ -> [])
    in
    let counter name =
      match List.assoc_opt name stats_counters with Some v -> v | None -> 0
    in
    let restarts_metric = counter "server.restarts" in
    let replayed = counter "server.replayed" in
    let deduped = counter "server.journal_deduped" in
    let journal_pending_live = counter "server.journal_pending" in
    (* Clean drain: SIGTERM the supervisor, expect exit 0. *)
    let clean_exit =
      (try Unix.kill sup_pid Sys.sigterm with Unix.Unix_error _ -> ());
      let deadline = Unix.gettimeofday () +. budget in
      let rec waitloop () =
        match Unix.waitpid [ Unix.WNOHANG ] sup_pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then false
            else begin
              Thread.delay 0.05;
              waitloop ()
            end
        | _, Unix.WEXITED 0 -> true
        | _, _ -> false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitloop ()
        | exception Unix.Unix_error _ -> false
      in
      waitloop ()
    in
    (* After the clean drain every admitted entry must be retired: the
       drain waits for in-flight responses to flush and retire before
       the journal closes. *)
    let journal_pending_after =
      match Server.Journal.open_ journal_dir with
      | j ->
          let n = List.length (Server.Journal.pending j) in
          Server.Journal.close j;
          n
      | exception _ -> -1
    in
    let recoveries_ok =
      List.length recovery_times = n_kills
      && List.for_all (fun t -> t >= 0.0 && t <= budget) recovery_times
    in
    let acked_lost = !resend_lost in
    let passed =
      ready0 <> None && unserved_n = 0
      && !acked_identical = !acked_total
      && acked_lost = 0 && !kills_done = n_kills && recoveries_ok
      && restarts_metric = n_kills && clean_exit && journal_pending_after = 0
    in
    Printf.printf
      "acked %d/%d (unserved %d), byte-identical vs offline: %d/%d\n\
       post-crash re-send: %d identical, %d lost-or-different\n\
       kills %d/%d, recoveries %s (budget %.0f s)\n\
       final incarnation: restarts %d, replayed %d, deduped %d, journal \
       pending %d\n\
       clean supervisor exit: %b; journal pending after drain: %d\n\
       crash invariants: %s\n%!"
      !acked_total total unserved_n !acked_identical !acked_total
      !resend_identical acked_lost !kills_done n_kills
      (String.concat ", "
         (List.map (Printf.sprintf "%.2fs") recovery_times))
      budget restarts_metric replayed deduped journal_pending_live clean_exit
      journal_pending_after
      (if passed then "PASS" else "FAIL");
    if not passed then exit_code := 1;
    crash_json :=
      Some
        (json_obj
           [
             ("clients", string_of_int n_clients);
             ("requests_per_client", string_of_int n_reqs);
             ("distinct_cases", string_of_int n_distinct);
             ("duration_s", Printf.sprintf "%.6f" duration_s);
             ("startup_s", Printf.sprintf "%.6f" startup_s);
             ("kills", string_of_int !kills_done);
             ("kills_requested", string_of_int n_kills);
             ("kill_seed", string_of_int !crash_seed);
             ("acked", string_of_int !acked_total);
             ("unserved", string_of_int unserved_n);
             ("acked_byte_identical", string_of_int !acked_identical);
             ("resend_identical", string_of_int !resend_identical);
             ("acked_lost", string_of_int acked_lost);
             ( "recovery_s",
               json_list
                 (List.map (Printf.sprintf "%.6f") recovery_times) );
             ("recovery_budget_s", Printf.sprintf "%.3f" budget);
             ("server_restarts", string_of_int restarts_metric);
             ("server_replayed", string_of_int replayed);
             ("journal_deduped", string_of_int deduped);
             ("journal_pending_live", string_of_int journal_pending_live);
             ( "journal_pending_after_drain",
               string_of_int journal_pending_after );
             ("clean_exit", if clean_exit then "true" else "false");
             ("passed", if passed then "true" else "false");
           ]);
    (* Best-effort scratch cleanup. *)
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ sock; pid_file ];
    (match Sys.readdir journal_dir with
    | names ->
        Array.iter
          (fun n ->
            try Sys.remove (Filename.concat journal_dir n)
            with Sys_error _ -> ())
          names;
        (try Unix.rmdir journal_dir with Unix.Unix_error _ -> ())
    | exception Sys_error _ -> ())
  end

(* ------------------------------------------------------------------ *)
(* Machine-readable output (--json)                                    *)

let json_row (r : Noise.Eval.row) =
  json_obj
    [
      ("name", json_str r.Noise.Eval.name);
      ("max_abs_ps", Printf.sprintf "%.6f" r.Noise.Eval.max_abs_ps);
      ("avg_abs_ps", Printf.sprintf "%.6f" r.Noise.Eval.avg_abs_ps);
      ("n_cases", string_of_int r.Noise.Eval.n_cases);
      ("n_failed", string_of_int r.Noise.Eval.n_failed);
    ]

(* Resilience counters since program start, for the always-present
   `resilience` JSON section and the end-of-run summary line. *)
let resil_before = ref (Runtime.Resilience.Stats.snapshot ())
let spice_before = ref (Spice.Transient.Stats.snapshot ())
let guard_before = ref (Runtime.Guard.Stats.snapshot ())

(* Aggregate the per-configuration ladder outcomes for the
   `degradation` JSON section: per-rung counts, exhaustion, and the
   rung-0 resolution rate the CI smoke gate asserts on. *)
let degradation_json () =
  let l = Lazy.force ladder in
  let rung_counts = Array.make (Eqwave.Ladder.length l) 0 in
  let exhausted = ref 0 and unmapped = ref 0 in
  let score_sum = ref 0.0 and mapped = ref 0 in
  List.iter
    (fun (_, _, _, (d : Noise.Eval.degradation_summary)) ->
      Array.iteri
        (fun i n ->
          if i < Array.length rung_counts then
            rung_counts.(i) <- rung_counts.(i) + n)
        d.Noise.Eval.rung_counts;
      exhausted := !exhausted + d.Noise.Eval.n_exhausted;
      unmapped := !unmapped + d.Noise.Eval.n_unmapped;
      let m = Array.fold_left ( + ) 0 d.Noise.Eval.rung_counts in
      mapped := !mapped + m;
      score_sum := !score_sum +. (d.Noise.Eval.avg_score_v *. float_of_int m))
    !table1_results;
  let total = !mapped + !exhausted + !unmapped in
  let sd = Spice.Transient.Stats.(diff (snapshot ()) !spice_before) in
  json_obj
    [
      ( "ladder",
        json_list (List.map json_str (Eqwave.Ladder.names l)) );
      ( "rung_counts",
        json_list
          (Array.to_list (Array.map string_of_int rung_counts)) );
      ("exhausted", string_of_int !exhausted);
      ("unmapped", string_of_int !unmapped);
      ("deadline_hits", string_of_int sd.Spice.Transient.Stats.deadline_hits);
      ( "avg_score_v",
        Printf.sprintf "%.6g"
          (if !mapped = 0 then 0.0 else !score_sum /. float_of_int !mapped) );
      ( "resolved_rung0_rate",
        Printf.sprintf "%.4f"
          (if total = 0 then 1.0
           else
             float_of_int (if Array.length rung_counts > 0 then rung_counts.(0) else 0)
             /. float_of_int total) );
    ]

let guard_json () =
  let d = Runtime.Guard.Stats.(diff (snapshot ()) !guard_before) in
  let open Runtime.Guard.Stats in
  let rate =
    if d.checked = 0 then 1.0
    else float_of_int d.agreements /. float_of_int d.checked
  in
  json_obj
    [
      ("enabled", if (cli_spec ()).Runtime.Cli.guard then "true" else "false");
      ("every", string_of_int (cli_spec ()).Runtime.Cli.guard_every);
      ("tol_ps", Printf.sprintf "%.4f" (cli_spec ()).Runtime.Cli.guard_tol_ps);
      ("checked", string_of_int d.checked);
      ("agreements", string_of_int d.agreements);
      ("disagreements", string_of_int d.disagreements);
      ("errors", string_of_int d.errors);
      ("agreement_rate", Printf.sprintf "%.4f" rate);
      ("max_delta_ps", Printf.sprintf "%.6f" (d.max_delta_s *. 1e12));
    ]

let resilience_json () =
  let d = Runtime.Resilience.Stats.(diff (snapshot ()) !resil_before) in
  let open Runtime.Resilience.Stats in
  let outcomes = d.recoveries + d.failures in
  let rate =
    if outcomes = 0 then 1.0
    else float_of_int d.recoveries /. float_of_int outcomes
  in
  json_obj
    [
      ("policy", json_str (cli_spec ()).Runtime.Cli.fallback);
      ("solves", string_of_int d.solves);
      ("attempts", string_of_int d.attempts);
      ("retries", string_of_int d.retries);
      ("recoveries", string_of_int d.recoveries);
      ("failures", string_of_int d.failures);
      ("rejected_waveforms", string_of_int d.rejected_waveforms);
      ("injected_faults", string_of_int (Spice.Transient.Fault.injected ()));
      ("recovery_rate", Printf.sprintf "%.4f" rate);
    ]

let write_json path =
  let body =
    json_obj
      ([
        ("schema", json_str "noisy-sta-bench/1");
        ("cases", string_of_int !cases);
        ("jobs", string_of_int (cli_spec ()).Runtime.Cli.jobs);
        ("cache", if (cli_spec ()).Runtime.Cli.use_cache then "true" else "false");
        ("resilience", resilience_json ());
        ("degradation", degradation_json ());
        ("guard", guard_json ());
        ( "table1",
          json_list
            (List.map
               (fun (scenario, elapsed, rows,
                     (d : Noise.Eval.degradation_summary)) ->
                 json_obj
                   [
                     ("scenario", json_str scenario);
                     ("elapsed_s", Printf.sprintf "%.3f" elapsed);
                     ("rows", json_list (List.map json_row rows));
                     ( "rung_counts",
                       json_list
                         (Array.to_list
                            (Array.map string_of_int d.Noise.Eval.rung_counts))
                     );
                     ("exhausted", string_of_int d.Noise.Eval.n_exhausted);
                     ("unmapped", string_of_int d.Noise.Eval.n_unmapped);
                   ])
               !table1_results) );
        ("metrics", Runtime.Metrics.to_json metrics);
      ]
      @ (match !adaptive_json with
        | Some j -> [ ("adaptive", j) ]
        | None -> [])
      @ (match !kernel_json with
        | Some j -> [ ("kernel", j) ]
        | None -> [])
      @ (match !batch_json with
        | Some j -> [ ("batch", j) ]
        | None -> [])
      @ (match !sweep_json with
        | Some j -> [ ("sweep", j) ]
        | None -> [])
      @ (match !serve_json with
        | Some j -> [ ("serve", j) ]
        | None -> [])
      @ (match !chaos_json with
        | Some j -> [ ("chaos", j) ]
        | None -> [])
      @
      match !crash_json with
      | Some j -> [ ("crash", j) ]
      | None -> [])
  in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc body;
      output_char oc '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)


let () =
  let open Cmdliner in
  let sections_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SECTION"
          ~doc:
            "Sections to run (default: all): $(b,figure1) $(b,figure2) \
             $(b,table1) $(b,runtime) $(b,kernel) $(b,ablation) \
             $(b,nonoverlap) $(b,worstcase) $(b,sweep) $(b,corners) \
             $(b,montecarlo) \
             $(b,awe); $(b,serve) (explicit only) load-tests the \
             sta_serve daemon; $(b,chaos) (explicit only) runs the \
             service-boundary chaos harness: misbehaving clients, \
             injected network and disk-cache faults, breaker \
             open/re-close, and a large protocol fuzz sweep; \
             $(b,crash) (explicit only) runs the crash-safety drill: \
             SIGKILL a supervised, journaled daemon mid-load and \
             assert zero acknowledged-and-lost plus bounded \
             recovery.")
  in
  let cases_arg =
    Arg.(
      value & opt int 100
      & info [ "cases" ] ~docv:"N"
          ~doc:
            "Per-configuration case count (the paper's full 200 is used \
             by $(b,sta_main table1 --cases 200), see EXPERIMENTS.md).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write machine-readable results (table rows plus the metrics \
             snapshot) to $(docv) for cross-PR perf tracking.")
  in
  let compare_arg =
    Arg.(
      value & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:
            "Regression gate for the kernel and batch sections: fail \
             when the per-solve time regressed >25% or delays drifted \
             >0.01 ps against $(docv) (a previous $(b,--json) output).")
  in
  let clients_arg =
    Arg.(
      value & opt int 1000
      & info [ "clients" ] ~docv:"N"
          ~doc:"Concurrent synthetic clients for the serve section.")
  in
  let reqs_arg =
    Arg.(
      value & opt int 4
      & info [ "reqs" ] ~docv:"N"
          ~doc:"Requests per client for the serve section.")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission queue bound for the in-process serve daemon.")
  in
  let connect_arg =
    Arg.(
      value & opt (some string) None
      & info [ "connect" ] ~docv:"PATH|HOST:PORT"
          ~doc:
            "Load-test an externally running daemon instead of an \
             in-process one (serve section).")
  in
  let misbehave_arg =
    Arg.(
      value & opt float 0.25
      & info [ "misbehave" ] ~docv:"FRACTION"
          ~doc:
            "Fraction of chaos-section clients that misbehave \
             (stall mid-frame, disconnect mid-frame, or send garbage).")
  in
  let net_fault_arg =
    let c =
      Arg.conv
        ( (fun s ->
            match Server.Netfault.of_string s with
            | Ok plan -> Ok plan
            | Error msg -> Error (`Msg msg)),
          fun ppf _ -> Format.pp_print_string ppf "<net-fault-plan>" )
    in
    Arg.(
      value & opt (some c) None
      & info [ "inject-net-faults" ] ~docv:"SPEC"
          ~doc:
            "Seeded network fault injection for the chaos section: \
             $(b,[KIND:])($(b,nth:N) | $(b,RATE[@SEED])) with KIND one \
             of torn|stall|drop|corrupt (no KIND rotates all four). \
             Example: 0.05@7.")
  in
  let fuzz_count_arg =
    Arg.(
      value & opt int 100_000
      & info [ "fuzz-count" ] ~docv:"N"
          ~doc:"Seeded fuzz inputs for the chaos section's sweep.")
  in
  let kill_count_arg =
    Arg.(
      value & opt int 2
      & info [ "kill-count" ] ~docv:"N"
          ~doc:"SIGKILLs of the serving child during the crash section.")
  in
  let kill_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "kill-seed" ] ~docv:"SEED"
          ~doc:"Seed for the crash section's kill schedule and client \
                retry jitter.")
  in
  let recovery_budget_arg =
    Arg.(
      value & opt float 30.0
      & info [ "recovery-budget" ] ~docv:"SECONDS"
          ~doc:"Crash section: maximum allowed time from SIGKILL to \
                the service answering a ping again.")
  in
  let run sections_v cases_v json_v compare_v clients_v reqs_v queue_depth_v
      connect_v misbehave_v net_fault_v fuzz_count_v kill_count_v kill_seed_v
      recovery_budget_v spec (sweep : Runtime.Cli.sweep) =
    (* Fail on an unwritable --json path now, not after minutes of
       sims; same for a missing --compare baseline or a bad ladder. *)
    let usage_error msg =
      prerr_endline ("bench: " ^ msg);
      exit 2
    in
    (match json_v with
    | None -> ()
    | Some path -> (
        match open_out path with
        | oc -> close_out oc
        | exception Sys_error msg -> usage_error ("--json: " ^ msg)));
    (match compare_v with
    | None -> ()
    | Some path ->
        if not (Sys.file_exists path) then
          usage_error ("--compare: no such baseline file " ^ path));
    (match sweep.Runtime.Cli.ladder with
    | None -> ()
    | Some names -> (
        match Eqwave.Ladder.of_names names with
        | (_ : Eqwave.Ladder.t) -> ()
        | exception Invalid_argument msg -> usage_error ("--ladder: " ^ msg)));
    (* The serve/chaos sections write to sockets that a (possibly
       fault-injected) daemon may drop mid-write; without this the
       whole bench dies of SIGPIPE instead of counting a typed
       transport error. In-process runs are already covered because
       Daemon.start ignores it — this covers --connect runs too. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    cli := Some spec;
    cases := cases_v;
    want_metrics := sweep.Runtime.Cli.metrics;
    json_out := json_v;
    sections := sections_v;
    checkpoint_dir := sweep.Runtime.Cli.checkpoint_dir;
    ladder_names := sweep.Runtime.Cli.ladder;
    compare_file := compare_v;
    serve_clients := Int.max 1 clients_v;
    serve_reqs := Int.max 1 reqs_v;
    serve_queue_depth := Int.max 1 queue_depth_v;
    serve_connect := connect_v;
    chaos_misbehave := misbehave_v;
    chaos_net := net_fault_v;
    chaos_fuzz := fuzz_count_v;
    crash_kills := Int.max 0 kill_count_v;
    crash_seed := kill_seed_v;
    crash_recovery_budget := recovery_budget_v;
    Runtime.Cli.arm_faults spec;
    resil_before := Runtime.Resilience.Stats.snapshot ();
    spice_before := Spice.Transient.Stats.snapshot ();
    guard_before := Runtime.Guard.Stats.snapshot ();
    let stage name f =
      if section_enabled name then
        Runtime.Metrics.time metrics ("stage." ^ name) f
    in
    let before = Spice.Transient.Stats.snapshot () in
    stage "figure1" figure1;
    stage "figure2" figure2;
    stage "table1" table1;
    stage "runtime" runtime;
    stage "kernel" kernel;
    stage "batch" batch_stage;
    stage "ablation" ablation;
    stage "nonoverlap" nonoverlap;
    stage "worstcase" worstcase;
    stage "sweep" sweep_stage;
    stage "corners" corners;
    stage "montecarlo" montecarlo;
    stage "awe" awe;
    (* Explicit-only: a daemon load test is not part of the default
       simulation sweep. *)
    if List.mem "serve" !sections then stage "serve" serve_stage;
    if List.mem "chaos" !sections then stage "chaos" chaos_stage;
    if List.mem "crash" !sections then stage "crash" crash_stage;
    Runtime.Metrics.set metrics "pool.jobs" spec.Runtime.Cli.jobs;
    Runtime.Metrics.capture_spice ~since:before metrics;
    Runtime.Metrics.capture_resilience ~since:!resil_before metrics;
    Runtime.Metrics.capture_guard ~since:!guard_before metrics;
    (if Lazy.is_val cache then
       match Lazy.force cache with
       | Some c -> Runtime.Metrics.capture_cache metrics c
       | None -> ());
    if !want_metrics then
      Format.printf "@.%a@." Runtime.Metrics.pp_report metrics;
    (match !json_out with Some path -> write_json path | None -> ());
    (if Lazy.is_val pool then
       match Lazy.force pool with
       | Some p -> Runtime.Pool.shutdown p
       | None -> ());
    (let d = Runtime.Resilience.Stats.(diff (snapshot ()) !resil_before) in
     let open Runtime.Resilience.Stats in
     if Spice.Transient.Fault.is_armed () || d.retries > 0 || d.failures > 0
     then
       Printf.printf "\nresilience: %d injected faults; %s\n"
         (Spice.Transient.Fault.injected ())
         (Format.asprintf "%a" pp d));
    Printf.printf "\nDone.\n";
    if !exit_code <> 0 then exit !exit_code
  in
  let term =
    Term.(
      const run $ sections_arg $ cases_arg $ json_arg $ compare_arg
      $ clients_arg $ reqs_arg $ queue_depth_arg $ connect_arg
      $ misbehave_arg $ net_fault_arg $ fuzz_count_arg $ kill_count_arg
      $ kill_seed_arg $ recovery_budget_arg
      $ Runtime.Cli.spec_term ~default_cache_dir:".noisy_sta_cache" ()
      $ Runtime.Cli.sweep_term ())
  in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "bench"
             ~doc:"Regenerate every table and figure of the paper")
          term))
