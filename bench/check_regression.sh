#!/bin/sh
# Solver hot-path, batch-kernel and crash-recovery regression gate.
#
# Re-runs two benchmark stages against committed baselines via the
# benchmark's own --compare mode, then the self-gating crash drill:
#
#   * kernel — the 20-case Config II sweep, dense LU without reuse vs
#     the auto-selected banded kernel with Jacobian reuse, compared
#     against BENCH_baseline.json. Fails when the optimized per-solve
#     time regressed by more than 25% or any reference delay drifted
#     by more than 0.01 ps.
#   * batch — the same sweep through the batch-first lockstep kernel
#     vs the one-at-a-time scalar loop, compared against
#     BENCH_batch.json. Fails on >25% per-solve regression, >0.01 ps
#     drift against the baseline delays, a sweep that never selects
#     the batch path, or any drift at all between the batch kernel
#     and the scalar loop (byte-identity is exact, not a tolerance).
#   * crash — SIGKILL the supervised daemon twice mid-load and require
#     zero acknowledged-and-lost responses, byte-identical replay,
#     recovery within budget and a clean drain. Unlike the timing
#     gates this one is pass/fail with no baseline: the stage itself
#     exits non-zero on any violated invariant. Skip it (e.g. on a
#     machine that cannot fork/exec) with CRASH_GATE=0.
#   * sweep — the 200-case Config II alignment grid through the
#     branch-and-bound search vs the exhaustive sweep, compared
#     against BENCH_sweep.json. The stage self-gates (solved points
#     byte-identical to the exhaustive sweep, worst-case drift within
#     the coverage slack, >=4x fewer solves and <=40 total, sparse
#     entries >=5x smaller) and the --compare limb additionally fails
#     when the pruned solve count grew >25% over the baseline or the
#     sparse compression ratio fell below 80% of it. Skip with
#     SWEEP_GATE=0; SWEEP_BASELINE=path overrides the baseline file.
#
# The timing limbs are advisory across machines (the committed
# baselines record one host's numbers); the drift limbs are
# machine-independent and must always hold. Refresh the baselines on
# a quiet machine with:
#
#   dune exec bench/main.exe -- kernel --json BENCH_baseline.json
#   dune exec bench/main.exe -- batch --json BENCH_batch.json
#   dune exec bench/main.exe -- sweep --cases 200 --json BENCH_sweep.json
#
# Usage: bench/check_regression.sh [BASELINE.json] [extra bench args...]
#        BATCH_BASELINE=path overrides the batch baseline file.
set -eu
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_baseline.json}"
[ $# -gt 0 ] && shift
batch_baseline="${BATCH_BASELINE:-BENCH_batch.json}"

if [ ! -f "$baseline" ]; then
  echo "check_regression: baseline $baseline not found" >&2
  exit 2
fi

status=0
dune exec bench/main.exe -- kernel --compare "$baseline" "$@" || status=$?

if [ -f "$batch_baseline" ]; then
  dune exec bench/main.exe -- batch --compare "$batch_baseline" "$@" \
    || status=$?
else
  echo "check_regression: batch baseline $batch_baseline not found;" \
    "skipping batch gate" >&2
fi

if [ "${CRASH_GATE:-1}" = "1" ]; then
  dune exec bench/main.exe -- crash || status=$?
else
  echo "check_regression: CRASH_GATE=0, skipping crash-recovery gate" >&2
fi

sweep_baseline="${SWEEP_BASELINE:-BENCH_sweep.json}"
if [ "${SWEEP_GATE:-1}" != "1" ]; then
  echo "check_regression: SWEEP_GATE=0, skipping alignment-sweep gate" >&2
elif [ -f "$sweep_baseline" ]; then
  dune exec bench/main.exe -- sweep --cases 200 --compare "$sweep_baseline" \
    "$@" || status=$?
else
  echo "check_regression: sweep baseline $sweep_baseline not found;" \
    "skipping sweep gate" >&2
fi

exit $status
