#!/bin/sh
# Solver hot-path regression gate.
#
# Re-runs the kernel benchmark (20-case Config II sweep, dense LU
# without reuse vs auto-selected banded kernel with Jacobian reuse)
# and compares it against a committed baseline via the benchmark's
# own --compare mode. The gate fails (non-zero exit) when either
#
#   * the optimized per-solve time regressed by more than 25% against
#     the baseline's opt_per_solve_ms, or
#   * any Config II case's reference delay drifted by more than
#     0.01 ps against the baseline's delays_ps array.
#
# The timing limb is advisory across machines (the committed baseline
# records one host's numbers); the delay-drift limb is
# machine-independent and must always hold. Refresh the baseline on a
# quiet machine with:
#
#   dune exec bench/main.exe -- kernel --json BENCH_baseline.json
#
# Usage: bench/check_regression.sh [BASELINE.json] [extra bench args...]
set -eu
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_baseline.json}"
[ $# -gt 0 ] && shift

if [ ! -f "$baseline" ]; then
  echo "check_regression: baseline $baseline not found" >&2
  exit 2
fi

exec dune exec bench/main.exe -- kernel --compare "$baseline" "$@"
