(* Crosstalk sweep: the paper's Configuration I, swept over aggressor
   alignments, reporting how the victim's gate delay moves and how well
   each technique tracks it.

     dune exec examples/crosstalk_sweep.exe [-- <cases>] *)

let () =
  let cases =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 25
  in
  let scen = Noise.Scenario.with_cases Noise.Scenario.config_i cases in
  Printf.printf "%s: %d aggressor alignments over a %.1f ns window\n\n"
    scen.Noise.Scenario.name cases (scen.Noise.Scenario.window *. 1e9);
  let noiseless = Noise.Injection.noiseless scen in
  Printf.printf "%-10s %-12s %-10s %-10s\n" "tau(ps)" "ref delay" "WLS5 err"
    "SGDP err";
  let taus = Noise.Scenario.taus scen in
  Array.iter
    (fun tau ->
      let case = Noise.Eval.evaluate_case scen ~noiseless ~tau in
      let err name =
        match
          List.find_opt
            (fun m -> m.Noise.Eval.technique = name)
            case.Noise.Eval.metrics
        with
        | Some { Noise.Eval.delay_err = Some e; _ } ->
            Printf.sprintf "%+8.1f" (e *. 1e12)
        | Some { Noise.Eval.failure = Some f; _ } ->
            "fail: " ^ Runtime.Failure.to_string f
        | _ -> "?"
      in
      Printf.printf "%-10.0f %-12.1f %-10s %-10s\n" (tau *. 1e12)
        (case.Noise.Eval.delay_ref *. 1e12)
        (err "WLS5") (err "SGDP"))
    taus;
  (* Aggregate view, Table-1 style. *)
  let table = Noise.Eval.run_table scen in
  Format.printf "@.%a@." Noise.Eval.pp_table table
